// stemcp_replay: the trace-driven workload CLI (ISSUE 10, docs/WORKLOAD.md).
//
//   stemcp_replay synthesize <scenario> -o <trace>
//       Generate a deterministic trace from a scenario spec.
//   stemcp_replay record <scenario> -o <trace> [--images <dir>] [--shards N]
//       Drive the scenario through a LIVE service closed-loop with the
//       recorder tap armed: the written trace carries measured arrival
//       offsets, and --images saves each surviving session's image as the
//       reference for later `replay --verify-images` runs.
//   stemcp_replay replay <trace> [--closed-loop] [--speed X] [--shards N]
//       [--workers N] [--journal <base>] [--journal-spec <spec>]
//       [--journal-root <dir>] [--save-images <dir>] [--verify-images <dir>]
//       [--no-images]
//       Drive a fresh service with the trace, open-loop by default
//       (recorded arrivals, scaled by --speed), and print the report.
//       --verify-images makes recorded traces a correctness oracle: every
//       session image must match <dir>/<session>.lib byte-for-byte or the
//       exit code is nonzero.
//   stemcp_replay describe <trace-or-scenario>
//       Summarize a trace (records, span, sessions, verb mix, torn tail) or
//       echo a scenario in canonical form.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "persist/checkpoint.h"
#include "service/design_service.h"
#include "workload/recorder.h"
#include "workload/replay.h"
#include "workload/synth.h"
#include "workload/trace.h"

namespace {

using namespace stemcp;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s synthesize <scenario> -o <trace>\n"
               "       %s record <scenario> -o <trace> [--images <dir>] "
               "[--shards N]\n"
               "       %s replay <trace> [--closed-loop] [--speed X] "
               "[--shards N] [--workers N]\n"
               "           [--journal <base>] [--journal-spec <spec>] "
               "[--journal-root <dir>]\n"
               "           [--save-images <dir>] [--verify-images <dir>] "
               "[--no-images]\n"
               "       %s describe <trace-or-scenario>\n",
               argv0, argv0, argv0, argv0);
  return 2;
}

int die(const std::string& msg) {
  std::fprintf(stderr, "error: %s\n", msg.c_str());
  return 1;
}

bool read_image_file(const std::string& path, std::string* out) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) return false;
  std::ostringstream buf;
  buf << f.rdbuf();
  *out = buf.str();
  return true;
}

int write_images(const workload::ReplayReport& report, const std::string& dir) {
  std::string err;
  if (!persist::ensure_directories(dir, &err)) return die(err);
  for (const auto& [session, image] : report.images) {
    const std::string path = dir + "/" + session + ".lib";
    if (!persist::atomic_write_file(path, image, &err)) return die(err);
  }
  std::printf("%zu image(s) written to %s\n", report.images.size(),
              dir.c_str());
  return 0;
}

int verify_against_dir(const workload::ReplayReport& report,
                       const std::string& dir) {
  std::map<std::string, std::string> want;
  for (const auto& [session, image] : report.images) {
    (void)image;
    const std::string path = dir + "/" + session + ".lib";
    if (!read_image_file(path, &want[session])) {
      return die("cannot read reference image '" + path + "'");
    }
  }
  std::string diff;
  if (!workload::verify_images(report.images, want, &diff)) {
    return die("image verification FAILED: " + diff);
  }
  std::printf("%zu image(s) verified byte-identical against %s\n",
              report.images.size(), dir.c_str());
  return 0;
}

int cmd_synthesize(const std::vector<std::string>& args, const char* argv0) {
  std::string scenario_path, trace_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "-o" && i + 1 < args.size()) {
      trace_path = args[++i];
    } else if (scenario_path.empty()) {
      scenario_path = args[i];
    } else {
      return usage(argv0);
    }
  }
  if (scenario_path.empty() || trace_path.empty()) return usage(argv0);
  workload::Scenario sc;
  std::string err;
  if (!workload::load_scenario_file(scenario_path, &sc, &err)) return die(err);
  if (!workload::synthesize_to_file(sc, trace_path, &err)) return die(err);
  const workload::TraceScan scan = workload::scan_trace_file(trace_path);
  if (!scan.error.empty()) return die(scan.error);
  std::printf("%zu record(s) (%.3f s span) written to %s\n",
              scan.records.size(),
              static_cast<double>(scan.records.back().offset_ns) / 1e9,
              trace_path.c_str());
  return 0;
}

int cmd_record(const std::vector<std::string>& args, const char* argv0) {
  std::string scenario_path, trace_path, images_dir;
  std::size_t shards = 1;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "-o" && i + 1 < args.size()) {
      trace_path = args[++i];
    } else if (args[i] == "--images" && i + 1 < args.size()) {
      images_dir = args[++i];
    } else if (args[i] == "--shards" && i + 1 < args.size()) {
      shards = static_cast<std::size_t>(std::stoul(args[++i]));
    } else if (scenario_path.empty()) {
      scenario_path = args[i];
    } else {
      return usage(argv0);
    }
  }
  if (scenario_path.empty() || trace_path.empty()) return usage(argv0);
  workload::Scenario sc;
  std::string err;
  if (!workload::load_scenario_file(scenario_path, &sc, &err)) return die(err);

  std::unique_ptr<workload::TraceRecorder> rec =
      workload::TraceRecorder::open(trace_path, &err);
  if (rec == nullptr) return die(err);
  workload::ReplayOptions opts;
  opts.closed_loop = true;  // a live run: as fast as the service absorbs
  opts.shards = shards;
  opts.recorder = rec.get();
  workload::ReplayReport report;
  if (!workload::replay_records(workload::synthesize(sc), opts, &report,
                                &err)) {
    return die(err);
  }
  if (!rec->finish(&err)) return die(err);
  const workload::TraceRecorder::Stats stats = rec->stats();
  std::printf("%llu record(s) recorded to %s (%llu drop(s))\n",
              static_cast<unsigned long long>(stats.records),
              trace_path.c_str(), static_cast<unsigned long long>(stats.drops));
  std::fputs(report.render().c_str(), stdout);
  if (!images_dir.empty()) return write_images(report, images_dir);
  return 0;
}

int cmd_replay(const std::vector<std::string>& args, const char* argv0) {
  std::string trace_path, save_dir, verify_dir;
  workload::ReplayOptions opts;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--closed-loop") {
      opts.closed_loop = true;
    } else if (a == "--speed" && i + 1 < args.size()) {
      opts.speed = std::stod(args[++i]);
    } else if (a == "--shards" && i + 1 < args.size()) {
      opts.shards = static_cast<std::size_t>(std::stoul(args[++i]));
    } else if (a == "--workers" && i + 1 < args.size()) {
      opts.workers_per_shard = static_cast<std::size_t>(std::stoul(args[++i]));
    } else if (a == "--journal" && i + 1 < args.size()) {
      opts.journal_base = args[++i];
    } else if (a == "--journal-spec" && i + 1 < args.size()) {
      opts.journal_spec = args[++i];
    } else if (a == "--journal-root" && i + 1 < args.size()) {
      opts.journal_root = args[++i];
    } else if (a == "--save-images" && i + 1 < args.size()) {
      save_dir = args[++i];
    } else if (a == "--verify-images" && i + 1 < args.size()) {
      verify_dir = args[++i];
    } else if (a == "--no-images") {
      opts.collect_images = false;
    } else if (trace_path.empty()) {
      trace_path = a;
    } else {
      return usage(argv0);
    }
  }
  if (trace_path.empty()) return usage(argv0);
  workload::ReplayReport report;
  std::string err;
  if (!workload::replay_file(trace_path, opts, &report, &err)) return die(err);
  std::fputs(report.render().c_str(), stdout);
  if (!save_dir.empty()) {
    const int rc = write_images(report, save_dir);
    if (rc != 0) return rc;
  }
  if (!verify_dir.empty()) return verify_against_dir(report, verify_dir);
  return 0;
}

int cmd_describe(const std::vector<std::string>& args, const char* argv0) {
  if (args.size() != 1) return usage(argv0);
  const std::string& path = args[0];
  std::string head;
  {
    std::ifstream f(path);
    if (!f.good()) return die("cannot read '" + path + "'");
    std::getline(f, head);
  }
  if (head.rfind("# stemcp-scenario", 0) == 0) {
    workload::Scenario sc;
    std::string err;
    if (!workload::load_scenario_file(path, &sc, &err)) return die(err);
    std::fputs(workload::scenario_to_string(sc).c_str(), stdout);
    return 0;
  }
  const workload::TraceScan scan = workload::scan_trace_file(path);
  if (!scan.error.empty()) return die(scan.error);
  if (scan.records.empty()) return die("trace has no records");
  std::map<std::string, std::uint64_t> verbs;
  std::map<std::string, std::uint64_t> sessions;
  for (const workload::TraceRecord& rec : scan.records) {
    ++verbs[service::to_string(rec.request.type)];
    ++sessions[rec.request.session];
  }
  std::printf("%zu record(s), %zu session(s), %.3f s span%s\n",
              scan.records.size(), sessions.size(),
              static_cast<double>(scan.records.back().offset_ns) / 1e9,
              scan.torn_tail ? ", torn tail" : "");
  for (const auto& [verb, count] : verbs) {
    std::printf("  %-13s %llu\n", verb.c_str(),
                static_cast<unsigned long long>(count));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (cmd == "synthesize") return cmd_synthesize(args, argv[0]);
    if (cmd == "record") return cmd_record(args, argv[0]);
    if (cmd == "replay") return cmd_replay(args, argv[0]);
    if (cmd == "describe") return cmd_describe(args, argv[0]);
  } catch (const std::exception& e) {
    return die(e.what());
  }
  return usage(argv[0]);
}
