#!/usr/bin/env python3
"""Compare (or merge) stemcp BENCH.json files.

Every bench binary built with bench/bench_support.h writes one consolidated
JSON per run: per-benchmark wall time plus the process-global engine metrics
(see docs/PERFORMANCE.md).  This tool diffs two such files — or two merged
BENCH.json files, or two directories of *.stats.json — and flags regressions.

Usage:
  tools/bench_compare.py OLD NEW [--threshold 0.10] [--metrics]
      OLD / NEW are bench JSON files, merged BENCH.json files, or
      directories containing *.stats.json.  Exit code 1 when any benchmark's
      per-iteration real time regressed by more than --threshold.

  tools/bench_compare.py merge OUT.json IN.json [IN.json ...]
      Consolidate several per-binary bench JSONs into one BENCH.json
      ({"benches": [...]}) for trajectory tracking.
"""

import argparse
import json
import os
import sys


def load_benchmarks(path):
    """Return {benchmark_name: record} from a bench JSON, a merged
    BENCH.json, or a directory of *.stats.json files."""
    files = []
    if os.path.isdir(path):
        files = [
            os.path.join(path, f)
            for f in sorted(os.listdir(path))
            if f.endswith(".json")
        ]
        if not files:
            sys.exit(f"bench_compare: no *.json files in directory {path}")
    else:
        files = [path]

    time_unit_ns = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
    out = {}
    for f in files:
        with open(f, encoding="utf-8") as fh:
            doc = json.load(fh)
        if "context" in doc and "benchmarks" in doc:
            # Google Benchmark --benchmark_out format: real_time is already
            # per-iteration, expressed in time_unit.
            exe = os.path.basename(f).split(".")[0]
            for rec in doc["benchmarks"]:
                if rec.get("run_type", "iteration") != "iteration":
                    continue
                scale = time_unit_ns.get(rec.get("time_unit", "ns"), 1.0)
                out[f"{exe}:{rec['name']}"] = {
                    "name": rec["name"],
                    "iterations": rec.get("iterations", 0),
                    "real_time_ns_per_iter": rec["real_time"] * scale,
                    "cpu_time_ns_per_iter": rec.get("cpu_time", 0) * scale,
                }
            continue
        for bench_doc in doc.get("benches", [doc]):
            exe = bench_doc.get("bench", os.path.basename(f))
            for rec in bench_doc.get("benchmarks", []):
                # Qualify by binary so equal benchmark names never collide.
                out[f"{exe}:{rec['name']}"] = rec
    return out


def merge(out_path, in_paths):
    # Tolerate missing inputs (a bench that was skipped or crashed should
    # not lose the stats of the ones that ran) — but refuse to write an
    # empty BENCH.json, which would silently wipe the trajectory.
    benches = []
    for p in in_paths:
        if not os.path.exists(p):
            print(f"bench_compare: warning: skipping missing input {p}",
                  file=sys.stderr)
            continue
        with open(p, encoding="utf-8") as fh:
            doc = json.load(fh)
        benches.extend(doc.get("benches", [doc]))
    if not benches:
        sys.exit("bench_compare: merge found no readable bench JSONs")
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump({"benches": benches}, fh, indent=1)
        fh.write("\n")
    print(f"bench_compare: wrote {out_path} ({len(benches)} bench binaries)")


def fmt_ns(ns):
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.2f}us"
    return f"{ns:.0f}ns"


def compare(old_path, new_path, threshold, show_metrics):
    old = load_benchmarks(old_path)
    new = load_benchmarks(new_path)
    common = [k for k in old if k in new]
    if not common:
        sys.exit("bench_compare: no common benchmarks between the two runs")

    width = max(len(k) for k in common)
    print(f"{'benchmark':<{width}}  {'old':>10}  {'new':>10}  {'delta':>8}")
    regressions = []
    for name in common:
        o = old[name]["real_time_ns_per_iter"]
        n = new[name]["real_time_ns_per_iter"]
        if o <= 0:
            continue
        delta = (n - o) / o
        flag = ""
        if delta > threshold:
            flag = "  REGRESSION"
            regressions.append((name, delta))
        elif delta < -threshold:
            flag = "  improved"
        print(
            f"{name:<{width}}  {fmt_ns(o):>10}  {fmt_ns(n):>10}  "
            f"{delta * 100:>+7.1f}%{flag}"
        )

    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))
    if only_old:
        print(f"\nonly in old run: {', '.join(only_old)}")
    if only_new:
        print(f"only in new run: {', '.join(only_new)}")

    if show_metrics:
        print("\nengine counters (old -> new):")
        o_counters = collect_counters(old_path)
        n_counters = collect_counters(new_path)
        for key in sorted(set(o_counters) | set(n_counters)):
            print(f"  {key}: {o_counters.get(key, 0)} -> {n_counters.get(key, 0)}")

    if regressions:
        print(
            f"\n{len(regressions)} regression(s) beyond "
            f"{threshold * 100:.0f}%:",
            file=sys.stderr,
        )
        for name, delta in regressions:
            print(f"  {name}: {delta * 100:+.1f}%", file=sys.stderr)
        return 1
    print(f"\nno regressions beyond {threshold * 100:.0f}%")
    return 0


def collect_counters(path):
    """Sum the engine metric counters over every bench doc under `path`."""
    files = (
        [
            os.path.join(path, f)
            for f in sorted(os.listdir(path))
            if f.endswith(".json")
        ]
        if os.path.isdir(path)
        else [path]
    )
    totals = {}
    for f in files:
        with open(f, encoding="utf-8") as fh:
            doc = json.load(fh)
        for bench_doc in doc.get("benches", [doc]):
            for key, v in bench_doc.get("metrics", {}).get("counters", {}).items():
                totals[key] = totals.get(key, 0) + v
    return totals


def main():
    if len(sys.argv) >= 2 and sys.argv[1] == "merge":
        if len(sys.argv) < 4:
            sys.exit("usage: bench_compare.py merge OUT.json IN.json [IN.json ...]")
        merge(sys.argv[2], sys.argv[3:])
        return 0

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("old", help="baseline bench JSON (file or directory)")
    ap.add_argument("new", help="candidate bench JSON (file or directory)")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="relative slowdown that counts as a regression (default 0.10)",
    )
    ap.add_argument(
        "--metrics",
        action="store_true",
        help="also print the engine counter totals of both runs",
    )
    args = ap.parse_args()
    return compare(args.old, args.new, args.threshold, args.metrics)


if __name__ == "__main__":
    sys.exit(main())
