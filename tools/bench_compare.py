#!/usr/bin/env python3
"""Compare (or merge) stemcp BENCH.json files.

Every bench binary built with bench/bench_support.h writes one consolidated
JSON per run: per-benchmark wall time plus the process-global engine metrics
(see docs/PERFORMANCE.md).  This tool diffs two such files — or two merged
BENCH.json files, or two directories of *.stats.json — and flags regressions.

Usage:
  tools/bench_compare.py OLD NEW [--threshold 0.10] [--metrics]
                                 [--phase queue,lock [--percentile 99]]
      OLD / NEW are bench JSON files, merged BENCH.json files, or
      directories containing *.stats.json.  Exit code 1 when any benchmark's
      per-iteration real time regressed by more than --threshold.  With
      --phase, the compared quantity is instead the SUM of the named phase
      percentile counters ("<phase>_p99" ...) per benchmark — so a latency
      phase regression is asserted, not eyeballed — and benchmarks without
      those counters are skipped.

  tools/bench_compare.py merge OUT.json IN.json [IN.json ...]
      Consolidate several per-binary bench JSONs into one BENCH.json
      ({"benches": [...]}) for trajectory tracking.

  tools/bench_compare.py self-check
      Exercise this tool's own error paths (missing file, bad JSON, unknown
      gate arm, record without timings) and assert each one dies with a
      ONE-LINE diagnostic and a nonzero exit — never a traceback.  Run by
      tools/run_tier1.sh so a refactor cannot quietly bring tracebacks back.

  tools/bench_compare.py gate BENCH.json --bench B --base ARM --test ARM
      (--phase queue,lock [--percentile 99] | --counter NAME | --time)
      [--improve 2.0]
      [--flat propagate,fsync [--flat-tol 0.10] [--flat-stat p50]]
      Within ONE run: assert that the --test arm improves over the --base
      arm by at least --improve x on the chosen quantity — the summed
      --phase percentiles, a raw user counter (--counter, e.g. the FD
      selection gate's candidates-explored "cands"), or per-iteration wall
      time (--time) — while every --flat phase's "<phase>_<stat>" counter
      stays within --flat-tol of the base arm (stat: p50/p90/p99/mean/
      count).  Arms are matched by prefix ("BM_LatencyUnderLoad/12000/8"
      matches the "/iterations:1" suffix).  These are the sharded-service
      and FD-selection acceptance gates (tools/run_tier1.sh --bench;
      docs/PERFORMANCE.md explains the chosen statistics and tolerances on
      the single-core CI host).
"""

import argparse
import json
import os
import sys
import tempfile


def load_json(path):
    """json.load with one-line diagnostics instead of tracebacks."""
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except OSError as e:
        sys.exit(f"bench_compare: cannot read {path}: {e.strerror}")
    except json.JSONDecodeError as e:
        sys.exit(f"bench_compare: {path} is not valid JSON: {e}")


def real_time_of(rec, name):
    """A record's per-iteration real time, or a one-line exit if absent."""
    t = rec.get("real_time_ns_per_iter")
    if t is None:
        sys.exit(
            f"bench_compare: benchmark '{name}' has no real_time_ns_per_iter "
            "(not a timing record?)"
        )
    return t


def load_benchmarks(path):
    """Return {benchmark_name: record} from a bench JSON, a merged
    BENCH.json, or a directory of *.stats.json files."""
    files = []
    if os.path.isdir(path):
        files = [
            os.path.join(path, f)
            for f in sorted(os.listdir(path))
            if f.endswith(".json")
        ]
        if not files:
            sys.exit(f"bench_compare: no *.json files in directory {path}")
    else:
        files = [path]

    time_unit_ns = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
    out = {}
    for f in files:
        doc = load_json(f)
        if "context" in doc and "benchmarks" in doc:
            # Google Benchmark --benchmark_out format: real_time is already
            # per-iteration, expressed in time_unit.
            exe = os.path.basename(f).split(".")[0]
            for rec in doc["benchmarks"]:
                if rec.get("run_type", "iteration") != "iteration":
                    continue
                scale = time_unit_ns.get(rec.get("time_unit", "ns"), 1.0)
                out[f"{exe}:{rec['name']}"] = {
                    "name": rec["name"],
                    "iterations": rec.get("iterations", 0),
                    "real_time_ns_per_iter": rec.get("real_time", 0) * scale,
                    "cpu_time_ns_per_iter": rec.get("cpu_time", 0) * scale,
                }
            continue
        for bench_doc in doc.get("benches", [doc]):
            exe = bench_doc.get("bench", os.path.basename(f))
            for rec in bench_doc.get("benchmarks", []):
                # Qualify by binary so equal benchmark names never collide.
                out[f"{exe}:{rec['name']}"] = rec
    return out


def merge(out_path, in_paths):
    # Tolerate missing inputs (a bench that was skipped or crashed should
    # not lose the stats of the ones that ran) — but refuse to write an
    # empty BENCH.json, which would silently wipe the trajectory.
    benches = []
    for p in in_paths:
        if not os.path.exists(p):
            print(f"bench_compare: warning: skipping missing input {p}",
                  file=sys.stderr)
            continue
        doc = load_json(p)
        benches.extend(doc.get("benches", [doc]))
    if not benches:
        sys.exit("bench_compare: merge found no readable bench JSONs")
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump({"benches": benches}, fh, indent=1)
        fh.write("\n")
    print(f"bench_compare: wrote {out_path} ({len(benches)} bench binaries)")


def phase_sum(rec, phases, percentile):
    """Summed "<phase>_p<percentile>" counters, or None when any is absent."""
    counters = rec.get("counters", {})
    keys = [f"{p}_p{percentile}" for p in phases]
    if not all(k in counters for k in keys):
        return None
    return sum(counters[k] for k in keys)


def fmt_ns(ns):
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.2f}us"
    return f"{ns:.0f}ns"


def compare(old_path, new_path, threshold, show_metrics, phases=None,
            percentile=99):
    old = load_benchmarks(old_path)
    new = load_benchmarks(new_path)
    common = [k for k in old if k in new]
    if phases:
        # Compare the summed phase percentiles instead of wall time; only
        # benchmarks that export those counters participate.
        common = [
            k for k in common
            if phase_sum(old[k], phases, percentile) is not None
            and phase_sum(new[k], phases, percentile) is not None
        ]
        label = "+".join(phases) + f"_p{percentile}"
        print(f"comparing {label} (ns)")
    if not common:
        sys.exit("bench_compare: no common benchmarks between the two runs")

    width = max(len(k) for k in common)
    print(f"{'benchmark':<{width}}  {'old':>10}  {'new':>10}  {'delta':>8}")
    regressions = []
    for name in common:
        if phases:
            o = phase_sum(old[name], phases, percentile)
            n = phase_sum(new[name], phases, percentile)
        else:
            o = real_time_of(old[name], name)
            n = real_time_of(new[name], name)
        if o <= 0:
            continue
        delta = (n - o) / o
        flag = ""
        if delta > threshold:
            flag = "  REGRESSION"
            regressions.append((name, delta))
        elif delta < -threshold:
            flag = "  improved"
        print(
            f"{name:<{width}}  {fmt_ns(o):>10}  {fmt_ns(n):>10}  "
            f"{delta * 100:>+7.1f}%{flag}"
        )

    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))
    if only_old:
        print(f"\nonly in old run: {', '.join(only_old)}")
    if only_new:
        print(f"only in new run: {', '.join(only_new)}")

    if show_metrics:
        print("\nengine counters (old -> new):")
        o_counters = collect_counters(old_path)
        n_counters = collect_counters(new_path)
        for key in sorted(set(o_counters) | set(n_counters)):
            print(f"  {key}: {o_counters.get(key, 0)} -> {n_counters.get(key, 0)}")

    if regressions:
        print(
            f"\n{len(regressions)} regression(s) beyond "
            f"{threshold * 100:.0f}%:",
            file=sys.stderr,
        )
        for name, delta in regressions:
            print(f"  {name}: {delta * 100:+.1f}%", file=sys.stderr)
        return 1
    print(f"\nno regressions beyond {threshold * 100:.0f}%")
    return 0


def collect_counters(path):
    """Sum the engine metric counters over every bench doc under `path`."""
    files = (
        [
            os.path.join(path, f)
            for f in sorted(os.listdir(path))
            if f.endswith(".json")
        ]
        if os.path.isdir(path)
        else [path]
    )
    totals = {}
    for f in files:
        doc = load_json(f)
        for bench_doc in doc.get("benches", [doc]):
            for key, v in bench_doc.get("metrics", {}).get("counters", {}).items():
                totals[key] = totals.get(key, 0) + v
    return totals


def find_arm(benchmarks, bench, arm, run_path):
    """The unique record whose qualified name starts with 'bench:arm'."""
    prefix = f"{bench}:{arm}"
    hits = [k for k in benchmarks if k == prefix or k.startswith(prefix + "/")]
    if not hits:
        have = ", ".join(sorted(benchmarks)) or "nothing"
        sys.exit(
            f"bench_compare: arm '{prefix}' not found in snapshot {run_path} "
            f"(have: {have})"
        )
    if len(hits) > 1:
        sys.exit(
            f"bench_compare: arm '{prefix}' is ambiguous in snapshot "
            f"{run_path} (matches: {', '.join(sorted(hits))})"
        )
    return benchmarks[hits[0]]


def gate(args):
    benchmarks = load_benchmarks(args.run)
    base = find_arm(benchmarks, args.bench, args.base, args.run)
    test = find_arm(benchmarks, args.bench, args.test, args.run)
    modes = sum(1 for m in (args.phase, args.counter) if m) + (
        1 if args.time else 0)
    if modes != 1:
        sys.exit("bench_compare: gate needs exactly one of "
                 "--phase, --counter, --time")

    fmt = fmt_ns
    if args.phase:
        phases = args.phase.split(",")
        label = "+".join(phases) + f"_p{args.percentile}"
        base_q = phase_sum(base, phases, args.percentile)
        test_q = phase_sum(test, phases, args.percentile)
        if base_q is None or test_q is None:
            sys.exit(f"bench_compare: gate arms lack the {label} counters")
    elif args.counter:
        label = args.counter
        base_q = base.get("counters", {}).get(args.counter)
        test_q = test.get("counters", {}).get(args.counter)
        if base_q is None or test_q is None:
            sys.exit(f"bench_compare: gate arms lack the '{label}' counter")
        fmt = lambda v: f"{v:g}"  # noqa: E731 — counters are unitless
    else:
        label = "real_time_ns_per_iter"
        base_q = real_time_of(base, args.base)
        test_q = real_time_of(test, args.test)

    ratio = base_q / test_q if test_q > 0 else float("inf")
    ok = ratio >= args.improve
    print(
        f"gate: {label}  base={fmt(base_q)}  test={fmt(test_q)}  "
        f"improvement={ratio:.2f}x  (need >= {args.improve:.2f}x)"
        f"{'' if ok else '  FAIL'}"
    )

    flat_phases = args.flat.split(",") if args.flat else []
    for p in flat_phases:
        key = f"{p}_{args.flat_stat}"
        b = base.get("counters", {}).get(key)
        t = test.get("counters", {}).get(key)
        if b is None or t is None:
            print(f"gate: {key}  missing counter  FAIL")
            ok = False
            continue
        if b == 0 and t == 0:
            print(f"gate: {key}  base=0  test=0  flat")
            continue
        drift = abs(t - b) / b if b > 0 else float("inf")
        flat_ok = drift <= args.flat_tol
        print(
            f"gate: {key}  base={fmt_ns(b)}  test={fmt_ns(t)}  "
            f"drift={drift * 100:.1f}%  (allowed {args.flat_tol * 100:.0f}%)"
            f"{'' if flat_ok else '  FAIL'}"
        )
        ok = ok and flat_ok

    print("gate: PASS" if ok else "gate: FAIL")
    return 0 if ok else 1


def self_check():
    """Assert the error paths die with one-line diagnostics, not tracebacks."""
    failures = []

    def expect_exit(what, fn, *needles):
        try:
            fn()
        except SystemExit as e:
            msg = str(e.code) if isinstance(e.code, str) else ""
            if not msg:
                failures.append(f"{what}: exited without a diagnostic")
            elif "\n" in msg.strip():
                failures.append(f"{what}: diagnostic is not one line: {msg!r}")
            else:
                for needle in needles:
                    if needle not in msg:
                        failures.append(
                            f"{what}: diagnostic {msg!r} lacks {needle!r}")
            return
        except Exception as e:  # noqa: BLE001 — the thing we guard against
            failures.append(f"{what}: raised {type(e).__name__} ({e}) "
                            "instead of a clean exit")
            return
        failures.append(f"{what}: did not fail at all")

    with tempfile.TemporaryDirectory() as tmp:
        bad_json = os.path.join(tmp, "bad.json")
        with open(bad_json, "w", encoding="utf-8") as fh:
            fh.write("{ not json")
        snap = os.path.join(tmp, "snap.json")
        with open(snap, "w", encoding="utf-8") as fh:
            json.dump({"benches": [{
                "bench": "bench_x",
                "benchmarks": [
                    {"name": "BM_A/iterations:1", "counters": {"e2e_p99": 5}},
                    {"name": "BM_B/1", "real_time_ns_per_iter": 10},
                    {"name": "BM_B/2", "real_time_ns_per_iter": 10},
                ],
            }]}, fh)

        missing = os.path.join(tmp, "no_such.json")
        expect_exit("missing file", lambda: load_json(missing),
                    "cannot read", missing)
        expect_exit("invalid JSON", lambda: load_json(bad_json),
                    "not valid JSON", bad_json)

        benchmarks = load_benchmarks(snap)
        expect_exit(
            "unknown arm",
            lambda: find_arm(benchmarks, "bench_x", "BM_Nope", snap),
            f"arm 'bench_x:BM_Nope' not found in snapshot {snap}",
            "(have: ",
        )
        expect_exit(
            "ambiguous arm",
            lambda: find_arm(benchmarks, "bench_x", "BM_B", snap),
            "ambiguous", "BM_B/1", "BM_B/2",
        )
        expect_exit(
            "record without timing",
            lambda: real_time_of(benchmarks["bench_x:BM_A/iterations:1"],
                                 "bench_x:BM_A/iterations:1"),
            "no real_time_ns_per_iter",
        )
        expect_exit(
            "missing phase counters",
            lambda: sys.exit("bench_compare: gate arms lack the q_p99 counters")
            if phase_sum(benchmarks["bench_x:BM_A/iterations:1"], ["q"], "99")
            is None else None,
            "lack the q_p99 counters",
        )

    if failures:
        for f in failures:
            print(f"self-check: FAIL: {f}", file=sys.stderr)
        return 1
    print("self-check: PASS (6 error path(s) die cleanly)")
    return 0


def main():
    if len(sys.argv) >= 2 and sys.argv[1] == "self-check":
        return self_check()

    if len(sys.argv) >= 2 and sys.argv[1] == "merge":
        if len(sys.argv) < 4:
            sys.exit("usage: bench_compare.py merge OUT.json IN.json [IN.json ...]")
        merge(sys.argv[2], sys.argv[3:])
        return 0

    if len(sys.argv) >= 2 and sys.argv[1] == "gate":
        ap = argparse.ArgumentParser(prog="bench_compare.py gate")
        ap.add_argument("run", help="bench JSON of ONE run (file or directory)")
        ap.add_argument("--bench", required=True, help="bench binary name")
        ap.add_argument("--base", required=True, help="baseline arm name prefix")
        ap.add_argument("--test", required=True, help="candidate arm name prefix")
        ap.add_argument("--phase", default="",
                        help="comma-separated phases whose summed percentile "
                             "must improve")
        ap.add_argument("--counter", default="",
                        help="compare this raw user counter instead of "
                             "phase percentiles")
        ap.add_argument("--time", action="store_true",
                        help="compare per-iteration wall time instead of "
                             "phase percentiles")
        ap.add_argument("--improve", type=float, default=2.0,
                        help="required improvement factor (default 2.0)")
        ap.add_argument("--percentile", default="99",
                        help="percentile for the improvement phases "
                             "(default 99)")
        ap.add_argument("--flat", default="",
                        help="comma-separated phases that must NOT move")
        ap.add_argument("--flat-tol", type=float, default=0.10,
                        help="allowed relative drift for flat phases "
                             "(default 0.10)")
        ap.add_argument("--flat-stat", default="p50",
                        help="counter suffix for the flat phases "
                             "(p50/p90/p99/mean/count; default p50)")
        return gate(ap.parse_args(sys.argv[2:]))

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("old", help="baseline bench JSON (file or directory)")
    ap.add_argument("new", help="candidate bench JSON (file or directory)")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="relative slowdown that counts as a regression (default 0.10)",
    )
    ap.add_argument(
        "--metrics",
        action="store_true",
        help="also print the engine counter totals of both runs",
    )
    ap.add_argument(
        "--phase",
        default="",
        help="comma-separated phase names: compare the summed "
             "'<phase>_p<percentile>' counters instead of wall time",
    )
    ap.add_argument(
        "--percentile",
        default="99",
        help="percentile suffix used with --phase (default 99)",
    )
    args = ap.parse_args()
    return compare(args.old, args.new, args.threshold, args.metrics,
                   args.phase.split(",") if args.phase else None,
                   args.percentile)


if __name__ == "__main__":
    sys.exit(main())
