#!/usr/bin/env bash
# Tier-1 verification, twice: a plain RelWithDebInfo run and an opt-in
# ASan/UBSan run (CMake option STEMCP_SANITIZE).  Intended as the CI entry
# point; both runs must pass.
#
#   tools/run_tier1.sh            # plain + sanitized
#   tools/run_tier1.sh --plain    # plain only
#   tools/run_tier1.sh --sanitize # sanitized only
#   STEMCP_SANITIZE=address tools/run_tier1.sh   # override sanitizer list
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZERS="${STEMCP_SANITIZE:-address,undefined}"
RUN_PLAIN=1
RUN_SANITIZED=1
case "${1:-}" in
  --plain) RUN_SANITIZED=0 ;;
  --sanitize) RUN_PLAIN=0 ;;
  "") ;;
  *) echo "usage: $0 [--plain|--sanitize]" >&2; exit 2 ;;
esac

run_suite() {
  local build_dir="$1"; shift
  cmake -B "$build_dir" -S . "$@"
  cmake --build "$build_dir" -j "$(nproc)"
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
}

if [[ "$RUN_PLAIN" == 1 ]]; then
  echo "== tier-1: plain =="
  run_suite build
fi

if [[ "$RUN_SANITIZED" == 1 ]]; then
  echo "== tier-1: sanitized ($SANITIZERS) =="
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}" \
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}" \
  run_suite build-sanitize "-DSTEMCP_SANITIZE=$SANITIZERS"
fi

echo "tier-1 verification passed"
