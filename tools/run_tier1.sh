#!/usr/bin/env bash
# Tier-1 verification, three ways: a plain RelWithDebInfo run, an opt-in
# ASan/UBSan run, and a ThreadSanitizer pass over the concurrency suites
# (CMake option STEMCP_SANITIZE).  Intended as the CI entry point.
#
#   tools/run_tier1.sh            # plain + sanitized + tsan
#   tools/run_tier1.sh --plain    # plain only
#   tools/run_tier1.sh --sanitize # ASan/UBSan only
#   tools/run_tier1.sh --tsan     # ThreadSanitizer concurrency pass only
#   tools/run_tier1.sh --asan     # fast ASan/UBSan pass over the durability
#                                 suites only (journal/checkpoint/recovery
#                                 code does raw fd I/O and manual rollback —
#                                 the memory-bug surface of this repo)
#   tools/run_tier1.sh --bench    # opt-in Release bench smoke: runs the
#                                 hottest benches and merges their stats into
#                                 build-bench/BENCH.json (see
#                                 docs/PERFORMANCE.md and tools/bench_compare.py)
#   STEMCP_SANITIZE=address tools/run_tier1.sh   # override sanitizer list
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZERS="${STEMCP_SANITIZE:-address,undefined}"
# Tests exercising shared state from multiple threads: the design service,
# the line-protocol front end over it, and the process-global metrics.
TSAN_FILTER='DesignService|ServiceProtocol|GlobalMetrics|Telemetry|FlightRecorder|ShardStress|ShardRecovery|FdService|GroupCommitHammer|WorkloadReplay'
# The durability layer: raw-fd journal I/O, checkpoint rename dance, replay,
# and the reader's append-rollback path — everything that touches memory by
# hand.  Run under ASan/UBSan by --asan.  The workload trace codec/scanner
# (CRC framing, torn-tail scan, FILE* writer) belongs to the same surface.
ASAN_FILTER='Journal|Crc32|FsyncPolicy|RecordCodec|Checkpoint|AtomicWrite|Persistence|IoTest|IoSeeds|ExampleDesigns|Fd|GroupCommit|Segment|Trace|Workload'
# The hottest benchmarks, smoked by --bench.
BENCH_SMOKE="bench_fig4_5_simple_network bench_agenda_scheduling bench_design_service bench_persistence bench_latency_under_load bench_fd_selection bench_workload_replay"
RUN_PLAIN=1
RUN_SANITIZED=1
RUN_TSAN=1
RUN_ASAN=0
RUN_BENCH=0
case "${1:-}" in
  --plain) RUN_SANITIZED=0; RUN_TSAN=0 ;;
  --sanitize) RUN_PLAIN=0; RUN_TSAN=0 ;;
  --tsan) RUN_PLAIN=0; RUN_SANITIZED=0 ;;
  --asan) RUN_PLAIN=0; RUN_SANITIZED=0; RUN_TSAN=0; RUN_ASAN=1 ;;
  --bench) RUN_PLAIN=0; RUN_SANITIZED=0; RUN_TSAN=0; RUN_BENCH=1 ;;
  "") ;;
  *) echo "usage: $0 [--plain|--sanitize|--tsan|--asan|--bench]" >&2; exit 2 ;;
esac

run_suite() {
  local build_dir="$1"; shift
  cmake -B "$build_dir" -S . "$@"
  cmake --build "$build_dir" -j "$(nproc)"
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
}

if [[ "$RUN_PLAIN" == 1 ]]; then
  echo "== tier-1: plain =="
  run_suite build
  # The bench tooling's own error paths must die with one-line diagnostics,
  # never tracebacks (tools/bench_compare.py self-check).
  tools/bench_compare.py self-check
fi

if [[ "$RUN_SANITIZED" == 1 ]]; then
  echo "== tier-1: sanitized ($SANITIZERS) =="
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}" \
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}" \
  run_suite build-sanitize "-DSTEMCP_SANITIZE=$SANITIZERS"
fi

if [[ "$RUN_TSAN" == 1 ]]; then
  echo "== tier-1: thread sanitizer ($TSAN_FILTER) =="
  cmake -B build-tsan -S . -DSTEMCP_SANITIZE=thread
  cmake --build build-tsan -j "$(nproc)"
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  ctest --test-dir build-tsan --output-on-failure -j "$(nproc)" \
    -R "$TSAN_FILTER"
fi

if [[ "$RUN_ASAN" == 1 ]]; then
  echo "== tier-1: asan durability pass ($ASAN_FILTER) =="
  cmake -B build-sanitize -S . -DSTEMCP_SANITIZE=address,undefined
  cmake --build build-sanitize -j "$(nproc)"
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}" \
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}" \
  ctest --test-dir build-sanitize --output-on-failure -j "$(nproc)" \
    -R "$ASAN_FILTER"
fi

if [[ "$RUN_BENCH" == 1 ]]; then
  echo "== tier-1: bench smoke (Release) =="
  tools/bench_compare.py self-check
  cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-bench -j "$(nproc)" --target $BENCH_SMOKE
  stats_files=()
  for b in $BENCH_SMOKE; do
    # Flush the previous bench's dirty pages: bench_persistence leaves a
    # writeback backlog that can stall the next bench's fsyncs for ~100ms.
    sync
    STEMCP_BENCH_STATS="build-bench/$b.stats.json" \
      "build-bench/bench/$b" --benchmark_min_time=0.05
    stats_files+=("build-bench/$b.stats.json")
  done
  tools/bench_compare.py merge build-bench/BENCH.json "${stats_files[@]}"
  echo "bench smoke written to build-bench/BENCH.json"
  # Sharding acceptance gate: at the saturating rate, going from one shard
  # (one worker serializing every fsync) to eight shard-per-worker lanes must
  # cut the queue+lock p99 at least 2x, while the propagate/fsync medians stay
  # within one log2 histogram bucket — tol 1.01 because one bucket step on
  # the 2^i-1 bounds is a 2.0000076x ratio; docs/PERFORMANCE.md explains why
  # sub-bucket tolerances are meaningless on this host.
  echo "== sharding gate (queue+lock p99, 12000 rps, 1 vs 8 shards) =="
  if ! tools/bench_compare.py gate build-bench/BENCH.json \
      --bench bench_latency_under_load \
      --base BM_LatencyUnderLoad/12000/1 --test BM_LatencyUnderLoad/12000/8 \
      --phase queue,lock --improve 2.0 \
      --flat propagate,fsync --flat-stat p50 --flat-tol 1.01; then
    if [[ "${STEMCP_BENCH_GATE:-0}" == 1 ]]; then
      echo "sharding gate failed" >&2
      exit 1
    fi
    echo "(sharding gate reported failure; STEMCP_BENCH_GATE=1 makes this fatal)"
  fi
  # Group-commit gate (ISSUE 9, docs/PERSISTENCE.md): at a saturating arrival
  # depth of 64 concurrent requests, batching the flushes must buy at least
  # 5x the journaled req/s of fsync-per-record.  Fatal only with
  # STEMCP_BENCH_GATE=1 (wall time on shared CI machines is noisy).
  echo "== group-commit gate (req/s, every-record vs group-commit, depth 64) =="
  if ! tools/bench_compare.py gate build-bench/BENCH.json \
      --bench bench_persistence \
      --base BM_JournalSaturation/0/64/real_time \
      --test BM_JournalSaturation/1/64/real_time \
      --time --improve 5.0; then
    if [[ "${STEMCP_BENCH_GATE:-0}" == 1 ]]; then
      echo "group-commit gate failed" >&2
      exit 1
    fi
    echo "(group-commit gate reported failure; STEMCP_BENCH_GATE=1 makes this fatal)"
  fi
  # FD selection gate (ISSUE 8, docs/SOLVER.md): at the largest library size
  # (64 families x 64 leaves) the FD solver must explore >= 10x fewer
  # candidates than unpruned generate-and-test — deterministic counters, so
  # this one is ALWAYS fatal — and also finish faster (wall time, fatal only
  # with STEMCP_BENCH_GATE=1 since shared CI machines are noisy).
  echo "== fd selection gate (candidates explored, 64x64 library) =="
  tools/bench_compare.py gate build-bench/BENCH.json \
    --bench bench_fd_selection \
    --base BM_GenerateAndTest/64/64 --test BM_FdSelect/64/64 \
    --counter cands --improve 10.0
  echo "== fd selection gate (wall time, 64x64 library) =="
  if ! tools/bench_compare.py gate build-bench/BENCH.json \
      --bench bench_fd_selection \
      --base BM_GenerateAndTest/64/64 --test BM_FdSelect/64/64 \
      --time --improve 1.0; then
    if [[ "${STEMCP_BENCH_GATE:-0}" == 1 ]]; then
      echo "fd selection wall-time gate failed" >&2
      exit 1
    fi
    echo "(fd wall-time gate reported failure; STEMCP_BENCH_GATE=1 makes this fatal)"
  fi
  # Perf trajectory: diff against the newest committed snapshot.  The diff
  # always prints; STEMCP_BENCH_GATE=1 turns >10% regressions into a hard
  # failure (kept opt-in because shared CI machines are noisy).
  latest_snapshot="$(ls bench/snapshots/BENCH_*.json 2>/dev/null | sort | tail -1 || true)"
  if [[ -n "$latest_snapshot" ]]; then
    echo "== bench diff vs $latest_snapshot =="
    if ! tools/bench_compare.py "$latest_snapshot" build-bench/BENCH.json; then
      if [[ "${STEMCP_BENCH_GATE:-0}" == 1 ]]; then
        echo "bench regression gate failed (vs $latest_snapshot)" >&2
        exit 1
      fi
      echo "(regressions reported; STEMCP_BENCH_GATE=1 makes this fatal)"
    fi
  else
    echo "no committed snapshot in bench/snapshots/ to diff against"
  fi
  # Macro-workload end-to-end latency (ISSUE 10, docs/WORKLOAD.md): diff the
  # e2e p99 of every bench exporting it — the open-loop workload replay and
  # the latency-under-load arms — against the same snapshot.  Fatal only with
  # STEMCP_BENCH_GATE=1, like the wall-time diff.
  if [[ -n "$latest_snapshot" ]]; then
    echo "== e2e p99 diff vs $latest_snapshot =="
    if ! tools/bench_compare.py "$latest_snapshot" build-bench/BENCH.json \
        --phase e2e --percentile 99 --threshold 0.25; then
      if [[ "${STEMCP_BENCH_GATE:-0}" == 1 ]]; then
        echo "e2e p99 gate failed (vs $latest_snapshot)" >&2
        exit 1
      fi
      echo "(e2e p99 regressions reported; STEMCP_BENCH_GATE=1 makes this fatal)"
    fi
  fi
  # STEMCP_BENCH_RECORD=<path> snapshots this run (e.g.
  # bench/snapshots/BENCH_0007.json) for future trajectory diffs.  Recorded
  # AFTER the diff so the run never compares against itself.
  if [[ -n "${STEMCP_BENCH_RECORD:-}" ]]; then
    cp build-bench/BENCH.json "$STEMCP_BENCH_RECORD"
    echo "bench snapshot recorded to $STEMCP_BENCH_RECORD"
  fi
fi

echo "tier-1 verification passed"
