file(REMOVE_RECURSE
  "CMakeFiles/core_dependency_test.dir/core/dependency_test.cpp.o"
  "CMakeFiles/core_dependency_test.dir/core/dependency_test.cpp.o.d"
  "core_dependency_test"
  "core_dependency_test.pdb"
  "core_dependency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_dependency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
