# Empty dependencies file for core_dependency_test.
# This may be replaced when dependencies are built.
