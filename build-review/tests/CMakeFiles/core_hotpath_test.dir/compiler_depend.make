# Empty compiler generated dependencies file for core_hotpath_test.
# This may be replaced when dependencies are built.
