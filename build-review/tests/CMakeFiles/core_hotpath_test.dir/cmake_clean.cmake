file(REMOVE_RECURSE
  "CMakeFiles/core_hotpath_test.dir/core/hotpath_test.cpp.o"
  "CMakeFiles/core_hotpath_test.dir/core/hotpath_test.cpp.o.d"
  "core_hotpath_test"
  "core_hotpath_test.pdb"
  "core_hotpath_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_hotpath_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
