file(REMOVE_RECURSE
  "CMakeFiles/core_cycle_test.dir/core/cycle_test.cpp.o"
  "CMakeFiles/core_cycle_test.dir/core/cycle_test.cpp.o.d"
  "core_cycle_test"
  "core_cycle_test.pdb"
  "core_cycle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_cycle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
