# Empty dependencies file for core_cycle_test.
# This may be replaced when dependencies are built.
