file(REMOVE_RECURSE
  "CMakeFiles/stem_misc_test.dir/stem/misc_test.cpp.o"
  "CMakeFiles/stem_misc_test.dir/stem/misc_test.cpp.o.d"
  "stem_misc_test"
  "stem_misc_test.pdb"
  "stem_misc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stem_misc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
