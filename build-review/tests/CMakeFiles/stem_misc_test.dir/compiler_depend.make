# Empty compiler generated dependencies file for stem_misc_test.
# This may be replaced when dependencies are built.
