file(REMOVE_RECURSE
  "CMakeFiles/core_geometry_test.dir/core/geometry_test.cpp.o"
  "CMakeFiles/core_geometry_test.dir/core/geometry_test.cpp.o.d"
  "core_geometry_test"
  "core_geometry_test.pdb"
  "core_geometry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_geometry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
