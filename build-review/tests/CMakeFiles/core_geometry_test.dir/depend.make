# Empty dependencies file for core_geometry_test.
# This may be replaced when dependencies are built.
