file(REMOVE_RECURSE
  "CMakeFiles/stem_compiler_test.dir/stem/compiler_test.cpp.o"
  "CMakeFiles/stem_compiler_test.dir/stem/compiler_test.cpp.o.d"
  "stem_compiler_test"
  "stem_compiler_test.pdb"
  "stem_compiler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stem_compiler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
