# Empty dependencies file for stem_compiler_test.
# This may be replaced when dependencies are built.
