# Empty compiler generated dependencies file for stem_bbox_test.
# This may be replaced when dependencies are built.
