file(REMOVE_RECURSE
  "CMakeFiles/stem_bbox_test.dir/stem/bbox_test.cpp.o"
  "CMakeFiles/stem_bbox_test.dir/stem/bbox_test.cpp.o.d"
  "stem_bbox_test"
  "stem_bbox_test.pdb"
  "stem_bbox_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stem_bbox_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
