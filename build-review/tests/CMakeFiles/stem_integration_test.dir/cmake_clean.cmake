file(REMOVE_RECURSE
  "CMakeFiles/stem_integration_test.dir/stem/integration_test.cpp.o"
  "CMakeFiles/stem_integration_test.dir/stem/integration_test.cpp.o.d"
  "stem_integration_test"
  "stem_integration_test.pdb"
  "stem_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stem_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
