# Empty compiler generated dependencies file for stem_integration_test.
# This may be replaced when dependencies are built.
