# Empty compiler generated dependencies file for core_editing_test.
# This may be replaced when dependencies are built.
