file(REMOVE_RECURSE
  "CMakeFiles/core_editing_test.dir/core/editing_test.cpp.o"
  "CMakeFiles/core_editing_test.dir/core/editing_test.cpp.o.d"
  "core_editing_test"
  "core_editing_test.pdb"
  "core_editing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_editing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
