file(REMOVE_RECURSE
  "CMakeFiles/stem_selection_test.dir/stem/selection_test.cpp.o"
  "CMakeFiles/stem_selection_test.dir/stem/selection_test.cpp.o.d"
  "stem_selection_test"
  "stem_selection_test.pdb"
  "stem_selection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stem_selection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
