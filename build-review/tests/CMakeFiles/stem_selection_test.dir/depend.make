# Empty dependencies file for stem_selection_test.
# This may be replaced when dependencies are built.
