# Empty dependencies file for stem_hierarchy_test.
# This may be replaced when dependencies are built.
