file(REMOVE_RECURSE
  "CMakeFiles/stem_hierarchy_test.dir/stem/hierarchy_test.cpp.o"
  "CMakeFiles/stem_hierarchy_test.dir/stem/hierarchy_test.cpp.o.d"
  "stem_hierarchy_test"
  "stem_hierarchy_test.pdb"
  "stem_hierarchy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stem_hierarchy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
