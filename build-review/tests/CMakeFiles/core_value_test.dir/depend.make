# Empty dependencies file for core_value_test.
# This may be replaced when dependencies are built.
