file(REMOVE_RECURSE
  "CMakeFiles/core_value_test.dir/core/value_test.cpp.o"
  "CMakeFiles/core_value_test.dir/core/value_test.cpp.o.d"
  "core_value_test"
  "core_value_test.pdb"
  "core_value_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
