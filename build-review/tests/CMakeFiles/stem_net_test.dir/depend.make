# Empty dependencies file for stem_net_test.
# This may be replaced when dependencies are built.
