file(REMOVE_RECURSE
  "CMakeFiles/stem_net_test.dir/stem/net_test.cpp.o"
  "CMakeFiles/stem_net_test.dir/stem/net_test.cpp.o.d"
  "stem_net_test"
  "stem_net_test.pdb"
  "stem_net_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stem_net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
