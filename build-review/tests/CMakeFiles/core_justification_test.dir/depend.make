# Empty dependencies file for core_justification_test.
# This may be replaced when dependencies are built.
