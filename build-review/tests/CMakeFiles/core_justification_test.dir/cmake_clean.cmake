file(REMOVE_RECURSE
  "CMakeFiles/core_justification_test.dir/core/justification_test.cpp.o"
  "CMakeFiles/core_justification_test.dir/core/justification_test.cpp.o.d"
  "core_justification_test"
  "core_justification_test.pdb"
  "core_justification_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_justification_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
