# Empty compiler generated dependencies file for service_design_service_test.
# This may be replaced when dependencies are built.
