file(REMOVE_RECURSE
  "CMakeFiles/stem_characterize_test.dir/stem/characterize_test.cpp.o"
  "CMakeFiles/stem_characterize_test.dir/stem/characterize_test.cpp.o.d"
  "stem_characterize_test"
  "stem_characterize_test.pdb"
  "stem_characterize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stem_characterize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
