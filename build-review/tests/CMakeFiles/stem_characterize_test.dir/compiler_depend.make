# Empty compiler generated dependencies file for stem_characterize_test.
# This may be replaced when dependencies are built.
