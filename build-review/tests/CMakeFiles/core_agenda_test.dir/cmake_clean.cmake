file(REMOVE_RECURSE
  "CMakeFiles/core_agenda_test.dir/core/agenda_test.cpp.o"
  "CMakeFiles/core_agenda_test.dir/core/agenda_test.cpp.o.d"
  "core_agenda_test"
  "core_agenda_test.pdb"
  "core_agenda_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_agenda_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
