file(REMOVE_RECURSE
  "CMakeFiles/stem_netlist_test.dir/stem/netlist_test.cpp.o"
  "CMakeFiles/stem_netlist_test.dir/stem/netlist_test.cpp.o.d"
  "stem_netlist_test"
  "stem_netlist_test.pdb"
  "stem_netlist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stem_netlist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
