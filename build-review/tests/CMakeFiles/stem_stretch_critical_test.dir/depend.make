# Empty dependencies file for stem_stretch_critical_test.
# This may be replaced when dependencies are built.
