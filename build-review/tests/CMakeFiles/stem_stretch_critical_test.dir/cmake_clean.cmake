file(REMOVE_RECURSE
  "CMakeFiles/stem_stretch_critical_test.dir/stem/stretch_critical_test.cpp.o"
  "CMakeFiles/stem_stretch_critical_test.dir/stem/stretch_critical_test.cpp.o.d"
  "stem_stretch_critical_test"
  "stem_stretch_critical_test.pdb"
  "stem_stretch_critical_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stem_stretch_critical_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
