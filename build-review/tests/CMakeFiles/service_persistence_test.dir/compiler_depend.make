# Empty compiler generated dependencies file for service_persistence_test.
# This may be replaced when dependencies are built.
