file(REMOVE_RECURSE
  "CMakeFiles/service_persistence_test.dir/service/persistence_test.cpp.o"
  "CMakeFiles/service_persistence_test.dir/service/persistence_test.cpp.o.d"
  "service_persistence_test"
  "service_persistence_test.pdb"
  "service_persistence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_persistence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
