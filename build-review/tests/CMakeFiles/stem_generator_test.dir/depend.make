# Empty dependencies file for stem_generator_test.
# This may be replaced when dependencies are built.
