file(REMOVE_RECURSE
  "CMakeFiles/stem_generator_test.dir/stem/generator_test.cpp.o"
  "CMakeFiles/stem_generator_test.dir/stem/generator_test.cpp.o.d"
  "stem_generator_test"
  "stem_generator_test.pdb"
  "stem_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stem_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
