# Empty dependencies file for stem_compaction_test.
# This may be replaced when dependencies are built.
