file(REMOVE_RECURSE
  "CMakeFiles/stem_compaction_test.dir/stem/compaction_test.cpp.o"
  "CMakeFiles/stem_compaction_test.dir/stem/compaction_test.cpp.o.d"
  "stem_compaction_test"
  "stem_compaction_test.pdb"
  "stem_compaction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stem_compaction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
