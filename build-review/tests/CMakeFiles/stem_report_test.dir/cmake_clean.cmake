file(REMOVE_RECURSE
  "CMakeFiles/stem_report_test.dir/stem/report_test.cpp.o"
  "CMakeFiles/stem_report_test.dir/stem/report_test.cpp.o.d"
  "stem_report_test"
  "stem_report_test.pdb"
  "stem_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stem_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
