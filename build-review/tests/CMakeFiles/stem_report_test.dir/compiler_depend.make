# Empty compiler generated dependencies file for stem_report_test.
# This may be replaced when dependencies are built.
