# Empty dependencies file for persist_journal_test.
# This may be replaced when dependencies are built.
