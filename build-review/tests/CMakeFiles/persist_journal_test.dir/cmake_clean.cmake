file(REMOVE_RECURSE
  "CMakeFiles/persist_journal_test.dir/persist/journal_test.cpp.o"
  "CMakeFiles/persist_journal_test.dir/persist/journal_test.cpp.o.d"
  "persist_journal_test"
  "persist_journal_test.pdb"
  "persist_journal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persist_journal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
