# Empty dependencies file for stem_minispice_test.
# This may be replaced when dependencies are built.
