file(REMOVE_RECURSE
  "CMakeFiles/stem_minispice_test.dir/stem/minispice_test.cpp.o"
  "CMakeFiles/stem_minispice_test.dir/stem/minispice_test.cpp.o.d"
  "stem_minispice_test"
  "stem_minispice_test.pdb"
  "stem_minispice_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stem_minispice_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
