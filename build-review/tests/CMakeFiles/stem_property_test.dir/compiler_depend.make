# Empty compiler generated dependencies file for stem_property_test.
# This may be replaced when dependencies are built.
