file(REMOVE_RECURSE
  "CMakeFiles/stem_property_test.dir/stem/stem_property_test.cpp.o"
  "CMakeFiles/stem_property_test.dir/stem/stem_property_test.cpp.o.d"
  "stem_property_test"
  "stem_property_test.pdb"
  "stem_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stem_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
