file(REMOVE_RECURSE
  "CMakeFiles/stem_signal_check_test.dir/stem/signal_check_test.cpp.o"
  "CMakeFiles/stem_signal_check_test.dir/stem/signal_check_test.cpp.o.d"
  "stem_signal_check_test"
  "stem_signal_check_test.pdb"
  "stem_signal_check_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stem_signal_check_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
