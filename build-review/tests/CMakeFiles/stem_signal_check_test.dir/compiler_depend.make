# Empty compiler generated dependencies file for stem_signal_check_test.
# This may be replaced when dependencies are built.
