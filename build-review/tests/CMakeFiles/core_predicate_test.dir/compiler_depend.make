# Empty compiler generated dependencies file for core_predicate_test.
# This may be replaced when dependencies are built.
