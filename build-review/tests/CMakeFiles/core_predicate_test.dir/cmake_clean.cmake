file(REMOVE_RECURSE
  "CMakeFiles/core_predicate_test.dir/core/predicate_test.cpp.o"
  "CMakeFiles/core_predicate_test.dir/core/predicate_test.cpp.o.d"
  "core_predicate_test"
  "core_predicate_test.pdb"
  "core_predicate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_predicate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
