file(REMOVE_RECURSE
  "CMakeFiles/stem_cell_test.dir/stem/cell_test.cpp.o"
  "CMakeFiles/stem_cell_test.dir/stem/cell_test.cpp.o.d"
  "stem_cell_test"
  "stem_cell_test.pdb"
  "stem_cell_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stem_cell_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
