# Empty compiler generated dependencies file for stem_cell_test.
# This may be replaced when dependencies are built.
