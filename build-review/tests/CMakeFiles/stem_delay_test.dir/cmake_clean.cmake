file(REMOVE_RECURSE
  "CMakeFiles/stem_delay_test.dir/stem/delay_test.cpp.o"
  "CMakeFiles/stem_delay_test.dir/stem/delay_test.cpp.o.d"
  "stem_delay_test"
  "stem_delay_test.pdb"
  "stem_delay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stem_delay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
