# Empty compiler generated dependencies file for stem_delay_test.
# This may be replaced when dependencies are built.
