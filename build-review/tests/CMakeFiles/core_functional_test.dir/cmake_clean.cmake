file(REMOVE_RECURSE
  "CMakeFiles/core_functional_test.dir/core/functional_test.cpp.o"
  "CMakeFiles/core_functional_test.dir/core/functional_test.cpp.o.d"
  "core_functional_test"
  "core_functional_test.pdb"
  "core_functional_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_functional_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
