# Empty compiler generated dependencies file for core_functional_test.
# This may be replaced when dependencies are built.
