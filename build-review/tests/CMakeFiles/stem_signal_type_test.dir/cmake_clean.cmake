file(REMOVE_RECURSE
  "CMakeFiles/stem_signal_type_test.dir/stem/signal_type_test.cpp.o"
  "CMakeFiles/stem_signal_type_test.dir/stem/signal_type_test.cpp.o.d"
  "stem_signal_type_test"
  "stem_signal_type_test.pdb"
  "stem_signal_type_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stem_signal_type_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
