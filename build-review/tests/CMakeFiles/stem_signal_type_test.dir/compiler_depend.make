# Empty compiler generated dependencies file for stem_signal_type_test.
# This may be replaced when dependencies are built.
