file(REMOVE_RECURSE
  "CMakeFiles/stem_stress_test.dir/stem/stress_test.cpp.o"
  "CMakeFiles/stem_stress_test.dir/stem/stress_test.cpp.o.d"
  "stem_stress_test"
  "stem_stress_test.pdb"
  "stem_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stem_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
