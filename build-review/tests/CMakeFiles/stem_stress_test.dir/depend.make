# Empty dependencies file for stem_stress_test.
# This may be replaced when dependencies are built.
