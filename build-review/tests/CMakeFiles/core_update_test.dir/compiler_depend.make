# Empty compiler generated dependencies file for core_update_test.
# This may be replaced when dependencies are built.
