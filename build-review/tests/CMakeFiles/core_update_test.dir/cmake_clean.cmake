file(REMOVE_RECURSE
  "CMakeFiles/core_update_test.dir/core/update_test.cpp.o"
  "CMakeFiles/core_update_test.dir/core/update_test.cpp.o.d"
  "core_update_test"
  "core_update_test.pdb"
  "core_update_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_update_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
