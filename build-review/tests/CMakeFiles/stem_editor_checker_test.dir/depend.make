# Empty dependencies file for stem_editor_checker_test.
# This may be replaced when dependencies are built.
