file(REMOVE_RECURSE
  "CMakeFiles/stem_editor_checker_test.dir/stem/editor_checker_test.cpp.o"
  "CMakeFiles/stem_editor_checker_test.dir/stem/editor_checker_test.cpp.o.d"
  "stem_editor_checker_test"
  "stem_editor_checker_test.pdb"
  "stem_editor_checker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stem_editor_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
