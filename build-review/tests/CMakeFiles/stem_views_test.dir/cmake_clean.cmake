file(REMOVE_RECURSE
  "CMakeFiles/stem_views_test.dir/stem/views_test.cpp.o"
  "CMakeFiles/stem_views_test.dir/stem/views_test.cpp.o.d"
  "stem_views_test"
  "stem_views_test.pdb"
  "stem_views_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stem_views_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
