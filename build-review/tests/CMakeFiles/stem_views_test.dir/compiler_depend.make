# Empty compiler generated dependencies file for stem_views_test.
# This may be replaced when dependencies are built.
