file(REMOVE_RECURSE
  "CMakeFiles/stem_shell_test.dir/stem/shell_test.cpp.o"
  "CMakeFiles/stem_shell_test.dir/stem/shell_test.cpp.o.d"
  "stem_shell_test"
  "stem_shell_test.pdb"
  "stem_shell_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stem_shell_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
