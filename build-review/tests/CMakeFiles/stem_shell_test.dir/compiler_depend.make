# Empty compiler generated dependencies file for stem_shell_test.
# This may be replaced when dependencies are built.
