file(REMOVE_RECURSE
  "CMakeFiles/stem_io_test.dir/stem/io_test.cpp.o"
  "CMakeFiles/stem_io_test.dir/stem/io_test.cpp.o.d"
  "stem_io_test"
  "stem_io_test.pdb"
  "stem_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stem_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
