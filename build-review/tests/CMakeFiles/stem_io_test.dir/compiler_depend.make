# Empty compiler generated dependencies file for stem_io_test.
# This may be replaced when dependencies are built.
