add_test([=[StressTest.ThreeLevelDatapathLifecycle]=]  /root/repo/build-review/tests/stem_stress_test [==[--gtest_filter=StressTest.ThreeLevelDatapathLifecycle]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[StressTest.ThreeLevelDatapathLifecycle]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build-review/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  stem_stress_test_TESTS StressTest.ThreeLevelDatapathLifecycle)
