file(REMOVE_RECURSE
  "CMakeFiles/characterization_flow.dir/characterization_flow.cpp.o"
  "CMakeFiles/characterization_flow.dir/characterization_flow.cpp.o.d"
  "characterization_flow"
  "characterization_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/characterization_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
