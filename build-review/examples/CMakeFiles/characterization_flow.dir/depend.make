# Empty dependencies file for characterization_flow.
# This may be replaced when dependencies are built.
