file(REMOVE_RECURSE
  "CMakeFiles/layout_compaction.dir/layout_compaction.cpp.o"
  "CMakeFiles/layout_compaction.dir/layout_compaction.cpp.o.d"
  "layout_compaction"
  "layout_compaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layout_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
