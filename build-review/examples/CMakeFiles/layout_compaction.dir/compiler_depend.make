# Empty compiler generated dependencies file for layout_compaction.
# This may be replaced when dependencies are built.
