# Empty compiler generated dependencies file for accumulator_design.
# This may be replaced when dependencies are built.
