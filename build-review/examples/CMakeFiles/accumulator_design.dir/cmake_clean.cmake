file(REMOVE_RECURSE
  "CMakeFiles/accumulator_design.dir/accumulator_design.cpp.o"
  "CMakeFiles/accumulator_design.dir/accumulator_design.cpp.o.d"
  "accumulator_design"
  "accumulator_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accumulator_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
