file(REMOVE_RECURSE
  "CMakeFiles/constraint_shell.dir/constraint_shell.cpp.o"
  "CMakeFiles/constraint_shell.dir/constraint_shell.cpp.o.d"
  "constraint_shell"
  "constraint_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constraint_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
