# Empty compiler generated dependencies file for constraint_shell.
# This may be replaced when dependencies are built.
