file(REMOVE_RECURSE
  "CMakeFiles/adder_compiler.dir/adder_compiler.cpp.o"
  "CMakeFiles/adder_compiler.dir/adder_compiler.cpp.o.d"
  "adder_compiler"
  "adder_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adder_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
