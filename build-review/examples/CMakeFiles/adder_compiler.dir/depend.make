# Empty dependencies file for adder_compiler.
# This may be replaced when dependencies are built.
