# Empty compiler generated dependencies file for incremental_checking.
# This may be replaced when dependencies are built.
