file(REMOVE_RECURSE
  "CMakeFiles/incremental_checking.dir/incremental_checking.cpp.o"
  "CMakeFiles/incremental_checking.dir/incremental_checking.cpp.o.d"
  "incremental_checking"
  "incremental_checking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_checking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
