file(REMOVE_RECURSE
  "CMakeFiles/spice_flow.dir/spice_flow.cpp.o"
  "CMakeFiles/spice_flow.dir/spice_flow.cpp.o.d"
  "spice_flow"
  "spice_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
