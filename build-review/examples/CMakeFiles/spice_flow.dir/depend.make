# Empty dependencies file for spice_flow.
# This may be replaced when dependencies are built.
