file(REMOVE_RECURSE
  "CMakeFiles/alu_module_selection.dir/alu_module_selection.cpp.o"
  "CMakeFiles/alu_module_selection.dir/alu_module_selection.cpp.o.d"
  "alu_module_selection"
  "alu_module_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alu_module_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
