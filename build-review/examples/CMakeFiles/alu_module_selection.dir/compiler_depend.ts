# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for alu_module_selection.
