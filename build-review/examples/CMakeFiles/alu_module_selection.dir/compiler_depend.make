# Empty compiler generated dependencies file for alu_module_selection.
# This may be replaced when dependencies are built.
