
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stem/cell.cpp" "src/stem/CMakeFiles/stemcp_env.dir/cell.cpp.o" "gcc" "src/stem/CMakeFiles/stemcp_env.dir/cell.cpp.o.d"
  "/root/repo/src/stem/checker.cpp" "src/stem/CMakeFiles/stemcp_env.dir/checker.cpp.o" "gcc" "src/stem/CMakeFiles/stemcp_env.dir/checker.cpp.o.d"
  "/root/repo/src/stem/compatible.cpp" "src/stem/CMakeFiles/stemcp_env.dir/compatible.cpp.o" "gcc" "src/stem/CMakeFiles/stemcp_env.dir/compatible.cpp.o.d"
  "/root/repo/src/stem/compilers/compiler_view.cpp" "src/stem/CMakeFiles/stemcp_env.dir/compilers/compiler_view.cpp.o" "gcc" "src/stem/CMakeFiles/stemcp_env.dir/compilers/compiler_view.cpp.o.d"
  "/root/repo/src/stem/compilers/compilers.cpp" "src/stem/CMakeFiles/stemcp_env.dir/compilers/compilers.cpp.o" "gcc" "src/stem/CMakeFiles/stemcp_env.dir/compilers/compilers.cpp.o.d"
  "/root/repo/src/stem/compilers/generator.cpp" "src/stem/CMakeFiles/stemcp_env.dir/compilers/generator.cpp.o" "gcc" "src/stem/CMakeFiles/stemcp_env.dir/compilers/generator.cpp.o.d"
  "/root/repo/src/stem/editor.cpp" "src/stem/CMakeFiles/stemcp_env.dir/editor.cpp.o" "gcc" "src/stem/CMakeFiles/stemcp_env.dir/editor.cpp.o.d"
  "/root/repo/src/stem/hierarchy.cpp" "src/stem/CMakeFiles/stemcp_env.dir/hierarchy.cpp.o" "gcc" "src/stem/CMakeFiles/stemcp_env.dir/hierarchy.cpp.o.d"
  "/root/repo/src/stem/io.cpp" "src/stem/CMakeFiles/stemcp_env.dir/io.cpp.o" "gcc" "src/stem/CMakeFiles/stemcp_env.dir/io.cpp.o.d"
  "/root/repo/src/stem/layout/compaction.cpp" "src/stem/CMakeFiles/stemcp_env.dir/layout/compaction.cpp.o" "gcc" "src/stem/CMakeFiles/stemcp_env.dir/layout/compaction.cpp.o.d"
  "/root/repo/src/stem/library.cpp" "src/stem/CMakeFiles/stemcp_env.dir/library.cpp.o" "gcc" "src/stem/CMakeFiles/stemcp_env.dir/library.cpp.o.d"
  "/root/repo/src/stem/net.cpp" "src/stem/CMakeFiles/stemcp_env.dir/net.cpp.o" "gcc" "src/stem/CMakeFiles/stemcp_env.dir/net.cpp.o.d"
  "/root/repo/src/stem/netlist/characterize.cpp" "src/stem/CMakeFiles/stemcp_env.dir/netlist/characterize.cpp.o" "gcc" "src/stem/CMakeFiles/stemcp_env.dir/netlist/characterize.cpp.o.d"
  "/root/repo/src/stem/netlist/deck.cpp" "src/stem/CMakeFiles/stemcp_env.dir/netlist/deck.cpp.o" "gcc" "src/stem/CMakeFiles/stemcp_env.dir/netlist/deck.cpp.o.d"
  "/root/repo/src/stem/netlist/minispice.cpp" "src/stem/CMakeFiles/stemcp_env.dir/netlist/minispice.cpp.o" "gcc" "src/stem/CMakeFiles/stemcp_env.dir/netlist/minispice.cpp.o.d"
  "/root/repo/src/stem/netlist/spice_views.cpp" "src/stem/CMakeFiles/stemcp_env.dir/netlist/spice_views.cpp.o" "gcc" "src/stem/CMakeFiles/stemcp_env.dir/netlist/spice_views.cpp.o.d"
  "/root/repo/src/stem/report.cpp" "src/stem/CMakeFiles/stemcp_env.dir/report.cpp.o" "gcc" "src/stem/CMakeFiles/stemcp_env.dir/report.cpp.o.d"
  "/root/repo/src/stem/shell.cpp" "src/stem/CMakeFiles/stemcp_env.dir/shell.cpp.o" "gcc" "src/stem/CMakeFiles/stemcp_env.dir/shell.cpp.o.d"
  "/root/repo/src/stem/signal_type.cpp" "src/stem/CMakeFiles/stemcp_env.dir/signal_type.cpp.o" "gcc" "src/stem/CMakeFiles/stemcp_env.dir/signal_type.cpp.o.d"
  "/root/repo/src/stem/variables.cpp" "src/stem/CMakeFiles/stemcp_env.dir/variables.cpp.o" "gcc" "src/stem/CMakeFiles/stemcp_env.dir/variables.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/stemcp_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
