file(REMOVE_RECURSE
  "libstemcp_env.a"
)
