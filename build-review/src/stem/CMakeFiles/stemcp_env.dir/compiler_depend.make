# Empty compiler generated dependencies file for stemcp_env.
# This may be replaced when dependencies are built.
