# CMake generated Testfile for 
# Source directory: /root/repo/src/stem
# Build directory: /root/repo/build-review/src/stem
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
