
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/agenda.cpp" "src/core/CMakeFiles/stemcp_core.dir/agenda.cpp.o" "gcc" "src/core/CMakeFiles/stemcp_core.dir/agenda.cpp.o.d"
  "/root/repo/src/core/compiled.cpp" "src/core/CMakeFiles/stemcp_core.dir/compiled.cpp.o" "gcc" "src/core/CMakeFiles/stemcp_core.dir/compiled.cpp.o.d"
  "/root/repo/src/core/constraint.cpp" "src/core/CMakeFiles/stemcp_core.dir/constraint.cpp.o" "gcc" "src/core/CMakeFiles/stemcp_core.dir/constraint.cpp.o.d"
  "/root/repo/src/core/constraints/equality.cpp" "src/core/CMakeFiles/stemcp_core.dir/constraints/equality.cpp.o" "gcc" "src/core/CMakeFiles/stemcp_core.dir/constraints/equality.cpp.o.d"
  "/root/repo/src/core/constraints/functional.cpp" "src/core/CMakeFiles/stemcp_core.dir/constraints/functional.cpp.o" "gcc" "src/core/CMakeFiles/stemcp_core.dir/constraints/functional.cpp.o.d"
  "/root/repo/src/core/constraints/predicate.cpp" "src/core/CMakeFiles/stemcp_core.dir/constraints/predicate.cpp.o" "gcc" "src/core/CMakeFiles/stemcp_core.dir/constraints/predicate.cpp.o.d"
  "/root/repo/src/core/constraints/update.cpp" "src/core/CMakeFiles/stemcp_core.dir/constraints/update.cpp.o" "gcc" "src/core/CMakeFiles/stemcp_core.dir/constraints/update.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/core/CMakeFiles/stemcp_core.dir/engine.cpp.o" "gcc" "src/core/CMakeFiles/stemcp_core.dir/engine.cpp.o.d"
  "/root/repo/src/core/geometry.cpp" "src/core/CMakeFiles/stemcp_core.dir/geometry.cpp.o" "gcc" "src/core/CMakeFiles/stemcp_core.dir/geometry.cpp.o.d"
  "/root/repo/src/core/justification.cpp" "src/core/CMakeFiles/stemcp_core.dir/justification.cpp.o" "gcc" "src/core/CMakeFiles/stemcp_core.dir/justification.cpp.o.d"
  "/root/repo/src/core/propagatable.cpp" "src/core/CMakeFiles/stemcp_core.dir/propagatable.cpp.o" "gcc" "src/core/CMakeFiles/stemcp_core.dir/propagatable.cpp.o.d"
  "/root/repo/src/core/relaxation.cpp" "src/core/CMakeFiles/stemcp_core.dir/relaxation.cpp.o" "gcc" "src/core/CMakeFiles/stemcp_core.dir/relaxation.cpp.o.d"
  "/root/repo/src/core/status.cpp" "src/core/CMakeFiles/stemcp_core.dir/status.cpp.o" "gcc" "src/core/CMakeFiles/stemcp_core.dir/status.cpp.o.d"
  "/root/repo/src/core/trace.cpp" "src/core/CMakeFiles/stemcp_core.dir/trace.cpp.o" "gcc" "src/core/CMakeFiles/stemcp_core.dir/trace.cpp.o.d"
  "/root/repo/src/core/value.cpp" "src/core/CMakeFiles/stemcp_core.dir/value.cpp.o" "gcc" "src/core/CMakeFiles/stemcp_core.dir/value.cpp.o.d"
  "/root/repo/src/core/variable.cpp" "src/core/CMakeFiles/stemcp_core.dir/variable.cpp.o" "gcc" "src/core/CMakeFiles/stemcp_core.dir/variable.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
