# Empty dependencies file for stemcp_core.
# This may be replaced when dependencies are built.
