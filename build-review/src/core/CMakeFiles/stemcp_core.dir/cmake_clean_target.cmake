file(REMOVE_RECURSE
  "libstemcp_core.a"
)
