file(REMOVE_RECURSE
  "CMakeFiles/stemcp_service.dir/design_service.cpp.o"
  "CMakeFiles/stemcp_service.dir/design_service.cpp.o.d"
  "CMakeFiles/stemcp_service.dir/protocol.cpp.o"
  "CMakeFiles/stemcp_service.dir/protocol.cpp.o.d"
  "CMakeFiles/stemcp_service.dir/session.cpp.o"
  "CMakeFiles/stemcp_service.dir/session.cpp.o.d"
  "libstemcp_service.a"
  "libstemcp_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stemcp_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
