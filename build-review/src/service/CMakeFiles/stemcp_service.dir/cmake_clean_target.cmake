file(REMOVE_RECURSE
  "libstemcp_service.a"
)
