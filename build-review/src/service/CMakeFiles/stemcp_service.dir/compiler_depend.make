# Empty compiler generated dependencies file for stemcp_service.
# This may be replaced when dependencies are built.
