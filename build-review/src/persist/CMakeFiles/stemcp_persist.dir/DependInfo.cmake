
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/persist/checkpoint.cpp" "src/persist/CMakeFiles/stemcp_persist.dir/checkpoint.cpp.o" "gcc" "src/persist/CMakeFiles/stemcp_persist.dir/checkpoint.cpp.o.d"
  "/root/repo/src/persist/journal.cpp" "src/persist/CMakeFiles/stemcp_persist.dir/journal.cpp.o" "gcc" "src/persist/CMakeFiles/stemcp_persist.dir/journal.cpp.o.d"
  "/root/repo/src/persist/recovery.cpp" "src/persist/CMakeFiles/stemcp_persist.dir/recovery.cpp.o" "gcc" "src/persist/CMakeFiles/stemcp_persist.dir/recovery.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/stemcp_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
