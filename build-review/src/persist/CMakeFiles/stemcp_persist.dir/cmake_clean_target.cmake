file(REMOVE_RECURSE
  "libstemcp_persist.a"
)
