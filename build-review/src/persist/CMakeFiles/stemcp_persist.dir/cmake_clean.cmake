file(REMOVE_RECURSE
  "CMakeFiles/stemcp_persist.dir/checkpoint.cpp.o"
  "CMakeFiles/stemcp_persist.dir/checkpoint.cpp.o.d"
  "CMakeFiles/stemcp_persist.dir/journal.cpp.o"
  "CMakeFiles/stemcp_persist.dir/journal.cpp.o.d"
  "CMakeFiles/stemcp_persist.dir/recovery.cpp.o"
  "CMakeFiles/stemcp_persist.dir/recovery.cpp.o.d"
  "libstemcp_persist.a"
  "libstemcp_persist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stemcp_persist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
