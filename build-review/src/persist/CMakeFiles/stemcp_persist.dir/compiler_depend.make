# Empty compiler generated dependencies file for stemcp_persist.
# This may be replaced when dependencies are built.
