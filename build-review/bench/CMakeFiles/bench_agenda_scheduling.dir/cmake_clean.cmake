file(REMOVE_RECURSE
  "CMakeFiles/bench_agenda_scheduling.dir/bench_agenda_scheduling.cpp.o"
  "CMakeFiles/bench_agenda_scheduling.dir/bench_agenda_scheduling.cpp.o.d"
  "bench_agenda_scheduling"
  "bench_agenda_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_agenda_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
