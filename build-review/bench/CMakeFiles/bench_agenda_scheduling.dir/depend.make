# Empty dependencies file for bench_agenda_scheduling.
# This may be replaced when dependencies are built.
