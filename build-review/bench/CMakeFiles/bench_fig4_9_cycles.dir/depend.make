# Empty dependencies file for bench_fig4_9_cycles.
# This may be replaced when dependencies are built.
