file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_9_cycles.dir/bench_fig4_9_cycles.cpp.o"
  "CMakeFiles/bench_fig4_9_cycles.dir/bench_fig4_9_cycles.cpp.o.d"
  "bench_fig4_9_cycles"
  "bench_fig4_9_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_9_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
