# Empty dependencies file for bench_signal_typing.
# This may be replaced when dependencies are built.
