file(REMOVE_RECURSE
  "CMakeFiles/bench_signal_typing.dir/bench_signal_typing.cpp.o"
  "CMakeFiles/bench_signal_typing.dir/bench_signal_typing.cpp.o.d"
  "bench_signal_typing"
  "bench_signal_typing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_signal_typing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
