file(REMOVE_RECURSE
  "CMakeFiles/bench_compiled_networks.dir/bench_compiled_networks.cpp.o"
  "CMakeFiles/bench_compiled_networks.dir/bench_compiled_networks.cpp.o.d"
  "bench_compiled_networks"
  "bench_compiled_networks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compiled_networks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
