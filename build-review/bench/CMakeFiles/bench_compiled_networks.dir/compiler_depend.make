# Empty compiler generated dependencies file for bench_compiled_networks.
# This may be replaced when dependencies are built.
