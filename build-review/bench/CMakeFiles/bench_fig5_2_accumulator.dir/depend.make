# Empty dependencies file for bench_fig5_2_accumulator.
# This may be replaced when dependencies are built.
