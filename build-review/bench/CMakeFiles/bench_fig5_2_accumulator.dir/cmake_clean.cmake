file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_2_accumulator.dir/bench_fig5_2_accumulator.cpp.o"
  "CMakeFiles/bench_fig5_2_accumulator.dir/bench_fig5_2_accumulator.cpp.o.d"
  "bench_fig5_2_accumulator"
  "bench_fig5_2_accumulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_2_accumulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
