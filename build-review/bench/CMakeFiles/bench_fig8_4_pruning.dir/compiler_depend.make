# Empty compiler generated dependencies file for bench_fig8_4_pruning.
# This may be replaced when dependencies are built.
