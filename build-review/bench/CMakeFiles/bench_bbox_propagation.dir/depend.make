# Empty dependencies file for bench_bbox_propagation.
# This may be replaced when dependencies are built.
