file(REMOVE_RECURSE
  "CMakeFiles/bench_bbox_propagation.dir/bench_bbox_propagation.cpp.o"
  "CMakeFiles/bench_bbox_propagation.dir/bench_bbox_propagation.cpp.o.d"
  "bench_bbox_propagation"
  "bench_bbox_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bbox_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
