# Empty dependencies file for bench_fig4_5_simple_network.
# This may be replaced when dependencies are built.
