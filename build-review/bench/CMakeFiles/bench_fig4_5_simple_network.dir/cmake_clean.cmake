file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_5_simple_network.dir/bench_fig4_5_simple_network.cpp.o"
  "CMakeFiles/bench_fig4_5_simple_network.dir/bench_fig4_5_simple_network.cpp.o.d"
  "bench_fig4_5_simple_network"
  "bench_fig4_5_simple_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_5_simple_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
