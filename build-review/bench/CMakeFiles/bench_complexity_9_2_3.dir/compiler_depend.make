# Empty compiler generated dependencies file for bench_complexity_9_2_3.
# This may be replaced when dependencies are built.
