file(REMOVE_RECURSE
  "CMakeFiles/bench_complexity_9_2_3.dir/bench_complexity_9_2_3.cpp.o"
  "CMakeFiles/bench_complexity_9_2_3.dir/bench_complexity_9_2_3.cpp.o.d"
  "bench_complexity_9_2_3"
  "bench_complexity_9_2_3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_complexity_9_2_3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
