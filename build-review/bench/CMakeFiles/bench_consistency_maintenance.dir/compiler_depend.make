# Empty compiler generated dependencies file for bench_consistency_maintenance.
# This may be replaced when dependencies are built.
