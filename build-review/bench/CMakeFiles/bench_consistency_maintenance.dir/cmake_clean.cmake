file(REMOVE_RECURSE
  "CMakeFiles/bench_consistency_maintenance.dir/bench_consistency_maintenance.cpp.o"
  "CMakeFiles/bench_consistency_maintenance.dir/bench_consistency_maintenance.cpp.o.d"
  "bench_consistency_maintenance"
  "bench_consistency_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_consistency_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
