file(REMOVE_RECURSE
  "CMakeFiles/bench_persistence.dir/bench_persistence.cpp.o"
  "CMakeFiles/bench_persistence.dir/bench_persistence.cpp.o.d"
  "bench_persistence"
  "bench_persistence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_persistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
