# Empty dependencies file for bench_persistence.
# This may be replaced when dependencies are built.
