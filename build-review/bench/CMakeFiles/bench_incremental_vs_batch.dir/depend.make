# Empty dependencies file for bench_incremental_vs_batch.
# This may be replaced when dependencies are built.
