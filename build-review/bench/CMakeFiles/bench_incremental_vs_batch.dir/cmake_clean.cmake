file(REMOVE_RECURSE
  "CMakeFiles/bench_incremental_vs_batch.dir/bench_incremental_vs_batch.cpp.o"
  "CMakeFiles/bench_incremental_vs_batch.dir/bench_incremental_vs_batch.cpp.o.d"
  "bench_incremental_vs_batch"
  "bench_incremental_vs_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_incremental_vs_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
