file(REMOVE_RECURSE
  "CMakeFiles/bench_value_change_rule.dir/bench_value_change_rule.cpp.o"
  "CMakeFiles/bench_value_change_rule.dir/bench_value_change_rule.cpp.o.d"
  "bench_value_change_rule"
  "bench_value_change_rule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_value_change_rule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
