# Empty compiler generated dependencies file for bench_value_change_rule.
# This may be replaced when dependencies are built.
