# Empty compiler generated dependencies file for bench_dependency_analysis.
# This may be replaced when dependencies are built.
