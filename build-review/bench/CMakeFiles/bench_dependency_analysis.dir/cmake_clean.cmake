file(REMOVE_RECURSE
  "CMakeFiles/bench_dependency_analysis.dir/bench_dependency_analysis.cpp.o"
  "CMakeFiles/bench_dependency_analysis.dir/bench_dependency_analysis.cpp.o.d"
  "bench_dependency_analysis"
  "bench_dependency_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dependency_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
