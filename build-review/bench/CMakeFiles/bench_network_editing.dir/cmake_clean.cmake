file(REMOVE_RECURSE
  "CMakeFiles/bench_network_editing.dir/bench_network_editing.cpp.o"
  "CMakeFiles/bench_network_editing.dir/bench_network_editing.cpp.o.d"
  "bench_network_editing"
  "bench_network_editing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_network_editing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
