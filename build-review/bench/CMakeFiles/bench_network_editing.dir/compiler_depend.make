# Empty compiler generated dependencies file for bench_network_editing.
# This may be replaced when dependencies are built.
