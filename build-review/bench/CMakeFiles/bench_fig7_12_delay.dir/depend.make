# Empty dependencies file for bench_fig7_12_delay.
# This may be replaced when dependencies are built.
