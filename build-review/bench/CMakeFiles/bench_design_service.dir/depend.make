# Empty dependencies file for bench_design_service.
# This may be replaced when dependencies are built.
