file(REMOVE_RECURSE
  "CMakeFiles/bench_design_service.dir/bench_design_service.cpp.o"
  "CMakeFiles/bench_design_service.dir/bench_design_service.cpp.o.d"
  "bench_design_service"
  "bench_design_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_design_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
