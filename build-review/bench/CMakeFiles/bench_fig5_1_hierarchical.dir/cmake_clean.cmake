file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_1_hierarchical.dir/bench_fig5_1_hierarchical.cpp.o"
  "CMakeFiles/bench_fig5_1_hierarchical.dir/bench_fig5_1_hierarchical.cpp.o.d"
  "bench_fig5_1_hierarchical"
  "bench_fig5_1_hierarchical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_1_hierarchical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
