# Empty dependencies file for bench_layout_compaction.
# This may be replaced when dependencies are built.
