file(REMOVE_RECURSE
  "CMakeFiles/bench_layout_compaction.dir/bench_layout_compaction.cpp.o"
  "CMakeFiles/bench_layout_compaction.dir/bench_layout_compaction.cpp.o.d"
  "bench_layout_compaction"
  "bench_layout_compaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_layout_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
