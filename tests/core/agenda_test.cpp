// Agenda scheduler semantics (thesis §4.2.1, Figs 4.7/4.8).
#include <gtest/gtest.h>

#include "core/core.h"

namespace stemcp::core {
namespace {

class Dummy : public Constraint {
 public:
  explicit Dummy(PropagationContext& ctx) : Constraint(ctx) {}
  bool is_satisfied() const override { return true; }

 protected:
  std::string kind() const override { return "dummy"; }
};

TEST(AgendaTest, FifoWithinOneAgenda) {
  PropagationContext ctx;
  AgendaScheduler sched;
  auto& c1 = ctx.make<Dummy>();
  auto& c2 = ctx.make<Dummy>();
  EXPECT_TRUE(sched.schedule("a", c1, nullptr));
  EXPECT_TRUE(sched.schedule("a", c2, nullptr));
  auto e1 = sched.pop_highest_priority();
  auto e2 = sched.pop_highest_priority();
  ASSERT_TRUE(e1 && e2);
  EXPECT_EQ(e1->task, &c1);
  EXPECT_EQ(e2->task, &c2);
  EXPECT_FALSE(sched.pop_highest_priority().has_value());
}

TEST(AgendaTest, DuplicateEntriesSuppressed) {
  PropagationContext ctx;
  AgendaScheduler sched;
  auto& c = ctx.make<Dummy>();
  EXPECT_TRUE(sched.schedule("a", c, nullptr));
  EXPECT_FALSE(sched.schedule("a", c, nullptr));
  EXPECT_EQ(sched.size(), 1u);
  // Distinct variables make distinct entries.
  Variable v(ctx, "t", "v");
  EXPECT_TRUE(sched.schedule("a", c, &v));
  EXPECT_EQ(sched.size(), 2u);
}

TEST(AgendaTest, PriorityOrderRespected) {
  PropagationContext ctx;
  AgendaScheduler sched;
  sched.set_priority_order({"high", "low"});
  auto& hi = ctx.make<Dummy>();
  auto& lo = ctx.make<Dummy>();
  sched.schedule("low", lo, nullptr);
  sched.schedule("high", hi, nullptr);
  EXPECT_EQ(sched.pop_highest_priority()->task, &hi);
  EXPECT_EQ(sched.pop_highest_priority()->task, &lo);
}

TEST(AgendaTest, UnknownAgendaAppendsAtLowestPriority) {
  PropagationContext ctx;
  AgendaScheduler sched;
  sched.set_priority_order({"known"});
  auto& a = ctx.make<Dummy>();
  auto& b = ctx.make<Dummy>();
  sched.schedule("surprise", a, nullptr);
  sched.schedule("known", b, nullptr);
  EXPECT_EQ(sched.pop_highest_priority()->task, &b);
  EXPECT_EQ(sched.pop_highest_priority()->task, &a);
}

TEST(AgendaTest, RescheduleAfterPopAllowed) {
  PropagationContext ctx;
  AgendaScheduler sched;
  auto& c = ctx.make<Dummy>();
  sched.schedule("a", c, nullptr);
  sched.pop_highest_priority();
  EXPECT_TRUE(sched.schedule("a", c, nullptr))
      << "popped entries no longer count as duplicates";
}

TEST(AgendaTest, DefaultOrderHasImplicitAboveFunctional) {
  // Deviation from thesis §5.1.2 — see agenda.cpp: implicit duals must all
  // settle before dependent functional constraints recompute, or repeated
  // instances on one path trip the one-value-change rule.
  AgendaScheduler sched;
  const auto& order = sched.priority_order();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], kImplicitConstraintsAgenda);
  EXPECT_EQ(order[1], kFunctionalConstraintsAgenda);
}

TEST(AgendaTest, ClearEmptiesEverything) {
  PropagationContext ctx;
  AgendaScheduler sched;
  auto& c = ctx.make<Dummy>();
  sched.schedule("a", c, nullptr);
  sched.schedule("b", c, nullptr);
  sched.clear();
  EXPECT_TRUE(sched.empty());
  EXPECT_EQ(sched.size(), 0u);
  EXPECT_TRUE(sched.schedule("a", c, nullptr)) << "dedup sets cleared too";
}

// Scheduling avoids redundant transient recomputation: with N inputs feeding
// one adder via an equality fan-in, the adder runs once per session, not once
// per input change.
TEST(AgendaTest, FunctionalConstraintRunsOncePerSession) {
  PropagationContext ctx;
  Variable a(ctx, "t", "a"), b(ctx, "t", "b"), c(ctx, "t", "c"),
      s(ctx, "t", "s");
  // a drives b and c via equalities; s = b + c.
  EqualityConstraint::among(ctx, {&a, &b});
  EqualityConstraint::among(ctx, {&a, &c});
  auto& add = ctx.make<UniAdditionConstraint>();
  add.set_result(s);
  add.basic_add_argument(b);
  add.basic_add_argument(c);
  ctx.reset_stats();
  EXPECT_TRUE(a.set_user(Value(2)));
  EXPECT_EQ(s.value().as_int(), 4);
  EXPECT_EQ(ctx.stats().scheduled_runs, 1u)
      << "adder scheduled by both b and c but deduplicated to one run";
}

}  // namespace
}  // namespace stemcp::core
