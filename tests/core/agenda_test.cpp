// Agenda scheduler semantics (thesis §4.2.1, Figs 4.7/4.8).
#include <gtest/gtest.h>

#include "core/core.h"

namespace stemcp::core {
namespace {

class Dummy : public Constraint {
 public:
  explicit Dummy(PropagationContext& ctx) : Constraint(ctx) {}
  bool is_satisfied() const override { return true; }

 protected:
  std::string kind() const override { return "dummy"; }
};

TEST(AgendaTest, FifoWithinOneAgenda) {
  PropagationContext ctx;
  AgendaScheduler sched;
  auto& c1 = ctx.make<Dummy>();
  auto& c2 = ctx.make<Dummy>();
  EXPECT_TRUE(sched.schedule("a", c1, nullptr));
  EXPECT_TRUE(sched.schedule("a", c2, nullptr));
  auto e1 = sched.pop_highest_priority();
  auto e2 = sched.pop_highest_priority();
  ASSERT_TRUE(e1 && e2);
  EXPECT_EQ(e1->task, &c1);
  EXPECT_EQ(e2->task, &c2);
  EXPECT_FALSE(sched.pop_highest_priority().has_value());
}

TEST(AgendaTest, DuplicateEntriesSuppressed) {
  PropagationContext ctx;
  AgendaScheduler sched;
  auto& c = ctx.make<Dummy>();
  EXPECT_TRUE(sched.schedule("a", c, nullptr));
  EXPECT_FALSE(sched.schedule("a", c, nullptr));
  EXPECT_EQ(sched.size(), 1u);
  // Distinct variables make distinct entries.
  Variable v(ctx, "t", "v");
  EXPECT_TRUE(sched.schedule("a", c, &v));
  EXPECT_EQ(sched.size(), 2u);
}

TEST(AgendaTest, PriorityOrderRespected) {
  PropagationContext ctx;
  AgendaScheduler sched;
  sched.set_priority_order({"high", "low"});
  auto& hi = ctx.make<Dummy>();
  auto& lo = ctx.make<Dummy>();
  sched.schedule("low", lo, nullptr);
  sched.schedule("high", hi, nullptr);
  EXPECT_EQ(sched.pop_highest_priority()->task, &hi);
  EXPECT_EQ(sched.pop_highest_priority()->task, &lo);
}

TEST(AgendaTest, UnknownAgendaAppendsAtLowestPriority) {
  PropagationContext ctx;
  AgendaScheduler sched;
  sched.set_priority_order({"known"});
  auto& a = ctx.make<Dummy>();
  auto& b = ctx.make<Dummy>();
  sched.schedule("surprise", a, nullptr);
  sched.schedule("known", b, nullptr);
  EXPECT_EQ(sched.pop_highest_priority()->task, &b);
  EXPECT_EQ(sched.pop_highest_priority()->task, &a);
}

TEST(AgendaTest, RescheduleAfterPopAllowed) {
  PropagationContext ctx;
  AgendaScheduler sched;
  auto& c = ctx.make<Dummy>();
  sched.schedule("a", c, nullptr);
  sched.pop_highest_priority();
  EXPECT_TRUE(sched.schedule("a", c, nullptr))
      << "popped entries no longer count as duplicates";
}

TEST(AgendaTest, DefaultOrderHasImplicitAboveFunctional) {
  // Deviation from thesis §5.1.2 — see agenda.cpp: implicit duals must all
  // settle before dependent functional constraints recompute, or repeated
  // instances on one path trip the one-value-change rule.
  AgendaScheduler sched;
  const auto& order = sched.priority_order();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], kImplicitConstraintsAgenda);
  EXPECT_EQ(order[1], kFunctionalConstraintsAgenda);
}

TEST(AgendaTest, ClearEmptiesEverything) {
  PropagationContext ctx;
  AgendaScheduler sched;
  auto& c = ctx.make<Dummy>();
  sched.schedule("a", c, nullptr);
  sched.schedule("b", c, nullptr);
  sched.clear();
  EXPECT_TRUE(sched.empty());
  EXPECT_EQ(sched.size(), 0u);
  EXPECT_TRUE(sched.schedule("a", c, nullptr)) << "dedup sets cleared too";
}

TEST(AgendaTest, InternResolvesIdsAndAppendKeepsGeneration) {
  AgendaScheduler sched;
  sched.set_priority_order({"high", "low"});
  const auto gen = sched.generation();
  EXPECT_EQ(sched.intern("high"), 0u);
  EXPECT_EQ(sched.intern("low"), 1u);
  // Unknown names are appended at the lowest priority WITHOUT invalidating
  // previously interned ids.
  const auto surprise = sched.intern("surprise");
  EXPECT_EQ(surprise, 2u);
  EXPECT_EQ(sched.generation(), gen) << "append must not move the generation";
  EXPECT_EQ(sched.intern("high"), 0u);
  ASSERT_EQ(sched.priority_order().size(), 3u);
  EXPECT_EQ(sched.priority_order().back(), "surprise");
  // Reordering rebuilds the table and must invalidate cached ids.
  sched.set_priority_order({"low", "high"});
  EXPECT_NE(sched.generation(), gen);
  EXPECT_EQ(sched.intern("low"), 0u);
}

TEST(AgendaTest, ScheduleByIdAndByNameShareDedup) {
  PropagationContext ctx;
  AgendaScheduler sched;
  sched.set_priority_order({"a", "b"});
  auto& c = ctx.make<Dummy>();
  const auto a = sched.intern("a");
  EXPECT_TRUE(sched.schedule(a, c, nullptr));
  EXPECT_FALSE(sched.schedule("a", c, nullptr))
      << "name and id must address the same duplicate-suppression state";
  EXPECT_TRUE(sched.schedule("b", c, nullptr))
      << "same task on a different agenda is a distinct entry";
  EXPECT_EQ(sched.size(), 2u);
}

TEST(AgendaTest, ScheduleCachedDedupsAndSurvivesReorder) {
  PropagationContext ctx;
  AgendaScheduler sched;
  auto& c = ctx.make<Dummy>();
  EXPECT_TRUE(sched.schedule_cached(c, kFunctionalConstraintsAgenda, nullptr));
  EXPECT_FALSE(sched.schedule_cached(c, kFunctionalConstraintsAgenda, nullptr));
  auto e = sched.pop_highest_priority();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->task, &c);
  // Reordering invalidates the cached id; schedule_cached must re-intern and
  // land on the right queue.
  sched.set_priority_order(
      {kFunctionalConstraintsAgenda, kImplicitConstraintsAgenda});
  EXPECT_TRUE(sched.schedule_cached(c, kFunctionalConstraintsAgenda, nullptr));
  sched.pop_highest_priority();
  EXPECT_EQ(sched.last_popped_priority(), 0u)
      << "functional agenda is now the highest priority";
}

TEST(AgendaTest, LastPoppedPriorityStableUntilNextPop) {
  PropagationContext ctx;
  AgendaScheduler sched;
  sched.set_priority_order({"high", "low"});
  auto& hi = ctx.make<Dummy>();
  auto& lo = ctx.make<Dummy>();
  sched.schedule("low", lo, nullptr);
  sched.schedule("high", hi, nullptr);
  sched.pop_highest_priority();
  EXPECT_EQ(sched.last_popped_priority(), 0u);
  // Scheduling more work must not disturb the last-popped record.
  sched.schedule("high", hi, nullptr);
  EXPECT_EQ(sched.last_popped_priority(), 0u);
  sched.pop_highest_priority();
  EXPECT_EQ(sched.last_popped_priority(), 0u);
  sched.pop_highest_priority();
  EXPECT_EQ(sched.last_popped_priority(), 1u);
}

TEST(AgendaTest, DuplicateSuppressionIsPerSchedulerEpoch) {
  PropagationContext ctx;
  AgendaScheduler s1;
  AgendaScheduler s2;
  auto& c = ctx.make<Dummy>();
  // The same task scheduled on two schedulers must not cross-suppress: the
  // dedup stamps are globally unique per scheduler epoch, so a stamp from s1
  // can never read as "already queued" on s2.  (A task tracks dedup state
  // for the scheduler it was most recently stamped by; in the engine every
  // task lives on exactly one context's scheduler.)
  EXPECT_TRUE(s1.schedule("a", c, nullptr));
  EXPECT_TRUE(s2.schedule("a", c, nullptr));
  EXPECT_FALSE(s2.schedule("a", c, nullptr));
  // s1's entry is still queued and pops normally.
  EXPECT_EQ(s1.size(), 1u);
  EXPECT_EQ(s1.pop_highest_priority()->task, &c);
  // clear() starts a new epoch: everything may be scheduled afresh.
  s2.clear();
  EXPECT_TRUE(s2.schedule("a", c, nullptr));
  EXPECT_FALSE(s2.schedule("a", c, nullptr));
}

TEST(AgendaTest, RescheduleAfterPopWithinOneSessionPinnedOrder) {
  PropagationContext ctx;
  AgendaScheduler sched;
  sched.set_priority_order({"hi", "lo"});
  auto& c1 = ctx.make<Dummy>();
  auto& c2 = ctx.make<Dummy>();
  auto& c3 = ctx.make<Dummy>();
  // Pin the exact pop sequence of an interleaved schedule/pop run — the
  // equivalence contract for the interned fast path.
  sched.schedule("lo", c1, nullptr);
  sched.schedule("hi", c2, nullptr);
  sched.schedule("lo", c3, nullptr);
  EXPECT_EQ(sched.pop_highest_priority()->task, &c2);
  sched.schedule("hi", c2, nullptr);  // re-schedule after pop: allowed
  EXPECT_EQ(sched.pop_highest_priority()->task, &c2);
  EXPECT_EQ(sched.pop_highest_priority()->task, &c1);
  sched.schedule("lo", c1, nullptr);
  EXPECT_EQ(sched.pop_highest_priority()->task, &c3);
  EXPECT_EQ(sched.pop_highest_priority()->task, &c1);
  EXPECT_FALSE(sched.pop_highest_priority().has_value());
}

// Scheduling avoids redundant transient recomputation: with N inputs feeding
// one adder via an equality fan-in, the adder runs once per session, not once
// per input change.
TEST(AgendaTest, FunctionalConstraintRunsOncePerSession) {
  PropagationContext ctx;
  Variable a(ctx, "t", "a"), b(ctx, "t", "b"), c(ctx, "t", "c"),
      s(ctx, "t", "s");
  // a drives b and c via equalities; s = b + c.
  EqualityConstraint::among(ctx, {&a, &b});
  EqualityConstraint::among(ctx, {&a, &c});
  auto& add = ctx.make<UniAdditionConstraint>();
  add.set_result(s);
  add.basic_add_argument(b);
  add.basic_add_argument(c);
  ctx.reset_stats();
  EXPECT_TRUE(a.set_user(Value(2)));
  EXPECT_EQ(s.value().as_int(), 4);
  EXPECT_EQ(ctx.stats().scheduled_runs, 1u)
      << "adder scheduled by both b and c but deduplicated to one run";
}

}  // namespace
}  // namespace stemcp::core
