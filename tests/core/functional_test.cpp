// Functional constraint family coverage: minimum, product, linear,
// rect-union, and the shared FunctionalConstraint machinery.
#include <gtest/gtest.h>

#include "core/core.h"

namespace stemcp::core {
namespace {

class FunctionalTest : public ::testing::Test {
 protected:
  PropagationContext ctx;
};

TEST_F(FunctionalTest, UniMinimumTracksSmallestKnown) {
  Variable x(ctx, "t", "x"), y(ctx, "t", "y"), m(ctx, "t", "m");
  auto& c = ctx.make<UniMinimumConstraint>();
  c.set_result(m);
  c.basic_add_argument(x);
  c.basic_add_argument(y);
  EXPECT_TRUE(x.set_user(Value(9.0)));
  EXPECT_DOUBLE_EQ(m.value().as_number(), 9.0) << "min of known inputs";
  EXPECT_TRUE(y.set_user(Value(4.0)));
  EXPECT_DOUBLE_EQ(m.value().as_number(), 4.0);
}

TEST_F(FunctionalTest, UniProductMultiplies) {
  Variable w(ctx, "t", "w"), h(ctx, "t", "h"), area(ctx, "t", "area");
  auto& c = ctx.make<UniProductConstraint>();
  c.set_result(area);
  c.basic_add_argument(w);
  c.basic_add_argument(h);
  EXPECT_TRUE(w.set_user(Value(4.0)));
  EXPECT_TRUE(area.value().is_nil()) << "h unknown: not computable";
  EXPECT_TRUE(h.set_user(Value(5.0)));
  EXPECT_DOUBLE_EQ(area.value().as_number(), 20.0);
}

TEST_F(FunctionalTest, UniProductWithScale) {
  Variable x(ctx, "t", "x"), y(ctx, "t", "y");
  auto& c = ctx.make<UniProductConstraint>(0.5);
  c.set_result(y);
  c.basic_add_argument(x);
  EXPECT_TRUE(x.set_user(Value(8.0)));
  EXPECT_DOUBLE_EQ(y.value().as_number(), 4.0);
}

TEST_F(FunctionalTest, UniLinearScalesAndOffsets) {
  Variable celsius(ctx, "t", "c"), fahrenheit(ctx, "t", "f");
  auto& c = ctx.make<UniLinearConstraint>(1.8, 32.0);
  c.set_result(fahrenheit);
  c.basic_add_argument(celsius);
  EXPECT_TRUE(celsius.set_user(Value(100.0)));
  EXPECT_DOUBLE_EQ(fahrenheit.value().as_number(), 212.0);
  EXPECT_TRUE(celsius.set_user(Value(0.0)));
  EXPECT_DOUBLE_EQ(fahrenheit.value().as_number(), 32.0);
}

TEST_F(FunctionalTest, UniLinearRequiresSingleInput) {
  Variable a(ctx, "t", "a"), b(ctx, "t", "b"), r(ctx, "t", "r");
  auto& c = ctx.make<UniLinearConstraint>(2.0, 0.0);
  c.set_result(r);
  c.basic_add_argument(a);
  c.basic_add_argument(b);  // second input: function undefined
  EXPECT_TRUE(a.set_user(Value(1.0)));
  EXPECT_TRUE(b.set_user(Value(2.0)));
  EXPECT_TRUE(r.value().is_nil());
  EXPECT_TRUE(c.is_satisfied()) << "uncomputable is vacuously satisfied";
}

TEST_F(FunctionalTest, UniRectUnionAccumulatesBoxes) {
  Variable b1(ctx, "t", "b1"), b2(ctx, "t", "b2"), u(ctx, "t", "u");
  auto& c = ctx.make<UniRectUnionConstraint>();
  c.set_result(u);
  c.basic_add_argument(b1);
  c.basic_add_argument(b2);
  EXPECT_TRUE(b1.set_user(Value(Rect{0, 0, 5, 5})));
  EXPECT_EQ(u.value().as_rect(), (Rect{0, 0, 5, 5}));
  EXPECT_TRUE(b2.set_user(Value(Rect{10, 2, 12, 8})));
  EXPECT_EQ(u.value().as_rect(), (Rect{0, 0, 12, 8}));
}

TEST_F(FunctionalTest, ResultVariableIdentified) {
  Variable x(ctx, "t", "x"), r(ctx, "t", "r");
  auto& c = ctx.make<UniAdditionConstraint>();
  c.set_result(r);
  c.basic_add_argument(x);
  EXPECT_EQ(c.result_variable(), &r);
  EXPECT_FALSE(c.permit_changes_by(r)) << "result change: nothing to do";
  EXPECT_TRUE(c.permit_changes_by(x));
}

TEST_F(FunctionalTest, EvaluateFunctionIsPure) {
  Variable x(ctx, "t", "x"), r(ctx, "t", "r");
  auto& c = ctx.make<UniAdditionConstraint>(1.0);
  c.set_result(r);
  c.basic_add_argument(x);
  ctx.set_enabled(false);
  x.set_user(Value(5.0));
  ctx.set_enabled(true);
  EXPECT_DOUBLE_EQ(c.evaluate_function().as_number(), 6.0);
  EXPECT_TRUE(r.value().is_nil()) << "no assignment happened";
}

TEST_F(FunctionalTest, ChainedMixedFunctions) {
  // delay budget-style chain: worst = max(a, b); padded = worst * 1.1;
  // total = padded + 2.
  Variable a(ctx, "t", "a"), b(ctx, "t", "b"), worst(ctx, "t", "worst"),
      padded(ctx, "t", "padded"), total(ctx, "t", "total");
  auto& mx = ctx.make<UniMaximumConstraint>();
  mx.set_result(worst);
  mx.basic_add_argument(a);
  mx.basic_add_argument(b);
  auto& pad = ctx.make<UniLinearConstraint>(1.1, 0.0);
  pad.set_result(padded);
  pad.basic_add_argument(worst);
  auto& add = ctx.make<UniAdditionConstraint>(2.0);
  add.set_result(total);
  add.basic_add_argument(padded);
  EXPECT_TRUE(a.set_user(Value(10.0)));
  EXPECT_TRUE(b.set_user(Value(20.0)));
  EXPECT_DOUBLE_EQ(total.value().as_number(), 20.0 * 1.1 + 2.0);
}

TEST_F(FunctionalTest, NonNumericInputsBlockComputation) {
  Variable x(ctx, "t", "x"), r(ctx, "t", "r");
  auto& c = ctx.make<UniAdditionConstraint>();
  c.set_result(r);
  c.basic_add_argument(x);
  EXPECT_TRUE(x.set_user(Value("not a number")));
  EXPECT_TRUE(r.value().is_nil());
  EXPECT_TRUE(c.is_satisfied());
}

}  // namespace
}  // namespace stemcp::core
