// Engine accounting: the statistics counters the benchmark harness leans on
// must mean exactly what they claim.
#include <gtest/gtest.h>

#include "core/core.h"

namespace stemcp::core {
namespace {

class StatsTest : public ::testing::Test {
 protected:
  PropagationContext ctx;
};

TEST_F(StatsTest, SessionCountsEachExternalAssignment) {
  Variable a(ctx, "t", "a");
  ctx.reset_stats();
  EXPECT_TRUE(a.set_user(Value(1)));
  EXPECT_TRUE(a.set_user(Value(2)));
  EXPECT_EQ(ctx.stats().sessions, 2u);
}

TEST_F(StatsTest, AssignmentsCountValueWrites) {
  Variable a(ctx, "t", "a"), b(ctx, "t", "b"), c(ctx, "t", "c");
  auto& eq = ctx.make<EqualityConstraint>();
  eq.basic_add_argument(a);
  eq.basic_add_argument(b);
  eq.basic_add_argument(c);
  ctx.reset_stats();
  EXPECT_TRUE(a.set_user(Value(5)));
  EXPECT_EQ(ctx.stats().assignments, 3u) << "a, b and c";
  // NoChange propagation writes nothing new.
  EXPECT_TRUE(a.set_user(Value(5)));
  EXPECT_EQ(ctx.stats().assignments, 4u) << "only a's own re-assertion";
}

TEST_F(StatsTest, ActivationsCountPropagateVariableSends) {
  Variable a(ctx, "t", "a"), b(ctx, "t", "b");
  EqualityConstraint::among(ctx, {&a, &b});
  ctx.reset_stats();
  EXPECT_TRUE(a.set_user(Value(1)));
  // a activates eq once; b's assignment skips its source.
  EXPECT_EQ(ctx.stats().activations, 1u);
}

TEST_F(StatsTest, ScheduledRunsCountAgendaPops) {
  Variable x(ctx, "t", "x"), y(ctx, "t", "y"), s(ctx, "t", "s");
  UniAdditionConstraint::sum(ctx, s, {&x, &y});
  ctx.reset_stats();
  EXPECT_TRUE(x.set_user(Value(1)));
  EXPECT_EQ(ctx.stats().scheduled_runs, 1u);
  EXPECT_TRUE(y.set_user(Value(2)));
  // y's session: adder scheduled + its result assignment reschedules
  // nothing further (s's only constraint is its producer).
  EXPECT_EQ(ctx.stats().scheduled_runs, 2u);
}

TEST_F(StatsTest, ViolationsAndRestoresCounted) {
  Variable a(ctx, "t", "a");
  BoundConstraint::upper(ctx, a, Value(10));
  ctx.reset_stats();
  EXPECT_TRUE(a.set_user(Value(99)).is_violation());
  EXPECT_EQ(ctx.stats().violations, 1u);
  EXPECT_EQ(ctx.stats().restores, 1u) << "only a itself was touched";
}

TEST_F(StatsTest, ChecksCountFinalSweepEvaluations) {
  Variable a(ctx, "t", "a");
  BoundConstraint::upper(ctx, a, Value(10));
  BoundConstraint::lower(ctx, a, Value(0));
  ctx.reset_stats();
  EXPECT_TRUE(a.set_user(Value(5)));
  EXPECT_EQ(ctx.stats().checks, 2u) << "both bounds visited and checked";
}

TEST_F(StatsTest, DisabledContextDoesNoAccounting) {
  Variable a(ctx, "t", "a"), b(ctx, "t", "b");
  EqualityConstraint::among(ctx, {&a, &b});
  ctx.set_enabled(false);
  ctx.reset_stats();
  EXPECT_TRUE(a.set_user(Value(1)));
  EXPECT_EQ(ctx.stats().sessions, 0u);
  EXPECT_EQ(ctx.stats().activations, 0u);
}

TEST_F(StatsTest, ProbeSessionsCounted) {
  Variable a(ctx, "t", "a");
  ctx.reset_stats();
  EXPECT_TRUE(a.can_be_set_to(Value(1)));
  EXPECT_EQ(ctx.stats().sessions, 1u) << "a probe is a session";
}

TEST_F(StatsTest, ViolationLogPersistsAcrossSessions) {
  Variable a(ctx, "t", "a");
  BoundConstraint::upper(ctx, a, Value(10));
  EXPECT_TRUE(a.set_user(Value(99)).is_violation());
  EXPECT_TRUE(a.set_user(Value(98)).is_violation());
  EXPECT_EQ(ctx.violation_log().size(), 2u);
  EXPECT_TRUE(a.set_user(Value(5)));
  EXPECT_EQ(ctx.violation_log().size(), 2u) << "successes don't log";
  EXPECT_FALSE(ctx.last_violation().has_value())
      << "last_violation cleared by the successful session";
}

}  // namespace
}  // namespace stemcp::core
