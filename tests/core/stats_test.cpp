// Engine accounting: the statistics counters the benchmark harness leans on
// must mean exactly what they claim.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/core.h"

namespace stemcp::core {
namespace {

class StatsTest : public ::testing::Test {
 protected:
  PropagationContext ctx;
};

TEST_F(StatsTest, SessionCountsEachExternalAssignment) {
  Variable a(ctx, "t", "a");
  ctx.reset_stats();
  EXPECT_TRUE(a.set_user(Value(1)));
  EXPECT_TRUE(a.set_user(Value(2)));
  EXPECT_EQ(ctx.stats().sessions, 2u);
}

TEST_F(StatsTest, AssignmentsCountValueWrites) {
  Variable a(ctx, "t", "a"), b(ctx, "t", "b"), c(ctx, "t", "c");
  auto& eq = ctx.make<EqualityConstraint>();
  eq.basic_add_argument(a);
  eq.basic_add_argument(b);
  eq.basic_add_argument(c);
  ctx.reset_stats();
  EXPECT_TRUE(a.set_user(Value(5)));
  EXPECT_EQ(ctx.stats().assignments, 3u) << "a, b and c";
  // NoChange propagation writes nothing new.
  EXPECT_TRUE(a.set_user(Value(5)));
  EXPECT_EQ(ctx.stats().assignments, 4u) << "only a's own re-assertion";
}

TEST_F(StatsTest, ActivationsCountPropagateVariableSends) {
  Variable a(ctx, "t", "a"), b(ctx, "t", "b");
  EqualityConstraint::among(ctx, {&a, &b});
  ctx.reset_stats();
  EXPECT_TRUE(a.set_user(Value(1)));
  // a activates eq once; b's assignment skips its source.
  EXPECT_EQ(ctx.stats().activations, 1u);
}

TEST_F(StatsTest, ScheduledRunsCountAgendaPops) {
  Variable x(ctx, "t", "x"), y(ctx, "t", "y"), s(ctx, "t", "s");
  UniAdditionConstraint::sum(ctx, s, {&x, &y});
  ctx.reset_stats();
  EXPECT_TRUE(x.set_user(Value(1)));
  EXPECT_EQ(ctx.stats().scheduled_runs, 1u);
  EXPECT_TRUE(y.set_user(Value(2)));
  // y's session: adder scheduled + its result assignment reschedules
  // nothing further (s's only constraint is its producer).
  EXPECT_EQ(ctx.stats().scheduled_runs, 2u);
}

TEST_F(StatsTest, ViolationsAndRestoresCounted) {
  Variable a(ctx, "t", "a");
  BoundConstraint::upper(ctx, a, Value(10));
  ctx.reset_stats();
  EXPECT_TRUE(a.set_user(Value(99)).is_violation());
  EXPECT_EQ(ctx.stats().violations, 1u);
  EXPECT_EQ(ctx.stats().restores, 1u) << "only a itself was touched";
}

TEST_F(StatsTest, ChecksCountFinalSweepEvaluations) {
  Variable a(ctx, "t", "a");
  BoundConstraint::upper(ctx, a, Value(10));
  BoundConstraint::lower(ctx, a, Value(0));
  ctx.reset_stats();
  EXPECT_TRUE(a.set_user(Value(5)));
  EXPECT_EQ(ctx.stats().checks, 2u) << "both bounds visited and checked";
}

TEST_F(StatsTest, DisabledContextDoesNoAccounting) {
  Variable a(ctx, "t", "a"), b(ctx, "t", "b");
  EqualityConstraint::among(ctx, {&a, &b});
  ctx.set_enabled(false);
  ctx.reset_stats();
  EXPECT_TRUE(a.set_user(Value(1)));
  EXPECT_EQ(ctx.stats().sessions, 0u);
  EXPECT_EQ(ctx.stats().activations, 0u);
}

TEST_F(StatsTest, ProbeSessionsCounted) {
  Variable a(ctx, "t", "a");
  ctx.reset_stats();
  EXPECT_TRUE(a.can_be_set_to(Value(1)));
  EXPECT_EQ(ctx.stats().sessions, 1u) << "a probe is a session";
}

TEST_F(StatsTest, AgendaHighWaterMarkTracksQueuePressure) {
  Variable x(ctx, "t", "x"), y(ctx, "t", "y");
  Variable s1(ctx, "t", "s1"), s2(ctx, "t", "s2");
  // Two functional constraints fed by x: both are queued before either runs,
  // so the agenda holds two entries at its peak.
  UniAdditionConstraint::sum(ctx, s1, {&x});
  UniAdditionConstraint::sum(ctx, s2, {&x});
  ctx.reset_stats();
  EXPECT_TRUE(x.set_user(Value(1)));
  EXPECT_EQ(ctx.stats().agenda_high_water, 2u);
  // A single-producer session cannot raise the mark.
  EXPECT_TRUE(y.set_user(Value(1)));
  EXPECT_EQ(ctx.stats().agenda_high_water, 2u);
  ctx.reset_stats();
  EXPECT_EQ(ctx.stats().agenda_high_water, 0u);
}

TEST_F(StatsTest, PerPriorityScheduledAndExecutedCounters) {
  Variable x(ctx, "t", "x"), s(ctx, "t", "s");
  UniAdditionConstraint::sum(ctx, s, {&x});
  ctx.reset_stats();
  EXPECT_TRUE(x.set_user(Value(3)));
  // Functional agenda is queue index 1 in the default priority order
  // (implicit first — see agenda.cpp).
  EXPECT_EQ(ctx.stats().scheduled_by_priority[1], 1u);
  EXPECT_EQ(ctx.stats().executed_by_priority[1], 1u);
  EXPECT_EQ(ctx.stats().scheduled_by_priority[0], 0u);
  EXPECT_EQ(ctx.stats().executed_by_priority[0], 0u);
  // Executed totals agree with the aggregate scheduled_runs counter.
  std::uint64_t executed = 0;
  for (auto n : ctx.stats().executed_by_priority) executed += n;
  EXPECT_EQ(executed, ctx.stats().scheduled_runs);
}

TEST_F(StatsTest, DuplicateSuppressedEntriesNotCountedScheduled) {
  Variable a(ctx, "t", "a"), b(ctx, "t", "b"), c(ctx, "t", "c"),
      s(ctx, "t", "s");
  EqualityConstraint::among(ctx, {&a, &b});
  EqualityConstraint::among(ctx, {&a, &c});
  auto& add = ctx.make<UniAdditionConstraint>();
  add.set_result(s);
  add.basic_add_argument(b);
  add.basic_add_argument(c);
  ctx.reset_stats();
  EXPECT_TRUE(a.set_user(Value(2)));
  EXPECT_EQ(ctx.stats().scheduled_by_priority[1], 1u)
      << "b and c both try to queue the adder; the duplicate is suppressed";
}

TEST_F(StatsTest, ViolationLogCapDropsOldestAndCounts) {
  ctx.set_violation_log_limit(2);
  for (int i = 1; i <= 4; ++i) {
    ctx.report_violation(
        {nullptr, nullptr, Value(i), "m" + std::to_string(i)});
  }
  EXPECT_EQ(ctx.violation_log().size(), 2u);
  EXPECT_EQ(ctx.violation_log_dropped(), 2u);
  // The newest entries are the ones retained.
  EXPECT_NE(ctx.violation_log().front().find("m3"), std::string::npos);
  EXPECT_NE(ctx.violation_log().back().find("m4"), std::string::npos);
}

TEST_F(StatsTest, ViolationLogCapAppliesToEngineReports) {
  Variable a(ctx, "t", "a");
  BoundConstraint::upper(ctx, a, Value(10));
  ctx.set_violation_log_limit(2);
  for (int i = 91; i <= 94; ++i) {
    EXPECT_TRUE(a.set_user(Value(i)).is_violation());
  }
  EXPECT_EQ(ctx.violation_log().size(), 2u);
  EXPECT_EQ(ctx.violation_log_dropped(), 2u);
}

TEST_F(StatsTest, LoweringViolationLogLimitTrimsImmediately) {
  Variable a(ctx, "t", "a");
  BoundConstraint::upper(ctx, a, Value(10));
  EXPECT_TRUE(a.set_user(Value(91)).is_violation());
  EXPECT_TRUE(a.set_user(Value(92)).is_violation());
  EXPECT_TRUE(a.set_user(Value(93)).is_violation());
  ctx.set_violation_log_limit(1);
  EXPECT_EQ(ctx.violation_log().size(), 1u);
  EXPECT_EQ(ctx.violation_log_dropped(), 2u);
  EXPECT_EQ(ctx.violation_log_limit(), 1u);
}

TEST_F(StatsTest, ViolationLogPersistsAcrossSessions) {
  Variable a(ctx, "t", "a");
  BoundConstraint::upper(ctx, a, Value(10));
  EXPECT_TRUE(a.set_user(Value(99)).is_violation());
  EXPECT_TRUE(a.set_user(Value(98)).is_violation());
  EXPECT_EQ(ctx.violation_log().size(), 2u);
  EXPECT_TRUE(a.set_user(Value(5)));
  EXPECT_EQ(ctx.violation_log().size(), 2u) << "successes don't log";
  EXPECT_FALSE(ctx.last_violation().has_value())
      << "last_violation cleared by the successful session";
}

// The process-global metrics aggregation is the one piece of the tracing
// subsystem shared across threads (every engine context folds into it on
// destruction, and the design service folds whole sessions concurrently).
// Hammer it from many threads and check nothing is lost; run under
// tools/run_tier1.sh --tsan for the data-race proof.
TEST(GlobalMetricsTest, ConcurrentMergesLoseNothing) {
  reset_global_metrics();
  constexpr int kThreads = 8;
  constexpr int kMergesPerThread = 50;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kMergesPerThread; ++i) {
        MetricsRegistry m;
        m.set_enabled(true);
        m.add_counter("shared", 2);
        m.add_counter("per_thread_" + std::to_string(t), 1);
        m.histogram("lat").record(static_cast<std::uint64_t>(i + 1));
        merge_into_global_metrics(m);
        add_global_counter("direct", 3);
      }
    });
  }
  for (auto& th : threads) th.join();

  const std::string json = global_metrics_json();
  const auto expect_count = [&json](const std::string& needle) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle << " in " << json;
  };
  expect_count("\"shared\":" +
               std::to_string(2 * kThreads * kMergesPerThread));
  expect_count("\"direct\":" +
               std::to_string(3 * kThreads * kMergesPerThread));
  for (int t = 0; t < kThreads; ++t) {
    expect_count("\"per_thread_" + std::to_string(t) +
                 "\":" + std::to_string(kMergesPerThread));
  }
  // Histogram count = total records; min/max span the recorded range.
  expect_count("\"count\":" + std::to_string(kThreads * kMergesPerThread));
  expect_count("\"min\":1");
  expect_count("\"max\":" + std::to_string(kMergesPerThread));

  reset_global_metrics();
  EXPECT_EQ(global_metrics_json().find("shared"), std::string::npos);
}

// ---- Histogram percentile math (request-telemetry reads these) ----------

// Against exact order statistics on a known uniform sample, the log2-bucket
// estimate must be an upper bound and within one bucket (< 2x) of exact.
TEST(HistogramPercentileTest, UpperBoundsExactWithinOneBucket) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const struct {
    double p;
    std::uint64_t exact;  // ceil(p/100 * 1000)-th smallest of 1..1000
  } cases[] = {{50.0, 500}, {90.0, 900}, {99.0, 990}, {99.9, 999}};
  for (const auto& c : cases) {
    const std::uint64_t est = h.percentile(c.p);
    EXPECT_GE(est, c.exact) << "p" << c.p;
    EXPECT_LT(est, 2 * c.exact) << "p" << c.p;
  }
  // The top of the distribution is clamped to the true max, not the bucket
  // upper bound (1023).
  EXPECT_EQ(h.percentile(100.0), 1000u);
  // Concrete bucket math: p50 target is the 500th value; values 1..511 fill
  // buckets 0..9, so the estimate is bucket 9's upper bound.
  EXPECT_EQ(h.percentile(50.0), 511u);
}

TEST(HistogramPercentileTest, ExactForSingleValuedSamples) {
  // A bucket-boundary value: every percentile is exactly it.
  Histogram a;
  for (int i = 0; i < 100; ++i) a.record(255);
  EXPECT_EQ(a.percentile(50.0), 255u);
  EXPECT_EQ(a.percentile(99.9), 255u);
  // Mid-bucket single value: the max clamp makes it exact too.
  Histogram b;
  for (int i = 0; i < 100; ++i) b.record(256);
  EXPECT_EQ(b.percentile(50.0), 256u);
  EXPECT_EQ(b.percentile(99.9), 256u);
  // Zero stays zero (bucket 0).
  Histogram z;
  z.record(0);
  EXPECT_EQ(z.percentile(99.0), 0u);
}

// Percentile reads racing concurrent writers: readers must do the math on a
// snapshot(), never the live atomics, so every percentile they compute is
// internally consistent (monotone in p, bounded by the recorded range) no
// matter how the write storm interleaves.  TSan lane covers this (the
// fixture name matches tools/run_tier1.sh's TSAN_FILTER).
TEST(GlobalMetricsTest, ConcurrentHistogramSnapshotsStayConsistent) {
  ConcurrentHistogram ch;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&ch, &stop] {
      std::uint64_t v = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        ch.record(v);
        v = v % 1024 + 1;  // values stay in [1, 1024]
      }
    });
  }
  std::uint64_t last_count = 0;
  for (int i = 0; i < 400; ++i) {
    const Histogram s = ch.snapshot();
    if (s.count() == 0) continue;
    EXPECT_GE(s.count(), last_count) << "count is monotone across snapshots";
    last_count = s.count();
    EXPECT_GE(s.min(), 1u);
    EXPECT_LE(s.min(), s.max());
    EXPECT_LE(s.max(), 1024u);
    const std::uint64_t p50 = s.percentile(50.0);
    const std::uint64_t p99 = s.percentile(99.0);
    const std::uint64_t p999 = s.percentile(99.9);
    EXPECT_LE(p50, p99);
    EXPECT_LE(p99, p999);
    EXPECT_LE(p999, s.max()) << "never past the recorded range";
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : writers) w.join();
  // Quiescent: the final snapshot agrees with itself exactly.
  const Histogram s = ch.snapshot();
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : s.buckets()) bucket_total += b;
  EXPECT_EQ(bucket_total, s.count());
  EXPECT_EQ(s.count(), ch.count());
}

TEST(GlobalMetricsTest, ResetRacingMergeStaysConsistent) {
  reset_global_metrics();
  std::thread merger([] {
    for (int i = 0; i < 200; ++i) {
      MetricsRegistry m;
      m.set_enabled(true);
      m.add_counter("racy", 1);
      merge_into_global_metrics(m);
    }
  });
  std::thread resetter([] {
    for (int i = 0; i < 50; ++i) reset_global_metrics();
  });
  merger.join();
  resetter.join();
  // No crash, no TSan report; the value is whatever survived the last reset.
  reset_global_metrics();
}

}  // namespace
}  // namespace stemcp::core
