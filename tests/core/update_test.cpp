// Update-constraints: validity dependencies that erase derived values
// (thesis ch. 6).
#include <gtest/gtest.h>

#include "core/core.h"

namespace stemcp::core {
namespace {

class UpdateTest : public ::testing::Test {
 protected:
  PropagationContext ctx;
};

TEST_F(UpdateTest, SourceChangeErasesTargets) {
  Variable netlist(ctx, "cell", "netlist");
  Variable extracted(ctx, "cell", "extractedParasitics");
  UpdateConstraint::depends(ctx, {&extracted}, {&netlist});
  EXPECT_TRUE(extracted.set_application(Value("C=4pF")));
  EXPECT_TRUE(netlist.set_user(Value("deck-v2")));
  EXPECT_TRUE(extracted.value().is_nil()) << "derived data invalidated";
}

TEST_F(UpdateTest, TargetRecalculationDoesNotReErase) {
  Variable src(ctx, "cell", "src");
  Variable derived(ctx, "cell", "derived");
  UpdateConstraint::depends(ctx, {&derived}, {&src});
  EXPECT_TRUE(src.set_user(Value(1)));
  // Recalculating the target must not bounce back through the constraint.
  EXPECT_TRUE(derived.set_application(Value(10)));
  EXPECT_EQ(derived.value().as_int(), 10);
}

TEST_F(UpdateTest, MultipleTargetsAllErased) {
  Variable src(ctx, "cell", "layout");
  Variable t1(ctx, "cell", "bbox"), t2(ctx, "cell", "pins"),
      t3(ctx, "cell", "area");
  UpdateConstraint::depends(ctx, {&t1, &t2, &t3}, {&src});
  EXPECT_TRUE(t1.set_application(Value(1)));
  EXPECT_TRUE(t2.set_application(Value(2)));
  EXPECT_TRUE(t3.set_application(Value(3)));
  EXPECT_TRUE(src.set_user(Value("edited")));
  EXPECT_TRUE(t1.value().is_nil());
  EXPECT_TRUE(t2.value().is_nil());
  EXPECT_TRUE(t3.value().is_nil());
}

TEST_F(UpdateTest, ErasureCascadesThroughChainedUpdates) {
  // src -> mid -> leaf: invalidation must ripple (Fig 5.1 style chains).
  Variable src(ctx, "c", "src"), mid(ctx, "c", "mid"), leaf(ctx, "c", "leaf");
  UpdateConstraint::depends(ctx, {&mid}, {&src});
  UpdateConstraint::depends(ctx, {&leaf}, {&mid});
  EXPECT_TRUE(mid.set_application(Value(1)));
  EXPECT_TRUE(leaf.set_application(Value(2)));
  EXPECT_TRUE(src.set_user(Value(99)));
  EXPECT_TRUE(mid.value().is_nil());
  EXPECT_TRUE(leaf.value().is_nil());
}

TEST_F(UpdateTest, AlreadyNilTargetsSkipped) {
  Variable src(ctx, "c", "src"), t(ctx, "c", "t");
  UpdateConstraint::depends(ctx, {&t}, {&src});
  ctx.reset_stats();
  EXPECT_TRUE(src.set_user(Value(1)));
  EXPECT_EQ(ctx.stats().assignments, 1u) << "nil target not re-erased";
}

TEST_F(UpdateTest, UserValueOnTargetProtectedFromErasure) {
  Variable src(ctx, "c", "src"), t(ctx, "c", "t");
  UpdateConstraint::depends(ctx, {&t}, {&src});
  EXPECT_TRUE(t.set_user(Value(7)));
  // The erasure cannot overwrite the designer's explicit value: violation
  // feedback tells the tool its invalidation failed.
  EXPECT_TRUE(src.set_user(Value(1)).is_violation());
  EXPECT_EQ(t.value().as_int(), 7);
}

TEST_F(UpdateTest, UpdateConstraintAlwaysSatisfied) {
  Variable src(ctx, "c", "src"), t(ctx, "c", "t");
  auto& u = UpdateConstraint::depends(ctx, {&t}, {&src});
  EXPECT_TRUE(u.is_satisfied());
  EXPECT_TRUE(src.set_user(Value(1)));
  EXPECT_TRUE(u.is_satisfied());
}

}  // namespace
}  // namespace stemcp::core
