// Core propagation engine semantics (thesis §4.1–4.2), including the worked
// example of Fig 4.5.
#include <gtest/gtest.h>

#include "core/core.h"

namespace stemcp::core {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  PropagationContext ctx;
};

TEST_F(EngineTest, VariableStartsNil) {
  Variable v(ctx, "cell", "x");
  EXPECT_TRUE(v.value().is_nil());
  EXPECT_FALSE(v.has_value());
  EXPECT_EQ(v.last_set_by().source(), Source::kNone);
  EXPECT_EQ(v.path(), "cell.x");
}

TEST_F(EngineTest, SimpleUserAssignment) {
  Variable v(ctx, "cell", "x");
  EXPECT_TRUE(v.set_user(Value(5)));
  EXPECT_EQ(v.value().as_int(), 5);
  EXPECT_TRUE(v.last_set_by().is_user());
}

TEST_F(EngineTest, EqualityPropagatesValue) {
  Variable a(ctx, "t", "a"), b(ctx, "t", "b"), c(ctx, "t", "c");
  EqualityConstraint::among(ctx, {&a, &b, &c});
  EXPECT_TRUE(a.set_user(Value(7)));
  EXPECT_EQ(b.value().as_int(), 7);
  EXPECT_EQ(c.value().as_int(), 7);
  EXPECT_TRUE(b.is_dependent());
  EXPECT_TRUE(c.is_dependent());
}

// Thesis Fig 4.5: V1 == V2, V4 = max(V2, V3).  Setting V1 = 9 drives V2 to 9
// and V4 to max(9, 7) = 9.
TEST_F(EngineTest, Fig4_5SimpleNetwork) {
  Variable v1(ctx, "fig45", "V1"), v2(ctx, "fig45", "V2");
  Variable v3(ctx, "fig45", "V3"), v4(ctx, "fig45", "V4");
  EXPECT_TRUE(v3.set_user(Value(7)));
  EXPECT_TRUE(v1.set_user(Value(5)));
  EqualityConstraint::among(ctx, {&v1, &v2});
  UniMaximumConstraint::max_of(ctx, v4, {&v2, &v3});
  EXPECT_EQ(v2.value().as_int(), 5);
  EXPECT_EQ(v4.value().as_int(), 7);

  EXPECT_TRUE(v1.set_user(Value(9)));
  EXPECT_EQ(v2.value().as_int(), 9);
  EXPECT_EQ(v4.value().as_int(), 9);
}

TEST_F(EngineTest, PropagatedValueCannotOverwriteUser) {
  Variable a(ctx, "t", "a"), b(ctx, "t", "b");
  EXPECT_TRUE(b.set_user(Value(3)));
  auto& eq = ctx.make<EqualityConstraint>();
  eq.basic_add_argument(a);
  eq.basic_add_argument(b);
  eq.reinitialize_variables();
  EXPECT_EQ(a.value().as_int(), 3);  // b's user value propagated into a

  // Setting a to a conflicting value propagates to b, which is
  // user-protected: violation, and a must be restored.
  EXPECT_TRUE(a.set_user(Value(3)));  // same value: fine
  const Status s = a.set(Value(9), Justification::application());
  EXPECT_TRUE(s.is_violation());
  EXPECT_EQ(a.value().as_int(), 3) << "restored after violation";
  EXPECT_EQ(b.value().as_int(), 3);
  ASSERT_TRUE(ctx.last_violation().has_value());
  EXPECT_EQ(ctx.last_violation()->variable, &b);
}

TEST_F(EngineTest, ConflictingUserValuesOnBothEndsViolate) {
  Variable a(ctx, "t", "a"), b(ctx, "t", "b");
  EqualityConstraint::among(ctx, {&a, &b});
  EXPECT_TRUE(a.set_user(Value(1)));
  EXPECT_EQ(b.value().as_int(), 1);
  // Setting b disagrees with a's #USER value; the propagated 2 cannot
  // overwrite it (thesis §4.2.4) and the designer is warned.
  EXPECT_TRUE(b.set_user(Value(2)).is_violation());
  EXPECT_EQ(a.value().as_int(), 1);
  EXPECT_EQ(b.value().as_int(), 1) << "restored";
  // Relaxing a to a calculated value lets the user drive b.
  EXPECT_TRUE(a.set(Value(1), Justification::application()));
  EXPECT_TRUE(b.set_user(Value(2)));
  EXPECT_EQ(a.value().as_int(), 2);
}

TEST_F(EngineTest, NoChangeStopsWavefront) {
  Variable a(ctx, "t", "a"), b(ctx, "t", "b"), c(ctx, "t", "c");
  EqualityConstraint::among(ctx, {&a, &b});
  EqualityConstraint::among(ctx, {&b, &c});
  EXPECT_TRUE(a.set_user(Value(4)));
  EXPECT_EQ(c.value().as_int(), 4);
  ctx.reset_stats();
  // b already equals 4; re-setting a to 4 must not ripple to c.
  EXPECT_TRUE(a.set_user(Value(4)));
  EXPECT_EQ(ctx.stats().assignments, 1u);  // only a itself
}

TEST_F(EngineTest, DisabledSwitchSkipsPropagationAndChecking) {
  Variable a(ctx, "t", "a"), b(ctx, "t", "b");
  EqualityConstraint::among(ctx, {&a, &b});
  EXPECT_TRUE(b.set_user(Value(1)));
  ctx.set_enabled(false);
  EXPECT_TRUE(a.set_user(Value(99)));  // inconsistent, but unchecked
  EXPECT_EQ(a.value().as_int(), 99);
  EXPECT_EQ(b.value().as_int(), 1);
  ctx.set_enabled(true);
}

TEST_F(EngineTest, FunctionalConstraintComputesSum) {
  Variable x(ctx, "t", "x"), y(ctx, "t", "y"), sum(ctx, "t", "sum");
  UniAdditionConstraint::sum(ctx, sum, {&x, &y});
  EXPECT_TRUE(x.set_user(Value(3)));
  EXPECT_TRUE(sum.value().is_nil()) << "y unknown: sum not computable";
  EXPECT_TRUE(y.set_user(Value(4)));
  EXPECT_EQ(sum.value().as_int(), 7);
}

TEST_F(EngineTest, FunctionalResultChangeDoesNotRecompute) {
  Variable x(ctx, "t", "x"), result(ctx, "t", "r");
  auto& add = ctx.make<UniAdditionConstraint>(1.0);
  add.set_result(result);
  add.basic_add_argument(x);
  EXPECT_TRUE(x.set_user(Value(10)));
  EXPECT_EQ(result.value().as_int(), 11);
  // A user assignment to the result that satisfies the function is fine...
  EXPECT_TRUE(result.set_user(Value(11)));
  // ...but one that contradicts it is caught by the final isSatisfied sweep.
  const Status s = result.set_user(Value(99));
  EXPECT_TRUE(s.is_violation());
  EXPECT_EQ(result.value().as_int(), 11) << "restored";
}

TEST_F(EngineTest, MixedIntRealSumIsReal) {
  Variable x(ctx, "t", "x"), y(ctx, "t", "y"), sum(ctx, "t", "sum");
  UniAdditionConstraint::sum(ctx, sum, {&x, &y});
  EXPECT_TRUE(x.set_user(Value(1)));
  EXPECT_TRUE(y.set_user(Value(2.5)));
  EXPECT_TRUE(sum.value().is_real());
  EXPECT_DOUBLE_EQ(sum.value().as_real(), 3.5);
}

TEST_F(EngineTest, CanBeSetToProbesAndRestores) {
  Variable a(ctx, "t", "a"), b(ctx, "t", "b");
  EqualityConstraint::among(ctx, {&a, &b});
  BoundConstraint::upper(ctx, b, Value(10));
  EXPECT_TRUE(a.set_user(Value(5)));

  EXPECT_TRUE(a.can_be_set_to(Value(8)));
  EXPECT_EQ(a.value().as_int(), 5) << "probe restored on success";
  EXPECT_EQ(b.value().as_int(), 5);
  EXPECT_TRUE(a.last_set_by().is_user());

  EXPECT_FALSE(a.can_be_set_to(Value(20))) << "20 violates b <= 10";
  EXPECT_EQ(a.value().as_int(), 5) << "probe restored on violation";
  EXPECT_EQ(b.value().as_int(), 5);
}

// External assignment from inside a running propagation session is API
// misuse and must be reported loudly rather than corrupting visited state.
class SetInHookVariable : public Variable {
 public:
  SetInHookVariable(PropagationContext& c, Variable& other)
      : Variable(c, "t", "hooked"), other_(other) {}

 protected:
  Status after_value_change(const Justification&) override {
    other_.set_user(Value(1));  // throws: nested external assignment
    return Status::ok();
  }

 private:
  Variable& other_;
};

TEST_F(EngineTest, NestedExternalAssignmentThrows) {
  Variable other(ctx, "t", "other");
  SetInHookVariable hooked(ctx, other);
  EXPECT_THROW(hooked.set_user(Value(5)), std::logic_error);
}

TEST_F(EngineTest, ViolationLogAndHandlerInvoked) {
  Variable a(ctx, "t", "a"), b(ctx, "t", "b");
  int handler_calls = 0;
  ctx.set_violation_handler([&](const ViolationInfo&) { ++handler_calls; });
  EqualityConstraint::among(ctx, {&a, &b});
  EXPECT_TRUE(b.set_user(Value(1)));
  EXPECT_TRUE(a.set(Value(2), Justification::application()).is_violation());
  EXPECT_EQ(handler_calls, 1);
  ASSERT_FALSE(ctx.violation_log().empty());
  EXPECT_NE(ctx.violation_log().back().find("equality"), std::string::npos);
}

TEST_F(EngineTest, StatsCountSessionsAndAssignments) {
  Variable a(ctx, "t", "a"), b(ctx, "t", "b");
  EqualityConstraint::among(ctx, {&a, &b});
  ctx.reset_stats();
  EXPECT_TRUE(a.set_user(Value(1)));
  EXPECT_EQ(ctx.stats().sessions, 1u);
  EXPECT_EQ(ctx.stats().assignments, 2u);  // a and b
  EXPECT_GE(ctx.stats().checks, 1u);
}

TEST_F(EngineTest, RectValuesPropagate) {
  Variable a(ctx, "t", "a"), b(ctx, "t", "b");
  EqualityConstraint::among(ctx, {&a, &b});
  const Rect r{0, 0, 10, 20};
  EXPECT_TRUE(a.set_user(Value(r)));
  EXPECT_EQ(b.value().as_rect(), r);
}

TEST_F(EngineTest, UniMaximumIgnoresUnknownInputs) {
  Variable x(ctx, "t", "x"), y(ctx, "t", "y"), m(ctx, "t", "m");
  UniMaximumConstraint::max_of(ctx, m, {&x, &y});
  EXPECT_TRUE(x.set_user(Value(4.0)));
  EXPECT_DOUBLE_EQ(m.value().as_number(), 4.0);
  EXPECT_TRUE(y.set_user(Value(9.0)));
  EXPECT_DOUBLE_EQ(m.value().as_number(), 9.0);
}

TEST_F(EngineTest, UniMaximumRecomputesWhenInputShrinks) {
  // The shrink happens in its own session, so the max variable is free to
  // change once and tracks the recomputed value.
  Variable x(ctx, "t", "x"), y(ctx, "t", "y"), m(ctx, "t", "m");
  UniMaximumConstraint::max_of(ctx, m, {&x, &y});
  EXPECT_TRUE(x.set_user(Value(4.0)));
  EXPECT_TRUE(y.set_user(Value(9.0)));
  EXPECT_TRUE(y.set_user(Value(2.0)));  // max recomputes to 4: one change, ok
  EXPECT_DOUBLE_EQ(m.value().as_number(), 4.0);
}

}  // namespace
}  // namespace stemcp::core
