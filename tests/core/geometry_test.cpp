// Geometry substrate: rects, orientations, transforms.
#include <gtest/gtest.h>

#include "core/geometry.h"

namespace stemcp::core {
namespace {

TEST(RectTest, BasicMetrics) {
  const Rect r{0, 0, 10, 4};
  EXPECT_FALSE(r.empty());
  EXPECT_EQ(r.width(), 10);
  EXPECT_EQ(r.height(), 4);
  EXPECT_EQ(r.area(), 40);
  EXPECT_EQ(r.center(), (Point{5, 2}));
}

TEST(RectTest, DefaultIsEmpty) {
  const Rect r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.width(), 0);
  EXPECT_EQ(r.area(), 0);
}

TEST(RectTest, ContainsAndIntersects) {
  const Rect r{0, 0, 10, 10};
  EXPECT_TRUE(r.contains(Point{0, 0}));
  EXPECT_TRUE(r.contains(Point{10, 10}));
  EXPECT_FALSE(r.contains(Point{11, 0}));
  EXPECT_TRUE(r.contains(Rect{2, 2, 8, 8}));
  EXPECT_FALSE(r.contains(Rect{2, 2, 12, 8}));
  EXPECT_TRUE(r.contains(Rect{}));
  EXPECT_TRUE(r.intersects(Rect{5, 5, 20, 20}));
  EXPECT_FALSE(r.intersects(Rect{20, 20, 30, 30}));
}

TEST(RectTest, UnionHandlesEmpty) {
  const Rect r{0, 0, 5, 5};
  EXPECT_EQ(r.union_with(Rect{}), r);
  EXPECT_EQ(Rect{}.union_with(r), r);
  EXPECT_EQ(r.union_with(Rect{3, 3, 10, 12}), (Rect{0, 0, 10, 12}));
}

TEST(RectTest, ExtentCovers) {
  const Rect big{0, 0, 10, 10};
  const Rect small{100, 100, 105, 105};
  EXPECT_TRUE(big.extent_covers(small));
  EXPECT_FALSE(small.extent_covers(big));
  EXPECT_TRUE(big.extent_covers(big));
}

TEST(TransformTest, IdentityIsNeutral) {
  const Transform id;
  EXPECT_EQ(id.apply(Point{3, 4}), (Point{3, 4}));
  EXPECT_EQ(id.apply(Rect{1, 2, 3, 4}), (Rect{1, 2, 3, 4}));
}

TEST(TransformTest, TranslationMoves) {
  const Transform t = Transform::translate({10, 20});
  EXPECT_EQ(t.apply(Point{1, 1}), (Point{11, 21}));
  EXPECT_EQ(t.apply(Rect{0, 0, 2, 2}), (Rect{10, 20, 12, 22}));
}

TEST(TransformTest, RotationNormalizesRect) {
  const Transform r90{Orientation::kR90, {}};
  // R90 maps (x,y) -> (-y,x); the rect must be re-normalized.
  EXPECT_EQ(r90.apply(Rect{0, 0, 4, 2}), (Rect{-2, 0, 0, 4}));
}

TEST(TransformTest, MirrorX) {
  const Transform mx{Orientation::kMX, {}};
  EXPECT_EQ(mx.apply(Point{3, 4}), (Point{3, -4}));
}

class OrientationRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(OrientationRoundTrip, InverseComposesToIdentity) {
  const auto o = static_cast<Orientation>(GetParam());
  const Transform t{o, {7, -3}};
  const Transform inv = t.inverse();
  const Point samples[] = {{0, 0}, {1, 0}, {0, 1}, {5, -9}, {-4, 13}};
  for (Point p : samples) {
    EXPECT_EQ(inv.apply(t.apply(p)), p) << to_string(o);
    EXPECT_EQ(t.then(inv).apply(p), p) << to_string(o);
  }
}

TEST_P(OrientationRoundTrip, CompositionIsAssociativeOnPoints) {
  const auto o = static_cast<Orientation>(GetParam());
  const Transform a{o, {2, 3}};
  const Transform b{Orientation::kR90, {-1, 5}};
  const Transform c{Orientation::kMX, {0, -2}};
  const Point p{11, -7};
  EXPECT_EQ(a.then(b).then(c).apply(p), a.then(b.then(c)).apply(p));
  EXPECT_EQ(c.apply(b.apply(a.apply(p))), a.then(b).then(c).apply(p));
}

INSTANTIATE_TEST_SUITE_P(AllOrientations, OrientationRoundTrip,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace stemcp::core
