// Predicate constraints: bounds, ranges, comparisons, aspect ratio
// (thesis §7.2, Fig 7.9).
#include <gtest/gtest.h>

#include "core/core.h"

namespace stemcp::core {
namespace {

class PredicateTest : public ::testing::Test {
 protected:
  PropagationContext ctx;
};

TEST_F(PredicateTest, UpperBoundAcceptsAndRejects) {
  Variable d(ctx, "cell", "delay");
  BoundConstraint::upper(ctx, d, Value(120.0));
  EXPECT_TRUE(d.set_application(Value(100.0)));
  EXPECT_TRUE(d.set_application(Value(120.0)));
  EXPECT_TRUE(d.set_application(Value(121.0)).is_violation());
  EXPECT_DOUBLE_EQ(d.value().as_number(), 120.0) << "restored";
}

TEST_F(PredicateTest, LowerBound) {
  Variable v(ctx, "t", "v");
  BoundConstraint::lower(ctx, v, Value(5));
  EXPECT_TRUE(v.set_user(Value(5)));
  EXPECT_TRUE(v.set_user(Value(4)).is_violation());
}

TEST_F(PredicateTest, NilValueIsVacuouslySatisfied) {
  Variable v(ctx, "t", "v");
  auto& c = BoundConstraint::upper(ctx, v, Value(10));
  EXPECT_TRUE(c.is_satisfied());
}

TEST_F(PredicateTest, BoundOverMultipleArguments) {
  Variable a(ctx, "t", "a"), b(ctx, "t", "b");
  auto& c = ctx.make<BoundConstraint>(Relation::kLessEqual, Value(10));
  c.add_argument(a);
  c.add_argument(b);
  EXPECT_TRUE(a.set_user(Value(3)));
  EXPECT_TRUE(b.set_user(Value(11)).is_violation());
}

TEST_F(PredicateTest, RangeConstraintForParameters) {
  Variable width(ctx, "inv", "width");
  RangeConstraint::over(ctx, width, 1.0, 64.0);
  EXPECT_TRUE(width.set_user(Value(8)));
  EXPECT_TRUE(width.set_user(Value(0)).is_violation());
  EXPECT_TRUE(width.set_user(Value(65)).is_violation());
  EXPECT_EQ(width.value().as_int(), 8);
}

TEST_F(PredicateTest, ComparisonBetweenVariables) {
  Variable fast(ctx, "t", "fast"), slow(ctx, "t", "slow");
  ComparisonConstraint::between(ctx, Relation::kLessEqual, fast, slow);
  EXPECT_TRUE(slow.set_user(Value(10.0)));
  EXPECT_TRUE(fast.set_user(Value(3.0)));
  EXPECT_TRUE(fast.set_user(Value(12.0)).is_violation());
}

TEST_F(PredicateTest, AspectRatioPredicate) {
  Variable bbox(ctx, "cell", "boundingBox");
  AspectRatioPredicate::ratio(ctx, 2.0, bbox);
  EXPECT_TRUE(bbox.set_user(Value(Rect{0, 0, 20, 10})));
  EXPECT_TRUE(bbox.set_user(Value(Rect{0, 0, 30, 10})).is_violation());
  EXPECT_EQ(bbox.value().as_rect(), (Rect{0, 0, 20, 10}));
}

TEST_F(PredicateTest, MaxAreaPredicate) {
  Variable bbox(ctx, "cell", "boundingBox");
  MaxAreaPredicate::at_most(ctx, 100, bbox);
  EXPECT_TRUE(bbox.set_user(Value(Rect{0, 0, 10, 10})));
  EXPECT_TRUE(bbox.set_user(Value(Rect{0, 0, 11, 10})).is_violation());
}

TEST_F(PredicateTest, LambdaPredicateArbitraryCheck) {
  // The thesis's open-ended extension point: any designer-defined check.
  Variable a(ctx, "t", "a"), b(ctx, "t", "b");
  auto& even_sum = ctx.make<LambdaPredicate>(
      "evenSum", [](const std::vector<Variable*>& args) {
        std::int64_t sum = 0;
        for (const Variable* v : args) {
          if (!v->value().is_int()) return true;
          sum += v->value().as_int();
        }
        return sum % 2 == 0;
      });
  even_sum.basic_add_argument(a);
  even_sum.basic_add_argument(b);
  EXPECT_TRUE(a.set_user(Value(2)));
  EXPECT_TRUE(b.set_user(Value(4)));
  EXPECT_TRUE(b.set_user(Value(5)).is_violation());
  EXPECT_EQ(b.value().as_int(), 4);
}

class RelationCase
    : public ::testing::TestWithParam<std::tuple<Relation, double, double,
                                                 bool>> {};

TEST_P(RelationCase, HoldsMatchesSemantics) {
  const auto [r, lhs, rhs, expected] = GetParam();
  EXPECT_EQ(holds(r, lhs, rhs), expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllRelations, RelationCase,
    ::testing::Values(
        std::make_tuple(Relation::kLess, 1.0, 2.0, true),
        std::make_tuple(Relation::kLess, 2.0, 2.0, false),
        std::make_tuple(Relation::kLessEqual, 2.0, 2.0, true),
        std::make_tuple(Relation::kLessEqual, 3.0, 2.0, false),
        std::make_tuple(Relation::kGreater, 3.0, 2.0, true),
        std::make_tuple(Relation::kGreater, 2.0, 2.0, false),
        std::make_tuple(Relation::kGreaterEqual, 2.0, 2.0, true),
        std::make_tuple(Relation::kGreaterEqual, 1.0, 2.0, false),
        std::make_tuple(Relation::kEqual, 2.0, 2.0, true),
        std::make_tuple(Relation::kEqual, 2.0, 3.0, false),
        std::make_tuple(Relation::kNotEqual, 2.0, 3.0, true),
        std::make_tuple(Relation::kNotEqual, 2.0, 2.0, false)));

}  // namespace
}  // namespace stemcp::core
