// Extensions from the thesis's future-work chapter (§9.2.3/§9.3): the
// relaxed N-value-change rule, per-constraint enable/disable, compiled
// networks, and the relaxation solver.
#include <gtest/gtest.h>

#include "core/core.h"

namespace stemcp::core {
namespace {

class ExtensionsTest : public ::testing::Test {
 protected:
  PropagationContext ctx;
};

// ---- relaxed value-change rule (§9.2.3 "quick fix") ------------------------

// Reconvergent fanout with unfortunate constraint ordering: out = a + src is
// activated before a = src + 1 refreshes, so out transiently computes from a
// stale a.  Under the one-value-change rule the corrected value is rejected;
// with N = 2 the second change lands.
class ImmediateAddition : public UniAdditionConstraint {
 public:
  explicit ImmediateAddition(PropagationContext& ctx, double offset)
      : UniAdditionConstraint(ctx, offset) {}

  Status propagate_variable(Variable& changed) override {
    if (!enabled()) return Status::ok();
    context().mark_visited(*this);
    if (!permit_changes_by(changed)) return Status::ok();
    return propagate_scheduled(nullptr);  // eager, dependency-blind
  }
};

struct Reconvergent {
  PropagationContext& ctx;
  Variable src, a, out;
  Reconvergent(PropagationContext& c) : ctx(c), src(c, "r", "src"),
                                        a(c, "r", "a"), out(c, "r", "out") {
    // Order matters: the consumer (out = a + src) attaches to src FIRST so
    // it fires before the producer (a = src + 1).
    auto& consumer = ctx.make<ImmediateAddition>(0.0);
    consumer.set_result(out);
    consumer.basic_add_argument(a);
    consumer.basic_add_argument(src);
    auto& producer = ctx.make<ImmediateAddition>(1.0);
    producer.set_result(a);
    producer.basic_add_argument(src);
  }
};

TEST_F(ExtensionsTest, OneValueChangeRejectsReconvergentCorrection) {
  Reconvergent net(ctx);
  EXPECT_TRUE(net.src.set_user(Value(10.0)));  // a, out both fresh: fine
  // Second set: out computes from stale a first, then the corrected value
  // needs a second change — refused under the default rule.
  EXPECT_TRUE(net.src.set_user(Value(20.0)).is_violation());
}

TEST_F(ExtensionsTest, TwoValueChangesAcceptReconvergentCorrection) {
  ctx.set_max_changes_per_variable(2);
  Reconvergent net(ctx);
  EXPECT_TRUE(net.src.set_user(Value(10.0)));
  EXPECT_TRUE(net.src.set_user(Value(20.0)));
  EXPECT_DOUBLE_EQ(net.a.value().as_number(), 21.0);
  EXPECT_DOUBLE_EQ(net.out.value().as_number(), 41.0) << "corrected value";
}

TEST_F(ExtensionsTest, RaisedLimitStillCatchesTrueCycles) {
  ctx.set_max_changes_per_variable(3);
  Variable v1(ctx, "t", "V1"), v2(ctx, "t", "V2");
  auto& up = ctx.make<UniAdditionConstraint>(1.0);
  up.set_result(v2);
  up.basic_add_argument(v1);
  auto& also_up = ctx.make<UniAdditionConstraint>(1.0);
  also_up.set_result(v1);
  also_up.basic_add_argument(v2);
  EXPECT_TRUE(v1.set_user(Value(0.0)).is_violation())
      << "divergent cycle exhausts any finite change budget";
  EXPECT_TRUE(v1.value().is_nil());
  EXPECT_TRUE(v2.value().is_nil());
}

// ---- constraint strengths (§4.2.4's open suggestion) --------------------------

TEST_F(ExtensionsTest, StrongConstraintResistsWeakOverwrite) {
  Variable shared(ctx, "t", "shared");
  Variable strong_src(ctx, "t", "strongSrc"), weak_src(ctx, "t", "weakSrc");
  auto& strong = ctx.make<EqualityConstraint>();
  strong.set_strength(Strength::kStrong);
  strong.basic_add_argument(strong_src);
  strong.basic_add_argument(shared);
  auto& weak = ctx.make<EqualityConstraint>();
  weak.set_strength(Strength::kWeak);
  weak.basic_add_argument(weak_src);
  weak.basic_add_argument(shared);

  EXPECT_TRUE(strong_src.set_user(Value(10)));
  EXPECT_EQ(shared.value().as_int(), 10);
  // The weak source disagrees: its propagation cannot displace the strong
  // value, so the session violates and restores.
  EXPECT_TRUE(weak_src.set_user(Value(20)).is_violation());
  EXPECT_EQ(shared.value().as_int(), 10);
}

TEST_F(ExtensionsTest, StrongOverwritesWeak) {
  Variable shared(ctx, "t", "shared");
  Variable strong_src(ctx, "t", "strongSrc"), weak_src(ctx, "t", "weakSrc");
  auto& strong = ctx.make<EqualityConstraint>();
  strong.set_strength(Strength::kStrong);
  strong.basic_add_argument(strong_src);
  strong.basic_add_argument(shared);
  auto& weak = ctx.make<EqualityConstraint>();
  weak.set_strength(Strength::kWeak);
  weak.basic_add_argument(weak_src);
  weak.basic_add_argument(shared);

  // A weak default fills everything in first...
  EXPECT_TRUE(weak_src.set_application(Value(20)));
  EXPECT_EQ(shared.value().as_int(), 20);
  EXPECT_EQ(shared.last_set_by().strength(), Strength::kWeak);
  // ...then the strong source displaces it throughout.
  EXPECT_TRUE(strong_src.set_user(Value(30)));
  EXPECT_EQ(shared.value().as_int(), 30);
  EXPECT_EQ(shared.last_set_by().strength(), Strength::kStrong);
  EXPECT_EQ(weak_src.value().as_int(), 30) << "rippled on through";
}

TEST_F(ExtensionsTest, EqualStrengthBehavesAsBefore) {
  Variable a(ctx, "t", "a"), b(ctx, "t", "b"), c(ctx, "t", "c");
  EqualityConstraint::among(ctx, {&a, &b});
  EqualityConstraint::among(ctx, {&b, &c});
  EXPECT_TRUE(a.set(Value(1), Justification::application()));
  EXPECT_EQ(c.value().as_int(), 1);
  EXPECT_TRUE(c.set(Value(2), Justification::application()));
  EXPECT_EQ(a.value().as_int(), 2) << "normal overwrites normal";
}

// ---- per-constraint enable/disable (§9.3 #2) ---------------------------------

TEST_F(ExtensionsTest, DisabledConstraintNeitherPropagatesNorChecks) {
  Variable a(ctx, "t", "a"), b(ctx, "t", "b");
  auto& eq = EqualityConstraint::among(ctx, {&a, &b});
  EXPECT_TRUE(b.set_user(Value(1)));
  eq.disable();
  EXPECT_TRUE(a.set_user(Value(99)));  // no propagation, no check
  EXPECT_EQ(b.value().as_int(), 1);
}

TEST_F(ExtensionsTest, ReEnableRepropagates) {
  Variable a(ctx, "t", "a"), b(ctx, "t", "b");
  auto& eq = EqualityConstraint::among(ctx, {&a, &b});
  eq.disable();
  EXPECT_TRUE(a.set_user(Value(5)));
  EXPECT_TRUE(b.value().is_nil());
  EXPECT_TRUE(eq.enable());
  EXPECT_EQ(b.value().as_int(), 5) << "consistency restored on enable";
}

TEST_F(ExtensionsTest, ReEnableReportsLatentViolation) {
  Variable a(ctx, "t", "a"), b(ctx, "t", "b");
  auto& eq = EqualityConstraint::among(ctx, {&a, &b});
  eq.disable();
  EXPECT_TRUE(a.set_user(Value(5)));
  EXPECT_TRUE(b.set_user(Value(7)));
  EXPECT_TRUE(eq.enable().is_violation());
}

// ---- compiled networks (§9.3 #3) -----------------------------------------------

TEST_F(ExtensionsTest, CompiledNetworkEvaluatesInTopologicalOrder) {
  Variable x(ctx, "t", "x"), y(ctx, "t", "y"), s(ctx, "t", "s"),
      d(ctx, "t", "d");
  // d = 2*s; s = x + y — registered deliberately out of order.
  auto& dbl = ctx.make<UniLinearConstraint>(2.0, 0.0);
  dbl.set_result(d);
  dbl.basic_add_argument(s);
  auto& add = ctx.make<UniAdditionConstraint>();
  add.set_result(s);
  add.basic_add_argument(x);
  add.basic_add_argument(y);

  auto compiled = CompiledNetwork::compile(ctx, {&dbl, &add});
  ASSERT_TRUE(compiled.has_value());
  ASSERT_EQ(compiled->order().size(), 2u);
  EXPECT_EQ(compiled->order()[0], &add) << "producer sorted first";

  ctx.set_enabled(false);  // values enter without propagation
  x.set_user(Value(3.0));
  y.set_user(Value(4.0));
  ctx.set_enabled(true);
  EXPECT_TRUE(compiled->evaluate());
  EXPECT_DOUBLE_EQ(s.value().as_number(), 7.0);
  EXPECT_DOUBLE_EQ(d.value().as_number(), 14.0);
}

TEST_F(ExtensionsTest, CompiledNetworkRejectsCycles) {
  Variable a(ctx, "t", "a"), b(ctx, "t", "b");
  auto& c1 = ctx.make<UniAdditionConstraint>(1.0);
  c1.set_result(b);
  c1.basic_add_argument(a);
  auto& c2 = ctx.make<UniAdditionConstraint>(1.0);
  c2.set_result(a);
  c2.basic_add_argument(b);
  EXPECT_FALSE(CompiledNetwork::compile(ctx, {&c1, &c2}).has_value());
}

TEST_F(ExtensionsTest, CompiledNetworkRunsAttachedChecks) {
  Variable x(ctx, "t", "x"), s(ctx, "t", "s");
  auto& add = ctx.make<UniAdditionConstraint>(1.0);
  add.set_result(s);
  add.basic_add_argument(x);
  BoundConstraint::upper(ctx, s, Value(10.0));
  auto compiled = CompiledNetwork::compile(ctx, {&add});
  ASSERT_TRUE(compiled.has_value());
  EXPECT_EQ(compiled->checks().size(), 1u);

  ctx.set_enabled(false);
  x.set_user(Value(3.0));
  ctx.set_enabled(true);
  EXPECT_TRUE(compiled->evaluate());
  EXPECT_DOUBLE_EQ(s.value().as_number(), 4.0);

  ctx.set_enabled(false);
  x.set_user(Value(50.0));
  ctx.set_enabled(true);
  EXPECT_TRUE(compiled->evaluate().is_violation()) << "bound check fired";
}

TEST_F(ExtensionsTest, CompiledResultsCarryDependencyRecords) {
  Variable x(ctx, "t", "x"), s(ctx, "t", "s");
  auto& add = ctx.make<UniAdditionConstraint>(1.0);
  add.set_result(s);
  add.basic_add_argument(x);
  auto compiled = CompiledNetwork::compile(ctx, {&add});
  ctx.set_enabled(false);
  x.set_user(Value(3.0));
  ctx.set_enabled(true);
  ASSERT_TRUE(compiled->evaluate());
  const DependencyTrace t = s.antecedents();
  EXPECT_TRUE(t.contains(x)) << "dependency analysis works on compiled runs";
}

// ---- relaxation solver (§9.3 #4) --------------------------------------------------

TEST_F(ExtensionsTest, RelaxationRepairsInconsistentEquality) {
  Variable a(ctx, "t", "a"), b(ctx, "t", "b");
  auto& eq = EqualityConstraint::among(ctx, {&a, &b});
  ctx.set_enabled(false);
  a.set_application(Value(2.0));
  b.set_application(Value(8.0));
  ctx.set_enabled(true);
  EXPECT_FALSE(eq.is_satisfied());

  const auto result = RelaxationSolver::solve(ctx, {&eq});
  EXPECT_TRUE(result.solved);
  EXPECT_TRUE(eq.is_satisfied());
  EXPECT_DOUBLE_EQ(a.value().as_number(), 5.0) << "converged to the mean";
  EXPECT_DOUBLE_EQ(b.value().as_number(), 5.0);
}

TEST_F(ExtensionsTest, RelaxationRespectsUserValues) {
  Variable a(ctx, "t", "a"), b(ctx, "t", "b");
  auto& eq = EqualityConstraint::among(ctx, {&a, &b});
  ctx.set_enabled(false);
  a.set_user(Value(10.0));
  b.set_application(Value(2.0));
  ctx.set_enabled(true);

  const auto result = RelaxationSolver::solve(ctx, {&eq});
  EXPECT_TRUE(result.solved);
  EXPECT_DOUBLE_EQ(a.value().as_number(), 10.0) << "#USER never touched";
  EXPECT_DOUBLE_EQ(b.value().as_number(), 10.0);
}

TEST_F(ExtensionsTest, RelaxationDistributesAdditionError) {
  // sum pinned by the user; free inputs absorb the difference — the
  // least-commitment budget split performed by satisfaction instead of
  // hand-allocation.
  Variable x(ctx, "t", "x"), y(ctx, "t", "y"), sum(ctx, "t", "sum");
  auto& add = ctx.make<UniAdditionConstraint>();
  add.set_result(sum);
  add.basic_add_argument(x);
  add.basic_add_argument(y);
  ctx.set_enabled(false);
  x.set_application(Value(10.0));
  y.set_application(Value(20.0));
  sum.set_user(Value(100.0));
  ctx.set_enabled(true);

  const auto result = RelaxationSolver::solve(ctx, {&add});
  EXPECT_TRUE(result.solved);
  EXPECT_DOUBLE_EQ(x.value().as_number() + y.value().as_number(), 100.0);
  EXPECT_DOUBLE_EQ(x.value().as_number(), 45.0) << "error split evenly";
  EXPECT_DOUBLE_EQ(y.value().as_number(), 55.0);
}

TEST_F(ExtensionsTest, RelaxationSolvesChainSystem) {
  // a == b, c = b + 5, c bounded <= 40, with an inconsistent start.
  Variable a(ctx, "t", "a"), b(ctx, "t", "b"), c(ctx, "t", "c");
  auto& eq = EqualityConstraint::among(ctx, {&a, &b});
  auto& add = ctx.make<UniAdditionConstraint>(5.0);
  add.set_result(c);
  add.basic_add_argument(b);
  auto& bound = BoundConstraint::upper(ctx, c, Value(40.0));
  ctx.set_enabled(false);
  a.set_application(Value(30.0));
  b.set_application(Value(10.0));
  c.set_application(Value(99.0));
  ctx.set_enabled(true);

  const auto result = RelaxationSolver::solve_around(ctx, {&a});
  EXPECT_TRUE(result.solved);
  EXPECT_TRUE(eq.is_satisfied());
  EXPECT_TRUE(add.is_satisfied());
  EXPECT_TRUE(bound.is_satisfied());
}

TEST_F(ExtensionsTest, RecoverRepairsAfterDisabledEditSpree) {
  // The §5.3 scenario: extensive design revisions with propagation off,
  // then recovery instead of living with a silently inconsistent database.
  Variable a(ctx, "t", "a"), b(ctx, "t", "b"), sum(ctx, "t", "sum");
  auto& eq = EqualityConstraint::among(ctx, {&a, &b});
  auto& add = ctx.make<UniAdditionConstraint>(1.0);
  add.set_result(sum);
  add.basic_add_argument(b);

  ctx.set_enabled(false);
  a.set_application(Value(4.0));
  b.set_application(Value(10.0));   // inconsistent with a
  sum.set_application(Value(99.0)); // inconsistent with b + 1
  // (propagation still disabled here)
  const auto result = RelaxationSolver::recover(ctx);
  EXPECT_TRUE(result.solved);
  EXPECT_TRUE(ctx.enabled()) << "propagation switched back on";
  EXPECT_TRUE(eq.is_satisfied());
  EXPECT_TRUE(add.is_satisfied());
  EXPECT_DOUBLE_EQ(a.value().as_number(), b.value().as_number());
  EXPECT_DOUBLE_EQ(sum.value().as_number(), b.value().as_number() + 1.0);
}

TEST_F(ExtensionsTest, RelaxationReportsUnsolvable) {
  Variable a(ctx, "t", "a"), b(ctx, "t", "b");
  auto& eq = EqualityConstraint::among(ctx, {&a, &b});
  ctx.set_enabled(false);
  a.set_user(Value(1.0));
  b.set_user(Value(2.0));  // two pinned, disagreeing values
  ctx.set_enabled(true);
  const auto result = RelaxationSolver::solve(ctx, {&eq});
  EXPECT_FALSE(result.solved);
  ASSERT_EQ(result.unsatisfied.size(), 1u);
  EXPECT_EQ(result.unsatisfied[0], &eq);
}

}  // namespace
}  // namespace stemcp::core
