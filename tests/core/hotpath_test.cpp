// Allocation-free hot path (docs/PERFORMANCE.md): after warm-up, a
// steady-state propagation session — schedule, pop, record-visited, assign,
// check — must perform zero heap allocations.  This binary overrides the
// global allocator to count; each test binary is standalone (see
// tests/CMakeLists.txt), so the override affects only this suite.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "core/core.h"
#include "service/telemetry.h"
#include "workload/recorder.h"

namespace {

std::atomic<std::uint64_t> g_allocs{0};

}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t n) { return ::operator new(n); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace stemcp::core {
namespace {

std::uint64_t alloc_count() {
  return g_allocs.load(std::memory_order_relaxed);
}

// The Fig 4.5-style shape every bench hits: a fan-in of equalities feeding a
// functional adder.  a drives b and c; s = b + c.
struct Diamond {
  PropagationContext ctx;
  Variable a{ctx, "t", "a"}, b{ctx, "t", "b"}, c{ctx, "t", "c"},
      s{ctx, "t", "s"};

  Diamond() {
    EqualityConstraint::among(ctx, {&a, &b});
    EqualityConstraint::among(ctx, {&a, &c});
    auto& add = ctx.make<UniAdditionConstraint>();
    add.set_result(s);
    add.basic_add_argument(b);
    add.basic_add_argument(c);
  }
};

TEST(HotPathTest, SteadyStateSessionAllocatesNothing) {
  Diamond d;
  // Warm-up: first sessions size the trail, agenda FIFOs, per-task queued_
  // lists, and the fan-out scratch pool.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(d.a.set_user(Value(i)));
  }
  const std::uint64_t before = alloc_count();
  for (int i = 4; i < 64; ++i) {
    ASSERT_TRUE(d.a.set_user(Value(i)));
    ASSERT_EQ(d.s.value().as_int(), 2 * i);
  }
  EXPECT_EQ(alloc_count(), before)
      << "steady-state schedule/pop/record-visited must not allocate";
}

TEST(HotPathTest, SteadyStateCanBeSetToAllocatesNothing) {
  Diamond d;
  ASSERT_TRUE(d.a.set_user(Value(1)));
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(d.a.can_be_set_to(Value(100 + i)));
  }
  const std::uint64_t before = alloc_count();
  for (int i = 4; i < 32; ++i) {
    ASSERT_TRUE(d.a.can_be_set_to(Value(100 + i)));
    ASSERT_EQ(d.a.value().as_int(), 1) << "probe must restore";
  }
  EXPECT_EQ(alloc_count(), before);
}

TEST(HotPathTest, SteadyStateSchedulerPathAllocatesNothing) {
  PropagationContext ctx;
  AgendaScheduler sched;
  auto& c1 = ctx.make<EqualityConstraint>();
  auto& c2 = ctx.make<EqualityConstraint>();
  // Warm-up: intern, grow fifos and queued_ capacity.
  for (int i = 0; i < 4; ++i) {
    sched.schedule_cached(c1, kFunctionalConstraintsAgenda, nullptr);
    sched.schedule_cached(c2, kImplicitConstraintsAgenda, nullptr);
    while (sched.pop_highest_priority()) {
    }
    sched.clear();
  }
  const std::uint64_t before = alloc_count();
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(
        sched.schedule_cached(c1, kFunctionalConstraintsAgenda, nullptr));
    ASSERT_FALSE(
        sched.schedule_cached(c1, kFunctionalConstraintsAgenda, nullptr));
    ASSERT_TRUE(
        sched.schedule_cached(c2, kImplicitConstraintsAgenda, nullptr));
    ASSERT_TRUE(sched.pop_highest_priority().has_value());
    ASSERT_TRUE(sched.pop_highest_priority().has_value());
    ASSERT_FALSE(sched.pop_highest_priority().has_value());
    sched.clear();
  }
  EXPECT_EQ(alloc_count(), before);
}

// The pop order of a full session must match the pre-optimization engine:
// implicit agenda drains before functional, FIFO within each, duplicates
// suppressed.  stats().scheduled_runs pins exactly how many entries ran.
TEST(HotPathTest, SessionPopOrderEquivalence) {
  Diamond d;
  d.ctx.reset_stats();
  ASSERT_TRUE(d.a.set_user(Value(3)));
  EXPECT_EQ(d.s.value().as_int(), 6);
  EXPECT_EQ(d.ctx.stats().scheduled_runs, 1u)
      << "adder scheduled by both equalities, deduplicated to one run";
  EXPECT_EQ(d.ctx.stats().sessions, 1u);
  EXPECT_EQ(d.ctx.visited_variable_count(), 4u) << "a, b, c, s";
}

TEST(HotPathTest, MetricHandlesAreStableUntilClear) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  const auto gen = reg.generation();
  std::uint64_t* c = reg.counter_handle("requests");
  Histogram* h = reg.histogram_handle("latency");
  *c += 5;
  h->record(100);
  // Creating more slots must not move existing handles (std::map nodes).
  for (int i = 0; i < 100; ++i) {
    reg.counter_handle("other." + std::to_string(i));
  }
  EXPECT_EQ(reg.counter_handle("requests"), c);
  EXPECT_EQ(reg.histogram_handle("latency"), h);
  EXPECT_EQ(reg.counter("requests"), 5u);
  EXPECT_EQ(reg.generation(), gen);
  // clear() invalidates: the generation moves, so cached handles re-resolve.
  reg.clear();
  EXPECT_NE(reg.generation(), gen);
  EXPECT_EQ(reg.counter("requests"), 0u);
}

// Per-constraint-type timing histograms must survive the switch to cached
// handles: the same run_ns.* / check_ns.* keys appear, with sane counts.
TEST(HotPathTest, PerTypeTimingKeysUnchanged) {
  Diamond d;
  d.ctx.metrics().set_enabled(true);
  ASSERT_TRUE(d.a.set_user(Value(2)));
  ASSERT_TRUE(d.a.set_user(Value(5)));
  const auto* run = d.ctx.metrics().find_histogram("run_ns.uniAddition");
  ASSERT_NE(run, nullptr);
  EXPECT_EQ(run->count(), 2u) << "one scheduled adder run per session";
  const auto* chk = d.ctx.metrics().find_histogram("check_ns.equality");
  ASSERT_NE(chk, nullptr);
  EXPECT_GE(chk->count(), 2u);
  EXPECT_EQ(d.ctx.metrics().find_histogram("check_ns.propagatable"), nullptr)
      << "no stray keys from eager handle resolution";
}

// Metric recording stays correct across a mid-run clear(): the engine's
// cached handles must notice the generation change and re-resolve instead of
// writing through dangling pointers.
TEST(HotPathTest, TimingHandlesSurviveRegistryClear) {
  Diamond d;
  d.ctx.metrics().set_enabled(true);
  ASSERT_TRUE(d.a.set_user(Value(2)));
  d.ctx.metrics().clear();
  ASSERT_TRUE(d.a.set_user(Value(7)));
  const auto* run = d.ctx.metrics().find_histogram("run_ns.uniAddition");
  ASSERT_NE(run, nullptr);
  EXPECT_EQ(run->count(), 1u) << "only the post-clear session is recorded";
}

// The request-telemetry record path rides on every service request: id
// assignment, span stamps, ring write, per-phase + per-type histogram
// updates.  Steady state must add ZERO heap allocations per request (the
// lanes and rings are sized at construction).
TEST(HotPathTest, TelemetryRecordAllocatesNothing) {
  service::TelemetryRecorder rec(2);
  service::RequestSpan span;
  span.set_session("hotpath");
  span.type = 3;  // kAssign
  const auto stamp = [&span, &rec] {
    span.request_id = rec.next_request_id();
    span.t_enqueue = Tracer::now_ns();
    span.t_dequeue = span.t_enqueue + 10;
    span.t_lock = span.t_dequeue + 5;
    span.t_work_done = span.t_lock + 100;
    span.t_journal_done = span.t_work_done + 40;
    span.fsync_ns = 25;
    span.t_reply = span.t_journal_done + 3;
    span.ok = true;
  };
  for (int i = 0; i < 8; ++i) {  // warm-up (nothing to size, but symmetric)
    stamp();
    rec.record(i % 2, span);
  }
  const std::uint64_t before = alloc_count();
  for (int i = 0; i < 512; ++i) {
    stamp();
    rec.record(i % 2, span);
  }
  EXPECT_EQ(alloc_count(), before)
      << "per-request telemetry must not allocate in steady state";
  EXPECT_EQ(rec.requests_recorded(), 520u);
}

// The workload recorder rides the same dispatch path as telemetry
// (src/workload/recorder.h): render + frame + fwrite through member scratch
// buffers whose capacity sticks after the first few records.  Steady state
// must add ZERO heap allocations per recorded request.
TEST(HotPathTest, WorkloadRecorderRecordAllocatesNothing) {
  const std::string path = testing::TempDir() + "stemcp_hotpath_rec.trace";
  std::string err;
  auto rec = workload::TraceRecorder::open(path, &err);
  ASSERT_NE(rec, nullptr) << err;
  service::Request r;
  r.type = service::RequestType::kBatchAssign;
  r.session = "hotpath";
  r.assignments.push_back({"PIPE/s0.delay(in->out)", 1.25e-9});
  r.assignments.push_back({"PIPE/s1.delay(in->out)", 2.5e-9});
  for (int i = 0; i < 8; ++i) {  // warm-up: scratch + stdio buffer sizing
    rec->record(r);
  }
  const std::uint64_t before = alloc_count();
  for (int i = 0; i < 512; ++i) {
    rec->record(r);
  }
  EXPECT_EQ(alloc_count(), before)
      << "steady-state trace recording must not allocate";
  ASSERT_TRUE(rec->finish(&err)) << err;
  EXPECT_EQ(rec->stats().records, 520u);
  EXPECT_EQ(rec->stats().drops, 0u);
  std::remove(path.c_str());
}

// Violation log ring semantics: oldest entries drop in O(1), oldest-first
// view, dropped counter advances.
TEST(HotPathTest, ViolationLogRingDropsOldestFirst) {
  PropagationContext ctx;
  ctx.set_violation_log_limit(3);
  for (int i = 0; i < 5; ++i) {
    ctx.report_violation(
        {nullptr, nullptr, Value(i), "warn " + std::to_string(i)});
  }
  EXPECT_EQ(ctx.violation_log().size(), 3u);
  EXPECT_EQ(ctx.violation_log_dropped(), 2u);
  EXPECT_NE(ctx.violation_log().front().find("warn 2"), std::string::npos);
  EXPECT_NE(ctx.violation_log().back().find("warn 4"), std::string::npos);
  // Shrinking the limit trims immediately, still oldest-first.
  ctx.set_violation_log_limit(1);
  EXPECT_EQ(ctx.violation_log().size(), 1u);
  EXPECT_EQ(ctx.violation_log_dropped(), 4u);
  EXPECT_NE(ctx.violation_log().front().find("warn 4"), std::string::npos);
}

}  // namespace
}  // namespace stemcp::core
