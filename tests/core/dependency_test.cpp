// Dependency records, antecedent/consequence analysis (thesis §4.2.4,
// Figs 4.11/4.12).
#include <gtest/gtest.h>

#include "core/core.h"

namespace stemcp::core {
namespace {

class DependencyTest : public ::testing::Test {
 protected:
  PropagationContext ctx;
};

TEST_F(DependencyTest, EqualityRecordsSingleActivatingVariable) {
  Variable a(ctx, "t", "a"), b(ctx, "t", "b");
  auto& eq = EqualityConstraint::among(ctx, {&a, &b});
  EXPECT_TRUE(a.set_user(Value(1)));
  ASSERT_TRUE(b.is_dependent());
  EXPECT_EQ(b.last_set_by().constraint(), &eq);
  ASSERT_EQ(b.last_set_by().record().vars.size(), 1u);
  EXPECT_EQ(b.last_set_by().record().vars[0], &a);
}

TEST_F(DependencyTest, FunctionalRecordsAllArguments) {
  Variable x(ctx, "t", "x"), y(ctx, "t", "y"), s(ctx, "t", "s");
  UniAdditionConstraint::sum(ctx, s, {&x, &y});
  EXPECT_TRUE(x.set_user(Value(1)));
  EXPECT_TRUE(y.set_user(Value(2)));
  ASSERT_TRUE(s.is_dependent());
  EXPECT_TRUE(s.last_set_by().record().all_arguments);
}

TEST_F(DependencyTest, AntecedentsWalkBackwards) {
  // chain: a ==eq== b, s = b + c
  Variable a(ctx, "t", "a"), b(ctx, "t", "b"), c(ctx, "t", "c"),
      s(ctx, "t", "s");
  auto& eq = EqualityConstraint::among(ctx, {&a, &b});
  auto& add = ctx.make<UniAdditionConstraint>();
  add.set_result(s);
  add.basic_add_argument(b);
  add.basic_add_argument(c);
  EXPECT_TRUE(c.set_user(Value(10)));
  EXPECT_TRUE(a.set_user(Value(1)));
  EXPECT_EQ(s.value().as_int(), 11);

  const DependencyTrace t = s.antecedents();
  EXPECT_TRUE(t.contains(s));
  EXPECT_TRUE(t.contains(b));
  EXPECT_TRUE(t.contains(c));
  EXPECT_TRUE(t.contains(a)) << "a reached through the equality record";
  EXPECT_TRUE(t.contains(add));
  EXPECT_TRUE(t.contains(eq));
}

TEST_F(DependencyTest, AntecedentsOfIndependentValueIsJustItself) {
  Variable a(ctx, "t", "a");
  EXPECT_TRUE(a.set_user(Value(1)));
  const DependencyTrace t = a.antecedents();
  EXPECT_EQ(t.variables.size(), 1u);
  EXPECT_TRUE(t.constraints.empty());
}

TEST_F(DependencyTest, ConsequencesWalkForward) {
  Variable a(ctx, "t", "a"), b(ctx, "t", "b"), c(ctx, "t", "c"),
      s(ctx, "t", "s");
  EqualityConstraint::among(ctx, {&a, &b});
  auto& add = ctx.make<UniAdditionConstraint>();
  add.set_result(s);
  add.basic_add_argument(b);
  add.basic_add_argument(c);
  EXPECT_TRUE(c.set_user(Value(10)));
  EXPECT_TRUE(a.set_user(Value(1)));

  const DependencyTrace t = a.consequences();
  EXPECT_TRUE(t.contains(b));
  EXPECT_TRUE(t.contains(s));
  // c is an independent input, not a consequence of a.
  EXPECT_FALSE(t.contains(c));
}

TEST_F(DependencyTest, ConsequencesRespectDependencyDirection) {
  // a ==eq== b; set via b, so a depends on b, not the reverse.
  Variable a(ctx, "t", "a"), b(ctx, "t", "b");
  EqualityConstraint::among(ctx, {&a, &b});
  EXPECT_TRUE(b.set_user(Value(5)));
  const DependencyTrace from_a = a.consequences();
  EXPECT_FALSE(from_a.contains(b))
      << "b was the source; it is not a consequence of a";
  const DependencyTrace from_b = b.consequences();
  EXPECT_TRUE(from_b.contains(a));
}

TEST_F(DependencyTest, DestroyConstraintErasesDependentValues) {
  Variable a(ctx, "t", "a"), b(ctx, "t", "b"), s(ctx, "t", "s"),
      s2(ctx, "t", "s2");
  auto& eq = EqualityConstraint::among(ctx, {&a, &b});
  auto& add = ctx.make<UniAdditionConstraint>(100.0);
  add.set_result(s);
  add.basic_add_argument(b);
  auto& add2 = ctx.make<UniAdditionConstraint>(1.0);
  add2.set_result(s2);
  add2.basic_add_argument(s);
  EXPECT_TRUE(a.set_user(Value(1)));
  EXPECT_EQ(b.value().as_int(), 1);
  EXPECT_DOUBLE_EQ(s.value().as_number(), 101.0);
  EXPECT_DOUBLE_EQ(s2.value().as_number(), 102.0);

  // Removing the equality erases b (set by it) and transitively s, s2.
  ctx.destroy_constraint(eq);
  EXPECT_EQ(a.value().as_int(), 1) << "independent source survives";
  EXPECT_TRUE(b.value().is_nil());
  EXPECT_TRUE(s.value().is_nil());
  EXPECT_TRUE(s2.value().is_nil());
  EXPECT_EQ(b.constraints().size(), 1u) << "only the adder remains on b";
}

TEST_F(DependencyTest, RemoveArgumentResetsOnlyDownstreamOfThatPair) {
  Variable a(ctx, "t", "a"), b(ctx, "t", "b"), c(ctx, "t", "c");
  auto& eq = ctx.make<EqualityConstraint>();
  eq.basic_add_argument(a);
  eq.basic_add_argument(b);
  eq.basic_add_argument(c);
  eq.reinitialize_variables();
  EXPECT_TRUE(a.set_user(Value(3)));
  EXPECT_EQ(b.value().as_int(), 3);
  EXPECT_EQ(c.value().as_int(), 3);

  // Remove b: b's value depended on the constraint, so it is erased; the
  // remaining a == c re-propagates and keeps c at 3.
  eq.remove_argument(b);
  EXPECT_TRUE(b.value().is_nil());
  EXPECT_EQ(a.value().as_int(), 3);
  EXPECT_EQ(c.value().as_int(), 3);
  EXPECT_FALSE(eq.references(b));
}

TEST_F(DependencyTest, VariableDestructionDetachesFromConstraints) {
  Variable a(ctx, "t", "a");
  auto& eq = ctx.make<EqualityConstraint>();
  eq.basic_add_argument(a);
  {
    Variable tmp(ctx, "t", "tmp");
    eq.basic_add_argument(tmp);
    EXPECT_EQ(eq.arguments().size(), 2u);
  }
  EXPECT_EQ(eq.arguments().size(), 1u) << "destroyed variable detached";
  EXPECT_TRUE(a.set_user(Value(1)));  // no dangling access
}

}  // namespace
}  // namespace stemcp::core
