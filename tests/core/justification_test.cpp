// Justifications, overwrite precedence and rendering (thesis §4.2.4).
#include <gtest/gtest.h>

#include "core/core.h"

namespace stemcp::core {
namespace {

TEST(JustificationTest, SourcesRenderAsSymbols) {
  EXPECT_STREQ(to_string(Source::kUser), "#USER");
  EXPECT_STREQ(to_string(Source::kApplication), "#APPLICATION");
  EXPECT_STREQ(to_string(Source::kUpdate), "#UPDATE");
  EXPECT_STREQ(to_string(Source::kTentative), "#TENTATIVE");
  EXPECT_STREQ(to_string(Source::kDefault), "#DEFAULT");
  EXPECT_STREQ(to_string(Source::kNone), "#NONE");
}

TEST(JustificationTest, PropagatedCarriesConstraintAndRecord) {
  PropagationContext ctx;
  auto& eq = ctx.make<EqualityConstraint>();
  Variable v(ctx, "t", "v");
  const Justification j =
      Justification::propagated(eq, DependencyRecord::single(v));
  EXPECT_TRUE(j.is_propagated());
  EXPECT_EQ(j.constraint(), &eq);
  ASSERT_EQ(j.record().vars.size(), 1u);
  EXPECT_EQ(j.record().vars[0], &v);
  EXPECT_NE(j.to_string().find("equality"), std::string::npos);
}

TEST(JustificationTest, DependencyRecordFactories) {
  PropagationContext ctx;
  Variable v(ctx, "t", "v");
  EXPECT_TRUE(DependencyRecord::all().all_arguments);
  EXPECT_FALSE(DependencyRecord::none().all_arguments);
  EXPECT_TRUE(DependencyRecord::none().vars.empty());
  EXPECT_EQ(DependencyRecord::single(v).vars.size(), 1u);
}

// The overwrite precedence matrix: current justification (rows) vs incoming
// propagated assignment — may the value change?
class PrecedenceCase
    : public ::testing::TestWithParam<std::tuple<Source, bool>> {};

TEST_P(PrecedenceCase, DefaultRule) {
  const auto [current, expect_changeable] = GetParam();
  PropagationContext ctx;
  Variable v(ctx, "t", "v");
  ctx.set_enabled(false);
  v.set(Value(1), Justification(current));
  ctx.set_enabled(true);
  auto& eq = ctx.make<EqualityConstraint>();
  const Justification incoming =
      Justification::propagated(eq, DependencyRecord::all());
  EXPECT_EQ(v.can_change_value_to(Value(2), incoming), expect_changeable);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PrecedenceCase,
    ::testing::Values(std::make_tuple(Source::kUser, false),
                      std::make_tuple(Source::kApplication, true),
                      std::make_tuple(Source::kUpdate, true),
                      std::make_tuple(Source::kDefault, true),
                      std::make_tuple(Source::kTentative, true),
                      std::make_tuple(Source::kPropagated, true)));

TEST(JustificationTest, UserIncomingAlwaysWins) {
  PropagationContext ctx;
  Variable v(ctx, "t", "v");
  ctx.set_enabled(false);
  v.set(Value(1), Justification::user());
  ctx.set_enabled(true);
  EXPECT_TRUE(v.can_change_value_to(Value(2), Justification::user()));
}

TEST(JustificationTest, NilValuesAreNeverProtected) {
  PropagationContext ctx;
  Variable v(ctx, "t", "v");
  ctx.set_enabled(false);
  v.set(Value::nil(), Justification::user());  // erased user estimate
  ctx.set_enabled(true);
  auto& eq = ctx.make<EqualityConstraint>();
  EXPECT_TRUE(v.can_change_value_to(
      Value(2), Justification::propagated(eq, DependencyRecord::all())));
}

TEST(StatusTest, TruthinessMirrorsNilConvention) {
  EXPECT_TRUE(Status::ok());
  EXPECT_TRUE(Status::no_change());
  EXPECT_FALSE(Status::violation());
  EXPECT_TRUE(Status::ok().is_ok());
  EXPECT_TRUE(Status::violation().is_violation());
  EXPECT_FALSE(Status::no_change().is_violation());
}

TEST(StatusTest, ViolationInfoRendering) {
  PropagationContext ctx;
  Variable v(ctx, "cell", "delay");
  v.set_user(Value(5));
  auto& eq = ctx.make<EqualityConstraint>();
  const ViolationInfo info{&eq, &v, Value(9), "test message"};
  const std::string s = info.to_string();
  EXPECT_NE(s.find("equality"), std::string::npos);
  EXPECT_NE(s.find("cell.delay"), std::string::npos);
  EXPECT_NE(s.find("current 5"), std::string::npos);
  EXPECT_NE(s.find("offered 9"), std::string::npos);
  EXPECT_NE(s.find("test message"), std::string::npos);
}

}  // namespace
}  // namespace stemcp::core
