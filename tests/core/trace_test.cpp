// Propagation tracing & metrics: structured event stream, sinks, Chrome
// trace export, and the zero-cost-when-disabled guarantee.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/core.h"

namespace stemcp::core {
namespace {

std::vector<TraceEventType> types_of(const std::vector<TraceEvent>& events) {
  std::vector<TraceEventType> out;
  out.reserve(events.size());
  for (const auto& e : events) out.push_back(e.type);
  return out;
}

/// Index of the first event of `t`, or npos.
std::size_t first_index(const std::vector<TraceEvent>& events,
                        TraceEventType t) {
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].type == t) return i;
  }
  return static_cast<std::size_t>(-1);
}

/// Minimal structural JSON check: braces/brackets balance outside strings,
/// and the payload is non-trivial.  (Not a full parser, but catches broken
/// quoting, truncation, and unbalanced output.)
bool json_balanced(const std::string& s) {
  int brace = 0, bracket = 0;
  bool in_string = false, escaped = false;
  for (char c : s) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      else if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++brace; break;
      case '}': --brace; break;
      case '[': ++bracket; break;
      case ']': --bracket; break;
      default: break;
    }
    if (brace < 0 || bracket < 0) return false;
  }
  return brace == 0 && bracket == 0 && !in_string;
}

class TraceTest : public ::testing::Test {
 protected:
  PropagationContext ctx;
};

// ---------------------------------------------------------------------------
// Zero-event guarantee

TEST_F(TraceTest, DisabledTracerEmitsNothing) {
  Variable a(ctx, "t", "a"), b(ctx, "t", "b");
  EqualityConstraint::among(ctx, {&a, &b});
  BoundConstraint::upper(ctx, a, Value(10));
  EXPECT_TRUE(a.set_user(Value(5)));
  EXPECT_TRUE(a.set_user(Value(99)).is_violation());
  EXPECT_EQ(ctx.tracer().events_emitted(), 0u);
  EXPECT_EQ(ctx.tracer().ring(), nullptr)
      << "no sink is ever installed while disabled";
}

TEST_F(TraceTest, EmitIsNoOpWhileDisabled) {
  Tracer t;
  auto ring = std::make_shared<RingBufferSink>(16);
  t.add_sink(ring);
  t.emit(TraceEventType::kAssignment, "x");
  EXPECT_EQ(t.events_emitted(), 0u);
  EXPECT_EQ(ring->total_consumed(), 0u);
}

// ---------------------------------------------------------------------------
// Event ordering

TEST_F(TraceTest, SessionEventsBracketTheRun) {
  ctx.tracer().set_enabled(true);
  Variable a(ctx, "t", "a"), b(ctx, "t", "b");
  EqualityConstraint::among(ctx, {&a, &b});
  EXPECT_TRUE(a.set_user(Value(5)));

  const auto events = ctx.tracer().ring()->snapshot();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().type, TraceEventType::kSessionBegin);
  EXPECT_EQ(events.back().type, TraceEventType::kSessionEnd);
  EXPECT_EQ(events.back().label_view(), "ok");

  // The session contains the external assignment, the activation of the
  // equality, b's propagated assignment, and the final check.
  const auto ts = types_of(events);
  EXPECT_EQ(std::count(ts.begin(), ts.end(), TraceEventType::kAssignment), 2);
  EXPECT_GE(std::count(ts.begin(), ts.end(), TraceEventType::kActivation), 1);
  EXPECT_EQ(std::count(ts.begin(), ts.end(), TraceEventType::kCheck), 1);

  // Sequence numbers are strictly increasing; timestamps are monotonic.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
    EXPECT_GE(events[i].timestamp_ns, events[i - 1].timestamp_ns);
  }
}

TEST_F(TraceTest, ViolationSessionOrdersViolationBeforeRestore) {
  ctx.tracer().set_enabled(true);
  Variable a(ctx, "t", "a");
  // Constructing the bound runs its own (clean) re-propagation session;
  // examine only the violating session that follows.
  BoundConstraint::upper(ctx, a, Value(10));
  EXPECT_TRUE(a.set_user(Value(99)).is_violation());

  auto events = ctx.tracer().ring()->snapshot();
  std::size_t last_begin = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].type == TraceEventType::kSessionBegin) last_begin = i;
  }
  events.erase(events.begin(),
               events.begin() + static_cast<std::ptrdiff_t>(last_begin));
  const auto i_begin = first_index(events, TraceEventType::kSessionBegin);
  const auto i_assign = first_index(events, TraceEventType::kAssignment);
  const auto i_viol = first_index(events, TraceEventType::kViolation);
  const auto i_restore = first_index(events, TraceEventType::kRestore);
  const auto i_end = first_index(events, TraceEventType::kSessionEnd);

  ASSERT_NE(i_begin, static_cast<std::size_t>(-1));
  ASSERT_NE(i_assign, static_cast<std::size_t>(-1));
  ASSERT_NE(i_viol, static_cast<std::size_t>(-1));
  ASSERT_NE(i_restore, static_cast<std::size_t>(-1));
  ASSERT_NE(i_end, static_cast<std::size_t>(-1));

  EXPECT_LT(i_begin, i_assign);
  EXPECT_LT(i_assign, i_viol);
  EXPECT_LT(i_viol, i_restore);
  EXPECT_LT(i_restore, i_end);
  EXPECT_EQ(events[i_end].label_view(), "violation");
  EXPECT_EQ(events[i_restore].label_view(), "t.a");
}

TEST_F(TraceTest, AgendaEventsCarryPriorityAndDuration) {
  ctx.tracer().set_enabled(true);
  Variable x(ctx, "t", "x"), y(ctx, "t", "y"), s(ctx, "t", "s");
  UniAdditionConstraint::sum(ctx, s, {&x, &y});
  EXPECT_TRUE(x.set_user(Value(1)));

  const auto events = ctx.tracer().ring()->snapshot();
  const auto i_sched = first_index(events, TraceEventType::kAgendaSchedule);
  const auto i_pop = first_index(events, TraceEventType::kAgendaPop);
  ASSERT_NE(i_sched, static_cast<std::size_t>(-1));
  ASSERT_NE(i_pop, static_cast<std::size_t>(-1));
  EXPECT_LT(i_sched, i_pop);
  // The functional agenda is the second queue in the default order.
  EXPECT_EQ(events[i_sched].priority, 1u);
  EXPECT_EQ(events[i_pop].priority, 1u);
  EXPECT_TRUE(std::string(events[i_pop].label_view()).find("uniAddition") !=
              std::string::npos);
}

TEST_F(TraceTest, NetworkEditsAreTraced) {
  ctx.tracer().set_enabled(true);
  Variable a(ctx, "t", "a"), b(ctx, "t", "b");
  auto& eq = ctx.make<EqualityConstraint>();
  eq.basic_add_argument(a);
  EXPECT_TRUE(eq.add_argument(b));
  ctx.destroy_constraint(eq);

  const auto events = ctx.tracer().ring()->snapshot();
  const auto ts = types_of(events);
  EXPECT_EQ(std::count(ts.begin(), ts.end(), TraceEventType::kNetworkEdit),
            2);
}

// ---------------------------------------------------------------------------
// Ring buffer

TEST(RingBufferSinkTest, WraparoundKeepsNewestAndCountsOverwritten) {
  RingBufferSink ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    TraceEvent e;
    e.seq = i;
    ring.consume(e);
  }
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.total_consumed(), 10u);
  EXPECT_EQ(ring.overwritten(), 6u);
  EXPECT_EQ(ring.size(), 4u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].seq, 6u + i) << "oldest-first, newest retained";
  }
}

TEST(RingBufferSinkTest, ClearResets) {
  RingBufferSink ring(4);
  TraceEvent e;
  ring.consume(e);
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
}

TEST_F(TraceTest, EngineWraparoundUnderSmallRing) {
  auto ring = std::make_shared<RingBufferSink>(8);
  ctx.tracer().add_sink(ring);
  ctx.tracer().set_enabled(true);
  Variable a(ctx, "t", "a"), b(ctx, "t", "b");
  EqualityConstraint::among(ctx, {&a, &b});
  for (int i = 1; i <= 20; ++i) EXPECT_TRUE(a.set_user(Value(i)));
  EXPECT_GT(ring->overwritten(), 0u);
  const auto events = ring->snapshot();
  EXPECT_EQ(events.size(), 8u);
  // The retained suffix still has strictly increasing sequence numbers.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
  }
}

// ---------------------------------------------------------------------------
// Sinks and export formats

TEST_F(TraceTest, JsonlSinkWritesOneObjectPerLine) {
  const std::string path = ::testing::TempDir() + "/stemcp_trace_test.jsonl";
  {
    auto sink = std::make_shared<JsonlFileSink>(path);
    ASSERT_TRUE(sink->ok());
    ctx.tracer().add_sink(sink);
    ctx.tracer().set_enabled(true);
    Variable a(ctx, "t", "a");
    EXPECT_TRUE(a.set_user(Value(1)));
    ctx.tracer().flush();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_TRUE(json_balanced(line)) << line;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(lines, ctx.tracer().events_emitted());
  std::remove(path.c_str());
}

TEST_F(TraceTest, ChromeTraceExportIsWellFormed) {
  ctx.tracer().set_enabled(true);
  Variable x(ctx, "t", "x"), y(ctx, "t", "y"), s(ctx, "t", "s");
  UniAdditionConstraint::sum(ctx, s, {&x, &y});
  BoundConstraint::upper(ctx, s, Value(10));
  EXPECT_TRUE(x.set_user(Value(1)));
  EXPECT_TRUE(y.set_user(Value(2)));
  EXPECT_TRUE(y.set_user(Value(20)).is_violation());

  std::ostringstream out;
  write_chrome_trace(ctx.tracer().ring()->snapshot(), out);
  const std::string json = out.str();

  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  // Session spans, per-constraint check spans, and agenda-run spans.
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"check\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"agendaPop\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"violation\""), std::string::npos);
  EXPECT_NE(json.find("uniAddition"), std::string::npos);
}

TEST_F(TraceTest, ExportChromeTraceToFile) {
  ctx.tracer().set_enabled(true);
  Variable a(ctx, "t", "a");
  EXPECT_TRUE(a.set_user(Value(1)));
  const std::string path = ::testing::TempDir() + "/stemcp_trace_test.json";
  ASSERT_TRUE(export_chrome_trace(ctx.tracer(), path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_TRUE(json_balanced(buf.str()));
  std::remove(path.c_str());
}

TEST(TracerTest, ExportWithoutRingFails) {
  Tracer t;
  EXPECT_FALSE(export_chrome_trace(t, "/dev/null"));
}

TEST(TraceEventTest, LongLabelsAreTruncatedInPlace) {
  TraceEvent e;
  const std::string longlabel(200, 'x');
  e.set_label(longlabel);
  EXPECT_EQ(e.label_view().size(), TraceEvent::kLabelCapacity - 1);
  EXPECT_TRUE(std::string(e.label_view()).find_first_not_of('x') ==
              std::string::npos);
}

// ---------------------------------------------------------------------------
// Metrics

TEST(HistogramTest, RecordsBasicAggregates) {
  Histogram h;
  h.record(1);
  h.record(100);
  h.record(1000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 1101u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_GE(h.percentile(99.0), 512u);
  EXPECT_LE(h.percentile(99.0), 1000u);
}

TEST(MetricsRegistryTest, CountersAndJsonSnapshot) {
  MetricsRegistry m;
  m.add_counter("a", 2);
  m.add_counter("a", 3);
  m.histogram("lat").record(7);
  EXPECT_EQ(m.counter("a"), 5u);
  const std::string json = m.to_json();
  EXPECT_TRUE(json_balanced(json));
  EXPECT_NE(json.find("\"a\":5"), std::string::npos);
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST(MetricsRegistryTest, MergeAddsEverything) {
  MetricsRegistry a, b;
  a.add_counter("n", 1);
  b.add_counter("n", 2);
  a.histogram("h").record(4);
  b.histogram("h").record(16);
  a.merge(b);
  EXPECT_EQ(a.counter("n"), 3u);
  EXPECT_EQ(a.histogram("h").count(), 2u);
  EXPECT_EQ(a.histogram("h").max(), 16u);
}

TEST_F(TraceTest, EnabledMetricsCollectPerTypeHistograms) {
  ctx.metrics().set_enabled(true);
  Variable x(ctx, "t", "x"), y(ctx, "t", "y"), s(ctx, "t", "s");
  UniAdditionConstraint::sum(ctx, s, {&x, &y});
  EXPECT_TRUE(x.set_user(Value(1)));
  EXPECT_TRUE(y.set_user(Value(2)));

  const Histogram* runs = ctx.metrics().find_histogram("run_ns.uniAddition");
  ASSERT_NE(runs, nullptr);
  EXPECT_EQ(runs->count(), 2u) << "one scheduled run per session";
  const Histogram* checks =
      ctx.metrics().find_histogram("check_ns.uniAddition");
  ASSERT_NE(checks, nullptr);
  EXPECT_GE(checks->count(), 2u);
  const Histogram* depth =
      ctx.metrics().find_histogram("agenda_depth.p1");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->count(), 2u);
}

TEST_F(TraceTest, MetricsOffCollectsNothing) {
  Variable x(ctx, "t", "x"), y(ctx, "t", "y"), s(ctx, "t", "s");
  UniAdditionConstraint::sum(ctx, s, {&x, &y});
  EXPECT_TRUE(x.set_user(Value(1)));
  EXPECT_TRUE(ctx.metrics().histograms().empty());
  EXPECT_TRUE(ctx.metrics().counters().empty());
}

}  // namespace
}  // namespace stemcp::core
