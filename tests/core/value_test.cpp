// Value semantics: the typed payload of constraint variables.
#include <gtest/gtest.h>

#include "core/core.h"

namespace stemcp::core {
namespace {

TEST(ValueTest, DefaultIsNil) {
  Value v;
  EXPECT_TRUE(v.is_nil());
  EXPECT_EQ(v, Value::nil());
  EXPECT_EQ(v.to_string(), "nil");
}

TEST(ValueTest, KindPredicates) {
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(5).is_int());
  EXPECT_TRUE(Value(5.0).is_real());
  EXPECT_TRUE(Value("hi").is_string());
  EXPECT_TRUE(Value(Rect{0, 0, 1, 1}).is_rect());
  EXPECT_TRUE(Value(5).is_number());
  EXPECT_TRUE(Value(5.0).is_number());
  EXPECT_FALSE(Value("hi").is_number());
  EXPECT_FALSE(Value(true).is_number());
}

TEST(ValueTest, MixedNumericEquality) {
  EXPECT_EQ(Value(5), Value(5.0));
  EXPECT_EQ(Value(5.0), Value(5));
  EXPECT_NE(Value(5), Value(5.5));
  EXPECT_NE(Value(5), Value("5"));
}

TEST(ValueTest, NumericWidening) {
  EXPECT_DOUBLE_EQ(Value(7).as_number(), 7.0);
  EXPECT_DOUBLE_EQ(Value(2.5).as_number(), 2.5);
}

TEST(ValueTest, StringAndRectEquality) {
  EXPECT_EQ(Value("abc"), Value(std::string("abc")));
  EXPECT_NE(Value("abc"), Value("abd"));
  EXPECT_EQ(Value(Rect{1, 2, 3, 4}), Value(Rect{1, 2, 3, 4}));
  EXPECT_NE(Value(Rect{1, 2, 3, 4}), Value(Rect{0, 2, 3, 4}));
}

TEST(ValueTest, NilComparesOnlyToNil) {
  EXPECT_EQ(Value::nil(), Value::nil());
  EXPECT_NE(Value::nil(), Value(0));
  EXPECT_NE(Value::nil(), Value(false));
  EXPECT_NE(Value::nil(), Value(""));
}

class IntBox : public Boxed {
 public:
  explicit IntBox(int v) : v_(v) {}
  bool equals(const Boxed& other) const override {
    const auto* o = dynamic_cast<const IntBox*>(&other);
    return o != nullptr && o->v_ == v_;
  }
  std::string to_string() const override { return "box:" + std::to_string(v_); }
  int v_;
};

TEST(ValueTest, BoxedSemanticsAndTypedAccess) {
  Value a(std::make_shared<const IntBox>(3));
  Value b(std::make_shared<const IntBox>(3));
  Value c(std::make_shared<const IntBox>(4));
  EXPECT_EQ(a, b) << "semantic equality across distinct allocations";
  EXPECT_NE(a, c);
  const IntBox* box = a.as<IntBox>();
  ASSERT_NE(box, nullptr);
  EXPECT_EQ(box->v_, 3);
  EXPECT_EQ(a.as_boxed()->to_string(), "box:3");
  EXPECT_EQ(Value(5).as<IntBox>(), nullptr);
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value(5).to_string(), "5");
  EXPECT_EQ(Value(true).to_string(), "true");
  EXPECT_EQ(Value("x").to_string(), "'x'");
  EXPECT_EQ(Value(Rect{0, 0, 2, 3}).to_string(), "[0,0 2,3]");
}

}  // namespace
}  // namespace stemcp::core
