// One-value-change rule and cyclic constraint networks (thesis §4.2.2,
// Fig 4.9).
#include <gtest/gtest.h>

#include "core/core.h"

namespace stemcp::core {
namespace {

class CycleTest : public ::testing::Test {
 protected:
  PropagationContext ctx;
};

// Thesis Fig 4.9: V2 = V1 + 1, V3 = V2 + 3, V1 = V3 + 2 — an unsatisfiable
// cycle.  Setting V1 = 10 propagates 11 to V2, 14 to V3, and the attempt to
// assign 16 to V1 (already changed this round) triggers a violation; all
// variables restore to their original state.
TEST_F(CycleTest, Fig4_9UnsatisfiableCycleDetectedAndRestored) {
  Variable v1(ctx, "fig49", "V1"), v2(ctx, "fig49", "V2"),
      v3(ctx, "fig49", "V3");
  auto& c1 = ctx.make<UniAdditionConstraint>(1.0);
  c1.set_result(v2);
  c1.basic_add_argument(v1);
  auto& c2 = ctx.make<UniAdditionConstraint>(3.0);
  c2.set_result(v3);
  c2.basic_add_argument(v2);
  auto& c3 = ctx.make<UniAdditionConstraint>(2.0);
  c3.set_result(v1);
  c3.basic_add_argument(v3);

  const Status s = v1.set_user(Value(10));
  EXPECT_TRUE(s.is_violation());
  EXPECT_TRUE(v1.value().is_nil()) << "V1 restored to its original nil state";
  EXPECT_TRUE(v2.value().is_nil());
  EXPECT_TRUE(v3.value().is_nil());
  ASSERT_TRUE(ctx.last_violation().has_value());
  EXPECT_EQ(ctx.last_violation()->variable, &v1);
  EXPECT_NE(ctx.last_violation()->message.find("value-change rule"),
            std::string::npos);
}

// A *satisfiable* cycle: V2 = V1 + 1, V1 = V2 - 1.  Propagation around the
// loop reproduces V1's current value, which terminates as NoChange.
TEST_F(CycleTest, SatisfiableCycleTerminatesQuietly) {
  Variable v1(ctx, "t", "V1"), v2(ctx, "t", "V2");
  auto& up = ctx.make<UniAdditionConstraint>(1.0);
  up.set_result(v2);
  up.basic_add_argument(v1);
  auto& down = ctx.make<UniAdditionConstraint>(-1.0);
  down.set_result(v1);
  down.basic_add_argument(v2);

  EXPECT_TRUE(v1.set_user(Value(10.0)));
  EXPECT_DOUBLE_EQ(v2.value().as_number(), 11.0);
  EXPECT_DOUBLE_EQ(v1.value().as_number(), 10.0);
}

// Equality ring: a == b == c == a.  Propagation travels the ring once and
// stops where values agree.
TEST_F(CycleTest, EqualityRingStable) {
  Variable a(ctx, "t", "a"), b(ctx, "t", "b"), c(ctx, "t", "c");
  EqualityConstraint::among(ctx, {&a, &b});
  EqualityConstraint::among(ctx, {&b, &c});
  EqualityConstraint::among(ctx, {&c, &a});
  EXPECT_TRUE(a.set_user(Value(42)));
  EXPECT_EQ(b.value().as_int(), 42);
  EXPECT_EQ(c.value().as_int(), 42);
}

// Restore must reinstate justifications as well as values.
TEST_F(CycleTest, RestoreReinstatesJustifications) {
  Variable v1(ctx, "t", "V1"), v2(ctx, "t", "V2"), v3(ctx, "t", "V3");
  auto& c1 = ctx.make<UniAdditionConstraint>(1.0);
  c1.set_result(v2);
  c1.basic_add_argument(v1);
  auto& c3 = ctx.make<UniAdditionConstraint>(2.0);
  c3.set_result(v1);
  c3.basic_add_argument(v3);
  auto& c2 = ctx.make<UniAdditionConstraint>(3.0);
  c2.set_result(v3);
  c2.basic_add_argument(v2);

  // Pre-existing consistent state entered with propagation disabled.
  ctx.set_enabled(false);
  v1.set(Value(100.0), Justification::application());
  ctx.set_enabled(true);

  EXPECT_TRUE(v1.set_user(Value(10.0)).is_violation());
  EXPECT_DOUBLE_EQ(v1.value().as_number(), 100.0);
  EXPECT_EQ(v1.last_set_by().source(), Source::kApplication);
}

// Growing cycles: ring of N +0 adders is satisfiable (value carried around);
// ring with a net positive offset is not.
class RingTest : public ::testing::TestWithParam<int> {};

TEST_P(RingTest, ZeroSumRingsPropagateAndPositiveRingsViolate) {
  const int n = GetParam();
  PropagationContext ctx;
  std::vector<std::unique_ptr<Variable>> vars;
  vars.reserve(n);
  for (int i = 0; i < n; ++i) {
    vars.push_back(
        std::make_unique<Variable>(ctx, "ring", "v" + std::to_string(i)));
  }
  // Zero-offset ring.
  for (int i = 0; i < n; ++i) {
    auto& c = ctx.make<UniAdditionConstraint>(0.0);
    c.set_result(*vars[(i + 1) % n]);
    c.basic_add_argument(*vars[i]);
  }
  EXPECT_TRUE(vars[0]->set_user(Value(5.0)));
  for (int i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(vars[i]->value().as_number(), 5.0) << "index " << i;
  }

  // Positive-offset ring in a fresh context.
  PropagationContext ctx2;
  std::vector<std::unique_ptr<Variable>> vs;
  for (int i = 0; i < n; ++i) {
    vs.push_back(
        std::make_unique<Variable>(ctx2, "ring", "w" + std::to_string(i)));
  }
  for (int i = 0; i < n; ++i) {
    auto& c = ctx2.make<UniAdditionConstraint>(1.0);
    c.set_result(*vs[(i + 1) % n]);
    c.basic_add_argument(*vs[i]);
  }
  EXPECT_TRUE(vs[0]->set_user(Value(0.0)).is_violation());
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(vs[i]->value().is_nil()) << "index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Rings, RingTest, ::testing::Values(2, 3, 5, 16, 64));

}  // namespace
}  // namespace stemcp::core
