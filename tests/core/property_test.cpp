// Property-based suites: engine invariants over randomized networks.
//
// Invariants checked (each over many seeds):
//  - propagation of a functional DAG reaches the fixpoint a direct
//    evaluation computes;
//  - restore-on-violation returns the network to a bit-identical snapshot;
//  - after any successful session every visited constraint is satisfied;
//  - compiled evaluation agrees with interpreted propagation;
//  - equality components share one value and traces are symmetric.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <vector>

#include "core/core.h"

namespace stemcp::core {
namespace {

/// A random layered DAG of UniAddition/UniLinear constraints: layer 0 holds
/// independent inputs; each later variable is a function of earlier ones.
struct RandomDag {
  PropagationContext ctx;
  std::vector<std::unique_ptr<Variable>> vars;
  std::vector<FunctionalConstraint*> constraints;
  std::vector<std::size_t> inputs;  // indices of layer-0 variables
  std::mt19937 rng;

  RandomDag(unsigned seed, int n_inputs, int n_derived) : rng(seed) {
    // Random DAGs have reconvergent fanout, which FIFO scheduling visits in
    // non-dependency order — the documented §9.2.3 limitation of the
    // one-value-change rule.  Raise the budget (the thesis's quick fix) so
    // propagation converges to the fixpoint.
    ctx.set_max_changes_per_variable(4096);
    for (int i = 0; i < n_inputs; ++i) {
      vars.push_back(
          std::make_unique<Variable>(ctx, "dag", "in" + std::to_string(i)));
      inputs.push_back(vars.size() - 1);
    }
    std::uniform_int_distribution<int> kind(0, 2);
    for (int i = 0; i < n_derived; ++i) {
      vars.push_back(
          std::make_unique<Variable>(ctx, "dag", "d" + std::to_string(i)));
      Variable& result = *vars.back();
      std::uniform_int_distribution<std::size_t> pick(0, vars.size() - 2);
      switch (kind(rng)) {
        case 0: {  // result = x + y + k
          auto& c = ctx.make<UniAdditionConstraint>(
              static_cast<double>(pick(rng) % 7));
          c.set_result(result);
          c.basic_add_argument(*vars[pick(rng)]);
          c.basic_add_argument(*vars[pick(rng)]);
          constraints.push_back(&c);
          break;
        }
        case 1: {  // result = 2x + k
          auto& c = ctx.make<UniLinearConstraint>(
              2.0, static_cast<double>(pick(rng) % 5));
          c.set_result(result);
          c.basic_add_argument(*vars[pick(rng)]);
          constraints.push_back(&c);
          break;
        }
        default: {  // result = max(x, y)
          auto& c = ctx.make<UniMaximumConstraint>();
          c.set_result(result);
          c.basic_add_argument(*vars[pick(rng)]);
          c.basic_add_argument(*vars[pick(rng)]);
          constraints.push_back(&c);
          break;
        }
      }
    }
  }

  void assign_inputs() {
    std::uniform_real_distribution<double> val(-50.0, 50.0);
    for (std::size_t i : inputs) {
      ASSERT_TRUE(vars[i]->set_user(Value(val(rng))));
    }
  }

};

class DagSeeds : public ::testing::TestWithParam<unsigned> {};

TEST_P(DagSeeds, PropagationReachesFunctionFixpoint) {
  RandomDag dag(GetParam(), 4, 24);
  dag.assign_inputs();
  // Every functional constraint must agree with its arguments after the
  // dust settles.
  for (FunctionalConstraint* c : dag.constraints) {
    EXPECT_TRUE(c->is_satisfied()) << c->describe();
    const Value v = c->evaluate_function();
    if (!v.is_nil()) {
      EXPECT_EQ(c->result_variable()->value(), v) << c->describe();
    }
  }
}

TEST_P(DagSeeds, CompiledEvaluationMatchesInterpreted) {
  RandomDag dag(GetParam(), 4, 24);
  dag.assign_inputs();
  std::vector<Value> interpreted;
  interpreted.reserve(dag.vars.size());
  for (const auto& v : dag.vars) interpreted.push_back(v->value());

  auto compiled = CompiledNetwork::compile(dag.ctx, dag.constraints);
  ASSERT_TRUE(compiled.has_value()) << "layered construction is acyclic";
  ASSERT_TRUE(compiled->evaluate());
  for (std::size_t i = 0; i < dag.vars.size(); ++i) {
    EXPECT_EQ(dag.vars[i]->value(), interpreted[i]) << dag.vars[i]->path();
  }
}

TEST_P(DagSeeds, ViolationRestoresExactSnapshot) {
  RandomDag dag(GetParam(), 4, 24);
  dag.assign_inputs();
  // Pin every derived sink with an impossible bound, then nudge an input:
  // the session must fail and restore everything bit-for-bit.
  std::vector<Value> snapshot;
  std::vector<Source> sources;
  for (const auto& v : dag.vars) {
    snapshot.push_back(v->value());
    sources.push_back(v->last_set_by().source());
  }
  auto& doom = dag.ctx.make<BoundConstraint>(Relation::kLess, Value(-1e9));
  doom.basic_add_argument(*dag.vars.back());

  const Status s = dag.vars[dag.inputs[0]]->set_user(Value(1234.5));
  // Either the nudge never reached the doomed sink (fine) or it violated.
  if (s.is_violation()) {
    for (std::size_t i = 0; i < dag.vars.size(); ++i) {
      EXPECT_EQ(dag.vars[i]->value(), snapshot[i]) << dag.vars[i]->path();
      EXPECT_EQ(dag.vars[i]->last_set_by().source(), sources[i]);
    }
  }
}

TEST_P(DagSeeds, ProbeNeverLeaksState) {
  RandomDag dag(GetParam(), 4, 24);
  dag.assign_inputs();
  std::vector<Value> snapshot;
  for (const auto& v : dag.vars) snapshot.push_back(v->value());
  for (std::size_t i : dag.inputs) {
    (void)dag.vars[i]->can_be_set_to(Value(-777.0));
  }
  for (std::size_t i = 0; i < dag.vars.size(); ++i) {
    EXPECT_EQ(dag.vars[i]->value(), snapshot[i]) << dag.vars[i]->path();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DagSeeds,
                         ::testing::Range(1u, 21u));  // 20 seeds

/// Random equality partitions: variables joined into components by random
/// equality constraints; one user assignment per component.
class PartitionSeeds : public ::testing::TestWithParam<unsigned> {};

TEST_P(PartitionSeeds, ComponentsShareValuesAndTracesAreSymmetric) {
  std::mt19937 rng(GetParam());
  PropagationContext ctx;
  constexpr int kVars = 40;
  std::vector<std::unique_ptr<Variable>> vars;
  for (int i = 0; i < kVars; ++i) {
    vars.push_back(
        std::make_unique<Variable>(ctx, "p", "v" + std::to_string(i)));
  }
  // Union-find ground truth.
  std::vector<int> parent(kVars);
  for (int i = 0; i < kVars; ++i) parent[i] = i;
  const auto find = [&](int x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  std::uniform_int_distribution<int> pick(0, kVars - 1);
  for (int e = 0; e < kVars; ++e) {
    const int a = pick(rng);
    const int b = pick(rng);
    EqualityConstraint::among(
        ctx, {vars[static_cast<std::size_t>(a)].get(),
              vars[static_cast<std::size_t>(b)].get()});
    parent[find(a)] = find(b);
  }
  // One user value per component root.
  std::map<int, std::int64_t> component_value;
  for (int i = 0; i < kVars; ++i) {
    const int root = find(i);
    if (component_value.count(root) != 0) continue;
    component_value[root] = root * 10;
    ASSERT_TRUE(vars[static_cast<std::size_t>(i)]->set_user(
        Value(static_cast<std::int64_t>(root * 10))));
  }
  // Every variable carries its component's value.
  for (int i = 0; i < kVars; ++i) {
    EXPECT_EQ(vars[static_cast<std::size_t>(i)]->value().as_int(),
              component_value[find(i)])
        << "v" << i;
  }
  // Antecedent/consequence symmetry within a component.
  for (int i = 0; i < kVars; ++i) {
    const auto& vi = *vars[static_cast<std::size_t>(i)];
    if (!vi.is_dependent()) continue;
    const DependencyTrace ants = vi.antecedents();
    for (const Variable* src : ants.variables) {
      if (src == &vi || !src->last_set_by().is_user()) continue;
      const DependencyTrace cons = src->consequences();
      EXPECT_TRUE(cons.contains(vi))
          << src->path() << " -> " << vi.path();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionSeeds, ::testing::Range(100u, 115u));

/// Random edit churn: alternating adds/removes of constraints must keep the
/// reachable network satisfied (or report a violation and restore).
class ChurnSeeds : public ::testing::TestWithParam<unsigned> {};

TEST_P(ChurnSeeds, EditChurnPreservesConsistency) {
  std::mt19937 rng(GetParam());
  PropagationContext ctx;
  constexpr int kVars = 12;
  std::vector<std::unique_ptr<Variable>> vars;
  for (int i = 0; i < kVars; ++i) {
    vars.push_back(
        std::make_unique<Variable>(ctx, "churn", "v" + std::to_string(i)));
  }
  std::vector<Constraint*> live;
  std::uniform_int_distribution<int> pick(0, kVars - 1);
  std::uniform_int_distribution<int> op(0, 3);
  for (int step = 0; step < 200; ++step) {
    switch (op(rng)) {
      case 0: {  // add an equality
        auto& eq = ctx.make<EqualityConstraint>();
        eq.basic_add_argument(*vars[static_cast<std::size_t>(pick(rng))]);
        eq.basic_add_argument(*vars[static_cast<std::size_t>(pick(rng))]);
        eq.reinitialize_variables();
        live.push_back(&eq);
        break;
      }
      case 1: {  // remove a constraint
        if (live.empty()) break;
        std::uniform_int_distribution<std::size_t> which(0, live.size() - 1);
        const std::size_t idx = which(rng);
        ctx.destroy_constraint(*live[idx]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
        break;
      }
      case 2: {  // user assignment (may legitimately violate)
        (void)vars[static_cast<std::size_t>(pick(rng))]->set(
            Value(static_cast<std::int64_t>(pick(rng))),
            Justification::application());
        break;
      }
      default: {  // erase a value via constraint-free reset + re-propagate
        Variable& v = *vars[static_cast<std::size_t>(pick(rng))];
        if (!v.is_dependent()) v.reset_raw();
        break;
      }
    }
    // Global invariant: no live *equality* constraint may be left silently
    // violated with all-application values (violating sessions restore).
    for (Constraint* c : live) {
      bool all_soft = true;
      for (const Variable* arg : c->arguments()) {
        if (arg->last_set_by().is_user()) all_soft = false;
      }
      if (all_soft) {
        // Note: disagreeing application values CAN coexist only if the
        // session that introduced them was rejected-and-restored, so a
        // surviving state must satisfy the constraint.
        EXPECT_TRUE(c->is_satisfied()) << "step " << step << ": "
                                       << c->describe();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnSeeds, ::testing::Range(7u, 17u));

}  // namespace
}  // namespace stemcp::core
