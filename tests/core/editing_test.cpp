// Network editing: addition and deletion of constraints with
// re-propagation (thesis §4.2.5, Figs 4.13/4.14).
#include <gtest/gtest.h>

#include "core/core.h"

namespace stemcp::core {
namespace {

class EditingTest : public ::testing::Test {
 protected:
  PropagationContext ctx;
};

TEST_F(EditingTest, AddingConstraintPropagatesExistingValues) {
  Variable a(ctx, "t", "a"), b(ctx, "t", "b");
  EXPECT_TRUE(a.set_user(Value(5)));
  auto& eq = ctx.make<EqualityConstraint>();
  eq.basic_add_argument(a);
  EXPECT_TRUE(eq.add_argument(b));
  EXPECT_EQ(b.value().as_int(), 5) << "a's value pushed through on add";
}

TEST_F(EditingTest, UserSpecifiedValuesTakePrecedenceOnAdd) {
  // Two user values that disagree: the add reports a violation and leaves
  // the values untouched (the designer must resolve it).
  Variable a(ctx, "t", "a"), b(ctx, "t", "b");
  EXPECT_TRUE(a.set_user(Value(5)));
  EXPECT_TRUE(b.set_user(Value(7)));
  auto& eq = ctx.make<EqualityConstraint>();
  eq.basic_add_argument(a);
  const Status s = eq.add_argument(b);
  EXPECT_TRUE(s.is_violation());
  EXPECT_EQ(a.value().as_int(), 5);
  EXPECT_EQ(b.value().as_int(), 7);
}

TEST_F(EditingTest, UserValueWinsOverPropagatedOnAdd) {
  // a holds a propagated value, b a user value: re-propagation pushes the
  // user value first, overwriting the propagated chain consistently.
  Variable a(ctx, "t", "a"), b(ctx, "t", "b"), src(ctx, "t", "src");
  EqualityConstraint::among(ctx, {&src, &a});
  EXPECT_TRUE(src.set(Value(1), Justification::application()));
  EXPECT_EQ(a.value().as_int(), 1);
  EXPECT_TRUE(b.set_user(Value(9)));

  auto& eq = ctx.make<EqualityConstraint>();
  eq.basic_add_argument(a);
  eq.basic_add_argument(b);
  EXPECT_TRUE(eq.reinitialize_variables());
  EXPECT_EQ(a.value().as_int(), 9) << "user-specified b re-propagated first";
  EXPECT_EQ(src.value().as_int(), 9) << "and rippled through to src";
}

TEST_F(EditingTest, AddWhileDisabledSkipsRePropagation) {
  Variable a(ctx, "t", "a"), b(ctx, "t", "b");
  EXPECT_TRUE(a.set_user(Value(5)));
  ctx.set_enabled(false);
  auto& eq = ctx.make<EqualityConstraint>();
  eq.basic_add_argument(a);
  EXPECT_TRUE(eq.add_argument(b));
  EXPECT_TRUE(b.value().is_nil()) << "no local propagation while disabled";
  ctx.set_enabled(true);
}

TEST_F(EditingTest, RemoveArgumentRePropagatesRemainder) {
  Variable a(ctx, "t", "a"), b(ctx, "t", "b"), c(ctx, "t", "c");
  auto& eq = ctx.make<EqualityConstraint>();
  eq.basic_add_argument(a);
  eq.basic_add_argument(b);
  eq.basic_add_argument(c);
  EXPECT_TRUE(b.set_user(Value(4)));
  EXPECT_EQ(a.value().as_int(), 4);
  EXPECT_EQ(c.value().as_int(), 4);

  // Remove the user-specified source: a and c were its consequences, so
  // they are erased; re-propagation of the remaining {a, c} has nothing to
  // push (both nil).
  eq.remove_argument(b);
  EXPECT_TRUE(a.value().is_nil());
  EXPECT_TRUE(c.value().is_nil());
  EXPECT_EQ(b.value().as_int(), 4) << "removed variable keeps its own value";
}

TEST_F(EditingTest, EditChurnKeepsNetworkConsistent) {
  // Repeatedly adding/removing a bound over a live equality chain must
  // never corrupt values.
  Variable a(ctx, "t", "a"), b(ctx, "t", "b");
  EqualityConstraint::among(ctx, {&a, &b});
  EXPECT_TRUE(a.set_user(Value(5)));
  for (int i = 0; i < 10; ++i) {
    auto& bound = BoundConstraint::upper(ctx, b, Value(100));
    EXPECT_EQ(b.value().as_int(), 5);
    ctx.destroy_constraint(bound);
    EXPECT_EQ(b.value().as_int(), 5)
        << "b did not depend on the bound, so it survives removal";
  }
}

TEST_F(EditingTest, AddingViolatedBoundReportsImmediately) {
  Variable v(ctx, "t", "v");
  EXPECT_TRUE(v.set_user(Value(50)));
  auto& bound = ctx.make<BoundConstraint>(Relation::kLessEqual, Value(10));
  const Status s = bound.add_argument(v);
  EXPECT_TRUE(s.is_violation())
      << "adding a constraint checks existing values";
  EXPECT_EQ(v.value().as_int(), 50);
}

TEST_F(EditingTest, FunctionalConstraintArrivesAfterValues) {
  Variable x(ctx, "t", "x"), y(ctx, "t", "y"), s(ctx, "t", "s");
  EXPECT_TRUE(x.set_user(Value(2)));
  EXPECT_TRUE(y.set_user(Value(3)));
  UniAdditionConstraint::sum(ctx, s, {&x, &y});
  EXPECT_EQ(s.value().as_int(), 5) << "sum computed on constraint creation";
}

TEST_F(EditingTest, DestroyConstraintUnknownToContextThrows) {
  PropagationContext other;
  auto& eq = other.make<EqualityConstraint>();
  EXPECT_THROW(ctx.destroy_constraint(eq), std::logic_error);
}

}  // namespace
}  // namespace stemcp::core
