// Propagator derivation from the engine's constraint library
// (fd/derive.h): each core constraint class becomes an arc-consistency
// filter over interval domains, and solve_and_commit's FD verdict agrees
// with the engine on all-singleton domains (the ISSUE's equivalence
// property).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/core.h"
#include "fd/derive.h"

namespace stemcp::fd {
namespace {

using core::BoundConstraint;
using core::ComparisonConstraint;
using core::PropagationContext;
using core::Relation;
using core::SpacingConstraint;
using core::Status;
using core::UniAdditionConstraint;
using core::UniLinearConstraint;
using core::UniMaximumConstraint;
using core::UniMinimumConstraint;
using core::UniProductConstraint;
using core::Value;
using core::Variable;

class FdDeriveTest : public ::testing::Test {
 protected:
  PropagationContext ctx;
  Problem problem;
  VarMap map;

  DomainVariable& bind(Variable& v, double lo, double hi) {
    DomainVariable& d = problem.add_interval_variable(v.path(), lo, hi);
    map[&v] = &d;
    return d;
  }
};

TEST_F(FdDeriveTest, BoundConstraintClampsTheDomain) {
  Variable x(ctx, "t", "x");
  BoundConstraint::upper(ctx, x, Value(10.0));
  BoundConstraint::lower(ctx, x, Value(2.0));
  DomainVariable& dx = bind(x, -100.0, 100.0);
  EXPECT_EQ(derive_interval_network(problem, ctx, map), 2u);
  EXPECT_TRUE(problem.propagate_all());
  EXPECT_DOUBLE_EQ(dx.domain().lo(), 2.0);
  EXPECT_DOUBLE_EQ(dx.domain().hi(), 10.0);
}

TEST_F(FdDeriveTest, ContradictoryBoundsWipeOut) {
  Variable x(ctx, "t", "x");
  BoundConstraint::upper(ctx, x, Value(1.0));
  BoundConstraint::lower(ctx, x, Value(5.0));
  bind(x, -100.0, 100.0);
  derive_interval_network(problem, ctx, map);
  EXPECT_FALSE(problem.propagate_all());
}

TEST_F(FdDeriveTest, ComparisonPropagatesBothWays) {
  Variable a(ctx, "t", "a"), b(ctx, "t", "b");
  ComparisonConstraint::between(ctx, Relation::kLessEqual, a, b);
  DomainVariable& da = bind(a, 5.0, 100.0);
  DomainVariable& db = bind(b, -100.0, 20.0);
  EXPECT_EQ(derive_interval_network(problem, ctx, map), 1u);
  EXPECT_TRUE(problem.propagate_all());
  EXPECT_DOUBLE_EQ(da.domain().hi(), 20.0) << "a <= max(b)";
  EXPECT_DOUBLE_EQ(db.domain().lo(), 5.0) << "b >= min(a)";
}

TEST_F(FdDeriveTest, SpacingShiftsBounds) {
  Variable l(ctx, "t", "l"), r(ctx, "t", "r");
  SpacingConstraint::apart(ctx, l, r, 3.0);
  DomainVariable& dl = bind(l, 0.0, 100.0);
  DomainVariable& dr = bind(r, 0.0, 10.0);
  derive_interval_network(problem, ctx, map);
  EXPECT_TRUE(problem.propagate_all());
  EXPECT_DOUBLE_EQ(dl.domain().hi(), 7.0) << "l <= max(r) - gap";
  EXPECT_DOUBLE_EQ(dr.domain().lo(), 3.0) << "r >= min(l) + gap";
}

TEST_F(FdDeriveTest, SumPropagatesForwardAndBack) {
  Variable a(ctx, "t", "a"), b(ctx, "t", "b"), s(ctx, "t", "s");
  UniAdditionConstraint::sum(ctx, s, {&a, &b}, 1.0);
  DomainVariable& da = bind(a, 0.0, 10.0);
  DomainVariable& db = bind(b, 0.0, 10.0);
  DomainVariable& ds = bind(s, -100.0, 100.0);
  derive_interval_network(problem, ctx, map);
  EXPECT_TRUE(problem.propagate_all());
  EXPECT_DOUBLE_EQ(ds.domain().lo(), 1.0);
  EXPECT_DOUBLE_EQ(ds.domain().hi(), 21.0);
  // Reverse: clamp the sum, inputs follow.
  EXPECT_TRUE(problem.clamp_hi(ds, 6.0));
  EXPECT_TRUE(problem.propagate());
  EXPECT_DOUBLE_EQ(da.domain().hi(), 5.0) << "a <= s.hi - offset - b.lo";
  EXPECT_DOUBLE_EQ(db.domain().hi(), 5.0);
}

TEST_F(FdDeriveTest, MaximumBoundsResultAndInputs) {
  Variable a(ctx, "t", "a"), b(ctx, "t", "b"), m(ctx, "t", "m");
  UniMaximumConstraint::max_of(ctx, m, {&a, &b});
  DomainVariable& da = bind(a, 0.0, 50.0);
  bind(b, 5.0, 30.0);
  DomainVariable& dm = bind(m, -100.0, 100.0);
  derive_interval_network(problem, ctx, map);
  EXPECT_TRUE(problem.propagate_all());
  EXPECT_DOUBLE_EQ(dm.domain().lo(), 5.0) << "max >= largest input lo";
  EXPECT_DOUBLE_EQ(dm.domain().hi(), 50.0);
  EXPECT_TRUE(problem.clamp_hi(dm, 20.0));
  EXPECT_TRUE(problem.propagate());
  EXPECT_DOUBLE_EQ(da.domain().hi(), 20.0) << "inputs <= max";
}

TEST_F(FdDeriveTest, MinimumIsTheDual) {
  Variable a(ctx, "t", "a"), b(ctx, "t", "b"), m(ctx, "t", "m");
  auto& c = ctx.make<UniMinimumConstraint>();
  c.set_result(m);
  c.basic_add_argument(a);
  c.basic_add_argument(b);
  DomainVariable& da = bind(a, 0.0, 50.0);
  bind(b, 5.0, 30.0);
  DomainVariable& dm = bind(m, -100.0, 100.0);
  derive_interval_network(problem, ctx, map);
  EXPECT_TRUE(problem.propagate_all());
  EXPECT_DOUBLE_EQ(dm.domain().lo(), 0.0);
  EXPECT_DOUBLE_EQ(dm.domain().hi(), 30.0) << "min <= smallest input hi";
  EXPECT_TRUE(problem.clamp_lo(dm, 10.0));
  EXPECT_TRUE(problem.propagate());
  EXPECT_DOUBLE_EQ(da.domain().lo(), 10.0) << "inputs >= min";
}

TEST_F(FdDeriveTest, LinearScalesBothDirections) {
  Variable x(ctx, "t", "x"), y(ctx, "t", "y");
  auto& c = ctx.make<UniLinearConstraint>(2.0, 1.0);
  c.set_result(y);
  c.basic_add_argument(x);
  DomainVariable& dx = bind(x, 0.0, 10.0);
  DomainVariable& dy = bind(y, -100.0, 100.0);
  derive_interval_network(problem, ctx, map);
  EXPECT_TRUE(problem.propagate_all());
  EXPECT_DOUBLE_EQ(dy.domain().lo(), 1.0);
  EXPECT_DOUBLE_EQ(dy.domain().hi(), 21.0);
  EXPECT_TRUE(problem.clamp_hi(dy, 11.0));
  EXPECT_TRUE(problem.propagate());
  EXPECT_DOUBLE_EQ(dx.domain().hi(), 5.0) << "x <= (y.hi - offset) / scale";
}

TEST_F(FdDeriveTest, ProductEnvelopesTheResult) {
  Variable w(ctx, "t", "w"), h(ctx, "t", "h"), area(ctx, "t", "area");
  auto& c = ctx.make<UniProductConstraint>(2.0);
  c.set_result(area);
  c.basic_add_argument(w);
  c.basic_add_argument(h);
  bind(w, 2.0, 3.0);
  bind(h, -1.0, 4.0);
  DomainVariable& da = bind(area, -1000.0, 1000.0);
  derive_interval_network(problem, ctx, map);
  EXPECT_TRUE(problem.propagate_all());
  EXPECT_DOUBLE_EQ(da.domain().lo(), -6.0) << "2 * 3 * -1";
  EXPECT_DOUBLE_EQ(da.domain().hi(), 24.0) << "2 * 3 * 4";
}

TEST_F(FdDeriveTest, UnmappedArgumentsSkipTheConstraint) {
  Variable x(ctx, "t", "x"), y(ctx, "t", "y");
  ComparisonConstraint::between(ctx, Relation::kLessEqual, x, y);
  bind(x, 0.0, 10.0);  // y left unmapped
  EXPECT_EQ(derive_interval_network(problem, ctx, map), 0u);
}

// ---- solve_and_commit ------------------------------------------------------

TEST(FdCommitTest, FeasibleBatchCommitsThroughTheEngine) {
  PropagationContext ctx;
  Variable x(ctx, "t", "x"), y(ctx, "t", "y");
  UniAdditionConstraint::sum(ctx, y, {&x}, 2.0);
  BoundConstraint::upper(ctx, y, Value(10.0));
  const CommitOutcome out = solve_and_commit(ctx, {{&x, 5.0}});
  EXPECT_FALSE(out.fd_wipeout);
  EXPECT_TRUE(out.status.is_ok());
  EXPECT_EQ(out.restores, 0u);
  EXPECT_DOUBLE_EQ(y.value().as_number(), 7.0) << "engine committed the batch";
}

TEST(FdCommitTest, InfeasibleBatchIsPredictedAndRejected) {
  PropagationContext ctx;
  Variable x(ctx, "t", "x"), y(ctx, "t", "y");
  UniAdditionConstraint::sum(ctx, y, {&x}, 2.0);
  BoundConstraint::upper(ctx, y, Value(10.0));
  const CommitOutcome out = solve_and_commit(ctx, {{&x, 50.0}});
  EXPECT_TRUE(out.fd_wipeout) << "fixpoint sees 52 > 10 before committing";
  EXPECT_TRUE(out.status.is_violation());
  EXPECT_GT(out.restores, 0u);
  EXPECT_TRUE(x.value().is_nil()) << "engine unwound the batch";
}

// The ISSUE's equivalence property: over all-singleton domains the FD pass
// and plain propagation agree on violations, restores, and final values.
// Networks are generated deterministically: a chain of UniAdditions with a
// bound at the end, built twice — once driven by plain propagation, once by
// solve_and_commit — and compared field by field.
TEST(FdCommitTest, SingletonDomainsMatchPlainPropagation) {
  std::uint64_t seed = 0x9E3779B97F4A7C15ull;
  auto rng = [&seed]() {
    seed ^= seed << 13;
    seed ^= seed >> 7;
    seed ^= seed << 17;
    return seed;
  };

  for (int round = 0; round < 40; ++round) {
    const std::size_t k = 3 + rng() % 4;          // chain length
    std::vector<double> offsets;
    for (std::size_t i = 0; i + 1 < k; ++i) {
      offsets.push_back(static_cast<double>(rng() % 7) - 3.0);
    }
    const double start = static_cast<double>(rng() % 10);
    const double bound = static_cast<double>(rng() % 20) - 2.0;

    struct Net {
      PropagationContext ctx;
      std::vector<std::unique_ptr<Variable>> vars;
    };
    auto build = [&](Net& n) {
      for (std::size_t i = 0; i < k; ++i) {
        n.vars.push_back(std::make_unique<Variable>(
            n.ctx, "t", "x" + std::to_string(i)));
      }
      for (std::size_t i = 0; i + 1 < k; ++i) {
        UniAdditionConstraint::sum(n.ctx, *n.vars[i + 1], {n.vars[i].get()},
                                   offsets[i]);
      }
      BoundConstraint::upper(n.ctx, *n.vars[k - 1], Value(bound));
    };

    Net plain, fd;
    build(plain);
    build(fd);

    // Plain propagation: one batched session, engine only.
    const std::uint64_t restores_before = plain.ctx.stats().restores;
    const Status plain_status = plain.ctx.run_session([&]() -> Status {
      return plain.vars[0]->set_in_session(Value(start),
                                          core::Justification::user());
    });
    const std::uint64_t plain_restores =
        plain.ctx.stats().restores - restores_before;

    // FD pass + engine commit on the identical twin.
    const CommitOutcome out =
        solve_and_commit(fd.ctx, {{fd.vars[0].get(), start}});

    EXPECT_EQ(out.status.is_violation(), plain_status.is_violation())
        << "round " << round;
    EXPECT_EQ(out.fd_wipeout, plain_status.is_violation())
        << "round " << round << ": the fixpoint must predict the engine";
    EXPECT_EQ(out.restores, plain_restores) << "round " << round;
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_EQ(fd.vars[i]->value(), plain.vars[i]->value())
          << "round " << round << " var " << i;
    }
  }
}

TEST(FdCommitTest, UserPinnedValuesAreSingletons) {
  PropagationContext ctx;
  Variable x(ctx, "t", "x"), y(ctx, "t", "y"), s(ctx, "t", "s");
  UniAdditionConstraint::sum(ctx, s, {&x, &y}, 0.0);
  BoundConstraint::upper(ctx, s, Value(10.0));
  EXPECT_TRUE(x.set_user(Value(8.0)));
  // x is pinned at 8; committing y=7 must be predicted infeasible (15 > 10).
  const CommitOutcome out = solve_and_commit(ctx, {{&y, 7.0}});
  EXPECT_TRUE(out.fd_wipeout);
  EXPECT_TRUE(out.status.is_violation());
  EXPECT_DOUBLE_EQ(x.value().as_number(), 8.0) << "pinned value survives";
}

}  // namespace
}  // namespace stemcp::fd
