// FD module selection through the design service (ISSUE 8): the `select` /
// `select-stats` verbs end to end — journaled selection must recover
// byte-identically (commit included), the request type must show up in the
// latency telemetry, and concurrent selects across sharded sessions must be
// race-free (this file runs under TSan in tools/run_tier1.sh).
#include <gtest/gtest.h>

#include <fstream>
#include <future>
#include <string>
#include <vector>

#include "persist/checkpoint.h"
#include "service/design_service.h"
#include "service/protocol.h"

namespace stemcp::service {
namespace {

// The shell demo's selection design (thesis §8): a generic adder with a
// slow/small and a fast/large realization under a 6 ns parent budget —
// only the carry-select meets it.
const char* kSelectionDesign = R"(cell ADD generic
  signal a input
  signal out output
  delay a out
end
cell ADD.RC super ADD
  bbox 0 0 8 10
  signal a input
  signal out output
  delay a out value 8e-9
end
cell ADD.CS super ADD
  bbox 0 0 8 22
  signal a input
  signal out output
  delay a out value 5e-9
end
cell ALU
  signal a input
  signal out output
  delay a out
    spec <= 6e-9
  subcell add ADD R0 0 0
  net n_in
    io a
    conn add a
  net n_out
    conn add out
    io out
end
)";

Request make(RequestType t, const std::string& session, std::string text = {}) {
  Request r;
  r.type = t;
  r.session = session;
  r.text = std::move(text);
  return r;
}

std::string save_image(DesignService& svc, const std::string& session) {
  Response r = svc.call(make(RequestType::kSave, session));
  EXPECT_TRUE(r.ok) << r.error;
  return r.text;
}

TEST(FdServiceTest, SelectEndToEnd) {
  DesignService svc(2);
  ASSERT_TRUE(svc.call(make(RequestType::kOpen, "s")).ok);
  ASSERT_TRUE(svc.call(make(RequestType::kLoad, "s", kSelectionDesign)).ok);

  // Dry run: exploration counters, nothing mutated.
  Response stats = svc.call(make(RequestType::kSelectStats, "s", "ALU"));
  ASSERT_TRUE(stats.ok) << stats.error;
  EXPECT_NE(stats.text.find("solutions: 1"), std::string::npos) << stats.text;
  EXPECT_NE(stats.text.find("candidates explored: 2"), std::string::npos)
      << stats.text;
  EXPECT_EQ(stats.assignments_applied, 0u);
  Response q = svc.call(make(RequestType::kQuery, "s", "ALU.delay(a->out)"));
  ASSERT_TRUE(q.ok);
  EXPECT_NE(q.text.find("nil"), std::string::npos) << q.text;

  // select-stats never commits.
  Response bad = svc.call(make(RequestType::kSelectStats, "s", "ALU commit"));
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.error.find("never commits"), std::string::npos) << bad.error;

  // Enumerate, then commit: only ADD.CS fits the 6 ns budget, and the
  // committed ALU delay becomes concrete.
  Response sel = svc.call(make(RequestType::kSelect, "s", "ALU limit 0"));
  ASSERT_TRUE(sel.ok) << sel.error;
  EXPECT_NE(sel.text.find("add=ADD.CS"), std::string::npos) << sel.text;
  EXPECT_EQ(sel.text.find("ADD.RC"), std::string::npos) << sel.text;

  Response commit = svc.call(make(RequestType::kSelect, "s", "ALU commit"));
  ASSERT_TRUE(commit.ok) << commit.error;
  EXPECT_EQ(commit.assignments_applied, 1u);
  EXPECT_NE(commit.text.find("committed solution 0: add=ADD.CS"),
            std::string::npos)
      << commit.text;
  q = svc.call(make(RequestType::kQuery, "s", "ALU.delay(a->out)"));
  ASSERT_TRUE(q.ok);
  EXPECT_NE(q.text.find("5e-09"), std::string::npos) << q.text;

  // The select tally shows in the session stats, and the request type in
  // the latency telemetry (`stats --latency`).
  q = svc.call(make(RequestType::kQuery, "s", "stats"));
  ASSERT_TRUE(q.ok);
  EXPECT_NE(q.text.find("selection: 3 request(s)"), std::string::npos)
      << q.text;
  ServiceFrontEnd fe(svc);
  const std::string lat = fe.execute("stats --latency");
  EXPECT_NE(lat.find("select"), std::string::npos) << lat;
}

TEST(FdServiceTest, SelectErrorsAreRequestLevel) {
  DesignService svc(1);
  ASSERT_TRUE(svc.call(make(RequestType::kOpen, "s")).ok);
  ASSERT_TRUE(svc.call(make(RequestType::kLoad, "s", kSelectionDesign)).ok);

  Response r = svc.call(make(RequestType::kSelect, "s", "NOSUCH"));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown cell"), std::string::npos) << r.error;

  r = svc.call(make(RequestType::kSelect, "s", "ALU slot nosuch"));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown subcell"), std::string::npos) << r.error;

  r = svc.call(make(RequestType::kSelect, "s", "ADD"));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("no generic slots"), std::string::npos) << r.error;

  r = svc.call(make(RequestType::kSelect, "s", "ALU frob"));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown select option"), std::string::npos)
      << r.error;
}

// The durability half of satellite 3: a journaled session that loaded,
// enumerated, and committed a selection must rebuild byte-identically from
// checkpoint + journal — the replayed `select` re-runs the same search and
// re-commits the same realization.
TEST(FdServiceTest, JournaledSelectRecoversByteIdentically) {
  const std::string root = testing::TempDir() + "stemcp_fd_recover";
  std::string image;
  {
    DesignService svc(DesignService::Config{2, 1, root});
    ASSERT_TRUE(svc.call(make(RequestType::kOpen, "s")).ok);
    ASSERT_TRUE(svc.call(make(RequestType::kJournal, "s", "sel none")).ok);
    ASSERT_TRUE(svc.call(make(RequestType::kLoad, "s", kSelectionDesign)).ok);
    Response sel = svc.call(make(RequestType::kSelect, "s", "ALU limit 0"));
    ASSERT_TRUE(sel.ok) << sel.error;
    Response commit = svc.call(make(RequestType::kSelect, "s", "ALU commit"));
    ASSERT_TRUE(commit.ok) << commit.error;
    ASSERT_EQ(commit.assignments_applied, 1u);
    image = save_image(svc, "s");
    EXPECT_NE(image.find("subcell add ADD.CS"), std::string::npos) << image;
    // The service dies here with the journal open: the crash.
  }

  DesignService rec(DesignService::Config{2, 1, root});
  Response r = rec.call(make(RequestType::kRecover, "s", "sel"));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(r.text.find("0 outcome mismatch(es)"), std::string::npos)
      << r.text;
  EXPECT_EQ(save_image(rec, "s"), image);
  // The recovered session keeps serving: the committed design has no
  // generic slot left, so a fresh select reports exactly that.
  Response again = rec.call(make(RequestType::kSelect, "s", "ALU"));
  EXPECT_FALSE(again.ok);
  EXPECT_NE(again.error.find("no generic slots"), std::string::npos)
      << again.error;
}

// Concurrent selects across sharded sessions: every session runs its own
// load → select-stats → select → commit pipeline with all requests of a
// round in flight at once.  TSan-clean is the assertion that matters (the
// per-session engines never share propagation state).
TEST(FdServiceTest, ConcurrentSelectAcrossShards) {
  DesignService svc(DesignService::Config{2, 2, {}});
  constexpr int kSessions = 8;
  std::vector<std::string> names;
  for (int i = 0; i < kSessions; ++i) names.push_back("sel" + std::to_string(i));

  std::vector<std::future<Response>> waves;
  for (const auto& n : names) {
    waves.push_back(svc.submit(make(RequestType::kOpen, n)));
  }
  for (auto& f : waves) ASSERT_TRUE(f.get().ok);
  waves.clear();
  for (const auto& n : names) {
    waves.push_back(svc.submit(make(RequestType::kLoad, n, kSelectionDesign)));
  }
  for (auto& f : waves) ASSERT_TRUE(f.get().ok);
  waves.clear();

  for (int round = 0; round < 4; ++round) {
    for (const auto& n : names) {
      waves.push_back(svc.submit(make(RequestType::kSelectStats, n, "ALU")));
      waves.push_back(svc.submit(make(RequestType::kSelect, n, "ALU limit 0")));
    }
    for (auto& f : waves) {
      const Response r = f.get();
      ASSERT_TRUE(r.ok) << r.error;
    }
    waves.clear();
  }
  for (const auto& n : names) {
    waves.push_back(svc.submit(make(RequestType::kSelect, n, "ALU commit")));
  }
  for (auto& f : waves) {
    const Response r = f.get();
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.assignments_applied, 1u);
  }
  waves.clear();
  for (const auto& n : names) {
    waves.push_back(
        svc.submit(make(RequestType::kQuery, n, "ALU.delay(a->out)")));
  }
  for (auto& f : waves) {
    const Response r = f.get();
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_NE(r.text.find("5e-09"), std::string::npos) << r.text;
  }
}

}  // namespace
}  // namespace stemcp::service
