// fd::Domain semantics: bitset and interval representations, shrink-only
// mutators, and the event sets they raise (docs/SOLVER.md).
#include <gtest/gtest.h>

#include "fd/domain.h"

namespace stemcp::fd {
namespace {

TEST(FdDomainTest, SetDomainStartsFull) {
  Domain d = Domain::all_of(130);  // spans three words
  EXPECT_TRUE(d.is_set());
  EXPECT_EQ(d.count(), 130u);
  EXPECT_EQ(d.universe_size(), 130u);
  EXPECT_FALSE(d.empty());
  EXPECT_FALSE(d.fixed());
  EXPECT_TRUE(d.contains(std::size_t{0}));
  EXPECT_TRUE(d.contains(std::size_t{129}));
  EXPECT_FALSE(d.contains(std::size_t{130}));
  EXPECT_EQ(d.min_index(), 0u);
  EXPECT_EQ(d.max_index(), 129u);
}

TEST(FdDomainTest, RemoveRaisesDomainAndBoundsEvents) {
  Domain d = Domain::all_of(10);
  // Interior removal: domain only.
  EXPECT_EQ(d.remove(5), kEventDomain);
  // Min removal moves a bound.
  EXPECT_EQ(d.remove(0), kEventDomain | kEventBounds);
  EXPECT_EQ(d.min_index(), 1u);
  // Max removal moves a bound.
  EXPECT_EQ(d.remove(9), kEventDomain | kEventBounds);
  EXPECT_EQ(d.max_index(), 8u);
  // Removing an absent element is a no-op.
  EXPECT_EQ(d.remove(5), kEventNone);
  EXPECT_EQ(d.count(), 7u);
}

TEST(FdDomainTest, RemoveToSingletonRaisesValueEvent) {
  Domain d = Domain::all_of(2);
  const EventSet e = d.remove(0);
  EXPECT_TRUE(e & kEventValue);
  EXPECT_TRUE(d.fixed());
  EXPECT_EQ(d.value_index(), 1u);
}

TEST(FdDomainTest, RemoveLastElementWipesOut) {
  Domain d = Domain::all_of(1);
  const EventSet e = d.remove(0);
  EXPECT_TRUE(e & kEventWipeout);
  EXPECT_TRUE(d.empty());
}

TEST(FdDomainTest, BindKeepsOnlyTheMember) {
  Domain d = Domain::all_of(70);
  const EventSet e = d.bind(65);
  EXPECT_TRUE(e & kEventValue);
  EXPECT_TRUE(d.fixed());
  EXPECT_EQ(d.value_index(), 65u);
  EXPECT_EQ(d.bind(65), kEventNone) << "already bound";
}

TEST(FdDomainTest, BindToNonMemberWipesOut) {
  Domain d = Domain::all_of(4);
  EXPECT_EQ(d.remove(2), kEventDomain);
  const EventSet e = d.bind(2);
  EXPECT_TRUE(e & kEventWipeout);
  EXPECT_TRUE(d.empty());
}

TEST(FdDomainTest, ForEachVisitsAscending) {
  Domain d = Domain::all_of(100);
  d.remove(0);
  d.remove(64);
  d.remove(99);
  std::vector<std::size_t> seen;
  d.for_each([&](std::size_t i) { seen.push_back(i); });
  ASSERT_EQ(seen.size(), 97u);
  EXPECT_EQ(seen.front(), 1u);
  EXPECT_EQ(seen.back(), 98u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
}

TEST(FdDomainTest, IntervalClamps) {
  Domain d = Domain::interval(0.0, 10.0);
  EXPECT_TRUE(d.is_interval());
  EXPECT_EQ(d.clamp_lo(-5.0), kEventNone) << "clamping outward is a no-op";
  EXPECT_EQ(d.clamp_lo(2.0), kEventDomain | kEventBounds);
  EXPECT_EQ(d.clamp_hi(4.0), kEventDomain | kEventBounds);
  EXPECT_DOUBLE_EQ(d.lo(), 2.0);
  EXPECT_DOUBLE_EQ(d.hi(), 4.0);
  EXPECT_TRUE(d.contains(3.0));
  EXPECT_FALSE(d.contains(4.5));
}

TEST(FdDomainTest, IntervalClampToPointRaisesValue) {
  Domain d = Domain::interval(0.0, 10.0);
  const EventSet e = d.clamp_lo(10.0);
  EXPECT_TRUE(e & kEventValue);
  EXPECT_TRUE(d.fixed());
}

TEST(FdDomainTest, IntervalCrossWipesOut) {
  Domain d = Domain::interval(0.0, 10.0);
  EXPECT_TRUE(d.clamp_lo(11.0) & kEventWipeout);
  EXPECT_TRUE(d.empty());
}

TEST(FdDomainTest, IntervalBindValue) {
  Domain d = Domain::interval(0.0, 10.0);
  EXPECT_TRUE(d.bind_value(7.0) & kEventValue);
  EXPECT_TRUE(d.fixed());
  EXPECT_DOUBLE_EQ(d.lo(), 7.0);
  Domain e = Domain::interval(0.0, 10.0);
  EXPECT_TRUE(e.bind_value(12.0) & kEventWipeout);
}

TEST(FdDomainTest, SingletonHelper) {
  Domain d = Domain::singleton(3.5);
  EXPECT_TRUE(d.fixed());
  EXPECT_TRUE(d.contains(3.5));
}

}  // namespace
}  // namespace stemcp::fd
