// fd::SelectionSpace vs the engine's generate-and-test module selection
// (thesis ch. 8): same result sets on the Fig 8.1 / Fig 8.4 scenarios,
// fewer candidate probes, and cross-slot pruning for joint budgets.
#include <gtest/gtest.h>

#include "core/constraints/predicate.h"
#include "fd/selection.h"
#include "stem/stem.h"

namespace stemcp::fd {
namespace {

using core::BoundConstraint;
using core::Rect;
using core::Transform;
using core::Value;
using env::CellClass;
using env::CellInstance;
using env::ClassDelayVar;
using env::Library;
using env::SignalDirection;

constexpr double kNs = 1e-9;

/// Thesis Fig 8.1: ALU = LU8 -> generic ADD8 with a ripple-carry (slow,
/// small) and a carry-select (fast, large) realization.
class Fig81 {
 public:
  Library lib;
  CellClass* add8;
  CellClass* add8_rc;
  CellClass* add8_cs;
  CellClass* alu;
  CellInstance* adder_inst;
  ClassDelayVar* alu_delay;

  Fig81() {
    add8 = &lib.define_cell("ADD8", nullptr);
    add8->set_generic(true);
    add8->declare_signal("in", SignalDirection::kInput);
    add8->declare_signal("out", SignalDirection::kOutput);
    add8->declare_delay("in", "out");

    add8_rc = &lib.define_cell("ADD8.RC", add8);
    EXPECT_TRUE(add8_rc->set_leaf_delay("in", "out", 8 * kNs));
    EXPECT_TRUE(add8_rc->bounding_box().set_user(Value(Rect{0, 0, 8, 10})));
    add8_cs = &lib.define_cell("ADD8.CS", add8);
    EXPECT_TRUE(add8_cs->set_leaf_delay("in", "out", 5 * kNs));
    EXPECT_TRUE(add8_cs->bounding_box().set_user(Value(Rect{0, 0, 8, 22})));

    auto& lu8 = lib.define_cell("LU8", nullptr);
    lu8.declare_signal("in", SignalDirection::kInput);
    lu8.declare_signal("out", SignalDirection::kOutput);
    EXPECT_TRUE(lu8.set_leaf_delay("in", "out", 3 * kNs));
    EXPECT_TRUE(lu8.bounding_box().set_user(Value(Rect{0, 0, 8, 20})));

    alu = &lib.define_cell("ALU", nullptr);
    alu->declare_signal("in", SignalDirection::kInput);
    alu->declare_signal("out", SignalDirection::kOutput);
    alu_delay = &alu->declare_delay("in", "out");

    auto& lu = alu->add_subcell(lu8, "lu", Transform::translate({0, 0}));
    adder_inst =
        &alu->add_subcell(*add8, "add", Transform::translate({0, 20}));
    auto& n_in = alu->add_net("n_in");
    EXPECT_TRUE(n_in.connect_io("in"));
    EXPECT_TRUE(n_in.connect(lu, "in"));
    auto& n_mid = alu->add_net("n_mid");
    EXPECT_TRUE(n_mid.connect(lu, "out"));
    EXPECT_TRUE(n_mid.connect(*adder_inst, "in"));
    auto& n_out = alu->add_net("n_out");
    EXPECT_TRUE(n_out.connect(*adder_inst, "out"));
    EXPECT_TRUE(n_out.connect_io("out"));
    alu->build_delay_networks();
  }
};

TEST(FdSelectionTest, Fig8_1TightAreaSelectsRippleCarry) {
  Fig81 f;
  EXPECT_TRUE(
      f.adder_inst->bounding_box().set_user(Value(Rect{0, 20, 8, 30})));
  BoundConstraint::upper(f.lib.context(), *f.alu_delay, Value(11 * kNs));

  SelectionSpace space(f.lib);
  space.add_slot(*f.add8, *f.adder_inst);
  ASSERT_EQ(space.solve(0), 1u);
  EXPECT_EQ(space.solutions()[0][0], f.add8_rc)
      << "carry-select is too big for the slot";
}

TEST(FdSelectionTest, Fig8_1TightDelaySelectsCarrySelect) {
  Fig81 f;
  EXPECT_TRUE(
      f.adder_inst->bounding_box().set_user(Value(Rect{0, 20, 8, 62})));
  BoundConstraint::upper(f.lib.context(), *f.alu_delay, Value(8 * kNs));

  SelectionSpace space(f.lib);
  space.add_slot(*f.add8, *f.adder_inst);
  ASSERT_EQ(space.solve(0), 1u);
  EXPECT_EQ(space.solutions()[0][0], f.add8_cs) << "ripple-carry is too slow";
}

TEST(FdSelectionTest, SolutionsComeInCostOrder) {
  Fig81 f;
  EXPECT_TRUE(
      f.adder_inst->bounding_box().set_user(Value(Rect{0, 20, 8, 62})));
  BoundConstraint::upper(f.lib.context(), *f.alu_delay, Value(20 * kNs));

  SelectionSpace space(f.lib);
  space.add_slot(*f.add8, *f.adder_inst);
  ASSERT_EQ(space.solve(0), 2u);
  EXPECT_EQ(space.solutions()[0][0], f.add8_rc) << "smaller area first (§8)";
  EXPECT_EQ(space.solutions()[1][0], f.add8_cs);
}

TEST(FdSelectionTest, InfeasibleBudgetYieldsNoSolutions) {
  Fig81 f;
  EXPECT_TRUE(
      f.adder_inst->bounding_box().set_user(Value(Rect{0, 20, 8, 62})));
  BoundConstraint::upper(f.lib.context(), *f.alu_delay, Value(6 * kNs));

  SelectionSpace space(f.lib);
  space.add_slot(*f.add8, *f.adder_inst);
  EXPECT_EQ(space.solve(0), 0u);
}

TEST(FdSelectionTest, AgreesWithGenerateAndTest) {
  Fig81 f;
  EXPECT_TRUE(
      f.adder_inst->bounding_box().set_user(Value(Rect{0, 20, 8, 30})));
  BoundConstraint::upper(f.lib.context(), *f.alu_delay, Value(11 * kNs));

  const auto engine = f.add8->select_realizations_for(*f.adder_inst, {});
  SelectionSpace space(f.lib);
  space.add_slot(*f.add8, *f.adder_inst);
  space.solve(0);
  std::vector<CellClass*> fd_found;
  for (const auto& sol : space.solutions()) fd_found.push_back(sol[0]);
  EXPECT_EQ(fd_found, engine) << "same set, same cost order";
}

TEST(FdSelectionTest, FilteringNeverProbesTheNetwork) {
  Fig81 f;
  EXPECT_TRUE(
      f.adder_inst->bounding_box().set_user(Value(Rect{0, 20, 8, 62})));
  BoundConstraint::upper(f.lib.context(), *f.alu_delay, Value(8 * kNs));

  const auto sessions_before = f.lib.context().stats().sessions;
  SelectionSpace space(f.lib);
  space.add_slot(*f.add8, *f.adder_inst);
  ASSERT_EQ(space.solve(0), 1u);
  EXPECT_EQ(f.lib.context().stats().sessions, sessions_before)
      << "delay slack is computed arithmetically, not via probe sessions";
  EXPECT_TRUE(f.alu_delay->value().is_nil());
}

TEST(FdSelectionTest, CommitRealizesTheChosenCandidate) {
  Fig81 f;
  EXPECT_TRUE(
      f.adder_inst->bounding_box().set_user(Value(Rect{0, 20, 8, 30})));
  BoundConstraint::upper(f.lib.context(), *f.alu_delay, Value(11 * kNs));

  SelectionSpace space(f.lib);
  space.add_slot(*f.add8, *f.adder_inst);
  ASSERT_EQ(space.solve(1), 1u);
  const auto replaced = space.commit(0);
  ASSERT_EQ(replaced.size(), 1u);
  EXPECT_EQ(&replaced[0]->cls(), f.add8_rc);
  // The realized network now carries a committed delay: 3 + 8 = 11 ns.
  ASSERT_TRUE(f.alu_delay->value().is_number());
  EXPECT_NEAR(f.alu_delay->value().as_number(), 11 * kNs, 1e-15);
}

// Fig 8.4 shape: generic intermediates carry best-case characteristics;
// FD must prune the same subtrees while exploring no more candidates than
// the engine's pruned walk — and far fewer than the unpruned one.
TEST(FdSelectionTest, Fig8_4SubtreePruningMatchesEngine) {
  Library lib;
  auto& adder8 = lib.define_cell("Adder8", nullptr);
  adder8.set_generic(true);
  adder8.declare_signal("in", SignalDirection::kInput);
  adder8.declare_signal("out", SignalDirection::kOutput);
  adder8.declare_delay("in", "out");

  auto& ripple = lib.define_cell("RippleCarryAdder8", &adder8);
  ripple.set_generic(true);
  EXPECT_TRUE(ripple.set_leaf_delay("in", "out", 8 * kNs));
  EXPECT_TRUE(ripple.bounding_box().set_user(Value(Rect{0, 0, 8, 8})));
  for (int i = 0; i < 5; ++i) {
    auto& leaf = lib.define_cell("RCAdd8V" + std::to_string(i), &ripple);
    EXPECT_TRUE(leaf.set_leaf_delay("in", "out", (8 + i) * kNs));
    EXPECT_TRUE(leaf.bounding_box().set_user(Value(Rect{0, 0, 8, 8})));
  }

  auto& csel = lib.define_cell("CarrySelectAdder8", &adder8);
  csel.set_generic(true);
  EXPECT_TRUE(csel.set_leaf_delay("in", "out", 4 * kNs));
  EXPECT_TRUE(csel.bounding_box().set_user(Value(Rect{0, 0, 16, 8})));
  auto& cs_1 = lib.define_cell("CSAdd8A", &csel);
  EXPECT_TRUE(cs_1.set_leaf_delay("in", "out", 4 * kNs));
  EXPECT_TRUE(cs_1.bounding_box().set_user(Value(Rect{0, 0, 16, 8})));
  auto& cs_2 = lib.define_cell("CSAdd8B", &csel);
  EXPECT_TRUE(cs_2.set_leaf_delay("in", "out", 5 * kNs));
  EXPECT_TRUE(cs_2.bounding_box().set_user(Value(Rect{0, 0, 16, 9})));

  auto& top = lib.define_cell("TOP", nullptr);
  top.declare_signal("in", SignalDirection::kInput);
  top.declare_signal("out", SignalDirection::kOutput);
  auto& d = top.declare_delay("in", "out");
  auto& inst = top.add_subcell(adder8, "u");
  auto& n1 = top.add_net("n1");
  EXPECT_TRUE(n1.connect_io("in"));
  EXPECT_TRUE(n1.connect(inst, "in"));
  auto& n2 = top.add_net("n2");
  EXPECT_TRUE(n2.connect(inst, "out"));
  EXPECT_TRUE(n2.connect_io("out"));
  top.build_delay_networks();

  BoundConstraint::upper(lib.context(), d, Value(6 * kNs));
  EXPECT_TRUE(inst.bounding_box().set_user(Value(Rect{0, 0, 32, 32})));

  const auto engine = adder8.valid_realizations_for(inst, {});
  lib.reset_selection_stats();
  (void)adder8.valid_realizations_unpruned(inst, {});
  const auto unpruned_tests = lib.selection_stats().candidates_tested;

  SelectionSpace space(lib);
  space.add_slot(adder8, inst);
  space.solve(0);
  std::vector<CellClass*> fd_found;
  for (const auto& sol : space.solutions()) fd_found.push_back(sol[0]);

  EXPECT_EQ(fd_found, engine);
  EXPECT_EQ(space.stats().subtrees_pruned, 1u) << "ripple subtree cut";
  // 2 generics + 2 carry-select leaves = 4 tests; the unpruned engine walk
  // visits all 7 leaves.
  EXPECT_EQ(space.stats().candidates_explored, 4u);
  EXPECT_LT(space.stats().candidates_explored, unpruned_tests);
}

/// Two generic slots on one path: in -> u1 -> u2 -> out with a joint
/// budget only the fast/fast pair satisfies.
TEST(FdSelectionTest, CrossSlotBudgetForcesJointChoice) {
  Library lib;
  auto make_generic = [&](const std::string& name, CellClass*& slow,
                          CellClass*& fast) {
    auto& g = lib.define_cell(name, nullptr);
    g.set_generic(true);
    g.declare_signal("in", SignalDirection::kInput);
    g.declare_signal("out", SignalDirection::kOutput);
    g.declare_delay("in", "out");
    slow = &lib.define_cell(name + ".SLOW", &g);
    EXPECT_TRUE(slow->set_leaf_delay("in", "out", 8 * kNs));
    EXPECT_TRUE(slow->bounding_box().set_user(Value(Rect{0, 0, 4, 4})));
    fast = &lib.define_cell(name + ".FAST", &g);
    EXPECT_TRUE(fast->set_leaf_delay("in", "out", 3 * kNs));
    EXPECT_TRUE(fast->bounding_box().set_user(Value(Rect{0, 0, 8, 8})));
    return &g;
  };
  CellClass *slow1, *fast1, *slow2, *fast2;
  CellClass* g1 = make_generic("G1", slow1, fast1);
  CellClass* g2 = make_generic("G2", slow2, fast2);

  auto& top = lib.define_cell("TOP", nullptr);
  top.declare_signal("in", SignalDirection::kInput);
  top.declare_signal("out", SignalDirection::kOutput);
  auto& d = top.declare_delay("in", "out");
  auto& u1 = top.add_subcell(*g1, "u1", Transform::translate({0, 0}));
  auto& u2 = top.add_subcell(*g2, "u2", Transform::translate({0, 10}));
  auto& n1 = top.add_net("n1");
  EXPECT_TRUE(n1.connect_io("in"));
  EXPECT_TRUE(n1.connect(u1, "in"));
  auto& n2 = top.add_net("n2");
  EXPECT_TRUE(n2.connect(u1, "out"));
  EXPECT_TRUE(n2.connect(u2, "in"));
  auto& n3 = top.add_net("n3");
  EXPECT_TRUE(n3.connect(u2, "out"));
  EXPECT_TRUE(n3.connect_io("out"));
  top.build_delay_networks();

  BoundConstraint::upper(lib.context(), d, Value(8 * kNs));
  EXPECT_TRUE(u1.bounding_box().set_user(Value(Rect{0, 0, 8, 8})));
  EXPECT_TRUE(u2.bounding_box().set_user(Value(Rect{0, 10, 8, 18})));

  SelectionSpace space(lib);
  space.add_slot(*g1, u1);
  space.add_slot(*g2, u2);
  ASSERT_EQ(space.solve(0), 1u) << "only 3 + 3 <= 8 survives";
  EXPECT_EQ(space.solutions()[0][0], fast1);
  EXPECT_EQ(space.solutions()[0][1], fast2);
  EXPECT_GT(space.stats().fails, 0u)
      << "the cost heuristic tries the small slow parts first";
}

TEST(FdSelectionTest, SearchLeavesTheDesignUntouched) {
  Fig81 f;
  EXPECT_TRUE(
      f.adder_inst->bounding_box().set_user(Value(Rect{0, 20, 8, 62})));
  BoundConstraint::upper(f.lib.context(), *f.alu_delay, Value(8 * kNs));
  SelectionSpace space(f.lib);
  space.add_slot(*f.add8, *f.adder_inst);
  space.solve(0);
  EXPECT_TRUE(f.alu_delay->value().is_nil());
  EXPECT_TRUE(f.adder_inst->delay("in", "out").value().is_nil());
  EXPECT_EQ(&f.adder_inst->cls(), f.add8) << "no commit, no replacement";
}

}  // namespace
}  // namespace stemcp::fd
