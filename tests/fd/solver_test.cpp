// fd::Problem fixpoint engine + fd::Search: event-directed scheduling over
// the core agenda machinery, trail-based undo, MRV search, and the classic
// CSP stress shapes (n-queens, graph coloring) the ISSUE calls for.
#include <gtest/gtest.h>

#include <algorithm>

#include "fd/solver.h"

namespace stemcp::fd {
namespace {

/// Watches one variable and records how often it was woken.
class CountingPropagator : public Propagator {
 public:
  CountingPropagator(Problem& p, DomainVariable& v, EventSet events)
      : Propagator(p, kFdUnaryAgenda) {
    p.subscribe(v, *this, events);
  }
  void filter() override { ++runs; }
  int runs = 0;
};

TEST(FdSolverTest, EventMaskSelectsWakeups) {
  Problem p;
  DomainVariable& v = p.add_set_variable("v", 10);
  auto& bounds_watcher = p.make<CountingPropagator>(v, kEventBounds);
  auto& domain_watcher = p.make<CountingPropagator>(v, kEventDomain);
  auto& value_watcher = p.make<CountingPropagator>(v, kEventValue);

  EXPECT_TRUE(p.remove(v, 5));  // interior: domain only
  EXPECT_TRUE(p.propagate());
  EXPECT_EQ(bounds_watcher.runs, 0);
  EXPECT_EQ(domain_watcher.runs, 1);
  EXPECT_EQ(value_watcher.runs, 0);

  EXPECT_TRUE(p.remove(v, 0));  // min moved
  EXPECT_TRUE(p.propagate());
  EXPECT_EQ(bounds_watcher.runs, 1);
  EXPECT_EQ(domain_watcher.runs, 2);

  EXPECT_TRUE(p.bind(v, 7));  // became singleton
  EXPECT_TRUE(p.propagate());
  EXPECT_EQ(value_watcher.runs, 1);
}

TEST(FdSolverTest, DuplicateSchedulingIsSuppressed) {
  Problem p;
  DomainVariable& v = p.add_set_variable("v", 10);
  auto& w = p.make<CountingPropagator>(v, kEventDomain);
  // Two removals before the drain: the watcher is queued once.
  EXPECT_TRUE(p.remove(v, 3));
  EXPECT_TRUE(p.remove(v, 4));
  EXPECT_TRUE(p.propagate());
  EXPECT_EQ(w.runs, 1);
}

TEST(FdSolverTest, WipeoutLatchesFailureAndStopsTheDrain) {
  Problem p;
  DomainVariable& v = p.add_set_variable("v", 2);
  EXPECT_TRUE(p.remove(v, 0));
  EXPECT_FALSE(p.remove(v, 1));
  EXPECT_TRUE(p.failed());
  EXPECT_FALSE(p.propagate());
  EXPECT_EQ(p.stats().wipeouts, 1u);
}

TEST(FdSolverTest, TrailUndoRestoresDomains) {
  Problem p;
  DomainVariable& a = p.add_set_variable("a", 8);
  DomainVariable& b = p.add_interval_variable("b", 0.0, 100.0);

  const Problem::Mark m = p.mark();
  EXPECT_TRUE(p.bind(a, 3));
  EXPECT_TRUE(p.clamp_hi(b, 10.0));
  EXPECT_TRUE(p.clamp_lo(b, 5.0));  // second touch, same level: one save
  EXPECT_TRUE(a.domain().fixed());
  EXPECT_DOUBLE_EQ(b.domain().hi(), 10.0);

  p.undo_to(m);
  EXPECT_EQ(a.domain().count(), 8u);
  EXPECT_DOUBLE_EQ(b.domain().lo(), 0.0);
  EXPECT_DOUBLE_EQ(b.domain().hi(), 100.0);
}

TEST(FdSolverTest, NestedMarksUnwindInOrder) {
  Problem p;
  DomainVariable& v = p.add_set_variable("v", 10);
  const Problem::Mark m1 = p.mark();
  EXPECT_TRUE(p.remove(v, 0));
  const Problem::Mark m2 = p.mark();
  EXPECT_TRUE(p.remove(v, 1));
  EXPECT_EQ(v.domain().count(), 8u);
  p.undo_to(m2);
  EXPECT_EQ(v.domain().count(), 9u) << "inner level undone";
  EXPECT_FALSE(v.domain().contains(std::size_t{0}));
  p.undo_to(m1);
  EXPECT_EQ(v.domain().count(), 10u);
}

TEST(FdSolverTest, UndoClearsFailure) {
  Problem p;
  DomainVariable& v = p.add_set_variable("v", 1);
  const Problem::Mark m = p.mark();
  EXPECT_FALSE(p.remove(v, 0));
  EXPECT_TRUE(p.failed());
  p.undo_to(m);
  EXPECT_FALSE(p.failed());
  EXPECT_EQ(v.domain().count(), 1u);
}

TEST(FdSolverTest, NotEqualPropagatorPrunesOnFix) {
  Problem p;
  DomainVariable& x = p.add_set_variable("x", 3);
  DomainVariable& y = p.add_set_variable("y", 3);
  p.make<NotEqualOffsetPropagator>(x, y, 0);
  EXPECT_TRUE(p.bind(x, 1));
  EXPECT_TRUE(p.propagate());
  EXPECT_FALSE(y.domain().contains(std::size_t{1}));
  EXPECT_EQ(y.domain().count(), 2u);
}

/// n-queens: variable per row, value = column; diagonals via offsets.
void build_queens(Problem& p, std::size_t n) {
  std::vector<DomainVariable*> rows;
  for (std::size_t i = 0; i < n; ++i) {
    rows.push_back(&p.add_set_variable("q" + std::to_string(i), n));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const long long d = static_cast<long long>(j - i);
      p.make<NotEqualOffsetPropagator>(*rows[i], *rows[j], 0);
      p.make<NotEqualOffsetPropagator>(*rows[i], *rows[j], d);
      p.make<NotEqualOffsetPropagator>(*rows[i], *rows[j], -d);
    }
  }
}

TEST(FdSolverTest, SixQueensHasFourSolutions) {
  Problem p;
  build_queens(p, 6);
  Search search(p);
  Search::Options opts;
  opts.max_solutions = 0;  // all
  EXPECT_TRUE(search.solve(opts, [] { return true; }));
  EXPECT_EQ(search.stats().solutions, 4u);
  EXPECT_GT(search.stats().fails, 0u);
}

TEST(FdSolverTest, EightQueensFindsNinetyTwoSolutions) {
  Problem p;
  build_queens(p, 8);
  Search search(p);
  Search::Options opts;
  opts.max_solutions = 0;
  EXPECT_TRUE(search.solve(opts, [] { return true; }));
  EXPECT_EQ(search.stats().solutions, 92u);
}

TEST(FdSolverTest, SearchSolutionHasAllVariablesFixed) {
  Problem p;
  build_queens(p, 8);
  Search search(p);
  bool checked = false;
  search.solve(Search::Options{}, [&] {
    for (const auto& v : p.variables()) EXPECT_TRUE(v->domain().fixed());
    checked = true;
    return false;
  });
  EXPECT_TRUE(checked);
}

TEST(FdSolverTest, SearchRestoresDomainsAfterSolve) {
  Problem p;
  build_queens(p, 6);
  Search search(p);
  search.solve(Search::Options{}, [] { return false; });
  for (const auto& v : p.variables()) {
    EXPECT_EQ(v->domain().count(), 6u) << v->name() << " not restored";
  }
}

TEST(FdSolverTest, MaxNodesAbandonsTheSearch) {
  Problem p;
  build_queens(p, 8);
  Search search(p);
  Search::Options opts;
  opts.max_solutions = 0;
  opts.max_nodes = 5;
  search.solve(opts, [] { return true; });
  EXPECT_LE(search.stats().nodes, 5u);
}

/// Graph coloring: K4 minus one edge is 3-colorable; K4 is not.
TEST(FdSolverTest, GraphColoring) {
  auto color = [](bool complete) {
    Problem p;
    std::vector<DomainVariable*> nodes;
    for (int i = 0; i < 4; ++i) {
      nodes.push_back(&p.add_set_variable("n" + std::to_string(i), 3));
    }
    for (int i = 0; i < 4; ++i) {
      for (int j = i + 1; j < 4; ++j) {
        if (!complete && i == 0 && j == 1) continue;  // drop one edge
        p.make<NotEqualOffsetPropagator>(*nodes[i], *nodes[j], 0);
      }
    }
    Search search(p);
    return search.solve(Search::Options{}, [] { return false; });
  };
  EXPECT_TRUE(color(false)) << "K4 minus an edge is 3-colorable";
  EXPECT_FALSE(color(true)) << "K4 needs 4 colors";
}

/// Appends each variable's name the first time it is seen fixed.
class FixOrderRecorder : public Propagator {
 public:
  FixOrderRecorder(Problem& p, std::vector<std::string>* order)
      : Propagator(p, kFdUnaryAgenda), order_(order) {}
  void filter() override {
    for (const auto& v : problem().variables()) {
      if (v->domain().fixed() &&
          std::find(order_->begin(), order_->end(), v->name()) ==
              order_->end()) {
        order_->push_back(v->name());
      }
    }
  }

 private:
  std::vector<std::string>* order_;
};

TEST(FdSolverTest, MrvPicksTheTightestVariable) {
  Problem p;
  DomainVariable& wide = p.add_set_variable("wide", 9);
  DomainVariable& narrow = p.add_set_variable("narrow", 9);
  for (std::size_t i = 0; i < 7; ++i) EXPECT_TRUE(p.remove(narrow, i));
  std::vector<std::string> order;
  auto& rec = p.make<FixOrderRecorder>(&order);
  p.subscribe(wide, rec, kEventValue);
  p.subscribe(narrow, rec, kEventValue);
  Search search(p);
  search.solve(Search::Options{}, [] { return false; });
  ASSERT_FALSE(order.empty());
  EXPECT_EQ(order.front(), "narrow") << "MRV must branch on 2 values before 9";
}

}  // namespace
}  // namespace stemcp::fd
