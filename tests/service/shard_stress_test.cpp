// Sharded session tier under deterministic concurrent load (ISSUE 7):
//   * mixed multi-threaded traffic whose per-session outcomes must match a
//     single-shard oracle — both a live sequential replay of the same
//     scripts and a 1-shard recovery service replaying the shard journals,
//   * shard isolation: a dead journal in shard i never degrades shard j,
//     and a shard whose workers are all wedged never stalls another shard
//     (the acceptance test that the request path takes no global lock),
//   * the close-vs-request hammer regression for the session close /
//     metrics-fold window (runs under --tsan via TSAN_FILTER).
// Every test is seeded (fixed xorshift) and synchronizes on atomic shard
// counters or futures — never on sleeps.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/design_service.h"

namespace stemcp::service {
namespace {

const char* kPipeline = R"(cell STAGE
  signal in input
  signal out output
  delay in out
end
cell PIPE
  signal in input
  signal out output
  delay in out
    spec <= 160e-9
  subcell s0 STAGE R0 0 0
  subcell s1 STAGE R0 10 0
  net n_in
    io in
    conn s0 in
  net n_mid
    conn s0 out
    conn s1 in
  net n_out
    conn s1 out
    io out
end
)";

std::string tmp_root(const std::string& name) {
  return testing::TempDir() + "stemcp_shard_stress_" + name;
}

Request make(RequestType t, const std::string& session, std::string text = {}) {
  Request r;
  r.type = t;
  r.session = session;
  r.text = std::move(text);
  return r;
}

/// Deterministic xorshift so every run drives the identical scripts.
struct Rng {
  std::uint64_t s;
  explicit Rng(std::uint64_t seed) : s(seed | 1) {}
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
};

/// First name with the given stem that hashes onto `shard`.
std::string name_on_shard(const ShardedSessionManager& mgr, std::size_t shard,
                          const std::string& stem) {
  for (int i = 0;; ++i) {
    std::string n = stem + std::to_string(i);
    if (mgr.shard_of(n) == shard) return n;
  }
}

/// Seeded per-session script of mixed mutating + query traffic.  Includes
/// violating assignments (s0+s1 > the 160 ns spec) so restore outcomes are
/// exercised and must re-derive on replay.
std::vector<Request> make_script(std::uint64_t seed, const std::string& name,
                                 int ops) {
  Rng rng(seed);
  std::vector<Request> script;
  script.reserve(ops);
  double value = 10e-9;
  for (int i = 0; i < ops; ++i) {
    value += static_cast<double>(rng.next() % 30 + 1) * 1e-9;
    const std::uint64_t kind = rng.next() % 10;
    if (i % 7 == 6) {
      // Violating batch: blows the spec, restores everything.
      Request r = make(RequestType::kBatchAssign, name);
      r.assignments.push_back({"PIPE/s0.delay(in->out)", 100e-9 + value});
      r.assignments.push_back({"PIPE/s1.delay(in->out)", 110e-9 + value});
      script.push_back(std::move(r));
    } else if (kind < 5) {
      Request r = make(RequestType::kAssign, name);
      r.assignments.push_back({"PIPE/s0.delay(in->out)", value});
      script.push_back(std::move(r));
    } else if (kind < 7) {
      Request r = make(RequestType::kBatchAssign, name);
      r.assignments.push_back({"PIPE/s0.delay(in->out)", value});
      r.assignments.push_back({"PIPE/s1.delay(in->out)", value + 5e-9});
      script.push_back(std::move(r));
    } else if (kind < 9) {
      script.push_back(
          make(RequestType::kQuery, name, "PIPE.delay(in->out)"));
    } else {
      char text[64];
      std::snprintf(text, sizeof text, "leaf-delay STAGE in out %g", value);
      script.push_back(make(RequestType::kEdit, name, text));
    }
  }
  return script;
}

/// Comparable per-request outcome.  Query text is deterministic per script;
/// mutation text may carry durability warnings, so only its verdict counts.
std::string outcome_of(const Request& req, const Response& r) {
  std::string o = r.ok ? "ok" : "err:" + r.error;
  if (r.violation) o += " violation";
  o += " applied=" + std::to_string(r.assignments_applied);
  o += " restored=" + std::to_string(r.variables_restored);
  if (req.type == RequestType::kQuery) o += " " + r.text;
  return o;
}

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

// M threads x K sessions of seeded mixed traffic on a 4-shard service; every
// per-session outcome stream must match a single-shard oracle running the
// same scripts sequentially, and a single-shard recovery service replaying
// each shard journal must re-derive every outcome and land on a
// byte-identical save image.
TEST(ShardStressTest, OutcomesMatchSingleShardOracle) {
  constexpr int kThreads = 4;
  constexpr int kSessionsPerThread = 2;
  constexpr int kOpsPerSession = 24;
  constexpr std::uint64_t kSeed = 0xA2C95F61D3B74E19ull;

  const std::string root = tmp_root("oracle");
  DesignService svc(DesignService::Config{2, 4, root});

  std::vector<std::string> names;
  std::vector<std::vector<Request>> scripts;
  for (int t = 0; t < kThreads; ++t) {
    for (int k = 0; k < kSessionsPerThread; ++k) {
      names.push_back("w" + std::to_string(t) + "_s" + std::to_string(k));
      scripts.push_back(make_script(
          kSeed ^ ShardedSessionManager::hash_of(names.back()), names.back(),
          kOpsPerSession));
    }
  }
  for (const auto& n : names) {
    ASSERT_TRUE(svc.call(make(RequestType::kOpen, n)).ok);
    ASSERT_TRUE(svc.call(make(RequestType::kJournal, n, n + " none")).ok);
    ASSERT_TRUE(svc.call(make(RequestType::kLoad, n, kPipeline)).ok);
  }

  // Concurrent phase: each thread drives its own sessions in script order.
  std::vector<std::vector<std::string>> outcomes(names.size());
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int k = 0; k < kSessionsPerThread; ++k) {
        const std::size_t idx =
            static_cast<std::size_t>(t * kSessionsPerThread + k);
        for (const Request& req : scripts[idx]) {
          outcomes[idx].push_back(outcome_of(req, svc.call(req)));
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  std::vector<std::string> images;
  std::vector<std::size_t> shard_of;
  for (const auto& n : names) {
    Response r = svc.call(make(RequestType::kSave, n));
    ASSERT_TRUE(r.ok) << r.error;
    images.push_back(r.text);
    shard_of.push_back(svc.sessions().shard_of(n));
    // Per-shard journal namespace: the log landed under <root>/shard-<i>/.
    EXPECT_TRUE(file_exists(root + "/shard-" +
                            std::to_string(shard_of.back()) + "/" + n +
                            ".journal"))
        << n;
  }
  for (const auto& n : names) {
    ASSERT_TRUE(svc.call(make(RequestType::kClose, n)).ok);
  }

  // Live oracle: the same scripts, sequentially, on a 1-shard service.
  DesignService oracle(DesignService::Config{1, 1, {}});
  for (std::size_t i = 0; i < names.size(); ++i) {
    ASSERT_TRUE(oracle.call(make(RequestType::kOpen, names[i])).ok);
    ASSERT_TRUE(oracle.call(make(RequestType::kLoad, names[i], kPipeline)).ok);
    for (std::size_t op = 0; op < scripts[i].size(); ++op) {
      EXPECT_EQ(outcomes[i][op],
                outcome_of(scripts[i][op], oracle.call(scripts[i][op])))
          << names[i] << " op " << op;
    }
    Response r = oracle.call(make(RequestType::kSave, names[i]));
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(images[i], r.text) << names[i];
  }

  // Recovery oracle: a 1-shard service replays each shard journal and must
  // re-derive every recorded outcome, ending byte-identical.
  DesignService replay(DesignService::Config{1, 1, {}});
  for (std::size_t i = 0; i < names.size(); ++i) {
    const std::string base =
        root + "/shard-" + std::to_string(shard_of[i]) + "/" + names[i];
    Response r = replay.call(make(RequestType::kRecover, names[i], base));
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_NE(r.text.find("0 outcome mismatch(es)"), std::string::npos)
        << r.text;
    r = replay.call(make(RequestType::kSave, names[i]));
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(images[i], r.text) << names[i];
  }
}

// A journal that dies in shard i degrades only shard i's session: shard j
// keeps serving with full durability, warning-free.
TEST(ShardStressTest, DeadJournalInOneShardDoesNotDegradeOthers) {
  const std::string root = tmp_root("dead");
  DesignService svc(DesignService::Config{1, 2, root});
  const std::string a = name_on_shard(svc.sessions(), 0, "a");
  const std::string b = name_on_shard(svc.sessions(), 1, "b");
  for (const auto& n : {a, b}) {
    ASSERT_TRUE(svc.call(make(RequestType::kOpen, n)).ok);
    ASSERT_TRUE(svc.call(make(RequestType::kJournal, n, n + " none")).ok);
    ASSERT_TRUE(svc.call(make(RequestType::kLoad, n, kPipeline)).ok);
  }
  {
    const auto sa = svc.sessions().find(a);
    ASSERT_NE(sa, nullptr);
    std::lock_guard<std::mutex> lk(sa->mutex());
    sa->journal()->set_fail_after(1);
  }

  Request ra = make(RequestType::kAssign, a);
  ra.assignments.push_back({"PIPE/s0.delay(in->out)", 50e-9});
  Response r = svc.call(ra);
  ASSERT_TRUE(r.ok) << r.error;  // in-memory session keeps serving
  EXPECT_NE(r.text.find("journal write failed"), std::string::npos) << r.text;

  // Shard 1 is untouched: mutations stay warning-free and checkpointable.
  for (double d : {40e-9, 41e-9, 42e-9}) {
    Request rb = make(RequestType::kAssign, b);
    rb.assignments.push_back({"PIPE/s0.delay(in->out)", d});
    r = svc.call(rb);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.text.find("journal write failed"), std::string::npos)
        << r.text;
  }
  EXPECT_TRUE(svc.call(make(RequestType::kCheckpoint, b)).ok);
  r = svc.call(make(RequestType::kCheckpoint, a));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("dead"), std::string::npos) << r.error;
}

// The no-global-lock acceptance test: wedge EVERY worker of shard 0 behind a
// session mutex the test holds, then require a shard-1 request to complete.
// If any mutating request took a global lock, the shard-1 call would hang
// behind the wedged workers and the test would never return.
TEST(ShardStressTest, BlockedShardDoesNotStallOthers) {
  constexpr std::size_t kWorkersPerShard = 2;
  DesignService svc(DesignService::Config{kWorkersPerShard, 2, {}});
  const std::string a = name_on_shard(svc.sessions(), 0, "a");
  const std::string b = name_on_shard(svc.sessions(), 1, "b");
  for (const auto& n : {a, b}) {
    ASSERT_TRUE(svc.call(make(RequestType::kOpen, n)).ok);
    ASSERT_TRUE(svc.call(make(RequestType::kLoad, n, kPipeline)).ok);
  }

  const auto sa = svc.sessions().find(a);
  ASSERT_NE(sa, nullptr);
  std::unique_lock<std::mutex> wedge(sa->mutex());

  const std::uint64_t dequeued0 = svc.sessions().stats(0).dequeued;
  std::vector<std::future<Response>> stuck;
  for (std::size_t i = 0; i < kWorkersPerShard; ++i) {
    Request r = make(RequestType::kAssign, a);
    r.assignments.push_back(
        {"PIPE/s0.delay(in->out)", 50e-9 + static_cast<double>(i) * 1e-9});
    stuck.push_back(svc.submit(std::move(r)));
  }
  // Both shard-0 workers have dequeued and are now blocked on the wedge
  // (atomic counter poll, no sleeps).
  while (svc.sessions().stats(0).dequeued < dequeued0 + kWorkersPerShard) {
    std::this_thread::yield();
  }

  // Shard 1 must be fully live: lifecycle, mutation, and query verbs all
  // complete while shard 0 is wedged.
  Request rb = make(RequestType::kAssign, b);
  rb.assignments.push_back({"PIPE/s0.delay(in->out)", 60e-9});
  Response r = svc.call(rb);
  ASSERT_TRUE(r.ok) << r.error;
  r = svc.call(make(RequestType::kQuery, b, "PIPE.delay(in->out)"));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(r.text.find("PIPE.delay"), std::string::npos) << r.text;
  EXPECT_TRUE(svc.call(make(RequestType::kOpen, name_on_shard(
                                                    svc.sessions(), 1, "c")))
                  .ok);

  wedge.unlock();
  for (auto& f : stuck) {
    const Response resp = f.get();
    EXPECT_TRUE(resp.ok) << resp.error;
  }
}

// Close-vs-request hammer: concurrent close (with metrics fold) against
// in-flight mutations and queries on the same session, with steady traffic
// on the other shard so cross-shard folds overlap session teardown.  Every
// future must resolve to ok or "unknown session" — nothing hangs, nothing
// crashes, and the registry is empty-for-that-name at round end.  This is
// the regression test for the close / metrics-fold race window; it runs
// under TSan via TSAN_FILTER in tools/run_tier1.sh.
TEST(ShardStressTest, CloseVsRequestHammer) {
  constexpr int kRounds = 30;
  constexpr std::uint64_t kSeed = 0x6E1B8D24F9A35C07ull;
  DesignService svc(DesignService::Config{2, 2, {}});
  const std::string h = name_on_shard(svc.sessions(), 0, "h");
  const std::string g = name_on_shard(svc.sessions(), 1, "g");

  // Background traffic on the other shard for the whole hammer.
  ASSERT_TRUE(svc.call(make(RequestType::kOpen, g, "metrics")).ok);
  ASSERT_TRUE(svc.call(make(RequestType::kLoad, g, kPipeline)).ok);
  std::atomic<bool> stop{false};
  std::thread background([&] {
    double d = 10e-9;
    while (!stop.load(std::memory_order_relaxed)) {
      d += 1e-9;
      Request r = make(RequestType::kAssign, g);
      r.assignments.push_back({"PIPE/s0.delay(in->out)", d});
      svc.call(r);
      svc.call(make(RequestType::kQuery, g, "PIPE.delay(in->out)"));
    }
  });

  Rng rng(kSeed);
  for (int round = 0; round < kRounds; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    ASSERT_TRUE(svc.call(make(RequestType::kOpen, h, "metrics")).ok);
    ASSERT_TRUE(svc.call(make(RequestType::kLoad, h, kPipeline)).ok);

    std::vector<std::future<Response>> inflight;
    double d = 20e-9 + static_cast<double>(round) * 1e-9;
    const auto burst = [&](int n) {
      for (int i = 0; i < n; ++i) {
        const std::uint64_t kind = rng.next() % 3;
        if (kind == 0) {
          Request r = make(RequestType::kAssign, h);
          d += 1e-9;
          r.assignments.push_back({"PIPE/s0.delay(in->out)", d});
          inflight.push_back(svc.submit(std::move(r)));
        } else if (kind == 1) {
          inflight.push_back(
              svc.submit(make(RequestType::kQuery, h, "cells")));
        } else {
          inflight.push_back(svc.submit(make(RequestType::kSave, h)));
        }
      }
    };
    burst(4);
    std::future<Response> close1 = svc.submit(make(RequestType::kClose, h));
    burst(4);
    std::future<Response> close2 = svc.submit(make(RequestType::kClose, h));

    for (auto& f : inflight) {
      const Response resp = f.get();
      EXPECT_TRUE(resp.ok ||
                  resp.error.find("unknown session") != std::string::npos)
          << resp.error;
    }
    // Exactly one close wins; the other (they execute concurrently on the
    // shard's two workers) sees the session already gone.
    const Response c1 = close1.get();
    const Response c2 = close2.get();
    EXPECT_NE(c1.ok, c2.ok) << c1.error << " / " << c2.error;
    const Response& lost = c1.ok ? c2 : c1;
    EXPECT_NE(lost.error.find("unknown session"), std::string::npos)
        << lost.error;
    EXPECT_EQ(svc.sessions().find(h), nullptr);
  }

  stop.store(true, std::memory_order_relaxed);
  background.join();
  ASSERT_TRUE(svc.call(make(RequestType::kClose, g)).ok);
  EXPECT_EQ(svc.sessions().size(), 0u);
}

}  // namespace
}  // namespace stemcp::service
