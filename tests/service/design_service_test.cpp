// DesignService tests: session lifecycle, batched vs sequential assignment
// equivalence, violation recovery, and the multi-thread smoke test that the
// ThreadSanitizer tier-1 pass (tools/run_tier1.sh --tsan) runs over.
#include "service/design_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/core.h"
#include "stem/stem.h"

namespace stemcp::service {
namespace {

constexpr double kNs = 1e-9;

// A two-stage pipeline with a 160 ns budget on the composite delay; the
// same shape as the thesis Fig 5.2 accumulator.
const char* kPipeline = R"(cell STAGE
  signal in input
  signal out output
  delay in out
end
cell PIPE
  signal in input
  signal out output
  delay in out
    spec <= 160e-9
  subcell s0 STAGE R0 0 0
  subcell s1 STAGE R0 10 0
  net n_in
    io in
    conn s0 in
  net n_mid
    conn s0 out
    conn s1 in
  net n_out
    conn s1 out
    io out
end
)";

Request make(RequestType t, const std::string& session, std::string text = {}) {
  Request r;
  r.type = t;
  r.session = session;
  r.text = std::move(text);
  return r;
}

Request assign(RequestType t, const std::string& session,
               std::vector<Assignment> as) {
  Request r;
  r.type = t;
  r.session = session;
  r.assignments = std::move(as);
  return r;
}

double value_of(DesignService& svc, const std::string& session,
                const std::string& path) {
  auto s = svc.sessions().find(session);
  EXPECT_NE(s, nullptr);
  core::Variable* v = s->find_variable(path);
  EXPECT_NE(v, nullptr) << path;
  return v->value().as_number();
}

TEST(DesignServiceTest, SessionLifecycle) {
  DesignService svc(2);
  Response r = svc.call(make(RequestType::kOpen, "alpha"));
  ASSERT_TRUE(r.ok) << r.error;

  r = svc.call(make(RequestType::kLoad, "alpha", kPipeline));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(r.text.find("2 cell(s)"), std::string::npos) << r.text;

  r = svc.call(assign(RequestType::kAssign, "alpha",
                      {{"PIPE/s0.delay(in->out)", 40 * kNs}}));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.violation);
  EXPECT_EQ(r.assignments_applied, 1u);

  r = svc.call(make(RequestType::kQuery, "alpha", "PIPE/s0.delay(in->out)"));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(r.text.find("4e-08"), std::string::npos) << r.text;

  r = svc.call(make(RequestType::kQuery, "alpha", "cells"));
  ASSERT_TRUE(r.ok);
  EXPECT_NE(r.text.find("PIPE"), std::string::npos);

  r = svc.call(make(RequestType::kSave, "alpha"));
  ASSERT_TRUE(r.ok);
  EXPECT_NE(r.text.find("cell STAGE"), std::string::npos) << r.text;

  r = svc.call(make(RequestType::kReport, "alpha", "PIPE"));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(r.text.find("PIPE"), std::string::npos);

  r = svc.call(make(RequestType::kClose, "alpha"));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(svc.sessions().size(), 0u);

  // Requests against a closed session fail cleanly.
  r = svc.call(make(RequestType::kQuery, "alpha", "cells"));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown session"), std::string::npos);
}

TEST(DesignServiceTest, RequestErrors) {
  DesignService svc(1);
  ASSERT_TRUE(svc.call(make(RequestType::kOpen, "a")).ok);

  Response r = svc.call(make(RequestType::kOpen, "a"));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("already exists"), std::string::npos);

  r = svc.call(make(RequestType::kOpen, ""));
  EXPECT_FALSE(r.ok);

  r = svc.call(make(RequestType::kOpen, "b", "bogus-option"));
  EXPECT_FALSE(r.ok);

  r = svc.call(make(RequestType::kLoad, "a", "cell X\nbad keyword\nend\n"));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("line 2"), std::string::npos) << r.error;

  // A failed load leaves the (empty) library untouched.
  r = svc.call(make(RequestType::kQuery, "a", "cells"));
  ASSERT_TRUE(r.ok);
  EXPECT_NE(r.text.find("0 cell(s)"), std::string::npos) << r.text;

  r = svc.call(assign(RequestType::kAssign, "a", {{"NO.SUCH.VAR", 1.0}}));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown variable"), std::string::npos);

  r = svc.call(make(RequestType::kClose, "zzz"));
  EXPECT_FALSE(r.ok);
}

TEST(DesignServiceTest, BatchedMatchesSequentialAndUsesOneWave) {
  DesignService svc(2);
  ASSERT_TRUE(svc.call(make(RequestType::kOpen, "seq")).ok);
  ASSERT_TRUE(svc.call(make(RequestType::kOpen, "bat")).ok);
  ASSERT_TRUE(svc.call(make(RequestType::kLoad, "seq", kPipeline)).ok);
  ASSERT_TRUE(svc.call(make(RequestType::kLoad, "bat", kPipeline)).ok);

  const std::vector<Assignment> as = {{"PIPE/s0.delay(in->out)", 40 * kNs},
                                      {"PIPE/s1.delay(in->out)", 70 * kNs}};

  const auto sessions_before = [&](const std::string& name) {
    return svc.sessions().find(name)->library().context().stats().sessions;
  };
  const std::uint64_t seq0 = sessions_before("seq");
  const std::uint64_t bat0 = sessions_before("bat");

  Response rs = svc.call(assign(RequestType::kAssign, "seq", as));
  Response rb = svc.call(assign(RequestType::kBatchAssign, "bat", as));
  ASSERT_TRUE(rs.ok) << rs.error;
  ASSERT_TRUE(rb.ok) << rb.error;
  EXPECT_FALSE(rs.violation);
  EXPECT_FALSE(rb.violation);
  EXPECT_EQ(rs.assignments_applied, 2u);
  EXPECT_EQ(rb.assignments_applied, 2u);

  // Same final state...
  for (const char* path : {"PIPE/s0.delay(in->out)", "PIPE/s1.delay(in->out)",
                           "PIPE.delay(in->out)"}) {
    EXPECT_DOUBLE_EQ(value_of(svc, "seq", path), value_of(svc, "bat", path))
        << path;
  }
  EXPECT_DOUBLE_EQ(value_of(svc, "bat", "PIPE.delay(in->out)"), 110 * kNs);

  // ...but the batch coalesced everything into ONE propagation session
  // where the sequential request opened one per assignment.
  EXPECT_EQ(sessions_before("seq") - seq0, 2u);
  EXPECT_EQ(sessions_before("bat") - bat0, 1u);
}

TEST(DesignServiceTest, BatchViolationRestoresWholeWave) {
  DesignService svc(2);
  ASSERT_TRUE(svc.call(make(RequestType::kOpen, "v")).ok);
  ASSERT_TRUE(svc.call(make(RequestType::kLoad, "v", kPipeline)).ok);

  // 90 + 90 = 180 ns blows the 160 ns budget: the whole batch must unwind,
  // including the first (individually fine) assignment.
  Response r = svc.call(assign(RequestType::kBatchAssign, "v",
                               {{"PIPE/s0.delay(in->out)", 90 * kNs},
                                {"PIPE/s1.delay(in->out)", 90 * kNs}}));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.violation);
  EXPECT_FALSE(r.violation_message.empty());
  EXPECT_EQ(r.assignments_applied, 0u);
  EXPECT_GT(r.variables_restored, 0u);

  auto s = svc.sessions().find("v");
  EXPECT_TRUE(s->find_variable("PIPE/s0.delay(in->out)")->value().is_nil());
  EXPECT_TRUE(s->find_variable("PIPE/s1.delay(in->out)")->value().is_nil());
}

TEST(DesignServiceTest, EditCommandsBuildADesign) {
  DesignService svc(2);
  ASSERT_TRUE(svc.call(make(RequestType::kOpen, "e")).ok);
  const char* steps[] = {
      "cell STAGE",
      "signal STAGE in input",
      "signal STAGE out output",
      "delay STAGE in out",
      "cell TOP",
      "signal TOP in input",
      "signal TOP out output",
      "spec TOP in out <= 100e-9",
      "subcell TOP u0 STAGE",
      "net TOP n_in",
      "io TOP n_in in",
      "conn TOP n_in u0 in",
      "net TOP n_out",
      "conn TOP n_out u0 out",
      "io TOP n_out out",
      "build-delays TOP",
  };
  for (const char* step : steps) {
    Response r = svc.call(make(RequestType::kEdit, "e", step));
    ASSERT_TRUE(r.ok) << step << ": " << r.error;
  }
  Response r = svc.call(assign(RequestType::kBatchAssign, "e",
                               {{"TOP/u0.delay(in->out)", 120 * kNs}}));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.violation);  // 120 ns > 100 ns budget

  r = svc.call(assign(RequestType::kBatchAssign, "e",
                      {{"TOP/u0.delay(in->out)", 80 * kNs}}));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.violation);
  EXPECT_DOUBLE_EQ(value_of(svc, "e", "TOP.delay(in->out)"), 80 * kNs);

  r = svc.call(make(RequestType::kEdit, "e", "leaf-delay STAGE in out 30e-9"));
  ASSERT_TRUE(r.ok) << r.error;

  r = svc.call(make(RequestType::kEdit, "e", "bogus"));
  EXPECT_FALSE(r.ok);
}

TEST(DesignServiceTest, CloseFoldsSessionMetricsIntoGlobal) {
  core::reset_global_metrics();
  {
    DesignService svc(2);
    ASSERT_TRUE(svc.call(make(RequestType::kOpen, "m", "metrics")).ok);
    ASSERT_TRUE(svc.call(make(RequestType::kLoad, "m", kPipeline)).ok);
    ASSERT_TRUE(svc.call(assign(RequestType::kBatchAssign, "m",
                                {{"PIPE/s0.delay(in->out)", 10 * kNs}}))
                    .ok);
    ASSERT_TRUE(svc.call(make(RequestType::kClose, "m")).ok);
  }
  const std::string json = core::global_metrics_json();
  EXPECT_NE(json.find("ctx.sessions"), std::string::npos) << json;
  EXPECT_NE(json.find("ctx.assignments"), std::string::npos) << json;
}

// The TSan target: ≥4 client threads driving ≥12 sessions through mixed
// load / assign / edit / query / save traffic.  Values are per-session
// distinct so any cross-session bleed shows up as a wrong final value.
TEST(DesignServiceTest, MultiThreadSmoke) {
  constexpr int kThreads = 4;
  constexpr int kSessionsPerThread = 3;  // 12 sessions total
  DesignService svc(4);

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&svc, &failures, t] {
      for (int i = 0; i < kSessionsPerThread; ++i) {
        const std::string name =
            "t" + std::to_string(t) + "s" + std::to_string(i);
        const double d = (10 + 3 * t + i) * kNs;
        bool ok = svc.call(make(RequestType::kOpen, name, "metrics")).ok;
        ok = ok && svc.call(make(RequestType::kLoad, name, kPipeline)).ok;
        ok = ok && svc.call(make(RequestType::kEdit, name,
                                 "param STAGE width 1 64 default 8"))
                       .ok;
        Response ra =
            svc.call(assign(RequestType::kBatchAssign, name,
                            {{"PIPE/s0.delay(in->out)", d},
                             {"PIPE/s1.delay(in->out)", 2 * d}}));
        ok = ok && ra.ok && !ra.violation;
        Response rq =
            svc.call(make(RequestType::kQuery, name, "PIPE.delay(in->out)"));
        ok = ok && rq.ok;
        Response rs = svc.call(make(RequestType::kSave, name));
        ok = ok && rs.ok &&
             rs.text.find("cell PIPE") != std::string::npos;
        if (!ok) failures.fetch_add(1);
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0);

  // Zero cross-session interference: every session kept its own values.
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kSessionsPerThread; ++i) {
      const std::string name =
          "t" + std::to_string(t) + "s" + std::to_string(i);
      const double d = (10 + 3 * t + i) * kNs;
      EXPECT_DOUBLE_EQ(value_of(svc, name, "PIPE/s0.delay(in->out)"), d);
      EXPECT_DOUBLE_EQ(value_of(svc, name, "PIPE.delay(in->out)"), 3 * d);
      ASSERT_TRUE(svc.call(make(RequestType::kClose, name)).ok);
    }
  }
  EXPECT_EQ(svc.sessions().size(), 0u);
  EXPECT_GE(svc.requests_served(), kThreads * kSessionsPerThread * 6u);
}

TEST(DesignServiceTest, SubmitIsAsynchronous) {
  DesignService svc(4);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 16; ++i) {
    futs.push_back(
        svc.submit(make(RequestType::kOpen, "s" + std::to_string(i))));
  }
  for (auto& f : futs) EXPECT_TRUE(f.get().ok);
  EXPECT_EQ(svc.sessions().size(), 16u);
}

}  // namespace
}  // namespace stemcp::service
