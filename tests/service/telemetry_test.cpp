// Request-telemetry tests: span lifecycle (phase stamps monotone, queue wait
// measured under a saturated pool), lane folding and percentile views, the
// Prometheus exposition, and flight-recorder dumps triggered by slow
// requests and journal faults.
#include "service/telemetry.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "persist/journal.h"
#include "service/design_service.h"

namespace stemcp::service {
namespace {

const char* kPipeline = R"(cell STAGE
  signal in input
  signal out output
  delay in out
end
cell PIPE
  signal in input
  signal out output
  delay in out
    spec <= 160e-9
  subcell s0 STAGE R0 0 0
  subcell s1 STAGE R0 10 0
  net n_in
    io in
    conn s0 in
  net n_mid
    conn s0 out
    conn s1 in
  net n_out
    conn s1 out
    io out
end
)";

Request make(RequestType t, const std::string& session, std::string text = {}) {
  Request r;
  r.type = t;
  r.session = session;
  r.text = std::move(text);
  return r;
}

Request assign_one(const std::string& session, double value) {
  Request r;
  r.type = RequestType::kAssign;
  r.session = session;
  r.assignments.push_back({"PIPE/s0.delay(in->out)", value});
  return r;
}

std::string temp_base(const std::string& name) {
  return testing::TempDir() + "stemcp_telemetry_test_" + name;
}

void cleanup(const std::string& base) {
  std::remove((base + ".journal").c_str());
  std::remove((base + ".ckpt").c_str());
}

const RequestSpan* find_span(const std::vector<RequestSpan>& spans,
                             RequestType type) {
  for (const RequestSpan& s : spans) {
    if (s.type == static_cast<std::uint8_t>(type)) return &s;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Span lifecycle

TEST(TelemetrySpanTest, PhaseStampsAreMonotoneAndComplete) {
  DesignService svc(2);
  ASSERT_TRUE(svc.call(make(RequestType::kOpen, "a")).ok);
  ASSERT_TRUE(svc.call(make(RequestType::kLoad, "a", kPipeline)).ok);
  ASSERT_TRUE(svc.call(assign_one("a", 10e-9)).ok);

  const std::vector<RequestSpan> spans = svc.telemetry().recent_spans();
  ASSERT_EQ(spans.size(), 3u);
  // Oldest request id first, and ids are unique and increasing.
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_LT(spans[i - 1].request_id, spans[i].request_id);
  }
  const RequestSpan* s = find_span(spans, RequestType::kAssign);
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->ok);
  EXPECT_FALSE(s->violation);
  EXPECT_EQ(s->session_view(), "a");
  EXPECT_LT(s->lane, 2);
  // Every boundary stamped, in wall-clock order.
  EXPECT_GT(s->t_enqueue, 0u);
  EXPECT_GE(s->t_dequeue, s->t_enqueue);
  EXPECT_GE(s->t_lock, s->t_dequeue);
  EXPECT_GE(s->t_work_done, s->t_lock);
  EXPECT_GE(s->t_reply, s->t_work_done);
  EXPECT_EQ(s->t_journal_done, 0u) << "no journal attached";
  // Derived durations agree with the stamps.
  EXPECT_EQ(s->phase_ns(Phase::kQueue), s->t_dequeue - s->t_enqueue);
  EXPECT_EQ(s->phase_ns(Phase::kPropagate), s->t_work_done - s->t_lock);
  EXPECT_EQ(s->phase_ns(Phase::kJournal), 0u);
  EXPECT_EQ(s->phase_ns(Phase::kFsync), 0u);
  EXPECT_EQ(s->total_ns(), s->t_reply - s->t_enqueue);
  std::uint64_t phase_total = 0;
  for (std::size_t p = 0; p + 1 < kPhaseCount; ++p) {
    phase_total += s->phase_ns(static_cast<Phase>(p));
  }
  EXPECT_EQ(phase_total, s->total_ns()) << "phases partition the span";
}

TEST(TelemetrySpanTest, QueueWaitMeasuredUnderSaturatedPool) {
  // One worker: while a slow edit executes, a second request MUST sit in the
  // queue, so its queue phase is an honest wall-clock wait, not ~0.
  DesignService svc(1);
  ASSERT_TRUE(svc.call(make(RequestType::kOpen, "q")).ok);
  ASSERT_TRUE(svc.call(make(RequestType::kLoad, "q", kPipeline)).ok);

  // A pile of requests submitted back-to-back: the FIFO guarantees each
  // waits at least as long as its predecessors' execution.
  std::vector<std::future<Response>> inflight;
  for (int i = 0; i < 8; ++i) {
    inflight.push_back(svc.submit(assign_one("q", (i + 1) * 1e-9)));
  }
  for (auto& f : inflight) ASSERT_TRUE(f.get().ok);

  const std::vector<RequestSpan> spans = svc.telemetry().recent_spans();
  ASSERT_GE(spans.size(), 10u);
  // The LAST of the burst queued behind 7 predecessors.
  const RequestSpan& last = spans.back();
  EXPECT_GT(last.phase_ns(Phase::kQueue), 0u)
      << "queue wait must be visible under a saturated 1-worker pool";
  // And queue wait dominates its own lock wait (same-session FIFO: the lock
  // is free by the time the single worker picks it up).
  EXPECT_GE(last.phase_ns(Phase::kQueue), last.phase_ns(Phase::kLock));
}

TEST(TelemetrySpanTest, JournaledRequestSplitsJournalAndFsyncPhases) {
  const std::string base = temp_base("phases");
  cleanup(base);
  DesignService svc(2);
  ASSERT_TRUE(svc.call(make(RequestType::kOpen, "j")).ok);
  ASSERT_TRUE(svc.call(make(RequestType::kLoad, "j", kPipeline)).ok);
  ASSERT_TRUE(
      svc.call(make(RequestType::kJournal, "j", base + " every-record")).ok);
  ASSERT_TRUE(svc.call(assign_one("j", 5e-9)).ok);

  const std::vector<RequestSpan> spans = svc.telemetry().recent_spans();
  const RequestSpan* s = &spans.back();
  ASSERT_EQ(s->type, static_cast<std::uint8_t>(RequestType::kAssign));
  EXPECT_GE(s->t_journal_done, s->t_work_done);
  EXPECT_GT(s->phase_ns(Phase::kFsync), 0u) << "every-record policy fsyncs";
  EXPECT_LE(s->fsync_ns, s->t_journal_done - s->t_work_done)
      << "fsync is part of the journal wall time";
  EXPECT_FALSE(s->journal_fault);

  // The folded registry now has journal + fsync histograms with exactly the
  // journaled mutations counted.
  const core::MetricsRegistry reg = svc.telemetry().fold();
  const core::Histogram* fsync = reg.find_histogram("svc.lat.fsync_ns");
  ASSERT_NE(fsync, nullptr);
  EXPECT_EQ(fsync->count(), 1u) << "only the assign after attach journaled";
  cleanup(base);
}

TEST(TelemetrySpanTest, DisabledTelemetryRecordsNothing) {
  DesignService svc(2);
  svc.telemetry().set_enabled(false);
  ASSERT_TRUE(svc.call(make(RequestType::kOpen, "off")).ok);
  ASSERT_TRUE(svc.call(make(RequestType::kLoad, "off", kPipeline)).ok);
  EXPECT_EQ(svc.telemetry().requests_recorded(), 0u);
  EXPECT_TRUE(svc.telemetry().recent_spans().empty());
  svc.telemetry().set_enabled(true);
  ASSERT_TRUE(svc.call(assign_one("off", 1e-9)).ok);
  EXPECT_EQ(svc.telemetry().requests_recorded(), 1u);
}

// ---------------------------------------------------------------------------
// Aggregated views

TEST(TelemetryViewsTest, FoldLatencyTableAndPrometheus) {
  DesignService svc(2);
  ASSERT_TRUE(svc.call(make(RequestType::kOpen, "v")).ok);
  ASSERT_TRUE(svc.call(make(RequestType::kLoad, "v", kPipeline)).ok);
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(svc.call(assign_one("v", i * 1e-9)).ok);
  }

  const core::MetricsRegistry reg = svc.telemetry().fold();
  EXPECT_EQ(reg.counter("svc.telemetry.requests"), 7u);
  const core::Histogram* total = reg.find_histogram("svc.lat.total_ns");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->count(), 7u);
  const core::Histogram* by_type =
      reg.find_histogram("svc.lat.e2e.assign_ns");
  ASSERT_NE(by_type, nullptr);
  EXPECT_EQ(by_type->count(), 5u);
  EXPECT_GT(total->percentile(50.0), 0u);
  EXPECT_LE(total->percentile(50.0), total->percentile(99.9));

  const std::string table = svc.telemetry().latency_table();
  EXPECT_NE(table.find("p50"), std::string::npos) << table;
  EXPECT_NE(table.find("p999"), std::string::npos) << table;
  EXPECT_NE(table.find("queue"), std::string::npos) << table;
  EXPECT_NE(table.find("propagate"), std::string::npos) << table;
  EXPECT_NE(table.find("assign"), std::string::npos) << table;

  const std::string prom = svc.telemetry().prometheus();
  EXPECT_NE(prom.find("stemcp_svc_lat_total_ns_bucket{le="),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("stemcp_svc_lat_total_ns_count 7"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("le=\"+Inf\"} 7"), std::string::npos) << prom;
  EXPECT_NE(prom.find("stemcp_svc_telemetry_requests 7"), std::string::npos)
      << prom;
}

TEST(TelemetryViewsTest, ChromeTraceEventsFromSpan) {
  RequestSpan span;
  span.request_id = 42;
  span.type = static_cast<std::uint8_t>(RequestType::kAssign);
  span.lane = 1;
  span.ok = true;
  span.set_session("tracey");
  span.t_enqueue = 1000;
  span.t_dequeue = 2000;
  span.t_lock = 2500;
  span.t_work_done = 5000;
  span.t_journal_done = 6000;
  span.fsync_ns = 400;
  span.t_reply = 6100;

  std::string out;
  bool first = true;
  append_span_trace_events(span, out, first);
  EXPECT_NE(out.find("\"name\":\"request\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"name\":\"queue\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"name\":\"propagate\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"name\":\"journal\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"name\":\"fsync\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"tid\":1"), std::string::npos) << out;
  EXPECT_NE(out.find("\"id\":42"), std::string::npos) << out;
  EXPECT_NE(out.find("\"session\":\"tracey\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"type\":\"assign\""), std::string::npos) << out;
}

// ---------------------------------------------------------------------------
// Flight recorder

TEST(FlightRecorderTest, DumpsOnSlowRequest) {
  DesignService svc(2);
  ASSERT_TRUE(svc.call(make(RequestType::kOpen, "slow")).ok);
  ASSERT_TRUE(svc.call(make(RequestType::kLoad, "slow", kPipeline)).ok);
  ASSERT_TRUE(svc.call(assign_one("slow", 1e-9)).ok);
  EXPECT_EQ(svc.telemetry().anomalies(), 0u) << "disarmed: no anomaly checks";

  // 1 ns threshold: the next request is guaranteed "slow".
  svc.telemetry().arm_flight("", 1);
  ASSERT_TRUE(svc.call(assign_one("slow", 2e-9)).ok);
  EXPECT_GE(svc.telemetry().anomalies(), 1u);
  EXPECT_GE(svc.telemetry().dumps(), 1u);
  EXPECT_EQ(svc.telemetry().last_dump_reason(), "slow-request");
  const std::string dump = svc.telemetry().last_dump();
  EXPECT_NE(dump.find("\"reason\":\"slow-request\""), std::string::npos);
  EXPECT_NE(dump.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(dump.find("\"name\":\"request\""), std::string::npos)
      << "retained spans serialize as trace events";

  // Disarm: anomalies stop registering.
  const std::uint64_t anomalies = svc.telemetry().anomalies();
  svc.telemetry().disarm_flight();
  ASSERT_TRUE(svc.call(assign_one("slow", 3e-9)).ok);
  EXPECT_EQ(svc.telemetry().anomalies(), anomalies);
}

TEST(FlightRecorderTest, DumpsOnJournalFault) {
  const std::string base = temp_base("fault");
  cleanup(base);
  DesignService svc(2);
  ASSERT_TRUE(svc.call(make(RequestType::kOpen, "f")).ok);
  ASSERT_TRUE(svc.call(make(RequestType::kLoad, "f", kPipeline)).ok);
  ASSERT_TRUE(
      svc.call(make(RequestType::kJournal, "f", base + " every-record")).ok);
  svc.telemetry().arm_flight("", 0);

  // Cut the journal's write path: the next mutation's append dies mid-write.
  svc.sessions().find("f")->journal()->set_fail_after(4);
  const Response r = svc.call(assign_one("f", 5e-9));
  ASSERT_TRUE(r.ok);
  EXPECT_NE(r.text.find("no longer durable"), std::string::npos);

  EXPECT_GE(svc.telemetry().dumps(), 1u);
  EXPECT_EQ(svc.telemetry().last_dump_reason(), "journal-dead");
  const std::vector<RequestSpan> spans = svc.telemetry().recent_spans();
  ASSERT_FALSE(spans.empty());
  EXPECT_TRUE(spans.back().journal_fault);

  // Later mutations against the already-dead journal are NOT new anomalies
  // (one fault, one dump — not a dump storm).
  const std::uint64_t dumps = svc.telemetry().dumps();
  ASSERT_TRUE(svc.call(assign_one("f", 6e-9)).ok);
  EXPECT_EQ(svc.telemetry().dumps(), dumps);
  cleanup(base);
}

TEST(FlightRecorderTest, DumpFilesWrittenToBase) {
  const std::string dump_base = testing::TempDir() + "stemcp_flight_dump";
  std::remove((dump_base + ".0.trace.json").c_str());
  DesignService svc(1);
  ASSERT_TRUE(svc.call(make(RequestType::kOpen, "d")).ok);
  ASSERT_TRUE(svc.call(make(RequestType::kLoad, "d", kPipeline)).ok);
  svc.telemetry().arm_flight(dump_base, 1);
  ASSERT_TRUE(svc.call(assign_one("d", 1e-9)).ok);
  ASSERT_GE(svc.telemetry().dumps(), 1u);

  std::ifstream in(dump_base + ".0.trace.json");
  ASSERT_TRUE(in.good()) << "dump file must exist";
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("\"traceEvents\":["), std::string::npos);
  std::remove((dump_base + ".0.trace.json").c_str());
}

TEST(FlightRecorderTest, ManualDumpAndRingCapacity) {
  TelemetryRecorder::Config cfg;
  cfg.flight_capacity = 4;
  TelemetryRecorder rec(1, cfg);
  RequestSpan span;
  span.set_session("ring");
  for (int i = 0; i < 10; ++i) {
    span.request_id = rec.next_request_id();
    span.t_enqueue = 100 * (i + 1);
    span.t_reply = span.t_enqueue + 50;
    rec.record(0, span);
  }
  // The ring keeps only the newest 4 spans.
  const std::vector<RequestSpan> spans = rec.recent_spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans.front().request_id, 7u);
  EXPECT_EQ(spans.back().request_id, 10u);

  const std::string doc = rec.dump_flight("manual");
  EXPECT_NE(doc.find("\"reason\":\"manual\""), std::string::npos);
  EXPECT_EQ(rec.dumps(), 1u);
  EXPECT_EQ(rec.last_dump_reason(), "manual");
}

// ---------------------------------------------------------------------------
// Fold correctness under sharding

void expect_histograms_identical(const core::Histogram& a,
                                 const core::Histogram& b,
                                 const std::string& name) {
  EXPECT_EQ(a.count(), b.count()) << name;
  EXPECT_EQ(a.sum(), b.sum()) << name;
  EXPECT_EQ(a.min(), b.min()) << name;
  EXPECT_EQ(a.max(), b.max()) << name;
  EXPECT_EQ(a.buckets(), b.buckets()) << name;
  for (const double p : {50.0, 90.0, 99.0, 99.9}) {
    EXPECT_EQ(a.percentile(p), b.percentile(p)) << name << " p" << p;
  }
}

// Property: a recorder with N shard-grouped lanes folds to EXACTLY the same
// svc.lat.* views as one lane fed the union of the same spans.  Lane folds
// merge raw log2 buckets (Histogram::from_parts snapshots), and bucket
// addition is associative and commutative, so this must hold exactly —
// count-for-count and bucket-for-bucket, not merely within percentile
// tolerance.  This is the invariant that makes per-shard telemetry
// trustworthy: sharding the service cannot change what the fold reports.
TEST(TelemetryViewsTest, ShardedFoldEqualsSingleRecorderFoldOfUnion) {
  TelemetryRecorder::Config sharded_cfg;
  sharded_cfg.lanes_per_shard = 2;
  TelemetryRecorder sharded(8, sharded_cfg);  // 4 shards x 2 lanes
  TelemetryRecorder::Config single_cfg;
  single_cfg.lanes_per_shard = 1;
  TelemetryRecorder single(1, single_cfg);  // one lane, one implicit shard

  // Seeded xorshift: the span stream is identical on every run.
  std::uint64_t seed = 0x2F7B1D3A9E4C6B5Full;
  auto next = [&seed] {
    seed ^= seed << 13;
    seed ^= seed >> 7;
    seed ^= seed << 17;
    return seed;
  };
  constexpr int kSpans = 512;
  for (int i = 0; i < kSpans; ++i) {
    RequestSpan s;
    s.request_id = static_cast<std::uint64_t>(i + 1);
    s.type = static_cast<std::uint8_t>(next() % kSpanTypeCount);
    s.ok = true;
    s.violation = next() % 8 == 0;
    s.set_session("p" + std::to_string(next() % 5));
    s.t_enqueue = 1000 + next() % 1000;
    s.t_dequeue = s.t_enqueue + next() % 10000;
    s.t_lock = s.t_dequeue + next() % 5000;
    s.t_work_done = s.t_lock + next() % 100000;
    if (next() % 2 == 0) {  // journaled half: journal + fsync phases exist
      s.t_journal_done = s.t_work_done + 1 + next() % 20000;
      s.fsync_ns = next() % 8000;
      s.t_reply = s.t_journal_done + next() % 1000;
    } else {
      s.t_reply = s.t_work_done + next() % 1000;
    }
    const std::size_t lane = next() % 8;
    s.lane = static_cast<std::uint8_t>(lane);
    s.shard = static_cast<std::uint8_t>(lane / 2);
    sharded.record(lane, s);
    single.record(0, s);
  }

  const core::MetricsRegistry a = sharded.fold();
  const core::MetricsRegistry b = single.fold();

  static const Phase kPhases[] = {Phase::kQueue,   Phase::kLock,
                                  Phase::kPropagate, Phase::kJournal,
                                  Phase::kFsync,   Phase::kReply,
                                  Phase::kTotal};
  for (const Phase p : kPhases) {
    const std::string name = std::string("svc.lat.") + to_string(p) + "_ns";
    const core::Histogram* ha = a.find_histogram(name);
    const core::Histogram* hb = b.find_histogram(name);
    ASSERT_NE(ha, nullptr) << name;
    ASSERT_NE(hb, nullptr) << name;
    expect_histograms_identical(*ha, *hb, name);
  }
  for (std::size_t t = 0; t < kSpanTypeCount; ++t) {
    const std::string name =
        std::string("svc.lat.e2e.") +
        span_type_name(static_cast<std::uint8_t>(t)) + "_ns";
    const core::Histogram* ha = a.find_histogram(name);
    const core::Histogram* hb = b.find_histogram(name);
    ASSERT_EQ(ha == nullptr, hb == nullptr) << name;
    if (ha != nullptr) expect_histograms_identical(*ha, *hb, name);
  }

  // The per-shard rollups partition the union: request counts sum to the
  // total, and merging the four shard e2e histograms reproduces the global
  // total-phase histogram exactly.
  std::uint64_t shard_requests = 0;
  core::Histogram shard_e2e;
  for (int sidx = 0; sidx < 4; ++sidx) {
    const std::string prefix = "svc.shard." + std::to_string(sidx) + ".";
    const auto it = a.counters().find(prefix + "requests");
    ASSERT_NE(it, a.counters().end()) << prefix;
    shard_requests += it->second;
    if (const core::Histogram* h = a.find_histogram(prefix + "e2e_ns")) {
      shard_e2e.merge(*h);
    }
  }
  EXPECT_EQ(shard_requests, static_cast<std::uint64_t>(kSpans));
  const core::Histogram* total = b.find_histogram("svc.lat.total_ns");
  ASSERT_NE(total, nullptr);
  expect_histograms_identical(shard_e2e, *total, "shard e2e union");
  // The single-lane recorder groups everything into shard 0.
  EXPECT_EQ(b.counters().at("svc.shard.0.requests"),
            static_cast<std::uint64_t>(kSpans));
}

}  // namespace
}  // namespace stemcp::service
