// Service-layer durability tests: the journal/checkpoint/recover request
// flow, protocol verbs, metrics, and the crash-recovery soak — kill the
// journal at every record boundary and at mid-record torn tails, recover,
// and require the rebuilt session's save image to be byte-identical to the
// pre-crash state with every violation/restore re-derived.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "persist/checkpoint.h"
#include "persist/journal.h"
#include "service/design_service.h"
#include "service/protocol.h"

namespace stemcp::service {
namespace {

const char* kPipeline = R"(cell STAGE
  signal in input
  signal out output
  delay in out
end
cell PIPE
  signal in input
  signal out output
  delay in out
    spec <= 160e-9
  subcell s0 STAGE R0 0 0
  subcell s1 STAGE R0 10 0
  net n_in
    io in
    conn s0 in
  net n_mid
    conn s0 out
    conn s1 in
  net n_out
    conn s1 out
    io out
end
)";

std::string tmp_base(const std::string& name) {
  return testing::TempDir() + "stemcp_persistence_test_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
  ASSERT_TRUE(out.good()) << path;
}

Request make(RequestType t, const std::string& session, std::string text = {}) {
  Request r;
  r.type = t;
  r.session = session;
  r.text = std::move(text);
  return r;
}

Request assign(RequestType t, const std::string& session,
               std::vector<Assignment> as) {
  Request r;
  r.type = t;
  r.session = session;
  r.assignments = std::move(as);
  return r;
}

std::string save_image(DesignService& svc, const std::string& session) {
  Response r = svc.call(make(RequestType::kSave, session));
  EXPECT_TRUE(r.ok) << r.error;
  return r.text;
}

TEST(ServicePersistenceTest, JournalCheckpointRecoverRoundTrip) {
  const std::string base = tmp_base("roundtrip");
  DesignService svc(2);
  ASSERT_TRUE(svc.call(make(RequestType::kOpen, "main")).ok);
  Response r = svc.call(make(RequestType::kJournal, "main", base + " none"));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(r.text.find("journaling main"), std::string::npos) << r.text;

  ASSERT_TRUE(svc.call(make(RequestType::kLoad, "main", kPipeline)).ok);
  r = svc.call(assign(RequestType::kAssign, "main",
                      {{"PIPE/s0.delay(in->out)", 50e-9},
                       {"PIPE/s1.delay(in->out)", 60e-9}}));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.violation);
  const std::string before = save_image(svc, "main");

  // Clean shutdown: close flushes and ends the log with a close marker.
  ASSERT_TRUE(svc.call(make(RequestType::kClose, "main")).ok);
  const persist::JournalScan scan =
      persist::scan_journal(persist::journal_path(base));
  ASSERT_TRUE(scan.ok()) << scan.error;
  ASSERT_FALSE(scan.records.empty());
  EXPECT_EQ(scan.records.front().op, "open");
  EXPECT_EQ(scan.records.back().op, "close");

  // Rebuild under the same name in a fresh service: byte-identical state.
  DesignService svc2(2);
  r = svc2.call(make(RequestType::kRecover, "main", base));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(r.text.find("0 outcome mismatch(es)"), std::string::npos)
      << r.text;
  EXPECT_EQ(save_image(svc2, "main"), before);

  // The recovered session keeps journaling where the log left off.
  const std::uint64_t last_seq = scan.records.back().seq;
  r = svc2.call(assign(RequestType::kAssign, "main",
                       {{"PIPE/s0.delay(in->out)", 55e-9}}));
  ASSERT_TRUE(r.ok) << r.error;
  const persist::JournalScan scan2 =
      persist::scan_journal(persist::journal_path(base));
  ASSERT_TRUE(scan2.ok()) << scan2.error;
  ASSERT_GT(scan2.records.size(), scan.records.size());
  EXPECT_EQ(scan2.records.back().op, "assign");
  EXPECT_EQ(scan2.records.back().seq, last_seq + 1);
}

TEST(ServicePersistenceTest, CheckpointTruncatesJournalAndRecovers) {
  const std::string base = tmp_base("checkpoint");
  DesignService svc(2);
  ASSERT_TRUE(svc.call(make(RequestType::kOpen, "main")).ok);
  ASSERT_TRUE(svc.call(make(RequestType::kJournal, "main", base + " none")).ok);
  ASSERT_TRUE(svc.call(make(RequestType::kLoad, "main", kPipeline)).ok);
  ASSERT_TRUE(svc.call(assign(RequestType::kAssign, "main",
                              {{"PIPE/s0.delay(in->out)", 50e-9}}))
                  .ok);
  const std::string before = save_image(svc, "main");

  Response r = svc.call(make(RequestType::kCheckpoint, "main"));
  ASSERT_TRUE(r.ok) << r.error;
  // All state now lives in the checkpoint; the journal restarts empty.
  EXPECT_EQ(slurp(persist::journal_path(base)), "");
  persist::CheckpointMeta meta;
  ASSERT_TRUE(persist::parse_checkpoint_header(
      slurp(persist::checkpoint_path(base)), &meta));
  EXPECT_EQ(meta.session, "main");
  EXPECT_GE(meta.seq, 3u);  // open + load + assign

  DesignService svc2(2);
  r = svc2.call(make(RequestType::kRecover, "main", base));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(r.text.find("replayed 0 record(s)"), std::string::npos) << r.text;
  EXPECT_EQ(save_image(svc2, "main"), before);
}

TEST(ServicePersistenceTest, DeadJournalDegradesWithWarning) {
  const std::string base = tmp_base("dead");
  DesignService svc(1);
  ASSERT_TRUE(svc.call(make(RequestType::kOpen, "main")).ok);
  ASSERT_TRUE(svc.call(make(RequestType::kJournal, "main", base + " none")).ok);
  ASSERT_TRUE(svc.call(make(RequestType::kLoad, "main", kPipeline)).ok);
  svc.sessions().find("main")->journal()->set_fail_after(4);

  Response r = svc.call(assign(RequestType::kAssign, "main",
                               {{"PIPE/s0.delay(in->out)", 50e-9}}));
  ASSERT_TRUE(r.ok) << r.error;  // the in-memory session keeps serving
  EXPECT_NE(r.text.find("journal write failed"), std::string::npos) << r.text;

  r = svc.call(make(RequestType::kCheckpoint, "main"));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("dead"), std::string::npos) << r.error;
}

TEST(ServicePersistenceTest, RecoverErrors) {
  DesignService svc(1);
  ASSERT_TRUE(svc.call(make(RequestType::kOpen, "taken")).ok);
  Response r =
      svc.call(make(RequestType::kRecover, "taken", tmp_base("unused")));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("already exists"), std::string::npos) << r.error;

  // Nothing on disk: recovery is a cold start into an empty session.
  r = svc.call(make(RequestType::kRecover, "cold", tmp_base("absent")));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(r.text.find("replayed 0 record(s)"), std::string::npos) << r.text;

  // Journaling twice is refused.
  ASSERT_TRUE(
      svc.call(make(RequestType::kJournal, "taken", tmp_base("dup"))).ok);
  r = svc.call(make(RequestType::kJournal, "taken", tmp_base("dup2")));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("already journaling"), std::string::npos) << r.error;

  // Checkpoint without a journal is refused.
  ASSERT_TRUE(svc.call(make(RequestType::kOpen, "plain")).ok);
  r = svc.call(make(RequestType::kCheckpoint, "plain"));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("no journal"), std::string::npos) << r.error;
}

TEST(ServicePersistenceTest, MetricsRecordJournalAndReplay) {
  const std::string base = tmp_base("metrics");
  DesignService svc(1);
  ASSERT_TRUE(svc.call(make(RequestType::kOpen, "main", "metrics")).ok);
  ASSERT_TRUE(svc.call(make(RequestType::kJournal, "main", base)).ok);
  ASSERT_TRUE(svc.call(make(RequestType::kLoad, "main", kPipeline)).ok);
  Response r = svc.call(make(RequestType::kQuery, "main", "stats"));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(r.text.find("journal.bytes"), std::string::npos) << r.text;
  EXPECT_NE(r.text.find("journal.fsync_ns"), std::string::npos) << r.text;
  EXPECT_NE(r.text.find("journal: base"), std::string::npos) << r.text;
  ASSERT_TRUE(svc.call(make(RequestType::kClose, "main")).ok);

  DesignService svc2(1);
  // The checkpoint recorded "metrics", so the recovered session measures its
  // own replay.
  ASSERT_TRUE(svc2.call(make(RequestType::kRecover, "main", base)).ok);
  r = svc2.call(make(RequestType::kQuery, "main", "stats"));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(r.text.find("recover.replay_ns"), std::string::npos) << r.text;
}

TEST(ServicePersistenceTest, FrontEndSpeaksDurabilityVerbs) {
  const std::string base = tmp_base("frontend");
  DesignService svc(1);
  ServiceFrontEnd fe(svc);
  EXPECT_EQ(fe.execute("open a"), "ok\nopened a\n");
  std::string out = fe.execute("journal a " + base + " interval 8");
  EXPECT_EQ(out.find("ok\n"), 0u) << out;
  EXPECT_NE(out.find("fsync interval"), std::string::npos) << out;
  out = fe.execute("edit a cell BLK");
  EXPECT_EQ(out.find("ok\n"), 0u) << out;
  out = fe.execute("checkpoint a");
  EXPECT_NE(out.find("checkpoint of a at seq"), std::string::npos) << out;
  EXPECT_EQ(fe.execute("close a"), "ok\nclosed a\n");
  out = fe.execute("recover b " + base);
  EXPECT_EQ(out.find("ok\n"), 0u) << out;
  EXPECT_NE(out.find("recovered b"), std::string::npos) << out;
  // The rebuilt session has the edit.
  out = fe.execute("query b cells");
  EXPECT_NE(out.find("BLK"), std::string::npos) << out;

  out = fe.execute("journal b");
  EXPECT_NE(out.find("journal needs a base path"), std::string::npos) << out;
  out = fe.execute("recover c");
  EXPECT_NE(out.find("recover needs a base path"), std::string::npos) << out;
}

TEST(ServicePersistenceTest, ParseErrorsCarryByteOffsets) {
  Request req;
  std::string error;
  EXPECT_FALSE(ServiceFrontEnd::parse("assign s", &req, &error));
  EXPECT_NE(error.find("(at byte 8)"), std::string::npos) << error;
  EXPECT_FALSE(ServiceFrontEnd::parse("assign s x", &req, &error));
  EXPECT_NE(error.find("(at byte 10)"), std::string::npos) << error;
  EXPECT_FALSE(ServiceFrontEnd::parse("bogus s", &req, &error));
  EXPECT_NE(error.find("(at byte 0)"), std::string::npos) << error;
  EXPECT_FALSE(ServiceFrontEnd::parse("load s nowhere", &req, &error));
  EXPECT_NE(error.find("(at byte"), std::string::npos) << error;
  EXPECT_FALSE(ServiceFrontEnd::parse("", &req, &error));
  EXPECT_NE(error.find("(at byte 0)"), std::string::npos) << error;
}

// ---------------------------------------------------------------------------
// The crash-recovery soak (the tentpole's acceptance proof).
//
// Drive a journaled session through a scripted mix of loads, assignments
// (clean AND violating) and edits, snapshotting the save image after every
// mutation.  Then, for every record boundary and several torn offsets inside
// every record, truncate a copy of the journal there — exactly what a crash
// mid-write leaves — recover, and require:
//   * the rebuilt save image is byte-identical to the snapshot taken at that
//     point of history, and
//   * every replayed record re-derives its recorded violation/restore
//     outcome (the recover report says 0 mismatches).
TEST(ServicePersistenceTest, CrashRecoverySoakAtEveryRecordBoundary) {
  const std::string base = tmp_base("soak");
  DesignService svc(1);
  ASSERT_TRUE(svc.call(make(RequestType::kOpen, "main")).ok);
  ASSERT_TRUE(svc.call(make(RequestType::kJournal, "main", base + " none")).ok);

  std::vector<std::string> images;  // images[i]: state after i-th mutation
  images.push_back(save_image(svc, "main"));

  const auto mutate = [&](const Request& r, bool expect_violation) {
    const Response resp = svc.call(r);
    ASSERT_TRUE(resp.ok) << resp.error;
    EXPECT_EQ(resp.violation, expect_violation);
    images.push_back(save_image(svc, "main"));
  };
  mutate(make(RequestType::kLoad, "main", kPipeline), false);
  mutate(assign(RequestType::kAssign, "main",
                {{"PIPE/s0.delay(in->out)", 50e-9}}),
         false);
  mutate(assign(RequestType::kAssign, "main",
                {{"PIPE/s1.delay(in->out)", 40e-9}}),
         false);
  // A violating batch: 90 + 90 = 180 ns > the 160 ns spec.  It restores
  // everything (no state change) but MUST re-derive on replay.
  mutate(assign(RequestType::kBatchAssign, "main",
                {{"PIPE/s0.delay(in->out)", 90e-9},
                 {"PIPE/s1.delay(in->out)", 90e-9}}),
         true);
  mutate(make(RequestType::kEdit, "main", "cell EXTRA"), false);
  mutate(make(RequestType::kEdit, "main", "signal EXTRA clk input"), false);
  mutate(make(RequestType::kEdit, "main", "param EXTRA width 1 64 default 8"),
         false);
  mutate(assign(RequestType::kBatchAssign, "main",
                {{"PIPE/s0.delay(in->out)", 70e-9},
                 {"PIPE/s1.delay(in->out)", 80e-9}}),
         false);
  const std::size_t n_mut = images.size() - 1;
  ASSERT_TRUE(svc.call(make(RequestType::kClose, "main")).ok);

  // Reconstruct each record's byte extent from the closed journal (the codec
  // round-trips exactly, so re-encoding gives the on-disk lengths).
  const std::string journal_bytes = slurp(persist::journal_path(base));
  const std::string ckpt_bytes = slurp(persist::checkpoint_path(base));
  const persist::JournalScan scan =
      persist::scan_journal(persist::journal_path(base));
  ASSERT_TRUE(scan.ok()) << scan.error;
  ASSERT_EQ(scan.records.size(), n_mut + 2);  // open + mutations + close
  std::vector<std::size_t> ends;  // ends[i]: end offset of record i
  std::size_t off = 0;
  for (const persist::JournalRecord& rec : scan.records) {
    off += persist::encode_record(rec).size();
    ends.push_back(off);
  }
  ASSERT_EQ(off, journal_bytes.size());

  // Crash points: every record boundary, and torn tails inside every record.
  std::set<std::size_t> cuts = {0};
  std::size_t begin = 0;
  for (const std::size_t end : ends) {
    const std::size_t len = end - begin;
    cuts.insert(begin + 1);
    cuts.insert(begin + len / 4);
    cuts.insert(begin + len / 2);
    cuts.insert(begin + 3 * len / 4);
    cuts.insert(end - 1);
    cuts.insert(end);
    begin = end;
  }

  int checked = 0;
  for (const std::size_t cut : cuts) {
    SCOPED_TRACE("crash at byte " + std::to_string(cut) + " of " +
                 std::to_string(journal_bytes.size()));
    // Complete records surviving the cut -> which snapshot must come back.
    const std::size_t complete = static_cast<std::size_t>(
        std::count_if(ends.begin(), ends.end(),
                      [&](std::size_t e) { return e <= cut; }));
    const std::size_t expect =
        std::min(complete == 0 ? 0 : complete - 1, n_mut);

    const std::string crash_base = base + "_cut" + std::to_string(cut);
    spit(persist::checkpoint_path(crash_base), ckpt_bytes);
    spit(persist::journal_path(crash_base), journal_bytes.substr(0, cut));

    DesignService rec_svc(1);
    const Response r =
        rec_svc.call(make(RequestType::kRecover, "main", crash_base));
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_NE(r.text.find("0 outcome mismatch(es)"), std::string::npos)
        << r.text;
    EXPECT_EQ(save_image(rec_svc, "main"), images[expect]);
    ++checked;
  }
  // open + 8 mutations + close, ~5 interior cuts each, plus boundaries.
  EXPECT_GE(checked, 40) << "soak did not exercise enough crash points";
}

}  // namespace
}  // namespace stemcp::service
