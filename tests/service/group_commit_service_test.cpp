// Service-layer group-commit tests: the journal verb's group-commit grammar
// and its checkpoint-header round trip, recovery rejecting a corrupt fsync
// header word, crash soaks at flush boundaries (byte cuts and flush-count
// cuts) proving byte-identical recovery, segmented multi-session recovery,
// dead-journal degradation under group commit (exactly one fault anomaly),
// and a multi-threaded ticket-completion hammer (the TSan lane's target).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "persist/checkpoint.h"
#include "persist/journal.h"
#include "service/design_service.h"
#include "service/protocol.h"

namespace stemcp::service {
namespace {

const char* kPipeline = R"(cell STAGE
  signal in input
  signal out output
  delay in out
end
cell PIPE
  signal in input
  signal out output
  delay in out
    spec <= 160e-9
  subcell s0 STAGE R0 0 0
  subcell s1 STAGE R0 10 0
  net n_in
    io in
    conn s0 in
  net n_mid
    conn s0 out
    conn s1 in
  net n_out
    conn s1 out
    io out
end
)";

std::string tmp_base(const std::string& name) {
  return testing::TempDir() + "stemcp_gc_service_test_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
  ASSERT_TRUE(out.good()) << path;
}

Request make(RequestType t, const std::string& session, std::string text = {}) {
  Request r;
  r.type = t;
  r.session = session;
  r.text = std::move(text);
  return r;
}

Request assign(const std::string& session, std::vector<Assignment> as) {
  Request r;
  r.type = RequestType::kAssign;
  r.session = session;
  r.assignments = std::move(as);
  return r;
}

std::string save_image(DesignService& svc, const std::string& session) {
  Response r = svc.call(make(RequestType::kSave, session));
  EXPECT_TRUE(r.ok) << r.error;
  return r.text;
}

void remove_segments(const std::string& base) {
  const std::string jpath = persist::journal_path(base);
  for (const std::uint64_t n : persist::list_journal_segments(jpath)) {
    std::remove(persist::journal_segment_path(jpath, n).c_str());
  }
  std::remove(jpath.c_str());
  std::remove(persist::checkpoint_path(base).c_str());
}

TEST(GroupCommitServiceTest, GrammarAndCheckpointHeaderRoundTrip) {
  const std::string base = tmp_base("grammar");
  remove_segments(base);
  DesignService svc(2);
  ASSERT_TRUE(svc.call(make(RequestType::kOpen, "main")).ok);
  Response r = svc.call(make(
      RequestType::kJournal, "main",
      base + " group-commit batch 8 delay-us 100 segment 4096"));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(r.text.find("fsync group-commit"), std::string::npos) << r.text;

  const JournalConfig& cfg = svc.sessions().find("main")->journal_config();
  EXPECT_EQ(cfg.policy, persist::FsyncPolicy::kGroupCommit);
  EXPECT_EQ(cfg.group_batch_records, 8u);
  EXPECT_EQ(cfg.group_delay_us, 100u);
  EXPECT_EQ(cfg.segment_bytes, 4096u);

  // The knobs travel through the checkpoint header verbatim...
  persist::CheckpointMeta meta;
  ASSERT_TRUE(persist::parse_checkpoint_header(
      slurp(persist::checkpoint_path(base)), &meta));
  EXPECT_NE(meta.options.find("fsync group-commit batch 8 delay-us 100"),
            std::string::npos)
      << meta.options;
  EXPECT_NE(meta.options.find("segment 4096"), std::string::npos)
      << meta.options;

  ASSERT_TRUE(svc.call(make(RequestType::kLoad, "main", kPipeline)).ok);
  ASSERT_TRUE(svc.call(make(RequestType::kClose, "main")).ok);

  // ...and recovery reopens the journal with the same configuration.
  DesignService svc2(2);
  r = svc2.call(make(RequestType::kRecover, "main", base));
  ASSERT_TRUE(r.ok) << r.error;
  const JournalConfig& rcfg = svc2.sessions().find("main")->journal_config();
  EXPECT_EQ(rcfg.policy, persist::FsyncPolicy::kGroupCommit);
  EXPECT_EQ(rcfg.group_batch_records, 8u);
  EXPECT_EQ(rcfg.group_delay_us, 100u);
  EXPECT_EQ(rcfg.segment_bytes, 4096u);
  r = svc2.call(make(RequestType::kQuery, "main", "stats"));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(r.text.find("fsync group-commit"), std::string::npos) << r.text;
  EXPECT_NE(r.text.find(" io "), std::string::npos) << r.text;
}

TEST(GroupCommitServiceTest, UnknownJournalOptionIsRejected) {
  DesignService svc(1);
  ASSERT_TRUE(svc.call(make(RequestType::kOpen, "main")).ok);
  Response r = svc.call(make(RequestType::kJournal, "main",
                             tmp_base("badopt") + " group-commit turbo"));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown journal option 'turbo'"), std::string::npos)
      << r.error;
}

// Satellite: a corrupt fsync word in the checkpoint header must fail
// recovery loudly — silently defaulting would change the durability
// contract behind the operator's back (the old code discarded the parse
// result).
TEST(GroupCommitServiceTest, CorruptFsyncHeaderFailsRecovery) {
  const std::string base = tmp_base("badheader");
  remove_segments(base);
  {
    DesignService svc(1);
    ASSERT_TRUE(svc.call(make(RequestType::kOpen, "main")).ok);
    ASSERT_TRUE(
        svc.call(make(RequestType::kJournal, "main", base + " none")).ok);
    ASSERT_TRUE(svc.call(make(RequestType::kClose, "main")).ok);
  }
  const std::string ckpt_path = persist::checkpoint_path(base);
  std::string ckpt = slurp(ckpt_path);
  const std::size_t at = ckpt.find("fsync none");
  ASSERT_NE(at, std::string::npos) << ckpt;
  ckpt.replace(at, 10, "fsync nope");
  spit(ckpt_path, ckpt);

  DesignService svc(1);
  Response r = svc.call(make(RequestType::kRecover, "main", base));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown fsync policy 'nope'"), std::string::npos)
      << r.error;
}

TEST(GroupCommitServiceTest, DeadGroupJournalDegradesWithOneFaultAnomaly) {
  const std::string base = tmp_base("dead");
  remove_segments(base);
  DesignService svc(1);
  svc.telemetry().set_enabled(true);
  svc.telemetry().arm_flight(tmp_base("dead_flight"), 0);
  ASSERT_TRUE(svc.call(make(RequestType::kOpen, "main")).ok);
  ASSERT_TRUE(
      svc.call(make(RequestType::kJournal, "main", base + " group-commit")).ok);
  ASSERT_TRUE(svc.call(make(RequestType::kLoad, "main", kPipeline)).ok);
  const std::uint64_t anomalies_before = svc.telemetry().anomalies();
  svc.sessions().find("main")->journal()->set_fail_fsync_after(0);

  // Two failing mutations: both degrade with the WARNING, but only the
  // request whose flush killed the journal is the anomaly.
  Response r =
      svc.call(assign("main", {{"PIPE/s0.delay(in->out)", 50e-9}}));
  ASSERT_TRUE(r.ok) << r.error;  // the in-memory session keeps serving
  EXPECT_NE(r.text.find("journal write failed"), std::string::npos) << r.text;
  r = svc.call(assign("main", {{"PIPE/s1.delay(in->out)", 60e-9}}));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(r.text.find("journal write failed"), std::string::npos) << r.text;
  EXPECT_EQ(svc.telemetry().anomalies(), anomalies_before + 1)
      << "journal death must be reported exactly once";
  EXPECT_EQ(svc.telemetry().last_dump_reason(), "journal-dead");

  r = svc.call(make(RequestType::kCheckpoint, "main"));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("dead"), std::string::npos) << r.error;
}

TEST(GroupCommitServiceTest, LatencyTableShowsFlushWaitPhase) {
  const std::string base = tmp_base("latency");
  remove_segments(base);
  DesignService svc(1);
  svc.telemetry().set_enabled(true);
  ASSERT_TRUE(svc.call(make(RequestType::kOpen, "main")).ok);
  ASSERT_TRUE(
      svc.call(make(RequestType::kJournal, "main", base + " group-commit")).ok);
  ASSERT_TRUE(svc.call(make(RequestType::kLoad, "main", kPipeline)).ok);
  ASSERT_TRUE(
      svc.call(assign("main", {{"PIPE/s0.delay(in->out)", 50e-9}})).ok);
  ServiceFrontEnd fe(svc);
  const std::string table = fe.execute("stats --latency");
  EXPECT_NE(table.find("flush_wait"), std::string::npos) << table;
}

// The tentpole's durability proof: drive a journaled group-commit session
// through a scripted history, then crash at every flush boundary and at
// torn offsets inside every record, recover, and require the rebuilt save
// image to be byte-identical to the snapshot at that point of history.
// Requests are submitted serially, so every record is its own flush and
// record boundaries ARE flush boundaries.
TEST(GroupCommitServiceTest, CrashSoakAtEveryFlushBoundary) {
  const std::string base = tmp_base("soak");
  remove_segments(base);
  DesignService svc(1);
  ASSERT_TRUE(svc.call(make(RequestType::kOpen, "main")).ok);
  ASSERT_TRUE(svc.call(make(RequestType::kJournal, "main",
                            base + " group-commit batch 16 delay-us 50"))
                  .ok);

  std::vector<std::string> images;  // images[i]: state after i-th mutation
  images.push_back(save_image(svc, "main"));
  const auto mutate = [&](const Request& r, bool expect_violation) {
    const Response resp = svc.call(r);
    ASSERT_TRUE(resp.ok) << resp.error;
    EXPECT_EQ(resp.violation, expect_violation);
    images.push_back(save_image(svc, "main"));
  };
  mutate(make(RequestType::kLoad, "main", kPipeline), false);
  mutate(assign("main", {{"PIPE/s0.delay(in->out)", 50e-9}}), false);
  mutate(assign("main", {{"PIPE/s1.delay(in->out)", 40e-9}}), false);
  {
    Request r;
    r.type = RequestType::kBatchAssign;
    r.session = "main";
    r.assignments = {{"PIPE/s0.delay(in->out)", 90e-9},
                     {"PIPE/s1.delay(in->out)", 90e-9}};
    mutate(r, true);  // 180 ns > 160 ns spec: restores, must re-derive
  }
  mutate(make(RequestType::kEdit, "main", "cell EXTRA"), false);
  mutate(assign("main", {{"PIPE/s0.delay(in->out)", 70e-9}}), false);
  const std::size_t n_mut = images.size() - 1;
  ASSERT_TRUE(svc.call(make(RequestType::kClose, "main")).ok);

  const std::string journal_bytes = slurp(persist::journal_path(base));
  const std::string ckpt_bytes = slurp(persist::checkpoint_path(base));
  const persist::JournalScan scan =
      persist::scan_journal(persist::journal_path(base));
  ASSERT_TRUE(scan.ok()) << scan.error;
  ASSERT_EQ(scan.records.size(), n_mut + 2);  // open + mutations + close
  std::vector<std::size_t> ends;
  std::size_t off = 0;
  for (const persist::JournalRecord& rec : scan.records) {
    off += persist::encode_record(rec).size();
    ends.push_back(off);
  }
  ASSERT_EQ(off, journal_bytes.size());

  std::set<std::size_t> cuts = {0};
  std::size_t begin = 0;
  for (const std::size_t end : ends) {
    const std::size_t len = end - begin;
    cuts.insert(begin + 1);
    cuts.insert(begin + len / 2);
    cuts.insert(end - 1);
    cuts.insert(end);
    begin = end;
  }

  for (const std::size_t cut : cuts) {
    SCOPED_TRACE("crash at byte " + std::to_string(cut) + " of " +
                 std::to_string(journal_bytes.size()));
    const std::size_t complete = static_cast<std::size_t>(
        std::count_if(ends.begin(), ends.end(),
                      [&](std::size_t e) { return e <= cut; }));
    const std::size_t expect =
        std::min(complete == 0 ? 0 : complete - 1, n_mut);

    const std::string crash_base = base + "_cut" + std::to_string(cut);
    spit(persist::checkpoint_path(crash_base), ckpt_bytes);
    spit(persist::journal_path(crash_base), journal_bytes.substr(0, cut));

    DesignService rec_svc(1);
    const Response r =
        rec_svc.call(make(RequestType::kRecover, "main", crash_base));
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_NE(r.text.find("0 outcome mismatch(es)"), std::string::npos)
        << r.text;
    EXPECT_EQ(save_image(rec_svc, "main"), images[expect]);
    remove_segments(crash_base);
  }
}

// Flush-count crashes: kill the journal on its n-th flush for every n,
// recover from whatever reached the file, and require the image the scan's
// mutation count predicts — the oracle is independent of WHICH requests a
// nondeterministic batch happened to cover.
TEST(GroupCommitServiceTest, CrashSoakAtEveryFlushCount) {
  for (int n = 0; n < 6; ++n) {
    SCOPED_TRACE("journal dies on flush " + std::to_string(n + 1));
    const std::string base = tmp_base("fsoak" + std::to_string(n));
    remove_segments(base);
    ::setenv("STEMCP_JOURNAL_CRASH_AFTER", ("flush:" + std::to_string(n)).c_str(),
             1);
    DesignService svc(1);
    ASSERT_TRUE(svc.call(make(RequestType::kOpen, "main")).ok);
    const Response jr = svc.call(make(RequestType::kJournal, "main",
                                      base + " group-commit batch 16"));
    ::unsetenv("STEMCP_JOURNAL_CRASH_AFTER");
    std::vector<std::string> images;
    std::size_t done = 0;
    if (jr.ok) {
      images.push_back(save_image(svc, "main"));
      const Request muts[] = {
          make(RequestType::kLoad, "main", kPipeline),
          assign("main", {{"PIPE/s0.delay(in->out)", 50e-9}}),
          assign("main", {{"PIPE/s1.delay(in->out)", 40e-9}}),
          make(RequestType::kEdit, "main", "cell EXTRA"),
      };
      for (const Request& m : muts) {
        const Response resp = svc.call(m);
        ASSERT_TRUE(resp.ok) << resp.error;
        images.push_back(save_image(svc, "main"));
        ++done;
      }
      ASSERT_TRUE(svc.call(make(RequestType::kClose, "main")).ok);
    }
    if (!jr.ok) continue;  // the attach itself died; nothing durable to check

    // Oracle: however the flushes fell, recovery must rebuild exactly the
    // state after the LAST mutation record that reached the file.
    const persist::JournalScan scan =
        persist::scan_journal_segments(persist::journal_path(base));
    ASSERT_TRUE(scan.ok()) << scan.error;
    std::size_t mut_records = 0;
    for (const persist::JournalRecord& rec : scan.records) {
      if (rec.op != "open" && rec.op != "close") ++mut_records;
    }
    ASSERT_LE(mut_records, done);
    DesignService rec_svc(1);
    const Response r = rec_svc.call(make(RequestType::kRecover, "main", base));
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(save_image(rec_svc, "main"), images[mut_records]);
    remove_segments(base);
  }
}

// Segmented journals recover through the parallel segment scan, per shard,
// rebuilding byte-identical state — two sessions on a 2-shard service, each
// rolling several sealed segments.
TEST(GroupCommitServiceTest, SegmentedMultiShardRecovery) {
  const std::string root = testing::TempDir() + "stemcp_gc_service_shards";
  DesignService::Config cfg;
  cfg.workers_per_shard = 2;
  cfg.shards = 2;
  cfg.journal_root = root;
  std::vector<std::string> before(2);
  {
    DesignService svc(cfg);
    const char* names[] = {"alpha", "bravo"};
    for (const char* name : names) {
      ASSERT_TRUE(svc.call(make(RequestType::kOpen, name)).ok);
      ASSERT_TRUE(svc.call(make(RequestType::kJournal, name,
                                std::string(name) +
                                    "_db group-commit segment 256"))
                      .ok);
      ASSERT_TRUE(svc.call(make(RequestType::kLoad, name, kPipeline)).ok);
      for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(
            svc.call(assign(name, {{"PIPE/s0.delay(in->out)", 40e-9 + i * 1e-9}}))
                .ok);
      }
      // The tiny threshold must have rolled sealed segments.
      EXPECT_GE(svc.sessions().find(name)->journal()->sealed_segments(), 1u)
          << name;
    }
    before[0] = save_image(svc, "alpha");
    before[1] = save_image(svc, "bravo");
    ASSERT_TRUE(svc.call(make(RequestType::kClose, "alpha")).ok);
    ASSERT_TRUE(svc.call(make(RequestType::kClose, "bravo")).ok);
  }
  DesignService svc2(cfg);
  Response r = svc2.call(make(RequestType::kRecover, "alpha", "alpha_db"));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(r.text.find("0 outcome mismatch(es)"), std::string::npos) << r.text;
  r = svc2.call(make(RequestType::kRecover, "bravo", "bravo_db"));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(save_image(svc2, "alpha"), before[0]);
  EXPECT_EQ(save_image(svc2, "bravo"), before[1]);
  // Both recovered sessions keep journaling with segmentation intact.
  EXPECT_EQ(svc2.sessions().find("alpha")->journal_config().segment_bytes,
            256u);
}

// Many client threads hammer one group-commit session: every ticket must
// complete, the responses must stay clean, and the closed log must hold
// every record in exact seq order.  This is the TSan lane's target for the
// flusher/caller/metrics-drain interplay (no setenv here — TSan races on
// the environment otherwise).
TEST(GroupCommitHammerTest, ConcurrentMutationsAllDurableInSeqOrder) {
  const std::string base = tmp_base("hammer");
  remove_segments(base);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  {
    DesignService svc(4);
    svc.telemetry().set_enabled(true);
    ASSERT_TRUE(svc.call(make(RequestType::kOpen, "main", "metrics")).ok);
    ASSERT_TRUE(svc.call(make(RequestType::kJournal, "main",
                              base + " group-commit batch 32 delay-us 100"))
                    .ok);
    ASSERT_TRUE(svc.call(make(RequestType::kLoad, "main", kPipeline)).ok);
    std::atomic<int> clean{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          const Response resp = svc.call(assign(
              "main", {{t % 2 == 0 ? "PIPE/s0.delay(in->out)"
                                   : "PIPE/s1.delay(in->out)",
                        30e-9 + i * 1e-10}}));
          if (resp.ok && resp.text.find("WARNING") == std::string::npos) {
            clean.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(clean.load(), kThreads * kPerThread);
    ASSERT_TRUE(svc.call(make(RequestType::kClose, "main")).ok);
  }
  const persist::JournalScan scan =
      persist::scan_journal(persist::journal_path(base));
  ASSERT_TRUE(scan.ok()) << scan.error;
  // open + load + assigns + close, seq exactly contiguous.
  ASSERT_EQ(scan.records.size(),
            static_cast<std::size_t>(kThreads * kPerThread + 3));
  for (std::size_t i = 0; i < scan.records.size(); ++i) {
    EXPECT_EQ(scan.records[i].seq, i + 1);
  }
}

}  // namespace
}  // namespace stemcp::service
