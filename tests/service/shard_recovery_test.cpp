// Crash-soak for the sharded journal namespace (ISSUE 7): kill the service
// at record boundaries in TWO shards' journals simultaneously, recover both
// in parallel (one recover in flight per shard), and require each shard's
// rebuilt session to be byte-identical to its pre-crash snapshot — plus the
// isolation property that a torn or corrupt journal in one shard never
// blocks recovery in another.  Extends the single-session crash soak in
// persistence_test.cpp to the per-shard <root>/shard-<i>/ layout.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <future>
#include <string>
#include <vector>

#include "persist/checkpoint.h"
#include "persist/journal.h"
#include "service/design_service.h"

namespace stemcp::service {
namespace {

const char* kPipeline = R"(cell STAGE
  signal in input
  signal out output
  delay in out
end
cell PIPE
  signal in input
  signal out output
  delay in out
    spec <= 160e-9
  subcell s0 STAGE R0 0 0
  subcell s1 STAGE R0 10 0
  net n_in
    io in
    conn s0 in
  net n_mid
    conn s0 out
    conn s1 in
  net n_out
    conn s1 out
    io out
end
)";

std::string tmp_root(const std::string& name) {
  return testing::TempDir() + "stemcp_shard_recovery_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
  ASSERT_TRUE(out.good()) << path;
}

Request make(RequestType t, const std::string& session, std::string text = {}) {
  Request r;
  r.type = t;
  r.session = session;
  r.text = std::move(text);
  return r;
}

Request assign(RequestType t, const std::string& session,
               std::vector<Assignment> as) {
  Request r;
  r.type = t;
  r.session = session;
  r.assignments = std::move(as);
  return r;
}

std::string save_image(DesignService& svc, const std::string& session) {
  Response r = svc.call(make(RequestType::kSave, session));
  EXPECT_TRUE(r.ok) << r.error;
  return r.text;
}

std::string name_on_shard(const ShardedSessionManager& mgr, std::size_t shard,
                          const std::string& stem) {
  for (int i = 0;; ++i) {
    std::string n = stem + std::to_string(i);
    if (mgr.shard_of(n) == shard) return n;
  }
}

/// One journaled session's crash-soak material: the resolved per-shard base,
/// the raw journal/checkpoint bytes, per-record end offsets, and the save
/// image after every mutation (snapshots[k] = state after k mutations).
struct ShardLog {
  std::string name;
  std::string base;  // <root>/shard-<i>/<name>
  std::string journal_bytes;
  std::string ckpt_bytes;
  std::vector<std::size_t> ends;
  std::vector<std::string> snapshots;
};

/// Which snapshot must come back when the journal is cut to `bytes`:
/// complete surviving records = open marker + mutations, so k complete
/// records mean k-1 mutations (clamped at zero).
const std::string& expected_image(const ShardLog& log, std::size_t bytes) {
  const std::size_t complete = static_cast<std::size_t>(std::count_if(
      log.ends.begin(), log.ends.end(),
      [&](std::size_t e) { return e <= bytes; }));
  return log.snapshots[complete == 0 ? 0 : complete - 1];
}

/// Drive `name` through journal attach + a deterministic mutation script on
/// `svc`, snapshotting after every mutation, then capture the on-disk bytes
/// and record extents.
ShardLog build_shard_log(DesignService& svc, const std::string& root,
                         const std::string& name, double delay_bias) {
  ShardLog log;
  log.name = name;
  log.base = root + "/shard-" +
             std::to_string(svc.sessions().shard_of(name)) + "/" + name;
  EXPECT_TRUE(svc.call(make(RequestType::kOpen, name)).ok);
  EXPECT_TRUE(svc.call(make(RequestType::kJournal, name, name + " none")).ok);
  log.snapshots.push_back(save_image(svc, name));

  const auto mutate = [&](const Request& r) {
    const Response resp = svc.call(r);
    EXPECT_TRUE(resp.ok) << resp.error;
    log.snapshots.push_back(save_image(svc, name));
  };
  mutate(make(RequestType::kLoad, name, kPipeline));
  mutate(assign(RequestType::kAssign, name,
                {{"PIPE/s0.delay(in->out)", 50e-9 + delay_bias}}));
  mutate(assign(RequestType::kAssign, name,
                {{"PIPE/s1.delay(in->out)", 40e-9 + delay_bias}}));
  // A violating batch (s0+s1 > 160 ns): restores everything, and the
  // restore must re-derive on replay.
  mutate(assign(RequestType::kBatchAssign, name,
                {{"PIPE/s0.delay(in->out)", 90e-9 + delay_bias},
                 {"PIPE/s1.delay(in->out)", 90e-9 + delay_bias}}));
  mutate(make(RequestType::kEdit, name, "cell EXTRA"));
  mutate(assign(RequestType::kBatchAssign, name,
                {{"PIPE/s0.delay(in->out)", 70e-9 + delay_bias},
                 {"PIPE/s1.delay(in->out)", 60e-9 + delay_bias}}));

  // Crash snapshot: the on-disk bytes as they stand mid-run (no close
  // marker), plus each record's byte extent via the exact re-encode.
  log.journal_bytes = slurp(persist::journal_path(log.base));
  log.ckpt_bytes = slurp(persist::checkpoint_path(log.base));
  const persist::JournalScan scan =
      persist::scan_journal(persist::journal_path(log.base));
  EXPECT_TRUE(scan.ok()) << scan.error;
  EXPECT_EQ(scan.records.size(), log.snapshots.size());  // open + mutations
  std::size_t off = 0;
  for (const persist::JournalRecord& rec : scan.records) {
    off += persist::encode_record(rec).size();
    log.ends.push_back(off);
  }
  EXPECT_EQ(off, log.journal_bytes.size());
  return log;
}

/// Install the cut journal + checkpoint for `log` under the recovery
/// service's shard directory.
void install_cut(const ShardLog& log, const std::string& recovery_root,
                 std::size_t shard, std::size_t bytes) {
  const std::string base =
      recovery_root + "/shard-" + std::to_string(shard) + "/" + log.name;
  spit(persist::checkpoint_path(base), log.ckpt_bytes);
  spit(persist::journal_path(base), log.journal_bytes.substr(0, bytes));
}

// Kill both shards' journals at paired record boundaries (as shard A keeps
// more, shard B keeps fewer — every combination of "shards crashed at
// different points in their own logs"), then recover BOTH in parallel on a
// fresh 2-shard service and require byte-identical per-shard state.
TEST(ShardRecoveryTest, ParallelCrashRecoveryAcrossTwoShards) {
  const std::string root = tmp_root("pair");
  std::vector<ShardLog> logs;
  {
    DesignService svc(DesignService::Config{1, 2, root});
    const std::string a = name_on_shard(svc.sessions(), 0, "a");
    const std::string b = name_on_shard(svc.sessions(), 1, "b");
    logs.push_back(build_shard_log(svc, root, a, 0.0));
    logs.push_back(build_shard_log(svc, root, b, 3e-9));
    // The service dies here with both journals open: the crash.
  }
  ASSERT_EQ(logs[0].ends.size(), logs[1].ends.size());
  const std::size_t n_rec = logs[0].ends.size();

  const std::string rroot = tmp_root("pair_rec");
  int checked = 0;
  for (std::size_t k = 0; k <= n_rec; ++k) {
    // Record-boundary cuts: A keeps k records, B keeps n_rec - k.
    const std::size_t cut_a = k == 0 ? 0 : logs[0].ends[k - 1];
    const std::size_t keep_b = n_rec - k;
    const std::size_t cut_b = keep_b == 0 ? 0 : logs[1].ends[keep_b - 1];
    SCOPED_TRACE("A keeps " + std::to_string(k) + " record(s), B keeps " +
                 std::to_string(keep_b));

    DesignService rec(DesignService::Config{1, 2, rroot});
    install_cut(logs[0], rroot, rec.sessions().shard_of(logs[0].name), cut_a);
    install_cut(logs[1], rroot, rec.sessions().shard_of(logs[1].name), cut_b);

    // Both recovers in flight at once — one per shard, replayed in
    // parallel by the shards' own workers.
    std::future<Response> fa =
        rec.submit(make(RequestType::kRecover, logs[0].name, logs[0].name));
    std::future<Response> fb =
        rec.submit(make(RequestType::kRecover, logs[1].name, logs[1].name));
    const Response ra = fa.get();
    const Response rb = fb.get();
    ASSERT_TRUE(ra.ok) << ra.error;
    ASSERT_TRUE(rb.ok) << rb.error;
    EXPECT_NE(ra.text.find("0 outcome mismatch(es)"), std::string::npos)
        << ra.text;
    EXPECT_NE(rb.text.find("0 outcome mismatch(es)"), std::string::npos)
        << rb.text;
    EXPECT_EQ(save_image(rec, logs[0].name), expected_image(logs[0], cut_a));
    EXPECT_EQ(save_image(rec, logs[1].name), expected_image(logs[1], cut_b));
    ++checked;
  }
  EXPECT_GE(checked, 7) << "soak did not exercise enough paired crash points";
}

// Shard isolation under damage: shard A's journal is cut mid-record (torn
// tail) while shard B's checkpoint is garbage.  A's recovery — in flight
// concurrently with B's — must drop the torn tail and land on the last
// complete record's state; B's must fail cleanly and leave the name free.
TEST(ShardRecoveryTest, TornShardRecoversWhileOtherShardIsCorrupt) {
  const std::string root = tmp_root("torn");
  std::vector<ShardLog> logs;
  {
    DesignService svc(DesignService::Config{1, 2, root});
    const std::string a = name_on_shard(svc.sessions(), 0, "a");
    const std::string b = name_on_shard(svc.sessions(), 1, "b");
    logs.push_back(build_shard_log(svc, root, a, 0.0));
    logs.push_back(build_shard_log(svc, root, b, 3e-9));
  }

  const std::string rroot = tmp_root("torn_rec");
  DesignService rec(DesignService::Config{1, 2, rroot});
  // A: torn mid-way through its fourth record.
  const std::size_t torn_cut = logs[0].ends[2] + (logs[0].ends[3] -
                                                  logs[0].ends[2]) / 2;
  install_cut(logs[0], rroot, rec.sessions().shard_of(logs[0].name),
              torn_cut);
  // B: full journal but a corrupt checkpoint.
  const std::size_t shard_b = rec.sessions().shard_of(logs[1].name);
  install_cut(logs[1], rroot, shard_b, logs[1].journal_bytes.size());
  spit(persist::checkpoint_path(rroot + "/shard-" + std::to_string(shard_b) +
                                "/" + logs[1].name),
       "this is not a checkpoint\n");

  std::future<Response> fa =
      rec.submit(make(RequestType::kRecover, logs[0].name, logs[0].name));
  std::future<Response> fb =
      rec.submit(make(RequestType::kRecover, logs[1].name, logs[1].name));
  const Response ra = fa.get();
  const Response rb = fb.get();

  ASSERT_TRUE(ra.ok) << ra.error;
  EXPECT_NE(ra.text.find("0 outcome mismatch(es)"), std::string::npos)
      << ra.text;
  EXPECT_EQ(save_image(rec, logs[0].name), expected_image(logs[0], torn_cut));

  EXPECT_FALSE(rb.ok);
  EXPECT_NE(rb.error.find("recover failed"), std::string::npos) << rb.error;
  // The failed recovery left no half-built session behind: the name is
  // free, and the shard keeps serving.
  EXPECT_EQ(rec.sessions().find(logs[1].name), nullptr);
  EXPECT_TRUE(rec.call(make(RequestType::kOpen, logs[1].name)).ok);
}

}  // namespace
}  // namespace stemcp::service
