// ServiceFrontEnd tests: line-protocol parsing, response formatting, and an
// end-to-end drive of the service through protocol text.
#include "service/protocol.h"

#include <gtest/gtest.h>

#include <string>

namespace stemcp::service {
namespace {

TEST(ServiceProtocolTest, ParseAssignments) {
  Request r;
  std::string err;
  ASSERT_TRUE(ServiceFrontEnd::parse("batch-assign s A.delay(x->y) 1e-9 B.w 4",
                                     &r, &err))
      << err;
  EXPECT_EQ(r.type, RequestType::kBatchAssign);
  EXPECT_EQ(r.session, "s");
  ASSERT_EQ(r.assignments.size(), 2u);
  EXPECT_EQ(r.assignments[0].variable, "A.delay(x->y)");
  EXPECT_DOUBLE_EQ(r.assignments[0].value, 1e-9);
  EXPECT_EQ(r.assignments[1].variable, "B.w");
  EXPECT_DOUBLE_EQ(r.assignments[1].value, 4.0);

  EXPECT_FALSE(ServiceFrontEnd::parse("assign s", &r, &err));
  EXPECT_FALSE(ServiceFrontEnd::parse("assign s A.w notanumber", &r, &err));
  EXPECT_FALSE(ServiceFrontEnd::parse("", &r, &err));
  EXPECT_FALSE(ServiceFrontEnd::parse("open", &r, &err));
  EXPECT_FALSE(ServiceFrontEnd::parse("frobnicate s", &r, &err));
}

TEST(ServiceProtocolTest, ParseSelectVerbs) {
  Request r;
  std::string err;
  ASSERT_TRUE(ServiceFrontEnd::parse(
      "select s ALU slot add limit 3 commit", &r, &err))
      << err;
  EXPECT_EQ(r.type, RequestType::kSelect);
  EXPECT_EQ(r.session, "s");
  EXPECT_EQ(r.text, "ALU slot add limit 3 commit");

  ASSERT_TRUE(ServiceFrontEnd::parse("select-stats s ALU", &r, &err)) << err;
  EXPECT_EQ(r.type, RequestType::kSelectStats);
  EXPECT_EQ(r.text, "ALU");

  EXPECT_FALSE(ServiceFrontEnd::parse("select s", &r, &err));
  EXPECT_NE(err.find("needs a cell name"), std::string::npos) << err;
  EXPECT_FALSE(ServiceFrontEnd::parse("select-stats s", &r, &err));
}

TEST(ServiceProtocolTest, UnknownCommandListsValidVerbs) {
  Request r;
  std::string err;
  ASSERT_FALSE(ServiceFrontEnd::parse("frobnicate s", &r, &err));
  EXPECT_NE(err.find("unknown service command 'frobnicate'"),
            std::string::npos)
      << err;
  EXPECT_NE(err.find("valid commands:"), std::string::npos) << err;
  // Every per-session verb the parser accepts must be in the menu.
  for (const char* verb :
       {"open", "load", "save", "assign", "batch-assign", "edit", "query",
        "report", "select", "select-stats", "journal", "checkpoint",
        "recover", "close", "help"}) {
    EXPECT_NE(err.find(verb), std::string::npos) << "missing " << verb;
  }
}

TEST(ServiceProtocolTest, ParseLoadTextUnescapesNewlines) {
  Request r;
  std::string err;
  ASSERT_TRUE(ServiceFrontEnd::parse(
      "load s text cell A\\nsignal p input\\nend", &r, &err))
      << err;
  EXPECT_EQ(r.type, RequestType::kLoad);
  EXPECT_EQ(r.text, "cell A\nsignal p input\nend");
}

TEST(ServiceProtocolTest, FormatResponses) {
  Response r;
  r.ok = false;
  r.error = "boom";
  EXPECT_EQ(ServiceFrontEnd::format(r), "error: boom\n");

  r = Response{};
  r.ok = true;
  r.text = "hello";
  EXPECT_EQ(ServiceFrontEnd::format(r), "ok\nhello\n");

  r = Response{};
  r.ok = true;
  r.assignments_applied = 3;
  EXPECT_EQ(ServiceFrontEnd::format(r), "ok (applied 3 assignment(s))\n");

  r = Response{};
  r.ok = true;
  r.violation = true;
  r.violation_message = "over budget";
  r.variables_restored = 2;
  EXPECT_EQ(ServiceFrontEnd::format(r),
            "ok VIOLATION: over budget (restored 2 variable(s))\n");
}

TEST(ServiceProtocolTest, EndToEndOverProtocolText) {
  DesignService svc(2);
  ServiceFrontEnd fe(svc);

  EXPECT_EQ(fe.execute("open a metrics"), "ok\nopened a\n");
  EXPECT_EQ(fe.execute("open a"), "error: session 'a' already exists\n");

  std::string out = fe.execute(
      "load a text cell STAGE\\nsignal in input\\nsignal out output\\n"
      "delay in out\\nspec <= 1e-7\\nend");
  EXPECT_EQ(out, "ok\nloaded 1 cell(s)\n") << out;

  out = fe.execute("batch-assign a STAGE.delay(in->out) 4e-8");
  EXPECT_EQ(out, "ok (applied 1 assignment(s))\n") << out;

  out = fe.execute("query a STAGE.delay(in->out)");
  EXPECT_NE(out.find("4e-08"), std::string::npos) << out;

  // A violating batch reports the outcome on the status line.
  out = fe.execute("batch-assign a STAGE.delay(in->out) 2e-7");
  EXPECT_NE(out.find("ok VIOLATION"), std::string::npos) << out;
  EXPECT_NE(out.find("restored"), std::string::npos) << out;

  out = fe.execute("query a stats");
  EXPECT_NE(out.find("requests served"), std::string::npos) << out;
  EXPECT_NE(out.find("metrics:"), std::string::npos) << out;

  out = fe.execute("save a");
  EXPECT_NE(out.find("cell STAGE"), std::string::npos) << out;

  out = fe.execute("sessions");
  EXPECT_NE(out.find("a\n"), std::string::npos) << out;
  EXPECT_NE(out.find("1 session(s)"), std::string::npos) << out;

  EXPECT_EQ(fe.execute("close a"), "ok\nclosed a\n");
  EXPECT_NE(fe.execute("query a cells").find("error: unknown session"),
            std::string::npos);

  EXPECT_NE(fe.execute("help").find("service commands"), std::string::npos);
  EXPECT_NE(fe.execute("bogus x").find("error:"), std::string::npos);
}

// render() is the inverse of parse() — the contract the workload trace
// format leans on (src/workload/trace.h).
TEST(ServiceProtocolTest, RenderIsTheInverseOfParse) {
  const char* lines[] = {
      "open s",
      "open s metrics trace",
      "load s text cell A\\n  signal p input\\nend\\n",
      "save s",
      "assign s A.x(a->b) 0.10000000000000001",
      "batch-assign s A.x(a->b) 1 B.y(c->d) 2.5",
      "edit s leaf-delay STAGE in out 4e-08",
      "query s",
      "query s stats",
      "report s PIPE",
      "journal s base every-record",
      "checkpoint s",
      "recover s base",
      "select s ALU limit 4",
      "select-stats s ALU",
      "close s",
  };
  for (const char* line : lines) {
    Request req;
    std::string err;
    ASSERT_TRUE(ServiceFrontEnd::parse(line, &req, &err)) << line << ": " << err;
    std::string rendered;
    ASSERT_TRUE(ServiceFrontEnd::render(req, &rendered, &err))
        << line << ": " << err;
    Request again;
    ASSERT_TRUE(ServiceFrontEnd::parse(rendered, &again, &err))
        << rendered << ": " << err;
    EXPECT_EQ(again.type, req.type) << line;
    EXPECT_EQ(again.session, req.session) << line;
    EXPECT_EQ(again.text, req.text) << line;
    ASSERT_EQ(again.assignments.size(), req.assignments.size()) << line;
    for (std::size_t i = 0; i < req.assignments.size(); ++i) {
      EXPECT_EQ(again.assignments[i].variable, req.assignments[i].variable);
      EXPECT_EQ(again.assignments[i].value, req.assignments[i].value);
    }
    // Idempotence: rendering the reparsed request reproduces the bytes.
    std::string rendered2;
    ASSERT_TRUE(ServiceFrontEnd::render(again, &rendered2, &err)) << err;
    EXPECT_EQ(rendered2, rendered) << line;
  }
}

TEST(ServiceProtocolTest, RenderRejectsWhatCannotRoundTrip) {
  std::string out, err;
  Request r;
  r.type = RequestType::kQuery;
  r.session = "two words";
  EXPECT_FALSE(ServiceFrontEnd::render(r, &out, &err));
  r.session = "";
  EXPECT_FALSE(ServiceFrontEnd::render(r, &out, &err));
  r.session = "s";
  r.type = RequestType::kLoad;
  r.text = "back\\slash";  // parse() unescapes only "\n"
  EXPECT_FALSE(ServiceFrontEnd::render(r, &out, &err));
  r.type = RequestType::kAssign;
  r.text = "";
  EXPECT_FALSE(ServiceFrontEnd::render(r, &out, &err)) << "no assignments";
  r.assignments.push_back({"has space", 1.0});
  EXPECT_FALSE(ServiceFrontEnd::render(r, &out, &err));
  r.assignments.back().variable = "A.x(a->b)";
  out.clear();
  EXPECT_TRUE(ServiceFrontEnd::render(r, &out, &err)) << err;
  r.type = RequestType::kEdit;
  r.text = "two\nlines";
  out.clear();
  EXPECT_FALSE(ServiceFrontEnd::render(r, &out, &err));
  r.type = RequestType::kSave;
  r.text = "file /tmp/x";  // save-to-file is not replayable traffic
  out.clear();
  EXPECT_FALSE(ServiceFrontEnd::render(r, &out, &err));
}

TEST(ServiceProtocolTest, SaveToFile) {
  DesignService svc(1);
  ServiceFrontEnd fe(svc);
  fe.execute("open f");
  fe.execute("load f text cell A\\nsignal p input\\nend");
  const std::string path = ::testing::TempDir() + "/stemcp_proto_save.lib";
  std::string out = fe.execute("save f file " + path);
  EXPECT_NE(out.find("saved to"), std::string::npos) << out;

  // Round-trip through `load file`.
  fe.execute("open g");
  out = fe.execute("load g file " + path);
  EXPECT_EQ(out, "ok\nloaded 1 cell(s)\n") << out;
  out = fe.execute("load g file /no/such/file");
  EXPECT_NE(out.find("error: cannot read"), std::string::npos) << out;
}

}  // namespace
}  // namespace stemcp::service
