// Group-commit journal tests: ticket semantics, batch coalescing (many
// appends per fsync), queue quiesce, dead-journal ticket failure, the
// flush-count crash knob, and one fault-injection test per fsync/ftruncate
// call site (append, group flush, sync, truncate, destructor).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "persist/io_backend.h"
#include "persist/journal.h"

namespace stemcp::persist {
namespace {

std::string tmp_path(const std::string& name) {
  return testing::TempDir() + "stemcp_group_commit_test_" + name;
}

JournalRecord record_for(const std::string& session, int i) {
  JournalRecord r;
  r.op = "assign";
  r.session = session;
  r.assignments = {{"X.delay", 1e-9 * i}};
  r.applied = 1;
  return r;
}

Journal::Options group_options(std::uint32_t batch = 64,
                               std::uint32_t delay_us = 200) {
  Journal::Options o;
  o.fsync = FsyncPolicy::kGroupCommit;
  o.group_max_batch_records = batch;
  o.group_max_delay_us = delay_us;
  o.truncate = true;
  return o;
}

TEST(GroupCommitTest, TicketCompletesWithDurableRecord) {
  const std::string path = tmp_path("ticket");
  std::string error;
  auto j = Journal::open(path, group_options(), &error);
  ASSERT_NE(j, nullptr) << error;
  JournalRecord r = record_for("a", 1);
  CommitTicket t = j->append_async(r);
  ASSERT_TRUE(t.valid());
  EXPECT_EQ(t.seq(), 1u);
  EXPECT_TRUE(t.wait());
  EXPECT_GE(j->fsyncs(), 1u);
  const JournalScan scan = scan_journal(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].seq, 1u);
  std::remove(path.c_str());
}

TEST(GroupCommitTest, InvalidTicketFailsImmediately) {
  CommitTicket t;
  EXPECT_FALSE(t.valid());
  EXPECT_FALSE(t.wait());
  EXPECT_FALSE(t.faulted());
}

TEST(GroupCommitTest, ManyConcurrentAppendsShareFewFsyncs) {
  const std::string path = tmp_path("batch");
  std::string error;
  // Generous delay so stragglers from all threads coalesce.
  auto j = Journal::open(path, group_options(64, 2000), &error);
  ASSERT_NE(j, nullptr) << error;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 32;
  std::vector<std::thread> threads;
  std::atomic<int> ok_count{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        JournalRecord r = record_for("s" + std::to_string(t), i);
        CommitTicket ticket = j->append_async(r);
        if (ticket.wait()) ok_count.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(ok_count.load(), kThreads * kPerThread);
  EXPECT_EQ(j->records_written(), static_cast<std::uint64_t>(kThreads * kPerThread));
  // The point of group commit: flushes must be shared.  With 4 writers the
  // batching factor is at least ~2x even on a fast disk.
  EXPECT_LT(j->fsyncs(), j->records_written());
  const JournalScan scan = scan_journal(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan.records.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (std::size_t i = 0; i < scan.records.size(); ++i) {
    EXPECT_EQ(scan.records[i].seq, i + 1) << "seq order must be exact";
  }
  std::remove(path.c_str());
}

TEST(GroupCommitTest, BlockingAppendWrapperWaitsForFlush) {
  const std::string path = tmp_path("wrapper");
  std::string error;
  auto j = Journal::open(path, group_options(), &error);
  ASSERT_NE(j, nullptr) << error;
  JournalRecord r = record_for("a", 1);
  ASSERT_TRUE(j->append(r));
  // Durable at return: the record is on disk already.
  const JournalScan scan = scan_journal(path);
  ASSERT_EQ(scan.records.size(), 1u);
  std::remove(path.c_str());
}

TEST(GroupCommitTest, SyncQuiescesTheQueue) {
  const std::string path = tmp_path("quiesce");
  std::string error;
  auto j = Journal::open(path, group_options(64, 5000), &error);
  ASSERT_NE(j, nullptr) << error;
  std::vector<CommitTicket> tickets;
  for (int i = 0; i < 8; ++i) {
    JournalRecord r = record_for("a", i);
    tickets.push_back(j->append_async(r));
  }
  ASSERT_TRUE(j->sync());  // must cut the delay window and drain everything
  for (CommitTicket& t : tickets) EXPECT_TRUE(t.wait());
  EXPECT_EQ(scan_journal(path).records.size(), 8u);
  std::remove(path.c_str());
}

TEST(GroupCommitTest, DeadJournalFailsAllQueuedTicketsExactlyOnce) {
  const std::string path = tmp_path("dead");
  std::string error;
  auto j = Journal::open(path, group_options(2, 50), &error);
  ASSERT_NE(j, nullptr) << error;
  // The first flushed batch is cut mid-write; everything queued behind it
  // must fail too, with the fault marker on exactly one ticket.
  j->set_fail_after(4);
  std::vector<CommitTicket> tickets;
  for (int i = 0; i < 6; ++i) {
    JournalRecord r = record_for("a", i);
    tickets.push_back(j->append_async(r));
  }
  int failures = 0;
  int faults = 0;
  for (CommitTicket& t : tickets) {
    if (!t.wait()) ++failures;
    if (t.faulted()) ++faults;
  }
  EXPECT_EQ(failures, 6);
  EXPECT_EQ(faults, 1) << "journal death must be reported exactly once";
  EXPECT_TRUE(j->dead());
  EXPECT_EQ(j->append_failures(), 6u);
  // Appends against the dead journal fail immediately, without new faults.
  JournalRecord late = record_for("a", 99);
  CommitTicket t = j->append_async(late);
  EXPECT_FALSE(t.wait());
  EXPECT_FALSE(t.faulted());
  std::remove(path.c_str());
}

TEST(GroupCommitTest, GroupFlushFsyncFailureFailsBatch) {
  const std::string path = tmp_path("flushfault");
  std::string error;
  auto j = Journal::open(path, group_options(), &error);
  ASSERT_NE(j, nullptr) << error;
  j->set_fail_fsync_after(0);
  JournalRecord r = record_for("a", 1);
  CommitTicket t = j->append_async(r);
  EXPECT_FALSE(t.wait());
  EXPECT_TRUE(t.faulted());
  EXPECT_TRUE(j->dead());
  std::remove(path.c_str());
}

TEST(GroupCommitTest, CrashAfterFlushCountEnvKnob) {
  const std::string path = tmp_path("flushknob");
  ::setenv("STEMCP_JOURNAL_CRASH_AFTER", "flush:2", 1);
  std::string error;
  Journal::Options opts;  // every-record: one flush per append
  opts.truncate = true;
  auto j = Journal::open(path, opts, &error);
  ::unsetenv("STEMCP_JOURNAL_CRASH_AFTER");
  ASSERT_NE(j, nullptr) << error;
  JournalRecord r1 = record_for("a", 1);
  JournalRecord r2 = record_for("a", 2);
  JournalRecord r3 = record_for("a", 3);
  EXPECT_TRUE(j->append(r1));
  EXPECT_TRUE(j->append(r2));
  EXPECT_FALSE(j->append(r3)) << "third flush must fail (flush:2)";
  EXPECT_TRUE(j->dead());
  // The two durable records survive; the third was written but not synced —
  // in-process it is still visible, so only count the first two as promised.
  const JournalScan scan = scan_journal(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_GE(scan.records.size(), 2u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Per-site fsync/ftruncate fault injection (satellite: every sync failure
// dead-latches or surfaces an error — no bare ::fsync anywhere).

TEST(GroupCommitTest, AppendSiteFsyncFailureDeadLatches) {
  const std::string path = tmp_path("site_append");
  std::string error;
  Journal::Options opts;  // every-record
  opts.truncate = true;
  auto j = Journal::open(path, opts, &error);
  ASSERT_NE(j, nullptr) << error;
  j->set_fail_fsync_after(0);
  JournalRecord r = record_for("a", 1);
  EXPECT_FALSE(j->append(r));
  EXPECT_TRUE(j->dead());
  EXPECT_EQ(j->append_failures(), 1u);
  std::remove(path.c_str());
}

TEST(GroupCommitTest, SyncSiteFsyncFailureDeadLatches) {
  const std::string path = tmp_path("site_sync");
  std::string error;
  Journal::Options opts;
  opts.fsync = FsyncPolicy::kNone;
  opts.truncate = true;
  auto j = Journal::open(path, opts, &error);
  ASSERT_NE(j, nullptr) << error;
  JournalRecord r = record_for("a", 1);
  ASSERT_TRUE(j->append(r));
  j->set_fail_fsync_after(0);
  EXPECT_FALSE(j->sync());
  EXPECT_TRUE(j->dead());
  std::remove(path.c_str());
}

TEST(GroupCommitTest, TruncateSiteFtruncateFailureDeadLatches) {
  const std::string path = tmp_path("site_trunc");
  std::string error;
  Journal::Options opts;
  opts.truncate = true;
  auto j = Journal::open(path, opts, &error);
  ASSERT_NE(j, nullptr) << error;
  JournalRecord r = record_for("a", 1);
  ASSERT_TRUE(j->append(r));
  j->set_fail_next_truncate();
  EXPECT_FALSE(j->truncate_all(r.seq));
  EXPECT_TRUE(j->dead());
  std::remove(path.c_str());
}

TEST(GroupCommitTest, TruncateSiteFsyncFailureDeadLatches) {
  const std::string path = tmp_path("site_trunc_sync");
  std::string error;
  Journal::Options opts;
  opts.truncate = true;
  auto j = Journal::open(path, opts, &error);
  ASSERT_NE(j, nullptr) << error;
  JournalRecord r = record_for("a", 1);
  ASSERT_TRUE(j->append(r));
  j->set_fail_fsync_after(0);
  EXPECT_FALSE(j->truncate_all(r.seq));
  EXPECT_TRUE(j->dead());
  std::remove(path.c_str());
}

TEST(GroupCommitTest, TornTailSiteFsyncFailureStillDeadLatches) {
  // The torn-tail write path issues its own fsync; combine a byte cut with
  // an fsync fault to prove the failure cannot resurrect the journal.
  const std::string path = tmp_path("site_torn");
  std::string error;
  Journal::Options opts;
  opts.truncate = true;
  auto j = Journal::open(path, opts, &error);
  ASSERT_NE(j, nullptr) << error;
  j->set_fail_after(4);
  j->set_fail_fsync_after(0);
  JournalRecord r = record_for("a", 1);
  EXPECT_FALSE(j->append(r));
  EXPECT_TRUE(j->dead());
  EXPECT_EQ(j->bytes_written(), 4u);
  std::remove(path.c_str());
}

TEST(GroupCommitTest, DestructorSiteFsyncFailureIsContained) {
  const std::string path = tmp_path("site_dtor");
  std::string error;
  Journal::Options opts;
  opts.fsync = FsyncPolicy::kInterval;
  opts.fsync_interval_records = 100;  // keep the append itself sync-free
  opts.truncate = true;
  auto j = Journal::open(path, opts, &error);
  ASSERT_NE(j, nullptr) << error;
  JournalRecord r = record_for("a", 1);
  ASSERT_TRUE(j->append(r));
  j->set_fail_fsync_after(0);
  j.reset();  // destructor's final flush fails; must not crash or hang
  const JournalScan scan = scan_journal(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan.records.size(), 1u);
  std::remove(path.c_str());
}

TEST(GroupCommitTest, DestructorFlushesOutstandingTickets) {
  const std::string path = tmp_path("dtor_drain");
  std::string error;
  auto j = Journal::open(path, group_options(64, 500000), &error);
  ASSERT_NE(j, nullptr) << error;
  // Huge delay: the flusher would normally sit on these for half a second;
  // destruction must flush them instead of dropping them.
  std::vector<CommitTicket> tickets;
  for (int i = 0; i < 5; ++i) {
    JournalRecord r = record_for("a", i);
    tickets.push_back(j->append_async(r));
  }
  j.reset();
  for (CommitTicket& t : tickets) EXPECT_TRUE(t.wait());
  EXPECT_EQ(scan_journal(path).records.size(), 5u);
  std::remove(path.c_str());
}

TEST(GroupCommitTest, IoBackendIsAvailable) {
  auto pw = make_pwrite_backend();
  ASSERT_NE(pw, nullptr);
  EXPECT_STREQ(pw->name(), "pwrite");
  // make_io_backend never fails: io_uring when compiled+supported, else
  // the pwrite fallback.
  auto io = make_io_backend();
  ASSERT_NE(io, nullptr);
  if (!io_uring_available()) EXPECT_STREQ(io->name(), "pwrite");
}

}  // namespace
}  // namespace stemcp::persist
