// Durability-layer unit tests: record codec + CRC, the append-only journal
// writer (fsync policies, fault injection, truncation), front-to-back
// scanning with torn-tail tolerance, and atomic checkpoint files.
#include "persist/journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "persist/checkpoint.h"
#include "persist/recovery.h"

namespace stemcp::persist {
namespace {

std::string tmp_path(const std::string& name) {
  return testing::TempDir() + "stemcp_journal_test_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

JournalRecord sample_record() {
  JournalRecord r;
  r.op = "batch-assign";
  r.session = "alpha";
  r.assignments = {{"PIPE.s0.delay(in->out)", 90e-9},
                   {"PIPE.s1.delay(in->out)", 60.5e-9}};
  r.violation = true;
  r.applied = 0;
  r.restored = 7;
  return r;
}

TEST(Crc32Test, MatchesIeeeCheckValue) {
  // The canonical CRC-32 check value for "123456789".
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0u);
  EXPECT_NE(crc32("a"), crc32("b"));
}

TEST(FsyncPolicyTest, NamesRoundTrip) {
  for (const FsyncPolicy p : {FsyncPolicy::kEveryRecord, FsyncPolicy::kInterval,
                              FsyncPolicy::kNone,
                              FsyncPolicy::kGroupCommit}) {
    FsyncPolicy back = FsyncPolicy::kEveryRecord;
    ASSERT_TRUE(fsync_policy_from(to_string(p), &back));
    EXPECT_EQ(back, p);
  }
  FsyncPolicy out;
  EXPECT_FALSE(fsync_policy_from("sometimes", &out));
}

TEST(RecordCodecTest, RoundTripsAllFields) {
  JournalRecord r = sample_record();
  r.seq = 42;
  const std::string line = encode_record(r);
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  JournalRecord back;
  std::string error;
  ASSERT_TRUE(decode_record(
      std::string_view(line).substr(0, line.size() - 1), &back, &error))
      << error;
  EXPECT_EQ(back, r);
}

TEST(RecordCodecTest, RoundTripsTextWithNewlinesAndBackslashes) {
  JournalRecord r;
  r.seq = 1;
  r.op = "load";
  r.session = "s";
  r.text = "cell A\n  signal x input\nend\\trailer \\n literal\n";
  const std::string line = encode_record(r);
  // The encoded record must still be a single line.
  EXPECT_EQ(line.find('\n'), line.size() - 1);
  JournalRecord back;
  std::string error;
  ASSERT_TRUE(decode_record(
      std::string_view(line).substr(0, line.size() - 1), &back, &error))
      << error;
  EXPECT_EQ(back.text, r.text);
}

TEST(RecordCodecTest, RejectsCorruption) {
  JournalRecord r = sample_record();
  r.seq = 3;
  std::string line = encode_record(r);
  line.pop_back();  // strip '\n'
  JournalRecord out;
  std::string error;

  std::string flipped = line;
  flipped[line.size() / 2] ^= 0x20;  // flip a bit mid-body
  EXPECT_FALSE(decode_record(flipped, &out, &error));
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;

  EXPECT_FALSE(decode_record("garbage", &out, &error));
  EXPECT_FALSE(decode_record("", &out, &error));
  EXPECT_FALSE(decode_record(line.substr(0, line.size() / 2), &out, &error));
}

TEST(JournalTest, AppendScanRoundTrip) {
  const std::string path = tmp_path("roundtrip.journal");
  std::string error;
  Journal::Options opts;
  opts.truncate = true;
  opts.fsync = FsyncPolicy::kNone;
  auto j = Journal::open(path, opts, &error);
  ASSERT_NE(j, nullptr) << error;

  std::vector<JournalRecord> sent;
  for (int i = 0; i < 5; ++i) {
    JournalRecord r = sample_record();
    r.violation = i % 2 == 0;
    ASSERT_TRUE(j->append(r));
    EXPECT_EQ(r.seq, static_cast<std::uint64_t>(i + 1));  // assigned by append
    sent.push_back(r);
  }
  EXPECT_EQ(j->records_written(), 5u);
  EXPECT_EQ(j->next_seq(), 6u);
  j.reset();  // flush + close

  const JournalScan scan = scan_journal(path);
  ASSERT_TRUE(scan.ok()) << scan.error;
  EXPECT_FALSE(scan.torn_tail);
  ASSERT_EQ(scan.records.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(scan.records[i], sent[i]) << "record " << i;
  }
  EXPECT_EQ(scan.valid_bytes, slurp(path).size());
  std::remove(path.c_str());
}

TEST(JournalTest, MissingFileScansEmpty) {
  const JournalScan scan = scan_journal(tmp_path("does_not_exist.journal"));
  EXPECT_TRUE(scan.ok());
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.valid_bytes, 0u);
}

TEST(JournalTest, FailAfterLeavesTornTailAndScanDropsIt) {
  const std::string path = tmp_path("torn.journal");
  std::string error;
  Journal::Options opts;
  opts.truncate = true;
  auto j = Journal::open(path, opts, &error);
  ASSERT_NE(j, nullptr) << error;

  JournalRecord r = sample_record();
  ASSERT_TRUE(j->append(r));
  const std::uint64_t good_bytes = j->bytes_written();

  // Allow 10 more bytes: the next append is cut mid-record.
  j->set_fail_after(10);
  JournalRecord r2 = sample_record();
  EXPECT_FALSE(j->append(r2));
  EXPECT_TRUE(j->dead());
  EXPECT_EQ(j->bytes_written(), good_bytes + 10);
  EXPECT_EQ(j->append_failures(), 1u);
  // Dead journal refuses everything.
  JournalRecord r3 = sample_record();
  EXPECT_FALSE(j->append(r3));
  EXPECT_FALSE(j->sync());
  j.reset();

  const JournalScan scan = scan_journal(path);
  ASSERT_TRUE(scan.ok()) << scan.error;
  EXPECT_TRUE(scan.torn_tail);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.valid_bytes, good_bytes);

  // Recovery's cleanup: cut the torn bytes, rescan clean.
  ASSERT_TRUE(truncate_journal(path, scan.valid_bytes));
  const JournalScan clean = scan_journal(path);
  ASSERT_TRUE(clean.ok());
  EXPECT_FALSE(clean.torn_tail);
  EXPECT_EQ(clean.records.size(), 1u);
  std::remove(path.c_str());
}

TEST(JournalTest, MidFileCorruptionIsFatal) {
  const std::string path = tmp_path("corrupt.journal");
  std::string error;
  Journal::Options opts;
  opts.truncate = true;
  opts.fsync = FsyncPolicy::kNone;
  auto j = Journal::open(path, opts, &error);
  ASSERT_NE(j, nullptr) << error;
  for (int i = 0; i < 3; ++i) {
    JournalRecord r = sample_record();
    ASSERT_TRUE(j->append(r));
  }
  j.reset();

  // Flip a byte inside the FIRST record: valid records follow, so this is
  // corruption, not a torn tail.
  std::string contents = slurp(path);
  contents[20] ^= 0x01;
  std::ofstream(path, std::ios::binary) << contents;
  const JournalScan scan = scan_journal(path);
  EXPECT_FALSE(scan.ok());
  EXPECT_NE(scan.error.find("corrupt"), std::string::npos) << scan.error;
  std::remove(path.c_str());
}

TEST(JournalTest, TruncateAllRestartsAfterSeq) {
  const std::string path = tmp_path("truncate.journal");
  std::string error;
  Journal::Options opts;
  opts.truncate = true;
  opts.fsync = FsyncPolicy::kInterval;
  opts.fsync_interval_records = 2;
  auto j = Journal::open(path, opts, &error);
  ASSERT_NE(j, nullptr) << error;
  for (int i = 0; i < 4; ++i) {
    JournalRecord r = sample_record();
    ASSERT_TRUE(j->append(r));
  }
  ASSERT_TRUE(j->truncate_all(4));
  EXPECT_EQ(j->next_seq(), 5u);
  JournalRecord r = sample_record();
  ASSERT_TRUE(j->append(r));
  EXPECT_EQ(r.seq, 5u);
  j.reset();

  const JournalScan scan = scan_journal(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].seq, 5u);
  std::remove(path.c_str());
}

TEST(JournalTest, CrashAfterEnvironmentKnobCutsEveryNewJournal) {
  const std::string path = tmp_path("envknob.journal");
  ::setenv("STEMCP_JOURNAL_CRASH_AFTER", "5", 1);
  std::string error;
  Journal::Options opts;
  opts.truncate = true;
  auto j = Journal::open(path, opts, &error);
  ::unsetenv("STEMCP_JOURNAL_CRASH_AFTER");
  ASSERT_NE(j, nullptr) << error;
  JournalRecord r = sample_record();
  EXPECT_FALSE(j->append(r));
  EXPECT_TRUE(j->dead());
  EXPECT_EQ(j->bytes_written(), 5u);
  j.reset();
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Checkpoint files

TEST(AtomicWriteTest, WritesContentsAndLeavesNoTmp) {
  const std::string path = tmp_path("atomic.txt");
  std::string error;
  ASSERT_TRUE(atomic_write_file(path, "first\n", &error)) << error;
  EXPECT_EQ(slurp(path), "first\n");
  // Overwrite is atomic too — and the .tmp must be gone.
  ASSERT_TRUE(atomic_write_file(path, "second\n", &error)) << error;
  EXPECT_EQ(slurp(path), "second\n");
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::string out;
  ASSERT_TRUE(read_file(path, &out, &error));
  EXPECT_EQ(out, "second\n");
  EXPECT_FALSE(read_file(path + ".missing", &out, &error));
  std::remove(path.c_str());
}

TEST(CheckpointTest, HeaderRoundTrips) {
  CheckpointMeta meta;
  meta.seq = 17;
  meta.session = "alpha";
  meta.options = "metrics fsync interval interval 8";
  const std::string header = encode_checkpoint_header(meta);
  EXPECT_EQ(header.front(), '#');  // a comment line to LibraryReader
  CheckpointMeta back;
  ASSERT_TRUE(parse_checkpoint_header(header, &back));
  EXPECT_EQ(back.seq, meta.seq);
  EXPECT_EQ(back.session, meta.session);
  EXPECT_EQ(back.options, meta.options);

  CheckpointMeta none;
  EXPECT_FALSE(parse_checkpoint_header("# stemcp library 'x'\ncell A\n",
                                       &none));
  EXPECT_FALSE(parse_checkpoint_header("", &none));
}

TEST(CheckpointTest, WriteAndRecoverLogRoundTrip) {
  const std::string base = tmp_path("ckpt_base");
  CheckpointMeta meta;
  meta.seq = 2;
  meta.session = "s";
  meta.options = "metrics";
  std::string error;
  ASSERT_TRUE(write_checkpoint(checkpoint_path(base), meta,
                               "cell A\nend\n", &error))
      << error;

  // Journal continues past the checkpoint, plus one stale pre-checkpoint
  // record (as left by a crash between checkpoint-rename and truncate).
  Journal::Options opts;
  opts.truncate = true;
  opts.fsync = FsyncPolicy::kNone;
  auto j = Journal::open(journal_path(base), opts, &error);
  ASSERT_NE(j, nullptr) << error;
  for (int i = 0; i < 4; ++i) {  // seqs 1..4; 1..2 are pre-checkpoint
    JournalRecord r = sample_record();
    ASSERT_TRUE(j->append(r));
  }
  j.reset();

  const RecoveredLog log = load_recovered_log(base);
  ASSERT_TRUE(log.ok) << log.error;
  ASSERT_TRUE(log.has_checkpoint);
  EXPECT_EQ(log.meta.seq, 2u);
  EXPECT_EQ(log.meta.options, "metrics");
  EXPECT_EQ(log.checkpoint_text, "cell A\nend\n");
  EXPECT_EQ(log.scan.records.size(), 4u);
  ASSERT_EQ(log.replay.size(), 2u);  // stale seqs 1..2 filtered out
  EXPECT_EQ(log.replay[0].seq, 3u);
  EXPECT_EQ(log.replay[1].seq, 4u);

  std::remove(checkpoint_path(base).c_str());
  std::remove(journal_path(base).c_str());
}

TEST(CheckpointTest, MissingCheckpointIsColdStart) {
  const RecoveredLog log = load_recovered_log(tmp_path("nothing_here"));
  EXPECT_TRUE(log.ok);
  EXPECT_FALSE(log.has_checkpoint);
  EXPECT_TRUE(log.replay.empty());
}

}  // namespace
}  // namespace stemcp::persist
