// Segmented-journal tests: rollover at the size threshold, merged segment
// scans (parallel workers, exact seq order), numbering continuation across
// reopen, truncation deleting sealed segments, and the strict sealed-segment
// rules (torn sealed = fatal, numbering gap = fatal, torn active = fine).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "persist/journal.h"

namespace stemcp::persist {
namespace {

std::string tmp_path(const std::string& name) {
  return testing::TempDir() + "stemcp_segment_test_" + name;
}

void remove_all(const std::string& path) {
  for (const std::uint64_t n : list_journal_segments(path)) {
    std::remove(journal_segment_path(path, n).c_str());
  }
  std::remove(path.c_str());
}

JournalRecord record_for(int i) {
  JournalRecord r;
  r.op = "assign";
  r.session = "seg";
  r.assignments = {{"X.delay", 1e-9 * i}};
  r.applied = 1;
  return r;
}

std::size_t file_size(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return in.good() ? static_cast<std::size_t>(in.tellg()) : 0;
}

/// Write `count` records through a tiny-threshold journal so several sealed
/// segments exist; returns the journal for further use.
std::unique_ptr<Journal> make_segmented(const std::string& path, int count,
                                        std::uint64_t segment_bytes = 128,
                                        bool truncate = true) {
  Journal::Options opts;
  opts.truncate = truncate;
  opts.segment_bytes = segment_bytes;
  std::string error;
  auto j = Journal::open(path, opts, &error);
  EXPECT_NE(j, nullptr) << error;
  if (j == nullptr) return nullptr;
  for (int i = 0; i < count; ++i) {
    JournalRecord r = record_for(i);
    EXPECT_TRUE(j->append(r));
  }
  return j;
}

TEST(SegmentTest, RollsAtThresholdAndScanMergesInOrder) {
  const std::string path = tmp_path("roll");
  remove_all(path);
  auto j = make_segmented(path, 12);
  ASSERT_NE(j, nullptr);
  EXPECT_GE(j->sealed_segments(), 2u) << "128-byte threshold must roll";
  const std::vector<std::uint64_t> segs = list_journal_segments(path);
  ASSERT_EQ(segs.size(), j->sealed_segments());
  for (std::size_t i = 0; i < segs.size(); ++i) EXPECT_EQ(segs[i], i + 1);
  // Every sealed file stays modest (threshold + one record's overshoot).
  for (const std::uint64_t n : segs) {
    EXPECT_LT(file_size(journal_segment_path(path, n)), 256u);
  }
  const JournalScan scan = scan_journal_segments(path);
  ASSERT_TRUE(scan.ok()) << scan.error;
  ASSERT_EQ(scan.records.size(), 12u);
  for (std::size_t i = 0; i < scan.records.size(); ++i) {
    EXPECT_EQ(scan.records[i].seq, i + 1);
  }
  // The active-file scan alone must NOT see the sealed records.
  EXPECT_LT(scan_journal(path).records.size(), 12u);
  remove_all(path);
}

TEST(SegmentTest, ScanWithExplicitParallelismMatchesSerial) {
  const std::string path = tmp_path("par");
  remove_all(path);
  auto j = make_segmented(path, 16);
  ASSERT_NE(j, nullptr);
  ASSERT_GE(j->sealed_segments(), 3u);
  const JournalScan serial = scan_journal_segments(path, 1);
  const JournalScan wide = scan_journal_segments(path, 4);
  ASSERT_TRUE(serial.ok()) << serial.error;
  ASSERT_TRUE(wide.ok()) << wide.error;
  ASSERT_EQ(serial.records.size(), wide.records.size());
  for (std::size_t i = 0; i < serial.records.size(); ++i) {
    EXPECT_EQ(serial.records[i], wide.records[i]);
  }
  remove_all(path);
}

TEST(SegmentTest, ReopenContinuesSegmentNumbering) {
  const std::string path = tmp_path("reopen");
  remove_all(path);
  std::uint64_t sealed_before = 0;
  {
    auto j = make_segmented(path, 8);
    ASSERT_NE(j, nullptr);
    sealed_before = j->sealed_segments();
    ASSERT_GE(sealed_before, 1u);
  }
  // Re-attach without truncating: numbering and seq continue.
  Journal::Options opts;
  opts.segment_bytes = 128;
  const JournalScan before = scan_journal_segments(path);
  opts.next_seq = before.records.back().seq + 1;
  std::string error;
  auto j = Journal::open(path, opts, &error);
  ASSERT_NE(j, nullptr) << error;
  EXPECT_EQ(j->sealed_segments(), sealed_before);
  for (int i = 0; i < 8; ++i) {
    JournalRecord r = record_for(100 + i);
    ASSERT_TRUE(j->append(r));
  }
  EXPECT_GT(j->sealed_segments(), sealed_before);
  const JournalScan scan = scan_journal_segments(path);
  ASSERT_TRUE(scan.ok()) << scan.error;
  ASSERT_EQ(scan.records.size(), 16u);
  for (std::size_t i = 0; i < scan.records.size(); ++i) {
    EXPECT_EQ(scan.records[i].seq, i + 1);
  }
  remove_all(path);
}

TEST(SegmentTest, TruncateAllDeletesSealedSegments) {
  const std::string path = tmp_path("trunc");
  remove_all(path);
  auto j = make_segmented(path, 12);
  ASSERT_NE(j, nullptr);
  ASSERT_GE(j->sealed_segments(), 2u);
  ASSERT_TRUE(j->truncate_all(12));
  EXPECT_EQ(j->sealed_segments(), 0u);
  EXPECT_TRUE(list_journal_segments(path).empty());
  EXPECT_EQ(file_size(path), 0u);
  // Numbering restarts at 1 after the cut.
  JournalRecord r = record_for(99);
  ASSERT_TRUE(j->append(r));
  EXPECT_EQ(r.seq, 13u);
  const JournalScan scan = scan_journal_segments(path);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan.records.size(), 1u);
  remove_all(path);
}

TEST(SegmentTest, TruncatingOpenRemovesStaleSegments) {
  const std::string path = tmp_path("fresh");
  remove_all(path);
  { auto j = make_segmented(path, 12); ASSERT_NE(j, nullptr); }
  ASSERT_FALSE(list_journal_segments(path).empty());
  Journal::Options opts;
  opts.truncate = true;
  opts.segment_bytes = 128;
  std::string error;
  auto j = Journal::open(path, opts, &error);
  ASSERT_NE(j, nullptr) << error;
  EXPECT_EQ(j->sealed_segments(), 0u);
  EXPECT_TRUE(list_journal_segments(path).empty());
  remove_all(path);
}

TEST(SegmentTest, GroupCommitPolicyRollsSegmentsToo) {
  const std::string path = tmp_path("gc");
  remove_all(path);
  Journal::Options opts;
  opts.fsync = FsyncPolicy::kGroupCommit;
  opts.truncate = true;
  opts.segment_bytes = 128;
  std::string error;
  auto j = Journal::open(path, opts, &error);
  ASSERT_NE(j, nullptr) << error;
  for (int i = 0; i < 12; ++i) {
    JournalRecord r = record_for(i);
    ASSERT_TRUE(j->append(r));
  }
  EXPECT_GE(j->sealed_segments(), 1u);
  const JournalScan scan = scan_journal_segments(path);
  ASSERT_TRUE(scan.ok()) << scan.error;
  ASSERT_EQ(scan.records.size(), 12u);
  remove_all(path);
}

TEST(SegmentTest, TornActiveFileIsTolerated) {
  const std::string path = tmp_path("torn_active");
  remove_all(path);
  { auto j = make_segmented(path, 10); ASSERT_NE(j, nullptr); }
  // Tear the ACTIVE file: append garbage without a newline.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "J1 deadbeef torn";
  }
  const JournalScan scan = scan_journal_segments(path);
  ASSERT_TRUE(scan.ok()) << scan.error;
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_EQ(scan.records.size(), 10u);
  // valid_bytes describes the active file only, so recovery can cut it.
  ASSERT_TRUE(truncate_journal(path, scan.valid_bytes));
  const JournalScan after = scan_journal_segments(path);
  EXPECT_FALSE(after.torn_tail);
  EXPECT_EQ(after.records.size(), 10u);
  remove_all(path);
}

TEST(SegmentTest, TornSealedSegmentIsFatal) {
  const std::string path = tmp_path("torn_sealed");
  remove_all(path);
  { auto j = make_segmented(path, 10); ASSERT_NE(j, nullptr); }
  const std::vector<std::uint64_t> segs = list_journal_segments(path);
  ASSERT_FALSE(segs.empty());
  {
    std::ofstream out(journal_segment_path(path, segs.front()),
                      std::ios::binary | std::ios::app);
    out << "J1 deadbeef torn";
  }
  const JournalScan scan = scan_journal_segments(path);
  EXPECT_FALSE(scan.ok());
  EXPECT_NE(scan.error.find("torn tail"), std::string::npos) << scan.error;
  remove_all(path);
}

TEST(SegmentTest, CorruptSealedSegmentIsFatal) {
  const std::string path = tmp_path("corrupt_sealed");
  remove_all(path);
  { auto j = make_segmented(path, 10); ASSERT_NE(j, nullptr); }
  const std::vector<std::uint64_t> segs = list_journal_segments(path);
  ASSERT_FALSE(segs.empty());
  const std::string seg = journal_segment_path(path, segs.front());
  // Flip a byte mid-record: checksum mismatch with records after it.
  std::string contents;
  {
    std::ifstream in(seg, std::ios::binary);
    contents.assign((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  }
  ASSERT_GT(contents.size(), 20u);
  contents[15] = contents[15] == 'x' ? 'y' : 'x';
  {
    std::ofstream out(seg, std::ios::binary | std::ios::trunc);
    out << contents;
  }
  const JournalScan scan = scan_journal_segments(path);
  EXPECT_FALSE(scan.ok());
  EXPECT_NE(scan.error.find("sealed segment"), std::string::npos) << scan.error;
  remove_all(path);
}

TEST(SegmentTest, NumberingGapIsFatal) {
  const std::string path = tmp_path("gap");
  remove_all(path);
  auto j = make_segmented(path, 16);
  ASSERT_NE(j, nullptr);
  ASSERT_GE(j->sealed_segments(), 2u);
  std::remove(journal_segment_path(path, 1).c_str());
  const JournalScan scan = scan_journal_segments(path);
  EXPECT_FALSE(scan.ok());
  EXPECT_NE(scan.error.find("numbering gap"), std::string::npos) << scan.error;
  remove_all(path);
}

TEST(SegmentTest, SeqDiscontinuityAcrossSegmentsIsFatal) {
  const std::string path = tmp_path("seq");
  remove_all(path);
  { auto j = make_segmented(path, 12); ASSERT_NE(j, nullptr); }
  const std::vector<std::uint64_t> segs = list_journal_segments(path);
  ASSERT_GE(segs.size(), 2u);
  // Replace segment 2 with a copy of segment 1: valid records, wrong seqs.
  std::string contents;
  {
    std::ifstream in(journal_segment_path(path, 1), std::ios::binary);
    contents.assign((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  }
  {
    std::ofstream out(journal_segment_path(path, 2),
                      std::ios::binary | std::ios::trunc);
    out << contents;
  }
  const JournalScan scan = scan_journal_segments(path);
  EXPECT_FALSE(scan.ok());
  EXPECT_NE(scan.error.find("does not continue"), std::string::npos)
      << scan.error;
  remove_all(path);
}

TEST(SegmentTest, SegmentPathAndListingHelpers) {
  EXPECT_EQ(journal_segment_path("/tmp/x.journal", 3), "/tmp/x.journal.3");
  const std::string path = tmp_path("helpers");
  remove_all(path);
  // Files with non-numeric suffixes are not segments.
  { std::ofstream(path + ".1") << "x"; }
  { std::ofstream(path + ".2") << "x"; }
  { std::ofstream(path + ".bak") << "x"; }
  { std::ofstream(path + ".10") << "x"; }
  const std::vector<std::uint64_t> segs = list_journal_segments(path);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0], 1u);
  EXPECT_EQ(segs[1], 2u);
  EXPECT_EQ(segs[2], 10u);
  std::remove((path + ".bak").c_str());
  remove_all(path);
}

}  // namespace
}  // namespace stemcp::persist
