// The constraint shell (scriptable editor, thesis §5.4) and wire-cap
// coupling between geometry and timing.
#include <gtest/gtest.h>

#include "stem/shell.h"
#include "stem/stem.h"

namespace stemcp::env {
namespace {

using core::Value;

class ShellTest : public ::testing::Test {
 protected:
  core::PropagationContext ctx;
  core::Variable a{ctx, "cell", "a"};
  core::Variable b{ctx, "cell", "b"};
  ConstraintShell shell{ctx};

  void SetUp() override {
    core::EqualityConstraint::among(ctx, {&a, &b});
    core::BoundConstraint::upper(ctx, b, Value(100.0));
    shell.register_variable(a);
    shell.register_variable(b);
  }
};

TEST_F(ShellTest, SetAndShow) {
  EXPECT_NE(shell.execute("set cell.a 5"), "");
  EXPECT_NE(shell.execute("show cell.b").find("5"), std::string::npos);
  EXPECT_NE(shell.execute("show cell.b").find("propagated"),
            std::string::npos);
}

TEST_F(ShellTest, ViolationReportedNotThrown) {
  const std::string out = shell.execute("set cell.a 500");
  EXPECT_NE(out.find("VIOLATION"), std::string::npos);
  EXPECT_NE(out.find("bound"), std::string::npos);
  EXPECT_NE(shell.execute("warnings").find("bound"), std::string::npos);
}

TEST_F(ShellTest, ProbeHasNoSideEffects) {
  shell.execute("set cell.a 5");
  EXPECT_NE(shell.execute("probe cell.a 50").find("can be set"),
            std::string::npos);
  EXPECT_NE(shell.execute("probe cell.a 500").find("canNOT"),
            std::string::npos);
  EXPECT_NE(shell.execute("show cell.a").find("5"), std::string::npos);
}

TEST_F(ShellTest, TracesAndDot) {
  shell.execute("set cell.a 7");
  EXPECT_NE(shell.execute("antecedents cell.b").find("cell.a"),
            std::string::npos);
  EXPECT_NE(shell.execute("consequences cell.a").find("cell.b"),
            std::string::npos);
  EXPECT_NE(shell.execute("constraints cell.a").find("equality"),
            std::string::npos);
  EXPECT_NE(shell.execute("dot cell.a").find("digraph"), std::string::npos);
}

TEST_F(ShellTest, ToggleAndRestore) {
  EXPECT_NE(shell.execute("off").find("disabled"), std::string::npos);
  shell.execute("set cell.a 9");
  EXPECT_NE(shell.execute("show cell.b").find("nil"), std::string::npos);
  EXPECT_NE(shell.execute("on").find("enabled"), std::string::npos);
  shell.execute("set cell.a 10");
  EXPECT_NE(shell.execute("show cell.b").find("10"), std::string::npos);
  shell.execute("restore");
  EXPECT_NE(shell.execute("show cell.a").find("9"), std::string::npos);
}

TEST_F(ShellTest, ErrorsAndHelp) {
  EXPECT_NE(shell.execute("").find("commands:"), std::string::npos);
  EXPECT_NE(shell.execute("help").find("commands:"), std::string::npos);
  EXPECT_NE(shell.execute("bogus x").find("commands:"), std::string::npos);
  EXPECT_NE(shell.execute("show nope").find("unknown variable"),
            std::string::npos);
  EXPECT_NE(shell.execute("set cell.a").find("needs a numeric"),
            std::string::npos);
  EXPECT_NE(shell.execute("vars").find("cell.a"), std::string::npos);
}

TEST_F(ShellTest, WorkloadVerbsNeedAnAttachedHandler) {
  // `record` / `replay` are forwarded to the workload layer when one is
  // attached (examples/constraint_shell.cpp wires it up); bare shells say so
  // instead of guessing.
  EXPECT_EQ(shell.execute("record status"), "no workload recorder attached\n");
  EXPECT_EQ(shell.execute("replay /tmp/x.trace"),
            "no workload recorder attached\n");
  std::string seen;
  shell.attach_workload([&seen](const std::string& line) {
    seen = line;
    return std::string("handled\n");
  });
  EXPECT_EQ(shell.execute("record start /tmp/x.trace"), "handled\n");
  EXPECT_EQ(seen, "record start /tmp/x.trace")
      << "the full command line reaches the handler";
  EXPECT_NE(shell.execute("help").find("record start"), std::string::npos);
}

TEST_F(ShellTest, AliasRegistration) {
  shell.register_variable("alpha", a);
  shell.execute("set alpha 3");
  EXPECT_NE(shell.execute("show cell.b").find("3"), std::string::npos);
}

// ---- wire capacitance couples geometry and timing --------------------------

TEST(WireCapTest, LongerNetsCarryMoreCapacitance) {
  Library lib;
  auto& drv = lib.define_cell("DRV");
  EXPECT_TRUE(drv.bounding_box().set_user(Value(core::Rect{0, 0, 10, 10})));
  auto& q = drv.declare_signal("q", SignalDirection::kOutput);
  q.add_pin({10, 5}, Side::kRight);
  q.set_output_resistance(1e3);
  auto& rcv = lib.define_cell("RCV");
  EXPECT_TRUE(rcv.bounding_box().set_user(Value(core::Rect{0, 0, 10, 10})));
  auto& d = rcv.declare_signal("d", SignalDirection::kInput);
  d.add_pin({0, 5}, Side::kLeft);

  auto& top = lib.define_cell("TOP");
  auto& s = top.add_subcell(drv, "s");
  auto& far = top.add_subcell(rcv, "far",
                              core::Transform::translate({1000, 0}));
  auto& net = top.add_net("n");
  net.set_capacitance_per_unit(1e-16);  // 0.1 fF per grid unit
  EXPECT_TRUE(net.connect(s, "q"));
  EXPECT_TRUE(net.connect(far, "d"));
  // Pin span: from (10,5) to (1000,5): half-perimeter 990.
  EXPECT_NEAR(net.wire_capacitance(), 990 * 1e-16, 1e-20);
  EXPECT_NEAR(net.total_load_capacitance(&s, "q"), 990 * 1e-16, 1e-20);

  // Moving the receiver closer shortens the wire.
  far.set_transform(core::Transform::translate({100, 0}));
  EXPECT_NEAR(net.wire_capacitance(), 90 * 1e-16, 1e-20);
}

TEST(WireCapTest, WireLoadEntersDelayAdjustment) {
  Library lib;
  auto& inv = lib.define_cell("INV");
  EXPECT_TRUE(inv.bounding_box().set_user(Value(core::Rect{0, 0, 10, 10})));
  auto& in = inv.declare_signal("in", SignalDirection::kInput);
  in.add_pin({0, 5}, Side::kLeft);
  auto& out = inv.declare_signal("out", SignalDirection::kOutput);
  out.add_pin({10, 5}, Side::kRight);
  out.set_output_resistance(1e3);
  inv.declare_delay("in", "out");

  auto& top = lib.define_cell("TOP");
  top.declare_signal("in", SignalDirection::kInput);
  top.declare_signal("out", SignalDirection::kOutput);
  auto& u0 = top.add_subcell(inv, "u0");
  auto& u1 = top.add_subcell(inv, "u1",
                             core::Transform::translate({2000, 0}));
  auto& n_in = top.add_net("n_in");
  EXPECT_TRUE(n_in.connect_io("in"));
  EXPECT_TRUE(n_in.connect(u0, "in"));
  auto& mid = top.add_net("mid");
  mid.set_capacitance_per_unit(1e-15);  // 1 fF per unit: a long slow wire
  EXPECT_TRUE(mid.connect(u0, "out"));
  EXPECT_TRUE(mid.connect(u1, "in"));
  auto& n_out = top.add_net("n_out");
  EXPECT_TRUE(n_out.connect(u1, "out"));
  EXPECT_TRUE(n_out.connect_io("out"));
  top.declare_delay("in", "out");
  top.build_delay_networks();
  EXPECT_TRUE(inv.set_leaf_delay("in", "out", 1e-9));

  // Wire span (10,5)->(2000,5): 1990 units = 1.99 pF; R_out 1k gives
  // ~1.99 us of wire delay on u0's stage — dominating the 2 ns of logic.
  const auto* d = top.find_delay("in", "out");
  ASSERT_TRUE(d->value().is_number());
  EXPECT_NEAR(d->value().as_number(), 2e-9 + 1e3 * 1990e-15, 1e-12);
}

}  // namespace
}  // namespace stemcp::env
