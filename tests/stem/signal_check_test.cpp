// Incremental signal checking through nets (thesis §7.1, Figs 7.1/7.5).
#include <gtest/gtest.h>

#include "stem/stem.h"

namespace stemcp::env {
namespace {

using core::Value;

class SignalCheckTest : public ::testing::Test {
 protected:
  Library lib;
};

// Thesis Fig 7.1: class A has an 8-bit-constrained input; connecting a 4-bit
// net to the corresponding signal of an instance of A violates.
TEST_F(SignalCheckTest, Fig7_1BitWidthViolation) {
  auto& a = lib.define_cell("A", nullptr);
  a.declare_signal("in1", SignalDirection::kInput);
  EXPECT_TRUE(a.signal("in1").bit_width().set_user(Value(8)));

  auto& top = lib.define_cell("NewCell", nullptr);
  auto& inst = top.add_subcell(a, "instA");
  auto& net = top.add_net("n4");
  EXPECT_TRUE(net.bit_width().set_user(Value(4)));
  EXPECT_TRUE(net.connect(inst, "in1").is_violation())
      << "4-bit net against 8-bit constrained signal";
  ASSERT_FALSE(lib.context().violation_log().empty());
}

TEST_F(SignalCheckTest, WidthInferredAcrossNet) {
  auto& a = lib.define_cell("A", nullptr);
  a.declare_signal("in1", SignalDirection::kInput);
  auto& b = lib.define_cell("B", nullptr);
  b.declare_signal("out1", SignalDirection::kOutput);
  EXPECT_TRUE(b.signal("out1").bit_width().set_user(Value(16)));

  auto& top = lib.define_cell("TOP", nullptr);
  auto& ia = top.add_subcell(a, "ia");
  auto& ib = top.add_subcell(b, "ib");
  auto& net = top.add_net("bus");
  EXPECT_TRUE(net.connect(ib, "out1"));
  EXPECT_EQ(net.bit_width().value().as_int(), 16)
      << "net width inferred from the driving signal";
  EXPECT_TRUE(net.connect(ia, "in1"));
  EXPECT_EQ(ia.bit_width("in1").value().as_int(), 16)
      << "receiver instance width inferred; reduces data entry";
}

TEST_F(SignalCheckTest, ClassWidthReachesNetThroughInstanceDual) {
  auto& a = lib.define_cell("A", nullptr);
  a.declare_signal("io", SignalDirection::kInOut);
  auto& top = lib.define_cell("TOP", nullptr);
  auto& inst = top.add_subcell(a, "i");
  auto& net = top.add_net("n");
  EXPECT_TRUE(net.connect(inst, "io"));
  // Width decided at the class level after connection: flows class ->
  // instance dual -> net equality.
  EXPECT_TRUE(a.signal("io").bit_width().set_user(Value(12)));
  EXPECT_EQ(net.bit_width().value().as_int(), 12);
}

TEST_F(SignalCheckTest, DataTypesInferredAcrossNet) {
  auto& reg = lib.types();
  auto& src = lib.define_cell("SRC", nullptr);
  src.declare_signal("q", SignalDirection::kOutput);
  EXPECT_TRUE(
      src.signal("q").data_type().set_user(type_value(reg.at("BCDSignal"))));
  auto& dst = lib.define_cell("DST", nullptr);
  dst.declare_signal("d", SignalDirection::kInput);

  auto& top = lib.define_cell("TOP", nullptr);
  auto& is = top.add_subcell(src, "s");
  auto& id = top.add_subcell(dst, "d");
  auto& net = top.add_net("n");
  EXPECT_TRUE(net.connect(is, "q"));
  EXPECT_TRUE(net.connect(id, "d"));
  EXPECT_EQ(type_of(net.data_type().value()), reg.at("BCDSignal").get());
  EXPECT_EQ(type_of(dst.signal("d").data_type().value()),
            reg.at("BCDSignal").get())
      << "unspecified interface type refined by use (least-commitment)";
}

TEST_F(SignalCheckTest, IncompatibleElectricalTypesRejected) {
  auto& reg = lib.types();
  auto& ttl_cell = lib.define_cell("TTLCELL", nullptr);
  ttl_cell.declare_signal("o", SignalDirection::kOutput);
  EXPECT_TRUE(ttl_cell.signal("o").electrical_type().set_user(
      type_value(reg.at("TTL"))));
  auto& cmos_cell = lib.define_cell("CMOSCELL", nullptr);
  cmos_cell.declare_signal("i", SignalDirection::kInput);
  EXPECT_TRUE(cmos_cell.signal("i").electrical_type().set_user(
      type_value(reg.at("CMOS"))));

  auto& top = lib.define_cell("TOP", nullptr);
  auto& it = top.add_subcell(ttl_cell, "t");
  auto& ic = top.add_subcell(cmos_cell, "c");
  auto& net = top.add_net("n");
  EXPECT_TRUE(net.connect(it, "o"));
  EXPECT_TRUE(net.connect(ic, "i").is_violation());
}

// Thesis Fig 7.5: two instances of class A in different contexts accumulate
// typing constraints on the *class* variables of A.
TEST_F(SignalCheckTest, Fig7_5PerInstanceConstraintsAccumulateOnClassVar) {
  auto& reg = lib.types();
  auto& a = lib.define_cell("A", nullptr);
  a.declare_signal("p", SignalDirection::kInOut);

  auto& top = lib.define_cell("TOP", nullptr);
  auto& a1 = top.add_subcell(a, "a1");
  auto& a2 = top.add_subcell(a, "a2");
  auto& n1 = top.add_net("n1");
  auto& n2 = top.add_net("n2");
  EXPECT_TRUE(n1.connect(a1, "p"));
  EXPECT_TRUE(n2.connect(a2, "p"));
  // The class data-type variable of A.p sits in both nets' compatible
  // constraints.
  const auto& cons = a.signal("p").data_type().constraints();
  EXPECT_EQ(cons.size(), 2u);

  // Environment 1 narrows the type to IntegerSignal...
  EXPECT_TRUE(n1.data_type().set_user(type_value(reg.at("IntegerSignal"))));
  EXPECT_EQ(type_of(a.signal("p").data_type().value()),
            reg.at("IntegerSignal").get());
  // ...which immediately shows up in environment 2's net.
  EXPECT_EQ(type_of(n2.data_type().value()), reg.at("IntegerSignal").get());
}

TEST_F(SignalCheckTest, DisconnectRemovesConstraintParticipation) {
  auto& a = lib.define_cell("A", nullptr);
  a.declare_signal("x", SignalDirection::kInput);
  auto& top = lib.define_cell("TOP", nullptr);
  auto& inst = top.add_subcell(a, "i");
  auto& net = top.add_net("n");
  EXPECT_TRUE(net.connect(inst, "x"));
  EXPECT_TRUE(net.bit_width().set_user(Value(4)));
  EXPECT_EQ(inst.bit_width("x").value().as_int(), 4);

  net.disconnect(inst, "x");
  EXPECT_TRUE(inst.bit_width("x").value().is_nil())
      << "propagated width erased with the connection";
  // The signal can now be used at a different width elsewhere.
  EXPECT_TRUE(inst.bit_width("x").set_user(Value(8)));
  EXPECT_EQ(net.bit_width().value().as_int(), 4) << "net unaffected";
}

TEST_F(SignalCheckTest, SharedClassVarKeptWhileSecondInstanceConnected) {
  auto& a = lib.define_cell("A", nullptr);
  a.declare_signal("x", SignalDirection::kInput);
  auto& top = lib.define_cell("TOP", nullptr);
  auto& i1 = top.add_subcell(a, "i1");
  auto& i2 = top.add_subcell(a, "i2");
  auto& net = top.add_net("n");
  EXPECT_TRUE(net.connect(i1, "x"));
  EXPECT_TRUE(net.connect(i2, "x"));
  ASSERT_EQ(a.signal("x").data_type().constraints().size(), 1u);
  net.disconnect(i1, "x");
  EXPECT_EQ(a.signal("x").data_type().constraints().size(), 1u)
      << "class var still referenced by i2's connection";
  net.disconnect(i2, "x");
  EXPECT_TRUE(a.signal("x").data_type().constraints().empty());
}

}  // namespace
}  // namespace stemcp::env
