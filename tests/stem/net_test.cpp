// Net behaviour: connection bookkeeping, electrical context queries, and
// edge cases not covered by the signal-checking suite.
#include <gtest/gtest.h>

#include "stem/stem.h"

namespace stemcp::env {
namespace {

using core::Value;

class NetTest : public ::testing::Test {
 protected:
  Library lib;
};

TEST_F(NetTest, QualifiedNamesAndLookup) {
  auto& top = lib.define_cell("TOP");
  auto& net = top.add_net("bus");
  EXPECT_EQ(net.qualified_name(), "TOP:bus");
  EXPECT_EQ(top.find_net("bus"), &net);
  EXPECT_EQ(top.find_net("nope"), nullptr);
}

TEST_F(NetTest, ConnectRejectsForeignInstances) {
  auto& leaf = lib.define_cell("LEAF");
  leaf.declare_signal("p", SignalDirection::kInput);
  auto& a = lib.define_cell("A");
  auto& b = lib.define_cell("B");
  auto& inst_in_a = a.add_subcell(leaf, "i");
  auto& net_in_b = b.add_net("n");
  EXPECT_THROW(net_in_b.connect(inst_in_a, "p"), std::logic_error);
  EXPECT_THROW(net_in_b.connect_io("nope"), std::out_of_range);
}

TEST_F(NetTest, DoubleConnectIsIdempotent) {
  auto& leaf = lib.define_cell("LEAF");
  leaf.declare_signal("p", SignalDirection::kInput);
  auto& top = lib.define_cell("TOP");
  auto& inst = top.add_subcell(leaf, "i");
  auto& net = top.add_net("n");
  EXPECT_TRUE(net.connect(inst, "p"));
  EXPECT_TRUE(net.connect(inst, "p"));
  EXPECT_EQ(net.connections().size(), 1u);
}

TEST_F(NetTest, DriverResistanceFindsSubcellOutput) {
  auto& drv = lib.define_cell("DRV");
  auto& q = drv.declare_signal("q", SignalDirection::kOutput);
  q.set_output_resistance(2e3);
  auto& rcv = lib.define_cell("RCV");
  auto& d = rcv.declare_signal("d", SignalDirection::kInput);
  d.set_load_capacitance(1e-14);
  auto& top = lib.define_cell("TOP");
  auto& s = top.add_subcell(drv, "s");
  auto& r1 = top.add_subcell(rcv, "r1");
  auto& r2 = top.add_subcell(rcv, "r2");
  auto& net = top.add_net("n");
  EXPECT_TRUE(net.connect(r1, "d"));
  EXPECT_DOUBLE_EQ(net.driver_resistance(), 0.0) << "undriven yet";
  EXPECT_TRUE(net.connect(s, "q"));
  EXPECT_TRUE(net.connect(r2, "d"));
  EXPECT_DOUBLE_EQ(net.driver_resistance(), 2e3);
  EXPECT_DOUBLE_EQ(net.total_load_capacitance(), 2e-14);
  EXPECT_DOUBLE_EQ(net.total_load_capacitance(&r1, "d"), 1e-14)
      << "exclusion removes one load";
}

TEST_F(NetTest, ParentInputIoDrivesInternalNet) {
  auto& top = lib.define_cell("TOP");
  auto& io = top.declare_signal("in", SignalDirection::kInput);
  io.set_output_resistance(500.0);  // source impedance at the boundary
  auto& net = top.add_net("n");
  EXPECT_TRUE(net.connect_io("in"));
  EXPECT_DOUBLE_EQ(net.driver_resistance(), 500.0);
}

TEST_F(NetTest, ParentOutputIoContributesExternalLoad) {
  auto& top = lib.define_cell("TOP");
  auto& io = top.declare_signal("out", SignalDirection::kOutput);
  io.set_load_capacitance(5e-14);  // estimated external load
  auto& net = top.add_net("n");
  EXPECT_TRUE(net.connect_io("out"));
  EXPECT_DOUBLE_EQ(net.total_load_capacitance(), 5e-14);
}

TEST_F(NetTest, DisconnectIoClearsInternalNetPointer) {
  auto& top = lib.define_cell("TOP");
  top.declare_signal("in", SignalDirection::kInput);
  auto& net = top.add_net("n");
  EXPECT_TRUE(net.connect_io("in"));
  EXPECT_EQ(top.signal("in").internal_net(), &net);
  net.disconnect_io("in");
  EXPECT_EQ(top.signal("in").internal_net(), nullptr);
  EXPECT_TRUE(net.connections().empty());
}

TEST_F(NetTest, RemoveNetDetachesEverything) {
  auto& leaf = lib.define_cell("LEAF");
  leaf.declare_signal("p", SignalDirection::kInput);
  auto& top = lib.define_cell("TOP");
  top.declare_signal("in", SignalDirection::kInput);
  auto& inst = top.add_subcell(leaf, "i");
  auto& net = top.add_net("n");
  EXPECT_TRUE(net.connect_io("in"));
  EXPECT_TRUE(net.connect(inst, "p"));
  top.remove_net(net);
  EXPECT_EQ(top.nets().size(), 0u);
  EXPECT_EQ(inst.net_for("p"), nullptr);
  EXPECT_EQ(top.signal("in").internal_net(), nullptr);
  EXPECT_TRUE(leaf.signal("p").data_type().constraints().empty())
      << "typing constraints dissolved";
}

TEST_F(NetTest, WireCapZeroWithoutTechnology) {
  auto& leaf = lib.define_cell("LEAF");
  EXPECT_TRUE(
      leaf.bounding_box().set_user(Value(core::Rect{0, 0, 10, 10})));
  leaf.declare_signal("p", SignalDirection::kInOut)
      .add_pin({0, 5}, Side::kLeft);
  auto& top = lib.define_cell("TOP");
  auto& i1 = top.add_subcell(leaf, "i1");
  auto& i2 = top.add_subcell(leaf, "i2",
                             core::Transform::translate({100, 0}));
  auto& net = top.add_net("n");
  EXPECT_TRUE(net.connect(i1, "p"));
  EXPECT_TRUE(net.connect(i2, "p"));
  EXPECT_DOUBLE_EQ(net.wire_capacitance(), 0.0)
      << "no capacitance-per-unit configured";
  net.set_capacitance_per_unit(2e-16);
  EXPECT_DOUBLE_EQ(net.wire_capacitance(), 100 * 2e-16);
}

TEST_F(NetTest, InheritedSignalsConnectable) {
  auto& base = lib.define_cell("BASE");
  base.declare_signal("p", SignalDirection::kInput);
  auto& sub = lib.define_cell("SUB", &base);
  auto& top = lib.define_cell("TOP");
  auto& inst = top.add_subcell(sub, "i");
  auto& net = top.add_net("n");
  EXPECT_TRUE(net.connect(inst, "p")) << "signal resolved via superclass";
  EXPECT_EQ(inst.net_for("p"), &net);
}

}  // namespace
}  // namespace stemcp::env
