// Bounding-box checking across the design hierarchy (thesis §7.2).
#include <gtest/gtest.h>

#include "stem/stem.h"

namespace stemcp::env {
namespace {

using core::Rect;
using core::Transform;
using core::Value;

class BBoxTest : public ::testing::Test {
 protected:
  Library lib;
};

TEST_F(BBoxTest, InstanceDefaultsToTransformedClassBox) {
  auto& leaf = lib.define_cell("LEAF", nullptr);
  EXPECT_TRUE(leaf.bounding_box().set_user(Value(Rect{0, 0, 10, 4})));
  auto& top = lib.define_cell("TOP", nullptr);
  auto& inst =
      top.add_subcell(leaf, "i1", Transform::translate({100, 200}));
  ASSERT_TRUE(inst.bounding_box().value().is_rect());
  EXPECT_EQ(inst.bounding_box().value().as_rect(), (Rect{100, 200, 110, 204}));
}

TEST_F(BBoxTest, ClassBoxChangePropagatesToInstances) {
  auto& leaf = lib.define_cell("LEAF", nullptr);
  auto& top = lib.define_cell("TOP", nullptr);
  auto& i1 = top.add_subcell(leaf, "i1", Transform::translate({0, 0}));
  auto& i2 = top.add_subcell(leaf, "i2", Transform::translate({50, 0}));
  EXPECT_TRUE(leaf.bounding_box().set_user(Value(Rect{0, 0, 10, 10})));
  EXPECT_EQ(i1.bounding_box().value().as_rect(), (Rect{0, 0, 10, 10}));
  EXPECT_EQ(i2.bounding_box().value().as_rect(), (Rect{50, 0, 60, 10}));
}

TEST_F(BBoxTest, RotatedPlacement) {
  auto& leaf = lib.define_cell("LEAF", nullptr);
  EXPECT_TRUE(leaf.bounding_box().set_user(Value(Rect{0, 0, 10, 4})));
  auto& top = lib.define_cell("TOP", nullptr);
  auto& inst = top.add_subcell(
      leaf, "r", Transform{core::Orientation::kR90, {20, 0}});
  // R90 maps [0,0 10,4] to [-4,0 0,10], then translate by (20,0).
  EXPECT_EQ(inst.bounding_box().value().as_rect(), (Rect{16, 0, 20, 10}));
}

TEST_F(BBoxTest, ParentClassBoxCalculatedFromSubcells) {
  auto& leaf = lib.define_cell("LEAF", nullptr);
  EXPECT_TRUE(leaf.bounding_box().set_user(Value(Rect{0, 0, 10, 10})));
  auto& top = lib.define_cell("TOP", nullptr);
  top.add_subcell(leaf, "a", Transform::translate({0, 0}));
  top.add_subcell(leaf, "b", Transform::translate({10, 0}));
  const Value v = top.bounding_box().demand();
  ASSERT_TRUE(v.is_rect());
  EXPECT_EQ(v.as_rect(), (Rect{0, 0, 20, 10}));
}

TEST_F(BBoxTest, SubcellGrowthInvalidatesAndRecomputesParentBox) {
  auto& leaf = lib.define_cell("LEAF", nullptr);
  EXPECT_TRUE(leaf.bounding_box().set_user(Value(Rect{0, 0, 10, 10})));
  auto& top = lib.define_cell("TOP", nullptr);
  top.add_subcell(leaf, "a", Transform::translate({0, 0}));
  EXPECT_EQ(top.bounding_box().demand().as_rect(), (Rect{0, 0, 10, 10}));

  // Growing the leaf propagates to the instance box, which procedurally
  // erases the parent's calculated box (thesis Fig 7.8)...
  EXPECT_TRUE(leaf.bounding_box().set_user(Value(Rect{0, 0, 30, 10})));
  EXPECT_TRUE(top.bounding_box().value().is_nil()) << "erased, not stale";
  // ...and lazy recalculation picks up the new extent.
  EXPECT_EQ(top.bounding_box().demand().as_rect(), (Rect{0, 0, 30, 10}));
}

TEST_F(BBoxTest, UserPlacementKeptWhenBigEnough) {
  auto& leaf = lib.define_cell("LEAF", nullptr);
  EXPECT_TRUE(leaf.bounding_box().set_user(Value(Rect{0, 0, 10, 10})));
  auto& top = lib.define_cell("TOP", nullptr);
  auto& inst = top.add_subcell(leaf, "i", Transform::translate({0, 0}));
  // Designer stretches the placement area beyond the class box (io-pins
  // stretch to the boundary, thesis Fig 7.6).
  EXPECT_TRUE(inst.bounding_box().set_user(Value(Rect{0, 0, 40, 40})));
  // Class box growth leaves the user placement alone as long as it fits.
  EXPECT_TRUE(leaf.bounding_box().set_user(Value(Rect{0, 0, 20, 20})));
  EXPECT_EQ(inst.bounding_box().value().as_rect(), (Rect{0, 0, 40, 40}));
}

TEST_F(BBoxTest, ClassGrowthBeyondUserPlacementViolates) {
  auto& leaf = lib.define_cell("LEAF", nullptr);
  EXPECT_TRUE(leaf.bounding_box().set_user(Value(Rect{0, 0, 10, 10})));
  auto& top = lib.define_cell("TOP", nullptr);
  auto& inst = top.add_subcell(leaf, "i", Transform::translate({0, 0}));
  EXPECT_TRUE(inst.bounding_box().set_user(Value(Rect{0, 0, 15, 15})));
  // The internal design grows past the committed placement: violation, and
  // the class box change is rolled back.
  EXPECT_TRUE(
      leaf.bounding_box().set_user(Value(Rect{0, 0, 100, 100})).is_violation());
  EXPECT_EQ(leaf.bounding_box().value().as_rect(), (Rect{0, 0, 10, 10}));
  EXPECT_EQ(inst.bounding_box().value().as_rect(), (Rect{0, 0, 15, 15}));
}

TEST_F(BBoxTest, PlacementSmallerThanClassBoxViolates) {
  auto& leaf = lib.define_cell("LEAF", nullptr);
  EXPECT_TRUE(leaf.bounding_box().set_user(Value(Rect{0, 0, 10, 10})));
  auto& top = lib.define_cell("TOP", nullptr);
  auto& inst = top.add_subcell(leaf, "i", Transform::translate({0, 0}));
  EXPECT_TRUE(
      inst.bounding_box().set_user(Value(Rect{0, 0, 5, 5})).is_violation())
      << "a cell instance cannot be placed in an area smaller than its class "
         "bounding box";
}

TEST_F(BBoxTest, AspectRatioPredicateOnClassBox) {
  auto& leaf = lib.define_cell("LEAF", nullptr);
  core::AspectRatioPredicate::ratio(lib.context(), 2.0, leaf.bounding_box());
  EXPECT_TRUE(leaf.bounding_box().set_user(Value(Rect{0, 0, 20, 10})));
  EXPECT_TRUE(
      leaf.bounding_box().set_user(Value(Rect{0, 0, 10, 10})).is_violation());
}

TEST_F(BBoxTest, TwoLevelHierarchyRollsUp) {
  auto& leaf = lib.define_cell("LEAF", nullptr);
  EXPECT_TRUE(leaf.bounding_box().set_user(Value(Rect{0, 0, 10, 10})));
  auto& mid = lib.define_cell("MID", nullptr);
  mid.add_subcell(leaf, "a", Transform::translate({0, 0}));
  mid.add_subcell(leaf, "b", Transform::translate({10, 0}));
  auto& top = lib.define_cell("TOP", nullptr);
  top.add_subcell(mid, "m1", Transform::translate({0, 0}));
  top.add_subcell(mid, "m2", Transform::translate({0, 10}));
  EXPECT_EQ(top.bounding_box().demand().as_rect(), (Rect{0, 0, 20, 20}))
      << "recursive demand through two levels";
}

TEST_F(BBoxTest, MaxAreaSpecificationCatchesGrowth) {
  auto& leaf = lib.define_cell("LEAF", nullptr);
  EXPECT_TRUE(leaf.bounding_box().set_user(Value(Rect{0, 0, 10, 10})));
  auto& top = lib.define_cell("TOP", nullptr);
  top.add_subcell(leaf, "a", Transform::translate({0, 0}));
  core::MaxAreaPredicate::at_most(lib.context(), 150, top.bounding_box());
  EXPECT_EQ(top.bounding_box().demand().as_rect(), (Rect{0, 0, 10, 10}));
  // Leaf growth ripples up; the parent's recalculated box now breaks the
  // area specification at recalc time.
  EXPECT_TRUE(leaf.bounding_box().set_user(Value(Rect{0, 0, 20, 10})));
  EXPECT_TRUE(top.bounding_box().value().is_nil());
  const Value recalced = top.bounding_box().demand();
  EXPECT_TRUE(recalced.is_nil());
  EXPECT_TRUE(top.bounding_box().value().is_nil())
      << "recalculation hit the area violation and was rolled back";
}

}  // namespace
}  // namespace stemcp::env
