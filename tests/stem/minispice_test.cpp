// MiniSpice engine behaviour beyond the basic round trip: gate logic,
// Elmore-style scaling on RC ladders, and pulse stimuli.
#include <gtest/gtest.h>

#include "stem/stem.h"

namespace stemcp::env {
namespace {

using spice::Card;
using spice::Deck;
using spice::MiniSpiceEngine;
using spice::PulseSource;
using spice::SpicePlot;
using spice::TransientSpec;

Card mos(DeviceInfo::Kind kind, const std::string& d, const std::string& g,
         const std::string& s, double ron = 1e3) {
  Card c;
  c.kind = kind;
  c.nodes = {d, g, s};
  c.ron = ron;
  return c;
}

Card res(const std::string& a, const std::string& b, double ohms) {
  Card c;
  c.kind = DeviceInfo::Kind::kResistor;
  c.nodes = {a, b};
  c.value = ohms;
  return c;
}

Card cap(const std::string& node, double farads) {
  Card c;
  c.kind = DeviceInfo::Kind::kCapacitor;
  c.nodes = {node};
  c.value = farads;
  return c;
}

Card vsrc(const std::string& node, double volts) {
  Card c;
  c.kind = DeviceInfo::Kind::kVoltageSource;
  c.nodes = {node};
  c.value = volts;
  return c;
}

TEST(MiniSpiceTest, PulseSourceShape) {
  const PulseSource p{"in", 0.0, 5.0, 10e-9, 2e-9};
  EXPECT_DOUBLE_EQ(p.at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(p.at(10e-9), 0.0);
  EXPECT_NEAR(p.at(11e-9), 2.5, 1e-9);
  EXPECT_DOUBLE_EQ(p.at(12e-9), 5.0);
  EXPECT_DOUBLE_EQ(p.at(1.0), 5.0);
}

TEST(MiniSpiceTest, Nand2Logic) {
  // Standard CMOS NAND2: parallel PMOS to vdd, series NMOS to ground.
  Deck deck;
  deck.cards.push_back(vsrc("vdd", 5.0));
  deck.cards.push_back(mos(DeviceInfo::Kind::kPmos, "y", "a", "vdd"));
  deck.cards.push_back(mos(DeviceInfo::Kind::kPmos, "y", "b", "vdd"));
  deck.cards.push_back(mos(DeviceInfo::Kind::kNmos, "y", "a", "m"));
  deck.cards.push_back(mos(DeviceInfo::Kind::kNmos, "m", "b", "0"));
  deck.cards.push_back(cap("y", 1e-13));
  deck.cards.push_back(cap("m", 1e-14));

  const auto truth = [&](double va, double vb) {
    Deck d = deck;
    d.cards.push_back(vsrc("a", va));
    d.cards.push_back(vsrc("b", vb));
    TransientSpec spec;
    spec.tstop = 20e-9;
    spec.tstep = 0.2e-9;
    const auto w = MiniSpiceEngine::run(d, spec);
    return w.value_at("y", 20e-9);
  };

  EXPECT_GT(truth(0, 0), 4.0) << "0 NAND 0 = 1";
  EXPECT_GT(truth(0, 5), 4.0) << "0 NAND 1 = 1";
  EXPECT_GT(truth(5, 0), 4.0) << "1 NAND 0 = 1";
  EXPECT_LT(truth(5, 5), 1.0) << "1 NAND 1 = 0";
}

TEST(MiniSpiceTest, VoltageDividerSettles) {
  Deck deck;
  deck.cards.push_back(vsrc("vdd", 6.0));
  deck.cards.push_back(res("vdd", "mid", 1e3));
  deck.cards.push_back(res("mid", "0", 2e3));
  deck.cards.push_back(cap("mid", 1e-13));
  TransientSpec spec;
  spec.tstop = 10e-9;
  const auto w = MiniSpiceEngine::run(deck, spec);
  EXPECT_NEAR(w.value_at("mid", 10e-9), 4.0, 0.1) << "6V * 2k/3k";
}

// RC ladder: delay to the far node grows roughly quadratically with ladder
// length (the Elmore shape) — the waveform substrate reproduces textbook
// interconnect behaviour.
class LadderLength : public ::testing::TestWithParam<int> {};

TEST_P(LadderLength, FarNodeDelayGrowsSuperlinearly) {
  const int n = GetParam();
  Deck deck;
  deck.cards.push_back(vsrc("drive", 5.0));
  std::string prev = "drive";
  for (int i = 0; i < n; ++i) {
    const std::string node = "n" + std::to_string(i);
    deck.cards.push_back(res(prev, node, 1e3));
    deck.cards.push_back(cap(node, 1e-14));
    prev = node;
  }
  TransientSpec spec;
  spec.tstop = 100e-9;
  spec.tstep = 0.1e-9;
  const auto w = MiniSpiceEngine::run(deck, spec);
  SpicePlot plot(w);
  const auto cross = plot.crossing_time(prev, 2.5, true);
  ASSERT_TRUE(cross.has_value()) << "ladder of " << n << " settles";
  // Elmore delay = sum_i R_total(i) * C_i = RC * n(n+1)/2.
  const double elmore = 1e3 * 1e-14 * n * (n + 1) / 2.0;
  EXPECT_GT(*cross, 0.5 * elmore);
  EXPECT_LT(*cross, 3.0 * elmore);
}

INSTANTIATE_TEST_SUITE_P(Lengths, LadderLength, ::testing::Values(2, 4, 8));

TEST(MiniSpiceTest, PulseDrivesRepeatedSwitching) {
  // An inverter driven by a rising pulse: output falls after input rises.
  Deck deck;
  deck.cards.push_back(vsrc("vdd", 5.0));
  deck.cards.push_back(mos(DeviceInfo::Kind::kPmos, "y", "in", "vdd", 2e3));
  deck.cards.push_back(mos(DeviceInfo::Kind::kNmos, "y", "in", "0", 1e3));
  deck.cards.push_back(cap("y", 1e-13));
  TransientSpec spec;
  spec.tstop = 40e-9;
  spec.tstep = 0.2e-9;
  spec.pulses.push_back({"in", 0.0, 5.0, 20e-9, 1e-9});
  const auto w = MiniSpiceEngine::run(deck, spec);
  EXPECT_GT(w.value_at("y", 19e-9), 4.0);
  EXPECT_LT(w.value_at("y", 39e-9), 1.0);
  SpicePlot plot(w);
  const auto d = plot.delay_between("in", "y", 2.5);
  ASSERT_TRUE(d.has_value());
  // RC = 1k * 100 fF = 0.1 ns; ln(2) RC ~ 0.07 ns.
  EXPECT_GT(*d, 0.0);
  EXPECT_LT(*d, 1e-9);
}

TEST(MiniSpiceTest, FloatingNodeHoldsCharge) {
  // No DC path: the node keeps its (zero) initial condition.
  Deck deck;
  deck.cards.push_back(cap("lonely", 1e-13));
  TransientSpec spec;
  spec.tstop = 5e-9;
  const auto w = MiniSpiceEngine::run(deck, spec);
  EXPECT_DOUBLE_EQ(w.value_at("lonely", 5e-9), 0.0);
}

TEST(ReplaceSubcellTest, CommitsSelectionAndRewires) {
  Library lib;
  auto& gen = lib.define_cell("G");
  gen.set_generic(true);
  gen.declare_signal("in", SignalDirection::kInput);
  gen.declare_signal("out", SignalDirection::kOutput);
  auto& real = lib.define_cell("G.R", &gen);
  EXPECT_TRUE(real.bounding_box().set_user(
      core::Value(core::Rect{0, 0, 8, 8})));

  auto& top = lib.define_cell("TOP");
  top.declare_signal("in", SignalDirection::kInput);
  auto& u = top.add_subcell(gen, "u",
                            core::Transform::translate({10, 10}));
  auto& n = top.add_net("n");
  EXPECT_TRUE(n.connect_io("in"));
  EXPECT_TRUE(n.connect(u, "in"));

  CellInstance& committed = top.replace_subcell(u, real);
  EXPECT_EQ(&committed.cls(), &real);
  EXPECT_EQ(committed.name(), "u");
  EXPECT_EQ(committed.transform(), core::Transform::translate({10, 10}));
  EXPECT_TRUE(n.connects(committed, "in")) << "wiring carried over";
  EXPECT_EQ(top.subcells().size(), 1u);
  EXPECT_TRUE(gen.instances().empty());
  ASSERT_EQ(real.instances().size(), 1u);
  // The realization's class box defaults the new placement.
  EXPECT_EQ(committed.bounding_box().value().as_rect(),
            (core::Rect{10, 10, 18, 18}));
}

}  // namespace
}  // namespace stemcp::env
