// Simulation-driven characterization feeding the constraint network — the
// full tool-integration loop of thesis chapters 6 and 7.
#include <gtest/gtest.h>

#include <sstream>

#include "stem/netlist/characterize.h"
#include "stem/stem.h"

namespace stemcp::env {
namespace {

using core::BoundConstraint;
using core::Value;
using spice::CharacterizeOptions;
using spice::characterize_delay;

/// CMOS inverter built from device cells.
CellClass& make_inverter(Library& lib, const std::string& name,
                         double load_farads) {
  auto& nmos = lib.find("NMOSD") != nullptr
                   ? lib.cell("NMOSD")
                   : [&]() -> CellClass& {
    auto& n = lib.define_cell("NMOSD");
    n.declare_signal("d", SignalDirection::kInOut);
    n.declare_signal("g", SignalDirection::kInput);
    n.declare_signal("s", SignalDirection::kInOut);
    n.device().kind = DeviceInfo::Kind::kNmos;
    auto& p = lib.define_cell("PMOSD");
    p.declare_signal("d", SignalDirection::kInOut);
    p.declare_signal("g", SignalDirection::kInput);
    p.declare_signal("s", SignalDirection::kInOut);
    p.device().kind = DeviceInfo::Kind::kPmos;
    auto& v = lib.define_cell("VDDD");
    v.declare_signal("p", SignalDirection::kOutput);
    v.device().kind = DeviceInfo::Kind::kVoltageSource;
    v.device().value = 5.0;
    return n;
  }();
  (void)nmos;
  auto& cap = lib.define_cell("CAP_" + name);
  cap.declare_signal("p", SignalDirection::kInOut);
  cap.device().kind = DeviceInfo::Kind::kCapacitor;
  cap.device().value = load_farads;

  auto& inv = lib.define_cell(name);
  inv.declare_signal("in", SignalDirection::kInput);
  inv.declare_signal("out", SignalDirection::kOutput);
  inv.declare_signal("gnd", SignalDirection::kInOut);
  auto& mp = inv.add_subcell(lib.cell("PMOSD"), "mp");
  auto& mn = inv.add_subcell(lib.cell("NMOSD"), "mn");
  auto& vs = inv.add_subcell(lib.cell("VDDD"), "vs");
  auto& cl = inv.add_subcell(cap, "cl");
  auto& a = inv.add_net("a");
  a.connect_io("in");
  a.connect(mp, "g");
  a.connect(mn, "g");
  auto& y = inv.add_net("y");
  y.connect_io("out");
  y.connect(mp, "d");
  y.connect(mn, "d");
  y.connect(cl, "p");
  auto& pw = inv.add_net("pw");
  pw.connect(vs, "p");
  pw.connect(mp, "s");
  auto& gn = inv.add_net("gn");
  gn.connect_io("gnd");
  gn.connect(mn, "s");
  return inv;
}

TEST(CharacterizeTest, MeasuredDelayEntersConstraintNetwork) {
  Library lib;
  auto& inv = make_inverter(lib, "INV", 1e-13);
  const auto result = characterize_delay(inv, "in", "out");
  ASSERT_TRUE(result.measured.has_value());
  EXPECT_GT(*result.measured, 0.0);
  EXPECT_LT(*result.measured, 2e-9);
  EXPECT_TRUE(result.status.is_ok());
  ClassDelayVar* d = inv.find_delay("in", "out");
  ASSERT_NE(d, nullptr);
  EXPECT_DOUBLE_EQ(d->value().as_number(), *result.measured);
  EXPECT_EQ(d->last_set_by().source(), core::Source::kApplication);
}

TEST(CharacterizeTest, HeavierLoadMeasuresSlower) {
  Library lib;
  auto& light = make_inverter(lib, "INV_L", 5e-14);
  auto& heavy = make_inverter(lib, "INV_H", 4e-13);
  const auto rl = characterize_delay(light, "in", "out");
  const auto rh = characterize_delay(heavy, "in", "out");
  ASSERT_TRUE(rl.measured && rh.measured);
  EXPECT_GT(*rh.measured, *rl.measured * 2)
      << "8x the load is much slower";
}

TEST(CharacterizeTest, MeasurementCheckedAgainstSpecification) {
  Library lib;
  auto& inv = make_inverter(lib, "INV", 4e-13);
  auto& d = inv.declare_delay("in", "out");
  // An impossible spec: the measured value must be rejected and rolled
  // back — simulation results obey the same discipline as manual entry.
  BoundConstraint::upper(lib.context(), d, Value(1e-12));
  const auto result = characterize_delay(inv, "in", "out");
  ASSERT_TRUE(result.measured.has_value());
  EXPECT_TRUE(result.status.is_violation());
  EXPECT_TRUE(d.value().is_nil()) << "restored";
}

TEST(CharacterizeTest, NoOutputEdgeReported) {
  Library lib;
  // A cell whose output never moves (no devices driving it).
  auto& dead = lib.define_cell("DEAD");
  dead.declare_signal("in", SignalDirection::kInput);
  dead.declare_signal("out", SignalDirection::kOutput);
  const auto result = characterize_delay(dead, "in", "out");
  EXPECT_FALSE(result.measured.has_value());
  EXPECT_TRUE(result.status.is_violation());
}

TEST(CsvTest, ExportsAllNodes) {
  spice::Waveforms w;
  w.time = {0.0, 1e-9};
  w.node_voltages["a"] = {0.0, 1.0};
  w.node_voltages["b"] = {5.0, 4.0};
  std::ostringstream out;
  spice::write_csv(w, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("time,a,b"), std::string::npos);
  EXPECT_NE(text.find("0,0,5"), std::string::npos);
  EXPECT_NE(text.find("1e-09,1,4"), std::string::npos);
}

TEST(DeckParseTest, RoundTripsGeneratedText) {
  Library lib;
  auto& inv = make_inverter(lib, "INV", 1e-13);
  const spice::Deck original = spice::extract(inv);
  const spice::Deck parsed = spice::parse_deck(original.to_text());
  ASSERT_EQ(parsed.cards.size(), original.cards.size());
  for (std::size_t i = 0; i < parsed.cards.size(); ++i) {
    EXPECT_EQ(parsed.cards[i].kind, original.cards[i].kind) << i;
    EXPECT_EQ(parsed.cards[i].nodes, original.cards[i].nodes) << i;
  }
  EXPECT_EQ(parsed.title, "INV");
}

TEST(DeckParseTest, HandWrittenDeckSimulates) {
  const char* text = R"(* rc divider
V1 src DC 5
R1 src out 1000
C1 out 1e-12
.END
)";
  const spice::Deck deck = spice::parse_deck(text);
  EXPECT_EQ(deck.cards.size(), 3u);
  spice::TransientSpec spec;
  spec.tstop = 20e-9;
  const auto w = spice::MiniSpiceEngine::run(deck, spec);
  EXPECT_NEAR(w.value_at("out", 20e-9), 5.0, 0.05);
}

TEST(DeckParseTest, ErrorsCarryLineNumbers) {
  EXPECT_THROW(spice::parse_deck("Q1 a b c\n"), std::runtime_error);
  try {
    spice::parse_deck("* t\nR1 a\n");
    FAIL() << "expected error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace stemcp::env
