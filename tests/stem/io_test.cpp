// Library persistence round trips (design database file-out / file-in).
#include <gtest/gtest.h>

#include "stem/io.h"
#include "stem/stem.h"

namespace stemcp::env {
namespace {

using core::Rect;
using core::Transform;
using core::Value;

constexpr double kNs = 1e-9;

/// Build the accumulator design used throughout the suite.
void build_accumulator(Library& lib) {
  auto& reg = lib.define_cell("REGISTER");
  reg.declare_signal("in", SignalDirection::kInput)
      .set_load_capacitance(1e-14);
  reg.declare_signal("out", SignalDirection::kOutput)
      .set_output_resistance(500.0);
  reg.declare_delay("in", "out");
  ASSERT_TRUE(reg.set_leaf_delay("in", "out", 60 * kNs));
  ASSERT_TRUE(reg.bounding_box().set_user(Value(Rect{0, 0, 20, 10})));

  auto& adder = lib.define_cell("ADDER");
  adder.declare_signal("a", SignalDirection::kInput);
  adder.declare_signal("out", SignalDirection::kOutput);
  auto& ad = adder.declare_delay("a", "out");
  core::BoundConstraint::upper(lib.context(), ad, Value(120 * kNs));

  auto& acc = lib.define_cell("ACCUMULATOR");
  acc.declare_signal("in", SignalDirection::kInput);
  acc.declare_signal("out", SignalDirection::kOutput);
  auto& acc_d = acc.declare_delay("in", "out");
  core::BoundConstraint::upper(lib.context(), acc_d, Value(160 * kNs));
  auto& r = acc.add_subcell(reg, "reg");
  auto& a = acc.add_subcell(adder, "add", Transform::translate({20, 0}));
  auto& n_in = acc.add_net("n_in");
  ASSERT_TRUE(n_in.connect_io("in"));
  ASSERT_TRUE(n_in.connect(r, "in"));
  auto& mid = acc.add_net("n_mid");
  ASSERT_TRUE(mid.connect(r, "out"));
  ASSERT_TRUE(mid.connect(a, "a"));
  auto& n_out = acc.add_net("n_out");
  ASSERT_TRUE(n_out.connect(a, "out"));
  ASSERT_TRUE(n_out.connect_io("out"));
  acc.build_delay_networks();
}

TEST(IoTest, WriterEmitsReadableText) {
  Library lib;
  build_accumulator(lib);
  const std::string text = LibraryWriter::to_string(lib);
  EXPECT_NE(text.find("cell REGISTER"), std::string::npos);
  EXPECT_NE(text.find("delay in out value"), std::string::npos);
  EXPECT_NE(text.find("spec <="), std::string::npos);
  EXPECT_NE(text.find("subcell reg REGISTER R0 0 0"), std::string::npos);
  EXPECT_NE(text.find("io in"), std::string::npos);
}

TEST(IoTest, RoundTripPreservesStructureAndBehaviour) {
  Library original;
  build_accumulator(original);
  const std::string text = LibraryWriter::to_string(original);

  Library loaded;
  LibraryReader::read_string(loaded, text);

  // Structure.
  CellClass& acc = loaded.cell("ACCUMULATOR");
  EXPECT_EQ(acc.subcells().size(), 2u);
  EXPECT_EQ(acc.nets().size(), 3u);
  EXPECT_EQ(loaded.cell("REGISTER").bounding_box().value().as_rect(),
            (Rect{0, 0, 20, 10}));

  // Characteristics re-derived on load.
  ClassDelayVar* acc_d = acc.find_delay("in", "out");
  ASSERT_NE(acc_d, nullptr);
  EXPECT_TRUE(acc_d->value().is_nil()) << "adder uncharacterized";

  // Behaviour: the loaded constraint networks are live — the 110 ns adder
  // still violates the 160 ns budget exactly as in the original.
  CellClass& adder = loaded.cell("ADDER");
  EXPECT_TRUE(adder.set_leaf_delay("a", "out", 110 * kNs).is_violation());
  EXPECT_TRUE(adder.set_leaf_delay("a", "out", 90 * kNs));
  EXPECT_DOUBLE_EQ(acc_d->value().as_number(), 150 * kNs);
}

TEST(IoTest, RoundTripIsIdempotent) {
  Library original;
  build_accumulator(original);
  const std::string text1 = LibraryWriter::to_string(original);
  Library loaded;
  LibraryReader::read_string(loaded, text1);
  const std::string text2 = LibraryWriter::to_string(loaded);
  EXPECT_EQ(text1, text2) << "save(load(save(x))) == save(x)";
}

TEST(IoTest, InheritanceAndGenericFlagsSurvive) {
  Library lib;
  auto& g = lib.define_cell("ADD8");
  g.set_generic(true);
  g.declare_signal("in", SignalDirection::kInput);
  lib.define_cell("ADD8.RC", &g);
  const std::string text = LibraryWriter::to_string(lib);

  Library loaded;
  LibraryReader::read_string(loaded, text);
  EXPECT_TRUE(loaded.cell("ADD8").is_generic());
  EXPECT_EQ(loaded.cell("ADD8.RC").superclass(), &loaded.cell("ADD8"));
  EXPECT_NE(loaded.cell("ADD8.RC").find_signal("in"), nullptr)
      << "inherited interface resolves after load";
}

TEST(IoTest, SignalTypesAndPinsSurvive) {
  Library lib;
  auto& c = lib.define_cell("C");
  auto& s = c.declare_signal("q", SignalDirection::kOutput);
  s.add_pin({5, 0}, Side::kBottom);
  ASSERT_TRUE(s.bit_width().set_user(Value(8)));
  ASSERT_TRUE(s.data_type().set_user(type_value(lib.types().at("BCDSignal"))));
  ASSERT_TRUE(
      s.electrical_type().set_user(type_value(lib.types().at("CMOS"))));
  const std::string text = LibraryWriter::to_string(lib);

  Library loaded;
  LibraryReader::read_string(loaded, text);
  IoSignal& q = loaded.cell("C").signal("q");
  EXPECT_EQ(q.bit_width().value().as_int(), 8);
  EXPECT_EQ(type_of(q.data_type().value())->name(), "BCDSignal");
  EXPECT_EQ(type_of(q.electrical_type().value())->name(), "CMOS");
  ASSERT_EQ(q.pins().size(), 1u);
  EXPECT_EQ(q.pins()[0].position, (core::Point{5, 0}));
  EXPECT_EQ(q.pins()[0].side, Side::kBottom);
}

TEST(IoTest, ParametersSurvive) {
  Library lib;
  auto& c = lib.define_cell("C");
  c.declare_parameter("width", 1, 64, Value(8));
  c.declare_parameter("drive", 0.5, 4.0, Value());
  const std::string text = LibraryWriter::to_string(lib);
  EXPECT_NE(text.find("param drive 0.5 4"), std::string::npos);
  EXPECT_NE(text.find("param width 1 64 default 8"), std::string::npos);

  Library loaded;
  LibraryReader::read_string(loaded, text);
  ClassParamVar* w = loaded.cell("C").find_parameter("width");
  ASSERT_NE(w, nullptr);
  EXPECT_DOUBLE_EQ(w->lo(), 1.0);
  EXPECT_DOUBLE_EQ(w->hi(), 64.0);
  EXPECT_DOUBLE_EQ(w->value().as_number(), 8.0);
  ClassParamVar* d = loaded.cell("C").find_parameter("drive");
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->value().is_nil());
  // The reloaded range is live: instances out of range still violate.
  auto& top = loaded.define_cell("TOP");
  auto& inst = top.add_subcell(loaded.cell("C"), "i");
  EXPECT_TRUE(inst.parameter("width").set_user(Value(99)).is_violation());
}

TEST(IoTest, DeviceCellsSurvive) {
  Library lib;
  auto& r = lib.define_cell("R1K");
  r.declare_signal("a", SignalDirection::kInOut);
  r.declare_signal("b", SignalDirection::kInOut);
  r.device().kind = DeviceInfo::Kind::kResistor;
  r.device().value = 1000.0;
  const std::string text = LibraryWriter::to_string(lib);
  Library loaded;
  LibraryReader::read_string(loaded, text);
  EXPECT_TRUE(loaded.cell("R1K").is_device());
  EXPECT_EQ(loaded.cell("R1K").device().kind, DeviceInfo::Kind::kResistor);
  EXPECT_DOUBLE_EQ(loaded.cell("R1K").device().value, 1000.0);
}

TEST(IoTest, ParseErrorsCarryLineNumbers) {
  Library lib;
  EXPECT_THROW(LibraryReader::read_string(lib, "cell A\nbogus keyword\nend\n"),
               std::runtime_error);
  Library lib2;
  try {
    LibraryReader::read_string(lib2, "cell A\n  subcell x NOPE R0 0 0\nend\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(IoTest, ParseErrorsIncludeTheOffendingLineText) {
  Library lib;
  try {
    LibraryReader::read_string(lib, "cell A\nbogus keyword here\nend\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("in \"bogus keyword here\""), std::string::npos)
        << what;
  }
}

TEST(IoTest, ParseErrorLeavesLibraryUntouched) {
  // Reading into an empty library is transactional: a parse error on line
  // 2000 of a big file must not leave half a design behind.
  Library lib("target");
  lib.types().define("customSignal", lib.types().find("DataType"));
  try {
    LibraryReader::read_string(lib,
                               "cell GOOD\n  signal p input\nend\n"
                               "cell BAD\n  frobnicate\nend\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error&) {
  }
  EXPECT_TRUE(lib.cells().empty()) << "failed load must not leave cells";
  EXPECT_EQ(lib.find("GOOD"), nullptr);
  EXPECT_EQ(lib.name(), "target");
  // The caller's registered signal types survive the rollback.
  EXPECT_NE(lib.types().find("customSignal"), nullptr);
  // And the library is still fully usable afterwards.
  LibraryReader::read_string(lib, "cell GOOD\n  signal p input\nend\n");
  EXPECT_NE(lib.find("GOOD"), nullptr);
}

TEST(IoTest, SuccessfulLoadIntoEmptyLibraryKeepsEngineWiring) {
  // The transactional swap moves cells built against a scratch context into
  // the target; constraints must keep firing afterwards.
  Library src;
  build_accumulator(src);
  const std::string text = LibraryWriter::to_string(src);

  Library lib;
  LibraryReader::read_string(lib, text);
  auto& adder = lib.cell("ADDER");
  auto* d = adder.find_delay("a", "out");
  ASSERT_NE(d, nullptr);
  // The 120 ns upper bound survived the move: propagation still rejects.
  EXPECT_TRUE(d->set_user(Value(200 * kNs)).is_violation());
  EXPECT_TRUE(d->set_user(Value(100 * kNs)));
}

TEST(IoTest, ReadIntoNonEmptyLibraryStillAppends) {
  Library lib;
  LibraryReader::read_string(lib, "cell FIRST\n  signal p input\nend\n");
  LibraryReader::read_string(lib, "cell SECOND\n  signal q output\nend\n");
  EXPECT_NE(lib.find("FIRST"), nullptr);
  EXPECT_NE(lib.find("SECOND"), nullptr);
  // A failed append keeps what was already there.
  EXPECT_THROW(LibraryReader::read_string(lib, "cell X\n  junk\nend\n"),
               std::runtime_error);
  EXPECT_NE(lib.find("FIRST"), nullptr);
  EXPECT_NE(lib.find("SECOND"), nullptr);
}

TEST(IoTest, FailedAppendRollsBackCompletely) {
  // Appending into a populated library is transactional too (strong
  // guarantee by rollback): the failing text below instantiates an EXISTING
  // class and attaches a spec constraint before hitting the bad line, so the
  // rollback must unwind the instance registration, the new constraints and
  // every value they propagated — the save image must come back bit-equal.
  Library lib;
  build_accumulator(lib);
  const std::string before = LibraryWriter::to_string(lib);
  const std::size_t cells_before = lib.cells().size();
  const std::size_t constraints_before = lib.context().constraint_count();
  EXPECT_THROW(LibraryReader::read_string(lib,
                                          "cell WRAP\n"
                                          "  signal in input\n"
                                          "  signal out output\n"
                                          "  delay in out\n"
                                          "    spec <= 1e-6\n"
                                          "  subcell inner ACCUMULATOR R0 0 0\n"
                                          "  junk\n"
                                          "end\n"),
               std::runtime_error);
  EXPECT_EQ(lib.find("WRAP"), nullptr);
  EXPECT_EQ(lib.cells().size(), cells_before);
  EXPECT_EQ(lib.context().constraint_count(), constraints_before);
  EXPECT_EQ(LibraryWriter::to_string(lib), before);
  // And the library is still fully usable: the fixed text appends cleanly.
  LibraryReader::read_string(
      lib, "cell WRAP\n  subcell inner ACCUMULATOR R0 0 0\nend\n");
  EXPECT_NE(lib.find("WRAP"), nullptr);
}

TEST(IoTest, FailedAppendUnwindsAcrossMultipleNewCells) {
  Library lib;
  LibraryReader::read_string(lib, "cell BASE\n  signal p input\nend\n");
  const std::string before = LibraryWriter::to_string(lib);
  // Two good cells (the second subclassing BASE) parse before the third
  // fails; all three must vanish, newest-first.
  EXPECT_THROW(
      LibraryReader::read_string(lib,
                                 "cell ONE\n  signal a input\nend\n"
                                 "cell TWO super BASE\n  param w 1 8\nend\n"
                                 "cell THREE\n  delay a\nend\n"),
      std::runtime_error);
  EXPECT_EQ(lib.find("ONE"), nullptr);
  EXPECT_EQ(lib.find("TWO"), nullptr);
  EXPECT_EQ(lib.find("THREE"), nullptr);
  EXPECT_EQ(LibraryWriter::to_string(lib), before);
}

TEST(IoTest, LoadedWidthViolationIsCaughtDuringParse) {
  // The loaded text wires an 8-bit signal to a 4-bit-constrained one; the
  // constraint networks re-instantiate during load, so the inconsistency is
  // reported immediately via the violation log.
  Library lib;
  const char* text = R"(
cell A
  signal p input width 8
end
cell B
  signal q output width 4
end
cell TOP
  subcell ia A R0 0 0
  subcell ib B R0 0 0
  net n
    conn ia p
    conn ib q
end
)";
  LibraryReader::read_string(lib, text);
  EXPECT_FALSE(lib.context().violation_log().empty())
      << "loading re-checks the design";
}

}  // namespace
}  // namespace stemcp::env
