// Property-based suites over randomized designs: the environment layer's
// derived data (bounding boxes, delays) must agree with independently
// computed ground truth for any generated hierarchy.
#include <gtest/gtest.h>

#include <random>

#include "stem/stem.h"

namespace stemcp::env {
namespace {

using core::Rect;
using core::Transform;
using core::Value;

constexpr double kNs = 1e-9;

/// Random two-level hierarchy: L leaf classes with random boxes, one parent
/// with P placements of random leaves at random offsets.
class BBoxSeeds : public ::testing::TestWithParam<unsigned> {};

TEST_P(BBoxSeeds, ParentBoxEqualsBruteForceUnion) {
  std::mt19937 rng(GetParam());
  Library lib;
  std::uniform_int_distribution<core::Coord> dim(1, 40);
  std::uniform_int_distribution<core::Coord> offset(0, 200);

  std::vector<CellClass*> leaves;
  std::vector<Rect> leaf_boxes;
  for (int i = 0; i < 4; ++i) {
    auto& leaf = lib.define_cell("L" + std::to_string(i));
    const Rect box{0, 0, dim(rng), dim(rng)};
    EXPECT_TRUE(leaf.bounding_box().set_user(Value(box)));
    leaves.push_back(&leaf);
    leaf_boxes.push_back(box);
  }
  auto& top = lib.define_cell("TOP");
  std::uniform_int_distribution<std::size_t> pick(0, leaves.size() - 1);
  Rect expected;
  for (int p = 0; p < 12; ++p) {
    const std::size_t which = pick(rng);
    const core::Point at{offset(rng), offset(rng)};
    top.add_subcell(*leaves[which], "p" + std::to_string(p),
                    Transform::translate(at));
    expected = expected.union_with(leaf_boxes[which].translated(at));
  }
  EXPECT_EQ(top.bounding_box().demand().as_rect(), expected);

  // Grow a random leaf and verify the union updates accordingly.
  const std::size_t grown = pick(rng);
  const Rect bigger{0, 0, leaf_boxes[grown].x1 + 10,
                    leaf_boxes[grown].y1 + 10};
  EXPECT_TRUE(leaves[grown]->bounding_box().set_user(Value(bigger)));
  leaf_boxes[grown] = bigger;
  Rect expected2;
  for (const auto& sub : top.subcells()) {
    const std::size_t which = static_cast<std::size_t>(
        sub->cls().name()[1] - '0');
    expected2 = expected2.union_with(
        leaf_boxes[which].translated(sub->transform().translation()));
  }
  EXPECT_EQ(top.bounding_box().demand().as_rect(), expected2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BBoxSeeds, ::testing::Range(200u, 212u));

/// Random pipelines: K stage classes with random delays, a pipeline of S
/// random stages; the derived end-to-end delay must equal the brute-force
/// sum, and budgets must accept/reject accordingly.
class DelaySeeds : public ::testing::TestWithParam<unsigned> {};

TEST_P(DelaySeeds, PipelineDelayEqualsBruteForceSum) {
  std::mt19937 rng(GetParam());
  Library lib;
  std::uniform_real_distribution<double> ns(1.0, 9.0);

  std::vector<CellClass*> stages;
  std::vector<double> stage_delay;
  for (int i = 0; i < 3; ++i) {
    auto& s = lib.define_cell("S" + std::to_string(i));
    s.declare_signal("in", SignalDirection::kInput);
    s.declare_signal("out", SignalDirection::kOutput);
    s.declare_delay("in", "out");
    stages.push_back(&s);
    stage_delay.push_back(ns(rng) * kNs);
  }

  auto& pipe = lib.define_cell("PIPE");
  pipe.declare_signal("in", SignalDirection::kInput);
  pipe.declare_signal("out", SignalDirection::kOutput);
  auto& d = pipe.declare_delay("in", "out");

  std::uniform_int_distribution<std::size_t> pick(0, stages.size() - 1);
  std::vector<std::size_t> chosen;
  CellInstance* prev = nullptr;
  const int length = 4 + static_cast<int>(GetParam() % 5);
  for (int i = 0; i < length; ++i) {
    const std::size_t which = pick(rng);
    chosen.push_back(which);
    auto& inst = pipe.add_subcell(*stages[which], "u" + std::to_string(i));
    auto& net = pipe.add_net("n" + std::to_string(i));
    if (i == 0) {
      ASSERT_TRUE(net.connect_io("in"));
    } else {
      ASSERT_TRUE(net.connect(*prev, "out"));
    }
    ASSERT_TRUE(net.connect(inst, "in"));
    prev = &inst;
  }
  auto& n_out = pipe.add_net("n_out");
  ASSERT_TRUE(n_out.connect(*prev, "out"));
  ASSERT_TRUE(n_out.connect_io("out"));
  pipe.build_delay_networks();

  double expected = 0.0;
  for (std::size_t i = 0; i < stages.size(); ++i) {
    ASSERT_TRUE(stages[i]->set_leaf_delay("in", "out", stage_delay[i]));
  }
  for (const std::size_t which : chosen) expected += stage_delay[which];

  ASSERT_TRUE(d.value().is_number());
  EXPECT_NEAR(d.value().as_number(), expected, 1e-15);

  // A budget below the brute-force sum rejects the design when attached; a
  // budget above accepts.
  auto& tight = lib.context().make<core::BoundConstraint>(
      core::Relation::kLessEqual, Value(expected * 0.9));
  EXPECT_TRUE(tight.add_argument(d).is_violation());
  lib.context().destroy_constraint(tight);
  // Rebuild the value erased by the violation bookkeeping, then attach a
  // loose budget.
  pipe.build_delay_networks();
  ASSERT_TRUE(d.value().is_number());
  auto& loose = lib.context().make<core::BoundConstraint>(
      core::Relation::kLessEqual, Value(expected * 1.1));
  EXPECT_TRUE(loose.add_argument(d));

  // Re-characterizing one stage shifts the sum by its multiplicity.
  const std::size_t bumped = 0;
  int multiplicity = 0;
  for (const std::size_t which : chosen) {
    if (which == bumped) ++multiplicity;
  }
  const double delta = 0.1 * kNs * multiplicity;
  if (expected + delta <= expected * 1.1) {
    ASSERT_TRUE(stages[bumped]->set_leaf_delay("in", "out",
                                               stage_delay[bumped] + 0.1 * kNs));
    EXPECT_NEAR(d.value().as_number(), expected + delta, 1e-15);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DelaySeeds, ::testing::Range(300u, 312u));

}  // namespace
}  // namespace stemcp::env
