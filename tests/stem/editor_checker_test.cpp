// Constraint inspector (thesis §5.4) and batch design checker (ch. 7).
#include <gtest/gtest.h>

#include "stem/stem.h"

namespace stemcp::env {
namespace {

using core::Rect;
using core::Value;

TEST(EditorTest, DescribeVariableShowsValueAndJustification) {
  core::PropagationContext ctx;
  core::Variable v(ctx, "ADDER", "delay");
  EXPECT_TRUE(v.set_user(Value(5)));
  const std::string s = ConstraintInspector::describe(v);
  EXPECT_NE(s.find("ADDER.delay"), std::string::npos);
  EXPECT_NE(s.find("5"), std::string::npos);
  EXPECT_NE(s.find("#USER"), std::string::npos);
}

TEST(EditorTest, AntecedentReportListsSources) {
  core::PropagationContext ctx;
  core::Variable a(ctx, "t", "a"), b(ctx, "t", "b");
  core::EqualityConstraint::among(ctx, {&a, &b});
  EXPECT_TRUE(a.set_user(Value(3)));
  const std::string report = ConstraintInspector::antecedent_report(b);
  EXPECT_NE(report.find("t.a"), std::string::npos);
  EXPECT_NE(report.find("equality"), std::string::npos);
}

TEST(EditorTest, ConsequenceReportListsDownstream) {
  core::PropagationContext ctx;
  core::Variable a(ctx, "t", "a"), b(ctx, "t", "b"), s(ctx, "t", "s");
  core::EqualityConstraint::among(ctx, {&a, &b});
  auto& add = ctx.make<core::UniAdditionConstraint>(1.0);
  add.set_result(s);
  add.basic_add_argument(b);
  EXPECT_TRUE(a.set_user(Value(3)));
  const std::string report = ConstraintInspector::consequence_report(a);
  EXPECT_NE(report.find("t.b"), std::string::npos);
  EXPECT_NE(report.find("t.s"), std::string::npos);
}

TEST(EditorTest, DotDumpContainsNodesAndEdges) {
  core::PropagationContext ctx;
  core::Variable a(ctx, "t", "a"), b(ctx, "t", "b");
  core::EqualityConstraint::among(ctx, {&a, &b});
  EXPECT_TRUE(a.set_user(Value(1)));
  const std::string dot = ConstraintInspector::to_dot({&a});
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("t.a"), std::string::npos);
  EXPECT_NE(dot.find("t.b"), std::string::npos) << "reached via constraint";
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(EditorTest, ToggleAndRestore) {
  core::PropagationContext ctx;
  ConstraintInspector ed(ctx);
  core::Variable a(ctx, "t", "a"), b(ctx, "t", "b");
  core::EqualityConstraint::among(ctx, {&a, &b});
  ed.disable_propagation();
  EXPECT_FALSE(ed.propagation_enabled());
  EXPECT_TRUE(a.set_user(Value(9)));
  EXPECT_TRUE(b.value().is_nil()) << "no propagation while disabled";
  ed.enable_propagation();
  EXPECT_TRUE(a.set_user(Value(10)));
  EXPECT_EQ(b.value().as_int(), 10);
  // Designer-level undo of the last propagation.
  ed.restore_last_propagation();
  EXPECT_EQ(a.value().as_int(), 9);
  EXPECT_TRUE(b.value().is_nil());
}

TEST(EditorTest, WarningsAccumulate) {
  core::PropagationContext ctx;
  ConstraintInspector ed(ctx);
  core::Variable a(ctx, "t", "a");
  core::BoundConstraint::upper(ctx, a, Value(10));
  EXPECT_TRUE(a.set_user(Value(99)).is_violation());
  ASSERT_EQ(ed.warnings().size(), 1u);
  EXPECT_NE(ed.warnings()[0].find("bound"), std::string::npos);
}

TEST(CheckerTest, CleanDesignReportsClean) {
  Library lib;
  auto& leaf = lib.define_cell("LEAF", nullptr);
  leaf.declare_signal("in", SignalDirection::kInput);
  EXPECT_TRUE(leaf.bounding_box().set_user(Value(Rect{0, 0, 10, 10})));
  auto& top = lib.define_cell("TOP", nullptr);
  auto& inst = top.add_subcell(leaf, "i");
  auto& net = top.add_net("n");
  EXPECT_TRUE(net.connect(inst, "in"));
  const CheckReport report = DesignChecker::check(top);
  EXPECT_TRUE(report.clean());
  EXPECT_GT(report.constraints_checked, 0u);
}

TEST(CheckerTest, BatchAuditFindsViolationsIntroducedWhileDisabled) {
  Library lib;
  auto& leaf = lib.define_cell("LEAF", nullptr);
  leaf.declare_signal("in", SignalDirection::kInput);
  EXPECT_TRUE(leaf.signal("in").bit_width().set_user(Value(8)));
  auto& top = lib.define_cell("TOP", nullptr);
  auto& inst = top.add_subcell(leaf, "i");
  auto& net = top.add_net("n");
  EXPECT_TRUE(net.connect(inst, "in"));

  // Massive revision with propagation off (thesis §5.3): inconsistent
  // widths slip in unchecked.
  lib.context().set_enabled(false);
  EXPECT_TRUE(net.bit_width().set_user(Value(4)));
  lib.context().set_enabled(true);

  const CheckReport report = DesignChecker::check(top);
  EXPECT_EQ(report.violation_count(), 1u);
  EXPECT_NE(report.to_string().find("equality"), std::string::npos);
}

TEST(CheckerTest, LibraryAuditDeduplicatesSharedConstraints) {
  Library lib;
  auto& leaf = lib.define_cell("LEAF", nullptr);
  leaf.declare_signal("in", SignalDirection::kInput);
  auto& t1 = lib.define_cell("T1", nullptr);
  auto& i1 = t1.add_subcell(leaf, "i");
  auto& n1 = t1.add_net("n");
  EXPECT_TRUE(n1.connect(i1, "in"));
  const CheckReport per_cell = DesignChecker::check(t1);
  const CheckReport whole = DesignChecker::check(lib);
  EXPECT_GE(whole.constraints_checked, per_cell.constraints_checked);
  EXPECT_TRUE(whole.clean());
}

}  // namespace
}  // namespace stemcp::env
