// Design report rendering.
#include <gtest/gtest.h>

#include "stem/report.h"
#include "stem/stem.h"

namespace stemcp::env {
namespace {

using core::Rect;
using core::Value;

constexpr double kNs = 1e-9;

class ReportTest : public ::testing::Test {
 protected:
  Library lib;

  CellClass& build_pipeline() {
    auto& stage = lib.define_cell("STAGE");
    stage.declare_signal("in", SignalDirection::kInput);
    stage.declare_signal("out", SignalDirection::kOutput);
    stage.declare_delay("in", "out");
    EXPECT_TRUE(stage.bounding_box().set_user(Value(Rect{0, 0, 10, 10})));

    auto& top = lib.define_cell("PIPE");
    top.declare_signal("in", SignalDirection::kInput);
    top.declare_signal("out", SignalDirection::kOutput);
    auto& d = top.declare_delay("in", "out");
    core::BoundConstraint::upper(lib.context(), d, Value(10 * kNs));
    auto& u0 = top.add_subcell(stage, "u0");
    auto& u1 = top.add_subcell(stage, "u1",
                               core::Transform::translate({10, 0}));
    auto& n0 = top.add_net("n0");
    EXPECT_TRUE(n0.connect_io("in"));
    EXPECT_TRUE(n0.connect(u0, "in"));
    auto& n1 = top.add_net("n1");
    EXPECT_TRUE(n1.connect(u0, "out"));
    EXPECT_TRUE(n1.connect(u1, "in"));
    auto& n2 = top.add_net("n2");
    EXPECT_TRUE(n2.connect(u1, "out"));
    EXPECT_TRUE(n2.connect_io("out"));
    top.build_delay_networks();
    EXPECT_TRUE(stage.set_leaf_delay("in", "out", 3 * kNs));
    return top;
  }
};

TEST_F(ReportTest, CellReportCoversEverySection) {
  CellClass& top = build_pipeline();
  const std::string r = DesignReport::cell(top);
  EXPECT_NE(r.find("== PIPE =="), std::string::npos);
  EXPECT_NE(r.find("bounding box:"), std::string::npos);
  EXPECT_NE(r.find("signal in (input)"), std::string::npos);
  EXPECT_NE(r.find("2 subcells, 3 nets"), std::string::npos);
  EXPECT_NE(r.find("u0: STAGE"), std::string::npos);
  EXPECT_NE(r.find("delay in -> out: 6 ns"), std::string::npos);
  EXPECT_NE(r.find("spec: <="), std::string::npos);
  EXPECT_NE(r.find("critical path (6 ns): u0 u1"), std::string::npos);
  EXPECT_EQ(r.find("VIOLATIONS"), std::string::npos) << "clean design";
}

TEST_F(ReportTest, OptionsSuppressSections) {
  CellClass& top = build_pipeline();
  DesignReport::Options options;
  options.include_structure = false;
  options.include_delays = false;
  options.include_signals = false;
  const std::string r = DesignReport::cell(top, options);
  EXPECT_EQ(r.find("subcells"), std::string::npos);
  EXPECT_EQ(r.find("delay in"), std::string::npos);
  EXPECT_EQ(r.find("signal in"), std::string::npos);
  EXPECT_NE(r.find("bounding box:"), std::string::npos);
}

TEST_F(ReportTest, ViolationsSurfaceInReport) {
  CellClass& top = build_pipeline();
  // Sneak in an inconsistency with propagation off.
  lib.context().set_enabled(false);
  auto* net = top.find_net("n1");
  ASSERT_NE(net, nullptr);
  EXPECT_TRUE(net->bit_width().set_user(Value(4)));
  EXPECT_TRUE(
      top.find_subcell("u0")->bit_width("out").set_user(Value(8)));
  lib.context().set_enabled(true);
  const std::string r = DesignReport::cell(top);
  EXPECT_NE(r.find("VIOLATIONS"), std::string::npos);
  EXPECT_NE(r.find("equality"), std::string::npos);
}

TEST_F(ReportTest, LibraryReportListsAllCells) {
  build_pipeline();
  const std::string r = DesignReport::library(lib);
  EXPECT_NE(r.find("2 cells"), std::string::npos);
  EXPECT_NE(r.find("  STAGE"), std::string::npos);
  EXPECT_NE(r.find("  PIPE"), std::string::npos);
  EXPECT_NE(r.find("== STAGE =="), std::string::npos);
  EXPECT_NE(r.find("== PIPE =="), std::string::npos);
}

TEST_F(ReportTest, GenericAndDeviceAnnotations) {
  auto& g = lib.define_cell("GEN");
  g.set_generic(true);
  auto& sub = lib.define_cell("GEN.A", &g);
  (void)sub;
  auto& r1k = lib.define_cell("R1K");
  r1k.device().kind = DeviceInfo::Kind::kResistor;
  const std::string r = DesignReport::library(lib);
  EXPECT_NE(r.find("GEN (generic)"), std::string::npos);
  EXPECT_NE(r.find("[1 subclasses]"), std::string::npos);
  EXPECT_NE(r.find("GEN.A : GEN"), std::string::npos);
  EXPECT_NE(r.find("[device]"), std::string::npos);
}

}  // namespace
}  // namespace stemcp::env
