// Netlist extraction, MiniSpice transient simulation and the SPICE view
// round trip (thesis §6.4.2, Fig 6.3).
#include <gtest/gtest.h>

#include "stem/stem.h"

namespace stemcp::env {
namespace {

using core::Value;
using spice::Deck;
using spice::MiniSpiceEngine;
using spice::SpiceNet;
using spice::SpicePlot;
using spice::SpiceSimulation;
using spice::TransientSpec;

/// Library with primitive devices and a CMOS inverter cell.
class SpiceFixture : public ::testing::Test {
 protected:
  Library lib;
  CellClass* nmos = nullptr;
  CellClass* pmos = nullptr;
  CellClass* inverter = nullptr;

  void SetUp() override {
    nmos = &lib.define_cell("NMOS", nullptr);
    nmos->declare_signal("d", SignalDirection::kInOut);
    nmos->declare_signal("g", SignalDirection::kInput);
    nmos->declare_signal("s", SignalDirection::kInOut);
    nmos->device().kind = DeviceInfo::Kind::kNmos;
    nmos->device().ron = 1e3;

    pmos = &lib.define_cell("PMOS", nullptr);
    pmos->declare_signal("d", SignalDirection::kInOut);
    pmos->declare_signal("g", SignalDirection::kInput);
    pmos->declare_signal("s", SignalDirection::kInOut);
    pmos->device().kind = DeviceInfo::Kind::kPmos;
    pmos->device().ron = 2e3;

    auto& vdd = lib.define_cell("VDD5", nullptr);
    vdd.declare_signal("p", SignalDirection::kOutput);
    vdd.device().kind = DeviceInfo::Kind::kVoltageSource;
    vdd.device().value = 5.0;

    auto& capc = lib.define_cell("C100F", nullptr);
    capc.declare_signal("p", SignalDirection::kInOut);
    capc.device().kind = DeviceInfo::Kind::kCapacitor;
    capc.device().value = 1e-13;

    inverter = &lib.define_cell("INV", nullptr);
    inverter->declare_signal("in", SignalDirection::kInput);
    inverter->declare_signal("out", SignalDirection::kOutput);
    auto& mp = inverter->add_subcell(*pmos, "mp");
    auto& mn = inverter->add_subcell(*nmos, "mn");
    auto& vs = inverter->add_subcell(vdd, "vs");
    auto& cl = inverter->add_subcell(capc, "cl");
    auto& n_in = inverter->add_net("n_in");
    EXPECT_TRUE(n_in.connect_io("in"));
    EXPECT_TRUE(n_in.connect(mp, "g"));
    EXPECT_TRUE(n_in.connect(mn, "g"));
    auto& n_out = inverter->add_net("n_out");
    EXPECT_TRUE(n_out.connect_io("out"));
    EXPECT_TRUE(n_out.connect(mp, "d"));
    EXPECT_TRUE(n_out.connect(mn, "d"));
    EXPECT_TRUE(n_out.connect(cl, "p"));
    auto& n_vdd = inverter->add_net("n_vdd");
    EXPECT_TRUE(n_vdd.connect(vs, "p"));
    EXPECT_TRUE(n_vdd.connect(mp, "s"));
    // NMOS source to ground: a net wired to a "gnd"-named io.
    inverter->declare_signal("gnd", SignalDirection::kInOut);
    auto& n_gnd = inverter->add_net("n_gnd");
    EXPECT_TRUE(n_gnd.connect_io("gnd"));
    EXPECT_TRUE(n_gnd.connect(mn, "s"));
  }
};

TEST_F(SpiceFixture, ExtractionProducesCards) {
  const Deck deck = spice::extract(*inverter);
  ASSERT_EQ(deck.cards.size(), 4u);
  int mos = 0, caps = 0, sources = 0;
  for (const auto& c : deck.cards) {
    if (c.kind == DeviceInfo::Kind::kNmos ||
        c.kind == DeviceInfo::Kind::kPmos) {
      ++mos;
      EXPECT_EQ(c.nodes.size(), 3u);
    }
    if (c.kind == DeviceInfo::Kind::kCapacitor) ++caps;
    if (c.kind == DeviceInfo::Kind::kVoltageSource) ++sources;
    EXPECT_NE(c.origin, nullptr) << "correspondence pointer maintained";
  }
  EXPECT_EQ(mos, 2);
  EXPECT_EQ(caps, 1);
  EXPECT_EQ(sources, 1);
}

TEST_F(SpiceFixture, IoSignalsBecomeTopLevelNodes) {
  const Deck deck = spice::extract(*inverter);
  const auto nodes = deck.nodes();
  EXPECT_NE(std::find(nodes.begin(), nodes.end(), "in"), nodes.end());
  EXPECT_NE(std::find(nodes.begin(), nodes.end(), "out"), nodes.end());
  EXPECT_NE(std::find(nodes.begin(), nodes.end(), "0"), nodes.end())
      << "gnd io mapped to the ground node";
}

TEST_F(SpiceFixture, HierarchicalExtractionFlattens) {
  auto& chain = lib.define_cell("CHAIN3", nullptr);
  chain.declare_signal("in", SignalDirection::kInput);
  chain.declare_signal("out", SignalDirection::kOutput);
  CellInstance* prev = nullptr;
  for (int i = 0; i < 3; ++i) {
    auto& inst = chain.add_subcell(*inverter, "u" + std::to_string(i));
    auto& net = chain.add_net("n" + std::to_string(i));
    if (i == 0) {
      EXPECT_TRUE(net.connect_io("in"));
    } else {
      EXPECT_TRUE(net.connect(*prev, "out"));
    }
    EXPECT_TRUE(net.connect(inst, "in"));
    prev = &inst;
  }
  auto& n_out = chain.add_net("n_out");
  EXPECT_TRUE(n_out.connect(*prev, "out"));
  EXPECT_TRUE(n_out.connect_io("out"));

  const Deck deck = spice::extract(chain);
  EXPECT_EQ(deck.cards.size(), 12u) << "3 inverters x 4 devices";
}

TEST_F(SpiceFixture, DeckTextLooksLikeSpice) {
  SpiceNet net(*inverter);
  const std::string& text = net.text();
  EXPECT_NE(text.find("* INV"), std::string::npos);
  EXPECT_NE(text.find("NMOS"), std::string::npos);
  EXPECT_NE(text.find("PMOS"), std::string::npos);
  EXPECT_NE(text.find(".END"), std::string::npos);
}

TEST_F(SpiceFixture, SpiceNetOutdatedByStructureNotLayout) {
  SpiceNet net(*inverter);
  (void)net.text();
  EXPECT_FALSE(net.outdated());
  inverter->changed(kChangedLayout);
  EXPECT_FALSE(net.outdated()) << "layout-only edits keep the net-list";
  inverter->changed(kChangedStructure);
  EXPECT_TRUE(net.outdated());
}

TEST_F(SpiceFixture, InverterTransientSwitches) {
  SpiceSimulation sim(*inverter);
  sim.spec().tstop = 50e-9;
  sim.spec().tstep = 0.5e-9;
  sim.spec().pulses.push_back({"in", 0.0, 5.0, 10e-9, 1e-9});
  const auto& w = sim.run();
  ASSERT_TRUE(w.has("out"));
  // Before the input rises the output is pulled high; afterwards low.
  EXPECT_GT(w.value_at("out", 9e-9), 4.0);
  EXPECT_LT(w.value_at("out", 49e-9), 1.0);
}

TEST_F(SpiceFixture, PlotMeasuresPropagationDelay) {
  SpiceSimulation sim(*inverter);
  sim.spec().tstop = 50e-9;
  sim.spec().tstep = 0.25e-9;
  sim.spec().pulses.push_back({"in", 0.0, 5.0, 10e-9, 1e-9});
  SpicePlot plot(sim.run());
  const auto t_in = plot.crossing_time("in", 2.5, true);
  ASSERT_TRUE(t_in.has_value());
  const auto d = plot.delay_between("in", "out", 2.5);
  ASSERT_TRUE(d.has_value());
  EXPECT_GT(*d, 0.0);
  EXPECT_LT(*d, 10e-9) << "RC = 1k x 100f is well under 10 ns";
}

TEST_F(SpiceFixture, SimulationOutdatedOnModelEdit) {
  SpiceSimulation sim(*inverter);
  sim.spec().tstop = 10e-9;
  sim.run();
  EXPECT_FALSE(sim.outdated());
  inverter->changed(kChangedStructure);
  EXPECT_TRUE(sim.outdated()) << "thesis Fig 6.3: windows marked outdated";
  EXPECT_NO_THROW(sim.result()) << "stale results still inspectable";
}

TEST_F(SpiceFixture, PlotRendersAscii) {
  SpiceSimulation sim(*inverter);
  sim.spec().tstop = 20e-9;
  sim.spec().pulses.push_back({"in", 0.0, 5.0, 5e-9, 1e-9});
  SpicePlot plot(sim.run());
  const std::string art = plot.render("out", 40, 8);
  EXPECT_NE(art.find('*'), std::string::npos);
  EXPECT_NE(art.find("out"), std::string::npos);
}

TEST_F(SpiceFixture, EngineRejectsMalformedCards) {
  Deck deck;
  spice::Card bad;
  bad.kind = DeviceInfo::Kind::kNmos;
  bad.nodes = {"a", "b"};  // missing source terminal
  deck.cards.push_back(bad);
  EXPECT_THROW(MiniSpiceEngine::run(deck, TransientSpec{}),
               std::invalid_argument);
}

TEST_F(SpiceFixture, RcLowPassSettlesToDrive) {
  // R from a 5 V source node to 'out' with C to ground: classic RC charge.
  Deck deck;
  spice::Card v;
  v.kind = DeviceInfo::Kind::kVoltageSource;
  v.nodes = {"src"};
  v.value = 5.0;
  deck.cards.push_back(v);
  spice::Card r;
  r.kind = DeviceInfo::Kind::kResistor;
  r.nodes = {"src", "out"};
  r.value = 1e3;
  deck.cards.push_back(r);
  spice::Card c;
  c.kind = DeviceInfo::Kind::kCapacitor;
  c.nodes = {"out"};
  c.value = 1e-12;
  deck.cards.push_back(c);

  TransientSpec spec;
  spec.tstop = 20e-9;  // 20 RC
  spec.tstep = 0.1e-9;
  const auto w = MiniSpiceEngine::run(deck, spec);
  EXPECT_NEAR(w.value_at("out", 20e-9), 5.0, 0.05);
  // At t = RC (1 ns) the charge is ~63%.
  EXPECT_NEAR(w.value_at("out", 1e-9), 5.0 * 0.632, 0.25);
}

}  // namespace
}  // namespace stemcp::env
