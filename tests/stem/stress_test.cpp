// Whole-system stress: a three-level datapath built by compilers, checked
// incrementally, persisted, reloaded, audited, simulated and reported —
// every subsystem in one deterministic scenario at a non-toy size.
#include <gtest/gtest.h>

#include "stem/io.h"
#include "stem/report.h"
#include "stem/compilers/generator.h"
#include "stem/stem.h"

namespace stemcp::env {
namespace {

using core::BoundConstraint;
using core::Rect;
using core::Transform;
using core::Value;

constexpr double kNs = 1e-9;

TEST(StressTest, ThreeLevelDatapathLifecycle) {
  Library lib("stress");

  // Level 0: a characterized bit slice.
  auto& slice = lib.define_cell("SLICE");
  ASSERT_TRUE(slice.bounding_box().set_user(Value(Rect{0, 0, 10, 20})));
  auto& cin = slice.declare_signal("cin", SignalDirection::kInput);
  cin.add_pin({0, 10}, Side::kLeft);
  cin.set_load_capacitance(10e-15);
  ASSERT_TRUE(cin.bit_width().set_user(Value(1)));
  auto& cout = slice.declare_signal("cout", SignalDirection::kOutput);
  cout.add_pin({10, 10}, Side::kRight);
  cout.set_output_resistance(500.0);
  ASSERT_TRUE(cout.bit_width().set_user(Value(1)));
  slice.declare_delay("cin", "cout");

  // Level 1: sixteen 8-bit rows generated from the slice.
  ParameterizedCellGenerator gen(lib, "ROW", slice);
  std::vector<CellClass*> rows;
  for (int w = 0; w < 16; ++w) rows.push_back(&gen.realize(8));
  ASSERT_EQ(gen.cached_count(), 1u) << "same width: one realization";
  CellClass& row = *rows[0];
  auto& row_in = row.declare_signal("cin", SignalDirection::kInput);
  (void)row_in;
  auto& row_out = row.declare_signal("cout", SignalDirection::kOutput);
  (void)row_out;
  ASSERT_TRUE(row.find_net("auto0") != nullptr);
  // Expose the boundary carries manually (the generator butts only).
  auto& first = *row.find_subcell("t0");
  auto& last = *row.find_subcell("t7");
  auto& n_ci = row.add_net("n_ci");
  ASSERT_TRUE(n_ci.connect_io("cin"));
  ASSERT_TRUE(n_ci.connect(first, "cin"));
  auto& n_co = row.add_net("n_co");
  ASSERT_TRUE(n_co.connect(last, "cout"));
  ASSERT_TRUE(n_co.connect_io("cout"));
  auto& row_delay = row.declare_delay("cin", "cout");
  row.build_delay_networks();

  // Level 2: a block of 16 row instances with an overall budget.
  auto& block = lib.define_cell("BLOCK");
  block.declare_signal("cin", SignalDirection::kInput);
  block.declare_signal("cout", SignalDirection::kOutput);
  auto& block_delay = block.declare_delay("cin", "cout");
  BoundConstraint::upper(lib.context(), block_delay, Value(300 * kNs));
  CellInstance* prev = nullptr;
  for (int i = 0; i < 16; ++i) {
    auto& inst = block.add_subcell(row, "r" + std::to_string(i),
                                   Transform::translate({0, 25 * i}));
    auto& net = block.add_net("c" + std::to_string(i));
    if (i == 0) {
      ASSERT_TRUE(net.connect_io("cin"));
    } else {
      ASSERT_TRUE(net.connect(*prev, "cout"));
    }
    ASSERT_TRUE(net.connect(inst, "cin"));
    prev = &inst;
  }
  auto& n_last = block.add_net("c_last");
  ASSERT_TRUE(n_last.connect(*prev, "cout"));
  ASSERT_TRUE(n_last.connect_io("cout"));
  block.build_delay_networks();

  // One leaf characterization sweeps all three levels in one propagation —
  // and because all 16 block rows share ONE row class, the row's internal
  // network propagates once (thesis Fig 5.1): 1 slice class + 8 slice duals
  // + 1 row path sum + 1 row delay + 16 row duals + 1 block path sum +
  // 1 block delay = 29 assignments, not the ~145 a flat replication would
  // need.
  lib.context().reset_stats();
  ASSERT_TRUE(slice.set_leaf_delay("cin", "cout", 2 * kNs));
  EXPECT_EQ(lib.context().stats().assignments, 29u);
  ASSERT_TRUE(row_delay.value().is_number());
  EXPECT_NEAR(row_delay.value().as_number(),
              8 * 2 * kNs + 7 * 500.0 * 10e-15, 1e-12);
  ASSERT_TRUE(block_delay.value().is_number());
  EXPECT_GT(block_delay.value().as_number(), 16 * 8 * 2 * kNs);
  EXPECT_LT(block_delay.value().as_number(), 300 * kNs);

  // Geometry rolls up across the levels.
  EXPECT_EQ(row.bounding_box().demand().as_rect(), (Rect{0, 0, 80, 20}));
  const Rect block_box = block.bounding_box().demand().as_rect();
  EXPECT_EQ(block_box.width(), 80);
  EXPECT_GT(block_box.height(), 20 * 15);

  // A too-slow slice revision is caught at the block level and rolled back
  // (budget is 300 ns; 2.5 ns slices would need ~322 ns).
  EXPECT_TRUE(slice.set_leaf_delay("cin", "cout", 2.5 * kNs).is_violation());
  EXPECT_NEAR(row_delay.value().as_number(),
              8 * 2 * kNs + 7 * 500.0 * 10e-15, 1e-12)
      << "restored across all three levels";

  // The whole library audits clean.
  const CheckReport audit = DesignChecker::check(lib);
  EXPECT_TRUE(audit.clean()) << audit.to_string();
  EXPECT_GT(audit.constraints_checked, 100u);

  // Persistence round trip at this size.
  const std::string text = LibraryWriter::to_string(lib);
  Library reloaded("stress2");
  LibraryReader::read_string(reloaded, text);
  CellClass& row2 = reloaded.cell("ROWx8");
  ASSERT_NE(row2.find_delay("cin", "cout"), nullptr);
  EXPECT_NEAR(row2.find_delay("cin", "cout")->value().as_number(),
              row_delay.value().as_number(), 1e-12)
      << "loaded library re-derives the same characteristics";

  // Reporting covers the whole thing without blowing up.
  const std::string report = DesignReport::cell(block);
  EXPECT_NE(report.find("16 subcells"), std::string::npos);
  EXPECT_NE(report.find("critical path"), std::string::npos);
}

}  // namespace
}  // namespace stemcp::env
