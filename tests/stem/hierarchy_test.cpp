// Hierarchical constraint propagation via dual variables (thesis ch. 5).
#include <gtest/gtest.h>

#include "stem/stem.h"

namespace stemcp::env {
namespace {

using core::Justification;
using core::Status;
using core::Value;

class HierarchyTest : public ::testing::Test {
 protected:
  core::PropagationContext ctx;
};

TEST_F(HierarchyTest, InstanceVarRegistersAndUnregisters) {
  ClassVar cv(ctx, "CELL", "p");
  {
    InstanceVar iv(ctx, "top/i1", "p", &cv);
    ASSERT_EQ(cv.instance_duals().size(), 1u);
    EXPECT_EQ(cv.instance_duals()[0], &iv);
    EXPECT_EQ(iv.class_dual(), &cv);
  }
  EXPECT_TRUE(cv.instance_duals().empty());
}

TEST_F(HierarchyTest, ImplicitPropagationScheduledOnLowestPriorityAgenda) {
  // A class var change must reach its instance duals via the
  // #implicitConstraints agenda (thesis §5.1.2).
  ClassVar cv(ctx, "CELL", "p");
  InstanceVar iv(ctx, "top/i1", "p", &cv);
  ctx.reset_stats();
  EXPECT_TRUE(cv.set_user(Value(1)));
  // The instance var was scheduled and ran (even though its default
  // inference assigns nothing).
  EXPECT_EQ(ctx.stats().scheduled_runs, 1u);
}

// Custom pair that *does* propagate values downward, to exercise the full
// hierarchical flow in isolation.
class MirrorInstanceVar : public InstanceVar {
 public:
  using InstanceVar::InstanceVar;

  Status immediate_inference_by_changing(core::Variable& changed) override {
    if (&changed != class_dual() || changed.value().is_nil()) {
      return Status::ok();
    }
    return set_from_constraint(
        changed.value(), *class_dual(),
        Justification::propagated(*class_dual(),
                                  core::DependencyRecord::single(*class_dual())));
  }
};

TEST_F(HierarchyTest, ClassValueFlowsToAllInstances) {
  ClassVar cv(ctx, "CELL", "p");
  MirrorInstanceVar i1(ctx, "top/i1", "p", &cv);
  MirrorInstanceVar i2(ctx, "top/i2", "p", &cv);
  MirrorInstanceVar i3(ctx, "other/i3", "p", &cv);
  EXPECT_TRUE(cv.set_user(Value(42)));
  EXPECT_EQ(i1.value().as_int(), 42);
  EXPECT_EQ(i2.value().as_int(), 42);
  EXPECT_EQ(i3.value().as_int(), 42);
  EXPECT_EQ(i1.last_set_by().constraint(), &cv);
}

TEST_F(HierarchyTest, InstanceNetworksChainOnwardFromImplicitLink) {
  // Fig 5.1: the class-side network result propagates into each instance's
  // external network.
  ClassVar cv(ctx, "CELL", "p");
  MirrorInstanceVar i1(ctx, "top/i1", "p", &cv);
  core::Variable ext(ctx, "top", "ext");
  core::EqualityConstraint::among(ctx, {&i1, &ext});
  EXPECT_TRUE(cv.set_user(Value(5)));
  EXPECT_EQ(ext.value().as_int(), 5) << "crossed hierarchy then external net";
}

TEST_F(HierarchyTest, DependencyAnalysisCrossesHierarchy) {
  ClassVar cv(ctx, "CELL", "p");
  MirrorInstanceVar i1(ctx, "top/i1", "p", &cv);
  EXPECT_TRUE(cv.set_user(Value(5)));
  const core::DependencyTrace ants = i1.antecedents();
  EXPECT_EQ(ants.variables.count(&cv), 1u) << "class var is the antecedent";
  const core::DependencyTrace cons = cv.consequences();
  EXPECT_EQ(cons.variables.count(&i1), 1u)
      << "instance var is the consequence";
}

TEST_F(HierarchyTest, DemandRecalculatesLazily) {
  StemVariable v(ctx, "CELL", "area");
  int recalcs = 0;
  v.set_recalculate([&] {
    ++recalcs;
    v.set_application(Value(100));
  });
  EXPECT_TRUE(v.value().is_nil());
  EXPECT_EQ(v.demand().as_int(), 100);
  EXPECT_EQ(recalcs, 1);
  EXPECT_EQ(v.demand().as_int(), 100);
  EXPECT_EQ(recalcs, 1) << "cached value served without recalculation";
  v.reset_raw();
  EXPECT_EQ(v.demand().as_int(), 100);
  EXPECT_EQ(recalcs, 2) << "erasure forces recalculation on next demand";
}

TEST_F(HierarchyTest, DemandEvalFlagPreventsInfiniteLoops) {
  StemVariable v(ctx, "CELL", "x");
  int recalcs = 0;
  v.set_recalculate([&] {
    ++recalcs;
    (void)v.demand();  // a careless recalculation that re-queries itself
  });
  EXPECT_TRUE(v.demand().is_nil());
  EXPECT_EQ(recalcs, 1) << "evalFlag stopped the recursion";
}

TEST_F(HierarchyTest, ParamRangeViolationDetectedFromInstanceSide) {
  ClassParamVar cp(ctx, "CELL", "width");
  cp.set_range(1.0, 16.0);
  InstanceParamVar ip(ctx, "top/i1", "width", &cp);
  EXPECT_TRUE(ip.set_user(Value(8)));
  EXPECT_TRUE(ip.set_user(Value(32)).is_violation())
      << "instance value outside the class range";
  EXPECT_EQ(ip.value().as_int(), 8);
}

TEST_F(HierarchyTest, ParamRangeTighteningCheckedAgainstInstances) {
  ClassParamVar cp(ctx, "CELL", "width");
  cp.set_range(1.0, 64.0);
  InstanceParamVar ip(ctx, "top/i1", "width", &cp);
  EXPECT_TRUE(ip.set_user(Value(32)));
  // Tightening the range is a direct mutation followed by re-checking via a
  // class-var touch; the instance value 32 now violates [1, 16].
  cp.set_range(1.0, 16.0);
  EXPECT_FALSE(ip.is_satisfied());
}

TEST_F(HierarchyTest, ParamDefaultPropagatesOnlyToUnsetInstances) {
  ClassParamVar cp(ctx, "CELL", "width");
  cp.set_range(1.0, 64.0);
  InstanceParamVar unset(ctx, "top/i1", "width", &cp);
  InstanceParamVar chosen(ctx, "top/i2", "width", &cp);
  EXPECT_TRUE(chosen.set_user(Value(4)));
  EXPECT_TRUE(cp.set(Value(8), Justification::default_value()));
  EXPECT_EQ(unset.value().as_int(), 8) << "default filled in";
  EXPECT_EQ(chosen.value().as_int(), 4) << "explicit choice preserved";
}

TEST_F(HierarchyTest, LevelsSettleBeforeCrossingHierarchy) {
  // Functional constraints outrank implicit links, so a level's internal
  // network finishes before values cross to instances (thesis §5.1.2).
  ClassVar cv(ctx, "CELL", "p");
  MirrorInstanceVar iv(ctx, "top/i1", "p", &cv);
  core::Variable a(ctx, "CELL", "a");
  auto& add = ctx.make<core::UniAdditionConstraint>(1.0);
  add.set_result(cv);
  add.basic_add_argument(a);
  EXPECT_TRUE(a.set_user(Value(10.0)));
  EXPECT_DOUBLE_EQ(cv.value().as_number(), 11.0);
  EXPECT_DOUBLE_EQ(iv.value().as_number(), 11.0);
}

}  // namespace
}  // namespace stemcp::env
