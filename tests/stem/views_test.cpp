// Model/View consistency maintenance and property variables (thesis ch. 6).
#include <gtest/gtest.h>

#include "stem/stem.h"

namespace stemcp::env {
namespace {

using core::UpdateConstraint;
using core::Value;

struct RecordingView : View {
  std::vector<std::string> keys;
  void update(const std::string& key) override { keys.push_back(key); }
};

TEST(ViewsTest, BroadcastReachesAllDependents) {
  struct M : Model {} model;
  RecordingView v1, v2;
  model.add_dependent(v1);
  model.add_dependent(v2);
  model.changed();
  EXPECT_EQ(v1.keys.size(), 1u);
  EXPECT_EQ(v2.keys.size(), 1u);
  EXPECT_EQ(v1.keys[0], std::string(kChangedAny));
}

TEST(ViewsTest, SelectiveErasureCarriesKey) {
  struct M : Model {} model;
  RecordingView v;
  model.add_dependent(v);
  model.changed(kChangedLayout);
  model.changed(kChangedStructure);
  ASSERT_EQ(v.keys.size(), 2u);
  EXPECT_EQ(v.keys[0], kChangedLayout);
  EXPECT_EQ(v.keys[1], kChangedStructure);
}

TEST(ViewsTest, AddDependentIsIdempotent) {
  struct M : Model {} model;
  RecordingView v;
  model.add_dependent(v);
  model.add_dependent(v);
  model.changed();
  EXPECT_EQ(v.keys.size(), 1u);
}

TEST(ViewsTest, ViewMayDeregisterDuringUpdate) {
  struct M : Model {} model;
  struct SelfRemoving : View {
    Model* m = nullptr;
    int updates = 0;
    void update(const std::string&) override {
      ++updates;
      m->remove_dependent(*this);
    }
  } v;
  v.m = &model;
  model.add_dependent(v);
  model.changed();
  model.changed();
  EXPECT_EQ(v.updates, 1) << "deregistered after first update";
}

// The full consistency-maintenance combination (thesis §6.3): an
// update-constraint erases a property variable whose implicit invocation
// recalculates on demand.
TEST(ViewsTest, UpdateConstraintPlusImplicitInvocation) {
  core::PropagationContext ctx;
  core::Variable layout(ctx, "cell", "layout");
  StemVariable area(ctx, "cell", "area");
  int recalcs = 0;
  area.set_recalculate([&] {
    ++recalcs;
    area.set_application(Value(static_cast<std::int64_t>(
        layout.value().is_int() ? layout.value().as_int() * 10 : 0)));
  });
  UpdateConstraint::depends(ctx, {&area}, {&layout});

  EXPECT_TRUE(layout.set_user(Value(4)));
  EXPECT_EQ(area.demand().as_int(), 40);
  EXPECT_EQ(recalcs, 1);

  // Three edits, zero recalculations until the next demand.
  EXPECT_TRUE(layout.set_user(Value(5)));
  EXPECT_TRUE(layout.set_user(Value(6)));
  EXPECT_TRUE(layout.set_user(Value(7)));
  EXPECT_EQ(recalcs, 1);
  EXPECT_TRUE(area.value().is_nil()) << "erased, awaiting demand";
  EXPECT_EQ(area.demand().as_int(), 70);
  EXPECT_EQ(recalcs, 2) << "edits coalesced into one recalculation";
}

TEST(ViewsTest, ChainedPropertyVariables) {
  // bbox -> area -> cost: erasure cascades; demand rebuilds the chain.
  core::PropagationContext ctx;
  core::Variable bbox(ctx, "cell", "bbox");
  StemVariable area(ctx, "cell", "area");
  StemVariable cost(ctx, "cell", "cost");
  area.set_recalculate([&] {
    if (bbox.value().is_rect()) {
      area.set_application(Value(bbox.value().as_rect().area()));
    }
  });
  cost.set_recalculate([&] {
    const core::Value& a = area.demand();
    if (a.is_int()) cost.set_application(Value(a.as_int() * 3));
  });
  UpdateConstraint::depends(ctx, {&area}, {&bbox});
  UpdateConstraint::depends(ctx, {&cost}, {&area});

  EXPECT_TRUE(bbox.set_user(Value(core::Rect{0, 0, 4, 5})));
  EXPECT_EQ(cost.demand().as_int(), 60);
  EXPECT_TRUE(bbox.set_user(Value(core::Rect{0, 0, 10, 10})));
  EXPECT_TRUE(cost.value().is_nil()) << "cascaded erasure";
  EXPECT_EQ(cost.demand().as_int(), 300);
}

TEST(ViewsTest, CellChangeBroadcastStopsAtUnaffectedLevels) {
  Library lib;
  auto& leaf = lib.define_cell("LEAF", nullptr);
  auto& mid = lib.define_cell("MID", nullptr);
  mid.add_subcell(leaf, "l");
  RecordingView mid_view;
  mid.add_dependent(mid_view);
  leaf.changed(kChangedStructure);
  EXPECT_EQ(mid_view.keys.size(), 1u);
  // A cell with no instances broadcasts only to its own views.
  RecordingView leaf_view;
  leaf.add_dependent(leaf_view);
  mid.changed(kChangedStructure);
  EXPECT_TRUE(leaf_view.keys.empty())
      << "changes flow up the hierarchy, never down";
}

}  // namespace
}  // namespace stemcp::env
