// End-to-end integration: one design exercising every subsystem together —
// tile compilation, signal typing, bounding boxes, hierarchical delay
// networks, netlist extraction + MiniSpice, module selection, the batch
// checker and the constraint inspector.
#include <gtest/gtest.h>

#include "stem/stem.h"

namespace stemcp::env {
namespace {

using core::BoundConstraint;
using core::Rect;
using core::Transform;
using core::Value;

constexpr double kNs = 1e-9;

class IntegrationTest : public ::testing::Test {
 protected:
  Library lib{"integration"};

  /// A characterized bit-slice tile with pins, types, widths and delay.
  CellClass& make_slice(const std::string& name, double delay_ns,
                        core::Coord width) {
    auto& slice = lib.define_cell(name, nullptr);
    slice.bounding_box().set_user(Value(Rect{0, 0, width, 20}));
    auto& cin = slice.declare_signal("cin", SignalDirection::kInput);
    cin.add_pin({0, 10}, Side::kLeft);
    cin.set_load_capacitance(20e-15);
    EXPECT_TRUE(cin.bit_width().set_user(Value(1)));
    EXPECT_TRUE(cin.electrical_type().set_user(
        type_value(lib.types().at("CMOS"))));
    auto& cout = slice.declare_signal("cout", SignalDirection::kOutput);
    cout.add_pin({width, 10}, Side::kRight);
    cout.set_output_resistance(1e3);
    EXPECT_TRUE(cout.bit_width().set_user(Value(1)));
    EXPECT_TRUE(cout.electrical_type().set_user(
        type_value(lib.types().at("CMOS"))));
    slice.declare_delay("cin", "cout");
    EXPECT_TRUE(slice.set_leaf_delay("cin", "cout", delay_ns * kNs));
    return slice;
  }
};

TEST_F(IntegrationTest, CompiledDatapathEndToEnd) {
  auto& slice = make_slice("SLICE", 2.0, 10);

  // 1. Compile an 8-bit datapath row from the slice.
  auto& row = lib.define_cell("ROW8", nullptr);
  GraphCompiler g;
  g.add_node("s", slice, Transform{}, 8, Side::kRight);
  g.expose("s.0", "cin", "cin");
  g.expose("s.7", "cout", "cout");
  const CompileResult res = g.compile(row);
  ASSERT_TRUE(res.status.is_ok());
  EXPECT_EQ(row.subcells().size(), 8u);

  // 2. Geometry rolled up.
  EXPECT_EQ(row.bounding_box().demand().as_rect(), (Rect{0, 0, 80, 20}));

  // 3. Signal types and widths inferred onto the compiled interface.
  Net* carry0 = row.find_subcell("s.0")->net_for("cout");
  ASSERT_NE(carry0, nullptr);
  EXPECT_EQ(carry0->bit_width().value().as_int(), 1);
  EXPECT_EQ(type_of(carry0->electrical_type().value())->name(), "CMOS");

  // 4. Hierarchical delay: carry ripples through 8 slices with RC loading
  //    between stages (1k ohm driving 20 fF = 0.02 ns per internal hop).
  auto& d = row.declare_delay("cin", "cout");
  BoundConstraint::upper(lib.context(), d, Value(20 * kNs));
  row.build_delay_networks();
  ASSERT_TRUE(d.value().is_number());
  EXPECT_NEAR(d.value().as_number(), 8 * 2.0 * kNs + 7 * 0.02 * kNs,
              1e-12);

  // 5. Least-commitment: a slower slice revision blows the row budget and
  //    is rejected at the row level.
  EXPECT_TRUE(slice.set_leaf_delay("cin", "cout", 3.0 * kNs).is_violation());
  EXPECT_NEAR(d.value().as_number(), 16.14 * kNs, 1e-12) << "restored";

  // 6. Batch audit agrees that everything is consistent.
  const CheckReport report = DesignChecker::check(row);
  EXPECT_TRUE(report.clean()) << report.to_string();

  // 7. The inspector can walk the delay network.
  const std::string trace = ConstraintInspector::antecedent_report(d);
  EXPECT_NE(trace.find("uniMaximum"), std::string::npos);
  EXPECT_NE(trace.find("SLICE"), std::string::npos);
}

TEST_F(IntegrationTest, GenericSlotSelectionWithinCompiledDesign) {
  // A generic slice family: fast-wide vs slow-narrow realizations.
  auto& gen = lib.define_cell("GSLICE", nullptr);
  gen.set_generic(true);
  gen.declare_signal("cin", SignalDirection::kInput);
  gen.declare_signal("cout", SignalDirection::kOutput);
  gen.declare_delay("cin", "cout");
  auto& fast = lib.define_cell("GSLICE.F", &gen);
  EXPECT_TRUE(fast.set_leaf_delay("cin", "cout", 1 * kNs));
  EXPECT_TRUE(fast.bounding_box().set_user(Value(Rect{0, 0, 20, 20})));
  auto& slow = lib.define_cell("GSLICE.S", &gen);
  EXPECT_TRUE(slow.set_leaf_delay("cin", "cout", 4 * kNs));
  EXPECT_TRUE(slow.bounding_box().set_user(Value(Rect{0, 0, 8, 20})));

  auto& top = lib.define_cell("DP", nullptr);
  top.declare_signal("in", SignalDirection::kInput);
  top.declare_signal("out", SignalDirection::kOutput);
  auto& d = top.declare_delay("in", "out");
  auto& u = top.add_subcell(gen, "u");
  auto& n1 = top.add_net("n1");
  EXPECT_TRUE(n1.connect_io("in"));
  EXPECT_TRUE(n1.connect(u, "cin"));
  auto& n2 = top.add_net("n2");
  EXPECT_TRUE(n2.connect(u, "cout"));
  EXPECT_TRUE(n2.connect_io("out"));
  top.build_delay_networks();

  // Tight delay, tight area: only one candidate survives each regime.
  BoundConstraint::upper(lib.context(), d, Value(2 * kNs));
  EXPECT_TRUE(u.bounding_box().set_user(Value(Rect{0, 0, 30, 30})));
  auto found = gen.select_realizations_for(u, {});
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0], &fast);

  // Shrink the slot below the fast realization's width: nothing fits.
  EXPECT_TRUE(u.bounding_box().set_user(Value(Rect{0, 0, 10, 30})));
  found = gen.select_realizations_for(u, {});
  EXPECT_TRUE(found.empty()) << "fast too wide, slow too slow";
}

TEST_F(IntegrationTest, ExtractAndSimulateCompiledInverterPair) {
  // Devices.
  auto& nmos = lib.define_cell("NMOSX", nullptr);
  nmos.declare_signal("d", SignalDirection::kInOut);
  nmos.declare_signal("g", SignalDirection::kInput);
  nmos.declare_signal("s", SignalDirection::kInOut);
  nmos.device().kind = DeviceInfo::Kind::kNmos;
  auto& pmos = lib.define_cell("PMOSX", nullptr);
  pmos.declare_signal("d", SignalDirection::kInOut);
  pmos.declare_signal("g", SignalDirection::kInput);
  pmos.declare_signal("s", SignalDirection::kInOut);
  pmos.device().kind = DeviceInfo::Kind::kPmos;
  auto& vdd = lib.define_cell("VDDX", nullptr);
  vdd.declare_signal("p", SignalDirection::kOutput);
  vdd.device().kind = DeviceInfo::Kind::kVoltageSource;
  vdd.device().value = 5.0;
  auto& cap = lib.define_cell("CX", nullptr);
  cap.declare_signal("p", SignalDirection::kInOut);
  cap.device().kind = DeviceInfo::Kind::kCapacitor;
  cap.device().value = 2e-13;

  auto& inv = lib.define_cell("INVX", nullptr);
  inv.declare_signal("in", SignalDirection::kInput);
  inv.declare_signal("out", SignalDirection::kOutput);
  inv.declare_signal("gnd", SignalDirection::kInOut);
  auto& mp = inv.add_subcell(pmos, "mp");
  auto& mn = inv.add_subcell(nmos, "mn");
  auto& vs = inv.add_subcell(vdd, "vs");
  auto& cl = inv.add_subcell(cap, "cl");
  auto& a = inv.add_net("a");
  EXPECT_TRUE(a.connect_io("in"));
  EXPECT_TRUE(a.connect(mp, "g"));
  EXPECT_TRUE(a.connect(mn, "g"));
  auto& y = inv.add_net("y");
  EXPECT_TRUE(y.connect_io("out"));
  EXPECT_TRUE(y.connect(mp, "d"));
  EXPECT_TRUE(y.connect(mn, "d"));
  EXPECT_TRUE(y.connect(cl, "p"));
  auto& p = inv.add_net("p");
  EXPECT_TRUE(p.connect(vs, "p"));
  EXPECT_TRUE(p.connect(mp, "s"));
  auto& gn = inv.add_net("gn");
  EXPECT_TRUE(gn.connect_io("gnd"));
  EXPECT_TRUE(gn.connect(mn, "s"));

  // A buffer = two inverters.
  auto& buf = lib.define_cell("BUFX", nullptr);
  buf.declare_signal("in", SignalDirection::kInput);
  buf.declare_signal("out", SignalDirection::kOutput);
  auto& u0 = buf.add_subcell(inv, "u0");
  auto& u1 = buf.add_subcell(inv, "u1");
  auto& b0 = buf.add_net("b0");
  EXPECT_TRUE(b0.connect_io("in"));
  EXPECT_TRUE(b0.connect(u0, "in"));
  auto& b1 = buf.add_net("b1");
  EXPECT_TRUE(b1.connect(u0, "out"));
  EXPECT_TRUE(b1.connect(u1, "in"));
  auto& b2 = buf.add_net("b2");
  EXPECT_TRUE(b2.connect(u1, "out"));
  EXPECT_TRUE(b2.connect_io("out"));

  spice::SpiceSimulation sim(buf);
  sim.spec().tstop = 40e-9;
  sim.spec().pulses.push_back({"in", 0.0, 5.0, 5e-9, 1e-9});
  const auto& w = sim.run();
  // A buffer: output follows input (two inversions).
  EXPECT_LT(w.value_at("out", 4e-9), 1.0);
  EXPECT_GT(w.value_at("out", 39e-9), 4.0);

  // Editing the buffer invalidates the simulation view.
  buf.changed(kChangedStructure);
  EXPECT_TRUE(sim.outdated());
}

}  // namespace
}  // namespace stemcp::env
