// Coverage for corners not exercised elsewhere: transforms on placed
// instances, width-mismatch auditing, accessor plumbing.
#include <gtest/gtest.h>

#include "stem/stem.h"

namespace stemcp::env {
namespace {

using core::Rect;
using core::Transform;
using core::Value;

TEST(MiscTest, SetTransformRedefaultsDerivedPlacement) {
  Library lib;
  auto& leaf = lib.define_cell("LEAF");
  EXPECT_TRUE(leaf.bounding_box().set_user(Value(Rect{0, 0, 10, 10})));
  auto& top = lib.define_cell("TOP");
  auto& inst = top.add_subcell(leaf, "i", Transform::translate({0, 0}));
  EXPECT_EQ(inst.bounding_box().value().as_rect(), (Rect{0, 0, 10, 10}));
  inst.set_transform(Transform::translate({30, 0}));
  EXPECT_EQ(inst.bounding_box().value().as_rect(), (Rect{30, 0, 40, 10}));
  EXPECT_EQ(top.bounding_box().demand().as_rect(), (Rect{30, 0, 40, 10}));
}

TEST(MiscTest, SetTransformKeepsUserPlacement) {
  Library lib;
  auto& leaf = lib.define_cell("LEAF");
  EXPECT_TRUE(leaf.bounding_box().set_user(Value(Rect{0, 0, 10, 10})));
  auto& top = lib.define_cell("TOP");
  auto& inst = top.add_subcell(leaf, "i");
  EXPECT_TRUE(inst.bounding_box().set_user(Value(Rect{0, 0, 50, 50})));
  inst.set_transform(Transform::translate({5, 5}));
  EXPECT_EQ(inst.bounding_box().value().as_rect(), (Rect{0, 0, 50, 50}))
      << "designer-pinned placements are not re-derived";
}

TEST(MiscTest, SameTransformIsNoOp) {
  Library lib;
  auto& leaf = lib.define_cell("LEAF");
  auto& top = lib.define_cell("TOP");
  auto& inst = top.add_subcell(leaf, "i", Transform::translate({5, 5}));
  lib.context().reset_stats();
  inst.set_transform(Transform::translate({5, 5}));
  EXPECT_EQ(lib.context().stats().sessions, 0u);
}

TEST(MiscTest, QualifiedNames) {
  Library lib;
  auto& leaf = lib.define_cell("LEAF");
  auto& top = lib.define_cell("TOP");
  auto& inst = top.add_subcell(leaf, "u7");
  EXPECT_EQ(inst.qualified_name(), "TOP/u7");
}

TEST(MiscTest, ClassWidthAuditCatchesDivergentInstances) {
  Library lib;
  auto& leaf = lib.define_cell("LEAF");
  leaf.declare_signal("p", SignalDirection::kInput);
  auto& top = lib.define_cell("TOP");
  auto& inst = top.add_subcell(leaf, "i");
  // Sneak in an inconsistent pair with propagation off.
  lib.context().set_enabled(false);
  EXPECT_TRUE(leaf.signal("p").bit_width().set_user(Value(8)));
  EXPECT_TRUE(inst.bit_width("p").set_user(Value(4)));
  lib.context().set_enabled(true);
  EXPECT_FALSE(leaf.signal("p").bit_width().is_satisfied());
  EXPECT_FALSE(inst.bit_width("p").is_satisfied());
  const CheckReport report = DesignChecker::check(top);
  EXPECT_FALSE(report.clean());
}

TEST(MiscTest, UpdateConstraintTargetAccessors) {
  core::PropagationContext ctx;
  core::Variable s(ctx, "t", "s"), t1(ctx, "t", "t1"), t2(ctx, "t", "t2");
  auto& u = core::UpdateConstraint::depends(ctx, {&t1, &t2}, {&s});
  EXPECT_EQ(u.targets().size(), 2u);
  EXPECT_TRUE(u.is_target(t1));
  EXPECT_FALSE(u.is_target(s));
}

TEST(MiscTest, CompatibleConstraintNetVariableAccessor) {
  core::PropagationContext ctx;
  SignalTypeVar net(ctx, "n", "dataType");
  auto& c = ctx.make<CompatibleConstraint>();
  EXPECT_EQ(c.net_variable(), nullptr);
  c.set_net_variable(net);
  EXPECT_EQ(c.net_variable(), &net);
}

TEST(MiscTest, TransformToStringRoundReadable) {
  const core::Transform t{core::Orientation::kR90, {3, -4}};
  EXPECT_EQ(t.to_string(), "R90+(3,-4)");
  EXPECT_EQ((Rect{1, 2, 3, 4}).to_string(), "[1,2 3,4]");
  EXPECT_EQ(Rect{}.to_string(), "[empty]");
}

TEST(MiscTest, VariableToStringShowsJustification) {
  core::PropagationContext ctx;
  core::Variable v(ctx, "ADDER", "area");
  EXPECT_EQ(v.to_string(), "ADDER.area = nil (#NONE)");
  EXPECT_TRUE(v.set_user(Value(12)));
  EXPECT_EQ(v.to_string(), "ADDER.area = 12 (#USER)");
}

TEST(MiscTest, LibraryCellsEnumeration) {
  Library lib("mylib");
  EXPECT_EQ(lib.name(), "mylib");
  lib.define_cell("A");
  lib.define_cell("B");
  EXPECT_EQ(lib.cells().size(), 2u);
  EXPECT_EQ(lib.find("A")->name(), "A");
}

TEST(MiscTest, SideHelpers) {
  EXPECT_EQ(opposite(Side::kLeft), Side::kRight);
  EXPECT_EQ(opposite(Side::kTop), Side::kBottom);
  EXPECT_STREQ(to_string(Side::kLeft), "left");
  EXPECT_STREQ(to_string(SignalDirection::kInOut), "inout");
}

}  // namespace
}  // namespace stemcp::env
