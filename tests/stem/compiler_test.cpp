// Module compilers and compiler views (thesis §6.4.1, Fig 6.2).
#include <gtest/gtest.h>

#include "stem/stem.h"

namespace stemcp::env {
namespace {

using core::Rect;
using core::Transform;
using core::Value;

/// One-bit full-adder slice tile: carry ripples left-to-right, a/b on top,
/// sum at the bottom.
class SliceFixture : public ::testing::Test {
 protected:
  Library lib;
  CellClass* slice = nullptr;

  void SetUp() override {
    slice = &lib.define_cell("FAdder", nullptr);
    EXPECT_TRUE(slice->bounding_box().set_user(Value(Rect{0, 0, 10, 20})));
    auto& cin = slice->declare_signal("cin", SignalDirection::kInput);
    cin.add_pin({0, 10}, Side::kLeft);
    auto& cout = slice->declare_signal("cout", SignalDirection::kOutput);
    cout.add_pin({10, 10}, Side::kRight);
    auto& a = slice->declare_signal("a", SignalDirection::kInput);
    a.add_pin({3, 20}, Side::kTop);
    auto& b = slice->declare_signal("b", SignalDirection::kInput);
    b.add_pin({7, 20}, Side::kTop);
    auto& sum = slice->declare_signal("sum", SignalDirection::kOutput);
    sum.add_pin({5, 0}, Side::kBottom);
  }
};

TEST_F(SliceFixture, CompilerViewSortsPins) {
  auto& top = lib.define_cell("T", nullptr);
  auto& inst = top.add_subcell(*slice, "i", Transform::translate({100, 0}));
  CompilerView view(inst);
  EXPECT_EQ(view.bounding_box(), (Rect{100, 0, 110, 20}));
  const auto& tops = view.pins_on(Side::kTop);
  ASSERT_EQ(tops.size(), 2u);
  EXPECT_EQ(tops[0].signal, "a");
  EXPECT_EQ(tops[0].position, (core::Point{103, 20}));
  EXPECT_EQ(tops[1].signal, "b");
  ASSERT_EQ(view.pins_on(Side::kLeft).size(), 1u);
  EXPECT_EQ(view.pins_on(Side::kLeft)[0].signal, "cin");
}

TEST_F(SliceFixture, CompilerViewInvalidatedByModelChange) {
  auto& top = lib.define_cell("T", nullptr);
  auto& inst = top.add_subcell(*slice, "i");
  CompilerView view(inst);
  (void)view.bounding_box();
  EXPECT_TRUE(view.valid());
  slice->changed(kChangedStructure);
  EXPECT_FALSE(view.valid()) << "derived data erased on model change";
  EXPECT_EQ(view.bounding_box(), (Rect{0, 0, 10, 20})) << "recalculated";
}

TEST_F(SliceFixture, VectorCompilerBuildsRippleChain) {
  auto& adder5 = lib.define_cell("Adder5", nullptr);
  VectorCompiler compiler(*slice, 5);
  const CompileResult r = compiler.compile(adder5);
  EXPECT_TRUE(r.status.is_ok());
  EXPECT_EQ(r.instances, 5u);
  EXPECT_EQ(adder5.subcells().size(), 5u);
  // Four carry nets between five slices.
  EXPECT_EQ(adder5.nets().size(), 4u);
  // Each carry net joins cout of slice i with cin of slice i+1.
  for (const auto& net : adder5.nets()) {
    ASSERT_EQ(net->connections().size(), 2u);
  }
  // The compiled cell's bounding box spans the whole row.
  EXPECT_EQ(adder5.bounding_box().demand().as_rect(), (Rect{0, 0, 50, 20}));
}

TEST_F(SliceFixture, VectorCompilerChainIsElectricallyOrdered) {
  auto& adder3 = lib.define_cell("Adder3", nullptr);
  VectorCompiler compiler(*slice, 3);
  compiler.compile(adder3);
  CellInstance* t0 = adder3.find_subcell("t0");
  CellInstance* t1 = adder3.find_subcell("t1");
  ASSERT_NE(t0, nullptr);
  ASSERT_NE(t1, nullptr);
  Net* carry01 = t0->net_for("cout");
  ASSERT_NE(carry01, nullptr);
  EXPECT_EQ(t1->net_for("cin"), carry01);
  EXPECT_EQ(t0->net_for("cin"), nullptr) << "boundary carry stays open";
}

TEST_F(SliceFixture, GraphCompilerFiveBitAdderWithExposedCarry) {
  // Thesis Fig 6.2: a 5-bit adder built by a GraphCompiler from 1-bit
  // slices, with the boundary carries exposed as cell io.
  auto& adder5 = lib.define_cell("Adder5G", nullptr);
  GraphCompiler g;
  g.add_node("slice", *slice, Transform{}, 5, Side::kRight);
  g.expose("slice.0", "cin", "carryIn");
  g.expose("slice.4", "cout", "carryOut");
  const CompileResult r = g.compile(adder5);
  EXPECT_TRUE(r.status.is_ok());
  EXPECT_EQ(adder5.subcells().size(), 5u);
  EXPECT_NE(adder5.find_signal("carryIn"), nullptr);
  EXPECT_NE(adder5.find_signal("carryOut"), nullptr);
  EXPECT_TRUE(adder5.signal("carryIn").is_input());
  EXPECT_TRUE(adder5.signal("carryOut").is_output());
  // carryIn's internal net reaches slice.0's cin.
  Net* in_net = adder5.signal("carryIn").internal_net();
  ASSERT_NE(in_net, nullptr);
  EXPECT_TRUE(in_net->connects(*adder5.find_subcell("slice.0"), "cin"));
}

TEST_F(SliceFixture, GraphCompilerDisallowWithdrawsPin) {
  // Disallowing a connection withdraws the pin from the boundary (thesis
  // §6.4.1).
  auto& cell = lib.define_cell("NoCarry", nullptr);
  GraphCompiler g;
  g.add_node("slice", *slice, Transform{}, 2, Side::kRight);
  g.disallow("slice.0", "cout");
  const CompileResult r = g.compile(cell);
  EXPECT_TRUE(r.status.is_ok());
  EXPECT_EQ(cell.nets().size(), 0u) << "the only butting pair was withdrawn";
  EXPECT_EQ(cell.find_subcell("slice.0")->net_for("cout"), nullptr);
}

TEST_F(SliceFixture, MatrixCompilerConnectsBothDirections) {
  // A tile with pins on all four sides meshes into a grid.
  auto& tile = lib.define_cell("MeshTile", nullptr);
  EXPECT_TRUE(tile.bounding_box().set_user(Value(Rect{0, 0, 10, 10})));
  tile.declare_signal("w", SignalDirection::kInOut).add_pin({0, 5},
                                                            Side::kLeft);
  tile.declare_signal("e", SignalDirection::kInOut).add_pin({10, 5},
                                                            Side::kRight);
  tile.declare_signal("s", SignalDirection::kInOut).add_pin({5, 0},
                                                            Side::kBottom);
  tile.declare_signal("n", SignalDirection::kInOut).add_pin({5, 10},
                                                            Side::kTop);
  auto& mesh = lib.define_cell("Mesh", nullptr);
  MatrixCompiler m(tile, 3, 4);
  const CompileResult r = m.compile(mesh);
  EXPECT_TRUE(r.status.is_ok());
  EXPECT_EQ(mesh.subcells().size(), 12u);
  // Horizontal nets: 3 rows x 3 gaps; vertical nets: 2 gaps x 4 cols.
  EXPECT_EQ(mesh.nets().size(), 9u + 8u);
  EXPECT_EQ(mesh.bounding_box().demand().as_rect(), (Rect{0, 0, 40, 30}));
}

TEST_F(SliceFixture, WordCompilerAddsEndCells) {
  auto& begin = lib.define_cell("BeginCell", nullptr);
  EXPECT_TRUE(begin.bounding_box().set_user(Value(Rect{0, 0, 4, 20})));
  begin.declare_signal("cinit", SignalDirection::kOutput)
      .add_pin({4, 10}, Side::kRight);
  auto& end = lib.define_cell("EndCell", nullptr);
  EXPECT_TRUE(end.bounding_box().set_user(Value(Rect{0, 0, 4, 20})));
  end.declare_signal("cfinal", SignalDirection::kInput)
      .add_pin({0, 10}, Side::kLeft);

  auto& word = lib.define_cell("Word", nullptr);
  WordCompiler w(begin, *slice, 3, end);
  const CompileResult r = w.compile(word);
  EXPECT_TRUE(r.status.is_ok());
  EXPECT_EQ(word.subcells().size(), 5u);
  // begin->t0, t0->t1, t1->t2, t2->end carries.
  EXPECT_EQ(word.nets().size(), 4u);
  EXPECT_EQ(word.bounding_box().demand().as_rect(), (Rect{0, 0, 38, 20}));
}

TEST_F(SliceFixture, TypeViolationSurfacesThroughCompileStatus) {
  // A tile pair whose abutting pins have incompatible electrical types.
  auto& reg = lib.types();
  auto& t1 = lib.define_cell("TtlTile", nullptr);
  EXPECT_TRUE(t1.bounding_box().set_user(Value(Rect{0, 0, 10, 10})));
  auto& o = t1.declare_signal("o", SignalDirection::kOutput);
  o.add_pin({10, 5}, Side::kRight);
  EXPECT_TRUE(o.electrical_type().set_user(type_value(reg.at("TTL"))));
  auto& t2 = lib.define_cell("CmosTile", nullptr);
  EXPECT_TRUE(t2.bounding_box().set_user(Value(Rect{0, 0, 10, 10})));
  auto& i = t2.declare_signal("i", SignalDirection::kInput);
  i.add_pin({0, 5}, Side::kLeft);
  EXPECT_TRUE(i.electrical_type().set_user(type_value(reg.at("CMOS"))));

  auto& bad = lib.define_cell("Bad", nullptr);
  GraphCompiler g;
  g.add_node("a", t1, Transform{});
  g.add_node("b", t2, Transform::translate({10, 0}));
  const CompileResult r = g.compile(bad);
  EXPECT_TRUE(r.status.is_violation())
      << "incremental checking fires while the compiler wires the tiles";
}

TEST_F(SliceFixture, CompilerTileWithoutBBoxThrows) {
  auto& nobox = lib.define_cell("NoBox", nullptr);
  auto& target = lib.define_cell("Target", nullptr);
  VectorCompiler v(nobox, 3);
  EXPECT_THROW(v.compile(target), std::logic_error);
}

}  // namespace
}  // namespace stemcp::env
