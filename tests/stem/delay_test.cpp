// Hierarchical delay networks (thesis §7.3, Figs 5.2, 7.10-7.12).
#include <gtest/gtest.h>

#include "stem/stem.h"

namespace stemcp::env {
namespace {

using core::BoundConstraint;
using core::Transform;
using core::Value;

constexpr double kNs = 1e-9;

class DelayTest : public ::testing::Test {
 protected:
  Library lib;

  /// Leaf cell with one input, one output and a declared in->out delay.
  CellClass& make_leaf(const std::string& name) {
    auto& c = lib.define_cell(name, nullptr);
    c.declare_signal("in", env::SignalDirection::kInput);
    c.declare_signal("out", env::SignalDirection::kOutput);
    c.declare_delay("in", "out");
    return c;
  }
};

TEST_F(DelayTest, LeafDelayPropagatesToInstanceDual) {
  auto& leaf = make_leaf("INV");
  auto& top = lib.define_cell("TOP", nullptr);
  auto& inst = top.add_subcell(leaf, "u1");
  auto& idv = inst.delay("in", "out");
  EXPECT_TRUE(leaf.set_leaf_delay("in", "out", 5 * kNs));
  EXPECT_DOUBLE_EQ(idv.value().as_number(), 5 * kNs)
      << "no RC context: adjusted delay equals class delay";
}

TEST_F(DelayTest, RcAdjustmentAddsLoadTerm) {
  auto& drv = make_leaf("DRV");
  drv.signal("out").set_output_resistance(1000.0);  // 1k ohm
  auto& rcv = make_leaf("RCV");
  rcv.signal("in").set_load_capacitance(2e-12);  // 2 pF

  auto& top = lib.define_cell("TOP", nullptr);
  auto& d = top.add_subcell(drv, "d");
  auto& r = top.add_subcell(rcv, "r");
  auto& mid = top.add_net("mid");
  EXPECT_TRUE(mid.connect(d, "out"));
  EXPECT_TRUE(mid.connect(r, "in"));

  EXPECT_TRUE(drv.set_leaf_delay("in", "out", 10 * kNs));
  // Adjustment: R_out(1k) * C_load(2p) = 2ns on the driver's instance delay.
  EXPECT_DOUBLE_EQ(d.delay("in", "out").value().as_number(), 12 * kNs);
}

// Thesis Fig 5.2: ACCUMULATOR = REGISTER -> ADDER with an overall 160 ns
// specification; REGISTER characterizes at 60 ns, ADDER at 110 ns (after
// adjustment) — the combination violates at the accumulator level.
TEST_F(DelayTest, Fig5_2AccumulatorViolation) {
  auto& reg = make_leaf("REGISTER");
  auto& adder = lib.define_cell("ADDER", nullptr);
  adder.declare_signal("a", env::SignalDirection::kInput);
  adder.declare_signal("b", env::SignalDirection::kInput);
  adder.declare_signal("out", env::SignalDirection::kOutput);
  adder.declare_delay("a", "out");
  // Designer specification on the adder itself: 120 ns or less.
  BoundConstraint::upper(lib.context(), *adder.find_delay("a", "out"),
                         Value(120 * kNs));

  auto& acc = lib.define_cell("ACCUMULATOR", nullptr);
  acc.declare_signal("in", env::SignalDirection::kInput);
  acc.declare_signal("out", env::SignalDirection::kOutput);
  auto& acc_delay = acc.declare_delay("in", "out");
  BoundConstraint::upper(lib.context(), acc_delay, Value(160 * kNs));

  auto& r = acc.add_subcell(reg, "reg");
  auto& a = acc.add_subcell(adder, "add");
  auto& n_in = acc.add_net("n_in");
  EXPECT_TRUE(n_in.connect_io("in"));
  EXPECT_TRUE(n_in.connect(r, "in"));
  auto& n_mid = acc.add_net("n_mid");
  EXPECT_TRUE(n_mid.connect(r, "out"));
  EXPECT_TRUE(n_mid.connect(a, "a"));
  auto& n_out = acc.add_net("n_out");
  EXPECT_TRUE(n_out.connect(a, "out"));
  EXPECT_TRUE(n_out.connect_io("out"));

  acc.build_delay_networks();

  EXPECT_TRUE(reg.set_leaf_delay("in", "out", 60 * kNs));
  EXPECT_TRUE(acc_delay.value().is_nil()) << "adder path still unknown";

  // A 130 ns adder would exceed its own 120 ns spec: caught at the ADDER
  // class level.
  EXPECT_TRUE(adder.set_leaf_delay("a", "out", 130 * kNs).is_violation());
  EXPECT_TRUE(adder.find_delay("a", "out")->value().is_nil()) << "restored";

  // 110 ns respects the adder spec but blows the 160 ns accumulator budget
  // (60 + 110 = 170 ns): caught one level up, in a global context.
  EXPECT_TRUE(adder.set_leaf_delay("a", "out", 110 * kNs).is_violation());
  EXPECT_TRUE(adder.find_delay("a", "out")->value().is_nil());
  EXPECT_TRUE(acc_delay.value().is_nil());

  // 90 ns satisfies everything; characteristics propagate up the hierarchy.
  EXPECT_TRUE(adder.set_leaf_delay("a", "out", 90 * kNs));
  EXPECT_DOUBLE_EQ(acc_delay.value().as_number(), 150 * kNs);
}

TEST_F(DelayTest, MaxOverParallelPaths) {
  // Two parallel paths in->out: a slow one and a fast one; the class delay
  // is the slower (thesis Fig 7.12's MAX node).
  auto& slow = make_leaf("SLOW");
  auto& fast = make_leaf("FAST");
  auto& merge = lib.define_cell("MERGE", nullptr);
  merge.declare_signal("a", env::SignalDirection::kInput);
  merge.declare_signal("b", env::SignalDirection::kInput);
  merge.declare_signal("out", env::SignalDirection::kOutput);
  merge.declare_delay("a", "out");
  merge.declare_delay("b", "out");

  auto& top = lib.define_cell("TOP2", nullptr);
  top.declare_signal("in", env::SignalDirection::kInput);
  top.declare_signal("out", env::SignalDirection::kOutput);
  auto& d = top.declare_delay("in", "out");

  auto& s = top.add_subcell(slow, "s");
  auto& f = top.add_subcell(fast, "f");
  auto& m = top.add_subcell(merge, "m");
  auto& n_in = top.add_net("n_in");
  EXPECT_TRUE(n_in.connect_io("in"));
  EXPECT_TRUE(n_in.connect(s, "in"));
  EXPECT_TRUE(n_in.connect(f, "in"));
  auto& n_s = top.add_net("n_s");
  EXPECT_TRUE(n_s.connect(s, "out"));
  EXPECT_TRUE(n_s.connect(m, "a"));
  auto& n_f = top.add_net("n_f");
  EXPECT_TRUE(n_f.connect(f, "out"));
  EXPECT_TRUE(n_f.connect(m, "b"));
  auto& n_out = top.add_net("n_out");
  EXPECT_TRUE(n_out.connect(m, "out"));
  EXPECT_TRUE(n_out.connect_io("out"));

  top.build_delay_networks();
  EXPECT_EQ(top.delay_paths("in", "out").size(), 2u);

  EXPECT_TRUE(merge.set_leaf_delay("a", "out", 5 * kNs));
  EXPECT_TRUE(merge.set_leaf_delay("b", "out", 5 * kNs));
  EXPECT_TRUE(slow.set_leaf_delay("in", "out", 40 * kNs));
  EXPECT_TRUE(fast.set_leaf_delay("in", "out", 10 * kNs));
  EXPECT_DOUBLE_EQ(d.value().as_number(), 45 * kNs) << "max(40+5, 10+5)";
}

TEST_F(DelayTest, StructureEditInvalidatesNetworks) {
  auto& leaf = make_leaf("L");
  auto& top = lib.define_cell("TOPX", nullptr);
  top.declare_signal("in", env::SignalDirection::kInput);
  top.declare_signal("out", env::SignalDirection::kOutput);
  auto& d = top.declare_delay("in", "out");
  auto& u = top.add_subcell(leaf, "u");
  auto& n1 = top.add_net("n1");
  EXPECT_TRUE(n1.connect_io("in"));
  EXPECT_TRUE(n1.connect(u, "in"));
  auto& n2 = top.add_net("n2");
  EXPECT_TRUE(n2.connect(u, "out"));
  EXPECT_TRUE(n2.connect_io("out"));
  top.build_delay_networks();
  EXPECT_TRUE(leaf.set_leaf_delay("in", "out", 7 * kNs));
  EXPECT_DOUBLE_EQ(d.value().as_number(), 7 * kNs);

  // Adding another subcell edits the structure: derived delays are erased
  // until the network is rebuilt (thesis §7.3 consistency rule).
  auto& leaf2 = make_leaf("L2");
  top.add_subcell(leaf2, "u2");
  EXPECT_FALSE(top.delay_networks_built());
  EXPECT_TRUE(d.value().is_nil()) << "derived class delay erased with network";

  top.build_delay_networks();
  EXPECT_DOUBLE_EQ(d.value().as_number(), 7 * kNs) << "rebuilt from leaves";
}

TEST_F(DelayTest, UserEstimateReplacedByCalculatedCharacteristic) {
  // Thesis §7.3: before internal design, the designer estimates the delay;
  // entering the structure and removing the estimate switches to the
  // calculated value.
  auto& leaf = make_leaf("LL");
  auto& top = lib.define_cell("TOPY", nullptr);
  top.declare_signal("in", env::SignalDirection::kInput);
  top.declare_signal("out", env::SignalDirection::kOutput);
  auto& d = top.declare_delay("in", "out");
  EXPECT_TRUE(d.set_user(Value(100 * kNs)));  // estimate

  auto& u = top.add_subcell(leaf, "u");
  auto& n1 = top.add_net("n1");
  EXPECT_TRUE(n1.connect_io("in"));
  EXPECT_TRUE(n1.connect(u, "in"));
  auto& n2 = top.add_net("n2");
  EXPECT_TRUE(n2.connect(u, "out"));
  EXPECT_TRUE(n2.connect_io("out"));
  EXPECT_TRUE(leaf.set_leaf_delay("in", "out", 7 * kNs));

  EXPECT_DOUBLE_EQ(d.value().as_number(), 100 * kNs)
      << "user estimate survives structure edits";
  // Remove the estimate, then build: the calculated 7 ns takes over.
  EXPECT_TRUE(d.set(Value::nil(), core::Justification::user()));
  top.build_delay_networks();
  EXPECT_DOUBLE_EQ(d.value().as_number(), 7 * kNs);
}

TEST_F(DelayTest, ThreeLevelHierarchyPropagation) {
  auto& inv = make_leaf("INV3");
  auto& buf = lib.define_cell("BUF", nullptr);
  buf.declare_signal("in", env::SignalDirection::kInput);
  buf.declare_signal("out", env::SignalDirection::kOutput);
  auto& bd = buf.declare_delay("in", "out");
  auto& i1 = buf.add_subcell(inv, "i1");
  auto& i2 = buf.add_subcell(inv, "i2");
  auto& bn1 = buf.add_net("n1");
  EXPECT_TRUE(bn1.connect_io("in"));
  EXPECT_TRUE(bn1.connect(i1, "in"));
  auto& bn2 = buf.add_net("n2");
  EXPECT_TRUE(bn2.connect(i1, "out"));
  EXPECT_TRUE(bn2.connect(i2, "in"));
  auto& bn3 = buf.add_net("n3");
  EXPECT_TRUE(bn3.connect(i2, "out"));
  EXPECT_TRUE(bn3.connect_io("out"));
  buf.build_delay_networks();

  auto& chip = lib.define_cell("CHIP", nullptr);
  chip.declare_signal("in", env::SignalDirection::kInput);
  chip.declare_signal("out", env::SignalDirection::kOutput);
  auto& cd = chip.declare_delay("in", "out");
  auto& b1 = chip.add_subcell(buf, "b1");
  auto& b2 = chip.add_subcell(buf, "b2");
  auto& cn1 = chip.add_net("n1");
  EXPECT_TRUE(cn1.connect_io("in"));
  EXPECT_TRUE(cn1.connect(b1, "in"));
  auto& cn2 = chip.add_net("n2");
  EXPECT_TRUE(cn2.connect(b1, "out"));
  EXPECT_TRUE(cn2.connect(b2, "in"));
  auto& cn3 = chip.add_net("n3");
  EXPECT_TRUE(cn3.connect(b2, "out"));
  EXPECT_TRUE(cn3.connect_io("out"));
  chip.build_delay_networks();

  // One leaf characterization sweeps all three levels in one propagation.
  EXPECT_TRUE(inv.set_leaf_delay("in", "out", 3 * kNs));
  EXPECT_DOUBLE_EQ(bd.value().as_number(), 6 * kNs);
  EXPECT_DOUBLE_EQ(cd.value().as_number(), 12 * kNs);
  (void)bn2;
  (void)cn2;
}

}  // namespace
}  // namespace stemcp::env
