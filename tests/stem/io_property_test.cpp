// Property-based persistence: randomized libraries AND every checked-in
// examples/designs/*.lib must survive write -> read -> write with
// byte-identical text and equivalent behaviour (this idempotence is what
// makes journal checkpoints trustworthy — see docs/PERSISTENCE.md).
#include <gtest/gtest.h>

#include <fstream>
#include <random>

#include "stem/io.h"
#include "stem/stem.h"

namespace stemcp::env {
namespace {

using core::Rect;
using core::Transform;
using core::Value;

struct RandomLibrary {
  Library lib;
  std::mt19937 rng;

  explicit RandomLibrary(unsigned seed) : rng(seed) {
    std::uniform_int_distribution<int> coin(0, 1);
    std::uniform_int_distribution<core::Coord> dim(4, 30);
    std::uniform_int_distribution<std::int64_t> width(1, 32);
    const char* type_names[] = {"Bit", "IntegerSignal", "BCDSignal",
                                "FloatSignal"};
    const char* elec_names[] = {"Digital", "TTL", "CMOS"};
    std::uniform_int_distribution<std::size_t> t4(0, 3);
    std::uniform_int_distribution<std::size_t> t3(0, 2);

    // Leaf cells with random interfaces.
    std::vector<CellClass*> leaves;
    for (int i = 0; i < 4; ++i) {
      auto& c = lib.define_cell("LEAF" + std::to_string(i));
      c.bounding_box().set_user(Value(Rect{0, 0, dim(rng), dim(rng)}));
      auto& in = c.declare_signal("in", SignalDirection::kInput);
      if (coin(rng)) in.bit_width().set_user(Value(width(rng)));
      if (coin(rng)) {
        in.data_type().set_user(
            type_value(lib.types().at(type_names[t4(rng)])));
      }
      in.add_pin({0, dim(rng) % 8}, Side::kLeft);
      auto& out = c.declare_signal("out", SignalDirection::kOutput);
      if (coin(rng)) {
        out.electrical_type().set_user(
            type_value(lib.types().at(elec_names[t3(rng)])));
      }
      if (coin(rng)) out.set_output_resistance(100.0 * (1 + i));
      if (coin(rng)) in.set_load_capacitance(1e-14 * (1 + i));
      auto& d = c.declare_delay("in", "out");
      if (coin(rng)) {
        c.set_leaf_delay("in", "out", 1e-9 * (1 + i));
      }
      if (coin(rng)) {
        // A generous spec so randomized leaf delays never violate it.
        core::BoundConstraint::upper(lib.context(), d, Value(1e-3));
      }
      leaves.push_back(&c);
    }
    // A generic family.
    auto& gen = lib.define_cell("GEN");
    gen.set_generic(true);
    lib.define_cell("GEN.A", &gen);
    lib.define_cell("GEN.B", &gen);

    // A composite pipeline over random leaves.
    auto& top = lib.define_cell("TOP");
    top.declare_signal("in", SignalDirection::kInput);
    top.declare_signal("out", SignalDirection::kOutput);
    top.declare_delay("in", "out");
    std::uniform_int_distribution<std::size_t> pick(0, leaves.size() - 1);
    CellInstance* prev = nullptr;
    const int stages = 3 + static_cast<int>(seed % 3);
    for (int i = 0; i < stages; ++i) {
      auto& inst = top.add_subcell(*leaves[pick(rng)],
                                   "u" + std::to_string(i),
                                   Transform::translate({40 * i, 0}));
      auto& net = top.add_net("n" + std::to_string(i));
      if (i == 0) {
        net.connect_io("in");
      } else {
        net.connect(*prev, "out");
      }
      net.connect(inst, "in");
      prev = &inst;
    }
    auto& n_out = top.add_net("n_out");
    n_out.connect(*prev, "out");
    n_out.connect_io("out");
    top.build_delay_networks();
  }
};

class IoSeeds : public ::testing::TestWithParam<unsigned> {};

TEST_P(IoSeeds, SaveLoadSaveIsIdentity) {
  RandomLibrary original(GetParam());
  const std::string text1 = LibraryWriter::to_string(original.lib);
  Library loaded;
  LibraryReader::read_string(loaded, text1);
  const std::string text2 = LibraryWriter::to_string(loaded);
  EXPECT_EQ(text1, text2);
}

TEST_P(IoSeeds, LoadedLibraryAuditsSameAsOriginal) {
  RandomLibrary original(GetParam());
  const CheckReport before = DesignChecker::check(original.lib);
  Library loaded;
  LibraryReader::read_string(loaded, LibraryWriter::to_string(original.lib));
  const CheckReport after = DesignChecker::check(loaded);
  EXPECT_EQ(before.clean(), after.clean());
}

TEST_P(IoSeeds, LoadedDelaysMatchOriginal) {
  RandomLibrary original(GetParam());
  Library loaded;
  LibraryReader::read_string(loaded, LibraryWriter::to_string(original.lib));
  CellClass& top1 = original.lib.cell("TOP");
  CellClass& top2 = loaded.cell("TOP");
  ClassDelayVar* d1 = top1.find_delay("in", "out");
  ClassDelayVar* d2 = top2.find_delay("in", "out");
  ASSERT_NE(d1, nullptr);
  ASSERT_NE(d2, nullptr);
  EXPECT_EQ(d1->value().is_number(), d2->value().is_number());
  if (d1->value().is_number()) {
    EXPECT_NEAR(d1->value().as_number(), d2->value().as_number(), 1e-15);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoSeeds, ::testing::Range(500u, 512u));

// Every checked-in example design: the first write normalizes the
// hand-written file, and from then on write -> read -> write must be a
// byte-identical fixed point.
class ExampleDesigns : public ::testing::TestWithParam<const char*> {};

TEST_P(ExampleDesigns, WriteReadWriteIsIdentity) {
  const std::string path =
      std::string(STEMCP_SOURCE_DIR) + "/examples/designs/" + GetParam();
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing example design: " << path;
  Library first;
  LibraryReader::read(first, in);
  ASSERT_FALSE(first.cells().empty());
  const std::string text1 = LibraryWriter::to_string(first);
  Library second;
  LibraryReader::read_string(second, text1);
  const std::string text2 = LibraryWriter::to_string(second);
  EXPECT_EQ(text1, text2);
}

TEST_P(ExampleDesigns, LoadedDesignAuditsClean) {
  const std::string path =
      std::string(STEMCP_SOURCE_DIR) + "/examples/designs/" + GetParam();
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  Library lib;
  LibraryReader::read(lib, in);
  EXPECT_TRUE(lib.context().violation_log().empty())
      << "example designs must load violation-free";
}

INSTANTIATE_TEST_SUITE_P(Designs, ExampleDesigns,
                         ::testing::Values("pipeline.lib", "inverter.lib",
                                           "alu.lib"));

}  // namespace
}  // namespace stemcp::env
