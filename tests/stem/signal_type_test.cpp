// Signal type hierarchies, compatibility and inference (thesis §7.1).
#include <gtest/gtest.h>

#include "stem/stem.h"

namespace stemcp::env {
namespace {

using core::Value;

class SignalTypeTest : public ::testing::Test {
 protected:
  core::PropagationContext ctx;
  SignalTypeRegistry reg;
};

TEST_F(SignalTypeTest, StandardHierarchyPresent) {
  // Thesis Fig 7.2.
  for (const char* name :
       {"DataType", "Bit", "FloatSignal", "IntegerSignal", "A2CIntSignal",
        "BCDSignal", "SignedMagIntSignal", "WholeSignal", "ElectricalType",
        "Analog", "Digital", "BIPOLAR", "TTL", "CMOS"}) {
    EXPECT_NE(reg.find(name), nullptr) << name;
  }
  EXPECT_EQ(reg.at("TTL")->parent(), reg.at("Digital").get());
  EXPECT_EQ(reg.at("Digital")->parent(), reg.at("ElectricalType").get());
  EXPECT_EQ(reg.at("A2CIntSignal")->parent(), reg.at("IntegerSignal").get());
}

TEST_F(SignalTypeTest, CompatibilityIsAncestorRelation) {
  const auto digital = reg.at("Digital");
  const auto ttl = reg.at("TTL");
  const auto cmos = reg.at("CMOS");
  const auto analog = reg.at("Analog");
  EXPECT_TRUE(ttl->is_compatible_with(*digital));
  EXPECT_TRUE(digital->is_compatible_with(*ttl));
  EXPECT_TRUE(ttl->is_compatible_with(*ttl));
  EXPECT_FALSE(ttl->is_compatible_with(*cmos)) << "siblings are incompatible";
  EXPECT_FALSE(ttl->is_compatible_with(*analog));
  EXPECT_FALSE(reg.at("Bit")->is_compatible_with(*ttl))
      << "data and electrical trees are disjoint";
}

TEST_F(SignalTypeTest, AbstractnessOrdering) {
  const auto digital = reg.at("Digital");
  const auto ttl = reg.at("TTL");
  EXPECT_TRUE(ttl->is_less_abstract_than(*digital));
  EXPECT_FALSE(digital->is_less_abstract_than(*ttl));
  EXPECT_FALSE(ttl->is_less_abstract_than(*ttl));
}

TEST_F(SignalTypeTest, LeastAbstractOfPair) {
  const auto digital = reg.at("Digital");
  const auto ttl = reg.at("TTL");
  const auto cmos = reg.at("CMOS");
  EXPECT_EQ(SignalType::least_abstract(digital.get(), ttl.get()), ttl.get());
  EXPECT_EQ(SignalType::least_abstract(ttl.get(), digital.get()), ttl.get());
  EXPECT_EQ(SignalType::least_abstract(nullptr, ttl.get()), ttl.get());
  EXPECT_EQ(SignalType::least_abstract(ttl.get(), cmos.get()), nullptr);
}

TEST_F(SignalTypeTest, UserDefinedExtension) {
  const auto lvds = reg.define("LVDS", reg.at("Digital"));
  EXPECT_TRUE(lvds->is_less_abstract_than(*reg.at("ElectricalType")));
  EXPECT_TRUE(lvds->is_compatible_with(*reg.at("Digital")));
  EXPECT_FALSE(lvds->is_compatible_with(*reg.at("TTL")));
  EXPECT_THROW(reg.define("LVDS", reg.at("Digital")), std::invalid_argument);
}

TEST_F(SignalTypeTest, TypeVarAllowsOnlyRefinement) {
  // Thesis Fig 7.4 overwrite rule.
  SignalTypeVar v(ctx, "sig", "electricalType");
  const core::Justification propagated;  // any non-user works for this check
  EXPECT_TRUE(v.can_change_value_to(type_value(reg.at("Digital")), propagated))
      << "nil -> anything";
  ASSERT_TRUE(v.set_user(type_value(reg.at("Digital"))));
  EXPECT_TRUE(v.can_change_value_to(type_value(reg.at("TTL")), propagated))
      << "refinement to a subtype";
  EXPECT_FALSE(v.can_change_value_to(type_value(reg.at("ElectricalType")),
                                     propagated))
      << "no abstraction";
  EXPECT_FALSE(v.can_change_value_to(type_value(reg.at("Analog")), propagated))
      << "no incompatible overwrite";
  EXPECT_TRUE(v.can_change_value_to(Value::nil(), propagated))
      << "erasure always allowed";
}

TEST_F(SignalTypeTest, CompatibleConstraintInfersNetType) {
  SignalTypeVar net(ctx, "net", "dataType");
  SignalTypeVar s1(ctx, "sig1", "dataType");
  SignalTypeVar s2(ctx, "sig2", "dataType");
  auto& c = ctx.make<CompatibleConstraint>();
  c.set_net_variable(net);
  c.basic_add_argument(s1);
  c.basic_add_argument(s2);
  EXPECT_TRUE(s1.set_user(type_value(reg.at("IntegerSignal"))));
  EXPECT_EQ(type_of(net.value()), reg.at("IntegerSignal").get());
  EXPECT_EQ(type_of(s2.value()), reg.at("IntegerSignal").get())
      << "unspecified signal types inferred from connections";
}

TEST_F(SignalTypeTest, CompatibleConstraintRefinesTowardLeastAbstract) {
  SignalTypeVar net(ctx, "net", "dataType");
  SignalTypeVar s1(ctx, "sig1", "dataType");
  SignalTypeVar s2(ctx, "sig2", "dataType");
  auto& c = ctx.make<CompatibleConstraint>();
  c.set_net_variable(net);
  c.basic_add_argument(s1);
  c.basic_add_argument(s2);
  EXPECT_TRUE(s1.set_user(type_value(reg.at("IntegerSignal"))));
  // A more specific type arrives: everything refines to it.
  EXPECT_TRUE(s2.set_user(type_value(reg.at("BCDSignal"))));
  EXPECT_EQ(type_of(net.value()), reg.at("BCDSignal").get());
  EXPECT_EQ(type_of(s1.value()), reg.at("BCDSignal").get());
}

TEST_F(SignalTypeTest, IncompatibleTypesViolate) {
  SignalTypeVar net(ctx, "net", "electricalType");
  SignalTypeVar s1(ctx, "sig1", "electricalType");
  SignalTypeVar s2(ctx, "sig2", "electricalType");
  auto& c = ctx.make<CompatibleConstraint>();
  c.set_net_variable(net);
  c.basic_add_argument(s1);
  c.basic_add_argument(s2);
  EXPECT_TRUE(s1.set_user(type_value(reg.at("TTL"))));
  EXPECT_EQ(type_of(s2.value()), reg.at("TTL").get())
      << "s2 inferred TTL from s1";
  EXPECT_TRUE(s2.set_user(type_value(reg.at("CMOS"))).is_violation())
      << "TTL and CMOS cannot share a net";
  EXPECT_EQ(type_of(s2.value()), reg.at("TTL").get()) << "restored";
}

TEST_F(SignalTypeTest, CompatibleConstraintJoinLateChecksExisting) {
  SignalTypeVar net(ctx, "net", "electricalType");
  SignalTypeVar s1(ctx, "sig1", "electricalType");
  SignalTypeVar s2(ctx, "sig2", "electricalType");
  EXPECT_TRUE(s1.set_user(type_value(reg.at("TTL"))));
  EXPECT_TRUE(s2.set_user(type_value(reg.at("CMOS"))));
  auto& c = ctx.make<CompatibleConstraint>();
  c.set_net_variable(net);
  c.basic_add_argument(s1);
  const core::Status s = c.add_argument(s2);
  EXPECT_TRUE(s.is_violation()) << "connecting incompatible signals rejected";
}

class AbstractnessCase
    : public ::testing::TestWithParam<std::tuple<const char*, const char*,
                                                 bool>> {};

TEST_P(AbstractnessCase, IsLessAbstract) {
  SignalTypeRegistry reg;
  const auto [a, b, expected] = GetParam();
  EXPECT_EQ(reg.at(a)->is_less_abstract_than(*reg.at(b)), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, AbstractnessCase,
    ::testing::Values(std::make_tuple("TTL", "Digital", true),
                      std::make_tuple("TTL", "ElectricalType", true),
                      std::make_tuple("Digital", "TTL", false),
                      std::make_tuple("BCDSignal", "IntegerSignal", true),
                      std::make_tuple("BCDSignal", "DataType", true),
                      std::make_tuple("Bit", "IntegerSignal", false),
                      std::make_tuple("Analog", "Digital", false)));

}  // namespace
}  // namespace stemcp::env
