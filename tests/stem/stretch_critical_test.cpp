// Pin stretching (thesis Fig 7.6), critical-path extraction, and the
// debugging violation handler (thesis §5.2).
#include <gtest/gtest.h>

#include <sstream>

#include "stem/stem.h"

namespace stemcp::env {
namespace {

using core::Rect;
using core::Transform;
using core::Value;

constexpr double kNs = 1e-9;

TEST(StretchTest, PinsExtendToPlacementBoundary) {
  Library lib;
  auto& leaf = lib.define_cell("LEAF");
  EXPECT_TRUE(leaf.bounding_box().set_user(Value(Rect{0, 0, 10, 10})));
  leaf.declare_signal("l", SignalDirection::kInput)
      .add_pin({0, 5}, Side::kLeft);
  leaf.declare_signal("r", SignalDirection::kOutput)
      .add_pin({10, 5}, Side::kRight);
  leaf.declare_signal("t", SignalDirection::kOutput)
      .add_pin({5, 10}, Side::kTop);

  auto& top = lib.define_cell("TOP");
  auto& inst = top.add_subcell(leaf, "i");
  // Stretch the placement: 10x10 cell in a 30x20 slot.
  EXPECT_TRUE(inst.bounding_box().set_user(Value(Rect{0, 0, 30, 20})));

  const auto pins = inst.stretched_pins();
  ASSERT_EQ(pins.size(), 3u);
  for (const IoPin& pin : pins) {
    if (pin.signal == "l") {
      EXPECT_EQ(pin.position, (core::Point{0, 5})) << "left edge unchanged";
    } else if (pin.signal == "r") {
      EXPECT_EQ(pin.position, (core::Point{30, 5}))
          << "right pin pushed to the slot boundary";
    } else {
      EXPECT_EQ(pin.position, (core::Point{5, 20}))
          << "top pin raised to the slot boundary";
    }
  }
}

TEST(StretchTest, NoPlacementBoxMeansNoStretching) {
  Library lib;
  auto& leaf = lib.define_cell("LEAF");
  leaf.declare_signal("p", SignalDirection::kInput)
      .add_pin({0, 5}, Side::kLeft);
  auto& top = lib.define_cell("TOP");
  auto& inst = top.add_subcell(leaf, "i");
  const auto pins = inst.stretched_pins();
  ASSERT_EQ(pins.size(), 1u);
  EXPECT_EQ(pins[0].position, (core::Point{0, 5}));
}

TEST(StretchTest, StretchRespectsTransform) {
  Library lib;
  auto& leaf = lib.define_cell("LEAF");
  EXPECT_TRUE(leaf.bounding_box().set_user(Value(Rect{0, 0, 10, 10})));
  leaf.declare_signal("r", SignalDirection::kOutput)
      .add_pin({10, 5}, Side::kRight);
  auto& top = lib.define_cell("TOP");
  // Mirror-Y: the right pin becomes a left pin.
  auto& inst = top.add_subcell(leaf, "i",
                               Transform{core::Orientation::kMY, {50, 0}});
  EXPECT_TRUE(inst.bounding_box().set_user(Value(Rect{30, 0, 50, 10})));
  const auto pins = inst.stretched_pins();
  ASSERT_EQ(pins.size(), 1u);
  EXPECT_EQ(pins[0].side, Side::kLeft);
  EXPECT_EQ(pins[0].position.x, 30) << "stretched to the slot's left edge";
}

TEST(CriticalPathTest, IdentifiesSlowestPath) {
  Library lib;
  auto& slow = lib.define_cell("SLOW");
  slow.declare_signal("in", SignalDirection::kInput);
  slow.declare_signal("out", SignalDirection::kOutput);
  slow.declare_delay("in", "out");
  auto& fast = lib.define_cell("FAST");
  fast.declare_signal("in", SignalDirection::kInput);
  fast.declare_signal("out", SignalDirection::kOutput);
  fast.declare_delay("in", "out");

  auto& top = lib.define_cell("TOP");
  top.declare_signal("in", SignalDirection::kInput);
  top.declare_signal("out", SignalDirection::kOutput);
  top.declare_delay("in", "out");
  auto& s = top.add_subcell(slow, "s");
  auto& f = top.add_subcell(fast, "f");
  auto& n_in = top.add_net("n_in");
  EXPECT_TRUE(n_in.connect_io("in"));
  EXPECT_TRUE(n_in.connect(s, "in"));
  EXPECT_TRUE(n_in.connect(f, "in"));
  auto& n_out = top.add_net("n_out");
  EXPECT_TRUE(n_out.connect(s, "out"));
  EXPECT_TRUE(n_out.connect(f, "out"));
  EXPECT_TRUE(n_out.connect_io("out"));
  top.build_delay_networks();

  EXPECT_TRUE(slow.set_leaf_delay("in", "out", 40 * kNs));
  EXPECT_TRUE(fast.set_leaf_delay("in", "out", 10 * kNs));

  const auto critical = top.critical_path("in", "out");
  ASSERT_EQ(critical.path.size(), 1u);
  EXPECT_EQ(&critical.path[0]->owner(), &s) << "slow instance dominates";
  EXPECT_DOUBLE_EQ(critical.total.as_number(), 40 * kNs);

  // Speeding the slow cell past the fast one flips the critical path.
  EXPECT_TRUE(slow.set_leaf_delay("in", "out", 5 * kNs));
  const auto flipped = top.critical_path("in", "out");
  ASSERT_EQ(flipped.path.size(), 1u);
  EXPECT_EQ(&flipped.path[0]->owner(), &f);
}

TEST(CriticalPathTest, UncharacterizedPathsSkipped) {
  Library lib;
  auto& a = lib.define_cell("A");
  a.declare_signal("in", SignalDirection::kInput);
  a.declare_signal("out", SignalDirection::kOutput);
  a.declare_delay("in", "out");
  auto& top = lib.define_cell("TOP");
  top.declare_signal("in", SignalDirection::kInput);
  top.declare_signal("out", SignalDirection::kOutput);
  top.declare_delay("in", "out");
  auto& u = top.add_subcell(a, "u");
  auto& n1 = top.add_net("n1");
  EXPECT_TRUE(n1.connect_io("in"));
  EXPECT_TRUE(n1.connect(u, "in"));
  auto& n2 = top.add_net("n2");
  EXPECT_TRUE(n2.connect(u, "out"));
  EXPECT_TRUE(n2.connect_io("out"));
  top.build_delay_networks();
  const auto critical = top.critical_path("in", "out");
  EXPECT_TRUE(critical.total.is_nil());
  EXPECT_TRUE(critical.path.empty());
}

TEST(DebugHandlerTest, ReportContainsDiagnostics) {
  core::PropagationContext ctx;
  std::ostringstream report;
  ctx.set_violation_handler(ConstraintInspector::debugging_handler(report));
  core::Variable a(ctx, "cell", "a"), b(ctx, "cell", "b");
  core::EqualityConstraint::among(ctx, {&a, &b});
  EXPECT_TRUE(b.set_user(Value(1)));
  EXPECT_TRUE(a.set(Value(2), core::Justification::application())
                  .is_violation());
  const std::string text = report.str();
  EXPECT_NE(text.find("constraint violation"), std::string::npos);
  EXPECT_NE(text.find("cell.b"), std::string::npos);
  EXPECT_NE(text.find("equality"), std::string::npos);
  EXPECT_NE(text.find("proceeding"), std::string::npos);
}

}  // namespace
}  // namespace stemcp::env
