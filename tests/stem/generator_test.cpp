// Parameterized cell generation (macro-cell templates, thesis ch. 8).
#include <gtest/gtest.h>

#include "stem/compilers/generator.h"
#include "stem/stem.h"

namespace stemcp::env {
namespace {

using core::Rect;
using core::Value;

class GeneratorTest : public ::testing::Test {
 protected:
  Library lib;
  CellClass* tile = nullptr;

  void SetUp() override {
    tile = &lib.define_cell("BitSlice", nullptr);
    ASSERT_TRUE(tile->bounding_box().set_user(Value(Rect{0, 0, 10, 20})));
    tile->declare_signal("cin", SignalDirection::kInput)
        .add_pin({0, 10}, Side::kLeft);
    tile->declare_signal("cout", SignalDirection::kOutput)
        .add_pin({10, 10}, Side::kRight);
  }
};

TEST_F(GeneratorTest, GeneratesAndCachesWidths) {
  ParameterizedCellGenerator gen(lib, "ADDER", *tile);
  CellClass& a4 = gen.realize(4);
  EXPECT_EQ(a4.name(), "ADDERx4");
  EXPECT_EQ(a4.subcells().size(), 4u);
  EXPECT_EQ(a4.nets().size(), 3u) << "three carry hops";
  EXPECT_EQ(&gen.realize(4), &a4) << "cached";
  EXPECT_EQ(gen.cached_count(), 1u);
  CellClass& a8 = gen.realize(8);
  EXPECT_EQ(a8.subcells().size(), 8u);
  EXPECT_EQ(gen.cached_count(), 2u);
}

TEST_F(GeneratorTest, GeneratedCellsHaveDerivedGeometry) {
  ParameterizedCellGenerator gen(lib, "ADDER", *tile);
  CellClass& a4 = gen.realize(4);
  EXPECT_EQ(a4.bounding_box().demand().as_rect(), (Rect{0, 0, 40, 20}));
  CellClass& a8 = gen.realize(8);
  EXPECT_EQ(a8.bounding_box().demand().as_rect(), (Rect{0, 0, 80, 20}));
}

TEST_F(GeneratorTest, GeneratedWidthsJoinGenericFamily) {
  auto& generic = lib.define_cell("ADDER", nullptr);
  generic.set_generic(true);
  ParameterizedCellGenerator gen(lib, "ADDER", *tile, &generic);
  CellClass& a4 = gen.realize(4);
  CellClass& a8 = gen.realize(8);
  EXPECT_TRUE(a4.is_descendant_of(generic));
  EXPECT_TRUE(a8.is_descendant_of(generic));
  EXPECT_EQ(generic.all_subclasses().size(), 2u)
      << "selection can now search generated widths";
}

TEST_F(GeneratorTest, InvalidWidthRejected) {
  ParameterizedCellGenerator gen(lib, "ADDER", *tile);
  EXPECT_THROW(gen.realize(0), std::invalid_argument);
  EXPECT_THROW(gen.realize(-3), std::invalid_argument);
}

TEST_F(GeneratorTest, TileGrowthRipplesIntoGeneratedCells) {
  ParameterizedCellGenerator gen(lib, "ADDER", *tile);
  CellClass& a4 = gen.realize(4);
  (void)a4.bounding_box().demand();
  // Taller slice: the generated cell's box was derived, so it is erased and
  // recalculated on demand.
  EXPECT_TRUE(tile->bounding_box().set_user(Value(Rect{0, 0, 10, 30})));
  EXPECT_EQ(a4.bounding_box().demand().as_rect(), (Rect{0, 0, 40, 30}));
}

}  // namespace
}  // namespace stemcp::env
