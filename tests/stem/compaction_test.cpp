// Graph-based layout compaction (the specialized baseline of thesis §7.4)
// and its equivalence with the general-framework encoding.
#include <gtest/gtest.h>

#include "stem/layout/compaction.h"
#include "stem/stem.h"

namespace stemcp::env::layout {
namespace {

TEST(CompactionTest, RowCompactsLeftJustified) {
  CompactionGraph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  const NodeId c = g.add_node("c");
  g.add_spacing(0, a, 0);    // a >= 0
  g.add_spacing(a, b, 10);   // b >= a + 10
  g.add_spacing(b, c, 15);   // c >= b + 15
  const auto s = g.compact();
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->position[static_cast<std::size_t>(a)], 0);
  EXPECT_EQ(s->position[static_cast<std::size_t>(b)], 10);
  EXPECT_EQ(s->position[static_cast<std::size_t>(c)], 25);
  EXPECT_EQ(s->width, 25);
  EXPECT_TRUE(g.satisfied_by(s->position));
}

TEST(CompactionTest, MaximallyConstrainedPathWins) {
  // Two chains into one node: the longer dominates (the thesis's "solve for
  // the maximally constrained paths").
  CompactionGraph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  const NodeId sink = g.add_node("sink");
  g.add_spacing(0, a, 5);
  g.add_spacing(0, b, 0);
  g.add_spacing(a, sink, 10);  // path 1: 15
  g.add_spacing(b, sink, 40);  // path 2: 40
  const auto s = g.compact();
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->position[static_cast<std::size_t>(sink)], 40);
}

TEST(CompactionTest, PinsFixPositions) {
  CompactionGraph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  g.pin(a, 100);
  g.add_spacing(a, b, 10);
  const auto s = g.compact();
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->position[static_cast<std::size_t>(a)], 100);
  EXPECT_EQ(s->position[static_cast<std::size_t>(b)], 110);
}

TEST(CompactionTest, OverConstrainedDetected) {
  CompactionGraph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  g.pin(a, 0);
  g.pin(b, 5);
  g.add_spacing(a, b, 10);  // needs b >= 10 but b pinned at 5
  EXPECT_FALSE(g.compact().has_value());
}

TEST(CompactionTest, SatisfiedByRejectsBadAssignments) {
  CompactionGraph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  g.add_spacing(a, b, 10);
  EXPECT_TRUE(g.satisfied_by({0, 0, 10}));
  EXPECT_FALSE(g.satisfied_by({0, 0, 9}));
  EXPECT_FALSE(g.satisfied_by({0}));  // missing nodes
}

// The same row expressed in the general framework (SpacingConstraints +
// relaxation) reaches an equivalent, feasible placement.
TEST(CompactionTest, GeneralFrameworkAgreesOnFeasibility) {
  core::PropagationContext ctx;
  core::Variable a(ctx, "row", "a"), b(ctx, "row", "b"), c(ctx, "row", "c");
  ctx.set_enabled(false);
  a.set_user(core::Value(0.0));  // pinned origin
  b.set_application(core::Value(0.0));
  c.set_application(core::Value(0.0));
  ctx.set_enabled(true);
  auto& s1 = core::SpacingConstraint::apart(ctx, a, b, 10.0);
  auto& s2 = core::SpacingConstraint::apart(ctx, b, c, 15.0);

  const auto result = core::RelaxationSolver::solve(ctx, {&s1, &s2});
  EXPECT_TRUE(result.solved);
  EXPECT_GE(b.value().as_number() - a.value().as_number(), 10.0);
  EXPECT_GE(c.value().as_number() - b.value().as_number(), 15.0);

  // Same positions as the dedicated algorithm (left-justified).
  CompactionGraph g;
  const NodeId ga = g.add_node("a");
  const NodeId gb = g.add_node("b");
  const NodeId gc = g.add_node("c");
  g.pin(ga, 0);
  g.add_spacing(ga, gb, 10);
  g.add_spacing(gb, gc, 15);
  const auto sol = g.compact();
  ASSERT_TRUE(sol.has_value());
  EXPECT_DOUBLE_EQ(b.value().as_number(),
                   static_cast<double>(
                       sol->position[static_cast<std::size_t>(gb)]));
  EXPECT_DOUBLE_EQ(c.value().as_number(),
                   static_cast<double>(
                       sol->position[static_cast<std::size_t>(gc)]));
}

TEST(CompactionTest, SpacingConstraintChecksIncrementally) {
  core::PropagationContext ctx;
  core::Variable a(ctx, "row", "a"), b(ctx, "row", "b");
  core::SpacingConstraint::apart(ctx, a, b, 10.0);
  EXPECT_TRUE(a.set_user(core::Value(0.0)));
  EXPECT_TRUE(b.set_user(core::Value(10.0)));
  EXPECT_TRUE(b.set_user(core::Value(9.0)).is_violation())
      << "minimum spacing violated";
  EXPECT_DOUBLE_EQ(b.value().as_number(), 10.0);
}

class RowSize : public ::testing::TestWithParam<int> {};

TEST_P(RowSize, DedicatedAndGeneralAgreeAcrossSizes) {
  const int n = GetParam();
  CompactionGraph g;
  std::vector<NodeId> nodes;
  for (int i = 0; i < n; ++i) {
    nodes.push_back(g.add_node("n" + std::to_string(i)));
  }
  g.pin(nodes[0], 0);
  for (int i = 0; i + 1 < n; ++i) {
    g.add_spacing(nodes[static_cast<std::size_t>(i)],
                  nodes[static_cast<std::size_t>(i) + 1], 3 + i % 5);
  }
  const auto sol = g.compact();
  ASSERT_TRUE(sol.has_value());
  EXPECT_TRUE(g.satisfied_by(sol->position));

  core::PropagationContext ctx;
  std::vector<std::unique_ptr<core::Variable>> vars;
  std::vector<core::Constraint*> cons;
  ctx.set_enabled(false);
  for (int i = 0; i < n; ++i) {
    vars.push_back(std::make_unique<core::Variable>(
        ctx, "row", "n" + std::to_string(i)));
    vars.back()->set(core::Value(0.0), i == 0
                                           ? core::Justification::user()
                                           : core::Justification::application());
  }
  ctx.set_enabled(true);
  for (int i = 0; i + 1 < n; ++i) {
    cons.push_back(&core::SpacingConstraint::apart(
        ctx, *vars[static_cast<std::size_t>(i)],
        *vars[static_cast<std::size_t>(i) + 1], 3.0 + i % 5));
  }
  const auto result = core::RelaxationSolver::solve(ctx, cons);
  ASSERT_TRUE(result.solved);
  for (int i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(
        vars[static_cast<std::size_t>(i)]->value().as_number(),
        static_cast<double>(
            sol->position[static_cast<std::size_t>(nodes[i])]))
        << "node " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RowSize, ::testing::Values(2, 8, 32, 128));

TEST(DeriveGraphTest, SpacingsDerivedFromPlacedGeometry) {
  Library lib;
  auto& leaf = lib.define_cell("LEAF");
  ASSERT_TRUE(
      leaf.bounding_box().set_user(core::Value(core::Rect{0, 0, 10, 10})));
  auto& top = lib.define_cell("TOP");
  // Three cells in a row with wasteful gaps; one on another track.
  top.add_subcell(leaf, "a", core::Transform::translate({0, 0}));
  top.add_subcell(leaf, "b", core::Transform::translate({40, 0}));
  top.add_subcell(leaf, "c", core::Transform::translate({90, 0}));
  top.add_subcell(leaf, "d", core::Transform::translate({0, 50}));

  const CompactionGraph g = derive_horizontal_graph(top, 3);
  EXPECT_EQ(g.node_count(), 5u);  // left edge + four cells
  // a<b, a<c, b<c overlap vertically; d overlaps nobody.
  EXPECT_EQ(g.edge_count(), 4u + 3u);  // 4 left-edge anchors + 3 orderings

  const auto sol = g.compact();
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->position[1], 0);   // a
  EXPECT_EQ(sol->position[2], 13);  // b: 10 + 3
  EXPECT_EQ(sol->position[3], 26);  // c
  EXPECT_EQ(sol->position[4], 0);   // d: free track, pulled to the edge
}

TEST(DeriveGraphTest, ApplyMovesSubcellsAndPreservesRules) {
  Library lib;
  auto& leaf = lib.define_cell("LEAF");
  ASSERT_TRUE(
      leaf.bounding_box().set_user(core::Value(core::Rect{0, 0, 10, 10})));
  auto& top = lib.define_cell("TOP");
  top.add_subcell(leaf, "a", core::Transform::translate({5, 0}));
  top.add_subcell(leaf, "b", core::Transform::translate({60, 0}));
  EXPECT_EQ(top.bounding_box().demand().as_rect().width(), 65);

  const CompactionGraph g = derive_horizontal_graph(top, 2);
  const auto sol = g.compact();
  ASSERT_TRUE(sol.has_value());
  apply_horizontal_positions(top, *sol);

  EXPECT_EQ(top.find_subcell("a")->transform().translation().x, 0);
  EXPECT_EQ(top.find_subcell("b")->transform().translation().x, 12);
  // The parent box recalculates to the compacted extent.
  EXPECT_EQ(top.bounding_box().demand().as_rect().width(), 22);
  // Re-deriving after compaction changes nothing (fixpoint).
  const auto again = derive_horizontal_graph(top, 2).compact();
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->width, sol->width);
}

TEST(DeriveGraphTest, VerticalPassStacksColumns) {
  Library lib;
  auto& leaf = lib.define_cell("LEAF");
  ASSERT_TRUE(
      leaf.bounding_box().set_user(core::Value(core::Rect{0, 0, 10, 10})));
  auto& top = lib.define_cell("TOP");
  top.add_subcell(leaf, "lo", core::Transform::translate({0, 5}));
  top.add_subcell(leaf, "hi", core::Transform::translate({0, 60}));
  const auto sol = derive_vertical_graph(top, 4).compact();
  ASSERT_TRUE(sol.has_value());
  apply_vertical_positions(top, *sol);
  EXPECT_EQ(top.find_subcell("lo")->transform().translation().y, 0);
  EXPECT_EQ(top.find_subcell("hi")->transform().translation().y, 14);
}

TEST(DeriveGraphTest, CompactBothSquashesGrid) {
  Library lib;
  auto& leaf = lib.define_cell("LEAF");
  ASSERT_TRUE(
      leaf.bounding_box().set_user(core::Value(core::Rect{0, 0, 10, 10})));
  auto& top = lib.define_cell("TOP");
  // A sparse 2x2 grid with big gaps both ways.
  top.add_subcell(leaf, "a", core::Transform::translate({0, 0}));
  top.add_subcell(leaf, "b", core::Transform::translate({50, 0}));
  top.add_subcell(leaf, "c", core::Transform::translate({0, 70}));
  top.add_subcell(leaf, "d", core::Transform::translate({50, 70}));
  ASSERT_TRUE(compact_both(top, 2));
  const core::Rect after = top.bounding_box().demand().as_rect();
  EXPECT_EQ(after.width(), 22);   // 10 + 2 + 10
  EXPECT_EQ(after.height(), 22);
  // Spacing rules still hold everywhere.
  const auto x = derive_horizontal_graph(top, 2).compact();
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(x->width, 12) << "already left-justified";
}

}  // namespace
}  // namespace stemcp::env::layout
