// Design database structure: declarations, inheritance, instances
// (thesis ch. 3, §3.3.2).
#include <gtest/gtest.h>

#include "stem/stem.h"

namespace stemcp::env {
namespace {

using core::Transform;
using core::Value;

class CellTest : public ::testing::Test {
 protected:
  Library lib;
};

TEST_F(CellTest, DeclareAndFindSignals) {
  auto& c = lib.define_cell("C", nullptr);
  c.declare_signal("a", SignalDirection::kInput);
  c.declare_signal("out", SignalDirection::kOutput);
  EXPECT_NE(c.find_signal("a"), nullptr);
  EXPECT_EQ(c.find_signal("zz"), nullptr);
  EXPECT_TRUE(c.signal("a").is_input());
  EXPECT_TRUE(c.signal("out").is_output());
  EXPECT_THROW(c.declare_signal("a", SignalDirection::kInput),
               std::invalid_argument);
  EXPECT_THROW(c.signal("zz"), std::out_of_range);
}

TEST_F(CellTest, SubclassesInheritInterface) {
  auto& base = lib.define_cell("ADDER", nullptr);
  base.declare_signal("a", SignalDirection::kInput);
  base.declare_signal("out", SignalDirection::kOutput);
  base.declare_parameter("width", 1, 64, Value(8));
  auto& rc = lib.define_cell("ADDER.RC", &base);
  EXPECT_EQ(rc.superclass(), &base);
  EXPECT_NE(rc.find_signal("a"), nullptr) << "inherited signal";
  EXPECT_NE(rc.find_parameter("width"), nullptr) << "inherited parameter";
  EXPECT_TRUE(rc.is_descendant_of(base));
  EXPECT_FALSE(base.is_descendant_of(rc));
  ASSERT_EQ(base.subclasses().size(), 1u);
  EXPECT_EQ(base.subclasses()[0], &rc);
}

TEST_F(CellTest, AllSubclassesPreOrder) {
  auto& g = lib.define_cell("G", nullptr);
  auto& a = lib.define_cell("Ga", &g);
  auto& a1 = lib.define_cell("Ga1", &a);
  auto& b = lib.define_cell("Gb", &g);
  const auto subs = g.all_subclasses();
  ASSERT_EQ(subs.size(), 3u);
  EXPECT_EQ(subs[0], &a);
  EXPECT_EQ(subs[1], &a1);
  EXPECT_EQ(subs[2], &b);
}

TEST_F(CellTest, SignalShadowingInSubclass) {
  auto& base = lib.define_cell("BASE", nullptr);
  base.declare_signal("x", SignalDirection::kInput);
  auto& sub = lib.define_cell("SUB", &base);
  sub.declare_signal("x", SignalDirection::kInOut);  // specialized
  EXPECT_EQ(sub.find_signal("x")->direction(), SignalDirection::kInOut);
  EXPECT_EQ(base.find_signal("x")->direction(), SignalDirection::kInput);
  EXPECT_EQ(sub.all_signals().size(), 1u) << "shadowed, not duplicated";
}

TEST_F(CellTest, InstancesTrackedOnClass) {
  auto& leaf = lib.define_cell("LEAF", nullptr);
  auto& top = lib.define_cell("TOP", nullptr);
  auto& i1 = top.add_subcell(leaf, "i1");
  EXPECT_EQ(leaf.instances().size(), 1u);
  EXPECT_EQ(i1.parent_cell(), &top);
  EXPECT_EQ(&i1.cls(), &leaf);
  top.remove_subcell(i1);
  EXPECT_TRUE(leaf.instances().empty());
  EXPECT_TRUE(top.subcells().empty());
}

TEST_F(CellTest, RemoveSubcellDisconnectsNets) {
  auto& leaf = lib.define_cell("LEAF", nullptr);
  leaf.declare_signal("p", SignalDirection::kInput);
  auto& top = lib.define_cell("TOP", nullptr);
  auto& inst = top.add_subcell(leaf, "i");
  auto& net = top.add_net("n");
  EXPECT_TRUE(net.connect(inst, "p"));
  ASSERT_EQ(net.connections().size(), 1u);
  top.remove_subcell(inst);
  EXPECT_TRUE(net.connections().empty());
}

TEST_F(CellTest, PlacedPinsTransformPositionsAndSides) {
  auto& leaf = lib.define_cell("LEAF", nullptr);
  auto& sig = leaf.declare_signal("p", SignalDirection::kInput);
  sig.add_pin({0, 5}, Side::kLeft);
  auto& top = lib.define_cell("TOP", nullptr);
  auto& inst = top.add_subcell(
      leaf, "i", Transform{core::Orientation::kMY, {100, 0}});
  const auto pins = inst.placed_pins();
  ASSERT_EQ(pins.size(), 1u);
  EXPECT_EQ(pins[0].position, (core::Point{100, 5}));
  EXPECT_EQ(pins[0].side, Side::kRight) << "mirror-Y flips left to right";
}

TEST_F(CellTest, GenericFlagAndRealizationList) {
  auto& g = lib.define_cell("ADD8", nullptr);
  g.set_generic(true);
  EXPECT_TRUE(g.is_generic());
  lib.define_cell("ADD8.RC", &g);
  lib.define_cell("ADD8.CS", &g);
  EXPECT_EQ(g.all_subclasses().size(), 2u);
}

TEST_F(CellTest, ChangeBroadcastReachesViews) {
  struct Recorder : View {
    std::vector<std::string> keys;
    void update(const std::string& key) override { keys.push_back(key); }
  };
  auto& c = lib.define_cell("C", nullptr);
  Recorder r;
  c.add_dependent(r);
  c.changed(kChangedLayout);
  ASSERT_EQ(r.keys.size(), 1u);
  EXPECT_EQ(r.keys[0], kChangedLayout);
  c.remove_dependent(r);
  c.changed(kChangedLayout);
  EXPECT_EQ(r.keys.size(), 1u);
}

TEST_F(CellTest, ChangesPropagateUpDesignHierarchy) {
  struct Recorder : View {
    int updates = 0;
    void update(const std::string&) override { ++updates; }
  };
  auto& leaf = lib.define_cell("LEAF", nullptr);
  auto& mid = lib.define_cell("MID", nullptr);
  mid.add_subcell(leaf, "l");
  auto& top = lib.define_cell("TOP", nullptr);
  top.add_subcell(mid, "m");
  Recorder top_view;
  top.add_dependent(top_view);
  leaf.changed(kChangedStructure);
  EXPECT_GE(top_view.updates, 1)
      << "a leaf edit outdates views two levels up (thesis §6.5.2)";
}

TEST_F(CellTest, ParameterRangeEnforcedOnInstances) {
  auto& c = lib.define_cell("C", nullptr);
  c.declare_parameter("w", 1, 16, Value(4));
  auto& top = lib.define_cell("TOP", nullptr);
  auto& inst = top.add_subcell(c, "i");
  EXPECT_EQ(inst.parameter("w").value().as_int(), 4) << "default propagated";
  EXPECT_TRUE(inst.parameter("w").set_user(Value(8)));
  EXPECT_TRUE(inst.parameter("w").set_user(Value(99)).is_violation());
  EXPECT_EQ(inst.parameter("w").value().as_int(), 8);
}

TEST_F(CellTest, DuplicateCellNameRejected) {
  lib.define_cell("X", nullptr);
  EXPECT_THROW(lib.define_cell("X", nullptr), std::invalid_argument);
  EXPECT_THROW(lib.cell("nope"), std::out_of_range);
}

TEST_F(CellTest, DeviceInfoMarksPrimitives) {
  auto& r = lib.define_cell("R1K", nullptr);
  EXPECT_FALSE(r.is_device());
  r.device().kind = DeviceInfo::Kind::kResistor;
  r.device().value = 1000.0;
  EXPECT_TRUE(r.is_device());
}

}  // namespace
}  // namespace stemcp::env
