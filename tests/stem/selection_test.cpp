// Module validation and selection (thesis ch. 8, Figs 8.1-8.4).
#include <gtest/gtest.h>

#include "stem/stem.h"

namespace stemcp::env {
namespace {

using core::BoundConstraint;
using core::Rect;
using core::Transform;
using core::Value;

constexpr double kNs = 1e-9;

/// Builds the thesis Fig 8.1 scenario: ALU = LU8 -> generic ADD8, where
/// ADD8 has a ripple-carry realization (slow, small) and a carry-select
/// realization (fast, large).
class Fig81 {
 public:
  Library lib;
  CellClass* add8;
  CellClass* add8_rc;
  CellClass* add8_cs;
  CellClass* lu8;
  CellClass* alu;
  CellInstance* adder_inst;
  ClassDelayVar* alu_delay;

  Fig81() {
    add8 = &lib.define_cell("ADD8", nullptr);
    add8->set_generic(true);
    add8->declare_signal("in", SignalDirection::kInput);
    add8->declare_signal("out", SignalDirection::kOutput);
    add8->declare_delay("in", "out");

    // ADD8.RC: delay 8D (8 ns), area A (80).
    add8_rc = &lib.define_cell("ADD8.RC", add8);
    EXPECT_TRUE(add8_rc->set_leaf_delay("in", "out", 8 * kNs));
    EXPECT_TRUE(add8_rc->bounding_box().set_user(Value(Rect{0, 0, 8, 10})));
    // ADD8.CS: delay 5D (5 ns), area 2.2A (176).
    add8_cs = &lib.define_cell("ADD8.CS", add8);
    EXPECT_TRUE(add8_cs->set_leaf_delay("in", "out", 5 * kNs));
    EXPECT_TRUE(add8_cs->bounding_box().set_user(Value(Rect{0, 0, 8, 22})));

    lu8 = &lib.define_cell("LU8", nullptr);
    lu8->declare_signal("in", SignalDirection::kInput);
    lu8->declare_signal("out", SignalDirection::kOutput);
    EXPECT_TRUE(lu8->set_leaf_delay("in", "out", 3 * kNs));
    EXPECT_TRUE(lu8->bounding_box().set_user(Value(Rect{0, 0, 8, 20})));

    alu = &lib.define_cell("ALU", nullptr);
    alu->declare_signal("in", SignalDirection::kInput);
    alu->declare_signal("out", SignalDirection::kOutput);
    alu_delay = &alu->declare_delay("in", "out");

    auto& lu = alu->add_subcell(*lu8, "lu", Transform::translate({0, 0}));
    adder_inst =
        &alu->add_subcell(*add8, "add", Transform::translate({0, 20}));
    auto& n_in = alu->add_net("n_in");
    EXPECT_TRUE(n_in.connect_io("in"));
    EXPECT_TRUE(n_in.connect(lu, "in"));
    auto& n_mid = alu->add_net("n_mid");
    EXPECT_TRUE(n_mid.connect(lu, "out"));
    EXPECT_TRUE(n_mid.connect(*adder_inst, "in"));
    auto& n_out = alu->add_net("n_out");
    EXPECT_TRUE(n_out.connect(*adder_inst, "out"));
    EXPECT_TRUE(n_out.connect_io("out"));
    alu->build_delay_networks();
  }
};

TEST(SelectionTest, Fig8_1TightAreaSelectsRippleCarry) {
  Fig81 f;
  // Tight area: the adder slot is only A (8x10); relaxed delay: 11D.
  EXPECT_TRUE(
      f.adder_inst->bounding_box().set_user(Value(Rect{0, 20, 8, 30})));
  BoundConstraint::upper(f.lib.context(), *f.alu_delay, Value(11 * kNs));

  const auto found = f.add8->select_realizations_for(*f.adder_inst, {});
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0], f.add8_rc) << "carry-select is too big for the slot";
}

TEST(SelectionTest, Fig8_1TightDelaySelectsCarrySelect) {
  Fig81 f;
  // Relaxed area: 4.2A slot; tight delay: 8D overall (3 + 5 fits, 3 + 8
  // does not).
  EXPECT_TRUE(
      f.adder_inst->bounding_box().set_user(Value(Rect{0, 20, 8, 62})));
  BoundConstraint::upper(f.lib.context(), *f.alu_delay, Value(8 * kNs));

  const auto found = f.add8->select_realizations_for(*f.adder_inst, {});
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0], f.add8_cs) << "ripple-carry is too slow";
}

TEST(SelectionTest, RelaxedConstraintsAcceptBoth) {
  Fig81 f;
  EXPECT_TRUE(
      f.adder_inst->bounding_box().set_user(Value(Rect{0, 20, 8, 62})));
  BoundConstraint::upper(f.lib.context(), *f.alu_delay, Value(20 * kNs));
  const auto found = f.add8->select_realizations_for(*f.adder_inst, {});
  EXPECT_EQ(found.size(), 2u);
}

TEST(SelectionTest, ImpossibleConstraintsRejectBoth) {
  Fig81 f;
  EXPECT_TRUE(
      f.adder_inst->bounding_box().set_user(Value(Rect{0, 20, 8, 62})));
  BoundConstraint::upper(f.lib.context(), *f.alu_delay, Value(6 * kNs));
  const auto found = f.add8->select_realizations_for(*f.adder_inst, {});
  EXPECT_TRUE(found.empty());
}

TEST(SelectionTest, ProbeLeavesNetworkUntouched) {
  Fig81 f;
  EXPECT_TRUE(
      f.adder_inst->bounding_box().set_user(Value(Rect{0, 20, 8, 30})));
  BoundConstraint::upper(f.lib.context(), *f.alu_delay, Value(11 * kNs));
  (void)f.add8->select_realizations_for(*f.adder_inst, {});
  EXPECT_TRUE(f.alu_delay->value().is_nil())
      << "tentative probes restored; no committed delay";
  EXPECT_TRUE(f.adder_inst->delay("in", "out").value().is_nil());
}

TEST(SelectionTest, SelectiveTestingSkipsUnrequestedProperties) {
  Fig81 f;
  EXPECT_TRUE(
      f.adder_inst->bounding_box().set_user(Value(Rect{0, 20, 8, 30})));
  f.lib.reset_selection_stats();
  (void)f.add8->select_realizations_for(*f.adder_inst, {"bBox"});
  EXPECT_GT(f.lib.selection_stats().bbox_checks, 0u);
  EXPECT_EQ(f.lib.selection_stats().delay_checks, 0u);
  EXPECT_EQ(f.lib.selection_stats().signal_checks, 0u);
}

TEST(SelectionTest, OrderingAppliesMostCriticalTestFirst) {
  Fig81 f;
  EXPECT_TRUE(
      f.adder_inst->bounding_box().set_user(Value(Rect{0, 20, 8, 30})));
  BoundConstraint::upper(f.lib.context(), *f.alu_delay, Value(11 * kNs));
  // bBox first: ADD8.CS fails on the box and never reaches the (expensive)
  // delay probe.
  f.lib.reset_selection_stats();
  (void)f.add8->select_realizations_for(*f.adder_inst, {"bBox", "delays"});
  const auto bbox_first_delay_probes = f.lib.selection_stats().delay_checks;
  f.lib.reset_selection_stats();
  (void)f.add8->select_realizations_for(*f.adder_inst, {"delays", "bBox"});
  const auto delay_first_delay_probes = f.lib.selection_stats().delay_checks;
  EXPECT_LT(bbox_first_delay_probes, delay_first_delay_probes);
}

// Thesis Fig 8.4: generic intermediate classes carry the best-case
// characteristics of their subtrees; failing the generic prunes the whole
// subtree.
TEST(SelectionTest, Fig8_4GenericPruningCutsSubtree) {
  Library lib;
  auto& adder8 = lib.define_cell("Adder8", nullptr);
  adder8.set_generic(true);
  adder8.declare_signal("in", SignalDirection::kInput);
  adder8.declare_signal("out", SignalDirection::kOutput);
  adder8.declare_delay("in", "out");

  // Ripple-carry subtree: best case delay 8D, area 8A.
  auto& ripple = lib.define_cell("RippleCarryAdder8", &adder8);
  ripple.set_generic(true);
  EXPECT_TRUE(ripple.set_leaf_delay("in", "out", 8 * kNs));  // ideal estimate
  EXPECT_TRUE(ripple.bounding_box().set_user(Value(Rect{0, 0, 8, 8})));
  auto& rc_s = lib.define_cell("RCAdd8S", &ripple);
  EXPECT_TRUE(rc_s.set_leaf_delay("in", "out", 16 * kNs));
  EXPECT_TRUE(rc_s.bounding_box().set_user(Value(Rect{0, 0, 8, 8})));
  auto& rc_f = lib.define_cell("RCAdd8F", &ripple);
  EXPECT_TRUE(rc_f.set_leaf_delay("in", "out", 8 * kNs));
  EXPECT_TRUE(rc_f.bounding_box().set_user(Value(Rect{0, 0, 16, 8})));
  for (int i = 0; i < 3; ++i) {
    auto& extra =
        lib.define_cell("RCAdd8V" + std::to_string(i), &ripple);
    EXPECT_TRUE(extra.set_leaf_delay("in", "out", (9 + i) * kNs));
    EXPECT_TRUE(extra.bounding_box().set_user(Value(Rect{0, 0, 8, 8})));
  }

  // Carry-select subtree: best case delay 4D, area 16A.
  auto& csel = lib.define_cell("CarrySelectAdder8", &adder8);
  csel.set_generic(true);
  EXPECT_TRUE(csel.set_leaf_delay("in", "out", 4 * kNs));
  EXPECT_TRUE(csel.bounding_box().set_user(Value(Rect{0, 0, 16, 8})));
  auto& cs_1 = lib.define_cell("CSAdd8A", &csel);
  EXPECT_TRUE(cs_1.set_leaf_delay("in", "out", 4 * kNs));
  EXPECT_TRUE(cs_1.bounding_box().set_user(Value(Rect{0, 0, 16, 8})));
  auto& cs_2 = lib.define_cell("CSAdd8B", &csel);
  EXPECT_TRUE(cs_2.set_leaf_delay("in", "out", 5 * kNs));
  EXPECT_TRUE(cs_2.bounding_box().set_user(Value(Rect{0, 0, 16, 9})));

  auto& top = lib.define_cell("TOP", nullptr);
  top.declare_signal("in", SignalDirection::kInput);
  top.declare_signal("out", SignalDirection::kOutput);
  auto& d = top.declare_delay("in", "out");
  auto& inst = top.add_subcell(adder8, "u");
  auto& n1 = top.add_net("n1");
  EXPECT_TRUE(n1.connect_io("in"));
  EXPECT_TRUE(n1.connect(inst, "in"));
  auto& n2 = top.add_net("n2");
  EXPECT_TRUE(n2.connect(inst, "out"));
  EXPECT_TRUE(n2.connect_io("out"));
  top.build_delay_networks();

  // Delay budget 6D: the whole ripple subtree is hopeless (best 8D); both
  // carry-select leaves happen to pass.
  BoundConstraint::upper(lib.context(), d, Value(6 * kNs));
  // Generous placement.
  EXPECT_TRUE(inst.bounding_box().set_user(Value(Rect{0, 0, 32, 32})));

  lib.reset_selection_stats();
  const auto pruned = adder8.valid_realizations_for(inst, {});
  const auto pruned_tests = lib.selection_stats().candidates_tested;
  ASSERT_EQ(pruned.size(), 2u);
  EXPECT_EQ(pruned[0], &cs_1);
  EXPECT_EQ(pruned[1], &cs_2);

  lib.reset_selection_stats();
  const auto unpruned = adder8.valid_realizations_unpruned(inst, {});
  const auto unpruned_tests = lib.selection_stats().candidates_tested;
  EXPECT_EQ(unpruned, pruned) << "pruning never changes the result set";
  EXPECT_LT(pruned_tests, unpruned_tests)
      << "failing the ripple generic skipped its two leaves; tested " +
             std::to_string(pruned_tests) + " vs " +
             std::to_string(unpruned_tests);
}

TEST(SelectionTest, NonGenericCellRealizesItself) {
  Library lib;
  auto& c = lib.define_cell("C", nullptr);
  auto& top = lib.define_cell("TOP", nullptr);
  auto& inst = top.add_subcell(c, "i");
  const auto found = c.select_realizations_for(inst, {});
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0], &c);
}

TEST(SelectionTest, SignalMismatchRejectsCandidate) {
  Library lib;
  auto& g = lib.define_cell("G", nullptr);
  g.set_generic(true);
  g.declare_signal("in", SignalDirection::kInput);
  // Candidate lacking the generic's interface.
  auto& bad = lib.define_cell("BAD", &g);
  // CellClass inheritance would give BAD the signal; simulate a standalone
  // incompatible candidate instead.
  auto& standalone = lib.define_cell("LONER", nullptr);
  auto& top = lib.define_cell("TOP", nullptr);
  auto& inst = top.add_subcell(g, "i");
  EXPECT_TRUE(bad.valid_signals_for(inst)) << "inherited interface matches";
  EXPECT_FALSE(standalone.valid_signals_for(inst));
}

TEST(SelectionTest, WidthConflictRejectsCandidate) {
  Library lib;
  auto& g = lib.define_cell("G", nullptr);
  g.set_generic(true);
  g.declare_signal("d", SignalDirection::kInput);
  auto& narrow = lib.define_cell("NARROW", &g);
  narrow.declare_signal("d", SignalDirection::kInput);  // shadows
  EXPECT_TRUE(narrow.signal("d").bit_width().set_user(Value(4)));

  auto& top = lib.define_cell("TOP", nullptr);
  auto& inst = top.add_subcell(g, "i");
  auto& net = top.add_net("n");
  EXPECT_TRUE(net.connect(inst, "d"));
  EXPECT_TRUE(net.bit_width().set_user(Value(8)));
  EXPECT_FALSE(narrow.valid_signals_for(inst))
      << "4-bit candidate cannot serve an 8-bit net";
}

}  // namespace
}  // namespace stemcp::env
