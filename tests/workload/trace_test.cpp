// Trace format + scenario spec tests (ISSUE 10, docs/WORKLOAD.md): strict
// line codec, journal-style torn-tail tolerance vs mid-file corruption
// rejection, the synthesize→write→parse→write byte-identity property, and
// the scenario parser's strictness.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "service/protocol.h"
#include "workload/synth.h"
#include "workload/trace.h"

namespace {

using namespace stemcp;
using workload::Scenario;
using workload::TraceRecord;
using workload::TraceScan;
using workload::TraceWriter;

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "stemcp_trace_" + name;
}

std::string read_all(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << path;
  std::ostringstream buf;
  buf << f.rdbuf();
  return buf.str();
}

void write_all(const std::string& path, const std::string& contents) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f << contents;
}

std::string encode(std::uint64_t offset_ns, const std::string& line) {
  std::string out;
  std::string err;
  EXPECT_TRUE(workload::encode_trace_line(offset_ns, line, &out, &err)) << err;
  return out;
}

TEST(TraceCodecTest, EncodeDecodeRoundTripsEveryVerb) {
  const char* lines[] = {
      "open s metrics trace",
      "load s text cell A\\n  signal in input\\nend\\n",
      "save s",
      "assign s PIPE/s0.delay(in->out) 1.0000000000000001e-09",
      "batch-assign s A.x(a->b) 1 B.y(c->d) 2.5",
      "edit s leaf-delay STAGE in out 4e-08",
      "query s PIPE.delay(in->out)",
      "report s PIPE",
      "journal s /tmp/base every-record",
      "checkpoint s",
      "recover s /tmp/base",
      "select s ALU limit 4",
      "select-stats s ALU",
      "close s",
  };
  std::uint64_t offset = 0;
  for (const char* line : lines) {
    const std::string encoded = encode(offset, line);
    ASSERT_EQ(encoded.back(), '\n');
    TraceRecord rec;
    std::string err;
    ASSERT_TRUE(workload::decode_trace_line(
        std::string_view(encoded).substr(0, encoded.size() - 1), &rec, &err))
        << line << ": " << err;
    EXPECT_EQ(rec.offset_ns, offset);
    EXPECT_EQ(rec.line, line);
    // Re-encoding the decoded record reproduces the bytes exactly.
    std::string again;
    ASSERT_TRUE(workload::encode_trace_line(rec.offset_ns, rec.line, &again,
                                            &err)) << err;
    EXPECT_EQ(again, encoded);
    offset += 1000;
  }
}

TEST(TraceCodecTest, RenderParseRoundTripsTypedRequests) {
  service::Request r;
  r.type = service::RequestType::kBatchAssign;
  r.session = "sess_1";
  r.assignments.push_back({"PIPE/s0.delay(in->out)", 1e-9});
  r.assignments.push_back({"PIPE/s1.delay(in->out)", 0.30000000000000004});
  std::string line;
  std::string err;
  ASSERT_TRUE(workload::render_request(r, &line, &err)) << err;
  service::Request back;
  ASSERT_TRUE(service::ServiceFrontEnd::parse(line, &back, &err)) << err;
  EXPECT_EQ(back.type, r.type);
  EXPECT_EQ(back.session, r.session);
  ASSERT_EQ(back.assignments.size(), r.assignments.size());
  for (std::size_t i = 0; i < r.assignments.size(); ++i) {
    EXPECT_EQ(back.assignments[i].variable, r.assignments[i].variable);
    EXPECT_EQ(back.assignments[i].value, r.assignments[i].value);
  }
  // And the re-render is byte-identical (%.17g round-trips doubles).
  std::string again;
  ASSERT_TRUE(workload::render_request(back, &again, &err)) << err;
  EXPECT_EQ(again, line);
}

TEST(TraceCodecTest, LoadTextWithNewlinesRoundTrips) {
  service::Request r;
  r.type = service::RequestType::kLoad;
  r.session = "s";
  r.text = "cell A\n  signal in input\nend\n";
  std::string line;
  ASSERT_TRUE(workload::render_request(r, &line));
  service::Request back;
  std::string err;
  ASSERT_TRUE(service::ServiceFrontEnd::parse(line, &back, &err)) << err;
  EXPECT_EQ(back.text, r.text);
}

TEST(TraceCodecTest, UnrenderableRequestsAreRejected) {
  service::Request r;
  r.type = service::RequestType::kQuery;
  r.session = "has space";
  std::string line, err;
  EXPECT_FALSE(workload::render_request(r, &line, &err));
  r.session = "s";
  r.type = service::RequestType::kLoad;
  r.text = "literal \\n backslash";  // parse() would unescape it
  line.clear();
  EXPECT_FALSE(workload::render_request(r, &line, &err));
  r.type = service::RequestType::kEdit;
  r.text = "two\nlines";
  line.clear();
  EXPECT_FALSE(workload::render_request(r, &line, &err));
  r.type = service::RequestType::kJournal;
  r.text = "";  // journal needs a base
  line.clear();
  EXPECT_FALSE(workload::render_request(r, &line, &err));
}

TEST(TraceCodecTest, DecodeRejectsBadFraming) {
  TraceRecord rec;
  std::string err;
  EXPECT_FALSE(workload::decode_trace_line("J1 00000000 0 close s", &rec, &err));
  EXPECT_NE(err.find("magic"), std::string::npos);
  EXPECT_FALSE(workload::decode_trace_line("T1 0000000 0 close s", &rec, &err));
  EXPECT_FALSE(workload::decode_trace_line("T1 0000000Z 0 close s", &rec, &err));
  // Valid CRC but garbage request line.
  std::string enc;
  ASSERT_TRUE(workload::encode_trace_line(0, "frobnicate s", &enc, &err));
  EXPECT_FALSE(workload::decode_trace_line(
      std::string_view(enc).substr(0, enc.size() - 1), &rec, &err));
  EXPECT_NE(err.find("bad request line"), std::string::npos);
  // CRC mismatch: flip one payload byte.
  enc.clear();
  ASSERT_TRUE(workload::encode_trace_line(0, "close s", &enc, &err));
  enc[enc.size() - 2] = 'x';
  EXPECT_FALSE(workload::decode_trace_line(
      std::string_view(enc).substr(0, enc.size() - 1), &rec, &err));
  EXPECT_NE(err.find("CRC mismatch"), std::string::npos);
}

TEST(TraceCodecTest, LoadFileFormIsRejected) {
  std::string enc, err;
  ASSERT_TRUE(workload::encode_trace_line(0, "load s file /etc/hostname",
                                          &enc, &err));
  TraceRecord rec;
  EXPECT_FALSE(workload::decode_trace_line(
      std::string_view(enc).substr(0, enc.size() - 1), &rec, &err));
  EXPECT_NE(err.find("not allowed in traces"), std::string::npos) << err;
}

TEST(TraceScanTest, TornFinalLineIsTolerated) {
  const std::string path = temp_path("torn");
  write_all(path, encode(0, "open s") + encode(10, "close s"));
  const std::string full = read_all(path);
  // Truncate mid-final-line: every cut point inside the last record must
  // scan clean with exactly the first record surviving.
  const std::size_t first_len = encode(0, "open s").size();
  for (std::size_t cut = first_len + 1; cut < full.size(); ++cut) {
    write_all(path, full.substr(0, cut));
    const TraceScan scan = workload::scan_trace_file(path);
    ASSERT_TRUE(scan.error.empty()) << "cut=" << cut << ": " << scan.error;
    EXPECT_TRUE(scan.torn_tail) << "cut=" << cut;
    EXPECT_EQ(scan.records.size(), 1u) << "cut=" << cut;
    EXPECT_EQ(scan.bytes_scanned, first_len);
  }
  std::remove(path.c_str());
}

TEST(TraceScanTest, CorruptFinalLineWithNewlineIsTolerated) {
  // A bad record as the very last line (even '\n'-terminated) could be a
  // torn write whose tail included newline garbage — journal rule.
  const std::string path = temp_path("torn_nl");
  std::string contents = encode(0, "open s");
  contents += "T1 deadbeef 20 close s\n";  // wrong CRC
  write_all(path, contents);
  const TraceScan scan = workload::scan_trace_file(path);
  EXPECT_TRUE(scan.error.empty()) << scan.error;
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_EQ(scan.records.size(), 1u);
  std::remove(path.c_str());
}

TEST(TraceScanTest, MidFileCorruptionIsRejected) {
  const std::string path = temp_path("corrupt");
  const std::string first = encode(0, "open s");
  write_all(path, first + "T1 deadbeef 10 close s\n" + encode(20, "close s"));
  const TraceScan scan = workload::scan_trace_file(path);
  ASSERT_FALSE(scan.error.empty());
  EXPECT_NE(scan.error.find("trace corrupt at byte " +
                            std::to_string(first.size())),
            std::string::npos)
      << scan.error;
  std::remove(path.c_str());
}

TEST(TraceScanTest, FlippedPayloadByteMidFileIsRejected) {
  const std::string path = temp_path("flip");
  std::string contents =
      encode(0, "open s") + encode(10, "assign s A.x(a->b) 1") +
      encode(20, "close s");
  // Flip a byte inside the middle record's payload.
  const std::size_t mid = encode(0, "open s").size() + 20;
  contents[mid] ^= 0x20;
  write_all(path, contents);
  const TraceScan scan = workload::scan_trace_file(path);
  EXPECT_FALSE(scan.error.empty());
  std::remove(path.c_str());
}

TEST(TraceScanTest, DisorderedOffsetsAreRejectedEvenAtTheTail) {
  // CRC-valid records cannot be torn writes, so time going backwards is
  // corruption no matter where it sits — including the final line.
  const std::string path = temp_path("disorder");
  write_all(path, encode(100, "open s") + encode(50, "close s"));
  const TraceScan scan = workload::scan_trace_file(path);
  ASSERT_FALSE(scan.error.empty());
  EXPECT_NE(scan.error.find("disordered"), std::string::npos) << scan.error;
  std::remove(path.c_str());
}

TEST(TraceScanTest, WriterEnforcesMonotoneOffsets) {
  const std::string path = temp_path("writer");
  std::string err;
  auto writer = TraceWriter::open(path, &err);
  ASSERT_NE(writer, nullptr) << err;
  ASSERT_TRUE(writer->append(100, "open s", &err)) << err;
  EXPECT_FALSE(writer->append(50, "close s", &err));
  ASSERT_TRUE(writer->append(100, "close s", &err)) << err;  // equal is fine
  ASSERT_TRUE(writer->finish(&err)) << err;
  const TraceScan scan = workload::scan_trace_file(path);
  EXPECT_TRUE(scan.error.empty()) << scan.error;
  EXPECT_EQ(scan.records.size(), 2u);
  std::remove(path.c_str());
}

// The satellite-3 property: synthesize → write → parse → write must be
// byte-identical, across scenarios that exercise zipf, burst, churn, and
// the selection mix.
TEST(TraceScanTest, SynthesizeWriteParseWriteIsByteIdentical) {
  Scenario scenarios[4];
  scenarios[0] = Scenario{};
  scenarios[0].requests = 400;
  scenarios[1].seed = 99;
  scenarios[1].sessions = 3;
  scenarios[1].zipf_skew = 2.0;
  scenarios[1].requests = 300;
  scenarios[1].churn = 0.05;
  scenarios[2].burst_on_s = 0.01;
  scenarios[2].burst_idle_s = 0.02;
  scenarios[2].burst_factor = 8.0;
  scenarios[2].requests = 500;
  scenarios[3].design = "selection";
  scenarios[3].w_select = 10;
  scenarios[3].requests = 200;
  int index = 0;
  for (const Scenario& sc : scenarios) {
    const std::string path_a = temp_path("prop_a" + std::to_string(index));
    const std::string path_b = temp_path("prop_b" + std::to_string(index));
    std::string err;
    ASSERT_TRUE(workload::synthesize_to_file(sc, path_a, &err)) << err;
    const TraceScan scan = workload::scan_trace_file(path_a);
    ASSERT_TRUE(scan.error.empty()) << scan.error;
    ASSERT_FALSE(scan.torn_tail);
    ASSERT_GE(scan.records.size(), static_cast<std::size_t>(sc.requests));
    auto writer = TraceWriter::open(path_b, &err);
    ASSERT_NE(writer, nullptr) << err;
    for (const TraceRecord& rec : scan.records) {
      ASSERT_TRUE(writer->append(rec, &err)) << err;
    }
    ASSERT_TRUE(writer->finish(&err)) << err;
    EXPECT_EQ(read_all(path_a), read_all(path_b)) << "scenario " << index;
    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
    ++index;
  }
}

TEST(TraceScanTest, SynthesisIsDeterministicPerSeed) {
  Scenario sc;
  sc.requests = 300;
  sc.churn = 0.01;
  const std::string a = temp_path("det_a");
  const std::string b = temp_path("det_b");
  std::string err;
  ASSERT_TRUE(workload::synthesize_to_file(sc, a, &err)) << err;
  ASSERT_TRUE(workload::synthesize_to_file(sc, b, &err)) << err;
  EXPECT_EQ(read_all(a), read_all(b));
  sc.seed = 2;
  ASSERT_TRUE(workload::synthesize_to_file(sc, b, &err)) << err;
  EXPECT_NE(read_all(a), read_all(b));
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(WorkloadScenarioTest, ParsesFullSpec) {
  Scenario sc;
  std::string err;
  ASSERT_TRUE(workload::parse_scenario(
      "# stemcp-scenario v1\n"
      "name storm\n"
      "seed 7\n"
      "sessions 4\n"
      "zipf-skew 1.5\n"
      "rate 1000\n"
      "requests 500\n"
      "burst 0.1 0.2 8\n"
      "# a comment\n"
      "\n"
      "mix assign 40 batch-assign 10 query 30 edit 10 select 10\n"
      "churn 0.01\n"
      "design selection\n",
      &sc, &err))
      << err;
  EXPECT_EQ(sc.name, "storm");
  EXPECT_EQ(sc.seed, 7u);
  EXPECT_EQ(sc.sessions, 4);
  EXPECT_DOUBLE_EQ(sc.zipf_skew, 1.5);
  EXPECT_DOUBLE_EQ(sc.rate_rps, 1000.0);
  EXPECT_EQ(sc.requests, 500);
  EXPECT_DOUBLE_EQ(sc.burst_on_s, 0.1);
  EXPECT_DOUBLE_EQ(sc.burst_idle_s, 0.2);
  EXPECT_DOUBLE_EQ(sc.burst_factor, 8.0);
  EXPECT_EQ(sc.w_select, 10);
  EXPECT_DOUBLE_EQ(sc.churn, 0.01);
  EXPECT_EQ(sc.design, "selection");
  // Canonical dump parses back to the same scenario.
  Scenario back;
  ASSERT_TRUE(workload::parse_scenario(workload::scenario_to_string(sc), &back,
                                       &err))
      << err;
  EXPECT_EQ(workload::scenario_to_string(back),
            workload::scenario_to_string(sc));
}

TEST(WorkloadScenarioTest, RejectsBadSpecs) {
  Scenario sc;
  std::string err;
  EXPECT_FALSE(workload::parse_scenario("name storm\n", &sc, &err));
  EXPECT_NE(err.find("header"), std::string::npos);
  EXPECT_FALSE(workload::parse_scenario(
      "# stemcp-scenario v1\nfrobnicate 3\n", &sc, &err));
  EXPECT_NE(err.find("unknown key"), std::string::npos);
  EXPECT_NE(err.find("line 2"), std::string::npos);
  EXPECT_FALSE(workload::parse_scenario(
      "# stemcp-scenario v1\nrate -5\n", &sc, &err));
  EXPECT_FALSE(workload::parse_scenario(
      "# stemcp-scenario v1\nmix assign 10 frob 5\n", &sc, &err));
  EXPECT_NE(err.find("unknown mix verb"), std::string::npos);
  EXPECT_FALSE(workload::parse_scenario(
      "# stemcp-scenario v1\nsessions 2 extra\n", &sc, &err));
  EXPECT_NE(err.find("trailing token"), std::string::npos);
  // select traffic needs the selection design.
  EXPECT_FALSE(workload::parse_scenario(
      "# stemcp-scenario v1\nmix select 10\n", &sc, &err));
  EXPECT_NE(err.find("design selection"), std::string::npos);
}

TEST(WorkloadScenarioTest, BurstPhasesShapeArrivals) {
  Scenario sc;
  sc.rate_rps = 1000;
  sc.requests = 1500;  // ~1.5 cycles: the first cycle is fully covered
  sc.burst_on_s = 0.2;
  sc.burst_idle_s = 0.2;
  sc.burst_factor = 4.0;
  const std::vector<TraceRecord> records = workload::synthesize(sc);
  // Count traffic arrivals in the on-window vs the idle window of the first
  // cycle: the burst must carry ~4x the idle rate (~800 vs ~200 here).
  std::size_t on = 0, idle = 0;
  for (const TraceRecord& rec : records) {
    if (rec.offset_ns == 0) continue;  // prologue
    const double t = static_cast<double>(rec.offset_ns) / 1e9;
    if (t < 0.2) {
      ++on;
    } else if (t < 0.4) {
      ++idle;
    }
  }
  ASSERT_GT(idle, 0u);
  EXPECT_GT(on, idle * 3) << "on=" << on << " idle=" << idle;
}

TEST(WorkloadScenarioTest, ZipfSkewConcentratesTraffic) {
  Scenario sc;
  sc.sessions = 8;
  sc.zipf_skew = 1.0;
  sc.requests = 2000;
  const std::vector<TraceRecord> records = workload::synthesize(sc);
  std::size_t w0 = 0, w7 = 0;
  for (const TraceRecord& rec : records) {
    if (rec.offset_ns == 0) continue;
    if (rec.request.session == "w0") ++w0;
    if (rec.request.session == "w7") ++w7;
  }
  // Session 0 draws weight 1 vs session 7's 1/8.
  EXPECT_GT(w0, w7 * 3) << "w0=" << w0 << " w7=" << w7;
}

// The scenarios committed under examples/traces/ must stay parseable and
// synthesizable — bench_workload_replay and the tier-1 bench gate load them.
TEST(WorkloadScenarioTest, CommittedScenariosParseAndSynthesize) {
  const char* names[] = {"mixed_storm", "select_mix"};
  for (const char* name : names) {
    const std::string path = std::string(STEMCP_SOURCE_DIR) +
                             "/examples/traces/" + name + ".scenario";
    Scenario sc;
    std::string err;
    ASSERT_TRUE(workload::load_scenario_file(path, &sc, &err))
        << path << ": " << err;
    EXPECT_EQ(sc.name, name);
    const std::vector<TraceRecord> records = workload::synthesize(sc);
    EXPECT_GE(records.size(), static_cast<std::size_t>(sc.requests));
  }
}

TEST(WorkloadScenarioTest, ChurnEmitsLifecycleRecords) {
  Scenario sc;
  sc.requests = 1000;
  sc.churn = 0.05;
  const std::vector<TraceRecord> records = workload::synthesize(sc);
  std::size_t closes = 0;
  for (const TraceRecord& rec : records) {
    if (rec.request.type == service::RequestType::kClose) ++closes;
  }
  EXPECT_GT(closes, 10u);
}

}  // namespace
