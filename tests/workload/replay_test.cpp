// Replay + recorder tests (ISSUE 10).  The headline acceptance test lives
// here: record a live mixed-traffic run through the DesignService tap,
// replay the recorded trace into a FRESH journaled service, and require the
// final save image of every open session to be byte-identical to the live
// run's — then recover a session from the replay's own journal and require
// the same bytes a third time.  Fixture names carry "WorkloadReplay" so the
// tier-1 TSAN lane picks them up (tools/run_tier1.sh).
#include <gtest/gtest.h>

#include <filesystem>
#include <future>
#include <thread>
#include <vector>

#include "service/design_service.h"
#include "workload/recorder.h"
#include "workload/replay.h"
#include "workload/synth.h"
#include "workload/trace.h"

namespace {

using namespace stemcp;
using service::DesignService;
using service::Request;
using service::RequestType;
using service::Response;
using workload::ReplayOptions;
using workload::ReplayReport;
using workload::Scenario;
using workload::TraceRecorder;
using workload::TraceScan;

std::string fresh_dir(const std::string& name) {
  const std::string path = testing::TempDir() + "stemcp_replay_" + name;
  std::filesystem::remove_all(path);
  std::filesystem::create_directories(path);
  return path;
}

Scenario mixed_scenario() {
  Scenario sc;
  sc.name = "replay_test";
  sc.seed = 11;
  sc.sessions = 4;
  sc.rate_rps = 50000;  // closed-loop ignores offsets; keep the span tiny
  sc.requests = 600;
  sc.churn = 0.01;
  return sc;
}

// THE acceptance test: recorded-trace determinism, proven end to end.
TEST(WorkloadReplayTest, RecordedLiveRunReplaysToByteIdenticalImages) {
  const std::string dir = fresh_dir("oracle");
  const std::string trace_path = dir + "/live.trace";

  // --- Live run: synthetic mixed traffic driven through a real service
  // with the recorder tap armed; its save images are the reference.
  ReplayReport live;
  std::string err;
  auto recorder = TraceRecorder::open(trace_path, &err);
  ASSERT_NE(recorder, nullptr) << err;
  {
    ReplayOptions opts;
    opts.closed_loop = true;
    opts.recorder = recorder.get();
    ASSERT_TRUE(workload::replay_records(workload::synthesize(mixed_scenario()),
                                         opts, &live, &err))
        << err;
  }
  ASSERT_TRUE(recorder->finish(&err)) << err;
  EXPECT_EQ(recorder->stats().drops, 0u);
  EXPECT_EQ(recorder->stats().records,
            static_cast<std::uint64_t>(live.requests));
  ASSERT_FALSE(live.images.empty());

  // --- Replay the recorded trace into a FRESH service, journaled.
  const std::string jroot = dir + "/journals";
  ReplayReport replayed;
  {
    ReplayOptions opts;
    opts.closed_loop = true;
    opts.journal_base = "rb";
    opts.journal_spec = "every-record";
    opts.journal_root = jroot;
    ASSERT_TRUE(workload::replay_file(trace_path, opts, &replayed, &err))
        << err;
  }
  // `requests` counts trace records only — journal injections are tallied
  // separately — so the replay saw exactly the live run's traffic.
  EXPECT_EQ(replayed.requests, live.requests);
  EXPECT_GT(replayed.journals_attached, 0u);

  std::string diff;
  EXPECT_TRUE(workload::verify_images(replayed.images, live.images, &diff))
      << diff;

  // The journals the replay wrote are real: recover one session from them
  // in a third, fresh service and require the same image a third time.
  const std::string session = live.images.begin()->first;
  DesignService rec(DesignService::Config{1, 1, jroot});
  Response r =
      rec.call(Request{RequestType::kRecover, session, "rb_" + session, {}});
  ASSERT_TRUE(r.ok) << r.error;
  Response img = rec.call(Request{RequestType::kSave, session, {}, {}});
  ASSERT_TRUE(img.ok) << img.error;
  EXPECT_EQ(img.text, live.images.at(session));
}

TEST(WorkloadReplayTest, ReplayIsDeterministicAcrossRuns) {
  Scenario sc = mixed_scenario();
  sc.requests = 300;
  const std::vector<workload::TraceRecord> records = workload::synthesize(sc);
  ReplayOptions opts;
  opts.closed_loop = true;
  ReplayReport a, b;
  std::string err;
  ASSERT_TRUE(workload::replay_records(records, opts, &a, &err)) << err;
  ASSERT_TRUE(workload::replay_records(records, opts, &b, &err)) << err;
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.errors, b.errors);
  EXPECT_EQ(a.violations, b.violations);
  std::string diff;
  EXPECT_TRUE(workload::verify_images(a.images, b.images, &diff)) << diff;
}

TEST(WorkloadReplayTest, OpenLoopHonorsRecordedOffsets) {
  Scenario sc;
  sc.sessions = 2;
  sc.rate_rps = 1000;
  sc.requests = 150;  // ~0.15 s span
  const std::vector<workload::TraceRecord> records = workload::synthesize(sc);
  ReplayOptions opts;  // open-loop is the default
  ReplayReport report;
  std::string err;
  ASSERT_TRUE(workload::replay_records(records, opts, &report, &err)) << err;
  EXPECT_GT(report.offered_s, 0.1);
  // sleep_until pins the last submission at t0 + span, so wall time can
  // only exceed the trace span (no upper-bound assert: CI machines stall).
  EXPECT_GE(report.wall_s, report.offered_s * 0.95);

  ReplayOptions fast = opts;
  fast.speed = 10.0;
  ReplayReport quick;
  ASSERT_TRUE(workload::replay_records(records, fast, &quick, &err)) << err;
  EXPECT_GE(quick.wall_s, quick.offered_s * 0.95);
  EXPECT_LT(quick.offered_s, report.offered_s / 5.0);
}

TEST(WorkloadReplayTest, ReportTalliesOutcomesAndTelemetry) {
  ReplayReport report;
  std::string err;
  ReplayOptions opts;
  opts.closed_loop = true;
  ASSERT_TRUE(workload::replay_records(workload::synthesize(mixed_scenario()),
                                       opts, &report, &err))
      << err;
  EXPECT_EQ(report.requests, report.ok + report.errors);
  EXPECT_EQ(report.errors, 0u);
  const core::Histogram* total =
      report.telemetry.find_histogram("svc.lat.total_ns");
  ASSERT_NE(total, nullptr);
  // >= because the image-collection saves run through the same service
  // and land in the fold alongside the trace's own requests.
  EXPECT_GE(total->count(), static_cast<std::uint64_t>(report.requests));
  const std::string rendered = report.render();
  EXPECT_NE(rendered.find("request(s)"), std::string::npos);
  EXPECT_NE(rendered.find("total"), std::string::npos);

  // An empty trace is a loud error, not a zero-filled report.
  EXPECT_FALSE(workload::replay_records({}, opts, &report, &err));
}

TEST(WorkloadReplayTest, FailedRequestsCountAsErrorsNotCrashes) {
  // Traffic at a session that was never opened: every request fails, the
  // replay still completes and the image set is empty.
  std::vector<workload::TraceRecord> records;
  for (int i = 0; i < 5; ++i) {
    workload::TraceRecord rec;
    rec.offset_ns = static_cast<std::uint64_t>(i);
    rec.request =
        Request{RequestType::kQuery, "ghost", "PIPE.delay(in->out)", {}};
    records.push_back(rec);
  }
  ReplayOptions opts;
  opts.closed_loop = true;
  ReplayReport report;
  std::string err;
  ASSERT_TRUE(workload::replay_records(records, opts, &report, &err)) << err;
  EXPECT_EQ(report.errors, 5u);
  EXPECT_TRUE(report.images.empty());
}

// The tap under fire: many threads submitting concurrently while the
// recorder is armed must yield a trace that scans clean (monotone offsets,
// valid CRCs) with zero drops — one valid serialization of the traffic.
TEST(WorkloadReplayConcurrencyTest, ConcurrentSubmittersYieldParseableTrace) {
  const std::string dir = fresh_dir("tap_mt");
  const std::string trace_path = dir + "/mt.trace";
  std::string err;
  auto recorder = TraceRecorder::open(trace_path, &err);
  ASSERT_NE(recorder, nullptr) << err;

  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::uint64_t submitted = 0;
  {
    DesignService svc(DesignService::Config{2, 2, {}});
    svc.set_request_tap(recorder->tap());
    const std::string design = workload::pipeline_design();
    for (int t = 0; t < kThreads; ++t) {
      const std::string s = "mt" + std::to_string(t);
      ASSERT_TRUE(svc.call(Request{RequestType::kOpen, s, {}, {}}).ok);
      ASSERT_TRUE(svc.call(Request{RequestType::kLoad, s, design, {}}).ok);
    }
    submitted = kThreads * 2;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&svc, t] {
        const std::string s = "mt" + std::to_string(t);
        for (int i = 0; i < kPerThread; ++i) {
          Request r{RequestType::kAssign, s, {}, {}};
          r.assignments.push_back(
              {"PIPE/s0.delay(in->out)", 1e-9 + 1e-12 * i});
          svc.submit(std::move(r)).get();
        }
      });
    }
    for (std::thread& th : threads) th.join();
    submitted += kThreads * kPerThread;
    svc.set_request_tap({});
  }
  ASSERT_TRUE(recorder->finish(&err)) << err;
  EXPECT_EQ(recorder->stats().drops, 0u);
  EXPECT_EQ(recorder->stats().records, submitted);

  const TraceScan scan = workload::scan_trace_file(trace_path);
  ASSERT_TRUE(scan.error.empty()) << scan.error;
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.records.size(), submitted);
}

}  // namespace
