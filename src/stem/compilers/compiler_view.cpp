#include "stem/compilers/compiler_view.h"

#include <algorithm>

namespace stemcp::env {

CompilerView::CompilerView(CellInstance& inst) : inst_(&inst) {
  inst_->cls().add_dependent(*this);
}

CompilerView::~CompilerView() { inst_->cls().remove_dependent(*this); }

void CompilerView::update(const std::string&) {
  // Any model change erases the derived data; recalculation is delayed
  // until the compiler next asks.
  valid_ = false;
}

void CompilerView::recalculate() {
  const core::Value& iv = inst_->bounding_box().value();
  if (iv.is_rect()) {
    bbox_ = iv.as_rect();
  } else {
    const core::Value& cb = inst_->cls().bounding_box().demand();
    bbox_ = cb.is_rect() ? inst_->transform().apply(cb.as_rect())
                         : core::Rect{};
  }
  for (auto& side : sides_) side.clear();
  for (const IoPin& pin : inst_->placed_pins()) {
    sides_[static_cast<std::size_t>(pin.side)].push_back(pin);
  }
  for (auto& side : sides_) {
    std::sort(side.begin(), side.end(), [](const IoPin& a, const IoPin& b) {
      if (a.position.x != b.position.x) return a.position.x < b.position.x;
      return a.position.y < b.position.y;
    });
  }
  valid_ = true;
}

core::Rect CompilerView::bounding_box() {
  if (!valid_) recalculate();
  return bbox_;
}

const std::vector<IoPin>& CompilerView::pins_on(Side s) {
  if (!valid_) recalculate();
  return sides_[static_cast<std::size_t>(s)];
}

}  // namespace stemcp::env
