// Parameterized cell generation: the macro-cell template pattern of thesis
// ch. 8 ("generic cells can serve as a vehicle for specifying macro-cell
// templates that generate custom realizations") combined with the compiled
// cells of §6.4.1 — widths become realizations generated on demand and
// cached per width.
#pragma once

#include <map>
#include <string>

#include "stem/compilers/compilers.h"

namespace stemcp::env {

class ParameterizedCellGenerator {
 public:
  /// Realizations are named `<base>x<width>` and compiled as a vector of
  /// `tile` slices.  When `generic_parent` is given, generated cells become
  /// its subclasses, so module selection can search over generated widths.
  ParameterizedCellGenerator(Library& lib, std::string base_name,
                             CellClass& tile,
                             CellClass* generic_parent = nullptr)
      : lib_(&lib), base_(std::move(base_name)), tile_(&tile),
        parent_(generic_parent) {}

  /// Get-or-generate the realization for a width.
  CellClass& realize(int width);

  bool is_cached(int width) const { return cache_.count(width) != 0; }
  std::size_t cached_count() const { return cache_.size(); }

 private:
  Library* lib_;
  std::string base_;
  CellClass* tile_;
  CellClass* parent_;
  std::map<int, CellClass*> cache_;
};

}  // namespace stemcp::env
