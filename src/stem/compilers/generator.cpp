#include "stem/compilers/generator.h"

#include <stdexcept>

#include "stem/library.h"

namespace stemcp::env {

CellClass& ParameterizedCellGenerator::realize(int width) {
  if (width < 1) {
    throw std::invalid_argument("ParameterizedCellGenerator: width must be "
                                "positive");
  }
  const auto it = cache_.find(width);
  if (it != cache_.end()) return *it->second;

  const std::string name = base_ + "x" + std::to_string(width);
  CellClass& cell = lib_->define_cell(name, parent_);
  VectorCompiler compiler(*tile_, width);
  const CompileResult result = compiler.compile(cell);
  if (result.status.is_violation()) {
    // The generated structure violated its own typing constraints: surface
    // loudly — a broken template should not be silently cached.
    throw std::logic_error("ParameterizedCellGenerator: compiling " + name +
                           " reported constraint violations");
  }
  cache_.emplace(width, &cell);
  return cell;
}

}  // namespace stemcp::env
