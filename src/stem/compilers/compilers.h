// Tile-based module compilers (thesis §6.4.1, after [Law85]):
// VectorCompiler builds a linear array of subcells, WordCompiler adds
// special end-cells, MatrixCompiler builds a two-dimensional array, and
// GraphCompiler lets the caller describe arbitrary placements with
// repetition and withdrawn (non-connecting) pins (thesis Fig 6.2).
//
// All butting io-pins establish connections between their respective
// signals; butting is computed through CompilerViews of the placed
// subcells.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "stem/cell.h"
#include "stem/compilers/compiler_view.h"
#include "stem/net.h"

namespace stemcp::env {

/// Outcome of a compilation: how much structure was generated and whether
/// any typing constraint fired while wiring it up.
struct CompileResult {
  core::Status status = core::Status::ok();
  std::size_t instances = 0;
  std::size_t nets = 0;
  std::size_t connections = 0;
};

class ModuleCompiler {
 public:
  virtual ~ModuleCompiler() = default;

  /// Generate subcells and nets inside `target`.
  virtual CompileResult compile(CellClass& target) = 0;

 protected:
  /// Connect every pair of coincident pins on opposite sides, honouring the
  /// withdrawn-pin set; nets are created and merged as needed.
  CompileResult butt_pins(
      CellClass& target, const std::vector<CellInstance*>& placed,
      const std::set<std::pair<std::string, std::string>>& withdrawn = {});
};

/// A linear array of `count` tiles, abutting along `direction`.
class VectorCompiler : public ModuleCompiler {
 public:
  VectorCompiler(CellClass& tile, int count, Side direction = Side::kRight)
      : tile_(&tile), count_(count), direction_(direction) {}

  CompileResult compile(CellClass& target) override;

 private:
  CellClass* tile_;
  int count_;
  Side direction_;
};

/// A vector of tiles with special begin/end cells (a "word").
class WordCompiler : public ModuleCompiler {
 public:
  WordCompiler(CellClass& begin, CellClass& tile, int count, CellClass& end)
      : begin_(&begin), tile_(&tile), count_(count), end_(&end) {}

  CompileResult compile(CellClass& target) override;

 private:
  CellClass* begin_;
  CellClass* tile_;
  int count_;
  CellClass* end_;
};

/// A rows x cols array of tiles, butting both horizontally and vertically.
class MatrixCompiler : public ModuleCompiler {
 public:
  MatrixCompiler(CellClass& tile, int rows, int cols)
      : tile_(&tile), rows_(rows), cols_(cols) {}

  CompileResult compile(CellClass& target) override;

 private:
  CellClass* tile_;
  int rows_;
  int cols_;
};

/// Graphically-specified module builder: explicit nodes with optional
/// repetition, plus withdrawn pins that refuse to connect (thesis Fig 6.2's
/// GraphCompiler).
class GraphCompiler : public ModuleCompiler {
 public:
  struct Node {
    std::string name;
    CellClass* tile = nullptr;
    core::Transform placement;
    int repeat = 1;             ///< "repeat N times" along the direction
    Side direction = Side::kRight;
  };

  GraphCompiler& add_node(std::string name, CellClass& tile,
                          core::Transform placement, int repeat = 1,
                          Side direction = Side::kRight);
  /// Withdraw a pin from butting: (instance-name, signal).  Repeated nodes
  /// use "name.N" instance names.
  GraphCompiler& disallow(std::string instance_name, std::string signal);
  /// Map a generated instance pin onto a target io-signal: after
  /// compilation, the named signal's net is exposed as `io_name`.
  GraphCompiler& expose(std::string instance_name, std::string signal,
                        std::string io_name);

  CompileResult compile(CellClass& target) override;

 private:
  std::vector<Node> nodes_;
  std::set<std::pair<std::string, std::string>> withdrawn_;
  std::vector<std::tuple<std::string, std::string, std::string>> exposures_;
};

}  // namespace stemcp::env
