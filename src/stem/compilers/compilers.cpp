#include "stem/compilers/compilers.h"

#include <map>
#include <stdexcept>

namespace stemcp::env {

using core::Coord;
using core::Point;
using core::Rect;
using core::Status;
using core::Transform;

namespace {

/// Placement step between repeated tiles along a side.
Point step_for(const Rect& extent, Side direction) {
  switch (direction) {
    case Side::kRight: return {extent.width(), 0};
    case Side::kLeft: return {-extent.width(), 0};
    case Side::kTop: return {0, extent.height()};
    case Side::kBottom: return {0, -extent.height()};
  }
  return {0, 0};
}

Rect required_bbox(CellClass& tile) {
  const core::Value& v = tile.bounding_box().demand();
  if (!v.is_rect()) {
    throw std::logic_error("module compiler: tile '" + tile.name() +
                           "' has no bounding box");
  }
  return v.as_rect();
}

/// Move every connection of `absorb` onto `keep`, then delete `absorb`.
Status merge_nets(CellClass& target, Net& keep, Net& absorb,
                  CompileResult& result) {
  Status worst = Status::ok();
  const auto conns = absorb.connections();
  for (const NetConnection& c : conns) {
    if (c.instance != nullptr) {
      absorb.disconnect(*c.instance, c.signal);
      if (keep.connect(*c.instance, c.signal).is_violation()) {
        worst = Status::violation();
      }
      ++result.connections;
    } else {
      absorb.disconnect_io(c.signal);
      if (keep.connect_io(c.signal).is_violation()) {
        worst = Status::violation();
      }
      ++result.connections;
    }
  }
  target.remove_net(absorb);
  --result.nets;
  return worst;
}

}  // namespace

CompileResult ModuleCompiler::butt_pins(
    CellClass& target, const std::vector<CellInstance*>& placed,
    const std::set<std::pair<std::string, std::string>>& withdrawn) {
  CompileResult result;
  result.instances = placed.size();

  // Group placed pins by parent-cell coordinates; coincident pins of
  // different instances are electrically touching.
  struct Member {
    CellInstance* inst;
    IoPin pin;
  };
  std::map<Point, std::vector<Member>> groups;
  for (CellInstance* inst : placed) {
    CompilerView view(*inst);
    for (const Side s :
         {Side::kLeft, Side::kBottom, Side::kRight, Side::kTop}) {
      for (const IoPin& pin : view.pins_on(s)) {
        if (withdrawn.count({inst->name(), pin.signal}) != 0) {
          continue;  // withdrawn from the cell boundary (thesis §6.4.1)
        }
        groups[pin.position].push_back({inst, pin});
      }
    }
  }

  int auto_net = 0;
  for (auto& [pos, members] : groups) {
    bool multiple_instances = false;
    for (const Member& m : members) {
      if (m.inst != members.front().inst) multiple_instances = true;
    }
    if (!multiple_instances) continue;

    // Collect any nets the members already belong to; merge extras.
    Net* net = nullptr;
    for (const Member& m : members) {
      Net* existing = m.inst->net_for(m.pin.signal);
      if (existing == nullptr) continue;
      if (net == nullptr) {
        net = existing;
      } else if (existing != net) {
        if (merge_nets(target, *net, *existing, result).is_violation()) {
          result.status = Status::violation();
        }
      }
    }
    if (net == nullptr) {
      net = &target.add_net("auto" + std::to_string(auto_net++));
      ++result.nets;
    }
    for (const Member& m : members) {
      if (m.inst->net_for(m.pin.signal) == net) continue;
      if (net->connect(*m.inst, m.pin.signal).is_violation()) {
        result.status = Status::violation();
      }
      ++result.connections;
    }
  }
  return result;
}

// ---- VectorCompiler ------------------------------------------------------------

CompileResult VectorCompiler::compile(CellClass& target) {
  const Rect extent = required_bbox(*tile_);
  const Point step = step_for(extent, direction_);
  std::vector<CellInstance*> placed;
  placed.reserve(static_cast<std::size_t>(count_));
  for (int i = 0; i < count_; ++i) {
    const Point offset{step.x * i, step.y * i};
    placed.push_back(&target.add_subcell(*tile_, "t" + std::to_string(i),
                                         Transform::translate(offset)));
  }
  return butt_pins(target, placed);
}

// ---- WordCompiler ---------------------------------------------------------------

CompileResult WordCompiler::compile(CellClass& target) {
  std::vector<CellInstance*> placed;
  Coord x = 0;
  const Rect bb = required_bbox(*begin_);
  placed.push_back(
      &target.add_subcell(*begin_, "begin", Transform::translate({x, 0})));
  x += bb.width();
  const Rect tb = required_bbox(*tile_);
  for (int i = 0; i < count_; ++i) {
    placed.push_back(&target.add_subcell(*tile_, "t" + std::to_string(i),
                                         Transform::translate({x, 0})));
    x += tb.width();
  }
  placed.push_back(
      &target.add_subcell(*end_, "end", Transform::translate({x, 0})));
  return butt_pins(target, placed);
}

// ---- MatrixCompiler --------------------------------------------------------------

CompileResult MatrixCompiler::compile(CellClass& target) {
  const Rect extent = required_bbox(*tile_);
  std::vector<CellInstance*> placed;
  placed.reserve(static_cast<std::size_t>(rows_) * cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      const Point offset{extent.width() * c, extent.height() * r};
      placed.push_back(&target.add_subcell(
          *tile_, "t" + std::to_string(r) + "_" + std::to_string(c),
          Transform::translate(offset)));
    }
  }
  return butt_pins(target, placed);
}

// ---- GraphCompiler ----------------------------------------------------------------

GraphCompiler& GraphCompiler::add_node(std::string name, CellClass& tile,
                                       Transform placement, int repeat,
                                       Side direction) {
  nodes_.push_back(
      {std::move(name), &tile, placement, repeat, direction});
  return *this;
}

GraphCompiler& GraphCompiler::disallow(std::string instance_name,
                                       std::string signal) {
  withdrawn_.insert({std::move(instance_name), std::move(signal)});
  return *this;
}

GraphCompiler& GraphCompiler::expose(std::string instance_name,
                                     std::string signal, std::string io_name) {
  exposures_.emplace_back(std::move(instance_name), std::move(signal),
                          std::move(io_name));
  return *this;
}

CompileResult GraphCompiler::compile(CellClass& target) {
  std::vector<CellInstance*> placed;
  for (const Node& node : nodes_) {
    const Rect extent = required_bbox(*node.tile);
    const Point step = step_for(extent, node.direction);
    for (int i = 0; i < node.repeat; ++i) {
      const std::string name =
          node.repeat > 1 ? node.name + "." + std::to_string(i) : node.name;
      const Transform placement =
          node.placement.then(Transform::translate({step.x * i, step.y * i}));
      placed.push_back(&target.add_subcell(*node.tile, name, placement));
    }
  }
  CompileResult result = butt_pins(target, placed, withdrawn_);

  // Expose selected pins as target io-signals.
  for (const auto& [inst_name, signal, io_name] : exposures_) {
    CellInstance* inst = target.find_subcell(inst_name);
    if (inst == nullptr) {
      throw std::out_of_range("GraphCompiler: no generated instance named " +
                              inst_name);
    }
    if (target.find_signal(io_name) == nullptr) {
      target.declare_signal(io_name, inst->cls().signal(signal).direction());
    }
    Net* net = inst->net_for(signal);
    if (net == nullptr) {
      net = &target.add_net("io_" + io_name);
      ++result.nets;
      if (net->connect(*inst, signal).is_violation()) {
        result.status = Status::violation();
      }
      ++result.connections;
    }
    if (net->connect_io(io_name).is_violation()) {
      result.status = Status::violation();
    }
    ++result.connections;
  }
  return result;
}

}  // namespace stemcp::env
