// CompilerView (thesis §6.4.1): the calculated view through which module
// compilers see subcells — only the bounding box and the io-pins, the pins
// organized in four side lists sorted by coordinate to suit the butting
// access pattern.  Cached data are erased whenever the model (the subcell's
// class) changes and recalculated on next access.
#pragma once

#include <array>
#include <vector>

#include "stem/cell.h"

namespace stemcp::env {

class CompilerView : public View {
 public:
  explicit CompilerView(CellInstance& inst);
  ~CompilerView() override;

  CompilerView(const CompilerView&) = delete;
  CompilerView& operator=(const CompilerView&) = delete;

  CellInstance& instance() const { return *inst_; }

  /// Placement bounding box in parent coordinates (instance box if placed,
  /// otherwise the transformed class box).
  core::Rect bounding_box();

  /// Pins on one side, in parent coordinates, sorted by increasing x then y.
  const std::vector<IoPin>& pins_on(Side s);

  bool valid() const { return valid_; }
  void update(const std::string& key) override;

 private:
  void recalculate();

  CellInstance* inst_;
  bool valid_ = false;
  core::Rect bbox_;
  std::array<std::vector<IoPin>, 4> sides_;
};

}  // namespace stemcp::env
