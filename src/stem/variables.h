// Specialized dual variables of the design database (thesis ch. 5 & 7):
// bounding boxes, bit widths, parameters and delays — each a class-side /
// instance-side pair linked as implicit constraints.
#pragma once

#include <optional>
#include <string>

#include "stem/hierarchy.h"

namespace stemcp::env {

class CellClass;
class CellInstance;

// ---- Bounding boxes (thesis §7.2) -------------------------------------------

/// Class-side bounding box: the smallest rectangle containing the cell's
/// internal structure.  Lazily recalculated (`calculateBoundingBox`) and
/// checked against every instance placement.
class ClassBBoxVar : public ClassVar {
 public:
  ClassBBoxVar(core::PropagationContext& ctx, CellClass& owner,
               const std::string& parent_name);

  CellClass& owner() const { return *owner_; }
  bool is_satisfied() const override;

 private:
  CellClass* owner_;
};

/// Instance-side bounding box: the placement area of one cell instance.  A
/// class box change defaults non-user instance boxes to the transformed
/// class box (thesis Fig 7.7); any instance box change procedurally resets
/// the containing cell's class box (thesis Fig 7.8).
class InstanceBBoxVar : public InstanceVar {
 public:
  InstanceBBoxVar(core::PropagationContext& ctx, CellInstance& owner,
                  ClassBBoxVar& dual, const std::string& parent_name);

  CellInstance& owner() const { return *owner_; }

  core::Status immediate_inference_by_changing(core::Variable& changed)
      override;
  bool is_satisfied() const override;
  /// True when this placement can contain the transformed class box.
  bool placement_fits() const;

 protected:
  core::Status after_value_change(const core::Justification& j) override;

 private:
  CellInstance* owner_;
};

// ---- Bit widths (thesis §7.1) -----------------------------------------------

/// Class-side signal bit width; nil for width-parameterized cells.
class ClassBitWidthVar : public ClassVar {
 public:
  using ClassVar::ClassVar;
  bool is_satisfied() const override;
};

/// Instance-side signal bit width; defaults from the class width and must
/// agree with it when both are known.
class InstanceBitWidthVar : public InstanceVar {
 public:
  using InstanceVar::InstanceVar;

  core::Status immediate_inference_by_changing(core::Variable& changed)
      override;
  bool is_satisfied() const override;
};

// ---- Parameters (thesis §5.1.1) ----------------------------------------------

/// Class-side parameter: characterizes the legal range (and holds the
/// default value, which propagates to unset instances).
class ClassParamVar : public ClassVar {
 public:
  using ClassVar::ClassVar;

  void set_range(double lo, double hi) { range_ = {lo, hi}; }
  bool has_range() const { return range_.has_value(); }
  double lo() const { return range_->first; }
  double hi() const { return range_->second; }
  bool in_range(const core::Value& v) const;

  bool is_satisfied() const override;

 private:
  std::optional<std::pair<double, double>> range_;
};

/// Instance-side parameter: the actual value for one use of the cell;
/// checked against the class range, defaulted from the class value.
class InstanceParamVar : public InstanceVar {
 public:
  using InstanceVar::InstanceVar;

  core::Status immediate_inference_by_changing(core::Variable& changed)
      override;
  bool is_satisfied() const override;
};

// ---- Delays (thesis §7.3) -----------------------------------------------------

/// Class-side delay between two io-signals: the nominal characteristic of
/// the cell's internal structure.
class ClassDelayVar : public ClassVar {
 public:
  ClassDelayVar(core::PropagationContext& ctx, CellClass& owner,
                std::string from, std::string to,
                const std::string& parent_name);

  CellClass& owner() const { return *owner_; }
  const std::string& from() const { return from_; }
  const std::string& to() const { return to_; }

 private:
  CellClass* owner_;
  std::string from_;
  std::string to_;
};

/// Instance-side delay: the class delay adjusted to the instance's context
/// — the output resistance driving its input net and the total load
/// capacitance on its output net (thesis §7.3).  Instance delays never
/// propagate back to the class delay.
class InstanceDelayVar : public InstanceVar {
 public:
  InstanceDelayVar(core::PropagationContext& ctx, CellInstance& owner,
                   ClassDelayVar& dual, const std::string& parent_name);

  CellInstance& owner() const { return *owner_; }
  ClassDelayVar& class_delay() const;

  core::Status immediate_inference_by_changing(core::Variable& changed)
      override;

  /// RC adjustment added to the class delay for this instance's context.
  double rc_adjustment() const;

 private:
  CellInstance* owner_;
};

}  // namespace stemcp::env
