#include "stem/net.h"

#include <algorithm>
#include <stdexcept>

#include "stem/cell.h"
#include "stem/library.h"

namespace stemcp::env {

using core::Status;

Net::Net(CellClass& parent, std::string name)
    : parent_(&parent), name_(std::move(name)) {
  auto& ctx = parent_->context();
  const std::string path = qualified_name();
  bit_width_ = std::make_unique<StemVariable>(ctx, path, "bitWidth");
  data_type_ = std::make_unique<SignalTypeVar>(ctx, path, "dataType");
  electrical_type_ =
      std::make_unique<SignalTypeVar>(ctx, path, "electricalType");
  width_eq_ = &ctx.make<core::EqualityConstraint>();
  width_eq_->basic_add_argument(*bit_width_);
  data_compat_ = &ctx.make<CompatibleConstraint>();
  data_compat_->set_net_variable(*data_type_);
  elec_compat_ = &ctx.make<CompatibleConstraint>();
  elec_compat_->set_net_variable(*electrical_type_);
}

Net::~Net() {
  auto& ctx = parent_->context();
  ctx.destroy_constraint(*width_eq_);
  ctx.destroy_constraint(*data_compat_);
  ctx.destroy_constraint(*elec_compat_);
}

std::string Net::qualified_name() const {
  return parent_->name() + ":" + name_;
}

Status Net::connect(CellInstance& inst, const std::string& signal) {
  if (inst.parent_cell() != parent_) {
    throw std::logic_error("net " + qualified_name() +
                           ": instance belongs to a different cell");
  }
  IoSignal* sig = inst.cls().find_signal(signal);
  if (sig == nullptr) {
    throw std::out_of_range("net " + qualified_name() + ": no signal '" +
                            signal + "' on class " + inst.cls().name());
  }
  if (connects(inst, signal)) return Status::ok();
  connections_.push_back({&inst, signal});
  inst.note_connection(signal, this);

  // Instantiate the implied signal typing constraints (thesis §7.1):
  // equality over bit widths, compatibility over data / electrical types.
  Status worst = Status::ok();
  if (width_eq_->add_argument(inst.bit_width(signal)).is_violation()) {
    worst = Status::violation();
  }
  if (data_compat_->add_argument(sig->data_type()).is_violation()) {
    worst = Status::violation();
  }
  if (elec_compat_->add_argument(sig->electrical_type()).is_violation()) {
    worst = Status::violation();
  }
  parent_->structure_edited();
  return worst;
}

Status Net::connect_io(const std::string& io_signal) {
  IoSignal* sig = parent_->find_signal(io_signal);
  if (sig == nullptr) {
    throw std::out_of_range("net " + qualified_name() + ": no io-signal '" +
                            io_signal + "' on " + parent_->name());
  }
  const NetConnection conn{nullptr, io_signal};
  if (std::find(connections_.begin(), connections_.end(), conn) !=
      connections_.end()) {
    return Status::ok();
  }
  connections_.push_back(conn);
  sig->internal_net_ = this;

  Status worst = Status::ok();
  if (width_eq_->add_argument(sig->bit_width()).is_violation()) {
    worst = Status::violation();
  }
  if (data_compat_->add_argument(sig->data_type()).is_violation()) {
    worst = Status::violation();
  }
  if (elec_compat_->add_argument(sig->electrical_type()).is_violation()) {
    worst = Status::violation();
  }
  parent_->structure_edited();
  return worst;
}

void Net::disconnect(CellInstance& inst, const std::string& signal) {
  const NetConnection conn{&inst, signal};
  auto it = std::find(connections_.begin(), connections_.end(), conn);
  if (it == connections_.end()) return;
  connections_.erase(it);
  inst.note_connection(signal, nullptr);

  width_eq_->remove_argument(inst.bit_width(signal));
  // Class-level type variables are shared by all instances of the class:
  // only remove them when no remaining connection resolves to the same
  // class signal.
  if (IoSignal* sig = inst.cls().find_signal(signal)) {
    if (!class_signal_still_referenced(*sig)) {
      data_compat_->remove_argument(sig->data_type());
      elec_compat_->remove_argument(sig->electrical_type());
    }
  }
  parent_->structure_edited();
}

void Net::disconnect_io(const std::string& io_signal) {
  const NetConnection conn{nullptr, io_signal};
  auto it = std::find(connections_.begin(), connections_.end(), conn);
  if (it == connections_.end()) return;
  connections_.erase(it);
  IoSignal* sig = parent_->find_signal(io_signal);
  if (sig != nullptr) {
    if (sig->internal_net_ == this) sig->internal_net_ = nullptr;
    width_eq_->remove_argument(sig->bit_width());
    if (!class_signal_still_referenced(*sig)) {
      data_compat_->remove_argument(sig->data_type());
      elec_compat_->remove_argument(sig->electrical_type());
    }
  }
  parent_->structure_edited();
}

bool Net::connects(const CellInstance& inst, const std::string& signal) const {
  const NetConnection conn{const_cast<CellInstance*>(&inst), signal};
  return std::find(connections_.begin(), connections_.end(), conn) !=
         connections_.end();
}

const IoSignal* Net::resolve(const NetConnection& c) const {
  if (c.instance != nullptr) return c.instance->cls().find_signal(c.signal);
  return parent_->find_signal(c.signal);
}

bool Net::class_signal_still_referenced(const IoSignal& sig) const {
  for (const NetConnection& c : connections_) {
    if (resolve(c) == &sig) return true;
  }
  return false;
}

double Net::wire_capacitance() const {
  if (cap_per_unit_ == 0.0) return 0.0;
  // Half-perimeter of the bounding box of every placed pin on the net.
  bool any = false;
  core::Rect box;
  for (const NetConnection& c : connections_) {
    if (c.instance == nullptr) continue;
    for (const IoPin& pin : c.instance->placed_pins()) {
      if (pin.signal != c.signal) continue;
      const core::Rect point{pin.position.x, pin.position.y, pin.position.x,
                             pin.position.y};
      box = any ? box.union_with(point) : point;
      any = true;
    }
  }
  if (!any) return 0.0;
  return cap_per_unit_ * static_cast<double>(box.width() + box.height());
}

double Net::total_load_capacitance(const CellInstance* exclude_inst,
                                   const std::string& exclude_signal) const {
  double total = wire_capacitance();
  for (const NetConnection& c : connections_) {
    if (c.instance == exclude_inst && c.signal == exclude_signal) continue;
    const IoSignal* sig = resolve(c);
    if (sig == nullptr) continue;
    if (c.instance != nullptr) {
      // Subcell inputs (and bidirectionals) load the net.
      if (!sig->is_output()) total += sig->load_capacitance();
    } else {
      // The parent's output io carries the external load estimate.
      if (sig->is_output()) total += sig->load_capacitance();
    }
  }
  return total;
}

double Net::driver_resistance() const {
  for (const NetConnection& c : connections_) {
    const IoSignal* sig = resolve(c);
    if (sig == nullptr) continue;
    if (c.instance != nullptr && sig->is_output()) {
      return sig->output_resistance();
    }
    if (c.instance == nullptr && sig->is_input()) {
      // The parent's input io drives internal nets with its source
      // resistance.
      return sig->output_resistance();
    }
  }
  return 0.0;
}

}  // namespace stemcp::env
