// Model/View consistency maintenance (thesis ch. 3 & 6).
//
// Views are calculated representations of a model.  Whenever the model
// changes it broadcasts `changed` (or `changed:key` for selective erasure)
// to its dependents, which respond by erasing their derived data;
// recalculation is delayed until the data are next needed.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

namespace stemcp::env {

/// Broadcast keys used by the design database.
inline constexpr const char* kChangedAny = "";
inline constexpr const char* kChangedLayout = "layout";
inline constexpr const char* kChangedStructure = "structure";
inline constexpr const char* kChangedInterface = "interface";

class View {
 public:
  virtual ~View() = default;
  /// React to a model change by erasing derived data.  `key` is empty for
  /// an unqualified `changed`, or one of the kChanged* keys for selective
  /// erasure ("#changed:key", thesis §6.5.2).
  virtual void update(const std::string& key) = 0;
};

/// Mixin giving a design object a dependents list and change broadcast.
class Model {
 public:
  virtual ~Model() = default;

  void add_dependent(View& v) {
    if (std::find(dependents_.begin(), dependents_.end(), &v) ==
        dependents_.end()) {
      dependents_.push_back(&v);
    }
  }
  void remove_dependent(View& v) {
    dependents_.erase(std::remove(dependents_.begin(), dependents_.end(), &v),
                      dependents_.end());
  }
  const std::vector<View*>& dependents() const { return dependents_; }

  /// Broadcast a change to all dependent views.
  void changed(const std::string& key = kChangedAny) {
    // Copy: views may deregister while updating.
    const auto list = dependents_;
    for (View* v : list) v->update(key);
    on_changed(key);
  }

 protected:
  /// Hook for subclasses (e.g. cells propagate changes up the design
  /// hierarchy, thesis §6.5.2).
  virtual void on_changed(const std::string& key) { (void)key; }

 private:
  std::vector<View*> dependents_;
};

}  // namespace stemcp::env
