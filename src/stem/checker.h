// Batch design checker (thesis ch. 7).
//
// Incremental checking happens automatically during propagation; this
// checker is the batch-mode audit used to (a) verify a design wholesale
// after propagation was disabled, and (b) serve as the baseline against
// which the incremental approach is measured.
#pragma once

#include <string>
#include <vector>

#include "stem/cell.h"

namespace stemcp::env {

struct CheckFinding {
  std::string constraint;  ///< description of the unsatisfied constraint
  bool satisfied = true;
};

struct CheckReport {
  std::vector<CheckFinding> findings;
  std::size_t constraints_checked = 0;

  std::size_t violation_count() const {
    std::size_t n = 0;
    for (const auto& f : findings) {
      if (!f.satisfied) ++n;
    }
    return n;
  }
  bool clean() const { return violation_count() == 0; }
  std::string to_string() const;
};

class DesignChecker {
 public:
  /// Audit every constraint reachable from a cell's variables: signal
  /// typing, bounding boxes, parameters and delays, including the nets' and
  /// subcells' participation.
  static CheckReport check(CellClass& cell);
  /// Audit every cell in a library.
  static CheckReport check(Library& lib);
};

}  // namespace stemcp::env
