#include "stem/io.h"

#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "stem/cell.h"
#include "stem/net.h"

namespace stemcp::env {

namespace {

const char* device_kind_name(DeviceInfo::Kind k) {
  switch (k) {
    case DeviceInfo::Kind::kNone: return "none";
    case DeviceInfo::Kind::kNmos: return "nmos";
    case DeviceInfo::Kind::kPmos: return "pmos";
    case DeviceInfo::Kind::kResistor: return "resistor";
    case DeviceInfo::Kind::kCapacitor: return "capacitor";
    case DeviceInfo::Kind::kVoltageSource: return "vsource";
  }
  return "none";
}

DeviceInfo::Kind device_kind_from(const std::string& s) {
  if (s == "nmos") return DeviceInfo::Kind::kNmos;
  if (s == "pmos") return DeviceInfo::Kind::kPmos;
  if (s == "resistor") return DeviceInfo::Kind::kResistor;
  if (s == "capacitor") return DeviceInfo::Kind::kCapacitor;
  if (s == "vsource") return DeviceInfo::Kind::kVoltageSource;
  return DeviceInfo::Kind::kNone;
}

const char* direction_name(SignalDirection d) {
  switch (d) {
    case SignalDirection::kInput: return "input";
    case SignalDirection::kOutput: return "output";
    case SignalDirection::kInOut: return "inout";
  }
  return "inout";
}

SignalDirection direction_from(const std::string& s) {
  if (s == "input") return SignalDirection::kInput;
  if (s == "output") return SignalDirection::kOutput;
  return SignalDirection::kInOut;
}

const char* side_name(Side s) { return to_string(s); }

Side side_from(const std::string& s) {
  if (s == "left") return Side::kLeft;
  if (s == "right") return Side::kRight;
  if (s == "top") return Side::kTop;
  return Side::kBottom;
}

std::string orientation_name(core::Orientation o) {
  return core::to_string(o);
}

core::Orientation orientation_from(const std::string& s) {
  for (int i = 0; i < 8; ++i) {
    const auto o = static_cast<core::Orientation>(i);
    if (s == core::to_string(o)) return o;
  }
  throw std::runtime_error("unknown orientation: " + s);
}

/// Bound specifications attached to a variable, serialized one per line.
void write_specs(const core::Variable& v, const std::string& prefix,
                 std::ostream& out) {
  for (const core::Propagatable* p : v.constraints()) {
    const auto* bound = dynamic_cast<const core::BoundConstraint*>(p);
    if (bound == nullptr || !bound->bound().is_number()) continue;
    out << prefix << " " << core::to_string(bound->relation()) << ' '
        << std::setprecision(17) << bound->bound().as_number() << '\n';
  }
}

void write_cell(const CellClass& cell, std::ostream& out) {
  out << "cell " << cell.name();
  if (cell.superclass() != nullptr) out << " super " << cell.superclass()->name();
  if (cell.is_generic()) out << " generic";
  out << '\n';

  if (cell.is_device()) {
    const DeviceInfo& d = cell.device();
    out << "  device " << device_kind_name(d.kind) << ' '
        << std::setprecision(17) << d.value << ' ' << d.ron << '\n';
  }

  const core::Value& bb = cell.bounding_box().value();
  if (bb.is_rect() && cell.bounding_box().last_set_by().is_user()) {
    const core::Rect& r = bb.as_rect();
    out << "  bbox " << r.x0 << ' ' << r.y0 << ' ' << r.x1 << ' ' << r.y1
        << '\n';
  }

  for (const auto& sig : cell.signals()) {
    out << "  signal " << sig->name() << ' '
        << direction_name(sig->direction());
    if (sig->bit_width().value().is_int() &&
        sig->bit_width().last_set_by().is_user()) {
      out << " width " << sig->bit_width().value().as_int();
    }
    if (const SignalType* t = type_of(sig->data_type().value())) {
      out << " data " << t->name();
    }
    if (const SignalType* t = type_of(sig->electrical_type().value())) {
      out << " elec " << t->name();
    }
    if (sig->load_capacitance() != 0.0) {
      out << " load " << std::setprecision(17) << sig->load_capacitance();
    }
    if (sig->output_resistance() != 0.0) {
      out << " rout " << std::setprecision(17) << sig->output_resistance();
    }
    out << '\n';
    for (const IoPin& pin : sig->pins()) {
      out << "    pin " << pin.position.x << ' ' << pin.position.y << ' '
          << side_name(pin.side) << '\n';
    }
  }

  for (const auto& [pname, pvar] : cell.parameters()) {
    out << "  param " << pname;
    if (pvar->has_range()) {
      out << ' ' << std::setprecision(17) << pvar->lo() << ' ' << pvar->hi();
    } else {
      out << " 0 0";
    }
    if (pvar->has_value() && pvar->value().is_number()) {
      out << " default " << std::setprecision(17)
          << pvar->value().as_number();
    }
    out << '\n';
  }

  for (ClassDelayVar* d : cell.delay_variables()) {
    if (&d->owner() != &cell) continue;  // inherited: written with its owner
    out << "  delay " << d->from() << ' ' << d->to();
    if (d->value().is_number() && !d->last_set_by().is_propagated()) {
      out << " value " << std::setprecision(17) << d->value().as_number();
    }
    out << '\n';
    write_specs(*d, "    spec", out);
  }

  for (const auto& sub : cell.subcells()) {
    out << "  subcell " << sub->name() << ' ' << sub->cls().name() << ' '
        << orientation_name(sub->transform().orientation()) << ' '
        << sub->transform().translation().x << ' '
        << sub->transform().translation().y << '\n';
  }

  for (const auto& net : cell.nets()) {
    out << "  net " << net->name() << '\n';
    for (const NetConnection& c : net->connections()) {
      if (c.instance != nullptr) {
        out << "    conn " << c.instance->name() << ' ' << c.signal << '\n';
      } else {
        out << "    io " << c.signal << '\n';
      }
    }
  }

  out << "end\n";
}

struct Parser {
  Library& lib;
  std::istream& in;
  int line_no = 0;
  std::string line_text;
  CellClass* cell = nullptr;
  IoSignal* signal = nullptr;
  ClassDelayVar* delay = nullptr;
  Net* net = nullptr;
  std::vector<std::string> deferred_builds;

  [[noreturn]] void fail(const std::string& msg) const {
    std::string what = "library parse error, line " +
                       std::to_string(line_no) + ": " + msg;
    if (!line_text.empty()) what += " in \"" + line_text + "\"";
    throw std::runtime_error(what);
  }

  void run() {
    std::string line;
    while (std::getline(in, line)) {
      ++line_no;
      line_text = line;
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      std::istringstream ls(line);
      std::string keyword;
      if (!(ls >> keyword)) continue;
      dispatch(keyword, ls);
    }
    line_text.clear();  // deferred builds below have no offending line
    // Rebuild delay networks for every structured cell so the loaded
    // design re-derives (and re-checks) its characteristics.
    for (const std::string& name : deferred_builds) {
      lib.cell(name).build_delay_networks();
    }
  }

  void dispatch(const std::string& keyword, std::istringstream& ls) {
    if (keyword == "cell") {
      begin_cell(ls);
    } else if (keyword == "end") {
      if (cell == nullptr) fail("'end' outside a cell");
      if (!cell->subcells().empty() && !cell->delay_variables().empty()) {
        deferred_builds.push_back(cell->name());
      }
      cell = nullptr;
      signal = nullptr;
      delay = nullptr;
      net = nullptr;
    } else if (cell == nullptr) {
      fail("'" + keyword + "' outside a cell");
    } else if (keyword == "device") {
      parse_device(ls);
    } else if (keyword == "bbox") {
      parse_bbox(ls);
    } else if (keyword == "signal") {
      parse_signal(ls);
    } else if (keyword == "pin") {
      parse_pin(ls);
    } else if (keyword == "param") {
      parse_param(ls);
    } else if (keyword == "delay") {
      parse_delay(ls);
    } else if (keyword == "spec") {
      parse_spec(ls);
    } else if (keyword == "subcell") {
      parse_subcell(ls);
    } else if (keyword == "net") {
      std::string name;
      if (!(ls >> name)) fail("net needs a name");
      net = &cell->add_net(name);
    } else if (keyword == "conn") {
      parse_conn(ls);
    } else if (keyword == "io") {
      parse_io(ls);
    } else {
      fail("unknown keyword '" + keyword + "'");
    }
  }

  void begin_cell(std::istringstream& ls) {
    if (cell != nullptr) fail("nested cell");
    std::string name;
    if (!(ls >> name)) fail("cell needs a name");
    CellClass* super = nullptr;
    bool generic = false;
    std::string word;
    while (ls >> word) {
      if (word == "super") {
        std::string super_name;
        if (!(ls >> super_name)) fail("super needs a name");
        super = lib.find(super_name);
        if (super == nullptr) fail("unknown superclass " + super_name);
      } else if (word == "generic") {
        generic = true;
      } else {
        fail("unknown cell attribute '" + word + "'");
      }
    }
    cell = &lib.define_cell(name, super);
    cell->set_generic(generic);
  }

  void parse_device(std::istringstream& ls) {
    std::string kind;
    double value = 0.0;
    double ron = 0.0;
    if (!(ls >> kind >> value >> ron)) fail("device kind value ron");
    cell->device().kind = device_kind_from(kind);
    cell->device().value = value;
    cell->device().ron = ron;
  }

  void parse_bbox(std::istringstream& ls) {
    core::Rect r;
    if (!(ls >> r.x0 >> r.y0 >> r.x1 >> r.y1)) fail("bbox x0 y0 x1 y1");
    if (cell->bounding_box().set_user(core::Value(r)).is_violation()) {
      fail("bounding box violates existing constraints");
    }
  }

  void parse_signal(std::istringstream& ls) {
    std::string name;
    std::string dir;
    if (!(ls >> name >> dir)) fail("signal name direction");
    signal = &cell->declare_signal(name, direction_from(dir));
    std::string attr;
    while (ls >> attr) {
      if (attr == "width") {
        std::int64_t w = 0;
        if (!(ls >> w)) fail("width needs an integer");
        signal->bit_width().set_user(core::Value(w));
      } else if (attr == "data" || attr == "elec") {
        std::string type_name;
        if (!(ls >> type_name)) fail(attr + " needs a type name");
        const SignalTypePtr t = lib.types().find(type_name);
        if (t == nullptr) fail("unknown signal type " + type_name);
        auto& var = attr == "data" ? signal->data_type()
                                   : signal->electrical_type();
        var.set_user(type_value(t));
      } else if (attr == "load") {
        double f = 0.0;
        if (!(ls >> f)) fail("load needs a number");
        signal->set_load_capacitance(f);
      } else if (attr == "rout") {
        double ohms = 0.0;
        if (!(ls >> ohms)) fail("rout needs a number");
        signal->set_output_resistance(ohms);
      } else {
        fail("unknown signal attribute '" + attr + "'");
      }
    }
  }

  void parse_pin(std::istringstream& ls) {
    if (signal == nullptr) fail("pin outside a signal");
    core::Point p;
    std::string side;
    if (!(ls >> p.x >> p.y >> side)) fail("pin x y side");
    signal->add_pin(p, side_from(side));
  }

  void parse_param(std::istringstream& ls) {
    std::string name;
    double lo = 0.0;
    double hi = 0.0;
    if (!(ls >> name >> lo >> hi)) fail("param name lo hi");
    core::Value def;
    std::string word;
    if (ls >> word) {
      if (word != "default") fail("expected 'default'");
      double v = 0.0;
      if (!(ls >> v)) fail("default needs a number");
      def = core::Value(v);
    }
    cell->declare_parameter(name, lo, hi, def);
  }

  void parse_delay(std::istringstream& ls) {
    std::string from;
    std::string to;
    if (!(ls >> from >> to)) fail("delay from to");
    delay = &cell->declare_delay(from, to);
    std::string word;
    if (ls >> word) {
      if (word != "value") fail("expected 'value'");
      double v = 0.0;
      if (!(ls >> v)) fail("delay value needs a number");
      if (delay->set(core::Value(v),
                     core::Justification::application()).is_violation()) {
        fail("delay value violates existing constraints");
      }
    }
  }

  void parse_spec(std::istringstream& ls) {
    if (delay == nullptr) fail("spec outside a delay");
    std::string rel;
    double bound = 0.0;
    if (!(ls >> rel >> bound)) fail("spec relation bound");
    core::Relation relation;
    if (rel == "<=") {
      relation = core::Relation::kLessEqual;
    } else if (rel == ">=") {
      relation = core::Relation::kGreaterEqual;
    } else if (rel == "<") {
      relation = core::Relation::kLess;
    } else if (rel == ">") {
      relation = core::Relation::kGreater;
    } else {
      fail("unknown spec relation " + rel);
    }
    auto& c = lib.context().make<core::BoundConstraint>(relation,
                                                        core::Value(bound));
    c.add_argument(*delay);
  }

  void parse_subcell(std::istringstream& ls) {
    std::string name;
    std::string cls_name;
    std::string orient;
    core::Point t;
    if (!(ls >> name >> cls_name >> orient >> t.x >> t.y)) {
      fail("subcell name class orientation x y");
    }
    CellClass* sub_cls = lib.find(cls_name);
    if (sub_cls == nullptr) fail("unknown class " + cls_name);
    cell->add_subcell(*sub_cls, name,
                      core::Transform{orientation_from(orient), t});
  }

  void parse_conn(std::istringstream& ls) {
    if (net == nullptr) fail("conn outside a net");
    std::string inst_name;
    std::string sig_name;
    if (!(ls >> inst_name >> sig_name)) fail("conn instance signal");
    CellInstance* inst = cell->find_subcell(inst_name);
    if (inst == nullptr) fail("unknown subcell " + inst_name);
    net->connect(*inst, sig_name);
  }

  void parse_io(std::istringstream& ls) {
    if (net == nullptr) fail("io outside a net");
    std::string sig_name;
    if (!(ls >> sig_name)) fail("io signal");
    net->connect_io(sig_name);
  }
};

}  // namespace

void LibraryWriter::write(const Library& lib, std::ostream& out) {
  out << "# stemcp library '" << lib.name() << "'\n";
  for (const auto& cell : lib.cells()) write_cell(*cell, out);
}

std::string LibraryWriter::to_string(const Library& lib) {
  std::ostringstream os;
  write(lib, os);
  return os.str();
}

void LibraryReader::read(Library& lib, std::istream& in) {
  if (!lib.cells().empty()) {
    // Reading into a populated library appends in place (the file may refer
    // to already-defined superclasses).  Scratch-parsing can't work here —
    // every Variable is bound to the target's PropagationContext by
    // reference, so parsed cells cannot be spliced across contexts — but
    // the strong guarantee holds anyway, by rollback: every parse handler
    // only mutates cells defined by THIS parse, so on error it suffices to
    // destroy the constraints made since the snapshot (retracting any value
    // they propagated, including into pre-existing cells) and then the
    // appended cells newest-first.
    const std::size_t cells_before = lib.cells().size();
    const std::size_t constraints_before = lib.context().constraint_count();
    try {
      Parser parser{lib, in};
      parser.run();
    } catch (...) {
      const std::vector<core::Constraint*> cs =
          lib.context().all_constraints();
      for (std::size_t i = cs.size(); i > constraints_before; --i) {
        lib.context().destroy_constraint(*cs[i - 1]);
      }
      lib.rollback_cells_to(cells_before);
      throw;
    }
    return;
  }
  // Fresh target: strong guarantee.  Parse into a scratch library that
  // borrows the target's type registry (so user-defined signal types
  // resolve), and swap the parsed contents in only on success — a parse
  // error mid-file leaves the target untouched.  The scratch context
  // mirrors the target's engine/observability switches so they survive the
  // swap (a metrics-enabled session stays metrics-enabled after a load).
  Library scratch(lib.name());
  scratch.context().set_enabled(lib.context().enabled());
  scratch.context().metrics().set_enabled(lib.context().metrics().enabled());
  scratch.context().tracer().set_enabled(lib.context().tracer().enabled());
  std::swap(lib.types(), scratch.types());
  try {
    Parser parser{scratch, in};
    parser.run();
  } catch (...) {
    std::swap(lib.types(), scratch.types());
    throw;
  }
  lib.swap_contents(scratch);
}

void LibraryReader::read_string(Library& lib, const std::string& text) {
  std::istringstream is(text);
  read(lib, is);
}

}  // namespace stemcp::env
