// CompatibleConstraint (thesis §7.1): relates the type variable of a net to
// the type variables of every signal connected by the net.  All must be
// pairwise compatible; the net's type — and any unspecified signal's type —
// is inferred as the least abstract type present.
#pragma once

#include "core/core.h"
#include "stem/signal_type.h"

namespace stemcp::env {

class CompatibleConstraint : public core::Constraint {
 public:
  explicit CompatibleConstraint(core::PropagationContext& ctx)
      : Constraint(ctx) {}

  /// The net's own type variable (also an argument).
  void set_net_variable(core::Variable& v);
  core::Variable* net_variable() const { return net_var_; }

  /// The signal-side type variables are ordinary arguments
  /// (basic_add_argument / add_argument / remove_argument).

  core::Status immediate_inference_by_changing(core::Variable& changed)
      override;
  bool is_satisfied() const override;

 protected:
  std::string kind() const override { return "compatible"; }

 private:
  /// Least abstract type among all non-nil arguments; nullptr when empty or
  /// when an incompatible pair exists (sets `conflict`).
  const SignalType* least_abstract_present(bool& conflict) const;

  core::Variable* net_var_ = nullptr;
};

}  // namespace stemcp::env
