#include "stem/compatible.h"

namespace stemcp::env {

using core::Status;
using core::Value;
using core::Variable;

void CompatibleConstraint::set_net_variable(Variable& v) {
  net_var_ = &v;
  basic_add_argument(v);
}

const SignalType* CompatibleConstraint::least_abstract_present(
    bool& conflict) const {
  conflict = false;
  const SignalType* acc = nullptr;
  for (const Variable* arg : arguments()) {
    const SignalType* t = type_of(arg->value());
    if (t == nullptr) continue;
    const SignalType* combined = SignalType::least_abstract(acc, t);
    if (combined == nullptr) {
      conflict = true;
      return nullptr;
    }
    acc = combined;
  }
  return acc;
}

Status CompatibleConstraint::immediate_inference_by_changing(
    Variable& changed) {
  const SignalType* t = type_of(changed.value());
  if (t == nullptr) return Status::ok();  // erasure: nothing to infer
  bool conflict = false;
  const SignalType* inferred = least_abstract_present(conflict);
  if (conflict || inferred == nullptr) {
    // Leave the disagreement for the final isSatisfied sweep, which
    // produces the designer-facing violation.
    return Status::ok();
  }
  // Assign the least abstract type to every argument that is unspecified or
  // holds a strictly more abstract type (the overwrite rule on the variable
  // enforces directionality).
  const Value v = changed.value();
  for (Variable* arg : arguments()) {
    if (arg == &changed) continue;
    const SignalType* current = type_of(arg->value());
    if (current == &*inferred) continue;
    if (current != nullptr && !inferred->is_less_abstract_than(*current)) {
      continue;  // already as specific or more specific
    }
    // Find the Value carrying `inferred`: it is the changed argument's value
    // when inferred == t, otherwise some other argument already holds it.
    Value iv = v;
    if (inferred != t) {
      for (const Variable* a : arguments()) {
        if (type_of(a->value()) == inferred) {
          iv = a->value();
          break;
        }
      }
    }
    const Status s = propagate_value_to(
        *arg, iv, core::DependencyRecord::single(changed));
    if (s.is_violation()) return s;
  }
  return Status::ok();
}

bool CompatibleConstraint::is_satisfied() const {
  bool conflict = false;
  least_abstract_present(conflict);
  return !conflict;
}

}  // namespace stemcp::env
