// Nets: electrical connections inside a cell that *imply* signal typing
// constraints (thesis §7.1) — an equality-constraint over bit widths and
// compatible-constraints over data and electrical types, updated as signals
// join and leave the net.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "stem/compatible.h"
#include "stem/hierarchy.h"

namespace stemcp::env {

class CellClass;
class CellInstance;
class IoSignal;

struct NetConnection {
  CellInstance* instance = nullptr;  ///< nullptr = the parent cell's io
  std::string signal;

  friend bool operator==(const NetConnection&, const NetConnection&) = default;
};

class Net {
 public:
  Net(CellClass& parent, std::string name);
  ~Net();

  Net(const Net&) = delete;
  Net& operator=(const Net&) = delete;

  CellClass& parent() const { return *parent_; }
  const std::string& name() const { return name_; }
  std::string qualified_name() const;

  /// Connect a subcell instance signal to this net; instantiates the signal
  /// typing constraints.
  core::Status connect(CellInstance& inst, const std::string& signal);
  /// Connect the parent cell's own io-signal to this net.
  core::Status connect_io(const std::string& io_signal);
  void disconnect(CellInstance& inst, const std::string& signal);
  void disconnect_io(const std::string& io_signal);

  const std::vector<NetConnection>& connections() const {
    return connections_;
  }
  bool connects(const CellInstance& inst, const std::string& signal) const;

  // Net-level typing variables.
  StemVariable& bit_width() { return *bit_width_; }
  SignalTypeVar& data_type() { return *data_type_; }
  SignalTypeVar& electrical_type() { return *electrical_type_; }
  const StemVariable& bit_width() const { return *bit_width_; }
  const SignalTypeVar& data_type() const { return *data_type_; }
  const SignalTypeVar& electrical_type() const { return *electrical_type_; }

  core::EqualityConstraint& width_constraint() { return *width_eq_; }
  CompatibleConstraint& data_constraint() { return *data_compat_; }
  CompatibleConstraint& electrical_constraint() { return *elec_compat_; }

  // ---- electrical context for the delay model (thesis §7.3) --------------
  /// Sum of input load capacitances hanging on this net, excluding the
  /// contribution of (`exclude_inst`, `exclude_signal`), plus the estimated
  /// wire capacitance.
  double total_load_capacitance(const CellInstance* exclude_inst = nullptr,
                                const std::string& exclude_signal = "") const;

  /// Wire capacitance estimate: half-perimeter of the bounding box of the
  /// connected (placed) pins, times the technology's capacitance per grid
  /// unit.  Couples the geometric and timing subsystems: spreading cells
  /// apart slows the nets between them.
  double wire_capacitance() const;
  double capacitance_per_unit() const { return cap_per_unit_; }
  void set_capacitance_per_unit(double farads_per_unit) {
    cap_per_unit_ = farads_per_unit;
  }
  /// Output resistance of whatever drives this net (a subcell output or the
  /// parent's input io); 0 when undriven.
  double driver_resistance() const;

 private:
  const IoSignal* resolve(const NetConnection& c) const;
  /// True if another connection on this net resolves to the same class-level
  /// signal declaration (shared type variables must stay in the constraint).
  bool class_signal_still_referenced(const IoSignal& sig) const;

  CellClass* parent_;
  std::string name_;
  std::vector<NetConnection> connections_;
  std::unique_ptr<StemVariable> bit_width_;
  std::unique_ptr<SignalTypeVar> data_type_;
  std::unique_ptr<SignalTypeVar> electrical_type_;
  core::EqualityConstraint* width_eq_;
  CompatibleConstraint* data_compat_;
  CompatibleConstraint* elec_compat_;
  double cap_per_unit_ = 0.0;
};

}  // namespace stemcp::env
