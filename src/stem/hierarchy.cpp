#include "stem/hierarchy.h"

#include <algorithm>

namespace stemcp::env {

using core::DependencyTrace;
using core::Status;
using core::Value;
using core::Variable;

// ---- StemVariable -----------------------------------------------------------

Status StemVariable::propagate_variable(Variable& changed) {
  context().mark_visited(*this);
  if (permit_changes_by_implicit_propagation(changed)) {
    context().agenda().schedule_cached(*this, core::kImplicitConstraintsAgenda,
                                       &changed);
  }
  return Status::ok();
}

Status StemVariable::propagate_scheduled(Variable* changed) {
  if (changed == nullptr) return Status::ok();
  return immediate_inference_by_changing(*changed);
}

Status StemVariable::immediate_inference_by_changing(Variable&) {
  return Status::ok();
}

bool StemVariable::permit_changes_by_implicit_propagation(
    const Variable&) const {
  return true;
}

std::string StemVariable::describe() const { return "implicit(" + path() + ")"; }

void StemVariable::antecedents_of(const Variable& var,
                                  DependencyTrace& out) const {
  out.constraints.insert(this);
  for (const Variable* v : var.last_set_by().record().vars) v->antecedents(out);
}

void StemVariable::consequences_of(const Variable& var,
                                   DependencyTrace& out) const {
  // This variable itself may be the dependent: hierarchical inference
  // records the *changed dual* as the source constraint, so when that dual
  // asks for consequences, the receiver is downstream.
  const auto* source = dynamic_cast<const Propagatable*>(&var);
  if (source != nullptr && last_set_by().constraint() == source &&
      test_membership(var, last_set_by().record())) {
    consequences(out);
  }
  // And duals set through this variable acting as the constraint.
  for (Variable* d : duals()) {
    if (d == &var) continue;
    if (d->last_set_by().constraint() == this &&
        test_membership(var, d->last_set_by().record())) {
      d->consequences(out);
    }
  }
}

const Value& StemVariable::demand() {
  if (value().is_nil() && recalculate_ && !evaluating_ &&
      !context().in_propagation()) {
    evaluating_ = true;  // evalFlag: prevents infinite evaluation loops
    recalculate_();
    evaluating_ = false;
  }
  return value();
}

// ---- ClassVar ----------------------------------------------------------------

std::vector<Variable*> ClassVar::duals() const {
  std::vector<Variable*> out;
  out.reserve(instances_.size());
  for (InstanceVar* v : instances_) out.push_back(v);
  return out;
}

std::vector<core::Propagatable*> ClassVar::implicit_constraints() const {
  std::vector<core::Propagatable*> out;
  out.reserve(instances_.size());
  for (InstanceVar* v : instances_) out.push_back(v);
  return out;
}

void ClassVar::register_dual(InstanceVar& v) {
  if (std::find(instances_.begin(), instances_.end(), &v) ==
      instances_.end()) {
    instances_.push_back(&v);
  }
}

void ClassVar::unregister_dual(InstanceVar& v) {
  instances_.erase(std::remove(instances_.begin(), instances_.end(), &v),
                   instances_.end());
}

// ---- InstanceVar --------------------------------------------------------------

InstanceVar::InstanceVar(core::PropagationContext& ctx,
                         std::string parent_name, std::string name,
                         ClassVar* dual)
    : StemVariable(ctx, std::move(parent_name), std::move(name)),
      dual_(dual) {
  if (dual_ != nullptr) dual_->register_dual(*this);
}

InstanceVar::~InstanceVar() {
  if (dual_ != nullptr) dual_->unregister_dual(*this);
}

std::vector<Variable*> InstanceVar::duals() const {
  if (dual_ == nullptr) return {};
  return {dual_};
}

std::vector<core::Propagatable*> InstanceVar::implicit_constraints() const {
  if (dual_ == nullptr) return {};
  return {dual_};
}

}  // namespace stemcp::env
