#include "stem/checker.h"

#include <set>
#include <sstream>

#include "stem/library.h"
#include "stem/net.h"

namespace stemcp::env {

namespace {

void collect_variables(CellClass& cell, std::set<core::Variable*>& vars) {
  vars.insert(&cell.bounding_box());
  for (IoSignal* sig : cell.all_signals()) {
    vars.insert(&sig->bit_width());
    vars.insert(&sig->data_type());
    vars.insert(&sig->electrical_type());
  }
  for (ClassDelayVar* d : cell.delay_variables()) vars.insert(d);
  for (const auto& net : cell.nets()) {
    vars.insert(&net->bit_width());
    vars.insert(&net->data_type());
    vars.insert(&net->electrical_type());
  }
  for (const auto& sub : cell.subcells()) {
    vars.insert(&sub->bounding_box());
    for (InstanceDelayVar* d : sub->delay_variables()) vars.insert(d);
    for (InstanceBitWidthVar* w : sub->bit_width_variables()) vars.insert(w);
    for (IoSignal* sig : sub->cls().all_signals()) {
      vars.insert(&sig->bit_width());
      vars.insert(&sig->data_type());
      vars.insert(&sig->electrical_type());
    }
  }
}

}  // namespace

std::string CheckReport::to_string() const {
  std::ostringstream os;
  os << constraints_checked << " constraints checked, " << violation_count()
     << " violated\n";
  for (const auto& f : findings) {
    if (!f.satisfied) os << "  VIOLATED: " << f.constraint << '\n';
  }
  return os.str();
}

CheckReport DesignChecker::check(CellClass& cell) {
  std::set<core::Variable*> vars;
  collect_variables(cell, vars);

  std::set<const core::Propagatable*> constraints;
  for (core::Variable* v : vars) {
    for (core::Propagatable* c : v->constraints()) constraints.insert(c);
    for (core::Propagatable* c : v->implicit_constraints()) {
      constraints.insert(c);
    }
  }

  CheckReport report;
  report.constraints_checked = constraints.size();
  for (const core::Propagatable* c : constraints) {
    const bool ok = c->is_satisfied();
    if (!ok) report.findings.push_back({c->describe(), false});
  }
  return report;
}

CheckReport DesignChecker::check(Library& lib) {
  std::set<const core::Propagatable*> seen;
  CheckReport report;
  for (const auto& cell : lib.cells()) {
    std::set<core::Variable*> vars;
    collect_variables(*cell, vars);
    for (core::Variable* v : vars) {
      auto consider = [&](core::Propagatable* c) {
        if (!seen.insert(c).second) return;
        ++report.constraints_checked;
        if (!c->is_satisfied()) {
          report.findings.push_back({c->describe(), false});
        }
      };
      for (core::Propagatable* c : v->constraints()) consider(c);
      for (core::Propagatable* c : v->implicit_constraints()) consider(c);
    }
  }
  return report;
}

}  // namespace stemcp::env
