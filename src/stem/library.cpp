#include "stem/library.h"

#include <stdexcept>
#include <utility>

#include "stem/cell.h"

namespace stemcp::env {

Library::Library(std::string name)
    : name_(std::move(name)),
      ctx_(std::make_unique<core::PropagationContext>()) {}

Library::~Library() {
  // A class must outlive every instance of it (~CellInstance unregisters
  // from its class).  Newest-first is not enough: a structure edit can
  // instantiate a class defined AFTER its parent cell.  Each round destroy
  // some cell no live instance points to — releasing a composite's
  // subcells unblocks their classes for a later round.
  while (!cells_.empty()) {
    bool destroyed = false;
    for (std::size_t i = cells_.size(); i-- > 0;) {
      if (cells_[i]->instances().empty()) {
        cells_.erase(cells_.begin() + static_cast<std::ptrdiff_t>(i));
        destroyed = true;
        break;
      }
    }
    // Unreachable unless instantiation ever becomes cyclic; prefer the old
    // newest-first behavior over spinning.
    if (!destroyed) cells_.pop_back();
  }
}

void Library::swap_contents(Library& other) {
  std::swap(ctx_, other.ctx_);
  std::swap(types_, other.types_);
  std::swap(cells_, other.cells_);
  std::swap(selection_stats_, other.selection_stats_);
  for (auto& c : cells_) c->rebind_library(*this);
  for (auto& c : other.cells_) c->rebind_library(other);
}

void Library::rollback_cells_to(std::size_t count) {
  while (cells_.size() > count) cells_.pop_back();
}

CellClass& Library::define_cell(const std::string& name,
                                CellClass* superclass) {
  if (find(name) != nullptr) {
    throw std::invalid_argument("cell already defined: " + name);
  }
  cells_.push_back(std::make_unique<CellClass>(*this, name, superclass));
  return *cells_.back();
}

CellClass* Library::find(const std::string& name) const {
  for (const auto& c : cells_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

CellClass& Library::cell(const std::string& name) const {
  CellClass* c = find(name);
  if (c == nullptr) throw std::out_of_range("no cell named " + name);
  return *c;
}

}  // namespace stemcp::env
