#include "stem/library.h"

#include <stdexcept>
#include <utility>

#include "stem/cell.h"

namespace stemcp::env {

Library::Library(std::string name)
    : name_(std::move(name)),
      ctx_(std::make_unique<core::PropagationContext>()) {}

Library::~Library() {
  // Cells must die newest-first: composite cells (defined later) hold
  // instances of earlier leaf cells and must release them before the leaf
  // classes disappear.
  while (!cells_.empty()) cells_.pop_back();
}

void Library::swap_contents(Library& other) {
  std::swap(ctx_, other.ctx_);
  std::swap(types_, other.types_);
  std::swap(cells_, other.cells_);
  std::swap(selection_stats_, other.selection_stats_);
  for (auto& c : cells_) c->rebind_library(*this);
  for (auto& c : other.cells_) c->rebind_library(other);
}

void Library::rollback_cells_to(std::size_t count) {
  while (cells_.size() > count) cells_.pop_back();
}

CellClass& Library::define_cell(const std::string& name,
                                CellClass* superclass) {
  if (find(name) != nullptr) {
    throw std::invalid_argument("cell already defined: " + name);
  }
  cells_.push_back(std::make_unique<CellClass>(*this, name, superclass));
  return *cells_.back();
}

CellClass* Library::find(const std::string& name) const {
  for (const auto& c : cells_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

CellClass& Library::cell(const std::string& name) const {
  CellClass* c = find(name);
  if (c == nullptr) throw std::out_of_range("no cell named " + name);
  return *c;
}

}  // namespace stemcp::env
