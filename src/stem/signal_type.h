// Signal type hierarchies (thesis §7.1, Fig 7.2).
//
// Data and electrical types are organized in trees, most abstract at the
// root.  Two types are compatible iff one is an ancestor-or-self of the
// other; a type is "less abstract" than another iff it is a proper
// descendant.  The default hierarchy mirrors the thesis's Fig 7.2 and is
// user-extensible, because STEM allows new types to be added as subclasses.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/core.h"
#include "stem/hierarchy.h"

namespace stemcp::env {

class SignalType;
using SignalTypePtr = std::shared_ptr<const SignalType>;

class SignalType : public core::Boxed {
 public:
  SignalType(std::string name, const SignalType* parent)
      : name_(std::move(name)), parent_(parent) {}

  const std::string& name() const { return name_; }
  const SignalType* parent() const { return parent_; }

  /// Ancestor-or-self test.
  bool is_ancestor_or_self_of(const SignalType& other) const;
  /// `isCompatibleWith:` — true iff one type is a sub-type of the other
  /// (thesis Fig 7.3).
  bool is_compatible_with(const SignalType& other) const;
  /// `isLessAbstractThan:` — this is a proper descendant of `other`.
  bool is_less_abstract_than(const SignalType& other) const;

  /// The less abstract of two compatible types; nullptr if incompatible.
  static const SignalType* least_abstract(const SignalType* a,
                                          const SignalType* b);

  // Boxed protocol: types are registry singletons, so identity equality.
  bool equals(const Boxed& other) const override { return this == &other; }
  std::string to_string() const override { return name_; }

 private:
  std::string name_;
  const SignalType* parent_;
};

/// Registry owning all signal types.  Constructs the standard hierarchy of
/// thesis Fig 7.2 and accepts user-defined extensions.
class SignalTypeRegistry {
 public:
  SignalTypeRegistry();

  /// Define a new type under `parent` (nullptr = new root).  Returns the
  /// shared singleton.  Throws std::invalid_argument on duplicate names.
  SignalTypePtr define(const std::string& name, const SignalType* parent);
  SignalTypePtr define(const std::string& name, const SignalTypePtr& parent) {
    return define(name, parent.get());
  }

  /// Find by name; nullptr if absent.
  SignalTypePtr find(const std::string& name) const;
  /// Find by name; throws std::out_of_range if absent.
  SignalTypePtr at(const std::string& name) const;

  // The standard roots.
  SignalTypePtr data_type_root() const { return at("DataType"); }
  SignalTypePtr electrical_type_root() const { return at("ElectricalType"); }

  std::size_t size() const { return types_.size(); }

 private:
  std::vector<SignalTypePtr> types_;
};

/// Wrap a type as a constraint-network Value.
core::Value type_value(const SignalTypePtr& t);
/// Unwrap; nullptr when nil or not a type.
const SignalType* type_of(const core::Value& v);

/// Signal-type variable with the overwrite rule of thesis Fig 7.4: values
/// may change to or from nil freely; otherwise only refinement to a *less
/// abstract* (more specific) type is permitted.
class SignalTypeVar : public ClassVar {
 public:
  using ClassVar::ClassVar;

  bool can_change_value_to(const core::Value& v,
                           const core::Justification& incoming) const override;
};

}  // namespace stemcp::env
