#include "stem/netlist/minispice.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace stemcp::env::spice {

double PulseSource::at(double t) const {
  if (t <= delay) return v0;
  if (t >= delay + rise) return v1;
  return v0 + (v1 - v0) * (t - delay) / rise;
}

double Waveforms::value_at(const std::string& node, double t) const {
  const auto it = node_voltages.find(node);
  if (it == node_voltages.end() || time.empty()) return 0.0;
  const auto& v = it->second;
  if (t <= time.front()) return v.front();
  if (t >= time.back()) return v.back();
  const auto upper = std::upper_bound(time.begin(), time.end(), t);
  const std::size_t i = static_cast<std::size_t>(upper - time.begin());
  const double t0 = time[i - 1];
  const double t1 = time[i];
  const double f = (t - t0) / (t1 - t0);
  return v[i - 1] + f * (v[i] - v[i - 1]);
}

namespace {

struct Node {
  std::string name;
  double voltage = 0.0;
  double capacitance = 0.0;
  bool fixed = false;            ///< source- or ground-driven
  const PulseSource* pulse = nullptr;
};

struct Branch {
  int a = -1;
  int b = -1;
  double conductance = 0.0;  // static (R)
  // MOS switch: conducts only when the controlling node passes threshold.
  int gate = -1;
  bool is_pmos = false;
  double ron = 0.0;
};

}  // namespace

Waveforms MiniSpiceEngine::run(const Deck& deck, const TransientSpec& spec) {
  std::vector<Node> nodes;
  std::map<std::string, int> index;
  const auto node_of = [&](const std::string& name) {
    auto it = index.find(name);
    if (it != index.end()) return it->second;
    const int i = static_cast<int>(nodes.size());
    nodes.push_back({name, 0.0, spec.cmin, false, nullptr});
    index.emplace(name, i);
    return i;
  };

  const int gnd = node_of(kGroundNode);
  nodes[gnd].fixed = true;

  std::vector<Branch> branches;
  for (const Card& card : deck.cards) {
    switch (card.kind) {
      case DeviceInfo::Kind::kResistor: {
        if (card.nodes.size() < 2) {
          throw std::invalid_argument("R card needs 2 nodes: " + card.name);
        }
        Branch br;
        br.a = node_of(card.nodes[0]);
        br.b = node_of(card.nodes[1]);
        br.conductance = card.value > 0 ? 1.0 / card.value : 0.0;
        branches.push_back(br);
        break;
      }
      case DeviceInfo::Kind::kCapacitor: {
        if (card.nodes.empty()) {
          throw std::invalid_argument("C card needs a node: " + card.name);
        }
        // Capacitance to ground on the first terminal (grounded-cap model).
        nodes[node_of(card.nodes[0])].capacitance += card.value;
        break;
      }
      case DeviceInfo::Kind::kNmos:
      case DeviceInfo::Kind::kPmos: {
        if (card.nodes.size() < 3) {
          throw std::invalid_argument("MOS card needs d g s: " + card.name);
        }
        Branch br;
        br.a = node_of(card.nodes[0]);   // drain
        br.gate = node_of(card.nodes[1]);
        br.b = node_of(card.nodes[2]);   // source
        br.is_pmos = card.kind == DeviceInfo::Kind::kPmos;
        br.ron = card.ron > 0 ? card.ron : 1e3;
        branches.push_back(br);
        break;
      }
      case DeviceInfo::Kind::kVoltageSource: {
        if (card.nodes.empty()) {
          throw std::invalid_argument("V card needs a node: " + card.name);
        }
        Node& n = nodes[node_of(card.nodes[0])];
        n.fixed = true;
        n.voltage = card.value;
        break;
      }
      case DeviceInfo::Kind::kNone:
        break;
    }
  }

  for (const PulseSource& p : spec.pulses) {
    Node& n = nodes[node_of(p.node)];
    n.fixed = true;
    n.pulse = &p;
    n.voltage = p.at(0.0);
  }

  // Stability: explicit integration needs dt well under the smallest RC.
  double min_rc = spec.tstep;
  for (const Branch& br : branches) {
    const double g = br.gate >= 0 ? 1.0 / br.ron : br.conductance;
    if (g <= 0) continue;
    const double c = std::min(nodes[br.a].capacitance,
                              nodes[br.b].capacitance);
    min_rc = std::min(min_rc, c / g);
  }
  const double dt = std::max(min_rc * 0.2, 1e-18);

  Waveforms out;
  const auto sample = [&](double t) {
    out.time.push_back(t);
    for (const Node& n : nodes) {
      if (n.name == kGroundNode) continue;
      out.node_voltages[n.name].push_back(n.voltage);
    }
  };

  const double half = spec.vdd / 2.0;
  std::vector<double> current(nodes.size());
  double next_sample = 0.0;
  for (double t = 0.0; t <= spec.tstop + dt; t += dt) {
    // Drive sources.
    for (Node& n : nodes) {
      if (n.pulse != nullptr) n.voltage = n.pulse->at(t);
    }
    if (t >= next_sample) {
      sample(t);
      next_sample += spec.tstep;
    }
    // Currents into each node.
    std::fill(current.begin(), current.end(), 0.0);
    for (const Branch& br : branches) {
      double g = br.conductance;
      if (br.gate >= 0) {
        const double vg = nodes[br.gate].voltage;
        const bool on = br.is_pmos ? vg < half : vg > half;
        g = on ? 1.0 / br.ron : 0.0;
      }
      if (g <= 0) continue;
      const double i = g * (nodes[br.a].voltage - nodes[br.b].voltage);
      current[br.a] -= i;
      current[br.b] += i;
    }
    // Integrate free nodes.
    for (std::size_t k = 0; k < nodes.size(); ++k) {
      Node& n = nodes[k];
      if (n.fixed) continue;
      n.voltage += dt * current[k] / n.capacitance;
    }
  }
  return out;
}

}  // namespace stemcp::env::spice
