// Netlist extraction (the SpiceNet substrate, thesis §6.4.2).
//
// A design hierarchy is flattened down to its primitive device cells
// (transistors, resistors, capacitors, sources), producing a SPICE-like
// card deck plus the correspondence map between card names and database
// objects that SpiceNet uses to tie the text back to the design.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "stem/cell.h"

namespace stemcp::env::spice {

inline constexpr const char* kGroundNode = "0";

struct Card {
  std::string name;            ///< e.g. "M1", "R2", "C3", "V1"
  DeviceInfo::Kind kind = DeviceInfo::Kind::kNone;
  std::vector<std::string> nodes;  ///< terminal node names, signal order
  double value = 0.0;
  double ron = 0.0;
  const CellInstance* origin = nullptr;  ///< correspondence pointer

  std::string to_text() const;
};

struct Deck {
  std::string title;
  std::vector<Card> cards;
  /// All node names appearing in the deck (sorted, unique).
  std::vector<std::string> nodes() const;
  std::string to_text() const;
};

/// Flatten `cell` to primitive devices.  Node names are hierarchical net
/// paths ("/u1/n_mid"); the cell's own io-signals become top-level nodes
/// named after the signal.  A signal named "gnd"/"vss"/"0" maps to the
/// ground node.
Deck extract(CellClass& cell);

}  // namespace stemcp::env::spice
