#include "stem/netlist/characterize.h"

#include <ostream>
#include <sstream>
#include <stdexcept>

#include "stem/netlist/spice_views.h"

namespace stemcp::env::spice {

CharacterizeResult characterize_delay(CellClass& cell, const std::string& in,
                                      const std::string& out,
                                      const CharacterizeOptions& options) {
  CharacterizeResult result;
  const Deck deck = extract(cell);
  TransientSpec spec;
  spec.vdd = options.vdd;
  spec.tstop = options.tstop;
  spec.tstep = options.tstep;
  spec.pulses.push_back(
      {in, 0.0, options.vdd, options.pulse_delay, options.pulse_rise});
  const Waveforms waves = MiniSpiceEngine::run(deck, spec);
  const SpicePlot plot(waves);
  result.measured = plot.delay_between(in, out, options.vdd / 2.0);
  if (!result.measured.has_value()) {
    result.status = core::Status::violation();
    return result;
  }
  // The measured characteristic enters the constraint network like any
  // other calculated value; hierarchical propagation takes it from here.
  result.status = cell.set_leaf_delay(in, out, *result.measured);
  return result;
}

void write_csv(const Waveforms& w, std::ostream& out) {
  out << "time";
  for (const auto& [node, samples] : w.node_voltages) out << ',' << node;
  out << '\n';
  for (std::size_t i = 0; i < w.time.size(); ++i) {
    out << w.time[i];
    for (const auto& [node, samples] : w.node_voltages) {
      out << ',' << (i < samples.size() ? samples[i] : 0.0);
    }
    out << '\n';
  }
}

Deck parse_deck(const std::string& text) {
  Deck deck;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string head;
    if (!(ls >> head) || head.empty()) continue;
    if (head[0] == '*') {  // comment / title
      if (deck.title.empty()) {
        std::string rest;
        std::getline(ls, rest);
        if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
        deck.title = rest;
      }
      continue;
    }
    if (head == ".END" || head == ".end") break;
    if (head[0] == '.') continue;  // other dot-cards ignored

    Card card;
    card.name = head;
    const char kind = static_cast<char>(std::toupper(head[0]));
    auto need = [&](int n) {
      for (int i = 0; i < n; ++i) {
        std::string node;
        if (!(ls >> node)) {
          throw std::runtime_error("deck parse error, line " +
                                   std::to_string(line_no) +
                                   ": missing node for " + head);
        }
        card.nodes.push_back(node);
      }
    };
    switch (kind) {
      case 'M': {
        need(3);
        std::string type;
        if (!(ls >> type)) {
          throw std::runtime_error("deck parse error, line " +
                                   std::to_string(line_no) +
                                   ": missing MOS type");
        }
        card.kind = type == "PMOS" ? DeviceInfo::Kind::kPmos
                                   : DeviceInfo::Kind::kNmos;
        std::string attr;
        card.ron = 1e3;
        while (ls >> attr) {
          if (attr.rfind("RON=", 0) == 0) card.ron = std::stod(attr.substr(4));
        }
        break;
      }
      case 'R': {
        need(2);
        card.kind = DeviceInfo::Kind::kResistor;
        if (!(ls >> card.value)) {
          throw std::runtime_error("deck parse error, line " +
                                   std::to_string(line_no) +
                                   ": missing resistance");
        }
        break;
      }
      case 'C': {
        need(1);
        card.kind = DeviceInfo::Kind::kCapacitor;
        // Optional second terminal (ignored: grounded-cap model).
        std::string maybe;
        if (ls >> maybe) {
          try {
            card.value = std::stod(maybe);
          } catch (const std::exception&) {
            card.nodes.push_back(maybe);
            if (!(ls >> card.value)) {
              throw std::runtime_error("deck parse error, line " +
                                       std::to_string(line_no) +
                                       ": missing capacitance");
            }
          }
        }
        break;
      }
      case 'V': {
        need(1);
        card.kind = DeviceInfo::Kind::kVoltageSource;
        std::string dc;
        if (!(ls >> dc >> card.value) || (dc != "DC" && dc != "dc")) {
          throw std::runtime_error("deck parse error, line " +
                                   std::to_string(line_no) +
                                   ": expected 'DC <volts>'");
        }
        break;
      }
      default:
        throw std::runtime_error("deck parse error, line " +
                                 std::to_string(line_no) +
                                 ": unknown card '" + head + "'");
    }
    deck.cards.push_back(std::move(card));
  }
  return deck;
}

}  // namespace stemcp::env::spice
