// The SPICE tool-integration views (thesis §6.4.2, Fig 6.3): SpiceNet
// (net-list view of a cell), SpiceSimulation (deck + parameters + engine
// run), and SpicePlot (waveform display/measurement).  All are calculated
// views that go *outdated* when the model changes and recompute on demand.
#pragma once

#include <optional>
#include <string>

#include "stem/netlist/deck.h"
#include "stem/netlist/minispice.h"

namespace stemcp::env::spice {

/// Textual net-list view of a cell; maintains the extracted deck and the
/// correspondence between cards and database objects.
class SpiceNet : public View {
 public:
  explicit SpiceNet(CellClass& cell);
  ~SpiceNet() override;

  CellClass& cell() const { return *cell_; }
  /// Extract (if outdated) and return the deck.
  const Deck& deck();
  /// Extract (if outdated) and return the formatted net-list.
  const std::string& text();
  bool outdated() const { return outdated_; }

  void update(const std::string& key) override;

 private:
  CellClass* cell_;
  bool outdated_ = true;
  Deck deck_;
  std::string text_;
};

/// A simulation setup over a cell's net-list: editable stimulus and
/// transient parameters, plus the (background-style) run of the engine.
class SpiceSimulation : public View {
 public:
  explicit SpiceSimulation(CellClass& cell);
  ~SpiceSimulation() override;

  TransientSpec& spec() { return spec_; }
  /// Run (or re-run) the simulation; marks the results fresh.
  const Waveforms& run();
  /// Last results; throws std::logic_error if never run.
  const Waveforms& result() const;
  bool has_result() const { return has_result_; }
  /// Results go stale when the model changes (the "outdated" window label
  /// of thesis §6.4.2).
  bool outdated() const { return outdated_; }

  void update(const std::string& key) override;

 private:
  CellClass* cell_;
  SpiceNet net_;
  TransientSpec spec_;
  Waveforms result_;
  bool has_result_ = false;
  bool outdated_ = true;
};

/// Waveform measurements (the SpicePlot of thesis Fig 6.3).
class SpicePlot {
 public:
  explicit SpicePlot(const Waveforms& w) : w_(&w) {}

  double value_at(const std::string& node, double t) const {
    return w_->value_at(node, t);
  }
  /// First time after `after` at which the node crosses `level` in the
  /// given direction.
  std::optional<double> crossing_time(const std::string& node, double level,
                                      bool rising, double after = 0.0) const;
  /// Delay from a's crossing of `level` to b's next crossing of `level`
  /// (either direction on b).
  std::optional<double> delay_between(const std::string& a,
                                      const std::string& b,
                                      double level) const;
  /// ASCII rendering of one waveform (the plot window substitute).
  std::string render(const std::string& node, int columns = 60,
                     int rows = 10) const;

 private:
  const Waveforms* w_;
};

}  // namespace stemcp::env::spice
