// Closing the tool-integration loop (thesis ch. 6 + ch. 7): run the
// simulator on a cell, measure its propagation delay, and feed the result
// back into the cell's class delay variable — where hierarchical constraint
// propagation immediately checks it against every specification in every
// context the cell is used in.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "stem/netlist/minispice.h"

namespace stemcp::env::spice {

struct CharacterizeOptions {
  double vdd = 5.0;
  double tstop = 100e-9;
  double tstep = 0.1e-9;
  double pulse_delay = 10e-9;
  double pulse_rise = 1e-9;
};

struct CharacterizeResult {
  core::Status status = core::Status::ok();   ///< of the delay assignment
  std::optional<double> measured;             ///< seconds; nullopt = no edge
};

/// Simulate `cell` with a rising step on io-signal `in`, measure the 50%
/// crossing-to-crossing delay to io-signal `out`, and assign it to the
/// cell's class delay variable (declaring it if needed).  The assignment
/// propagates hierarchically: a measured delay that blows a budget anywhere
/// up the design hierarchy is rejected (and reported) exactly like a
/// hand-entered one.
CharacterizeResult characterize_delay(
    CellClass& cell, const std::string& in, const std::string& out,
    const CharacterizeOptions& options = CharacterizeOptions());

/// Export waveforms as CSV (time plus one column per node) for external
/// plotting.
void write_csv(const Waveforms& w, std::ostream& out);

/// Parse a MiniSpice-format deck back from text (the inverse of
/// Deck::to_text) — lets hand-written decks run through the simulator.
/// Throws std::runtime_error with a line number on malformed input.
Deck parse_deck(const std::string& text);

}  // namespace stemcp::env::spice
