#include "stem/netlist/spice_views.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace stemcp::env::spice {

// ---- SpiceNet -----------------------------------------------------------------

SpiceNet::SpiceNet(CellClass& cell) : cell_(&cell) {
  cell_->add_dependent(*this);
}

SpiceNet::~SpiceNet() { cell_->remove_dependent(*this); }

void SpiceNet::update(const std::string& key) {
  // A pure layout change does not alter connectivity, so the net-list stays
  // valid (selective erasure, thesis §6.5.2).
  if (key == kChangedLayout) return;
  outdated_ = true;
}

const Deck& SpiceNet::deck() {
  if (outdated_) {
    deck_ = extract(*cell_);
    text_ = deck_.to_text();
    outdated_ = false;
  }
  return deck_;
}

const std::string& SpiceNet::text() {
  (void)deck();
  return text_;
}

// ---- SpiceSimulation ------------------------------------------------------------

SpiceSimulation::SpiceSimulation(CellClass& cell)
    : cell_(&cell), net_(cell) {
  cell_->add_dependent(*this);
}

SpiceSimulation::~SpiceSimulation() { cell_->remove_dependent(*this); }

void SpiceSimulation::update(const std::string& key) {
  if (key == kChangedLayout) return;
  outdated_ = true;
}

const Waveforms& SpiceSimulation::run() {
  result_ = MiniSpiceEngine::run(net_.deck(), spec_);
  has_result_ = true;
  outdated_ = false;
  return result_;
}

const Waveforms& SpiceSimulation::result() const {
  if (!has_result_) {
    throw std::logic_error("SpiceSimulation: no results; call run() first");
  }
  return result_;
}

// ---- SpicePlot -------------------------------------------------------------------

std::optional<double> SpicePlot::crossing_time(const std::string& node,
                                               double level, bool rising,
                                               double after) const {
  const auto it = w_->node_voltages.find(node);
  if (it == w_->node_voltages.end()) return std::nullopt;
  const auto& v = it->second;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (w_->time[i] < after) continue;
    const bool crossed = rising ? (v[i - 1] < level && v[i] >= level)
                                : (v[i - 1] > level && v[i] <= level);
    if (!crossed) continue;
    // Linear interpolation inside the step.
    const double f = (level - v[i - 1]) / (v[i] - v[i - 1]);
    return w_->time[i - 1] + f * (w_->time[i] - w_->time[i - 1]);
  }
  return std::nullopt;
}

std::optional<double> SpicePlot::delay_between(const std::string& a,
                                               const std::string& b,
                                               double level) const {
  auto ta = crossing_time(a, level, true);
  if (!ta) ta = crossing_time(a, level, false);
  if (!ta) return std::nullopt;
  auto tb = crossing_time(b, level, true, *ta);
  const auto tb_fall = crossing_time(b, level, false, *ta);
  if (!tb || (tb_fall && *tb_fall < *tb)) tb = tb_fall;
  if (!tb) return std::nullopt;
  return *tb - *ta;
}

std::string SpicePlot::render(const std::string& node, int columns,
                              int rows) const {
  const auto it = w_->node_voltages.find(node);
  if (it == w_->node_voltages.end() || w_->time.empty()) {
    return "(no data for " + node + ")\n";
  }
  const auto& v = it->second;
  const double vmax = std::max(1e-12, *std::max_element(v.begin(), v.end()));
  const double tmax = w_->time.back();
  std::vector<std::string> grid(static_cast<std::size_t>(rows),
                                std::string(static_cast<std::size_t>(columns),
                                            ' '));
  for (int c = 0; c < columns; ++c) {
    const double t = tmax * c / std::max(1, columns - 1);
    const double val = w_->value_at(node, t);
    int r = static_cast<int>(std::lround((rows - 1) * val / vmax));
    r = std::clamp(r, 0, rows - 1);
    grid[static_cast<std::size_t>(rows - 1 - r)]
        [static_cast<std::size_t>(c)] = '*';
  }
  std::ostringstream os;
  os << node << " (0.." << vmax << " V, 0.." << tmax << " s)\n";
  for (const auto& row : grid) os << '|' << row << "|\n";
  return os.str();
}

}  // namespace stemcp::env::spice
