#include "stem/netlist/deck.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "stem/net.h"

namespace stemcp::env::spice {

namespace {

bool is_ground_name(const std::string& s) {
  return s == "0" || s == "gnd" || s == "GND" || s == "vss" || s == "VSS";
}

char prefix_for(DeviceInfo::Kind k) {
  switch (k) {
    case DeviceInfo::Kind::kNmos:
    case DeviceInfo::Kind::kPmos: return 'M';
    case DeviceInfo::Kind::kResistor: return 'R';
    case DeviceInfo::Kind::kCapacitor: return 'C';
    case DeviceInfo::Kind::kVoltageSource: return 'V';
    case DeviceInfo::Kind::kNone: return 'X';
  }
  return 'X';
}

struct Flattener {
  Deck deck;
  int counters[6] = {};
  int anon_nodes = 0;

  std::string fresh_node() {
    return "_float" + std::to_string(anon_nodes++);
  }

  /// `bindings` maps this cell's io-signal names to enclosing node names.
  void flatten(CellClass& cell, const std::string& prefix,
               const std::map<std::string, std::string>& bindings) {
    // Node name per net of this cell.
    std::map<const Net*, std::string> net_node;
    for (const auto& net : cell.nets()) {
      std::string name = prefix + "/" + net->name();
      // An internal net wired to an io-signal takes the outer node's name.
      for (const NetConnection& c : net->connections()) {
        if (c.instance != nullptr) continue;
        auto it = bindings.find(c.signal);
        if (it != bindings.end()) {
          name = it->second;
          break;
        }
      }
      net_node[net.get()] = name;
    }

    for (const auto& sub : cell.subcells()) {
      // Terminal nodes in declared-signal order.
      std::map<std::string, std::string> sub_bindings;
      std::vector<std::string> terminal_nodes;
      for (const IoSignal* sig : sub->cls().all_signals()) {
        std::string node;
        if (is_ground_name(sig->name())) {
          node = kGroundNode;
        } else if (const Net* net = sub->net_for(sig->name())) {
          node = net_node.at(net);
        } else {
          node = fresh_node();
        }
        sub_bindings[sig->name()] = node;
        terminal_nodes.push_back(node);
      }

      if (sub->cls().is_device()) {
        const DeviceInfo& dev = sub->cls().device();
        Card card;
        card.kind = dev.kind;
        const char p = prefix_for(dev.kind);
        // One counter per card prefix so names are unique within the deck
        // (NMOS and PMOS share the 'M' namespace).
        const std::size_t counter_index =
            p == 'M' ? 0 : p == 'R' ? 1 : p == 'C' ? 2 : p == 'V' ? 3 : 4;
        card.name = std::string(1, p) +
                    std::to_string(++counters[counter_index]);
        card.nodes = terminal_nodes;
        card.value = dev.value;
        card.ron = dev.ron;
        card.origin = sub.get();
        deck.cards.push_back(std::move(card));
      } else {
        flatten(sub->cls(), prefix + "/" + sub->name(), sub_bindings);
      }
    }
  }
};

}  // namespace

std::string Card::to_text() const {
  std::ostringstream os;
  os << name;
  for (const auto& n : nodes) os << ' ' << n;
  switch (kind) {
    case DeviceInfo::Kind::kNmos: os << " NMOS RON=" << ron; break;
    case DeviceInfo::Kind::kPmos: os << " PMOS RON=" << ron; break;
    case DeviceInfo::Kind::kResistor: os << ' ' << value; break;
    case DeviceInfo::Kind::kCapacitor: os << ' ' << value; break;
    case DeviceInfo::Kind::kVoltageSource: os << " DC " << value; break;
    case DeviceInfo::Kind::kNone: break;
  }
  return os.str();
}

std::vector<std::string> Deck::nodes() const {
  std::set<std::string> set;
  for (const Card& c : cards) {
    for (const auto& n : c.nodes) set.insert(n);
  }
  return {set.begin(), set.end()};
}

std::string Deck::to_text() const {
  std::ostringstream os;
  os << "* " << title << '\n';
  for (const Card& c : cards) os << c.to_text() << '\n';
  os << ".END\n";
  return os.str();
}

Deck extract(CellClass& cell) {
  Flattener f;
  f.deck.title = cell.name();
  std::map<std::string, std::string> top_bindings;
  for (const IoSignal* sig : cell.all_signals()) {
    top_bindings[sig->name()] =
        is_ground_name(sig->name()) ? kGroundNode : sig->name();
  }
  f.flatten(cell, "", top_bindings);
  return std::move(f.deck);
}

}  // namespace stemcp::env::spice
