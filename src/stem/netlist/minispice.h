// MiniSpice: the in-process substitute for Berkeley SPICE (thesis §6.4.2).
//
// A switch-level RC transient simulator: MOS devices act as resistive
// switches controlled by their gate voltage, resistors and capacitors are
// ideal, and node voltages evolve by explicit integration.  It exists to
// exercise the same tool-integration path the thesis built around SPICE —
// extract, format, run, file results back in, outdate views — not to be an
// accurate analog simulator.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "stem/netlist/deck.h"

namespace stemcp::env::spice {

/// PULSE-style stimulus on a node: v0 until `delay`, linear ramp to v1 over
/// `rise`, then v1.
struct PulseSource {
  std::string node;
  double v0 = 0.0;
  double v1 = 5.0;
  double delay = 0.0;
  double rise = 1e-9;

  double at(double t) const;
};

struct TransientSpec {
  double tstep = 1e-10;
  double tstop = 1e-7;
  double vdd = 5.0;       ///< logic threshold reference (switch at vdd/2)
  double cmin = 1e-15;    ///< default node capacitance (F)
  std::vector<PulseSource> pulses;
};

struct Waveforms {
  std::vector<double> time;
  std::map<std::string, std::vector<double>> node_voltages;

  bool has(const std::string& node) const {
    return node_voltages.count(node) != 0;
  }
  /// Linear interpolation of a node voltage at time t.
  double value_at(const std::string& node, double t) const;
};

class MiniSpiceEngine {
 public:
  /// Run a transient analysis.  Throws std::invalid_argument on decks that
  /// cannot be simulated (e.g. a MOS card with fewer than 3 terminals).
  static Waveforms run(const Deck& deck, const TransientSpec& spec);
};

}  // namespace stemcp::env::spice
