#include "stem/signal_type.h"

#include <stdexcept>

namespace stemcp::env {

bool SignalType::is_ancestor_or_self_of(const SignalType& other) const {
  for (const SignalType* t = &other; t != nullptr; t = t->parent()) {
    if (t == this) return true;
  }
  return false;
}

bool SignalType::is_compatible_with(const SignalType& other) const {
  return is_ancestor_or_self_of(other) || other.is_ancestor_or_self_of(*this);
}

bool SignalType::is_less_abstract_than(const SignalType& other) const {
  return this != &other && other.is_ancestor_or_self_of(*this);
}

const SignalType* SignalType::least_abstract(const SignalType* a,
                                             const SignalType* b) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  if (a->is_ancestor_or_self_of(*b)) return b;
  if (b->is_ancestor_or_self_of(*a)) return a;
  return nullptr;  // incompatible
}

SignalTypeRegistry::SignalTypeRegistry() {
  // Standard hierarchy (thesis Fig 7.2).
  const auto data = define("DataType", nullptr);
  define("Bit", data);
  define("FloatSignal", data);
  const auto integer = define("IntegerSignal", data);
  define("A2CIntSignal", integer);
  define("BCDSignal", integer);
  define("SignedMagIntSignal", integer);
  define("WholeSignal", integer);

  const auto elec = define("ElectricalType", nullptr);
  define("Analog", elec);
  const auto digital = define("Digital", elec);
  define("BIPOLAR", digital);
  define("TTL", digital);
  define("CMOS", digital);
}

SignalTypePtr SignalTypeRegistry::define(const std::string& name,
                                         const SignalType* parent) {
  if (find(name) != nullptr) {
    throw std::invalid_argument("signal type already defined: " + name);
  }
  auto t = std::make_shared<const SignalType>(name, parent);
  types_.push_back(t);
  return t;
}

SignalTypePtr SignalTypeRegistry::find(const std::string& name) const {
  for (const auto& t : types_) {
    if (t->name() == name) return t;
  }
  return nullptr;
}

SignalTypePtr SignalTypeRegistry::at(const std::string& name) const {
  auto t = find(name);
  if (t == nullptr) throw std::out_of_range("unknown signal type: " + name);
  return t;
}

core::Value type_value(const SignalTypePtr& t) {
  return core::Value(std::static_pointer_cast<const core::Boxed>(t));
}

const SignalType* type_of(const core::Value& v) {
  return v.as<SignalType>();
}

bool SignalTypeVar::can_change_value_to(
    const core::Value& v, const core::Justification& incoming) const {
  // "I can change value to or from NIL freely" (thesis Fig 7.4)...
  if (value().is_nil() || v.is_nil()) return true;
  const SignalType* current = type_of(value());
  const SignalType* incoming_type = type_of(v);
  if (current == nullptr || incoming_type == nullptr) {
    return ClassVar::can_change_value_to(v, incoming);
  }
  // ...otherwise only refinement toward a less abstract type is allowed.
  return incoming_type->is_less_abstract_than(*current);
}

}  // namespace stemcp::env
