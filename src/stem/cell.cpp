#include "stem/cell.h"

#include <algorithm>
#include <stdexcept>

#include "stem/library.h"
#include "stem/net.h"

namespace stemcp::env {

using core::Justification;
using core::Rect;
using core::Status;
using core::Transform;
using core::Value;
using core::Variable;

const char* to_string(SignalDirection d) {
  switch (d) {
    case SignalDirection::kInput: return "input";
    case SignalDirection::kOutput: return "output";
    case SignalDirection::kInOut: return "inout";
  }
  return "?";
}

const char* to_string(Side s) {
  switch (s) {
    case Side::kLeft: return "left";
    case Side::kBottom: return "bottom";
    case Side::kRight: return "right";
    case Side::kTop: return "top";
  }
  return "?";
}

Side opposite(Side s) {
  switch (s) {
    case Side::kLeft: return Side::kRight;
    case Side::kRight: return Side::kLeft;
    case Side::kTop: return Side::kBottom;
    case Side::kBottom: return Side::kTop;
  }
  return s;
}

namespace {

core::Point side_normal(Side s) {
  switch (s) {
    case Side::kLeft: return {-1, 0};
    case Side::kRight: return {1, 0};
    case Side::kTop: return {0, 1};
    case Side::kBottom: return {0, -1};
  }
  return {0, 0};
}

Side side_from_normal(core::Point n) {
  if (n.x < 0) return Side::kLeft;
  if (n.x > 0) return Side::kRight;
  if (n.y > 0) return Side::kTop;
  return Side::kBottom;
}

Justification implicit_just(StemVariable& source) {
  return Justification::propagated(source,
                                   core::DependencyRecord::single(source));
}

}  // namespace

// ---- IoSignal ----------------------------------------------------------------

IoSignal::IoSignal(CellClass& owner, std::string name, SignalDirection dir)
    : owner_(&owner), name_(std::move(name)), direction_(dir) {
  auto& ctx = owner.context();
  const std::string path = owner.name() + "." + name_;
  bit_width_ = std::make_unique<ClassBitWidthVar>(ctx, path, "bitWidth");
  data_type_ = std::make_unique<SignalTypeVar>(ctx, path, "dataType");
  electrical_type_ =
      std::make_unique<SignalTypeVar>(ctx, path, "electricalType");
}

void IoSignal::add_pin(core::Point position, Side side) {
  pins_.push_back({name_, position, side});
}

// ---- CellInstance -------------------------------------------------------------

CellInstance::CellInstance(CellClass& cls, CellClass* parent_cell,
                           std::string name, Transform transform)
    : cls_(&cls),
      parent_cell_(parent_cell),
      name_(std::move(name)),
      transform_(transform) {
  cls_->register_instance(*this);
  bbox_ = std::make_unique<InstanceBBoxVar>(
      cls_->context(), *this, cls_->bounding_box(), qualified_name());
  // Default the placement box from the class box when already known.
  const Value& cb = cls_->bounding_box().value();
  if (cb.is_rect()) {
    bbox_->set(Value(transform_.apply(cb.as_rect())),
               implicit_just(cls_->bounding_box()));
  }
}

CellInstance::~CellInstance() { cls_->unregister_instance(*this); }

std::string CellInstance::qualified_name() const {
  const std::string where =
      parent_cell_ != nullptr ? parent_cell_->name() : "<top>";
  return where + "/" + name_;
}

void CellInstance::set_transform(Transform t) {
  if (t == transform_) return;
  transform_ = t;
  // Re-derive the default placement box unless the designer pinned one.
  const Value& cb = cls_->bounding_box().value();
  if (cb.is_rect() && !bbox_->last_set_by().is_user()) {
    bbox_->set(Value(transform_.apply(cb.as_rect())),
               implicit_just(cls_->bounding_box()));
  } else if (parent_cell_ != nullptr) {
    parent_cell_->structure_edited();
  }
}

InstanceBitWidthVar& CellInstance::bit_width(const std::string& signal) {
  auto it = bit_widths_.find(signal);
  if (it != bit_widths_.end()) return *it->second;
  IoSignal* sig = cls_->find_signal(signal);
  if (sig == nullptr) {
    throw std::out_of_range("no signal '" + signal + "' on " + cls_->name());
  }
  auto var = std::make_unique<InstanceBitWidthVar>(
      cls_->context(), qualified_name(), "bitWidth(" + signal + ")",
      &sig->bit_width());
  InstanceBitWidthVar& ref = *var;
  bit_widths_.emplace(signal, std::move(var));
  if (sig->bit_width().value().is_int()) {
    ref.set(sig->bit_width().value(), implicit_just(sig->bit_width()));
  }
  return ref;
}

std::vector<InstanceBitWidthVar*> CellInstance::bit_width_variables() const {
  std::vector<InstanceBitWidthVar*> out;
  out.reserve(bit_widths_.size());
  for (const auto& [name, var] : bit_widths_) out.push_back(var.get());
  return out;
}

std::vector<InstanceParamVar*> CellInstance::parameter_variables() const {
  std::vector<InstanceParamVar*> out;
  out.reserve(params_.size());
  for (const auto& [name, var] : params_) out.push_back(var.get());
  return out;
}

InstanceParamVar& CellInstance::parameter(const std::string& name) {
  auto it = params_.find(name);
  if (it != params_.end()) return *it->second;
  ClassParamVar* cp = cls_->find_parameter(name);
  if (cp == nullptr) {
    throw std::out_of_range("no parameter '" + name + "' on " + cls_->name());
  }
  auto var = std::make_unique<InstanceParamVar>(
      cls_->context(), qualified_name(), "param(" + name + ")", cp);
  InstanceParamVar& ref = *var;
  params_.emplace(name, std::move(var));
  if (cp->has_value()) {
    ref.set(cp->value(), implicit_just(*cp));  // class default propagates
  }
  return ref;
}

InstanceDelayVar& CellInstance::delay(const std::string& from,
                                      const std::string& to) {
  const auto key = std::make_pair(from, to);
  auto it = delays_.find(key);
  if (it != delays_.end()) return *it->second;
  ClassDelayVar* cd = cls_->find_delay(from, to);
  if (cd == nullptr) {
    throw std::out_of_range("no declared delay " + from + "->" + to + " on " +
                            cls_->name());
  }
  auto var = std::make_unique<InstanceDelayVar>(cls_->context(), *this, *cd,
                                                qualified_name());
  InstanceDelayVar& ref = *var;
  delays_.emplace(key, std::move(var));
  if (cd->value().is_number()) {
    ref.set(Value(cd->value().as_number() + ref.rc_adjustment()),
            implicit_just(*cd));
  }
  return ref;
}

InstanceDelayVar* CellInstance::find_delay(const std::string& from,
                                           const std::string& to) const {
  auto it = delays_.find(std::make_pair(from, to));
  return it == delays_.end() ? nullptr : it->second.get();
}

std::vector<InstanceDelayVar*> CellInstance::delay_variables() const {
  std::vector<InstanceDelayVar*> out;
  out.reserve(delays_.size());
  for (const auto& [key, var] : delays_) out.push_back(var.get());
  return out;
}

Net* CellInstance::net_for(const std::string& signal) const {
  auto it = connections_.find(signal);
  return it == connections_.end() ? nullptr : it->second;
}

void CellInstance::note_connection(const std::string& signal, Net* net) {
  if (net == nullptr) {
    connections_.erase(signal);
  } else {
    connections_[signal] = net;
  }
}

std::vector<IoPin> CellInstance::placed_pins() const {
  std::vector<IoPin> out;
  for (const IoSignal* sig : cls_->all_signals()) {
    for (const IoPin& pin : sig->pins()) {
      const core::Point pos = transform_.apply(pin.position);
      const core::Point dir =
          transform_.apply(side_normal(pin.side)) - transform_.apply(core::Point{0, 0});
      out.push_back({pin.signal, pos, side_from_normal(dir)});
    }
  }
  return out;
}

std::vector<IoPin> CellInstance::stretched_pins() const {
  std::vector<IoPin> pins = placed_pins();
  const core::Value& iv = bbox_->value();
  if (!iv.is_rect()) return pins;
  const Rect box = iv.as_rect();
  for (IoPin& pin : pins) {
    // Project onto the placement boundary for the pin's (placed) side,
    // clamping the free coordinate into the box.
    switch (pin.side) {
      case Side::kLeft: pin.position.x = box.x0; break;
      case Side::kRight: pin.position.x = box.x1; break;
      case Side::kBottom: pin.position.y = box.y0; break;
      case Side::kTop: pin.position.y = box.y1; break;
    }
    pin.position.x = std::clamp(pin.position.x, box.x0, box.x1);
    pin.position.y = std::clamp(pin.position.y, box.y0, box.y1);
  }
  return pins;
}

// ---- CellClass -----------------------------------------------------------------

CellClass::CellClass(Library& lib, std::string name, CellClass* superclass)
    : library_(&lib), name_(std::move(name)), superclass_(superclass) {
  if (superclass_ != nullptr) superclass_->subclasses_.push_back(this);
  bbox_ = std::make_unique<ClassBBoxVar>(context(), *this, name_);
  bbox_->set_recalculate([this] {
    const Rect r = calculate_bounding_box();
    if (!r.empty()) bbox_->set(Value(r), Justification::application());
  });
}

CellClass::~CellClass() {
  invalidate_delay_networks();
  if (superclass_ != nullptr) {
    auto& sibs = superclass_->subclasses_;
    sibs.erase(std::remove(sibs.begin(), sibs.end(), this), sibs.end());
  }
}

core::PropagationContext& CellClass::context() const {
  return library_->context();
}

SignalTypeRegistry& CellClass::types() const { return library_->types(); }

std::vector<CellClass*> CellClass::all_subclasses() const {
  std::vector<CellClass*> out;
  for (CellClass* sub : subclasses_) {
    out.push_back(sub);
    const auto rest = sub->all_subclasses();
    out.insert(out.end(), rest.begin(), rest.end());
  }
  return out;
}

bool CellClass::is_descendant_of(const CellClass& other) const {
  for (const CellClass* c = this; c != nullptr; c = c->superclass_) {
    if (c == &other) return true;
  }
  return false;
}

IoSignal& CellClass::declare_signal(const std::string& name,
                                    SignalDirection dir) {
  // Duplicates within this class are errors; shadowing an *inherited*
  // signal is the specialization mechanism of §3.3.2.
  for (const auto& s : signals_) {
    if (s->name() == name) {
      throw std::invalid_argument("signal '" + name +
                                  "' already declared on " + name_);
    }
  }
  signals_.push_back(std::make_unique<IoSignal>(*this, name, dir));
  return *signals_.back();
}

IoSignal* CellClass::find_signal(const std::string& name) const {
  for (const auto& s : signals_) {
    if (s->name() == name) return s.get();
  }
  // Inherited interface (thesis §3.3.2: subclasses inherit instance
  // variables of the superclass).
  if (superclass_ != nullptr) return superclass_->find_signal(name);
  return nullptr;
}

IoSignal& CellClass::signal(const std::string& name) const {
  IoSignal* s = find_signal(name);
  if (s == nullptr) {
    throw std::out_of_range("no signal '" + name + "' on " + name_);
  }
  return *s;
}

std::vector<IoSignal*> CellClass::all_signals() const {
  std::vector<IoSignal*> out;
  for (const CellClass* c = this; c != nullptr; c = c->superclass_) {
    for (const auto& s : c->signals_) {
      const bool shadowed =
          std::any_of(out.begin(), out.end(), [&](const IoSignal* o) {
            return o->name() == s->name();
          });
      if (!shadowed) out.push_back(s.get());
    }
  }
  return out;
}

ClassParamVar& CellClass::declare_parameter(const std::string& name, double lo,
                                            double hi, Value default_value) {
  if (params_.count(name) != 0) {
    throw std::invalid_argument("parameter '" + name +
                                "' already declared on " + name_);
  }
  auto var = std::make_unique<ClassParamVar>(context(), name_,
                                             "param(" + name + ")");
  ClassParamVar& ref = *var;
  ref.set_range(lo, hi);
  params_.emplace(name, std::move(var));
  if (!default_value.is_nil()) {
    ref.set(std::move(default_value), Justification::default_value());
  }
  return ref;
}

ClassParamVar* CellClass::find_parameter(const std::string& name) const {
  auto it = params_.find(name);
  if (it != params_.end()) return it->second.get();
  if (superclass_ != nullptr) return superclass_->find_parameter(name);
  return nullptr;
}

CellInstance& CellClass::add_subcell(CellClass& cls, const std::string& name,
                                     Transform t) {
  subcells_.push_back(std::make_unique<CellInstance>(cls, this, name, t));
  structure_edited();
  return *subcells_.back();
}

void CellClass::remove_subcell(CellInstance& inst) {
  // Withdraw from every net first so the typing constraints shrink with
  // proper dependency-directed erasure.
  for (const auto& net : nets_) {
    const auto conns = net->connections();
    for (const NetConnection& c : conns) {
      if (c.instance == &inst) net->disconnect(inst, c.signal);
    }
  }
  subcells_.erase(std::remove_if(subcells_.begin(), subcells_.end(),
                                 [&](const std::unique_ptr<CellInstance>& p) {
                                   return p.get() == &inst;
                                 }),
                  subcells_.end());
  structure_edited();
}

CellInstance& CellClass::replace_subcell(CellInstance& inst,
                                         CellClass& realization) {
  // Capture the old instance's context.
  const std::string name = inst.name();
  const Transform t = inst.transform();
  const Value placement = inst.bounding_box().value();
  const bool placement_user = inst.bounding_box().last_set_by().is_user();
  std::vector<std::pair<Net*, std::string>> wiring;
  for (const IoSignal* sig : inst.cls().all_signals()) {
    if (Net* net = inst.net_for(sig->name())) {
      wiring.emplace_back(net, sig->name());
    }
  }
  remove_subcell(inst);

  CellInstance& fresh = add_subcell(realization, name, t);
  if (placement.is_rect() && placement_user) {
    fresh.bounding_box().set(placement, Justification::user());
  }
  for (const auto& [net, signal] : wiring) {
    if (realization.find_signal(signal) != nullptr) {
      net->connect(fresh, signal);
    }
  }
  return fresh;
}

CellInstance* CellClass::find_subcell(const std::string& name) const {
  for (const auto& s : subcells_) {
    if (s->name() == name) return s.get();
  }
  return nullptr;
}

Net& CellClass::add_net(const std::string& name) {
  nets_.push_back(std::make_unique<Net>(*this, name));
  return *nets_.back();
}

void CellClass::remove_net(Net& net) {
  // Drop the connections one by one for proper constraint updates.
  const auto conns = net.connections();
  for (const NetConnection& c : conns) {
    if (c.instance != nullptr) {
      net.disconnect(*c.instance, c.signal);
    } else {
      net.disconnect_io(c.signal);
    }
  }
  nets_.erase(std::remove_if(
                  nets_.begin(), nets_.end(),
                  [&](const std::unique_ptr<Net>& p) { return p.get() == &net; }),
              nets_.end());
  structure_edited();
}

Net* CellClass::find_net(const std::string& name) const {
  for (const auto& n : nets_) {
    if (n->name() == name) return n.get();
  }
  return nullptr;
}

void CellClass::register_instance(CellInstance& i) {
  instances_.push_back(&i);
}

void CellClass::unregister_instance(CellInstance& i) {
  instances_.erase(std::remove(instances_.begin(), instances_.end(), &i),
                   instances_.end());
}

Rect CellClass::calculate_bounding_box() const {
  Rect acc;
  for (const auto& sub : subcells_) {
    const Value& iv = sub->bounding_box().value();
    if (iv.is_rect()) {
      acc = acc.union_with(iv.as_rect());
      continue;
    }
    const Value& cb = sub->cls().bounding_box().demand();
    if (cb.is_rect()) {
      acc = acc.union_with(sub->transform().apply(cb.as_rect()));
    }
  }
  return acc;
}

// ---- delays ----------------------------------------------------------------------

ClassDelayVar& CellClass::declare_delay(const std::string& from,
                                        const std::string& to) {
  const auto key = std::make_pair(from, to);
  auto it = delays_.find(key);
  if (it != delays_.end()) return *it->second;
  if (find_signal(from) == nullptr || find_signal(to) == nullptr) {
    throw std::out_of_range("delay endpoints must be declared signals of " +
                            name_);
  }
  auto var = std::make_unique<ClassDelayVar>(context(), *this, from, to, name_);
  ClassDelayVar& ref = *var;
  delays_.emplace(key, std::move(var));
  return ref;
}

ClassDelayVar* CellClass::find_delay(const std::string& from,
                                     const std::string& to) const {
  auto it = delays_.find(std::make_pair(from, to));
  if (it != delays_.end()) return it->second.get();
  if (superclass_ != nullptr) return superclass_->find_delay(from, to);
  return nullptr;
}

std::vector<ClassDelayVar*> CellClass::delay_variables() const {
  std::vector<ClassDelayVar*> out;
  for (const CellClass* c = this; c != nullptr; c = c->superclass_) {
    for (const auto& [key, var] : c->delays_) {
      const bool shadowed =
          std::any_of(out.begin(), out.end(), [&](const ClassDelayVar* o) {
            return o->from() == var->from() && o->to() == var->to();
          });
      if (!shadowed) out.push_back(var.get());
    }
  }
  return out;
}

Status CellClass::set_leaf_delay(const std::string& from,
                                 const std::string& to, double seconds) {
  ClassDelayVar& var = declare_delay(from, to);
  return var.set(Value(seconds), Justification::application());
}

void CellClass::enumerate_paths(
    const std::string& from_signal, Net* net, const std::string& to_signal,
    std::vector<InstanceDelayVar*>& prefix,
    std::vector<const Net*>& nets_on_path,
    std::vector<std::vector<InstanceDelayVar*>>& out) const {
  if (net == nullptr) return;
  if (std::find(nets_on_path.begin(), nets_on_path.end(), net) !=
      nets_on_path.end()) {
    return;  // combinational loop guard
  }
  nets_on_path.push_back(net);
  for (const NetConnection& c : net->connections()) {
    if (c.instance == nullptr) {
      // Reached the destination io-signal: a complete delay path.
      if (c.signal == to_signal && !prefix.empty()) out.push_back(prefix);
      continue;
    }
    CellInstance& inst = *c.instance;
    // Only subcell delays with declared class delay variables participate
    // (thesis §7.3: the designer focuses attention on critical paths).
    for (ClassDelayVar* cd : inst.cls().delay_variables()) {
      if (cd->from() != c.signal) continue;
      InstanceDelayVar& idv = inst.delay(cd->from(), cd->to());
      prefix.push_back(&idv);
      enumerate_paths(from_signal, inst.net_for(cd->to()), to_signal, prefix,
                      nets_on_path, out);
      prefix.pop_back();
    }
  }
  nets_on_path.pop_back();
}

std::vector<std::vector<InstanceDelayVar*>> CellClass::delay_paths(
    const std::string& from, const std::string& to) const {
  std::vector<std::vector<InstanceDelayVar*>> out;
  const IoSignal* src = find_signal(from);
  if (src == nullptr || src->internal_net() == nullptr) return out;
  std::vector<InstanceDelayVar*> prefix;
  std::vector<const Net*> nets_on_path;
  enumerate_paths(from, src->internal_net(), to, prefix, nets_on_path, out);
  return out;
}

CellClass::CriticalPath CellClass::critical_path(const std::string& from,
                                                 const std::string& to) const {
  CriticalPath best;
  for (auto& path : delay_paths(from, to)) {
    double sum = 0.0;
    bool complete = true;
    for (const InstanceDelayVar* d : path) {
      if (!d->value().is_number()) {
        complete = false;
        break;
      }
      sum += d->value().as_number();
    }
    if (!complete) continue;
    if (best.total.is_nil() || sum > best.total.as_number()) {
      best.path = std::move(path);
      best.total = Value(sum);
    }
  }
  return best;
}

void CellClass::build_delay_networks() {
  invalidate_delay_networks();
  auto& ctx = context();

  // Refresh context-adjusted instance delays of every subcell whose class
  // delay characteristics are already known (RC adjustments depend on the
  // now-complete connectivity).
  for (const auto& sub : subcells_) {
    for (ClassDelayVar* cd : sub->cls().delay_variables()) {
      if (!cd->value().is_number()) continue;
      InstanceDelayVar& idv = sub->delay(cd->from(), cd->to());
      const Value adjusted(cd->value().as_number() + idv.rc_adjustment());
      if (idv.value() != adjusted) idv.set(adjusted, implicit_just(*cd));
    }
  }

  // One UniAddition per path, one UniMaximum per class delay (thesis
  // Fig 7.12).
  for (const auto& [key, cdv] : delays_) {
    const auto paths = delay_paths(key.first, key.second);
    if (paths.empty()) continue;
    std::vector<Variable*> path_vars;
    int index = 0;
    for (const auto& path : paths) {
      auto pv = std::make_unique<StemVariable>(
          ctx, name_,
          "delayPath" + std::to_string(index++) + "(" + key.first + "->" +
              key.second + ")");
      auto& add = ctx.make<core::UniAdditionConstraint>();
      add.set_result(*pv);
      for (InstanceDelayVar* idv : path) add.basic_add_argument(*idv);
      delay_constraints_.push_back(&add);
      add.reinitialize_variables();
      path_vars.push_back(pv.get());
      delay_aux_vars_.push_back(std::move(pv));
    }
    auto& mx = ctx.make<core::UniMaximumConstraint>();
    mx.set_result(*cdv);
    for (Variable* pv : path_vars) mx.basic_add_argument(*pv);
    delay_constraints_.push_back(&mx);
    mx.reinitialize_variables();
  }
  delay_networks_built_ = true;
}

void CellClass::invalidate_delay_networks() {
  auto& ctx = context();
  // Reverse creation order: maxima first, then the path adders.
  for (auto it = delay_constraints_.rbegin(); it != delay_constraints_.rend();
       ++it) {
    ctx.destroy_constraint(**it);
  }
  delay_constraints_.clear();
  delay_aux_vars_.clear();
  delay_networks_built_ = false;
}

// ---- change management ---------------------------------------------------------------

void CellClass::structure_edited() {
  if (delay_networks_built_) invalidate_delay_networks();
  if (bbox_->has_value() && !bbox_->last_set_by().is_user()) {
    bbox_->set(Value::nil(), Justification::update());
  }
  changed(kChangedStructure);
}

void CellClass::on_changed(const std::string& key) {
  if (broadcasting_up_) return;
  broadcasting_up_ = true;
  // Changes propagate up the design hierarchy to the cells containing
  // instances of this cell (thesis §6.5.2).
  for (CellInstance* inst : instances_) {
    if (inst->parent_cell() != nullptr) inst->parent_cell()->changed(key);
  }
  broadcasting_up_ = false;
}

// ---- module selection (thesis ch. 8) ---------------------------------------------------

bool CellClass::valid_bbox_for(CellInstance& inst) {
  ++library_->selection_stats().bbox_checks;
  const Value cb = bounding_box().demand();
  if (!cb.is_rect()) return true;  // no geometry information yet
  const Rect required = inst.transform().apply(cb.as_rect());
  const Value& iv = inst.bounding_box().value();
  if (!iv.is_rect()) {
    // Unplaced: can the default placement be assumed without violating
    // area/aspect constraints?
    return inst.bounding_box().can_be_set_to(Value(required));
  }
  return iv.as_rect().extent_covers(required);
}

bool CellClass::valid_signals_for(CellInstance& inst) {
  ++library_->selection_stats().signal_checks;
  for (IoSignal* gsig : inst.cls().all_signals()) {
    IoSignal* mine = find_signal(gsig->name());
    if (mine == nullptr) return false;
    const Value& iw = inst.bit_width(gsig->name()).value();
    const Value& cw = mine->bit_width().value();
    if (iw.is_int() && cw.is_int() && iw != cw) return false;
    Net* net = inst.net_for(gsig->name());
    if (net == nullptr) continue;
    const Value& nw = net->bit_width().value();
    if (nw.is_int() && cw.is_int() && nw != cw) return false;
    const SignalType* nd = type_of(net->data_type().value());
    const SignalType* md = type_of(mine->data_type().value());
    if (nd != nullptr && md != nullptr && !nd->is_compatible_with(*md)) {
      return false;
    }
    const SignalType* ne = type_of(net->electrical_type().value());
    const SignalType* me = type_of(mine->electrical_type().value());
    if (ne != nullptr && me != nullptr && !ne->is_compatible_with(*me)) {
      return false;
    }
  }
  return true;
}

core::Value CellClass::adjusted_delay_for(const std::string& from,
                                          const std::string& to,
                                          const CellInstance& context_inst) {
  ClassDelayVar* cd = find_delay(from, to);
  if (cd == nullptr) return Value::nil();
  const Value& v = cd->demand();
  if (!v.is_number()) return Value::nil();
  double adj = 0.0;
  if (const IoSignal* to_sig = find_signal(to)) {
    if (const Net* out_net = context_inst.net_for(to)) {
      adj += to_sig->output_resistance() *
             out_net->total_load_capacitance(&context_inst, to);
    }
  }
  return Value(v.as_number() + adj);
}

bool CellClass::valid_delays_for(CellInstance& inst) {
  ++library_->selection_stats().delay_checks;
  for (InstanceDelayVar* dv : inst.delay_variables()) {
    const Value nd = adjusted_delay_for(dv->class_delay().from(),
                                        dv->class_delay().to(), inst);
    if (!nd.is_number()) continue;  // candidate uncharacterized: cannot test
    if (!dv->can_be_set_to(nd)) return false;
  }
  return true;
}

bool CellClass::is_valid_realization_for(
    CellInstance& inst, const std::vector<std::string>& priorities) {
  ++library_->selection_stats().candidates_tested;
  static const std::vector<std::string> kAll = {"bBox", "signals", "delays"};
  const auto& order = priorities.empty() ? kAll : priorities;
  for (const std::string& symbol : order) {
    if (symbol == "bBox") {
      if (!valid_bbox_for(inst)) return false;
    } else if (symbol == "signals") {
      if (!valid_signals_for(inst)) return false;
    } else if (symbol == "delays") {
      if (!valid_delays_for(inst)) return false;
    } else {
      throw std::invalid_argument("unknown selection property: " + symbol);
    }
  }
  return true;
}

std::vector<CellClass*> CellClass::select_realizations_for(
    CellInstance& inst, const std::vector<std::string>& priorities) {
  if (!is_generic()) return {this};
  std::vector<CellClass*> out;
  for (CellClass* sub : subclasses_) {
    const auto found = sub->valid_realizations_for(inst, priorities);
    out.insert(out.end(), found.begin(), found.end());
  }
  return out;
}

std::vector<CellClass*> CellClass::valid_realizations_for(
    CellInstance& inst, const std::vector<std::string>& priorities) {
  if (is_generic()) {
    // Prune the search tree by testing generic cells as well (thesis
    // Fig 8.3): a generic cell carries the best-case characteristics of its
    // descendants, so failing here rules out the whole subtree.
    if (is_valid_realization_for(inst, priorities)) {
      return select_realizations_for(inst, priorities);
    }
    return {};
  }
  if (is_valid_realization_for(inst, priorities)) return {this};
  return {};
}

std::vector<CellClass*> CellClass::valid_realizations_unpruned(
    CellInstance& inst, const std::vector<std::string>& priorities) {
  std::vector<CellClass*> out;
  std::vector<CellClass*> candidates = all_subclasses();
  if (!is_generic()) candidates.insert(candidates.begin(), this);
  for (CellClass* c : candidates) {
    if (c->is_generic()) continue;
    if (c->is_valid_realization_for(inst, priorities)) out.push_back(c);
  }
  return out;
}

}  // namespace stemcp::env
