// Constraint editor/inspector (thesis §5.4, Fig 5.4): walk a network of
// constraints and variables, trace antecedents and consequences, dump the
// network for display, toggle propagation, and restore the last
// propagation's variables.  This is the textual equivalent of STEM's
// editor windows.
#pragma once

#include <deque>
#include <ostream>
#include <string>
#include <vector>

#include "core/core.h"

namespace stemcp::env {

class ConstraintInspector {
 public:
  explicit ConstraintInspector(core::PropagationContext& ctx) : ctx_(&ctx) {}

  /// One-line variable rendering: path, value, justification
  /// (the thesis's prevValue / lastSetBy fields).
  static std::string describe(const core::Variable& v);
  /// Constraint rendering with its argument list.
  static std::string describe(const core::Propagatable& c);

  /// All constraints associated with a variable (explicit and implicit).
  static std::vector<const core::Propagatable*> constraints_of(
      const core::Variable& v);

  /// Multi-line antecedent trace of a variable's value (thesis Fig 4.11).
  static std::string antecedent_report(const core::Variable& v);
  /// Multi-line consequence trace (thesis Fig 4.12).
  static std::string consequence_report(const core::Variable& v);

  /// Graphviz DOT rendering of the network reachable from `roots`
  /// (variables as ellipses, constraints as boxes — thesis Fig 4.5's
  /// drawing convention).
  static std::string to_dot(const std::vector<const core::Variable*>& roots);

  /// The "debug" option of the thesis's violation prompt (§5.2): a handler
  /// that writes a constraint-debugger report — the violation, the rejecting
  /// variable's constraints, and the antecedents of its current value — to
  /// `out` before the engine performs its standard restore ("proceed").
  static core::PropagationContext::ViolationHandler debugging_handler(
      std::ostream& out);

  // ---- editor actions ----------------------------------------------------
  void disable_propagation() { ctx_->set_enabled(false); }
  void enable_propagation() { ctx_->set_enabled(true); }
  bool propagation_enabled() const { return ctx_->enabled(); }
  /// Restore all variables visited by the last propagation to their
  /// original states.
  void restore_last_propagation() { ctx_->restore_visited(); }
  /// The violation warnings accumulated so far (the default text window).
  const std::deque<std::string>& warnings() const {
    return ctx_->violation_log();
  }

 private:
  core::PropagationContext* ctx_;
};

}  // namespace stemcp::env
