// Design database persistence: a line-oriented textual format for cell
// libraries (the role STEM's Smalltalk image/file-out played).
//
// The writer emits cells in definition order (leaf-first by construction);
// the reader rebuilds classes, interfaces, user-entered characteristics,
// structure and delay specifications, re-instantiating the implied
// constraint networks as it goes — loading a design re-checks it.
#pragma once

#include <iosfwd>
#include <string>

#include "stem/library.h"

namespace stemcp::env {

class LibraryWriter {
 public:
  /// Serialize every cell of the library.
  static void write(const Library& lib, std::ostream& out);
  static std::string to_string(const Library& lib);
};

class LibraryReader {
 public:
  /// Parse into `lib` (which supplies the context and type registry).
  /// Throws std::runtime_error carrying the line number and the offending
  /// line's text on malformed input.  The load is transactional (strong
  /// guarantee) in both directions: an empty `lib` is parsed into a scratch
  /// library and swapped in only on success, and an append into a non-empty
  /// `lib` rolls back the cells and constraints it created if the parse
  /// fails mid-file — either way a parse error leaves `lib` as it was.
  static void read(Library& lib, std::istream& in);
  static void read_string(Library& lib, const std::string& text);
};

}  // namespace stemcp::env
