// Design database persistence: a line-oriented textual format for cell
// libraries (the role STEM's Smalltalk image/file-out played).
//
// The writer emits cells in definition order (leaf-first by construction);
// the reader rebuilds classes, interfaces, user-entered characteristics,
// structure and delay specifications, re-instantiating the implied
// constraint networks as it goes — loading a design re-checks it.
#pragma once

#include <iosfwd>
#include <string>

#include "stem/library.h"

namespace stemcp::env {

class LibraryWriter {
 public:
  /// Serialize every cell of the library.
  static void write(const Library& lib, std::ostream& out);
  static std::string to_string(const Library& lib);
};

class LibraryReader {
 public:
  /// Parse into `lib` (which supplies the context and type registry).
  /// Throws std::runtime_error with a line number on malformed input.
  static void read(Library& lib, std::istream& in);
  static void read_string(Library& lib, const std::string& text);
};

}  // namespace stemcp::env
