#include "stem/editor.h"

#include <map>
#include <set>
#include <sstream>

namespace stemcp::env {

using core::DependencyTrace;
using core::Propagatable;
using core::Variable;

std::string ConstraintInspector::describe(const Variable& v) {
  return v.to_string();
}

core::PropagationContext::ViolationHandler
ConstraintInspector::debugging_handler(std::ostream& out) {
  return [&out](const core::ViolationInfo& info) {
    out << "=== constraint violation ===\n" << info.to_string() << '\n';
    if (info.variable != nullptr) {
      out << "constraints on " << info.variable->path() << ":\n";
      for (const Propagatable* c : constraints_of(*info.variable)) {
        out << "  " << c->describe() << '\n';
      }
      out << antecedent_report(*info.variable);
    }
    out << "(proceeding: visited variables will be restored)\n";
  };
}

std::string ConstraintInspector::describe(const Propagatable& c) {
  return c.describe();
}

std::vector<const Propagatable*> ConstraintInspector::constraints_of(
    const Variable& v) {
  std::vector<const Propagatable*> out;
  for (const Propagatable* c : v.constraints()) out.push_back(c);
  for (const Propagatable* c : v.implicit_constraints()) out.push_back(c);
  return out;
}

std::string ConstraintInspector::antecedent_report(const Variable& v) {
  std::ostringstream os;
  os << "antecedents of " << describe(v) << ":\n";
  const DependencyTrace t = v.antecedents();
  for (const Variable* var : t.variables) {
    if (var != &v) os << "  var  " << describe(*var) << '\n';
  }
  for (const Propagatable* c : t.constraints) {
    os << "  cons " << c->describe() << '\n';
  }
  return os.str();
}

std::string ConstraintInspector::consequence_report(const Variable& v) {
  std::ostringstream os;
  os << "consequences of " << describe(v) << ":\n";
  const DependencyTrace t = v.consequences();
  for (const Variable* var : t.variables) {
    if (var != &v) os << "  var  " << describe(*var) << '\n';
  }
  return os.str();
}

std::string ConstraintInspector::to_dot(
    const std::vector<const Variable*>& roots) {
  // Breadth-first walk over the bipartite variable/constraint graph.
  std::set<const Variable*> vars;
  std::set<const Propagatable*> cons;
  std::vector<const Variable*> queue(roots.begin(), roots.end());
  while (!queue.empty()) {
    const Variable* v = queue.back();
    queue.pop_back();
    if (!vars.insert(v).second) continue;
    for (const Propagatable* p : constraints_of(*v)) cons.insert(p);
  }
  // Second pass: pull in every argument of the discovered constraints.
  // (Constraints know their arguments only through the Constraint subclass;
  // fall back to dynamic_cast.)
  bool grew = true;
  while (grew) {
    grew = false;
    for (const Propagatable* p : cons) {
      const auto* c = dynamic_cast<const core::Constraint*>(p);
      if (c == nullptr) continue;
      for (const Variable* arg : c->arguments()) {
        if (vars.insert(arg).second) {
          grew = true;
          for (const Propagatable* pc : constraints_of(*arg)) {
            cons.insert(pc);
          }
        }
      }
    }
  }

  std::ostringstream os;
  os << "digraph constraints {\n  rankdir=LR;\n";
  std::map<const void*, std::string> id;
  int n = 0;
  for (const Variable* v : vars) {
    id[v] = "v" + std::to_string(n++);
    os << "  " << id[v] << " [shape=ellipse, label=\"" << v->path() << "\\n"
       << v->value().to_string() << "\"];\n";
  }
  for (const Propagatable* p : cons) {
    id[p] = "c" + std::to_string(n++);
    os << "  " << id[p] << " [shape=box, label=\"" << p->describe()
       << "\"];\n";
  }
  for (const Propagatable* p : cons) {
    const auto* c = dynamic_cast<const core::Constraint*>(p);
    if (c == nullptr) continue;
    for (const Variable* arg : c->arguments()) {
      if (id.count(arg) != 0) {
        os << "  " << id[arg] << " -> " << id[p] << " [dir=both];\n";
      }
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace stemcp::env
