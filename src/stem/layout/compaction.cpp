#include "stem/layout/compaction.h"

#include <algorithm>
#include <limits>

#include "stem/cell.h"

namespace stemcp::env::layout {

using core::Coord;

NodeId CompactionGraph::add_node(std::string name) {
  names_.push_back(std::move(name));
  return static_cast<NodeId>(names_.size() - 1);
}

void CompactionGraph::add_spacing(NodeId from, NodeId to, Coord d) {
  edges_.push_back({from, to, d});
}

void CompactionGraph::pin(NodeId node, Coord x) {
  add_spacing(0, node, x);   // x(node) >= x
  add_spacing(node, 0, -x);  // x(node) <= x
}

std::optional<CompactionGraph::Solution> CompactionGraph::compact() const {
  // Bellman-Ford longest path from the left edge.  Layout graphs are almost
  // DAGs; the negative edges introduced by pins/maximum-spacing keep the
  // general algorithm (V*E) — still polynomial and, crucially, *dedicated*:
  // no per-assignment bookkeeping, no agenda, no dependency records.
  const std::size_t n = names_.size();
  constexpr Coord kMinusInf = std::numeric_limits<Coord>::min() / 4;
  std::vector<Coord> dist(n, kMinusInf);
  dist[0] = 0;
  bool changed = true;
  for (std::size_t pass = 0; pass < n && changed; ++pass) {
    changed = false;
    for (const SpacingEdge& e : edges_) {
      const auto from = static_cast<std::size_t>(e.from);
      const auto to = static_cast<std::size_t>(e.to);
      if (dist[from] == kMinusInf) continue;
      const Coord candidate = dist[from] + e.min_spacing;
      if (candidate > dist[to]) {
        dist[to] = candidate;
        changed = true;
      }
    }
  }
  if (changed) {
    // One more relaxing pass possible: positive cycle, over-constrained.
    for (const SpacingEdge& e : edges_) {
      const auto from = static_cast<std::size_t>(e.from);
      const auto to = static_cast<std::size_t>(e.to);
      if (dist[from] != kMinusInf &&
          dist[from] + e.min_spacing > dist[to]) {
        return std::nullopt;
      }
    }
  }
  Solution s;
  s.position.resize(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    s.position[i] = dist[i] == kMinusInf ? 0 : dist[i];
    s.width = std::max(s.width, s.position[i]);
  }
  return s;
}

bool CompactionGraph::satisfied_by(
    const std::vector<Coord>& position) const {
  for (const SpacingEdge& e : edges_) {
    const auto from = static_cast<std::size_t>(e.from);
    const auto to = static_cast<std::size_t>(e.to);
    if (from >= position.size() || to >= position.size()) return false;
    if (position[to] - position[from] < e.min_spacing) return false;
  }
  return true;
}

namespace {

core::Rect placement_of(const CellInstance& inst) {
  const core::Value& iv = inst.bounding_box().value();
  if (iv.is_rect()) return iv.as_rect();
  const core::Value& cb = inst.cls().bounding_box().value();
  if (cb.is_rect()) return inst.transform().apply(cb.as_rect());
  return core::Rect{};
}

bool overlaps_vertically(const core::Rect& a, const core::Rect& b) {
  return !a.empty() && !b.empty() && a.y0 <= b.y1 && b.y0 <= a.y1;
}

}  // namespace

CompactionGraph derive_horizontal_graph(const env::CellClass& cell,
                                        core::Coord min_spacing) {
  CompactionGraph g;
  std::vector<core::Rect> boxes;
  std::vector<NodeId> nodes;
  for (const auto& sub : cell.subcells()) {
    boxes.push_back(placement_of(*sub));
    nodes.push_back(g.add_node(sub->name()));
    // Everything sits right of the cell's left edge.
    g.add_spacing(0, nodes.back(), 0);
  }
  for (std::size_t i = 0; i < boxes.size(); ++i) {
    for (std::size_t j = 0; j < boxes.size(); ++j) {
      if (i == j || boxes[i].empty() || boxes[j].empty()) continue;
      if (!overlaps_vertically(boxes[i], boxes[j])) continue;
      if (boxes[i].x0 < boxes[j].x0 ||
          (boxes[i].x0 == boxes[j].x0 && i < j)) {
        // i left of j: keep that order with min spacing between the
        // facing edges (edge weight covers i's width).
        g.add_spacing(nodes[i], nodes[j], boxes[i].width() + min_spacing);
      }
    }
  }
  return g;
}

void apply_horizontal_positions(env::CellClass& cell,
                                const CompactionGraph::Solution& solution) {
  std::size_t index = 1;  // node 0 is the left edge
  for (const auto& sub : cell.subcells()) {
    if (index >= solution.position.size()) break;
    const core::Rect box = placement_of(*sub);
    const core::Coord dx = solution.position[index] - box.x0;
    ++index;
    if (dx == 0) continue;
    const core::Transform moved =
        sub->transform().then(core::Transform::translate({dx, 0}));
    sub->set_transform(moved);
  }
}

namespace {

bool overlaps_horizontally(const core::Rect& a, const core::Rect& b) {
  return !a.empty() && !b.empty() && a.x0 <= b.x1 && b.x0 <= a.x1;
}

}  // namespace

CompactionGraph derive_vertical_graph(const env::CellClass& cell,
                                      core::Coord min_spacing) {
  CompactionGraph g;
  std::vector<core::Rect> boxes;
  std::vector<NodeId> nodes;
  for (const auto& sub : cell.subcells()) {
    boxes.push_back(placement_of(*sub));
    nodes.push_back(g.add_node(sub->name()));
    g.add_spacing(0, nodes.back(), 0);
  }
  for (std::size_t i = 0; i < boxes.size(); ++i) {
    for (std::size_t j = 0; j < boxes.size(); ++j) {
      if (i == j || boxes[i].empty() || boxes[j].empty()) continue;
      if (!overlaps_horizontally(boxes[i], boxes[j])) continue;
      if (boxes[i].y0 < boxes[j].y0 ||
          (boxes[i].y0 == boxes[j].y0 && i < j)) {
        g.add_spacing(nodes[i], nodes[j], boxes[i].height() + min_spacing);
      }
    }
  }
  return g;
}

void apply_vertical_positions(env::CellClass& cell,
                              const CompactionGraph::Solution& solution) {
  std::size_t index = 1;
  for (const auto& sub : cell.subcells()) {
    if (index >= solution.position.size()) break;
    const core::Rect box = placement_of(*sub);
    const core::Coord dy = solution.position[index] - box.y0;
    ++index;
    if (dy == 0) continue;
    sub->set_transform(
        sub->transform().then(core::Transform::translate({0, dy})));
  }
}

bool compact_both(env::CellClass& cell, core::Coord min_spacing) {
  const auto x = derive_horizontal_graph(cell, min_spacing).compact();
  if (!x) return false;
  apply_horizontal_positions(cell, *x);
  const auto y = derive_vertical_graph(cell, min_spacing).compact();
  if (!y) return false;
  apply_vertical_positions(cell, *y);
  return true;
}

}  // namespace stemcp::env::layout
