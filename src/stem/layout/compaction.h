// Graph-based layout compaction — the specialized baseline the thesis
// compares its framework against (§2.1.1 Electric, §7.4, §9.2.3):
//
//   "For large and dense networks like layout constraints, specialized data
//    structures ... and problem specific algorithms, such as graph based
//    compaction algorithms, are required to achieve the necessary
//    performance."
//
// This is that algorithm: one-dimensional compaction over a constraint
// graph of minimum-spacing edges (x_j - x_i >= d), solved by a longest-path
// sweep over a topological order.  `bench_layout_compaction` races it
// against the same problem expressed as general constraints solved by
// relaxation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/geometry.h"

namespace stemcp::env {
class CellClass;
}

namespace stemcp::env::layout {

using NodeId = std::int32_t;

struct SpacingEdge {
  NodeId from = 0;
  NodeId to = 0;
  core::Coord min_spacing = 0;  ///< x(to) - x(from) >= min_spacing
};

/// One-dimensional compaction constraint graph.
class CompactionGraph {
 public:
  /// Add a layout object; returns its node id.  Node 0 is the implicit
  /// left edge of the cell (x = 0).
  NodeId add_node(std::string name);
  /// x(to) - x(from) >= d.
  void add_spacing(NodeId from, NodeId to, core::Coord d);
  /// Pin a node at an exact position (equality = two opposing edges).
  void pin(NodeId node, core::Coord x);

  std::size_t node_count() const { return names_.size(); }
  std::size_t edge_count() const { return edges_.size(); }
  const std::string& name(NodeId n) const {
    return names_[static_cast<std::size_t>(n)];
  }

  struct Solution {
    std::vector<core::Coord> position;  ///< per node, maximally compacted
    core::Coord width = 0;              ///< rightmost position
  };

  /// Longest-path compaction: every node at the smallest position
  /// satisfying all spacings (left-justified).  Returns nullopt if the
  /// graph has a positive cycle (over-constrained).
  std::optional<Solution> compact() const;

  /// Verify a candidate assignment against every edge.
  bool satisfied_by(const std::vector<core::Coord>& position) const;

  const std::vector<SpacingEdge>& edges() const { return edges_; }

 private:
  std::vector<std::string> names_{"<left-edge>"};
  std::vector<SpacingEdge> edges_;
};

/// Build a horizontal compaction graph from a cell's placed subcells: any
/// two placements that overlap vertically get a min-spacing edge ordered by
/// their current x positions (the design-rule extraction step of
/// graph-based compactors).  Node i+1 corresponds to subcells()[i].
CompactionGraph derive_horizontal_graph(const env::CellClass& cell,
                                        core::Coord min_spacing);

/// Apply a compaction solution back onto the subcells' transforms
/// (preserving each placement's y).
void apply_horizontal_positions(env::CellClass& cell,
                                const CompactionGraph::Solution& solution);

/// The symmetric vertical pass: overlap in x produces y-ordering edges.
CompactionGraph derive_vertical_graph(const env::CellClass& cell,
                                      core::Coord min_spacing);
void apply_vertical_positions(env::CellClass& cell,
                              const CompactionGraph::Solution& solution);

/// Classic 1.5-D compaction: an x pass followed by a y pass, applied in
/// place.  Returns false if either direction is over-constrained.
bool compact_both(env::CellClass& cell, core::Coord min_spacing);

}  // namespace stemcp::env::layout
