// Design documentation reports.
//
// The thesis argues constraints double as documentation: they "provide
// documentation for design intentions, as opposed to incidental design
// characteristics" (ch. 6).  This report generator renders that
// documentation — a cell's interface, structure, characteristics,
// specifications and current critical path — as text, the way STEM's
// browsers presented it.
#pragma once

#include <string>

#include "stem/cell.h"
#include "stem/library.h"

namespace stemcp::env {

class DesignReport {
 public:
  struct Options {
    bool include_structure = true;   ///< subcells and nets
    bool include_delays = true;      ///< delay variables, paths, specs
    bool include_signals = true;     ///< typing and electrical model
    bool include_violations = true;  ///< unsatisfied constraints
    bool include_propagation_stats = false;  ///< engine counter section
  };

  /// Render one cell.
  static std::string cell(CellClass& c, const Options& options);
  static std::string cell(CellClass& c) { return cell(c, Options{}); }

  /// Render the whole library (a table of contents plus every cell).
  static std::string library(Library& lib, const Options& options);
  static std::string library(Library& lib) {
    return library(lib, Options{});
  }

  /// The propagation-statistics section on its own (also used by the
  /// constraint shell's `stats` command consumers).
  static std::string propagation_stats(const core::PropagationContext& ctx);
};

}  // namespace stemcp::env
