// Hierarchical constraint propagation (thesis ch. 5).
//
// STEM's dual declaration of instance variables — one variable on the cell
// class (characterizing the internal structure) and one per cell instance
// (characterizing each use) — turns the variables themselves into *implicit
// constraints* on their duals.  These variable-constraints respond to the
// full Propagatable protocol and schedule themselves on the dedicated
// #implicitConstraints agenda (thesis §5.1.2; drained ahead of functional
// work in this implementation — see core/agenda.cpp), so internal networks
// propagate only once regardless of the number of instances (thesis
// Fig 5.1).
#pragma once

#include <functional>
#include <vector>

#include "core/core.h"

namespace stemcp::env {

/// Base for every design-environment variable: a core Variable that also
/// implements the Propagatable protocol (`ImplicitConstraintVariable` of
/// thesis §5.1.1) and supports lazy recalculation (`PropertyVariable` of
/// thesis Fig 6.1).
class StemVariable : public core::Variable, public core::Propagatable {
 public:
  using core::Variable::Variable;

  // ---- Propagatable protocol (the "implicit constraint" half) -----------
  /// Schedule on #implicitConstraints with the changed dual recorded
  /// (thesis Fig 5.3).
  core::Status propagate_variable(core::Variable& changed) override;
  /// Deferred hierarchical inference.
  core::Status propagate_scheduled(core::Variable* changed) override;
  /// `immediateInferenceByChanging:` for the hierarchical link; default: no
  /// value flows (pure consistency checking).
  virtual core::Status immediate_inference_by_changing(core::Variable& changed);
  /// `permitChangesByImplicitPropagation` — default true (thesis Fig 5.3).
  virtual bool permit_changes_by_implicit_propagation(
      const core::Variable& changed) const;
  bool is_satisfied() const override { return true; }
  std::string describe() const override;

  // Dependency analysis across the hierarchical link.
  void antecedents_of(const core::Variable& var,
                      core::DependencyTrace& out) const override;
  void consequences_of(const core::Variable& var,
                       core::DependencyTrace& out) const override;

  /// The dual variables on the other side of the class/instance link.
  virtual std::vector<core::Variable*> duals() const { return {}; }

  // ---- PropertyVariable machinery (thesis Fig 6.1) -----------------------
  /// Recalculation action invoked by demand() when the value is nil.  The
  /// action is expected to assign the variable (typically with
  /// #APPLICATION justification), which triggers normal propagation.
  using Recalculate = std::function<void()>;
  void set_recalculate(Recalculate r) { recalculate_ = std::move(r); }
  bool has_recalculate() const { return static_cast<bool>(recalculate_); }

  /// Demand-driven value access: if the stored value is nil and a
  /// recalculation is installed, run it (guarded against recursive
  /// evaluation by the evalFlag and suppressed while a propagation session
  /// is active).
  const core::Value& demand();

 private:
  Recalculate recalculate_;
  bool evaluating_ = false;  // the thesis's evalFlag loop guard
};

/// Class-side dual variable: one per cell-class property/parameter/signal
/// attribute ("ClassInstVar").  Maintains the registry of its instance-side
/// duals.
class ClassVar : public StemVariable {
 public:
  using StemVariable::StemVariable;

  std::vector<core::Variable*> duals() const override;
  std::vector<core::Propagatable*> implicit_constraints() const override;

  void register_dual(class InstanceVar& v);
  void unregister_dual(class InstanceVar& v);
  const std::vector<class InstanceVar*>& instance_duals() const {
    return instances_;
  }

 private:
  std::vector<class InstanceVar*> instances_;
};

/// Instance-side dual variable ("InstanceInstVar").  Automatically
/// registers with its class-side dual for its lifetime.
class InstanceVar : public StemVariable {
 public:
  InstanceVar(core::PropagationContext& ctx, std::string parent_name,
              std::string name, ClassVar* dual);
  ~InstanceVar() override;

  ClassVar* class_dual() const { return dual_; }
  std::vector<core::Variable*> duals() const override;
  std::vector<core::Propagatable*> implicit_constraints() const override;

 private:
  ClassVar* dual_;
};

}  // namespace stemcp::env
