// ConstraintShell: a command interpreter over the constraint inspector —
// the scriptable equivalent of STEM's constraint editor windows (thesis
// §5.4): walk networks, assign values, trace dependencies, toggle
// propagation, restore.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "stem/editor.h"

namespace stemcp::env {

class ConstraintShell {
 public:
  explicit ConstraintShell(core::PropagationContext& ctx)
      : ctx_(&ctx), inspector_(ctx) {}

  /// Make a variable addressable by its path ("ADDER.delay(a->out)") or an
  /// explicit alias.
  void register_variable(core::Variable& v);
  void register_variable(const std::string& alias, core::Variable& v);

  /// Execute one command line; returns the textual response.  Unknown
  /// commands return usage help; errors are reported as text, never thrown.
  ///
  ///   show <var>            value + justification
  ///   set <var> <number>    user assignment (reports violations)
  ///   probe <var> <number>  canBeSetTo — no side effects
  ///   constraints <var>     attached constraints
  ///   antecedents <var>     dependency trace backwards
  ///   consequences <var>    dependency trace forwards
  ///   dot <var>             Graphviz dump of the reachable network
  ///   on | off              enable/disable propagation (CPSwitch)
  ///   restore               undo the last propagation
  ///   warnings              violation log
  ///   vars                  list registered variables
  ///   trace on|off          structured propagation tracing (ring buffer)
  ///   stats                 engine counters + metrics snapshot
  ///   export-trace <file>   write the trace as Chrome trace-event JSON
  ///   service <line>        forward <line> to the attached design service
  ///   record <args...>      workload trace recording (start/stop/status)
  ///   replay <args...>      replay a workload trace (docs/WORKLOAD.md)
  ///   help                  this text
  std::string execute(const std::string& command_line);

  /// Attach a design-service front end: `service <line>` (alias `svc`)
  /// forwards <line> to the handler and prints its response.  The shell
  /// lives in the env layer and must not depend on stemcp_service, so the
  /// binding is a plain function — examples/constraint_shell.cpp wires a
  /// ServiceFrontEnd in here.
  void attach_service(std::function<std::string(const std::string&)> handler) {
    service_handler_ = std::move(handler);
  }

  /// Attach the workload record/replay front end: the `record` and `replay`
  /// verbs forward their FULL command line to the handler.  Same layering
  /// rule as attach_service — the shell cannot depend on stemcp_workload,
  /// so examples/constraint_shell.cpp wires the recorder/replayer in here.
  void attach_workload(std::function<std::string(const std::string&)> handler) {
    workload_handler_ = std::move(handler);
  }

 private:
  core::Variable* find(const std::string& name) const;
  static std::string usage();

  core::PropagationContext* ctx_;
  ConstraintInspector inspector_;
  std::map<std::string, core::Variable*> vars_;
  std::function<std::string(const std::string&)> service_handler_;
  std::function<std::string(const std::string&)> workload_handler_;
};

}  // namespace stemcp::env
