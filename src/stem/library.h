// Library: the design database root.  Owns the propagation context, the
// signal type registry, and every cell class.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/core.h"
#include "stem/signal_type.h"

namespace stemcp::env {

class CellClass;

class Library {
 public:
  explicit Library(std::string name = "lib");
  ~Library();

  Library(const Library&) = delete;
  Library& operator=(const Library&) = delete;

  const std::string& name() const { return name_; }
  core::PropagationContext& context() { return *ctx_; }
  const core::PropagationContext& context() const { return *ctx_; }
  SignalTypeRegistry& types() { return types_; }

  /// Exchange design contents (engine context, type registry, cells, stats)
  /// with another library; names stay put.  Cell back-pointers are re-bound
  /// on both sides, and since the propagation contexts move by pointer, all
  /// constraint/variable references into them stay valid.  Used by
  /// LibraryReader to make loading transactional: parse into a scratch
  /// library, swap only on success.
  void swap_contents(Library& other);

  /// Define a cell class, optionally as a subclass of an existing one.
  CellClass& define_cell(const std::string& name,
                         CellClass* superclass = nullptr);
  CellClass* find(const std::string& name) const;
  CellClass& cell(const std::string& name) const;
  const std::vector<std::unique_ptr<CellClass>>& cells() const {
    return cells_;
  }

  /// Destroy every cell defined after the first `count`, newest-first (so
  /// composites release their instances of earlier cells before those die).
  /// LibraryReader's append-rollback path; destructors deregister cleanly
  /// (subclass lists, instance registries, constraint arguments).
  void rollback_cells_to(std::size_t count);

  /// Module-selection instrumentation (used by the pruning/selective-testing
  /// ablation benches).
  struct SelectionStats {
    std::uint64_t candidates_tested = 0;
    std::uint64_t bbox_checks = 0;
    std::uint64_t signal_checks = 0;
    std::uint64_t delay_checks = 0;
  };
  SelectionStats& selection_stats() { return selection_stats_; }
  void reset_selection_stats() { selection_stats_ = {}; }

 private:
  std::string name_;
  // Behind unique_ptr so swap_contents can exchange engine state without
  // moving the context object itself (its address is baked into constraints
  // and variables).
  std::unique_ptr<core::PropagationContext> ctx_;
  SignalTypeRegistry types_;
  std::vector<std::unique_ptr<CellClass>> cells_;
  SelectionStats selection_stats_;
};

}  // namespace stemcp::env
