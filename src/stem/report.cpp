#include "stem/report.h"

#include <sstream>

#include "stem/checker.h"
#include "stem/net.h"

namespace stemcp::env {

namespace {

std::string nanoseconds(const core::Value& v) {
  if (!v.is_number()) return "unknown";
  std::ostringstream os;
  os << v.as_number() * 1e9 << " ns";
  return os.str();
}

void specs_of(const core::Variable& v, std::ostream& out,
              const char* indent) {
  for (const core::Propagatable* p : v.constraints()) {
    if (const auto* bound = dynamic_cast<const core::BoundConstraint*>(p)) {
      out << indent << "spec: " << core::to_string(bound->relation()) << ' '
          << bound->bound().to_string() << '\n';
    }
  }
}

}  // namespace

std::string DesignReport::cell(CellClass& c, const Options& options) {
  std::ostringstream out;
  out << "== " << c.name();
  if (c.is_generic()) out << " (generic)";
  if (c.superclass() != nullptr) out << " : " << c.superclass()->name();
  if (c.is_device()) out << " [device]";
  out << " ==\n";

  const core::Value& bb = c.bounding_box().demand();
  out << "bounding box: " << bb.to_string();
  if (bb.is_rect()) out << "  area " << bb.as_rect().area();
  out << "  (" << c.bounding_box().last_set_by().to_string() << ")\n";
  specs_of(c.bounding_box(), out, "  ");

  if (options.include_signals) {
    for (const IoSignal* sig : c.all_signals()) {
      out << "signal " << sig->name() << " ("
          << to_string(sig->direction()) << ")";
      if (sig->bit_width().value().is_int()) {
        out << " width=" << sig->bit_width().value().as_int();
      }
      if (const SignalType* t = type_of(sig->data_type().value())) {
        out << " data=" << t->name();
      }
      if (const SignalType* t = type_of(sig->electrical_type().value())) {
        out << " elec=" << t->name();
      }
      if (sig->load_capacitance() != 0.0) {
        out << " load=" << sig->load_capacitance();
      }
      if (sig->output_resistance() != 0.0) {
        out << " rout=" << sig->output_resistance();
      }
      out << '\n';
    }
  }

  if (options.include_structure && !c.subcells().empty()) {
    out << "structure: " << c.subcells().size() << " subcells, "
        << c.nets().size() << " nets\n";
    for (const auto& sub : c.subcells()) {
      out << "  " << sub->name() << ": " << sub->cls().name() << " @ "
          << sub->transform().to_string() << '\n';
    }
    for (const auto& net : c.nets()) {
      out << "  net " << net->name() << ":";
      for (const NetConnection& conn : net->connections()) {
        out << ' '
            << (conn.instance != nullptr ? conn.instance->name() : "<io>")
            << '.' << conn.signal;
      }
      out << '\n';
    }
  }

  if (options.include_delays) {
    for (ClassDelayVar* d : c.delay_variables()) {
      out << "delay " << d->from() << " -> " << d->to() << ": "
          << nanoseconds(d->value()) << "  ("
          << d->last_set_by().to_string() << ")\n";
      specs_of(*d, out, "  ");
      const auto critical = c.critical_path(d->from(), d->to());
      if (!critical.path.empty()) {
        out << "  critical path (" << nanoseconds(critical.total) << "):";
        for (const InstanceDelayVar* step : critical.path) {
          out << ' ' << step->owner().name();
        }
        out << '\n';
      }
    }
  }

  if (options.include_violations) {
    const CheckReport check = DesignChecker::check(c);
    if (!check.clean()) {
      out << "VIOLATIONS (" << check.violation_count() << "):\n";
      for (const auto& f : check.findings) {
        if (!f.satisfied) out << "  " << f.constraint << '\n';
      }
    }
  }

  if (options.include_propagation_stats) {
    out << propagation_stats(c.context());
  }
  return out.str();
}

std::string DesignReport::propagation_stats(
    const core::PropagationContext& ctx) {
  const auto& s = ctx.stats();
  std::ostringstream out;
  out << "propagation statistics:\n"
      << "  sessions " << s.sessions << ", assignments " << s.assignments
      << ", activations " << s.activations << '\n'
      << "  scheduled runs " << s.scheduled_runs << ", checks " << s.checks
      << ", violations " << s.violations << ", restores " << s.restores
      << '\n'
      << "  agenda high water " << s.agenda_high_water << '\n';
  for (std::size_t i = 0;
       i < core::PropagationContext::Stats::kTrackedPriorities; ++i) {
    if (s.scheduled_by_priority[i] == 0 && s.executed_by_priority[i] == 0) {
      continue;
    }
    const auto& order = ctx.agenda().priority_order();
    out << "  priority " << i;
    if (i < order.size()) out << " (" << order[i] << ")";
    out << ": scheduled " << s.scheduled_by_priority[i] << ", executed "
        << s.executed_by_priority[i] << '\n';
  }
  if (ctx.violation_log_dropped() > 0) {
    out << "  warnings dropped: " << ctx.violation_log_dropped() << '\n';
  }
  return out.str();
}

std::string DesignReport::library(Library& lib, const Options& options) {
  std::ostringstream out;
  out << "=== library '" << lib.name() << "': " << lib.cells().size()
      << " cells ===\n";
  for (const auto& c : lib.cells()) {
    out << "  " << c->name();
    if (c->is_generic()) out << " (generic)";
    if (!c->subclasses().empty()) {
      out << " [" << c->subclasses().size() << " subclasses]";
    }
    out << '\n';
  }
  out << '\n';
  for (const auto& c : lib.cells()) {
    out << cell(*c, options) << '\n';
  }
  return out.str();
}

}  // namespace stemcp::env
