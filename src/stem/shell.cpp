#include "stem/shell.h"

#include <fstream>
#include <sstream>

namespace stemcp::env {

using core::Value;
using core::Variable;

void ConstraintShell::register_variable(Variable& v) {
  vars_[v.path()] = &v;
}

void ConstraintShell::register_variable(const std::string& alias,
                                        Variable& v) {
  vars_[alias] = &v;
}

Variable* ConstraintShell::find(const std::string& name) const {
  const auto it = vars_.find(name);
  return it == vars_.end() ? nullptr : it->second;
}

std::string ConstraintShell::usage() {
  return "commands: show|set|probe|constraints|antecedents|consequences|dot "
         "<var> [value], on, off, restore, warnings, vars, trace on|off, "
         "stats [--latency], export-trace <file>, export-metrics <file>, "
         "service <line>, record start <file>|stop|status, "
         "replay <trace> [closed-loop] [speed <x>], help\n";
}

std::string ConstraintShell::execute(const std::string& command_line) {
  std::istringstream in(command_line);
  std::string cmd;
  if (!(in >> cmd)) return usage();

  if (cmd == "help") return usage();
  if (cmd == "service" || cmd == "svc") {
    if (!service_handler_) return "no design service attached\n";
    std::string rest;
    std::getline(in, rest);
    const auto first = rest.find_first_not_of(" \t");
    return service_handler_(first == std::string::npos ? std::string()
                                                       : rest.substr(first));
  }
  if (cmd == "record" || cmd == "replay") {
    // Workload trace verbs take the whole line — the handler owns the
    // sub-grammar (see docs/WORKLOAD.md).
    if (!workload_handler_) return "no workload recorder attached\n";
    return workload_handler_(command_line);
  }
  if (cmd == "on") {
    ctx_->set_enabled(true);
    return "propagation enabled\n";
  }
  if (cmd == "off") {
    ctx_->set_enabled(false);
    return "propagation disabled\n";
  }
  if (cmd == "restore") {
    inspector_.restore_last_propagation();
    return "restored\n";
  }
  if (cmd == "warnings") {
    std::ostringstream out;
    for (const auto& w : inspector_.warnings()) out << w << '\n';
    if (inspector_.warnings().empty()) out << "(none)\n";
    return out.str();
  }
  if (cmd == "vars") {
    std::ostringstream out;
    for (const auto& [name, var] : vars_) {
      out << name << " = " << var->value().to_string() << '\n';
    }
    if (vars_.empty()) out << "(none registered)\n";
    return out.str();
  }
  if (cmd == "trace") {
    std::string mode;
    if (!(in >> mode) || (mode != "on" && mode != "off")) {
      return "error: usage: trace on|off\n";
    }
    const bool on = mode == "on";
    ctx_->tracer().set_enabled(on);
    ctx_->metrics().set_enabled(on);
    return std::string("tracing ") + (on ? "enabled" : "disabled") + "\n";
  }
  if (cmd == "stats") {
    std::string opt;
    if (in >> opt) {
      if (opt != "--latency") return "error: stats options are '--latency'\n";
      // Request-latency percentiles live in the design service's telemetry
      // lanes, not this shell's engine context.
      if (!service_handler_) return "no design service attached\n";
      return service_handler_("stats --latency");
    }
    const auto& s = ctx_->stats();
    std::ostringstream out;
    out << "sessions: " << s.sessions << '\n'
        << "assignments: " << s.assignments << '\n'
        << "activations: " << s.activations << '\n'
        << "scheduled runs: " << s.scheduled_runs << '\n'
        << "checks: " << s.checks << '\n'
        << "violations: " << s.violations << '\n'
        << "restores: " << s.restores << '\n'
        << "agenda high water: " << s.agenda_high_water << '\n';
    for (std::size_t i = 0; i < core::PropagationContext::Stats::
                                    kTrackedPriorities; ++i) {
      if (s.scheduled_by_priority[i] == 0 && s.executed_by_priority[i] == 0) {
        continue;
      }
      out << "priority " << i << ": scheduled "
          << s.scheduled_by_priority[i] << ", executed "
          << s.executed_by_priority[i] << '\n';
    }
    if (ctx_->violation_log_dropped() > 0) {
      out << "warnings dropped: " << ctx_->violation_log_dropped() << '\n';
    }
    if (ctx_->tracer().enabled()) {
      out << "trace events: " << ctx_->tracer().events_emitted() << '\n';
    }
    if (ctx_->metrics().enabled()) {
      out << "metrics: " << ctx_->metrics().to_json() << '\n';
    }
    return out.str();
  }
  if (cmd == "export-trace") {
    std::string path;
    if (!(in >> path)) return "error: 'export-trace' needs a file path\n";
    if (ctx_->tracer().ring() == nullptr) {
      return "error: tracing was never enabled (use 'trace on')\n";
    }
    if (!core::export_chrome_trace(ctx_->tracer(), path)) {
      return "error: could not write '" + path + "'\n";
    }
    return "trace written to " + path + "\n";
  }
  if (cmd == "export-metrics") {
    std::string path;
    if (!(in >> path)) return "error: 'export-metrics' needs a file path\n";
    // With a service attached its telemetry view is the richer one (request
    // latency percentiles); standalone shells export the engine registry.
    if (service_handler_) return service_handler_("export-metrics " + path);
    std::ofstream f(path, std::ios::out | std::ios::trunc);
    if (!f.good()) return "error: could not write '" + path + "'\n";
    f << core::metrics_to_prometheus(ctx_->metrics())
      << core::global_metrics_prometheus();
    return "metrics written to " + path + "\n";
  }

  const bool variable_command =
      cmd == "show" || cmd == "set" || cmd == "probe" ||
      cmd == "constraints" || cmd == "antecedents" ||
      cmd == "consequences" || cmd == "dot";
  if (!variable_command) return usage();

  std::string name;
  if (!(in >> name)) return "error: '" + cmd + "' needs a variable\n";
  Variable* var = find(name);
  if (var == nullptr) return "error: unknown variable '" + name + "'\n";

  if (cmd == "show") return ConstraintInspector::describe(*var) + "\n";
  if (cmd == "constraints") {
    std::ostringstream out;
    for (const auto* c : ConstraintInspector::constraints_of(*var)) {
      out << c->describe() << '\n';
    }
    return out.str();
  }
  if (cmd == "antecedents") {
    return ConstraintInspector::antecedent_report(*var);
  }
  if (cmd == "consequences") {
    return ConstraintInspector::consequence_report(*var);
  }
  if (cmd == "dot") return ConstraintInspector::to_dot({var});

  if (cmd == "set" || cmd == "probe") {
    double x = 0.0;
    if (!(in >> x)) return "error: '" + cmd + "' needs a numeric value\n";
    if (cmd == "probe") {
      const bool ok = var->can_be_set_to(Value(x));
      return name + (ok ? " can" : " canNOT") + " be set to " +
             Value(x).to_string() + "\n";
    }
    const core::Status s = var->set_user(Value(x));
    if (s.is_violation()) {
      std::string report = "VIOLATION — restored";
      if (ctx_->last_violation()) {
        report += ": " + ctx_->last_violation()->to_string();
      }
      return report + "\n";
    }
    return ConstraintInspector::describe(*var) + "\n";
  }

  return usage();
}

}  // namespace stemcp::env
