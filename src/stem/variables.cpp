#include "stem/variables.h"

#include "stem/cell.h"
#include "stem/net.h"

namespace stemcp::env {

using core::Justification;
using core::Rect;
using core::Status;
using core::Value;
using core::Variable;

namespace {

/// Dependency record + justification for a hierarchical (implicit) link:
/// the source "constraint" is the dual variable whose change is being
/// reflected.
Justification implicit_justification(StemVariable& source_dual) {
  return Justification::propagated(
      source_dual, core::DependencyRecord::single(source_dual));
}

}  // namespace

// ---- ClassBBoxVar -------------------------------------------------------------

ClassBBoxVar::ClassBBoxVar(core::PropagationContext& ctx, CellClass& owner,
                           const std::string& parent_name)
    : ClassVar(ctx, parent_name, "boundingBox"), owner_(&owner) {}

bool ClassBBoxVar::is_satisfied() const {
  if (!value().is_rect()) return true;
  for (InstanceVar* dual : instance_duals()) {
    auto* ib = static_cast<InstanceBBoxVar*>(dual);
    if (!ib->placement_fits()) return false;
  }
  return true;
}

// ---- InstanceBBoxVar -----------------------------------------------------------

InstanceBBoxVar::InstanceBBoxVar(core::PropagationContext& ctx,
                                 CellInstance& owner, ClassBBoxVar& dual,
                                 const std::string& parent_name)
    : InstanceVar(ctx, parent_name, "boundingBox", &dual), owner_(&owner) {}

Status InstanceBBoxVar::immediate_inference_by_changing(Variable& changed) {
  // Thesis Fig 7.7: if I hold a #USER placement, keep it (the final check
  // verifies it still fits); otherwise default to the transformed class box.
  if (&changed != class_dual()) return Status::ok();
  if (has_value() && last_set_by().is_user()) return Status::ok();
  if (!changed.value().is_rect()) return Status::ok();  // class box erased
  const Rect placed = owner_->transform().apply(changed.value().as_rect());
  return set_from_constraint(Value(placed), *class_dual(),
                             implicit_justification(*class_dual()));
}

bool InstanceBBoxVar::placement_fits() const {
  if (!value().is_rect()) return true;  // unplaced: nothing to violate
  const Variable* cb = class_dual();
  if (cb == nullptr || !cb->value().is_rect()) return true;
  const Rect required = owner_->transform().apply(cb->value().as_rect());
  return value().as_rect().extent_covers(required);
}

bool InstanceBBoxVar::is_satisfied() const { return placement_fits(); }

Status InstanceBBoxVar::after_value_change(const Justification&) {
  // Thesis Fig 7.8: a subcell placement change invalidates the containing
  // cell's calculated bounding box (procedural update-constraint).
  CellClass* parent = owner_->parent_cell();
  if (parent == nullptr) return Status::ok();
  return parent->bounding_box().erase_for_update(*this);
}

// ---- ClassBitWidthVar ------------------------------------------------------------

bool ClassBitWidthVar::is_satisfied() const {
  if (!value().is_int()) return true;  // parameterized width
  for (InstanceVar* dual : instance_duals()) {
    const Value& iv = dual->value();
    if (iv.is_int() && iv != value()) return false;
  }
  return true;
}

// ---- InstanceBitWidthVar ----------------------------------------------------------

Status InstanceBitWidthVar::immediate_inference_by_changing(Variable& changed) {
  if (&changed != class_dual()) return Status::ok();
  if (!changed.value().is_int()) return Status::ok();
  if (has_value() && last_set_by().is_user()) return Status::ok();
  return set_from_constraint(changed.value(), *class_dual(),
                             implicit_justification(*class_dual()));
}

bool InstanceBitWidthVar::is_satisfied() const {
  const Variable* cb = class_dual();
  if (cb == nullptr || !cb->value().is_int() || !value().is_int()) return true;
  return value() == cb->value();
}

// ---- ClassParamVar ------------------------------------------------------------------

bool ClassParamVar::in_range(const Value& v) const {
  if (!range_.has_value() || !v.is_number()) return true;
  const double x = v.as_number();
  return x >= range_->first && x <= range_->second;
}

bool ClassParamVar::is_satisfied() const {
  for (InstanceVar* dual : instance_duals()) {
    if (!in_range(dual->value())) return false;
  }
  return true;
}

// ---- InstanceParamVar --------------------------------------------------------------

Status InstanceParamVar::immediate_inference_by_changing(Variable& changed) {
  // Default values propagate from class parameter variables to unset
  // instance parameters (thesis §5.1.1); nothing else flows.
  if (&changed != class_dual()) return Status::ok();
  if (changed.value().is_nil() || has_value()) return Status::ok();
  return set_from_constraint(changed.value(), *class_dual(),
                             implicit_justification(*class_dual()));
}

bool InstanceParamVar::is_satisfied() const {
  const auto* cp = static_cast<const ClassParamVar*>(class_dual());
  if (cp == nullptr) return true;
  return cp->in_range(value());
}

// ---- ClassDelayVar -----------------------------------------------------------------

ClassDelayVar::ClassDelayVar(core::PropagationContext& ctx, CellClass& owner,
                             std::string from, std::string to,
                             const std::string& parent_name)
    : ClassVar(ctx, parent_name, "delay(" + from + "->" + to + ")"),
      owner_(&owner),
      from_(std::move(from)),
      to_(std::move(to)) {}

// ---- InstanceDelayVar ---------------------------------------------------------------

InstanceDelayVar::InstanceDelayVar(core::PropagationContext& ctx,
                                   CellInstance& owner, ClassDelayVar& dual,
                                   const std::string& parent_name)
    : InstanceVar(ctx, parent_name,
                  "delay(" + dual.from() + "->" + dual.to() + ")", &dual),
      owner_(&owner) {}

ClassDelayVar& InstanceDelayVar::class_delay() const {
  return *static_cast<ClassDelayVar*>(class_dual());
}

double InstanceDelayVar::rc_adjustment() const {
  // RC delay model (thesis Fig 7.10): the class delay is adjusted by the
  // transient delay this instance's driver pays into its context — its
  // output resistance times the total load capacitance on the output net.
  // The charge is booked at the driver only, so chains count each hop once.
  const ClassDelayVar& cd = class_delay();
  const IoSignal* to_sig = cd.owner().find_signal(cd.to());
  if (to_sig == nullptr) return 0.0;
  const Net* out_net = owner_->net_for(cd.to());
  if (out_net == nullptr) return 0.0;
  return to_sig->output_resistance() *
         out_net->total_load_capacitance(owner_, cd.to());
}

Status InstanceDelayVar::immediate_inference_by_changing(Variable& changed) {
  if (&changed != class_dual()) return Status::ok();
  if (!changed.value().is_number()) return Status::ok();
  const double adjusted = changed.value().as_number() + rc_adjustment();
  return set_from_constraint(Value(adjusted), *class_dual(),
                             implicit_justification(*class_dual()));
}

}  // namespace stemcp::env
