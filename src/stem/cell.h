// The design database: cell classes, cell instances and io-signals
// (thesis ch. 3 & 5).
//
// A cell class encapsulates everything about a cell — its interface
// (io-signals with typing variables, parameters with ranges), its internal
// structure (subcells and nets), its characteristics (bounding box, delays)
// — while cell instances record only per-placement data (transform,
// connections, context-adjusted duals).  The dual declaration of instance
// variables on class and instance is what makes hierarchical constraint
// propagation possible.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "stem/compatible.h"
#include "stem/signal_type.h"
#include "stem/variables.h"
#include "stem/views.h"

namespace stemcp::env {

class CellClass;
class CellInstance;
class Library;
class Net;

enum class SignalDirection { kInput, kOutput, kInOut };
const char* to_string(SignalDirection d);

/// Cell boundary side on which an io-pin sits (used by the tile compilers'
/// pin-butting).
enum class Side { kLeft, kBottom, kRight, kTop };
const char* to_string(Side s);
Side opposite(Side s);

struct IoPin {
  std::string signal;
  core::Point position;  ///< in class coordinates, on the boundary
  Side side = Side::kLeft;
};

/// Electrical device description for primitive (leaf) cells, consumed by the
/// netlist extractor / MiniSpice substrate.
struct DeviceInfo {
  enum class Kind {
    kNone,
    kNmos,
    kPmos,
    kResistor,
    kCapacitor,
    kVoltageSource,
  };
  Kind kind = Kind::kNone;
  double value = 0.0;  ///< ohms / farads / volts
  double ron = 1e3;    ///< MOS on-resistance (ohms)

  bool is_device() const { return kind != Kind::kNone; }
};

/// Class-level io-signal declaration: name, direction, typing variables
/// (bit width, data type, electrical type — thesis §7.1), electrical model
/// (load capacitance / output resistance — thesis §7.3) and io-pins.
class IoSignal {
 public:
  IoSignal(CellClass& owner, std::string name, SignalDirection dir);

  CellClass& owner() const { return *owner_; }
  const std::string& name() const { return name_; }
  SignalDirection direction() const { return direction_; }
  bool is_input() const { return direction_ == SignalDirection::kInput; }
  bool is_output() const { return direction_ == SignalDirection::kOutput; }

  ClassBitWidthVar& bit_width() { return *bit_width_; }
  const ClassBitWidthVar& bit_width() const { return *bit_width_; }
  SignalTypeVar& data_type() { return *data_type_; }
  SignalTypeVar& electrical_type() { return *electrical_type_; }
  const SignalTypeVar& data_type() const { return *data_type_; }
  const SignalTypeVar& electrical_type() const { return *electrical_type_; }

  double load_capacitance() const { return load_capacitance_; }
  void set_load_capacitance(double f) { load_capacitance_ = f; }
  double output_resistance() const { return output_resistance_; }
  void set_output_resistance(double ohms) { output_resistance_ = ohms; }

  void add_pin(core::Point position, Side side);
  const std::vector<IoPin>& pins() const { return pins_; }

  /// Internal net this io-signal connects to inside the owning cell.
  Net* internal_net() const { return internal_net_; }

 private:
  friend class Net;
  CellClass* owner_;
  std::string name_;
  SignalDirection direction_;
  std::unique_ptr<ClassBitWidthVar> bit_width_;
  std::unique_ptr<SignalTypeVar> data_type_;
  std::unique_ptr<SignalTypeVar> electrical_type_;
  double load_capacitance_ = 0.0;
  double output_resistance_ = 0.0;
  std::vector<IoPin> pins_;
  Net* internal_net_ = nullptr;
};

/// One placement of a cell class inside another cell (thesis §3.3.2).
class CellInstance {
 public:
  CellInstance(CellClass& cls, CellClass* parent_cell, std::string name,
               core::Transform transform);
  ~CellInstance();

  CellInstance(const CellInstance&) = delete;
  CellInstance& operator=(const CellInstance&) = delete;

  CellClass& cls() const { return *cls_; }
  CellClass* parent_cell() const { return parent_cell_; }
  const std::string& name() const { return name_; }
  std::string qualified_name() const;

  const core::Transform& transform() const { return transform_; }
  void set_transform(core::Transform t);

  InstanceBBoxVar& bounding_box() { return *bbox_; }
  const InstanceBBoxVar& bounding_box() const { return *bbox_; }

  /// Per-signal instance bit width (created on demand, dual to the class
  /// signal's width).
  InstanceBitWidthVar& bit_width(const std::string& signal);
  /// Every instance bit-width variable created so far (for audits).
  std::vector<InstanceBitWidthVar*> bit_width_variables() const;
  /// Per-parameter instance value (created on demand).
  InstanceParamVar& parameter(const std::string& name);
  /// Every instance parameter variable created so far (for audits).
  std::vector<InstanceParamVar*> parameter_variables() const;
  /// Instance delay dual for a declared class delay (created on demand).
  InstanceDelayVar& delay(const std::string& from, const std::string& to);
  InstanceDelayVar* find_delay(const std::string& from,
                               const std::string& to) const;
  std::vector<InstanceDelayVar*> delay_variables() const;

  /// Net connected to a signal of this instance; nullptr if unconnected.
  Net* net_for(const std::string& signal) const;

  /// Io-pin positions in parent-cell coordinates (class pins transformed by
  /// this placement).
  std::vector<IoPin> placed_pins() const;

  /// Placed pins stretched to the perimeter of the instance bounding box
  /// (thesis Fig 7.6): when a cell is placed in an area larger than its
  /// class box, STEM extends the signal ports to the placement boundary so
  /// neighbours can still butt against them.
  std::vector<IoPin> stretched_pins() const;

 private:
  friend class Net;
  void note_connection(const std::string& signal, Net* net);

  CellClass* cls_;
  CellClass* parent_cell_;
  std::string name_;
  core::Transform transform_;
  std::unique_ptr<InstanceBBoxVar> bbox_;
  std::map<std::string, std::unique_ptr<InstanceBitWidthVar>> bit_widths_;
  std::map<std::string, std::unique_ptr<InstanceParamVar>> params_;
  std::map<std::pair<std::string, std::string>,
           std::unique_ptr<InstanceDelayVar>>
      delays_;
  std::map<std::string, Net*> connections_;
};

/// A cell class: the library version of a cell (thesis §3.3.2), organized
/// in an inheritance hierarchy (generic cells and their realizations,
/// thesis ch. 8).
class CellClass : public Model {
 public:
  CellClass(Library& lib, std::string name, CellClass* superclass);
  ~CellClass() override;

  CellClass(const CellClass&) = delete;
  CellClass& operator=(const CellClass&) = delete;

  Library& library() const { return *library_; }
  core::PropagationContext& context() const;
  SignalTypeRegistry& types() const;
  const std::string& name() const { return name_; }

  // ---- inheritance hierarchy ------------------------------------------
  CellClass* superclass() const { return superclass_; }
  const std::vector<CellClass*>& subclasses() const { return subclasses_; }
  /// All transitive descendants (pre-order).
  std::vector<CellClass*> all_subclasses() const;
  bool is_descendant_of(const CellClass& other) const;
  bool is_generic() const { return generic_; }
  void set_generic(bool g) { generic_ = g; }

  // ---- interface ---------------------------------------------------------
  IoSignal& declare_signal(const std::string& name, SignalDirection dir);
  IoSignal* find_signal(const std::string& name) const;
  IoSignal& signal(const std::string& name) const;
  const std::vector<std::unique_ptr<IoSignal>>& signals() const {
    return signals_;
  }
  /// Signals declared here or inherited from ancestors (nearest wins).
  std::vector<IoSignal*> all_signals() const;

  ClassParamVar& declare_parameter(const std::string& name, double lo,
                                   double hi, core::Value default_value);
  ClassParamVar* find_parameter(const std::string& name) const;
  const std::map<std::string, std::unique_ptr<ClassParamVar>>& parameters()
      const {
    return params_;
  }

  // ---- internal structure --------------------------------------------------
  CellInstance& add_subcell(CellClass& cls, const std::string& name,
                            core::Transform t = {});
  void remove_subcell(CellInstance& inst);
  /// Swap a subcell's class (e.g. committing a module-selection choice for
  /// a generic instance): a new instance with the same name, transform and
  /// placement box takes over the old one's net connections signal by
  /// signal.  Returns the replacement.
  CellInstance& replace_subcell(CellInstance& inst, CellClass& realization);
  const std::vector<std::unique_ptr<CellInstance>>& subcells() const {
    return subcells_;
  }
  CellInstance* find_subcell(const std::string& name) const;

  Net& add_net(const std::string& name);
  void remove_net(Net& net);
  Net* find_net(const std::string& name) const;
  const std::vector<std::unique_ptr<Net>>& nets() const { return nets_; }

  /// All live instances of this class anywhere in the library.
  const std::vector<CellInstance*>& instances() const { return instances_; }

  // ---- bounding box (thesis §7.2) -----------------------------------------
  ClassBBoxVar& bounding_box() { return *bbox_; }
  const ClassBBoxVar& bounding_box() const { return *bbox_; }
  /// Union of subcell placements — `calculateBoundingBox`.
  core::Rect calculate_bounding_box() const;

  // ---- primitive device info (MiniSpice substrate) --------------------------
  DeviceInfo& device() { return device_; }
  const DeviceInfo& device() const { return device_; }
  bool is_device() const { return device_.is_device(); }

  // ---- delays (thesis §7.3) --------------------------------------------------
  ClassDelayVar& declare_delay(const std::string& from, const std::string& to);
  ClassDelayVar* find_delay(const std::string& from,
                            const std::string& to) const;
  std::vector<ClassDelayVar*> delay_variables() const;
  /// Assign a leaf cell's characteristic delay (calculated / measured).
  core::Status set_leaf_delay(const std::string& from, const std::string& to,
                              double seconds);

  /// Build the UniMaximum-of-UniAddition delay networks relating this
  /// cell's class delays to its subcells' instance delays (thesis Fig 7.12).
  void build_delay_networks();
  /// Tear the networks down (internal structure changed); values derived
  /// from them are erased by dependency analysis.
  void invalidate_delay_networks();
  bool delay_networks_built() const { return delay_networks_built_; }
  /// Enumerate the delay paths (instance delay variables per path) between
  /// two io-signals; exposed for the checker/editor.
  std::vector<std::vector<InstanceDelayVar*>> delay_paths(
      const std::string& from, const std::string& to) const;

  /// The path currently achieving the worst-case delay, with its total.
  /// Empty path / nil total when no path is fully characterized yet.
  struct CriticalPath {
    std::vector<InstanceDelayVar*> path;
    core::Value total;
  };
  CriticalPath critical_path(const std::string& from,
                             const std::string& to) const;

  // ---- module selection (thesis ch. 8) ----------------------------------------
  /// Test property symbols, in order: "bBox", "signals", "delays".
  bool is_valid_realization_for(CellInstance& inst,
                                const std::vector<std::string>& priorities);
  bool valid_bbox_for(CellInstance& inst);
  bool valid_signals_for(CellInstance& inst);
  bool valid_delays_for(CellInstance& inst);
  /// Generate-and-test with tree pruning via generic cells (thesis
  /// Fig 8.3).
  std::vector<CellClass*> valid_realizations_for(
      CellInstance& inst, const std::vector<std::string>& priorities);
  std::vector<CellClass*> select_realizations_for(
      CellInstance& inst, const std::vector<std::string>& priorities);
  /// Ablation baseline: test every non-generic descendant, no pruning.
  std::vector<CellClass*> valid_realizations_unpruned(
      CellInstance& inst, const std::vector<std::string>& priorities);
  /// Candidate delay adjusted to an instance's context (thesis Fig 8.2
  /// delayFrom:to:outputNets:).
  core::Value adjusted_delay_for(const std::string& from,
                                 const std::string& to,
                                 const CellInstance& context);

  /// Structure edit hook: invalidates derived data (delay networks, class
  /// bounding box) and broadcasts #changed:structure.
  void structure_edited();

 protected:
  void on_changed(const std::string& key) override;

 private:
  friend class CellInstance;
  friend class Library;  // rebind_library during Library::swap_contents
  void rebind_library(Library& lib) { library_ = &lib; }
  void register_instance(CellInstance& i);
  void unregister_instance(CellInstance& i);
  void enumerate_paths(const std::string& from_signal, Net* net,
                       const std::string& to_signal,
                       std::vector<InstanceDelayVar*>& prefix,
                       std::vector<const Net*>& nets_on_path,
                       std::vector<std::vector<InstanceDelayVar*>>& out) const;

  Library* library_;
  std::string name_;
  CellClass* superclass_;
  bool broadcasting_up_ = false;
  std::vector<CellClass*> subclasses_;
  bool generic_ = false;

  std::vector<std::unique_ptr<IoSignal>> signals_;
  std::map<std::string, std::unique_ptr<ClassParamVar>> params_;
  std::vector<std::unique_ptr<CellInstance>> subcells_;
  std::vector<std::unique_ptr<Net>> nets_;
  std::vector<CellInstance*> instances_;

  std::unique_ptr<ClassBBoxVar> bbox_;
  DeviceInfo device_;

  std::map<std::pair<std::string, std::string>, std::unique_ptr<ClassDelayVar>>
      delays_;
  bool delay_networks_built_ = false;
  std::vector<std::unique_ptr<core::Variable>> delay_aux_vars_;
  std::vector<core::Constraint*> delay_constraints_;
};

}  // namespace stemcp::env
