#include "fd/selection.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/constraints/predicate.h"
#include "core/variable.h"
#include "stem/cell.h"
#include "stem/library.h"

namespace stemcp::fd {

using core::Value;
using env::CellClass;
using env::CellInstance;
using env::ClassDelayVar;
using env::InstanceDelayVar;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// §8 cost key: smallest area first, then smallest worst-case delay;
/// uncharacterized aspects sort last.
struct CostKey {
  double area = kInf;
  double delay = kInf;

  friend bool operator<(const CostKey& a, const CostKey& b) {
    if (a.area != b.area) return a.area < b.area;
    return a.delay < b.delay;
  }
};

CostKey cost_of(CellClass& c) {
  CostKey key;
  const Value& bb = c.bounding_box().demand();
  if (bb.is_rect()) key.area = static_cast<double>(bb.as_rect().area());
  double worst = -kInf;
  for (ClassDelayVar* cd : c.delay_variables()) {
    if (cd->value().is_number()) worst = std::max(worst, cd->value().as_number());
  }
  if (std::isfinite(worst)) key.delay = worst;
  return key;
}

/// Bound relations attached to a variable (delay budgets are
/// BoundConstraints on class/instance delay variables).
void bounds_on(const core::Variable& v,
               std::vector<std::pair<core::Relation, double>>* out) {
  out->clear();
  for (core::Propagatable* p : v.constraints()) {
    if (auto* b = dynamic_cast<const core::BoundConstraint*>(p)) {
      if (b->bound().is_number()) {
        out->emplace_back(b->relation(), b->bound().as_number());
      }
    }
  }
}

}  // namespace

/// Cross-slot consistency: whenever a slot collapses to one candidate,
/// re-filter every other slot's remaining candidates with that choice's
/// context-adjusted delays substituted into the shared paths.  At a full
/// assignment this is the final feasibility check.
class CrossSlotFilter : public Propagator {
 public:
  CrossSlotFilter(Problem& p, SelectionSpace& space)
      : Propagator(p, kFdGlobalAgenda), space_(&space) {
    for (auto& slot : space.slots_) p.subscribe(*slot.var, *this, kEventValue);
  }

  void filter() override {
    Problem& p = problem();
    std::uint64_t fixed_mask = 0;
    for (std::size_t i = 0; i < space_->slots_.size(); ++i) {
      if (space_->slots_[i].var->domain().fixed()) fixed_mask |= 1ull << i;
    }
    for (std::size_t i = 0; i < space_->slots_.size(); ++i) {
      SelectionSpace::Slot& slot = space_->slots_[i];
      const std::uint64_t others = fixed_mask & ~(1ull << i);
      if (others == 0) continue;  // nothing new to test against
      std::vector<std::size_t> members;
      slot.var->domain().for_each(
          [&](std::size_t idx) { members.push_back(idx); });
      for (std::size_t idx : members) {
        ++space_->stats_.candidates_explored;
        if (!space_->candidate_ok(*slot.candidates[idx], *slot.instance,
                                  space_->priorities_, others)) {
          if (!p.remove(*slot.var, idx)) return;  // wipeout
        }
      }
    }
  }
  std::string type_name() const override { return "fd.crossSlot"; }

 private:
  SelectionSpace* space_;
};

void SelectionSpace::add_slot(CellClass& generic, CellInstance& inst) {
  Slot s;
  s.generic = &generic;
  s.instance = &inst;
  slots_.push_back(std::move(s));
  established_ = false;
}

bool SelectionSpace::candidate_ok(CellClass& cand, CellInstance& inst,
                                  const std::vector<std::string>& priorities,
                                  std::size_t fixed_mask) {
  static const std::vector<std::string> kAll = {"bBox", "signals", "delays"};
  const auto& order = priorities.empty() ? kAll : priorities;
  for (const std::string& symbol : order) {
    if (symbol == "bBox") {
      if (!cand.valid_bbox_for(inst)) return false;
    } else if (symbol == "signals") {
      if (!cand.valid_signals_for(inst)) return false;
    } else if (symbol == "delays") {
      if (!delay_feasible(cand, inst, fixed_mask)) return false;
    }
  }
  return true;
}

bool SelectionSpace::delay_feasible(CellClass& cand, CellInstance& inst,
                                    std::size_t fixed_mask) {
  // Substitution table: the candidate's context-adjusted delays for this
  // slot, plus each already-fixed slot's chosen candidate for its own.
  std::vector<std::pair<const InstanceDelayVar*, Value>> subst;
  auto substitute = [&](CellClass& c, CellInstance& i) {
    for (InstanceDelayVar* dv : i.delay_variables()) {
      subst.emplace_back(dv, c.adjusted_delay_for(dv->class_delay().from(),
                                                  dv->class_delay().to(), i));
    }
  };
  substitute(cand, inst);
  for (std::size_t t = 0; t < slots_.size(); ++t) {
    if ((fixed_mask >> t & 1) == 0) continue;
    Slot& other = slots_[t];
    if (other.instance == &inst || !other.var->domain().fixed()) continue;
    substitute(*other.candidates[other.var->domain().value_index()],
               *other.instance);
  }
  auto value_of = [&](const InstanceDelayVar* dv) -> const Value& {
    for (const auto& [k, v] : subst) {
      if (k == dv) return v;
    }
    return dv->value();
  };

  std::vector<std::pair<core::Relation, double>> budget;

  // Direct budgets on the slot's own delay duals.
  for (InstanceDelayVar* dv : inst.delay_variables()) {
    const Value& nd = value_of(dv);
    if (!nd.is_number()) continue;  // candidate uncharacterized: cannot test
    bounds_on(*dv, &budget);
    for (const auto& [rel, bound] : budget) {
      if (!core::holds(rel, nd.as_number(), bound)) return false;
    }
  }

  // Budgets on the parent's class delays: fold the substituted delays
  // through each delay-network path (left-fold in path order, matching
  // UniAddition::compute), take the worst complete path (UniMaximum), and
  // test it against every declared bound.  Paths with an unknown entry are
  // skipped, exactly as a nil input suppresses the path sum in the engine.
  CellClass* parent = inst.parent_cell();
  if (parent == nullptr) return true;
  for (ClassDelayVar* cd : parent->delay_variables()) {
    bounds_on(*cd, &budget);
    if (budget.empty()) continue;
    double worst = -kInf;
    for (const auto& path : parent->delay_paths(cd->from(), cd->to())) {
      double sum = 0.0;
      bool known = true;
      for (const InstanceDelayVar* e : path) {
        const Value& v = value_of(e);
        if (!v.is_number()) {
          known = false;
          break;
        }
        sum += v.as_number();
      }
      if (known && sum > worst) worst = sum;
    }
    if (!std::isfinite(worst)) continue;  // no fully-characterized path
    for (const auto& [rel, bound] : budget) {
      if (!core::holds(rel, worst, bound)) return false;
    }
  }
  return true;
}

bool SelectionSpace::establish(const std::vector<std::string>& priorities) {
  priorities_ = priorities;
  solutions_.clear();
  bool feasible = true;
  for (Slot& slot : slots_) {
    slot.candidates.clear();
    // Fig 8.3 on domains: test generics too; a failing generic prunes its
    // whole subtree at the cost of one candidate test.
    auto walk = [&](auto&& self, CellClass& c) -> void {
      ++stats_.candidates_explored;
      const bool ok = candidate_ok(c, *slot.instance, priorities_, 0);
      if (c.is_generic()) {
        if (!ok) {
          ++stats_.subtrees_pruned;
          return;
        }
        for (CellClass* sub : c.subclasses()) self(self, *sub);
        return;
      }
      if (ok) slot.candidates.push_back(&c);
    };
    for (CellClass* sub : slot.generic->subclasses()) walk(walk, *sub);

    std::stable_sort(slot.candidates.begin(), slot.candidates.end(),
                     [](CellClass* a, CellClass* b) {
                       return cost_of(*a) < cost_of(*b);
                     });
    slot.var = &problem_.add_set_variable(
        slot.generic->name() + "/" + slot.instance->name(),
        slot.candidates.size());
    if (slot.candidates.empty()) feasible = false;
  }
  if (slots_.size() > 1) problem_.make<CrossSlotFilter>(*this);
  established_ = true;
  return feasible && problem_.propagate_all();
}

std::size_t SelectionSpace::solve(std::size_t max_solutions) {
  if (!established_ && !establish()) return 0;
  for (const Slot& slot : slots_) {
    if (slot.var == nullptr || slot.var->domain().empty()) return 0;
  }
  Search search(problem_);
  Search::Options opts;
  opts.max_solutions = max_solutions;
  search.solve(opts, [&] {
    std::vector<CellClass*> chosen;
    chosen.reserve(slots_.size());
    for (const Slot& slot : slots_) {
      chosen.push_back(slot.candidates[slot.var->domain().value_index()]);
    }
    solutions_.push_back(std::move(chosen));
    return true;
  });
  stats_.nodes += search.stats().nodes;
  stats_.fails += search.stats().fails;
  stats_.solutions += search.stats().solutions;
  return solutions_.size();
}

std::vector<CellInstance*> SelectionSpace::commit(std::size_t solution_index) {
  std::vector<CellInstance*> replaced;
  if (solution_index >= solutions_.size()) return replaced;
  const auto& chosen = solutions_[solution_index];
  std::vector<CellClass*> parents;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    CellInstance* inst = slots_[i].instance;
    CellClass* parent = inst->parent_cell();
    CellInstance& fresh = parent->replace_subcell(*inst, *chosen[i]);
    slots_[i].instance = &fresh;
    replaced.push_back(&fresh);
    if (std::find(parents.begin(), parents.end(), parent) == parents.end()) {
      parents.push_back(parent);
    }
  }
  for (CellClass* parent : parents) parent->build_delay_networks();
  return replaced;
}

}  // namespace stemcp::fd
