// FD module selection (thesis ch. 8 through domain pruning; docs/SOLVER.md).
//
// Generate-and-test (`CellClass::valid_realizations_for`) instantiates every
// candidate test as a full propagation probe (`can_be_set_to`: assign,
// propagate, restore).  A SelectionSpace instead builds one set-domain
// variable per generic slot whose universe is the slot's non-generic
// candidate realizations ordered by the §8 cost heuristic (smallest area
// first, then smallest delay), and prunes it with *arithmetic* filters
// derived from the slot's context: the bbox/signal checks the paper already
// treats as cheap, plus a delay-slack filter that folds each candidate's
// context-adjusted delay through the parent's delay-network paths against
// the declared BoundConstraint budgets — zero propagation probes per
// candidate.  Generic subtrees are pruned wholesale exactly like the
// Fig 8.3 walk: a generic that fails the filters removes all its
// descendants at the cost of one test.  Multi-slot interaction is handled
// by a cross-slot propagator that re-filters the remaining slots whenever
// one slot's domain collapses to a single candidate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fd/solver.h"

namespace stemcp::env {
class CellClass;
class CellInstance;
class Library;
}  // namespace stemcp::env

namespace stemcp::fd {

class SelectionSpace {
 public:
  struct Stats {
    std::uint64_t candidates_explored = 0;  ///< realization tests (establish + re-filter)
    std::uint64_t subtrees_pruned = 0;      ///< generic failures that cut a subtree
    std::uint64_t nodes = 0;                ///< search nodes
    std::uint64_t fails = 0;                ///< search dead ends
    std::uint64_t solutions = 0;
  };

  struct Slot {
    env::CellClass* generic = nullptr;
    env::CellInstance* instance = nullptr;
    std::vector<env::CellClass*> candidates;  ///< domain universe, cost order
    DomainVariable* var = nullptr;
  };

  explicit SelectionSpace(env::Library& lib) : library_(&lib) {}

  /// Register a selection slot: realize `inst` from the subtree of
  /// `generic`.  Call establish() after all slots are added.
  void add_slot(env::CellClass& generic, env::CellInstance& inst);

  /// Walk each slot's generic tree with the static filters, building the
  /// candidate domains; returns false when some slot has no candidate left
  /// (selection infeasible).  Priorities are the is_valid_realization_for
  /// test symbols ("bBox", "signals", "delays"); empty = all three.
  bool establish(const std::vector<std::string>& priorities = {});

  /// MRV search for complete assignments (one candidate per slot honouring
  /// the cross-slot delay budgets); solutions are recorded in cost order.
  /// Returns the number found (up to max_solutions; 0 = all).
  std::size_t solve(std::size_t max_solutions = 1);

  const std::vector<Slot>& slots() const { return slots_; }
  /// Each solution is one CellClass* per slot, in add_slot order.
  const std::vector<std::vector<env::CellClass*>>& solutions() const {
    return solutions_;
  }
  const Stats& stats() const { return stats_; }
  Problem& problem() { return problem_; }

  /// Commit one solution: replace every slot instance with its selected
  /// realization and rebuild the parent delay networks.  Returns the new
  /// instances (slot order).
  std::vector<env::CellInstance*> commit(std::size_t solution_index);

 private:
  friend class CrossSlotFilter;

  /// One candidate test: static bbox/signal checks + delay-slack
  /// arithmetic.  `priorities` mirrors is_valid_realization_for's symbols.
  bool candidate_ok(env::CellClass& cand, env::CellInstance& inst,
                    const std::vector<std::string>& priorities,
                    std::size_t fixed_mask);
  bool delay_feasible(env::CellClass& cand, env::CellInstance& inst,
                      std::size_t fixed_mask);

  env::Library* library_;
  Problem problem_;
  std::vector<Slot> slots_;
  std::vector<std::string> priorities_;
  std::vector<std::vector<env::CellClass*>> solutions_;
  Stats stats_;
  bool established_ = false;
};

}  // namespace stemcp::fd
