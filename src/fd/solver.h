// The finite-domain fixpoint engine and backtracking search (docs/SOLVER.md).
//
// A Problem owns DomainVariables (each wrapping a fd::Domain) and
// Propagators (domain-reduction functions in Apt's chaotic-iteration sense,
// PAPERS.md).  Propagators subclass core::Propagatable so scheduling rides
// the existing core::AgendaScheduler — same interned queues, same per-task
// epoch duplicate suppression, same fixed priority drain — with FD cost
// tiers (unary / binary / linear / global) as the agenda names.  Mutations
// go through the Problem, which saves the pre-change domain on a trail
// (first touch per decision level only, mirroring the engine's visited
// trail), dispatches the event set to subscribed watchers, and latches a
// failed() flag on wipeout so the drain loop stops early.
//
// Search is depth-first with MRV variable ordering (smallest remaining set
// domain first) and ascending-index value ordering — universes are
// pre-sorted by the paper's §8 cost heuristics by the layer that builds
// them — with trail-based undo and early failure on domain wipeout.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/agenda.h"
#include "core/propagatable.h"
#include "fd/domain.h"

namespace stemcp::fd {

class Problem;
class Propagator;

/// FD agenda names, drained in this order (cheapest filters first, the
/// Schulte & Stuckey cost-tier discipline).
inline constexpr const char* kFdUnaryAgenda = "fd.unary";
inline constexpr const char* kFdBinaryAgenda = "fd.binary";
inline constexpr const char* kFdLinearAgenda = "fd.linear";
inline constexpr const char* kFdGlobalAgenda = "fd.global";

class DomainVariable {
 public:
  DomainVariable(std::string name, Domain d)
      : name_(std::move(name)), domain_(std::move(d)) {}

  const std::string& name() const { return name_; }
  const Domain& domain() const { return domain_; }
  std::size_t id() const { return id_; }

  bool fixed() const { return domain_.fixed(); }
  bool empty() const { return domain_.empty(); }

 private:
  friend class Problem;

  std::string name_;
  Domain domain_;
  std::size_t id_ = 0;
  /// Decision level under which the current trail entry was saved; a
  /// mutation at the same level needs no second save.
  std::uint64_t saved_level_ = ~std::uint64_t{0};
  std::vector<std::pair<Propagator*, EventSet>> watchers_;
};

/// A domain-reduction function.  Rides the core agenda machinery via
/// Propagatable; the core::Variable-flavoured entry points are inert (FD
/// propagators are scheduled with a null variable and re-filter from all
/// their domains, like functional constraints recompute from all inputs).
class Propagator : public core::Propagatable {
 public:
  Propagator(Problem& p, const char* agenda);

  /// Shrink domains through the Problem mutators.  Wipeouts latch
  /// Problem::failed(); filter() may return early once that happens.
  virtual void filter() = 0;

  Problem& problem() const { return *problem_; }
  const char* agenda_name() const { return agenda_; }

  // ---- core::Propagatable plumbing ---------------------------------------
  core::Status propagate_variable(core::Variable&) override {
    return core::Status::ok();
  }
  core::Status propagate_scheduled(core::Variable*) override;
  bool is_satisfied() const override { return true; }
  std::string describe() const override {
    return "fd propagator (" + type_name() + ")";
  }
  std::string type_name() const override { return "fd.propagator"; }

 private:
  Problem* problem_;
  const char* agenda_;
};

class Problem {
 public:
  struct Stats {
    std::uint64_t filter_runs = 0;  ///< propagator executions
    std::uint64_t prunings = 0;     ///< mutations that shrank a domain
    std::uint64_t wipeouts = 0;     ///< domains emptied
  };

  Problem();
  ~Problem();

  Problem(const Problem&) = delete;
  Problem& operator=(const Problem&) = delete;

  // ---- variables ----------------------------------------------------------
  DomainVariable& add_variable(std::string name, Domain d);
  DomainVariable& add_set_variable(std::string name, std::size_t n) {
    return add_variable(std::move(name), Domain::all_of(n));
  }
  DomainVariable& add_interval_variable(std::string name, double lo,
                                        double hi) {
    return add_variable(std::move(name), Domain::interval(lo, hi));
  }
  const std::vector<std::unique_ptr<DomainVariable>>& variables() const {
    return variables_;
  }

  // ---- propagators --------------------------------------------------------
  template <typename T, typename... Args>
  T& make(Args&&... args) {
    auto owned = std::make_unique<T>(*this, std::forward<Args>(args)...);
    T& ref = *owned;
    propagators_.push_back(std::move(owned));
    return ref;
  }
  /// Wake p whenever one of events fires on v.
  void subscribe(DomainVariable& v, Propagator& p, EventSet events);
  /// Queue p on its cost-tier agenda (duplicate-suppressed).
  void schedule(Propagator& p);
  std::size_t propagator_count() const { return propagators_.size(); }

  // ---- domain mutation (trail + event dispatch) ---------------------------
  /// Each returns false when the mutation wiped the domain out (failed() is
  /// latched); no-ops return true without waking anyone.
  bool remove(DomainVariable& v, std::size_t idx);
  bool bind(DomainVariable& v, std::size_t idx);
  bool clamp_lo(DomainVariable& v, double lo);
  bool clamp_hi(DomainVariable& v, double hi);
  bool bind_value(DomainVariable& v, double value);

  bool failed() const { return failed_; }
  void clear_failed() { failed_ = false; }

  // ---- fixpoint -----------------------------------------------------------
  /// Drain the agendas to a fixpoint; false on wipeout (remaining queue
  /// entries are discarded).
  bool propagate();
  /// Schedule every propagator, then drain — establishes the initial
  /// arc-consistent state.
  bool propagate_all();

  // ---- trail (backtracking) -----------------------------------------------
  struct Mark {
    std::size_t trail_size = 0;
    std::uint64_t level = 0;
  };
  /// Open a new decision level; undo_to(mark) restores every domain touched
  /// since.  Levels are stamped from a monotonic counter, so a re-opened
  /// level can never alias an undone one.
  Mark mark();
  void undo_to(const Mark& m);

  const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  friend class Propagator;

  void save(DomainVariable& v);
  /// Route a mutation outcome: account stats, dispatch events, latch
  /// failure.  Returns !wipeout.
  bool after_mutation(DomainVariable& v, EventSet events);

  core::AgendaScheduler scheduler_;
  std::vector<std::unique_ptr<DomainVariable>> variables_;
  std::vector<std::unique_ptr<Propagator>> propagators_;

  struct TrailEntry {
    DomainVariable* var = nullptr;
    Domain saved;
    std::uint64_t prev_level = 0;
  };
  std::vector<TrailEntry> trail_;
  std::uint64_t level_ = 0;
  std::uint64_t level_counter_ = 0;

  bool failed_ = false;
  Stats stats_;
};

/// Depth-first search over the problem's unfixed set variables: MRV
/// ordering, ascending-index values, trail-based undo, early failure on
/// wipeout.  Interval variables are never branched on — they are pruned by
/// propagation and simply retain their final bounds in a solution.
class Search {
 public:
  struct Options {
    std::size_t max_solutions = 1;  ///< stop after this many; 0 = all
    std::uint64_t max_nodes = 0;    ///< abandon after this many nodes; 0 = no cap
  };
  struct Stats {
    std::uint64_t nodes = 0;
    std::uint64_t fails = 0;
    std::uint64_t solutions = 0;
    std::uint64_t max_depth = 0;
  };

  explicit Search(Problem& p) : problem_(&p) {}

  /// Run to the first / the requested number of solutions.  on_solution is
  /// invoked with all set variables fixed; return false from it to stop the
  /// search.  Returns true when at least one solution was found.
  bool solve(const Options& opts, const std::function<bool()>& on_solution);
  bool solve_first() {
    return solve(Options{}, [] { return false; });
  }

  const Stats& stats() const { return stats_; }

 private:
  bool dfs(const Options& opts, const std::function<bool()>& on_solution,
           std::uint64_t depth, bool& stop);
  DomainVariable* pick_mrv() const;

  Problem* problem_;
  Stats stats_;
};

// ---- basic set propagators (classic CSP networks) --------------------------

/// x != y + offset over two set variables whose indices are the values —
/// the n-queens / graph-coloring disequality (offset 0 for coloring, the
/// row distance for queens diagonals).  Wakes on kEventValue only.
class NotEqualOffsetPropagator : public Propagator {
 public:
  NotEqualOffsetPropagator(Problem& p, DomainVariable& x, DomainVariable& y,
                           long long offset);

  void filter() override;
  std::string type_name() const override { return "fd.notEqualOffset"; }

 private:
  DomainVariable* x_;
  DomainVariable* y_;
  long long offset_;
};

}  // namespace stemcp::fd
