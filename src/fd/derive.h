// Deriving domain-reduction propagators from the engine's constraint
// library (docs/SOLVER.md).  Each core constraint class maps onto an
// arc-consistency filter that runs the same check/compute relation against
// domain *bounds* instead of single values: BoundConstraint/RangeConstraint
// become unary clamps, ComparisonConstraint/SpacingConstraint binary bounds
// filters, UniAddition a forward+reverse sum filter, UniMaximum/UniMinimum
// forward filters with one-sided reverse pruning, UniLinear/UniProduct
// forward filters.  Constraints mentioning variables outside the supplied
// map are skipped — derivation is advisory; the engine stays authoritative.
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "core/status.h"
#include "fd/solver.h"

namespace stemcp::core {
class PropagationContext;
class Variable;
}  // namespace stemcp::core

namespace stemcp::fd {

/// Engine variable -> FD interval variable.
using VarMap = std::map<const core::Variable*, DomainVariable*>;

/// Translate every translatable constraint of ctx whose arguments are all
/// mapped into propagators on p.  Returns the number of propagators
/// derived.
std::size_t derive_interval_network(Problem& p,
                                    const core::PropagationContext& ctx,
                                    const VarMap& map);

/// Outcome of solve_and_commit: the FD verdict plus the authoritative
/// engine outcome.
struct CommitOutcome {
  bool fd_wipeout = false;      ///< fixpoint proved the batch infeasible
  std::size_t propagators = 0;  ///< filters derived from the network
  std::uint64_t prunings = 0;   ///< domain shrinks during the fixpoint
  core::Status status;          ///< engine result (authoritative)
  std::size_t restores = 0;     ///< variables unwound on violation
};

/// FD-check then commit a batch of user assignments: build singleton/
/// interval domains over the engine network (assigned and user-pinned
/// variables become singletons, free variables unbounded intervals), run
/// the fixpoint, then commit the batch through one engine session
/// (set_in_session, all-or-nothing restore) regardless — the engine is the
/// source of truth; fd_wipeout is the solver's advance warning.
CommitOutcome solve_and_commit(
    core::PropagationContext& ctx,
    const std::vector<std::pair<core::Variable*, double>>& assignments);

}  // namespace stemcp::fd
