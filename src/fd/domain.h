// Finite domains (docs/SOLVER.md).  A Domain is either a bitset over the
// indices [0, n) of a candidate universe (module-selection slots, CSP value
// sets) or a closed numeric interval [lo, hi] (bounded parameters, delay
// budgets).  Mutators shrink only — a domain never grows except through the
// solver trail — and report what changed as an event set in the style of
// Schulte & Stuckey's propagation engines (PAPERS.md): value (became a
// singleton), bounds (min or max moved), domain (anything was removed).
// Propagators subscribe to the events they care about, so a bounds-only
// filter is never woken by an interior removal.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace stemcp::fd {

/// Domain-change event set: which watcher classes a mutation wakes.
using EventSet = unsigned;
inline constexpr EventSet kEventNone = 0;
inline constexpr EventSet kEventDomain = 1u << 0;  ///< any element removed
inline constexpr EventSet kEventBounds = 1u << 1;  ///< min or max moved
inline constexpr EventSet kEventValue = 1u << 2;   ///< became a singleton
inline constexpr EventSet kEventWipeout = 1u << 3; ///< became empty (failure)
inline constexpr EventSet kEventAny =
    kEventDomain | kEventBounds | kEventValue;

class Domain {
 public:
  enum class Kind { kSet, kInterval };

  /// Default: an empty interval (the member initializers below).
  Domain() = default;

  /// Bitset domain containing every index in [0, n).
  static Domain all_of(std::size_t n);
  /// Closed numeric interval [lo, hi]; empty when lo > hi.
  static Domain interval(double lo, double hi);
  static Domain singleton(double v) { return interval(v, v); }

  Kind kind() const { return kind_; }
  bool is_set() const { return kind_ == Kind::kSet; }
  bool is_interval() const { return kind_ == Kind::kInterval; }

  // ---- common queries -----------------------------------------------------
  bool empty() const;
  /// Exactly one element (set) / lo == hi (interval).
  bool fixed() const;

  // ---- set domains --------------------------------------------------------
  std::size_t universe_size() const { return universe_; }
  std::size_t count() const { return count_; }
  bool contains(std::size_t idx) const;
  /// Smallest / largest member; call only on a non-empty set domain.
  std::size_t min_index() const;
  std::size_t max_index() const;
  /// The single member of a fixed set domain.
  std::size_t value_index() const { return min_index(); }
  /// Invoke f(index) for every member, ascending.
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const unsigned b = static_cast<unsigned>(__builtin_ctzll(bits));
        f(w * 64 + b);
        bits &= bits - 1;
      }
    }
  }

  /// Mutators: return the events the change raises (kEventNone on no-op,
  /// kEventWipeout bit set when the domain became empty).
  EventSet remove(std::size_t idx);
  /// Keep only idx; wipes out when idx is not a member.
  EventSet bind(std::size_t idx);

  // ---- interval domains ---------------------------------------------------
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  bool contains(double v) const;
  EventSet clamp_lo(double lo);
  EventSet clamp_hi(double hi);
  EventSet bind_value(double v);

  std::string to_string() const;

  friend bool operator==(const Domain&, const Domain&) = default;

 private:
  Kind kind_ = Kind::kInterval;

  // set representation
  std::vector<std::uint64_t> words_;
  std::size_t universe_ = 0;
  std::size_t count_ = 0;

  // interval representation
  double lo_ = 0.0;
  double hi_ = -1.0;
};

}  // namespace stemcp::fd
