#include "fd/domain.h"

#include <cassert>
#include <sstream>

namespace stemcp::fd {

namespace {
constexpr std::uint64_t kAllOnes = ~std::uint64_t{0};
}

Domain Domain::all_of(std::size_t n) {
  Domain d;
  d.kind_ = Kind::kSet;
  d.universe_ = n;
  d.count_ = n;
  d.words_.assign((n + 63) / 64, 0);
  for (std::size_t i = 0; i < d.words_.size(); ++i) {
    const std::size_t remaining = n - i * 64;
    d.words_[i] = remaining >= 64 ? kAllOnes : ((std::uint64_t{1} << remaining) - 1);
  }
  d.lo_ = 0.0;
  d.hi_ = n == 0 ? -1.0 : static_cast<double>(n - 1);
  return d;
}

Domain Domain::interval(double lo, double hi) {
  Domain d;
  d.kind_ = Kind::kInterval;
  d.lo_ = lo;
  d.hi_ = hi;
  return d;
}

bool Domain::empty() const {
  return is_set() ? count_ == 0 : lo_ > hi_;
}

bool Domain::fixed() const {
  return is_set() ? count_ == 1 : (!empty() && lo_ == hi_);
}

bool Domain::contains(std::size_t idx) const {
  if (!is_set() || idx >= universe_) return false;
  return (words_[idx / 64] >> (idx % 64)) & 1;
}

std::size_t Domain::min_index() const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return w * 64 + static_cast<unsigned>(__builtin_ctzll(words_[w]));
    }
  }
  return universe_;  // empty
}

std::size_t Domain::max_index() const {
  for (std::size_t w = words_.size(); w-- > 0;) {
    if (words_[w] != 0) {
      return w * 64 + 63 - static_cast<unsigned>(__builtin_clzll(words_[w]));
    }
  }
  return universe_;  // empty
}

EventSet Domain::remove(std::size_t idx) {
  assert(is_set());
  if (!contains(idx)) return kEventNone;
  const std::size_t old_min = min_index();
  const std::size_t old_max = max_index();
  words_[idx / 64] &= ~(std::uint64_t{1} << (idx % 64));
  --count_;
  if (count_ == 0) return kEventDomain | kEventBounds | kEventWipeout;
  EventSet e = kEventDomain;
  if (idx == old_min || idx == old_max) e |= kEventBounds;
  if (count_ == 1) e |= kEventValue;
  return e;
}

EventSet Domain::bind(std::size_t idx) {
  assert(is_set());
  if (!contains(idx)) {
    // Binding to a non-member wipes the domain out.
    if (count_ == 0) return kEventWipeout;
    words_.assign(words_.size(), 0);
    count_ = 0;
    return kEventDomain | kEventBounds | kEventWipeout;
  }
  if (count_ == 1) return kEventNone;
  words_.assign(words_.size(), 0);
  words_[idx / 64] = std::uint64_t{1} << (idx % 64);
  count_ = 1;
  return kEventDomain | kEventBounds | kEventValue;
}

bool Domain::contains(double v) const {
  return is_interval() && v >= lo_ && v <= hi_;
}

EventSet Domain::clamp_lo(double lo) {
  assert(is_interval());
  if (empty() || lo <= lo_) return kEventNone;
  lo_ = lo;
  if (lo_ > hi_) return kEventBounds | kEventWipeout;
  EventSet e = kEventDomain | kEventBounds;
  if (lo_ == hi_) e |= kEventValue;
  return e;
}

EventSet Domain::clamp_hi(double hi) {
  assert(is_interval());
  if (empty() || hi >= hi_) return kEventNone;
  hi_ = hi;
  if (lo_ > hi_) return kEventBounds | kEventWipeout;
  EventSet e = kEventDomain | kEventBounds;
  if (lo_ == hi_) e |= kEventValue;
  return e;
}

EventSet Domain::bind_value(double v) {
  assert(is_interval());
  if (!contains(v)) {
    const bool was_empty = empty();
    lo_ = 0.0;
    hi_ = -1.0;
    return was_empty ? kEventWipeout : (kEventBounds | kEventWipeout);
  }
  if (fixed()) return kEventNone;
  lo_ = hi_ = v;
  return kEventDomain | kEventBounds | kEventValue;
}

std::string Domain::to_string() const {
  std::ostringstream out;
  if (is_interval()) {
    if (empty()) return "[]";
    out << "[" << lo_ << ", " << hi_ << "]";
    return out.str();
  }
  out << "{";
  bool first = true;
  for_each([&](std::size_t i) {
    if (!first) out << ",";
    first = false;
    out << i;
  });
  out << "}";
  return out.str();
}

}  // namespace stemcp::fd
