#include "fd/derive.h"

#include <cmath>
#include <limits>

#include "core/constraints/functional.h"
#include "core/constraints/predicate.h"
#include "core/engine.h"
#include "core/variable.h"

namespace stemcp::fd {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Clamp helpers that skip non-finite bounds: unbounded inputs produce
/// infinite (or NaN, for inf-inf) bound arithmetic, and an infinite bound
/// can never prune anyway.
bool clamp_lo_finite(Problem& p, DomainVariable& v, double lo) {
  if (!std::isfinite(lo)) return !p.failed();
  return p.clamp_lo(v, lo);
}
bool clamp_hi_finite(Problem& p, DomainVariable& v, double hi) {
  if (!std::isfinite(hi)) return !p.failed();
  return p.clamp_hi(v, hi);
}

/// var <relation> bound (BoundConstraint).  Strict relations prune like
/// their weak forms — sound (no solution removed); the engine's final check
/// still rejects equality at a strict bound.
class BoundPropagator : public Propagator {
 public:
  BoundPropagator(Problem& p, DomainVariable& v, core::Relation r,
                  double bound)
      : Propagator(p, kFdUnaryAgenda), v_(&v), rel_(r), bound_(bound) {
    p.subscribe(v, *this, kEventBounds);
  }

  void filter() override {
    Problem& p = problem();
    switch (rel_) {
      case core::Relation::kLess:
      case core::Relation::kLessEqual:
        clamp_hi_finite(p, *v_, bound_);
        break;
      case core::Relation::kGreater:
      case core::Relation::kGreaterEqual:
        clamp_lo_finite(p, *v_, bound_);
        break;
      case core::Relation::kEqual:
        if (clamp_lo_finite(p, *v_, bound_)) clamp_hi_finite(p, *v_, bound_);
        break;
      case core::Relation::kNotEqual:
        if (v_->domain().fixed() && v_->domain().lo() == bound_) {
          p.bind_value(*v_, std::nan(""));  // wipe out: x == forbidden value
        }
        break;
    }
  }
  std::string type_name() const override { return "fd.bound"; }

 private:
  DomainVariable* v_;
  core::Relation rel_;
  double bound_;
};

/// lhs <relation> rhs over two interval variables (ComparisonConstraint).
class ComparisonPropagator : public Propagator {
 public:
  ComparisonPropagator(Problem& p, DomainVariable& l, DomainVariable& r,
                       core::Relation rel)
      : Propagator(p, kFdBinaryAgenda), l_(&l), r_(&r), rel_(rel) {
    p.subscribe(l, *this, kEventBounds);
    p.subscribe(r, *this, kEventBounds);
  }

  void filter() override {
    Problem& p = problem();
    switch (rel_) {
      case core::Relation::kLess:
      case core::Relation::kLessEqual:
        if (!clamp_hi_finite(p, *l_, r_->domain().hi())) return;
        clamp_lo_finite(p, *r_, l_->domain().lo());
        break;
      case core::Relation::kGreater:
      case core::Relation::kGreaterEqual:
        if (!clamp_lo_finite(p, *l_, r_->domain().lo())) return;
        clamp_hi_finite(p, *r_, l_->domain().hi());
        break;
      case core::Relation::kEqual:
        if (!clamp_lo_finite(p, *l_, r_->domain().lo())) return;
        if (!clamp_hi_finite(p, *l_, r_->domain().hi())) return;
        if (!clamp_lo_finite(p, *r_, l_->domain().lo())) return;
        clamp_hi_finite(p, *r_, l_->domain().hi());
        break;
      case core::Relation::kNotEqual:
        if (l_->domain().fixed() && r_->domain().fixed() &&
            l_->domain().lo() == r_->domain().lo()) {
          p.bind_value(*l_, std::nan(""));  // wipe out
        }
        break;
    }
  }
  std::string type_name() const override { return "fd.comparison"; }

 private:
  DomainVariable* l_;
  DomainVariable* r_;
  core::Relation rel_;
};

/// left + gap <= right (SpacingConstraint).
class SpacingPropagator : public Propagator {
 public:
  SpacingPropagator(Problem& p, DomainVariable& l, DomainVariable& r,
                    double gap)
      : Propagator(p, kFdBinaryAgenda), l_(&l), r_(&r), gap_(gap) {
    p.subscribe(l, *this, kEventBounds);
    p.subscribe(r, *this, kEventBounds);
  }

  void filter() override {
    Problem& p = problem();
    if (!clamp_hi_finite(p, *l_, r_->domain().hi() - gap_)) return;
    clamp_lo_finite(p, *r_, l_->domain().lo() + gap_);
  }
  std::string type_name() const override { return "fd.spacing"; }

 private:
  DomainVariable* l_;
  DomainVariable* r_;
  double gap_;
};

/// result = sum(inputs) + offset (UniAdditionConstraint): forward interval
/// sum plus reverse pruning of each input from the result and the others.
class SumPropagator : public Propagator {
 public:
  SumPropagator(Problem& p, DomainVariable& result,
                std::vector<DomainVariable*> inputs, double offset)
      : Propagator(p, kFdLinearAgenda), result_(&result),
        inputs_(std::move(inputs)), offset_(offset) {
    p.subscribe(result, *this, kEventBounds);
    for (DomainVariable* in : inputs_) p.subscribe(*in, *this, kEventBounds);
  }

  void filter() override {
    Problem& p = problem();
    double lo = offset_, hi = offset_;
    for (DomainVariable* in : inputs_) {
      lo += in->domain().lo();
      hi += in->domain().hi();
    }
    if (!clamp_lo_finite(p, *result_, lo)) return;
    if (!clamp_hi_finite(p, *result_, hi)) return;
    for (DomainVariable* in : inputs_) {
      // in = result - offset - (others): subtract this input's own
      // contribution back out of the full sums.
      const double others_lo = lo - in->domain().lo();
      const double others_hi = hi - in->domain().hi();
      if (!clamp_lo_finite(p, *in, result_->domain().lo() - others_hi)) return;
      if (!clamp_hi_finite(p, *in, result_->domain().hi() - others_lo)) return;
    }
  }
  std::string type_name() const override { return "fd.sum"; }

 private:
  DomainVariable* result_;
  std::vector<DomainVariable*> inputs_;
  double offset_;
};

/// result = max(inputs) (UniMaximumConstraint) or min (UniMinimumConstraint).
class ExtremumPropagator : public Propagator {
 public:
  ExtremumPropagator(Problem& p, DomainVariable& result,
                     std::vector<DomainVariable*> inputs, bool is_max)
      : Propagator(p, kFdLinearAgenda), result_(&result),
        inputs_(std::move(inputs)), is_max_(is_max) {
    p.subscribe(result, *this, kEventBounds);
    for (DomainVariable* in : inputs_) p.subscribe(*in, *this, kEventBounds);
  }

  void filter() override {
    Problem& p = problem();
    if (inputs_.empty()) return;
    if (is_max_) {
      double lo = -kInf, hi = -kInf;
      for (DomainVariable* in : inputs_) {
        lo = std::max(lo, in->domain().lo());
        hi = std::max(hi, in->domain().hi());
      }
      if (!clamp_lo_finite(p, *result_, lo)) return;
      if (!clamp_hi_finite(p, *result_, hi)) return;
      // Every input is <= the max.
      for (DomainVariable* in : inputs_) {
        if (!clamp_hi_finite(p, *in, result_->domain().hi())) return;
      }
    } else {
      double lo = kInf, hi = kInf;
      for (DomainVariable* in : inputs_) {
        lo = std::min(lo, in->domain().lo());
        hi = std::min(hi, in->domain().hi());
      }
      if (!clamp_lo_finite(p, *result_, lo)) return;
      if (!clamp_hi_finite(p, *result_, hi)) return;
      for (DomainVariable* in : inputs_) {
        if (!clamp_lo_finite(p, *in, result_->domain().lo())) return;
      }
    }
  }
  std::string type_name() const override {
    return is_max_ ? "fd.max" : "fd.min";
  }

 private:
  DomainVariable* result_;
  std::vector<DomainVariable*> inputs_;
  bool is_max_;
};

/// result = scale * input + offset (UniLinearConstraint), both directions.
class LinearPropagator : public Propagator {
 public:
  LinearPropagator(Problem& p, DomainVariable& result, DomainVariable& input,
                   double scale, double offset)
      : Propagator(p, kFdLinearAgenda), result_(&result), input_(&input),
        scale_(scale), offset_(offset) {
    p.subscribe(result, *this, kEventBounds);
    p.subscribe(input, *this, kEventBounds);
  }

  void filter() override {
    Problem& p = problem();
    if (scale_ == 0.0) {
      clamp_lo_finite(p, *result_, offset_);
      clamp_hi_finite(p, *result_, offset_);
      return;
    }
    const double a = scale_ * input_->domain().lo() + offset_;
    const double b = scale_ * input_->domain().hi() + offset_;
    if (!clamp_lo_finite(p, *result_, std::min(a, b))) return;
    if (!clamp_hi_finite(p, *result_, std::max(a, b))) return;
    const double c = (result_->domain().lo() - offset_) / scale_;
    const double d = (result_->domain().hi() - offset_) / scale_;
    if (!clamp_lo_finite(p, *input_, std::min(c, d))) return;
    clamp_hi_finite(p, *input_, std::max(c, d));
  }
  std::string type_name() const override { return "fd.linear"; }

 private:
  DomainVariable* result_;
  DomainVariable* input_;
  double scale_;
  double offset_;
};

/// result = product(inputs) * scale (UniProductConstraint), forward only —
/// interval product via the endpoint-product envelope.
class ProductPropagator : public Propagator {
 public:
  ProductPropagator(Problem& p, DomainVariable& result,
                    std::vector<DomainVariable*> inputs, double scale)
      : Propagator(p, kFdLinearAgenda), result_(&result),
        inputs_(std::move(inputs)), scale_(scale) {
    for (DomainVariable* in : inputs_) p.subscribe(*in, *this, kEventBounds);
  }

  void filter() override {
    Problem& p = problem();
    double lo = scale_, hi = scale_;
    for (DomainVariable* in : inputs_) {
      const double a = lo * in->domain().lo();
      const double b = lo * in->domain().hi();
      const double c = hi * in->domain().lo();
      const double d = hi * in->domain().hi();
      lo = std::min(std::min(a, b), std::min(c, d));
      hi = std::max(std::max(a, b), std::max(c, d));
      if (!std::isfinite(lo) || !std::isfinite(hi)) return;  // unbounded input
    }
    if (!clamp_lo_finite(p, *result_, lo)) return;
    clamp_hi_finite(p, *result_, hi);
  }
  std::string type_name() const override { return "fd.product"; }

 private:
  DomainVariable* result_;
  std::vector<DomainVariable*> inputs_;
  double scale_;
};

/// Look every argument up in the map; nullopt when any is missing.
bool map_all(const std::vector<core::Variable*>& args, const VarMap& map,
             std::vector<DomainVariable*>* out) {
  out->clear();
  for (core::Variable* a : args) {
    auto it = map.find(a);
    if (it == map.end()) return false;
    out->push_back(it->second);
  }
  return true;
}

/// Inputs of a functional constraint = arguments minus the result variable
/// (one occurrence).
bool map_inputs(const core::FunctionalConstraint& c, const VarMap& map,
                std::vector<DomainVariable*>* inputs, DomainVariable** result) {
  const core::Variable* rv = c.result_variable();
  if (rv == nullptr) return false;
  auto rit = map.find(rv);
  if (rit == map.end()) return false;
  *result = rit->second;
  inputs->clear();
  bool skipped_result = false;
  for (core::Variable* a : c.arguments()) {
    if (a == rv && !skipped_result) {
      skipped_result = true;
      continue;
    }
    auto it = map.find(a);
    if (it == map.end()) return false;
    inputs->push_back(it->second);
  }
  return true;
}

}  // namespace

std::size_t derive_interval_network(Problem& p,
                                    const core::PropagationContext& ctx,
                                    const VarMap& map) {
  std::size_t derived = 0;
  std::vector<DomainVariable*> mapped;
  for (core::Constraint* c : ctx.all_constraints()) {
    if (auto* b = dynamic_cast<core::BoundConstraint*>(c)) {
      if (!b->bound().is_number()) continue;
      if (!map_all(b->arguments(), map, &mapped)) continue;
      for (DomainVariable* v : mapped) {
        p.make<BoundPropagator>(*v, b->relation(), b->bound().as_number());
        ++derived;
      }
    } else if (auto* rg = dynamic_cast<core::RangeConstraint*>(c)) {
      if (!map_all(rg->arguments(), map, &mapped)) continue;
      for (DomainVariable* v : mapped) {
        p.make<BoundPropagator>(*v, core::Relation::kGreaterEqual, rg->lo());
        p.make<BoundPropagator>(*v, core::Relation::kLessEqual, rg->hi());
        derived += 2;
      }
    } else if (auto* cmp = dynamic_cast<core::ComparisonConstraint*>(c)) {
      if (cmp->arguments().size() != 2) continue;
      if (!map_all(cmp->arguments(), map, &mapped)) continue;
      p.make<ComparisonPropagator>(*mapped[0], *mapped[1], cmp->relation());
      ++derived;
    } else if (auto* sp = dynamic_cast<core::SpacingConstraint*>(c)) {
      if (sp->arguments().size() != 2) continue;
      if (!map_all(sp->arguments(), map, &mapped)) continue;
      p.make<SpacingPropagator>(*mapped[0], *mapped[1], sp->gap());
      ++derived;
    } else if (auto* add = dynamic_cast<core::UniAdditionConstraint*>(c)) {
      std::vector<DomainVariable*> inputs;
      DomainVariable* result = nullptr;
      if (!map_inputs(*add, map, &inputs, &result)) continue;
      p.make<SumPropagator>(*result, std::move(inputs), add->offset());
      ++derived;
    } else if (auto* mx = dynamic_cast<core::UniMaximumConstraint*>(c)) {
      std::vector<DomainVariable*> inputs;
      DomainVariable* result = nullptr;
      if (!map_inputs(*mx, map, &inputs, &result)) continue;
      p.make<ExtremumPropagator>(*result, std::move(inputs), /*is_max=*/true);
      ++derived;
    } else if (auto* mn = dynamic_cast<core::UniMinimumConstraint*>(c)) {
      std::vector<DomainVariable*> inputs;
      DomainVariable* result = nullptr;
      if (!map_inputs(*mn, map, &inputs, &result)) continue;
      p.make<ExtremumPropagator>(*result, std::move(inputs), /*is_max=*/false);
      ++derived;
    } else if (auto* lin = dynamic_cast<core::UniLinearConstraint*>(c)) {
      std::vector<DomainVariable*> inputs;
      DomainVariable* result = nullptr;
      if (!map_inputs(*lin, map, &inputs, &result)) continue;
      if (inputs.size() != 1) continue;
      p.make<LinearPropagator>(*result, *inputs[0], lin->scale(),
                               lin->offset());
      ++derived;
    } else if (auto* prod = dynamic_cast<core::UniProductConstraint*>(c)) {
      std::vector<DomainVariable*> inputs;
      DomainVariable* result = nullptr;
      if (!map_inputs(*prod, map, &inputs, &result)) continue;
      p.make<ProductPropagator>(*result, std::move(inputs), prod->scale());
      ++derived;
    }
  }
  return derived;
}

CommitOutcome solve_and_commit(
    core::PropagationContext& ctx,
    const std::vector<std::pair<core::Variable*, double>>& assignments) {
  CommitOutcome out;

  // ---- FD advisory pass ---------------------------------------------------
  Problem problem;
  VarMap map;
  auto domain_for = [&](const core::Variable* v) -> Domain {
    for (const auto& [var, val] : assignments) {
      if (var == v) return Domain::singleton(val);
    }
    // User-pinned values are immovable (overwrite precedence: #USER
    // outranks propagated); everything else may be recomputed, so it gets
    // an unbounded interval.
    if (v->last_set_by().is_user() && v->value().is_number()) {
      return Domain::singleton(v->value().as_number());
    }
    return Domain::interval(-kInf, kInf);
  };
  // One FD variable per engine variable reachable from any constraint, plus
  // the assignment targets themselves (they may be unconstrained).
  auto ensure = [&](core::Variable* v) {
    if (map.count(v) != 0) return;
    map[v] = &problem.add_variable(v->path(), domain_for(v));
  };
  for (const auto& [var, val] : assignments) ensure(var);
  for (core::Constraint* c : ctx.all_constraints()) {
    for (core::Variable* a : c->arguments()) ensure(a);
  }
  out.propagators = derive_interval_network(problem, ctx, map);
  if (!problem.propagate_all()) out.fd_wipeout = true;
  out.prunings = problem.stats().prunings;

  // ---- authoritative engine commit ---------------------------------------
  const std::uint64_t restores_before = ctx.stats().restores;
  out.status = ctx.run_session([&]() -> core::Status {
    for (const auto& [var, val] : assignments) {
      core::Status s =
          var->set_in_session(core::Value(val), core::Justification::user());
      if (s.is_violation()) return s;
    }
    return core::Status::ok();
  });
  out.restores =
      static_cast<std::size_t>(ctx.stats().restores - restores_before);
  return out;
}

}  // namespace stemcp::fd
