#include "fd/solver.h"

namespace stemcp::fd {

// ---- Propagator -------------------------------------------------------------

Propagator::Propagator(Problem& p, const char* agenda)
    : problem_(&p), agenda_(agenda) {}

core::Status Propagator::propagate_scheduled(core::Variable*) {
  ++problem_->stats_.filter_runs;
  if (!problem_->failed()) filter();
  return core::Status::ok();
}

// ---- Problem ----------------------------------------------------------------

Problem::Problem() {
  scheduler_.set_priority_order(
      {kFdUnaryAgenda, kFdBinaryAgenda, kFdLinearAgenda, kFdGlobalAgenda});
}

Problem::~Problem() = default;

DomainVariable& Problem::add_variable(std::string name, Domain d) {
  auto owned = std::make_unique<DomainVariable>(std::move(name), std::move(d));
  owned->id_ = variables_.size();
  DomainVariable& ref = *owned;
  variables_.push_back(std::move(owned));
  return ref;
}

void Problem::subscribe(DomainVariable& v, Propagator& p, EventSet events) {
  v.watchers_.emplace_back(&p, events);
}

void Problem::schedule(Propagator& p) {
  scheduler_.schedule_cached(p, p.agenda_name(), nullptr);
}

void Problem::save(DomainVariable& v) {
  if (v.saved_level_ == level_) return;
  trail_.push_back({&v, v.domain_, v.saved_level_});
  v.saved_level_ = level_;
}

bool Problem::after_mutation(DomainVariable& v, EventSet events) {
  if (events == kEventNone) return true;
  ++stats_.prunings;
  if (events & kEventWipeout) {
    ++stats_.wipeouts;
    failed_ = true;
    return false;
  }
  for (auto& [watcher, mask] : v.watchers_) {
    if (mask & events) schedule(*watcher);
  }
  return true;
}

bool Problem::remove(DomainVariable& v, std::size_t idx) {
  save(v);
  return after_mutation(v, v.domain_.remove(idx));
}

bool Problem::bind(DomainVariable& v, std::size_t idx) {
  save(v);
  return after_mutation(v, v.domain_.bind(idx));
}

bool Problem::clamp_lo(DomainVariable& v, double lo) {
  save(v);
  return after_mutation(v, v.domain_.clamp_lo(lo));
}

bool Problem::clamp_hi(DomainVariable& v, double hi) {
  save(v);
  return after_mutation(v, v.domain_.clamp_hi(hi));
}

bool Problem::bind_value(DomainVariable& v, double value) {
  save(v);
  return after_mutation(v, v.domain_.bind_value(value));
}

bool Problem::propagate() {
  while (!failed_) {
    auto entry = scheduler_.pop_highest_priority();
    if (!entry.has_value()) return true;  // fixpoint
    // Every entry queued here is one of our Propagators (the scheduler is
    // private to this Problem).
    entry->task->propagate_scheduled(nullptr);
  }
  scheduler_.clear();
  return false;
}

bool Problem::propagate_all() {
  for (auto& p : propagators_) schedule(*p);
  return propagate();
}

Problem::Mark Problem::mark() {
  Mark m{trail_.size(), level_};
  level_ = ++level_counter_;
  return m;
}

void Problem::undo_to(const Mark& m) {
  while (trail_.size() > m.trail_size) {
    TrailEntry& e = trail_.back();
    e.var->domain_ = std::move(e.saved);
    e.var->saved_level_ = e.prev_level;
    trail_.pop_back();
  }
  level_ = m.level;
  failed_ = false;
  scheduler_.clear();
}

// ---- Search -----------------------------------------------------------------

DomainVariable* Search::pick_mrv() const {
  DomainVariable* best = nullptr;
  std::size_t best_count = 0;
  for (auto& v : problem_->variables()) {
    if (!v->domain().is_set() || v->domain().fixed()) continue;
    const std::size_t c = v->domain().count();
    if (best == nullptr || c < best_count) {
      best = v.get();
      best_count = c;
    }
  }
  return best;
}

bool Search::solve(const Options& opts,
                   const std::function<bool()>& on_solution) {
  stats_ = {};
  bool stop = false;
  dfs(opts, on_solution, 0, stop);
  return stats_.solutions > 0;
}

bool Search::dfs(const Options& opts,
                 const std::function<bool()>& on_solution,
                 std::uint64_t depth, bool& stop) {
  if (problem_->failed()) return false;
  DomainVariable* var = pick_mrv();
  if (var == nullptr) {
    ++stats_.solutions;
    if (!on_solution()) stop = true;
    if (opts.max_solutions != 0 && stats_.solutions >= opts.max_solutions) {
      stop = true;
    }
    return true;
  }
  // Snapshot the candidate order; the domain shrinks under our feet as
  // sibling branches propagate.
  std::vector<std::size_t> values;
  values.reserve(var->domain().count());
  var->domain().for_each([&](std::size_t idx) { values.push_back(idx); });
  bool found = false;
  for (std::size_t idx : values) {
    if (stop) break;
    if (opts.max_nodes != 0 && stats_.nodes >= opts.max_nodes) {
      stop = true;
      break;
    }
    ++stats_.nodes;
    if (depth + 1 > stats_.max_depth) stats_.max_depth = depth + 1;
    const Problem::Mark m = problem_->mark();
    if (problem_->bind(*var, idx) && problem_->propagate()) {
      found = dfs(opts, on_solution, depth + 1, stop) || found;
    } else {
      ++stats_.fails;
    }
    problem_->undo_to(m);
  }
  return found;
}

// ---- NotEqualOffsetPropagator ----------------------------------------------

NotEqualOffsetPropagator::NotEqualOffsetPropagator(Problem& p,
                                                   DomainVariable& x,
                                                   DomainVariable& y,
                                                   long long offset)
    : Propagator(p, kFdBinaryAgenda), x_(&x), y_(&y), offset_(offset) {
  p.subscribe(x, *this, kEventValue);
  p.subscribe(y, *this, kEventValue);
}

void NotEqualOffsetPropagator::filter() {
  Problem& p = problem();
  if (x_->domain().fixed()) {
    const long long forbidden =
        static_cast<long long>(x_->domain().value_index()) - offset_;
    if (forbidden >= 0 &&
        y_->domain().contains(static_cast<std::size_t>(forbidden))) {
      if (!p.remove(*y_, static_cast<std::size_t>(forbidden))) return;
    }
  }
  if (y_->domain().fixed()) {
    const long long forbidden =
        static_cast<long long>(y_->domain().value_index()) + offset_;
    if (forbidden >= 0 &&
        x_->domain().contains(static_cast<std::size_t>(forbidden))) {
      p.remove(*x_, static_cast<std::size_t>(forbidden));
    }
  }
}

}  // namespace stemcp::fd
