#include "service/design_service.h"

#include <sstream>
#include <utility>

#include "core/core.h"
#include "stem/cell.h"
#include "stem/editor.h"
#include "stem/io.h"
#include "stem/net.h"
#include "stem/report.h"

namespace stemcp::service {

using core::Status;
using core::Value;

const char* to_string(RequestType t) {
  switch (t) {
    case RequestType::kOpen: return "open";
    case RequestType::kLoad: return "load";
    case RequestType::kSave: return "save";
    case RequestType::kAssign: return "assign";
    case RequestType::kBatchAssign: return "batch-assign";
    case RequestType::kEdit: return "edit";
    case RequestType::kQuery: return "query";
    case RequestType::kReport: return "report";
    case RequestType::kClose: return "close";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// SessionManager

std::shared_ptr<DesignSession> SessionManager::open(const std::string& name,
                                                    bool collect_metrics,
                                                    bool collect_trace) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.count(name) != 0) return nullptr;
  auto s = std::make_shared<DesignSession>(name, collect_metrics,
                                           collect_trace);
  sessions_.emplace(name, s);
  return s;
}

std::shared_ptr<DesignSession> SessionManager::find(
    const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(name);
  return it == sessions_.end() ? nullptr : it->second;
}

bool SessionManager::close(const std::string& name) {
  std::shared_ptr<DesignSession> victim;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = sessions_.find(name);
    if (it == sessions_.end()) return false;
    victim = std::move(it->second);
    sessions_.erase(it);
  }
  // `victim` dies here unless a request is still in flight; either way the
  // session destructor (→ context destructor) folds its stats into the
  // process-global metrics off the registry lock.
  return true;
}

std::vector<std::string> SessionManager::names() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(sessions_.size());
  for (const auto& [name, s] : sessions_) out.push_back(name);
  return out;
}

std::size_t SessionManager::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

// ---------------------------------------------------------------------------
// Request execution (session mutex held)

namespace {

void fill_propagation_outcome(Response& resp, core::PropagationContext& ctx,
                              std::uint64_t restores_before, Status st) {
  resp.violation = st.is_violation();
  if (resp.violation && ctx.last_violation()) {
    resp.violation_message = ctx.last_violation()->to_string();
  }
  resp.variables_restored = ctx.stats().restores - restores_before;
}

void do_load(DesignSession& s, const Request& r, Response& resp) {
  try {
    env::LibraryReader::read_string(s.library(), r.text);
  } catch (const std::exception& e) {
    resp.ok = false;
    resp.error = e.what();
    return;
  }
  resp.ok = true;
  resp.text = "loaded " + std::to_string(s.library().cells().size()) +
              " cell(s)";
}

void do_save(DesignSession& s, Response& resp) {
  resp.text = env::LibraryWriter::to_string(s.library());
  resp.ok = true;
}

void do_assign(DesignSession& s, const Request& r, Response& resp,
               bool batched) {
  core::PropagationContext& ctx = s.library().context();
  std::vector<std::pair<core::Variable*, double>> targets;
  targets.reserve(r.assignments.size());
  for (const Assignment& a : r.assignments) {
    core::Variable* v = s.find_variable(a.variable);
    if (v == nullptr) {
      resp.error = "unknown variable '" + a.variable + "'";
      return;
    }
    targets.emplace_back(v, a.value);
  }
  const std::uint64_t restores_before = ctx.stats().restores;
  Status st = Status::ok();
  if (batched) {
    // One propagation wave for the whole batch: every assignment lands
    // before the single agenda drain and final check sweep; a violation
    // restores the entire wave (all-or-nothing).
    std::uint64_t applied = 0;
    st = ctx.run_session([&]() -> Status {
      for (auto& [var, value] : targets) {
        const Status one =
            var->set_in_session(Value(value), core::Justification::user());
        if (one.is_violation()) return one;
        ++applied;
      }
      return Status::ok();
    });
    resp.assignments_applied = st.is_violation() ? 0 : applied;
  } else {
    for (auto& [var, value] : targets) {
      st = var->set_user(Value(value));
      if (st.is_violation()) break;
      ++resp.assignments_applied;
    }
  }
  resp.ok = true;
  fill_propagation_outcome(resp, ctx, restores_before, st);
}

env::CellClass* require_cell(DesignSession& s, const std::string& name,
                             Response& resp) {
  env::CellClass* c = s.library().find(name);
  if (c == nullptr) resp.error = "unknown cell '" + name + "'";
  return c;
}

/// Structural edit mini-language (docs/SERVICE.md).  One command per
/// request; propagating edits report violation/restore outcomes like
/// assignments do.
void do_edit(DesignSession& s, const Request& r, Response& resp) {
  core::PropagationContext& ctx = s.library().context();
  const std::uint64_t restores_before = ctx.stats().restores;
  std::istringstream in(r.text);
  std::string op;
  if (!(in >> op)) {
    resp.error =
        "edit needs a command: cell|signal|param|delay|leaf-delay|spec|"
        "subcell|net|conn|io|build-delays";
    return;
  }
  try {
    if (op == "cell") {
      std::string name;
      if (!(in >> name)) {
        resp.error = "edit cell <name> [super <class>] [generic]";
        return;
      }
      env::CellClass* super = nullptr;
      bool generic = false;
      std::string word;
      while (in >> word) {
        if (word == "super") {
          std::string sname;
          if (!(in >> sname) ||
              (super = require_cell(s, sname, resp)) == nullptr) {
            if (resp.error.empty()) resp.error = "super needs a class name";
            return;
          }
        } else if (word == "generic") {
          generic = true;
        } else {
          resp.error = "unknown cell attribute '" + word + "'";
          return;
        }
      }
      env::CellClass& c = s.library().define_cell(name, super);
      c.set_generic(generic);
      resp.text = "defined cell " + name;
    } else if (op == "signal") {
      std::string cell, name, dir;
      if (!(in >> cell >> name >> dir)) {
        resp.error = "edit signal <cell> <name> <input|output|inout>";
        return;
      }
      env::CellClass* c = require_cell(s, cell, resp);
      if (c == nullptr) return;
      const env::SignalDirection d =
          dir == "input" ? env::SignalDirection::kInput
          : dir == "output" ? env::SignalDirection::kOutput
                            : env::SignalDirection::kInOut;
      c->declare_signal(name, d);
      resp.text = "declared signal " + cell + "." + name;
    } else if (op == "param") {
      std::string cell, name;
      double lo = 0.0, hi = 0.0;
      if (!(in >> cell >> name >> lo >> hi)) {
        resp.error = "edit param <cell> <name> <lo> <hi> [default <v>]";
        return;
      }
      env::CellClass* c = require_cell(s, cell, resp);
      if (c == nullptr) return;
      Value def;
      std::string word;
      if (in >> word) {
        double v = 0.0;
        if (word != "default" || !(in >> v)) {
          resp.error = "expected: default <number>";
          return;
        }
        def = Value(v);
      }
      c->declare_parameter(name, lo, hi, def);
      resp.text = "declared param " + cell + "." + name;
    } else if (op == "delay") {
      std::string cell, from, to;
      if (!(in >> cell >> from >> to)) {
        resp.error = "edit delay <cell> <from> <to>";
        return;
      }
      env::CellClass* c = require_cell(s, cell, resp);
      if (c == nullptr) return;
      c->declare_delay(from, to);
      resp.text = "declared delay " + cell + "." + from + "->" + to;
    } else if (op == "leaf-delay") {
      std::string cell, from, to;
      double seconds = 0.0;
      if (!(in >> cell >> from >> to >> seconds)) {
        resp.error = "edit leaf-delay <cell> <from> <to> <seconds>";
        return;
      }
      env::CellClass* c = require_cell(s, cell, resp);
      if (c == nullptr) return;
      const Status st = c->set_leaf_delay(from, to, seconds);
      resp.text = "leaf delay " + cell + "." + from + "->" + to;
      resp.ok = true;
      fill_propagation_outcome(resp, ctx, restores_before, st);
      return;
    } else if (op == "spec") {
      std::string cell, from, to, rel;
      double bound = 0.0;
      if (!(in >> cell >> from >> to >> rel >> bound)) {
        resp.error = "edit spec <cell> <from> <to> <=|>=|<|> <bound>";
        return;
      }
      env::CellClass* c = require_cell(s, cell, resp);
      if (c == nullptr) return;
      core::Relation relation;
      if (rel == "<=") {
        relation = core::Relation::kLessEqual;
      } else if (rel == ">=") {
        relation = core::Relation::kGreaterEqual;
      } else if (rel == "<") {
        relation = core::Relation::kLess;
      } else if (rel == ">") {
        relation = core::Relation::kGreater;
      } else {
        resp.error = "unknown spec relation '" + rel + "'";
        return;
      }
      env::ClassDelayVar& d = c->declare_delay(from, to);
      auto& bc = ctx.make<core::BoundConstraint>(relation, Value(bound));
      const Status st = bc.add_argument(d);
      resp.text = "spec " + cell + "." + from + "->" + to + " " + rel + " " +
                  std::to_string(bound);
      resp.ok = true;
      fill_propagation_outcome(resp, ctx, restores_before, st);
      return;
    } else if (op == "subcell") {
      std::string parent, name, cls;
      if (!(in >> parent >> name >> cls)) {
        resp.error = "edit subcell <parent> <name> <class> [<x> <y>]";
        return;
      }
      env::CellClass* p = require_cell(s, parent, resp);
      if (p == nullptr) return;
      env::CellClass* c = require_cell(s, cls, resp);
      if (c == nullptr) return;
      core::Point t{0, 0};
      in >> t.x >> t.y;  // optional placement
      p->add_subcell(*c, name, core::Transform::translate(t));
      resp.text = "placed " + parent + "." + name + " : " + cls;
    } else if (op == "net") {
      std::string cell, name;
      if (!(in >> cell >> name)) {
        resp.error = "edit net <cell> <name>";
        return;
      }
      env::CellClass* c = require_cell(s, cell, resp);
      if (c == nullptr) return;
      c->add_net(name);
      resp.text = "added net " + cell + "." + name;
    } else if (op == "conn" || op == "io") {
      std::string cell, net;
      if (!(in >> cell >> net)) {
        resp.error = "edit " + op + " <cell> <net> ...";
        return;
      }
      env::CellClass* c = require_cell(s, cell, resp);
      if (c == nullptr) return;
      env::Net* n = c->find_net(net);
      if (n == nullptr) {
        resp.error = "unknown net '" + net + "' on " + cell;
        return;
      }
      Status st = Status::ok();
      if (op == "conn") {
        std::string inst, sig;
        if (!(in >> inst >> sig)) {
          resp.error = "edit conn <cell> <net> <instance> <signal>";
          return;
        }
        env::CellInstance* i = c->find_subcell(inst);
        if (i == nullptr) {
          resp.error = "unknown subcell '" + inst + "' on " + cell;
          return;
        }
        st = n->connect(*i, sig);
      } else {
        std::string sig;
        if (!(in >> sig)) {
          resp.error = "edit io <cell> <net> <signal>";
          return;
        }
        st = n->connect_io(sig);
      }
      resp.text = "connected " + cell + "." + net;
      resp.ok = true;
      fill_propagation_outcome(resp, ctx, restores_before, st);
      return;
    } else if (op == "build-delays") {
      std::string cell;
      if (!(in >> cell)) {
        resp.error = "edit build-delays <cell>";
        return;
      }
      env::CellClass* c = require_cell(s, cell, resp);
      if (c == nullptr) return;
      c->build_delay_networks();
      resp.text = "built delay networks for " + cell;
    } else {
      resp.error = "unknown edit command '" + op + "'";
      return;
    }
  } catch (const std::exception& e) {
    resp.ok = false;
    resp.error = e.what();
    return;
  }
  resp.ok = true;
}

void do_query(DesignSession& s, const Request& r, Response& resp) {
  std::istringstream in(r.text);
  std::string what;
  in >> what;
  std::ostringstream out;
  if (what.empty() || what == "cells") {
    for (const auto& c : s.library().cells()) out << c->name() << '\n';
    out << s.library().cells().size() << " cell(s)\n";
  } else if (what == "vars") {
    std::string cell;
    in >> cell;
    const std::string prefix = cell.empty() ? "" : cell + ".";
    s.for_each_variable([&](core::Variable& v) {
      if (!prefix.empty() && v.path().compare(0, prefix.size(), prefix) != 0) {
        return;
      }
      out << env::ConstraintInspector::describe(v) << '\n';
    });
  } else if (what == "stats") {
    core::PropagationContext& ctx = s.library().context();
    out << env::DesignReport::propagation_stats(ctx);
    if (ctx.metrics().enabled()) {
      out << "metrics: " << ctx.metrics().to_json() << '\n';
    }
    out << "requests served: " << s.requests_served() << '\n';
  } else {
    core::Variable* v = s.find_variable(what);
    if (v == nullptr) {
      resp.error = "unknown query target '" + what +
                   "' (try: cells, vars [cell], stats, <variable path>)";
      return;
    }
    out << env::ConstraintInspector::describe(*v) << '\n';
  }
  resp.text = out.str();
  resp.ok = true;
}

void do_report(DesignSession& s, const Request& r, Response& resp) {
  env::DesignReport::Options opts;
  opts.include_propagation_stats = true;
  std::istringstream in(r.text);
  std::string cell;
  if (in >> cell) {
    env::CellClass* c = require_cell(s, cell, resp);
    if (c == nullptr) return;
    resp.text = env::DesignReport::cell(*c, opts);
  } else {
    resp.text = env::DesignReport::library(s.library(), opts);
  }
  resp.ok = true;
}

}  // namespace

// ---------------------------------------------------------------------------
// DesignService

DesignService::DesignService(std::size_t workers) {
  if (workers == 0) workers = 1;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

DesignService::~DesignService() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::future<Response> DesignService::submit(Request r) {
  Job job;
  job.request = std::move(r);
  std::future<Response> fut = job.done.get_future();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      Response resp;
      resp.error = "service is shutting down";
      job.done.set_value(std::move(resp));
      return fut;
    }
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
  return fut;
}

Response DesignService::call(Request r) { return submit(std::move(r)).get(); }

void DesignService::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, queue drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    Response resp;
    try {
      resp = execute(job.request);
    } catch (const std::exception& e) {
      resp.ok = false;
      resp.error = e.what();
      resp.session = job.request.session;
    } catch (...) {
      resp.ok = false;
      resp.error = "unknown execution error";
      resp.session = job.request.session;
    }
    served_.fetch_add(1, std::memory_order_relaxed);
    job.done.set_value(std::move(resp));
  }
}

Response DesignService::execute(const Request& r) {
  Response resp;
  resp.session = r.session;
  if (r.session.empty()) {
    resp.error = "request needs a session name";
    return resp;
  }

  if (r.type == RequestType::kOpen) {
    bool metrics = false;
    bool trace = false;
    std::istringstream in(r.text);
    std::string opt;
    while (in >> opt) {
      if (opt == "metrics") {
        metrics = true;
      } else if (opt == "trace") {
        trace = true;
      } else {
        resp.error = "unknown open option '" + opt + "'";
        return resp;
      }
    }
    if (sessions_.open(r.session, metrics, trace) == nullptr) {
      resp.error = "session '" + r.session + "' already exists";
      return resp;
    }
    resp.ok = true;
    resp.text = "opened " + r.session;
    return resp;
  }

  if (r.type == RequestType::kClose) {
    if (!sessions_.close(r.session)) {
      resp.error = "unknown session '" + r.session + "'";
      return resp;
    }
    resp.ok = true;
    resp.text = "closed " + r.session;
    return resp;
  }

  const std::shared_ptr<DesignSession> s = sessions_.find(r.session);
  if (s == nullptr) {
    resp.error = "unknown session '" + r.session + "'";
    return resp;
  }
  const std::lock_guard<std::mutex> lock(s->mutex());
  s->count_request();
  switch (r.type) {
    case RequestType::kLoad: do_load(*s, r, resp); break;
    case RequestType::kSave: do_save(*s, resp); break;
    case RequestType::kAssign: do_assign(*s, r, resp, false); break;
    case RequestType::kBatchAssign: do_assign(*s, r, resp, true); break;
    case RequestType::kEdit: do_edit(*s, r, resp); break;
    case RequestType::kQuery: do_query(*s, r, resp); break;
    case RequestType::kReport: do_report(*s, r, resp); break;
    case RequestType::kOpen:
    case RequestType::kClose: break;  // handled above
  }
  return resp;
}

}  // namespace stemcp::service
