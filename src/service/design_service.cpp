#include "service/design_service.h"

#include <algorithm>
#include <cstdio>
#include <iterator>
#include <sstream>
#include <utility>

#include "core/core.h"
#include "core/trace.h"
#include "fd/selection.h"
#include "persist/checkpoint.h"
#include "persist/recovery.h"
#include "stem/cell.h"
#include "stem/editor.h"
#include "stem/io.h"
#include "stem/net.h"
#include "stem/report.h"

namespace stemcp::service {

using core::Status;
using core::Value;

const char* to_string(RequestType t) {
  switch (t) {
    case RequestType::kOpen: return "open";
    case RequestType::kLoad: return "load";
    case RequestType::kSave: return "save";
    case RequestType::kAssign: return "assign";
    case RequestType::kBatchAssign: return "batch-assign";
    case RequestType::kEdit: return "edit";
    case RequestType::kQuery: return "query";
    case RequestType::kReport: return "report";
    case RequestType::kClose: return "close";
    case RequestType::kJournal: return "journal";
    case RequestType::kCheckpoint: return "checkpoint";
    case RequestType::kRecover: return "recover";
    case RequestType::kSelect: return "select";
    case RequestType::kSelectStats: return "select-stats";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// SessionManager

std::shared_ptr<DesignSession> SessionManager::open(const std::string& name,
                                                    bool collect_metrics,
                                                    bool collect_trace) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.count(name) != 0) return nullptr;
  auto s = std::make_shared<DesignSession>(name, collect_metrics,
                                           collect_trace);
  sessions_.emplace(name, s);
  return s;
}

bool SessionManager::insert(std::shared_ptr<DesignSession> s) {
  const std::string name = s->name();
  const std::lock_guard<std::mutex> lock(mu_);
  return sessions_.emplace(name, std::move(s)).second;
}

std::shared_ptr<DesignSession> SessionManager::find(
    const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(name);
  return it == sessions_.end() ? nullptr : it->second;
}

bool SessionManager::close(const std::string& name) {
  std::shared_ptr<DesignSession> victim;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = sessions_.find(name);
    if (it == sessions_.end()) return false;
    victim = std::move(it->second);
    sessions_.erase(it);
  }
  // `victim` dies here unless a request is still in flight; either way the
  // session destructor (→ context destructor) folds its stats into the
  // process-global metrics off the registry lock.
  return true;
}

std::vector<std::string> SessionManager::names() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(sessions_.size());
  for (const auto& [name, s] : sessions_) out.push_back(name);
  return out;
}

std::size_t SessionManager::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

// ---------------------------------------------------------------------------
// Request execution (session mutex held)

namespace {

void fill_propagation_outcome(Response& resp, core::PropagationContext& ctx,
                              std::uint64_t restores_before, Status st) {
  resp.violation = st.is_violation();
  if (resp.violation && ctx.last_violation()) {
    resp.violation_message = ctx.last_violation()->to_string();
  }
  resp.variables_restored = ctx.stats().restores - restores_before;
}

void do_load(DesignSession& s, const Request& r, Response& resp) {
  try {
    env::LibraryReader::read_string(s.library(), r.text);
  } catch (const std::exception& e) {
    resp.ok = false;
    resp.error = e.what();
    return;
  }
  resp.ok = true;
  resp.text = "loaded " + std::to_string(s.library().cells().size()) +
              " cell(s)";
}

void do_save(DesignSession& s, Response& resp) {
  resp.text = env::LibraryWriter::to_string(s.library());
  resp.ok = true;
}

void do_assign(DesignSession& s, const Request& r, Response& resp,
               bool batched) {
  core::PropagationContext& ctx = s.library().context();
  std::vector<std::pair<core::Variable*, double>> targets;
  targets.reserve(r.assignments.size());
  for (const Assignment& a : r.assignments) {
    core::Variable* v = s.find_variable(a.variable);
    if (v == nullptr) {
      resp.error = "unknown variable '" + a.variable + "'";
      return;
    }
    targets.emplace_back(v, a.value);
  }
  const std::uint64_t restores_before = ctx.stats().restores;
  Status st = Status::ok();
  if (batched) {
    // One propagation wave for the whole batch: every assignment lands
    // before the single agenda drain and final check sweep; a violation
    // restores the entire wave (all-or-nothing).
    std::uint64_t applied = 0;
    st = ctx.run_session([&]() -> Status {
      for (auto& [var, value] : targets) {
        const Status one =
            var->set_in_session(Value(value), core::Justification::user());
        if (one.is_violation()) return one;
        ++applied;
      }
      return Status::ok();
    });
    resp.assignments_applied = st.is_violation() ? 0 : applied;
  } else {
    for (auto& [var, value] : targets) {
      st = var->set_user(Value(value));
      if (st.is_violation()) break;
      ++resp.assignments_applied;
    }
  }
  resp.ok = true;
  fill_propagation_outcome(resp, ctx, restores_before, st);
}

env::CellClass* require_cell(DesignSession& s, const std::string& name,
                             Response& resp) {
  env::CellClass* c = s.library().find(name);
  if (c == nullptr) resp.error = "unknown cell '" + name + "'";
  return c;
}

/// Structural edit mini-language (docs/SERVICE.md).  One command per
/// request; propagating edits report violation/restore outcomes like
/// assignments do.
void do_edit(DesignSession& s, const Request& r, Response& resp) {
  core::PropagationContext& ctx = s.library().context();
  const std::uint64_t restores_before = ctx.stats().restores;
  std::istringstream in(r.text);
  std::string op;
  if (!(in >> op)) {
    resp.error =
        "edit needs a command: cell|signal|param|delay|leaf-delay|spec|"
        "subcell|net|conn|io|build-delays";
    return;
  }
  try {
    if (op == "cell") {
      std::string name;
      if (!(in >> name)) {
        resp.error = "edit cell <name> [super <class>] [generic]";
        return;
      }
      env::CellClass* super = nullptr;
      bool generic = false;
      std::string word;
      while (in >> word) {
        if (word == "super") {
          std::string sname;
          if (!(in >> sname) ||
              (super = require_cell(s, sname, resp)) == nullptr) {
            if (resp.error.empty()) resp.error = "super needs a class name";
            return;
          }
        } else if (word == "generic") {
          generic = true;
        } else {
          resp.error = "unknown cell attribute '" + word + "'";
          return;
        }
      }
      env::CellClass& c = s.library().define_cell(name, super);
      c.set_generic(generic);
      resp.text = "defined cell " + name;
    } else if (op == "signal") {
      std::string cell, name, dir;
      if (!(in >> cell >> name >> dir)) {
        resp.error = "edit signal <cell> <name> <input|output|inout>";
        return;
      }
      env::CellClass* c = require_cell(s, cell, resp);
      if (c == nullptr) return;
      const env::SignalDirection d =
          dir == "input" ? env::SignalDirection::kInput
          : dir == "output" ? env::SignalDirection::kOutput
                            : env::SignalDirection::kInOut;
      c->declare_signal(name, d);
      resp.text = "declared signal " + cell + "." + name;
    } else if (op == "param") {
      std::string cell, name;
      double lo = 0.0, hi = 0.0;
      if (!(in >> cell >> name >> lo >> hi)) {
        resp.error = "edit param <cell> <name> <lo> <hi> [default <v>]";
        return;
      }
      env::CellClass* c = require_cell(s, cell, resp);
      if (c == nullptr) return;
      Value def;
      std::string word;
      if (in >> word) {
        double v = 0.0;
        if (word != "default" || !(in >> v)) {
          resp.error = "expected: default <number>";
          return;
        }
        def = Value(v);
      }
      c->declare_parameter(name, lo, hi, def);
      resp.text = "declared param " + cell + "." + name;
    } else if (op == "delay") {
      std::string cell, from, to;
      if (!(in >> cell >> from >> to)) {
        resp.error = "edit delay <cell> <from> <to>";
        return;
      }
      env::CellClass* c = require_cell(s, cell, resp);
      if (c == nullptr) return;
      c->declare_delay(from, to);
      resp.text = "declared delay " + cell + "." + from + "->" + to;
    } else if (op == "leaf-delay") {
      std::string cell, from, to;
      double seconds = 0.0;
      if (!(in >> cell >> from >> to >> seconds)) {
        resp.error = "edit leaf-delay <cell> <from> <to> <seconds>";
        return;
      }
      env::CellClass* c = require_cell(s, cell, resp);
      if (c == nullptr) return;
      const Status st = c->set_leaf_delay(from, to, seconds);
      resp.text = "leaf delay " + cell + "." + from + "->" + to;
      resp.ok = true;
      fill_propagation_outcome(resp, ctx, restores_before, st);
      return;
    } else if (op == "spec") {
      std::string cell, from, to, rel;
      double bound = 0.0;
      if (!(in >> cell >> from >> to >> rel >> bound)) {
        resp.error = "edit spec <cell> <from> <to> <=|>=|<|> <bound>";
        return;
      }
      env::CellClass* c = require_cell(s, cell, resp);
      if (c == nullptr) return;
      core::Relation relation;
      if (rel == "<=") {
        relation = core::Relation::kLessEqual;
      } else if (rel == ">=") {
        relation = core::Relation::kGreaterEqual;
      } else if (rel == "<") {
        relation = core::Relation::kLess;
      } else if (rel == ">") {
        relation = core::Relation::kGreater;
      } else {
        resp.error = "unknown spec relation '" + rel + "'";
        return;
      }
      env::ClassDelayVar& d = c->declare_delay(from, to);
      auto& bc = ctx.make<core::BoundConstraint>(relation, Value(bound));
      const Status st = bc.add_argument(d);
      resp.text = "spec " + cell + "." + from + "->" + to + " " + rel + " " +
                  std::to_string(bound);
      resp.ok = true;
      fill_propagation_outcome(resp, ctx, restores_before, st);
      return;
    } else if (op == "subcell") {
      std::string parent, name, cls;
      if (!(in >> parent >> name >> cls)) {
        resp.error = "edit subcell <parent> <name> <class> [<x> <y>]";
        return;
      }
      env::CellClass* p = require_cell(s, parent, resp);
      if (p == nullptr) return;
      env::CellClass* c = require_cell(s, cls, resp);
      if (c == nullptr) return;
      core::Point t{0, 0};
      in >> t.x >> t.y;  // optional placement
      p->add_subcell(*c, name, core::Transform::translate(t));
      resp.text = "placed " + parent + "." + name + " : " + cls;
    } else if (op == "net") {
      std::string cell, name;
      if (!(in >> cell >> name)) {
        resp.error = "edit net <cell> <name>";
        return;
      }
      env::CellClass* c = require_cell(s, cell, resp);
      if (c == nullptr) return;
      c->add_net(name);
      resp.text = "added net " + cell + "." + name;
    } else if (op == "conn" || op == "io") {
      std::string cell, net;
      if (!(in >> cell >> net)) {
        resp.error = "edit " + op + " <cell> <net> ...";
        return;
      }
      env::CellClass* c = require_cell(s, cell, resp);
      if (c == nullptr) return;
      env::Net* n = c->find_net(net);
      if (n == nullptr) {
        resp.error = "unknown net '" + net + "' on " + cell;
        return;
      }
      Status st = Status::ok();
      if (op == "conn") {
        std::string inst, sig;
        if (!(in >> inst >> sig)) {
          resp.error = "edit conn <cell> <net> <instance> <signal>";
          return;
        }
        env::CellInstance* i = c->find_subcell(inst);
        if (i == nullptr) {
          resp.error = "unknown subcell '" + inst + "' on " + cell;
          return;
        }
        st = n->connect(*i, sig);
      } else {
        std::string sig;
        if (!(in >> sig)) {
          resp.error = "edit io <cell> <net> <signal>";
          return;
        }
        st = n->connect_io(sig);
      }
      resp.text = "connected " + cell + "." + net;
      resp.ok = true;
      fill_propagation_outcome(resp, ctx, restores_before, st);
      return;
    } else if (op == "build-delays") {
      std::string cell;
      if (!(in >> cell)) {
        resp.error = "edit build-delays <cell>";
        return;
      }
      env::CellClass* c = require_cell(s, cell, resp);
      if (c == nullptr) return;
      c->build_delay_networks();
      resp.text = "built delay networks for " + cell;
    } else {
      resp.error = "unknown edit command '" + op + "'";
      return;
    }
  } catch (const std::exception& e) {
    resp.ok = false;
    resp.error = e.what();
    return;
  }
  resp.ok = true;
}

/// Shared front half of select / select-stats: parse the slot list and build
/// the SelectionSpace.  Grammar (docs/SOLVER.md):
///   <cell> [slot <subcell>]... [limit <n>] [commit]
/// With no explicit slots, every generic-classed subcell of <cell> becomes a
/// slot.  Returns nullptr with resp.error set on a parse/lookup failure.
std::unique_ptr<fd::SelectionSpace> parse_selection(
    DesignSession& s, const Request& r, Response& resp, std::size_t* limit,
    bool* commit) {
  std::istringstream in(r.text);
  std::string cell;
  if (!(in >> cell)) {
    resp.error =
        "select needs a cell: <cell> [slot <subcell>]... [limit <n>] [commit]";
    return nullptr;
  }
  env::CellClass* c = require_cell(s, cell, resp);
  if (c == nullptr) return nullptr;
  std::vector<env::CellInstance*> slots;
  std::string word;
  while (in >> word) {
    if (word == "slot") {
      std::string inst;
      if (!(in >> inst)) {
        resp.error = "slot needs a subcell name";
        return nullptr;
      }
      env::CellInstance* i = c->find_subcell(inst);
      if (i == nullptr) {
        resp.error = "unknown subcell '" + inst + "' on " + cell;
        return nullptr;
      }
      if (!i->cls().is_generic()) {
        resp.error = "subcell '" + inst + "' is not generic (" +
                     i->cls().name() + ")";
        return nullptr;
      }
      slots.push_back(i);
    } else if (word == "limit") {
      if (!(in >> *limit)) {
        in.clear();
        resp.error = "limit needs a number";
        return nullptr;
      }
    } else if (word == "commit") {
      *commit = true;
    } else {
      resp.error = "unknown select option '" + word +
                   "' (expected: slot <subcell>, limit <n>, commit)";
      return nullptr;
    }
  }
  if (slots.empty()) {
    for (const auto& sub : c->subcells()) {
      if (sub->cls().is_generic()) slots.push_back(sub.get());
    }
  }
  if (slots.empty()) {
    resp.error = "no generic slots in '" + cell + "'";
    return nullptr;
  }
  auto space = std::make_unique<fd::SelectionSpace>(s.library());
  for (env::CellInstance* i : slots) space->add_slot(i->cls(), *i);
  return space;
}

/// FD module selection over the session's library (tentpole; the verb is
/// journaled so recovery re-derives the same choice deterministically).
void do_select(DesignSession& s, const Request& r, Response& resp) {
  core::PropagationContext& ctx = s.library().context();
  const std::uint64_t restores_before = ctx.stats().restores;
  std::size_t limit = 0;  // all
  bool commit = false;
  const auto space = parse_selection(s, r, resp, &limit, &commit);
  if (space == nullptr) return;
  const std::size_t found = space->solve(commit ? 1 : limit);

  std::ostringstream out;
  for (std::size_t i = 0; i < space->solutions().size(); ++i) {
    out << "solution " << i << ":";
    const auto& sol = space->solutions()[i];
    for (std::size_t k = 0; k < space->slots().size(); ++k) {
      out << ' ' << space->slots()[k].instance->name() << '='
          << sol[k]->name();
    }
    out << '\n';
  }
  const fd::SelectionSpace::Stats& st = space->stats();
  out << found << " solution(s); explored " << st.candidates_explored
      << " candidate(s), pruned " << st.subtrees_pruned << " subtree(s), "
      << st.nodes << " search node(s)\n";
  if (commit) {
    if (found == 0) {
      out << "nothing to commit\n";
    } else {
      const auto replaced = space->commit(0);
      resp.assignments_applied = replaced.size();
      s.selection_tally().commits += replaced.size();
      out << "committed solution 0:";
      for (const env::CellInstance* i : replaced) {
        out << ' ' << i->name() << '=' << i->cls().name();
      }
      out << '\n';
    }
  }
  DesignSession::SelectionTally& tally = s.selection_tally();
  ++tally.requests;
  tally.solutions += found;
  tally.candidates_explored += st.candidates_explored;
  tally.subtrees_pruned += st.subtrees_pruned;
  resp.text = out.str();
  resp.ok = true;
  fill_propagation_outcome(resp, ctx, restores_before, Status::ok());
}

/// Dry-run selection: same search, but the response is the exploration
/// counters (FD vs generate-and-test ammunition) and nothing is committed.
void do_select_stats(DesignSession& s, const Request& r, Response& resp) {
  std::size_t limit = 0;
  bool commit = false;
  const auto space = parse_selection(s, r, resp, &limit, &commit);
  if (space == nullptr) return;
  if (commit) {
    resp.error = "select-stats never commits (use: select ... commit)";
    return;
  }
  const std::size_t found = space->solve(limit);
  const fd::SelectionSpace::Stats& st = space->stats();
  std::ostringstream out;
  out << "slots: " << space->slots().size() << '\n';
  for (const auto& slot : space->slots()) {
    out << "  " << slot.instance->name() << ": " << slot.candidates.size()
        << " candidate(s) after filtering\n";
  }
  out << "solutions: " << found << '\n'
      << "candidates explored: " << st.candidates_explored << '\n'
      << "subtrees pruned: " << st.subtrees_pruned << '\n'
      << "search nodes: " << st.nodes << ", fails: " << st.fails << '\n'
      << "filter runs: " << space->problem().stats().filter_runs
      << ", prunings: " << space->problem().stats().prunings
      << ", wipeouts: " << space->problem().stats().wipeouts << '\n';
  DesignSession::SelectionTally& tally = s.selection_tally();
  ++tally.requests;
  tally.solutions += found;
  tally.candidates_explored += st.candidates_explored;
  tally.subtrees_pruned += st.subtrees_pruned;
  out << "session totals: " << tally.requests << " selection request(s), "
      << tally.solutions << " solution(s), " << tally.candidates_explored
      << " candidate(s) explored, " << tally.commits
      << " slot(s) committed\n";
  resp.text = out.str();
  resp.ok = true;
}

void do_query(DesignSession& s, const Request& r, Response& resp) {
  std::istringstream in(r.text);
  std::string what;
  in >> what;
  std::ostringstream out;
  if (what.empty() || what == "cells") {
    for (const auto& c : s.library().cells()) out << c->name() << '\n';
    out << s.library().cells().size() << " cell(s)\n";
  } else if (what == "vars") {
    std::string cell;
    in >> cell;
    const std::string prefix = cell.empty() ? "" : cell + ".";
    s.for_each_variable([&](core::Variable& v) {
      if (!prefix.empty() && v.path().compare(0, prefix.size(), prefix) != 0) {
        return;
      }
      out << env::ConstraintInspector::describe(v) << '\n';
    });
  } else if (what == "stats") {
    core::PropagationContext& ctx = s.library().context();
    out << env::DesignReport::propagation_stats(ctx);
    if (ctx.metrics().enabled()) {
      out << "metrics: " << ctx.metrics().to_json() << '\n';
    }
    out << "requests served: " << s.requests_served() << '\n';
    if (const DesignSession::SelectionTally& t = s.selection_tally();
        t.requests > 0) {
      out << "selection: " << t.requests << " request(s) " << t.solutions
          << " solution(s) " << t.candidates_explored << " candidate(s) "
          << t.subtrees_pruned << " pruned " << t.commits
          << " slot(s) committed\n";
    }
    if (const persist::Journal* j = s.journal()) {
      out << "journal: base " << s.journal_config().base << " fsync "
          << persist::to_string(j->policy()) << " records "
          << j->records_written() << " bytes " << j->bytes_written()
          << " fsyncs " << j->fsyncs() << " io " << j->io_backend_name();
      if (j->sealed_segments() > 0) {
        out << " segments " << j->sealed_segments();
      }
      out << (j->dead() ? " DEAD" : "") << '\n';
    }
  } else {
    core::Variable* v = s.find_variable(what);
    if (v == nullptr) {
      resp.error = "unknown query target '" + what +
                   "' (try: cells, vars [cell], stats, <variable path>)";
      return;
    }
    out << env::ConstraintInspector::describe(*v) << '\n';
  }
  resp.text = out.str();
  resp.ok = true;
}

void do_report(DesignSession& s, const Request& r, Response& resp) {
  env::DesignReport::Options opts;
  opts.include_propagation_stats = true;
  std::istringstream in(r.text);
  std::string cell;
  if (in >> cell) {
    env::CellClass* c = require_cell(s, cell, resp);
    if (c == nullptr) return;
    resp.text = env::DesignReport::cell(*c, opts);
  } else {
    resp.text = env::DesignReport::library(s.library(), opts);
  }
  resp.ok = true;
}

// ---------------------------------------------------------------------------
// Durability (docs/PERSISTENCE.md)

/// Which shard a durable request runs on, and how its base paths resolve
/// into that shard's journal namespace (identity without a journal root).
struct ShardIo {
  const ShardedSessionManager* mgr = nullptr;
  std::size_t shard = 0;
  std::string resolve(const std::string& base) const {
    return mgr->resolve_base(shard, base);
  }
};

/// Checkpoint header options: the open options plus the fsync policy, so
/// recovery reopens the session AND its journal exactly as configured.
std::string durable_options(DesignSession& s) {
  std::ostringstream out;
  out << s.open_options();
  const JournalConfig& cfg = s.journal_config();
  if (out.tellp() > 0) out << ' ';
  out << "fsync " << persist::to_string(cfg.policy);
  if (cfg.policy == persist::FsyncPolicy::kInterval) {
    out << " interval " << cfg.interval_records;
  }
  if (cfg.policy == persist::FsyncPolicy::kGroupCommit) {
    out << " batch " << cfg.group_batch_records << " delay-us "
        << cfg.group_delay_us;
  }
  if (cfg.segment_bytes > 0) out << " segment " << cfg.segment_bytes;
  return out.str();
}

/// Snapshot the library into "<base>.ckpt" (atomic rename), stamped with the
/// last journal sequence the snapshot contains, then empty the journal.  A
/// crash between the rename and the truncate is harmless: replay skips
/// records with seq <= the checkpoint's.
bool checkpoint_session(DesignSession& s, std::uint64_t* seq,
                        std::string* error) {
  persist::Journal* j = s.journal();
  persist::CheckpointMeta meta;
  meta.seq = j->next_seq() - 1;
  meta.session = s.name();
  meta.options = durable_options(s);
  const std::string text = env::LibraryWriter::to_string(s.library());
  if (!persist::write_checkpoint(
          persist::checkpoint_path(s.journal_config().base), meta, text,
          error)) {
    return false;
  }
  if (!j->truncate_all(meta.seq)) {
    *error = "journal truncate failed after checkpoint";
    return false;
  }
  *seq = meta.seq;
  return true;
}

void do_journal(DesignSession& s, const Request& r, Response& resp,
                const ShardIo& io) {
  if (s.journal() != nullptr) {
    resp.error = "session '" + s.name() + "' is already journaling to '" +
                 s.journal_config().base + "'";
    return;
  }
  JournalConfig cfg;
  std::istringstream in(r.text);
  if (!(in >> cfg.base)) {
    resp.error = "journal needs a base path";
    return;
  }
  cfg.base = io.resolve(cfg.base);
  std::string policy;
  if (in >> policy) {
    if (!persist::fsync_policy_from(policy, &cfg.policy)) {
      resp.error = "unknown fsync policy '" + policy +
                   "' (every-record|interval|none|group-commit)";
      return;
    }
    // Knobs: a bare number keeps the historic "interval N" grammar; the
    // keyword forms tune group commit and segmentation for any policy.
    std::string word;
    while (in >> word) {
      std::uint64_t n = 0;
      if (word == "batch" && in >> n && n > 0) {
        cfg.group_batch_records = static_cast<std::uint32_t>(n);
      } else if (word == "delay-us" && in >> n) {
        cfg.group_delay_us = static_cast<std::uint32_t>(n);
      } else if (word == "segment" && in >> n && n > 0) {
        cfg.segment_bytes = n;
      } else if (std::istringstream bare(word); bare >> n && n > 0) {
        cfg.interval_records = static_cast<std::uint32_t>(n);
      } else {
        resp.error = "unknown journal option '" + word +
                     "' (interval-records|batch <n>|delay-us <n>|segment <bytes>)";
        return;
      }
    }
  }
  persist::Journal::Options opts;
  opts.fsync = cfg.policy;
  opts.fsync_interval_records = cfg.interval_records;
  opts.group_max_batch_records = cfg.group_batch_records;
  opts.group_max_delay_us = cfg.group_delay_us;
  opts.segment_bytes = cfg.segment_bytes;
  opts.truncate = true;
  opts.next_seq = 1;
  opts.metrics = &s.library().context().metrics();
  std::string error;
  auto j = persist::Journal::open(persist::journal_path(cfg.base), opts,
                                  &error);
  if (j == nullptr) {
    resp.error = error;
    return;
  }
  const std::string base = cfg.base;
  const persist::FsyncPolicy pol = cfg.policy;
  s.attach_journal(std::move(j), std::move(cfg));
  // Checkpoint immediately: from this instant, checkpoint + journal together
  // always describe the session's full state.
  std::uint64_t seq = 0;
  if (!checkpoint_session(s, &seq, &error)) {
    s.detach_journal();
    resp.error = error;
    return;
  }
  persist::JournalRecord rec;
  rec.op = "open";
  rec.session = s.name();
  rec.text = s.open_options();
  s.journal()->append(rec);
  resp.ok = true;
  resp.text = "journaling " + s.name() + " to " + base + " (fsync " +
              persist::to_string(pol) + ")";
}

void do_checkpoint(DesignSession& s, Response& resp) {
  if (s.journal() == nullptr) {
    resp.error = "session '" + s.name() +
                 "' has no journal (use: journal <sess> <base>)";
    return;
  }
  if (s.journal()->dead()) {
    resp.error = "journal is dead (write failure); cannot checkpoint";
    return;
  }
  std::string error;
  std::uint64_t seq = 0;
  if (!checkpoint_session(s, &seq, &error)) {
    resp.error = error;
    return;
  }
  resp.ok = true;
  resp.text = "checkpoint of " + s.name() + " at seq " + std::to_string(seq);
}

/// Durability still owed after the session lock drops: under group commit
/// the request must block on its CommitTicket (off-lock, so the next
/// request for the session proceeds while this one waits for the flush).
struct PendingDurability {
  persist::CommitTicket ticket;
  bool wait_needed = false;
};

void append_durability_warning(Response& resp) {
  // The in-memory session keeps serving (a dead log is a dead disk, not a
  // dead design), but the caller must know durability is gone.
  if (!resp.text.empty() && resp.text.back() != '\n') resp.text += '\n';
  resp.text += "WARNING: journal write failed; session is no longer durable";
}

/// Append one record per SUCCESSFUL mutating request.  A violating batch is
/// still journaled (it mutated stats and must re-derive its restore on
/// replay); a failed request mutated nothing and is not.  Synchronous
/// policies finish the append (and its telemetry stamps) right here; group
/// commit only enqueues and hands the caller a ticket to wait on after the
/// session lock is released.
PendingDurability journal_mutation(DesignSession& s, const Request& r,
                                   Response& resp, RequestSpan* span) {
  PendingDurability pending;
  persist::Journal* j = s.journal();
  if (j == nullptr || !resp.ok) return pending;
  const bool mutating =
      r.type == RequestType::kLoad || r.type == RequestType::kAssign ||
      r.type == RequestType::kBatchAssign || r.type == RequestType::kEdit ||
      r.type == RequestType::kSelect;
  if (!mutating) return pending;
  // A fresh-target load swaps the library's whole PropagationContext
  // (metrics registry included), so the sink the journal captured at attach
  // time may no longer exist — re-point it at the live registry.
  j->set_metrics(&s.library().context().metrics());
  persist::JournalRecord rec;
  rec.op = to_string(r.type);
  rec.session = s.name();
  if (r.type == RequestType::kLoad || r.type == RequestType::kEdit ||
      r.type == RequestType::kSelect) {
    rec.text = r.text;
  }
  rec.assignments.reserve(r.assignments.size());
  for (const Assignment& a : r.assignments) {
    rec.assignments.emplace_back(a.variable, a.value);
  }
  rec.violation = resp.violation;
  rec.applied = resp.assignments_applied;
  rec.restored = resp.variables_restored;
  if (j->policy() == persist::FsyncPolicy::kGroupCommit) {
    pending.ticket = j->append_async(rec);
    pending.wait_needed = true;
    return pending;
  }
  const bool was_dead = j->dead();
  const bool appended = j->append(rec);
  if (span != nullptr) {
    span->t_journal_done = core::Tracer::now_ns();
    span->fsync_ns = j->last_fsync_ns();
    // Only the request on which the journal actually died is the anomaly;
    // every later mutation against the already-dead log repeats the failure
    // without being a new event.
    span->journal_fault = !was_dead && j->dead();
  }
  if (!appended) append_durability_warning(resp);
  return pending;
}

/// Rebuild session `r.session` from "<base>.ckpt" + "<base>.journal": load
/// the checkpoint library, replay every journal record past the checkpoint
/// through the real engine, verify each record's recorded outcome re-derives
/// identically, drop the torn tail, and resume journaling where the log
/// left off.  The session is built and replayed BEFORE it is published into
/// the shard registry, so concurrent requests either miss it entirely or
/// see the fully recovered state — never a half-replayed library.
Response do_recover(SessionManager& sessions, const Request& r,
                    const ShardIo& io) {
  Response resp;
  resp.session = r.session;
  std::istringstream in(r.text);
  std::string base;
  if (!(in >> base)) {
    resp.error = "recover needs a base path";
    return resp;
  }
  base = io.resolve(base);
  if (sessions.find(r.session) != nullptr) {
    resp.error = "session '" + r.session + "' already exists";
    return resp;
  }
  persist::RecoveredLog log = persist::load_recovered_log(base);
  if (!log.ok) {
    resp.error = "recover failed: " + log.error;
    return resp;
  }
  bool metrics = false;
  bool trace = false;
  JournalConfig cfg;
  cfg.base = base;
  {
    std::istringstream opts(log.meta.options);
    std::string word;
    while (opts >> word) {
      if (word == "metrics") {
        metrics = true;
      } else if (word == "trace") {
        trace = true;
      } else if (word == "fsync") {
        // A corrupt/unknown policy word must fail recovery loudly — silently
        // recovering with the default policy would change the session's
        // durability contract behind the operator's back.
        std::string p;
        if (!(opts >> p) || !persist::fsync_policy_from(p, &cfg.policy)) {
          resp.error = "recover failed: checkpoint header has unknown fsync "
                       "policy '" + p + "'";
          return resp;
        }
      } else if (word == "interval") {
        std::uint32_t n = 0;
        if (opts >> n && n > 0) cfg.interval_records = n;
      } else if (word == "batch") {
        std::uint32_t n = 0;
        if (opts >> n && n > 0) cfg.group_batch_records = n;
      } else if (word == "delay-us") {
        std::uint32_t n = 0;
        if (opts >> n) cfg.group_delay_us = n;
      } else if (word == "segment") {
        std::uint64_t n = 0;
        if (opts >> n && n > 0) cfg.segment_bytes = n;
      }
    }
  }
  // Unpublished: only this worker can reach the session until insert().
  const auto s = std::make_shared<DesignSession>(r.session, metrics, trace);
  const std::uint64_t t0 = core::Tracer::now_ns();
  std::uint64_t mismatches = 0;
  std::uint64_t replayed = 0;
  try {
    if (log.has_checkpoint && !log.checkpoint_text.empty()) {
      env::LibraryReader::read_string(s->library(), log.checkpoint_text);
    }
    for (const persist::JournalRecord& rec : log.replay) {
      if (rec.op == "open" || rec.op == "close") continue;  // markers
      Request rr;
      rr.session = r.session;
      rr.text = rec.text;
      rr.assignments.reserve(rec.assignments.size());
      for (const auto& [var, value] : rec.assignments) {
        rr.assignments.push_back({var, value});
      }
      Response rresp;
      if (rec.op == "load") {
        do_load(*s, rr, rresp);
      } else if (rec.op == "assign") {
        do_assign(*s, rr, rresp, false);
      } else if (rec.op == "batch-assign") {
        do_assign(*s, rr, rresp, true);
      } else if (rec.op == "edit") {
        do_edit(*s, rr, rresp);
      } else if (rec.op == "select") {
        do_select(*s, rr, rresp);
      } else {
        resp.error = "journal record " + std::to_string(rec.seq) +
                     " has unknown op '" + rec.op + "'";
        return resp;
      }
      ++replayed;
      // The engine is deterministic: the replayed outcome must re-derive
      // the recorded one.  A mismatch means the log and the code disagree.
      if (!rresp.ok || rresp.violation != rec.violation ||
          rresp.assignments_applied != rec.applied ||
          rresp.variables_restored != rec.restored) {
        ++mismatches;
      }
    }
  } catch (const std::exception& e) {
    resp.error = std::string("recover replay failed: ") + e.what();
    return resp;
  }
  // NB: fetch the context only now — replaying a load into the fresh session
  // swapped the whole PropagationContext, so a reference bound before the
  // replay loop would dangle.
  core::PropagationContext& ctx = s->library().context();
  if (ctx.metrics().enabled()) {
    ctx.metrics().histogram("recover.replay_ns")
        .record(core::Tracer::now_ns() - t0);
  }
  // Cut the torn bytes off before appending, so new records never follow
  // garbage, then continue the log where it left off.
  if (log.scan.torn_tail) {
    persist::truncate_journal(persist::journal_path(base),
                              log.scan.valid_bytes);
  }
  persist::Journal::Options jopts;
  jopts.fsync = cfg.policy;
  jopts.fsync_interval_records = cfg.interval_records;
  jopts.group_max_batch_records = cfg.group_batch_records;
  jopts.group_max_delay_us = cfg.group_delay_us;
  jopts.segment_bytes = cfg.segment_bytes;
  jopts.truncate = false;
  jopts.next_seq = (log.scan.records.empty() ? log.meta.seq
                                             : log.scan.records.back().seq) +
                   1;
  jopts.metrics = &ctx.metrics();
  std::string error;
  auto j = persist::Journal::open(persist::journal_path(base), jopts, &error);
  std::ostringstream out;
  out << "recovered " << r.session << " from " << base << ": checkpoint seq "
      << (log.has_checkpoint ? log.meta.seq : 0) << ", replayed " << replayed
      << " record(s), " << mismatches << " outcome mismatch(es)";
  if (log.scan.torn_tail) out << ", torn tail dropped";
  if (j == nullptr) {
    // State is rebuilt; only re-attachment failed.  Keep the session, say so.
    out << "; journal re-attach failed: " << error;
  } else {
    s->attach_journal(std::move(j), std::move(cfg));
  }
  // Publish only now: the registry never exposes a half-recovered session.
  // A concurrent open of the same name during replay wins the race and this
  // recover reports the conflict instead of clobbering it.
  if (!sessions.insert(s)) {
    resp.error = "session '" + r.session + "' already exists";
    return resp;
  }
  resp.ok = true;
  resp.text = out.str();
  return resp;
}

}  // namespace

// ---------------------------------------------------------------------------
// ShardedSessionManager

std::uint64_t ShardedSessionManager::hash_of(std::string_view session) {
  // FNV-1a 64: deterministic across runs and platforms, so tests and
  // benches can pre-compute which shard a session name lands on.
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : session) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

ShardedSessionManager::ShardedSessionManager(std::size_t shards,
                                             std::size_t workers_per_shard,
                                             std::string journal_root,
                                             JobHandler handler)
    : workers_per_shard_(workers_per_shard == 0 ? 1 : workers_per_shard),
      journal_root_(std::move(journal_root)),
      handler_(std::move(handler)) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  // Carve the per-shard durable namespaces up front, off the request path.
  if (!journal_root_.empty()) {
    for (std::size_t i = 0; i < shards; ++i) {
      std::string error;
      persist::ensure_directories(
          journal_root_ + "/shard-" + std::to_string(i), &error);
    }
  }
  for (std::size_t i = 0; i < shards; ++i) {
    Shard& sh = *shards_[i];
    sh.workers.reserve(workers_per_shard_);
    for (std::size_t w = 0; w < workers_per_shard_; ++w) {
      sh.workers.emplace_back([this, i, w] { worker_loop(i, w); });
    }
  }
}

ShardedSessionManager::~ShardedSessionManager() {
  for (auto& sh : shards_) {
    {
      const std::lock_guard<std::mutex> lock(sh->mu);
      sh->stopping = true;
    }
    sh->cv.notify_all();
  }
  for (auto& sh : shards_) {
    for (std::thread& t : sh->workers) t.join();
  }
}

std::string ShardedSessionManager::resolve_base(std::size_t shard,
                                                const std::string& base) const {
  if (journal_root_.empty()) return base;
  return journal_root_ + "/shard-" + std::to_string(shard) + "/" + base;
}

std::shared_ptr<DesignSession> ShardedSessionManager::open(
    const std::string& name, bool collect_metrics, bool collect_trace) {
  return registry(shard_of(name)).open(name, collect_metrics, collect_trace);
}

std::shared_ptr<DesignSession> ShardedSessionManager::find(
    const std::string& name) const {
  return registry(shard_of(name)).find(name);
}

bool ShardedSessionManager::close(const std::string& name) {
  return registry(shard_of(name)).close(name);
}

std::vector<std::string> ShardedSessionManager::names() const {
  // Lazy fold: one shard registry lock at a time, never a global lock.  The
  // result is a consistent snapshot per shard, merged and sorted — the same
  // contract a single sorted registry gave callers.
  std::vector<std::string> out;
  for (const auto& sh : shards_) {
    std::vector<std::string> part = sh->sessions.names();
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t ShardedSessionManager::size() const {
  std::size_t n = 0;
  for (const auto& sh : shards_) n += sh->sessions.size();
  return n;
}

bool ShardedSessionManager::enqueue(Job&& job) {
  Shard& sh = *shards_[shard_of(job.request.session)];
  {
    const std::lock_guard<std::mutex> lock(sh.mu);
    if (sh.stopping) return false;  // job untouched; caller resolves it
    sh.queue.push_back(std::move(job));
  }
  sh.enqueued.fetch_add(1, std::memory_order_relaxed);
  sh.cv.notify_one();
  return true;
}

ShardedSessionManager::ShardStats ShardedSessionManager::stats(
    std::size_t shard) const {
  const Shard& sh = *shards_[shard];
  ShardStats out;
  out.enqueued = sh.enqueued.load(std::memory_order_relaxed);
  out.dequeued = sh.dequeued.load(std::memory_order_relaxed);
  out.served = sh.served.load(std::memory_order_relaxed);
  return out;
}

void ShardedSessionManager::worker_loop(std::size_t shard, std::size_t worker) {
  Shard& sh = *shards_[shard];
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(sh.mu);
      sh.cv.wait(lock, [&] { return sh.stopping || !sh.queue.empty(); });
      if (sh.queue.empty()) return;  // stopping, queue drained
      job = std::move(sh.queue.front());
      sh.queue.pop_front();
    }
    sh.dequeued.fetch_add(1, std::memory_order_relaxed);
    handler_(shard, worker, job);
    sh.served.fetch_add(1, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// DesignService

DesignService::DesignService(Config cfg)
    : cfg_([&cfg] {
        if (cfg.workers_per_shard == 0) cfg.workers_per_shard = 1;
        if (cfg.shards == 0) cfg.shards = 1;
        return cfg;
      }()),
      telemetry_(cfg_.shards * cfg_.workers_per_shard,
                 [&] {
                   TelemetryRecorder::Config t;
                   t.lanes_per_shard = cfg_.workers_per_shard;
                   return t;
                 }()),
      sessions_(std::make_unique<ShardedSessionManager>(
          cfg_.shards, cfg_.workers_per_shard, cfg_.journal_root,
          [this](std::size_t shard, std::size_t worker,
                 ShardedSessionManager::Job& job) {
            run_job(shard, worker, job);
          })) {}

void DesignService::set_request_tap(RequestTap tap) {
  std::lock_guard<std::mutex> lock(tap_mu_);
  tap_ = std::move(tap);
  tap_armed_.store(static_cast<bool>(tap_), std::memory_order_release);
}

std::future<Response> DesignService::submit(Request r) {
  // Tap BEFORE enqueueing: with a single submitting thread (the replay
  // driver, a protocol front end) the recorder observes requests in exactly
  // the order the shard queues will.  Concurrent submitters race the
  // tap-to-enqueue window just as they race each other's enqueues, so the
  // trace is then ONE valid serialization of traffic whose interleaving was
  // never deterministic to begin with.
  if (tap_armed_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(tap_mu_);
    if (tap_) tap_(r);
  }
  ShardedSessionManager::Job job;
  job.request = std::move(r);
  job.span.request_id = telemetry_.next_request_id();
  job.span.type = static_cast<std::uint8_t>(job.request.type);
  job.span.set_session(job.request.session);
  job.span.shard =
      static_cast<std::uint8_t>(sessions_->shard_of(job.request.session));
  job.span.t_enqueue = core::Tracer::now_ns();
  std::future<Response> fut = job.done.get_future();
  // enqueue takes an rvalue reference but only moves on success, so a
  // rejected job is still ours to resolve.
  if (!sessions_->enqueue(std::move(job))) {
    Response resp;
    resp.error = "service is shutting down";
    job.done.set_value(std::move(resp));
  }
  return fut;
}

Response DesignService::call(Request r) { return submit(std::move(r)).get(); }

void DesignService::run_job(std::size_t shard, std::size_t worker,
                            ShardedSessionManager::Job& job) {
  const std::size_t lane = shard * cfg_.workers_per_shard + worker;
  job.span.lane = static_cast<std::uint8_t>(lane);
  job.span.t_dequeue = core::Tracer::now_ns();
  Response resp;
  try {
    resp = execute(job.request, &job.span, shard);
  } catch (const std::exception& e) {
    resp.ok = false;
    resp.error = e.what();
    resp.session = job.request.session;
  } catch (...) {
    resp.ok = false;
    resp.error = "unknown execution error";
    resp.session = job.request.session;
  }
  job.span.ok = resp.ok;
  job.span.violation = resp.violation;
  job.span.t_reply = core::Tracer::now_ns();
  // Record BEFORE resolving the future: a caller that waited on the
  // response is guaranteed to find its own span in the telemetry.
  telemetry_.record(lane, job.span);
  served_.fetch_add(1, std::memory_order_relaxed);
  job.done.set_value(std::move(resp));
}

Response DesignService::execute(const Request& r, RequestSpan* span,
                                std::size_t shard) {
  Response resp;
  resp.session = r.session;
  if (r.session.empty()) {
    resp.error = "request needs a session name";
    return resp;
  }

  // Session-lifecycle requests take no per-session lock up front; their
  // whole body is the work phase (lock wait shows up as ~0).  They touch
  // only the owning shard's registry.
  if (r.type == RequestType::kOpen || r.type == RequestType::kRecover ||
      r.type == RequestType::kClose) {
    if (span != nullptr) span->t_lock = core::Tracer::now_ns();
    resp = execute_lifecycle(r, shard);
    if (span != nullptr) span->t_work_done = core::Tracer::now_ns();
    return resp;
  }

  const std::shared_ptr<DesignSession> s =
      sessions_->registry(shard).find(r.session);
  if (s == nullptr) {
    resp.error = "unknown session '" + r.session + "'";
    return resp;
  }
  std::unique_lock<std::mutex> lock(s->mutex());
  if (span != nullptr) span->t_lock = core::Tracer::now_ns();
  s->count_request();
  switch (r.type) {
    case RequestType::kLoad: do_load(*s, r, resp); break;
    case RequestType::kSave: do_save(*s, resp); break;
    case RequestType::kAssign: do_assign(*s, r, resp, false); break;
    case RequestType::kBatchAssign: do_assign(*s, r, resp, true); break;
    case RequestType::kEdit: do_edit(*s, r, resp); break;
    case RequestType::kQuery: do_query(*s, r, resp); break;
    case RequestType::kReport: do_report(*s, r, resp); break;
    case RequestType::kJournal:
      do_journal(*s, r, resp, ShardIo{sessions_.get(), shard});
      break;
    case RequestType::kCheckpoint: do_checkpoint(*s, resp); break;
    case RequestType::kSelect: do_select(*s, r, resp); break;
    case RequestType::kSelectStats: do_select_stats(*s, r, resp); break;
    case RequestType::kOpen:
    case RequestType::kClose:
    case RequestType::kRecover: break;  // handled above
  }
  if (span != nullptr) span->t_work_done = core::Tracer::now_ns();
  const PendingDurability pending = journal_mutation(*s, r, resp, span);
  // While the session traces, its request phases land in the same sinks as
  // the engine's own events, so a Chrome-trace export shows queue/lock/
  // propagate/journal slices interleaved with the propagation waves.
  core::Tracer& tracer = s->library().context().tracer();
  if (span != nullptr && tracer.enabled()) {
    static const Phase kEmit[] = {Phase::kQueue, Phase::kLock,
                                  Phase::kPropagate, Phase::kJournal,
                                  Phase::kFsync, Phase::kFlushWait};
    char label[48];
    for (const Phase p : kEmit) {
      const std::uint64_t dur = span->phase_ns(p);
      if (dur == 0) continue;
      std::snprintf(label, sizeof label, "req#%llu %s",
                    static_cast<unsigned long long>(span->request_id),
                    to_string(p));
      tracer.emit(core::TraceEventType::kRequestPhase, label, nullptr, dur,
                  static_cast<std::uint8_t>(p));
    }
  }
  // Group commit: the response promise resolves from the flush completion.
  // The session lock is released FIRST, so other requests on this session
  // batch into the same flush instead of serializing behind this wait.
  if (pending.wait_needed) {
    lock.unlock();
    persist::CommitTicket ticket = pending.ticket;
    const bool durable = ticket.wait();
    if (span != nullptr) {
      span->t_journal_done = core::Tracer::now_ns();
      span->fsync_ns = ticket.fsync_ns();
      span->flush_wait_ns = ticket.wait_ns();
      // Exactly one ticket per journal death carries the fault marker.
      span->journal_fault = ticket.faulted();
    }
    if (!durable) append_durability_warning(resp);
  }
  return resp;
}

Response DesignService::execute_lifecycle(const Request& r,
                                          std::size_t shard) {
  SessionManager& registry = sessions_->registry(shard);
  Response resp;
  resp.session = r.session;

  if (r.type == RequestType::kOpen) {
    bool metrics = false;
    bool trace = false;
    std::istringstream in(r.text);
    std::string opt;
    while (in >> opt) {
      if (opt == "metrics") {
        metrics = true;
      } else if (opt == "trace") {
        trace = true;
      } else {
        resp.error = "unknown open option '" + opt + "'";
        return resp;
      }
    }
    if (registry.open(r.session, metrics, trace) == nullptr) {
      resp.error = "session '" + r.session + "' already exists";
      return resp;
    }
    resp.ok = true;
    resp.text = "opened " + r.session;
    return resp;
  }

  if (r.type == RequestType::kRecover) {
    return do_recover(registry, r, ShardIo{sessions_.get(), shard});
  }

  if (r.type == RequestType::kClose) {
    const std::shared_ptr<DesignSession> victim = registry.find(r.session);
    if (victim == nullptr) {
      resp.error = "unknown session '" + r.session + "'";
      return resp;
    }
    {
      // A journaled session marks its clean shutdown, then flushes and
      // closes the log before the registry lets the session die.
      const std::lock_guard<std::mutex> lock(victim->mutex());
      if (victim->journal() != nullptr) {
        persist::JournalRecord rec;
        rec.op = "close";
        rec.session = r.session;
        victim->journal()->append(rec);
        victim->detach_journal();
      }
    }
    if (!registry.close(r.session)) {
      resp.error = "unknown session '" + r.session + "'";
      return resp;
    }
    resp.ok = true;
    resp.text = "closed " + r.session;
    return resp;
  }

  resp.error = "not a lifecycle request";  // unreachable (execute dispatches)
  return resp;
}

}  // namespace stemcp::service
