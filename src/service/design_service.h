// DesignService: the constraint-propagation engine as a service-grade
// component (ROADMAP: production scale; cf. Schulte & Stuckey's treatment of
// propagation engines as explicit, schedulable components and Goualard's
// clean session/service solver boundary).
//
// Architecture:
//   * SessionManager — owns many independent DesignSessions, each a Library
//     (+ engine context, tracer, metrics) behind a per-session mutex.
//   * ShardedSessionManager — N shards, each owning its own SessionManager,
//     its own worker pool draining a per-shard FIFO queue, and its own
//     journal directory namespace.  Sessions route to shards by a
//     deterministic hash of the session id, so no request — mutating or
//     lifecycle — ever takes a lock shared between shards.  Global views
//     (session listing, counts) fold per-shard state lazily on read, one
//     shard lock at a time.
//   * DesignService — the request API over the sharded tier: submit() hashes
//     the session id, stamps the span, and enqueues on the owning shard.
//   * Typed request API — open / load / save / assign / batch-assign /
//     edit / query / report / close, with structured results carrying
//     violation and restore outcomes.
//
// Batching: a kBatchAssign request coalesces all of its #USER assignments
// into ONE propagation session — one wave, one agenda drain, one final
// isSatisfied sweep — so a violating batch restores every variable the wave
// touched (all-or-nothing), and a clean batch costs one check sweep instead
// of one per assignment.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "service/session.h"
#include "service/telemetry.h"

namespace stemcp::service {

enum class RequestType : std::uint8_t {
  kOpen,         ///< create a session (text: options "metrics" / "trace")
  kLoad,         ///< parse library text into the session (text: the library)
  kSave,         ///< serialize the session's library (response text)
  kAssign,       ///< sequential #USER assignments, one wave each
  kBatchAssign,  ///< all #USER assignments in one propagation wave
  kEdit,         ///< structural edit command (text: see docs/SERVICE.md)
  kQuery,        ///< "cells" | "vars [cell]" | "stats" | <variable path>
  kReport,       ///< design documentation report (text: optional cell name)
  kClose,        ///< destroy the session (folds its metrics into the
                 ///< process-global registry; flushes and closes the journal)
  kJournal,      ///< attach a journal (text: "<base> [policy [interval]]");
                 ///< writes an initial checkpoint, then logs every mutation
  kCheckpoint,   ///< snapshot the library atomically, truncate the journal
  kRecover,      ///< rebuild a session from disk (text: "<base>"); replays
                 ///< checkpoint + journal through the engine
  kSelect,       ///< FD module selection (text: "<cell> [slot <subcell>]...
                 ///< [limit <n>] [commit]"; see docs/SOLVER.md)
  kSelectStats,  ///< dry-run selection: exploration counters, no commit
};

const char* to_string(RequestType t);

struct Assignment {
  std::string variable;  ///< identification path, e.g. "ADDER.delay(a->out)"
  double value = 0.0;
};

struct Request {
  RequestType type = RequestType::kQuery;
  std::string session;
  std::string text;
  std::vector<Assignment> assignments;
};

/// Structured result of one request.  `ok` is false only for request-level
/// failures (unknown session/variable, parse error, bad command); a
/// constraint violation is a *successful* request whose outcome is reported
/// through `violation` / `violation_message` / `variables_restored`.
struct Response {
  bool ok = false;
  std::string error;
  std::string text;

  bool violation = false;
  std::string violation_message;
  std::uint64_t assignments_applied = 0;  ///< accepted before any violation
  std::uint64_t variables_restored = 0;   ///< restored by violation recovery

  std::string session;
};

/// Thread-safe registry of named sessions (one per shard).
class SessionManager {
 public:
  /// Create a session; nullptr when the name is already taken.
  std::shared_ptr<DesignSession> open(const std::string& name,
                                      bool collect_metrics = false,
                                      bool collect_trace = false);
  /// Publish an externally built session (recovery constructs and replays
  /// the session BEFORE it becomes visible, so no request can observe a
  /// half-recovered library).  False when the name is already taken.
  bool insert(std::shared_ptr<DesignSession> s);
  std::shared_ptr<DesignSession> find(const std::string& name) const;
  /// Remove a session from the registry.  The victim is moved out under the
  /// lock but destroyed AFTER it is released — destruction folds the
  /// session's stats into the process-global metrics, and that fold must
  /// never run under the registry lock (workers may still hold the session
  /// shared_ptr; see the close-vs-request hammer in
  /// tests/service/shard_stress_test.cpp).
  bool close(const std::string& name);

  std::vector<std::string> names() const;
  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<DesignSession>> sessions_;
};

/// The sharded session tier.  Each shard owns a registry, a FIFO queue, and
/// a worker pool; jobs route by shard_of(session).  The request path touches
/// only the owning shard's queue mutex and session locks — there is no
/// global lock to contend on (asserted by ShardStressTest.
/// BlockedShardDoesNotStallOthers).
class ShardedSessionManager {
 public:
  /// One queued request: the typed request, its telemetry span, and the
  /// promise the executing worker resolves.
  struct Job {
    Request request;
    RequestSpan span;
    std::promise<Response> done;
  };
  /// Drain handler, invoked on the owning shard's worker thread for every
  /// dequeued job: (shard, worker-within-shard, job).  The handler executes
  /// the request, records telemetry, and resolves job.done.
  using JobHandler = std::function<void(std::size_t, std::size_t, Job&)>;

  /// Per-shard queue/worker counters (all monotone; read with relaxed
  /// atomics, so cross-shard sums are approximate while workers run).
  struct ShardStats {
    std::uint64_t enqueued = 0;
    std::uint64_t dequeued = 0;
    std::uint64_t served = 0;
  };

  /// Spins up `shards` × `workers_per_shard` workers.  A non-empty
  /// `journal_root` namespaces durable state per shard: journal/recover base
  /// paths resolve to "<root>/shard-<i>/<base>" (directories are created
  /// eagerly here, off the request path).
  ShardedSessionManager(std::size_t shards, std::size_t workers_per_shard,
                        std::string journal_root, JobHandler handler);
  /// Drains every shard queue (every submitted job is still handled), then
  /// joins the workers.
  ~ShardedSessionManager();

  ShardedSessionManager(const ShardedSessionManager&) = delete;
  ShardedSessionManager& operator=(const ShardedSessionManager&) = delete;

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t workers_per_shard() const { return workers_per_shard_; }
  const std::string& journal_root() const { return journal_root_; }

  /// Deterministic session-id hash (FNV-1a 64); exposed so tests and
  /// benches can pick session names that land on chosen shards.
  static std::uint64_t hash_of(std::string_view session);
  std::size_t shard_of(std::string_view session) const {
    return static_cast<std::size_t>(hash_of(session) % shards_.size());
  }
  /// The shard's durable-state base path: "<root>/shard-<i>/<base>" under a
  /// journal root, `base` unchanged without one.
  std::string resolve_base(std::size_t shard, const std::string& base) const;

  /// The owning shard's registry (direct, for shard-local work).
  SessionManager& registry(std::size_t shard) { return shards_[shard]->sessions; }
  const SessionManager& registry(std::size_t shard) const {
    return shards_[shard]->sessions;
  }

  // ---- SessionManager-compatible views --------------------------------
  // open/find/close route straight to the owning shard (one shard lock);
  // names/size fold across shards lazily, one shard lock at a time.

  std::shared_ptr<DesignSession> open(const std::string& name,
                                      bool collect_metrics = false,
                                      bool collect_trace = false);
  std::shared_ptr<DesignSession> find(const std::string& name) const;
  bool close(const std::string& name);
  std::vector<std::string> names() const;  ///< sorted across shards
  std::size_t size() const;

  /// Enqueue on the owning shard.  False when the tier is stopping — the
  /// job is left untouched so the caller can resolve its promise.
  bool enqueue(Job&& job);
  ShardStats stats(std::size_t shard) const;

 private:
  struct Shard {
    SessionManager sessions;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Job> queue;
    bool stopping = false;
    std::atomic<std::uint64_t> enqueued{0};
    std::atomic<std::uint64_t> dequeued{0};
    std::atomic<std::uint64_t> served{0};
    std::vector<std::thread> workers;
  };

  void worker_loop(std::size_t shard, std::size_t worker);

  std::size_t workers_per_shard_;
  std::string journal_root_;
  JobHandler handler_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

class DesignService {
 public:
  struct Config {
    std::size_t workers_per_shard = 4;
    std::size_t shards = 1;
    /// Non-empty: shard i's journal/recover bases resolve to
    /// "<root>/shard-<i>/<base>", giving each shard a private journal
    /// directory namespace.
    std::string journal_root;
  };

  explicit DesignService(Config cfg);
  explicit DesignService(std::size_t workers = 4, std::size_t shards = 1)
      : DesignService(Config{workers, shards, {}}) {}
  /// Drains the queues (every submitted request still gets a response),
  /// then joins the workers.
  ~DesignService() = default;

  DesignService(const DesignService&) = delete;
  DesignService& operator=(const DesignService&) = delete;

  /// Enqueue a request; the future resolves when a worker on the owning
  /// shard has executed it.  Never throws from execution — failures come
  /// back as Response::error.
  std::future<Response> submit(Request r);
  /// Synchronous convenience: submit and wait.
  Response call(Request r);

  ShardedSessionManager& sessions() { return *sessions_; }
  const ShardedSessionManager& sessions() const { return *sessions_; }
  std::size_t shard_count() const { return sessions_->shard_count(); }
  std::size_t worker_count() const {
    return sessions_->shard_count() * sessions_->workers_per_shard();
  }
  std::uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }

  /// Observer invoked from submit() for every request, in submission order,
  /// BEFORE the job is enqueued (so a tap that records traffic sees exactly
  /// the order the service accepted it in — per-shard FIFO order with one
  /// worker per shard).  The workload recorder
  /// (src/workload/recorder.h) is the intended consumer; the service cannot
  /// depend on it, so the binding is a plain function.
  using RequestTap = std::function<void(const Request&)>;
  /// Install (or, with an empty function, remove) the request tap.  The
  /// config-flag discipline of telemetry.cpp applies: when no tap is
  /// installed the submit() hot path pays one relaxed atomic load and
  /// nothing else.  The tap runs under a mutex shared by all submitters —
  /// recording serializes submission, which is the point (the trace is a
  /// total order).  The caller must keep the tap's target alive until it
  /// detaches by installing an empty tap.
  void set_request_tap(RequestTap tap);

  /// Per-request latency telemetry: one lane per worker (lane =
  /// shard × workers_per_shard + worker), folded on read.  Spans are fully
  /// recorded before a request's future resolves, so a caller that waited
  /// on the response always sees its own span.
  TelemetryRecorder& telemetry() { return telemetry_; }
  const TelemetryRecorder& telemetry() const { return telemetry_; }

 private:
  void run_job(std::size_t shard, std::size_t worker,
               ShardedSessionManager::Job& job);
  Response execute(const Request& r, RequestSpan* span, std::size_t shard);
  /// open / recover / close — requests that manage the owning shard's
  /// registry itself rather than running under one session's lock.
  Response execute_lifecycle(const Request& r, std::size_t shard);

  Config cfg_;
  TelemetryRecorder telemetry_;
  std::atomic<std::uint64_t> served_{0};
  std::atomic<bool> tap_armed_{false};
  std::mutex tap_mu_;
  RequestTap tap_;
  // Declared last: its destructor joins the workers while telemetry_ and
  // served_ are still alive.
  std::unique_ptr<ShardedSessionManager> sessions_;
};

}  // namespace stemcp::service
