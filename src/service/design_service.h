// DesignService: the constraint-propagation engine as a service-grade
// component (ROADMAP: production scale; cf. Schulte & Stuckey's treatment of
// propagation engines as explicit, schedulable components and Goualard's
// clean session/service solver boundary).
//
// Architecture:
//   * SessionManager — owns many independent DesignSessions, each a Library
//     (+ engine context, tracer, metrics) behind a per-session mutex.
//   * DesignService — a fixed-size worker pool draining one request queue.
//     Requests against different sessions execute in parallel; requests
//     against the same session serialize on its mutex.
//   * Typed request API — open / load / save / assign / batch-assign /
//     edit / query / report / close, with structured results carrying
//     violation and restore outcomes.
//
// Batching: a kBatchAssign request coalesces all of its #USER assignments
// into ONE propagation session — one wave, one agenda drain, one final
// isSatisfied sweep — so a violating batch restores every variable the wave
// touched (all-or-nothing), and a clean batch costs one check sweep instead
// of one per assignment.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/session.h"
#include "service/telemetry.h"

namespace stemcp::service {

enum class RequestType : std::uint8_t {
  kOpen,         ///< create a session (text: options "metrics" / "trace")
  kLoad,         ///< parse library text into the session (text: the library)
  kSave,         ///< serialize the session's library (response text)
  kAssign,       ///< sequential #USER assignments, one wave each
  kBatchAssign,  ///< all #USER assignments in one propagation wave
  kEdit,         ///< structural edit command (text: see docs/SERVICE.md)
  kQuery,        ///< "cells" | "vars [cell]" | "stats" | <variable path>
  kReport,       ///< design documentation report (text: optional cell name)
  kClose,        ///< destroy the session (folds its metrics into the
                 ///< process-global registry; flushes and closes the journal)
  kJournal,      ///< attach a journal (text: "<base> [policy [interval]]");
                 ///< writes an initial checkpoint, then logs every mutation
  kCheckpoint,   ///< snapshot the library atomically, truncate the journal
  kRecover,      ///< rebuild a session from disk (text: "<base>"); replays
                 ///< checkpoint + journal through the engine
};

const char* to_string(RequestType t);

struct Assignment {
  std::string variable;  ///< identification path, e.g. "ADDER.delay(a->out)"
  double value = 0.0;
};

struct Request {
  RequestType type = RequestType::kQuery;
  std::string session;
  std::string text;
  std::vector<Assignment> assignments;
};

/// Structured result of one request.  `ok` is false only for request-level
/// failures (unknown session/variable, parse error, bad command); a
/// constraint violation is a *successful* request whose outcome is reported
/// through `violation` / `violation_message` / `variables_restored`.
struct Response {
  bool ok = false;
  std::string error;
  std::string text;

  bool violation = false;
  std::string violation_message;
  std::uint64_t assignments_applied = 0;  ///< accepted before any violation
  std::uint64_t variables_restored = 0;   ///< restored by violation recovery

  std::string session;
};

/// Thread-safe registry of named sessions.
class SessionManager {
 public:
  /// Create a session; nullptr when the name is already taken.
  std::shared_ptr<DesignSession> open(const std::string& name,
                                      bool collect_metrics = false,
                                      bool collect_trace = false);
  std::shared_ptr<DesignSession> find(const std::string& name) const;
  /// Remove a session from the registry.  The session object is destroyed
  /// once the last in-flight request releases it; destruction folds its
  /// stats into the process-global metrics.
  bool close(const std::string& name);

  std::vector<std::string> names() const;
  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<DesignSession>> sessions_;
};

class DesignService {
 public:
  explicit DesignService(std::size_t workers = 4);
  /// Drains the queue (every submitted request still gets a response), then
  /// joins the workers.
  ~DesignService();

  DesignService(const DesignService&) = delete;
  DesignService& operator=(const DesignService&) = delete;

  /// Enqueue a request; the future resolves when a worker has executed it.
  /// Never throws from execution — failures come back as Response::error.
  std::future<Response> submit(Request r);
  /// Synchronous convenience: submit and wait.
  Response call(Request r);

  SessionManager& sessions() { return sessions_; }
  std::size_t worker_count() const { return workers_.size(); }
  std::uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }

  /// Per-request latency telemetry: one lane per worker, folded on read.
  /// Spans are fully recorded before a request's future resolves, so a
  /// caller that waited on the response always sees its own span.
  TelemetryRecorder& telemetry() { return telemetry_; }
  const TelemetryRecorder& telemetry() const { return telemetry_; }

 private:
  struct Job {
    Request request;
    RequestSpan span;
    std::promise<Response> done;
  };

  void worker_loop(std::size_t lane);
  Response execute(const Request& r, RequestSpan* span);
  /// open / recover / close — requests that manage the session registry
  /// itself rather than running under one session's lock.
  Response execute_lifecycle(const Request& r);

  SessionManager sessions_;
  TelemetryRecorder telemetry_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job> queue_;
  bool stopping_ = false;
  std::atomic<std::uint64_t> served_{0};
  std::vector<std::thread> workers_;
};

}  // namespace stemcp::service
