// Line protocol for the design service: one request per text line, one
// textual response per request — the transport-agnostic front end that the
// constraint shell's `service` command (and any future socket server)
// speaks.  See docs/SERVICE.md for the grammar.
#pragma once

#include <string>

#include "service/design_service.h"

namespace stemcp::service {

class ServiceFrontEnd {
 public:
  explicit ServiceFrontEnd(DesignService& svc) : svc_(&svc) {}

  /// Execute one protocol line and return the textual response (always
  /// newline-terminated; errors come back as "error: ...").
  ///
  ///   open <sess> [metrics] [trace]
  ///   load <sess> file <path> | load <sess> text <line\nline...>
  ///   save <sess> [file <path>]
  ///   assign <sess> <var> <value> [<var> <value> ...]
  ///   batch-assign <sess> <var> <value> [<var> <value> ...]
  ///   edit <sess> <edit command...>
  ///   query <sess> [cells | vars [cell] | stats | <variable path>]
  ///   report <sess> [cell]
  ///   journal <sess> <base> [every-record|interval|none [records]]
  ///   checkpoint <sess>
  ///   recover <sess> <base>
  ///   close <sess>
  ///   sessions
  ///   help
  ///
  /// In `load ... text`, the two-character sequence "\n" separates library
  /// lines, so a whole design fits on one protocol line.
  std::string execute(const std::string& line);

  /// Parse one protocol line into a typed Request.  Returns false (with
  /// `error` set) for front-end syntax errors.  `sessions` and `help` are
  /// front-end commands and not parseable as Requests.
  static bool parse(const std::string& line, Request* out, std::string* error);

  /// Render a structured response as protocol text.
  static std::string format(const Response& r);

  /// Render a typed Request back into one protocol line (no trailing
  /// newline), APPENDED to `*out` — the inverse of parse(), used by the
  /// workload recorder/synthesizer so the trace format reuses this grammar
  /// instead of inventing its own.  Allocation-free in steady state: only
  /// appends to `*out` (whose capacity is reused by callers), never builds
  /// temporaries.  Returns false (with `*error` set when non-null) for
  /// requests that cannot round-trip through the line grammar: empty or
  /// whitespace-carrying session names, newlines in single-line payloads,
  /// backslashes in library text (parse() unescapes only "\n", so a literal
  /// backslash would not survive), or empty required payloads.  kLoad is
  /// always rendered in the `text` form — `file` is a parse-time
  /// convenience, and traces must be self-contained.
  static bool render(const Request& r, std::string* out,
                     std::string* error = nullptr);

 private:
  DesignService* svc_;
};

}  // namespace stemcp::service
