// Request telemetry: per-request latency spans for the design service
// (ROADMAP: latency-under-load before cost-aware scheduling; cf. ssdiq's
// benchlat methodology — you cannot tune what you cannot attribute).
//
// Every DesignService request carries a RequestSpan: a monotonically
// assigned request id plus one steady-clock stamp per phase boundary
//
//   enqueue → dequeue (queue wait) → session-lock acquired (lock wait)
//           → propagate/work done → journal append + fsync → reply
//
// Workers record completed spans into per-worker *lanes* — a fixed-size
// span ring plus lock-free ConcurrentHistograms per phase and per request
// type — so the steady-state record path takes no lock and performs ZERO
// heap allocations (tests/core/hotpath_test.cpp counts).  Readers fold the
// lanes into a plain MetricsRegistry snapshot (percentiles are computed on
// bucket snapshots via Histogram::from_parts, never on the live atomics)
// for the `stats --latency` view, the Prometheus exposition
// (`export-metrics`), and the consolidated bench JSON.
//
// The flight recorder keeps the last N spans per lane and, when armed,
// dumps them as a Chrome trace-event file on anomaly: a violation wave, a
// journal going dead mid-append, or any request slower than the configured
// threshold.  See docs/OBSERVABILITY.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/trace.h"

namespace stemcp::service {

/// Request phases, in wall-clock order.  kTotal is enqueue→reply.
enum class Phase : std::uint8_t {
  kQueue,      ///< submitted → picked up by a worker
  kLock,       ///< picked up → session mutex acquired
  kPropagate,  ///< the request's own work (propagation wave, query, ...)
  kJournal,    ///< journal append minus the flush-side portion
  kFsync,      ///< fsync portion of the journal append (or the group flush)
  kFlushWait,  ///< group-commit only: blocked on the ticket beyond the fsync
  kReply,      ///< bookkeeping after the journal until the response is ready
  kTotal,      ///< enqueue → response ready
};
constexpr std::size_t kPhaseCount = 8;
const char* to_string(Phase p);

/// Request types mirrored as a dense index (RequestType has 14 verbs; the
/// span stores the raw value so this header stays independent of
/// design_service.h).
constexpr std::size_t kSpanTypeCount = 14;
const char* span_type_name(std::uint8_t type);

/// One request's life, as fixed-size POD — absolute steady-clock stamps at
/// each phase boundary (0 = boundary never reached; derived phase durations
/// clamp to the previous stamp, so partial spans stay monotone).
struct RequestSpan {
  static constexpr std::size_t kSessionCapacity = 24;

  std::uint64_t request_id = 0;
  std::uint8_t type = 0;      ///< RequestType as raw index
  std::uint8_t lane = 0;      ///< worker index that executed it
  std::uint8_t shard = 0;     ///< session shard the request routed to
  bool ok = false;
  bool violation = false;
  bool journal_fault = false; ///< the journal died during THIS request
  char session[kSessionCapacity] = {};

  std::uint64_t t_enqueue = 0;
  std::uint64_t t_dequeue = 0;
  std::uint64_t t_lock = 0;
  std::uint64_t t_work_done = 0;
  std::uint64_t t_journal_done = 0;
  std::uint64_t t_reply = 0;
  std::uint64_t fsync_ns = 0;  ///< portion of the journal phase spent in fsync
  /// Group commit: nanoseconds this request blocked waiting for its
  /// CommitTicket (covers the shared fsync; the kFlushWait phase is the
  /// excess over fsync_ns so the phases still tile the span).  0 under the
  /// synchronous policies.
  std::uint64_t flush_wait_ns = 0;

  void set_session(std::string_view s);
  std::string_view session_view() const;

  /// Duration of one phase in ns; missing boundaries contribute 0.
  std::uint64_t phase_ns(Phase p) const;
  std::uint64_t total_ns() const {
    return t_reply > t_enqueue ? t_reply - t_enqueue : 0;
  }
};

/// Serialize one span as Chrome trace-event JSON objects (one "X" slice per
/// non-empty phase, tid = lane) appended to `out`; `first` tracks comma
/// placement across calls.
void append_span_trace_events(const RequestSpan& span, std::string& out,
                              bool& first);

class TelemetryRecorder {
 public:
  struct Config {
    bool enabled = true;
    std::size_t flight_capacity = 256;   ///< spans retained per lane ring
    std::uint64_t slow_threshold_ns = 0; ///< 0 = slow-request anomaly off
    std::string dump_base;               ///< non-empty: dump files "<base>.<n>.trace.json"
    bool keep_last_dump = false;         ///< retain the last dump JSON in memory
    std::uint64_t max_dumps = 64;        ///< hard cap on anomaly dumps
    /// Lanes-per-shard grouping: when > 0, lane i belongs to shard
    /// i / lanes_per_shard and fold() additionally emits per-shard
    /// aggregates (`svc.shard.<i>.*`).  0 = no shard grouping.
    std::size_t lanes_per_shard = 0;
  };

  TelemetryRecorder(std::size_t lanes, Config cfg);
  explicit TelemetryRecorder(std::size_t lanes)
      : TelemetryRecorder(lanes, Config()) {}
  ~TelemetryRecorder();

  TelemetryRecorder(const TelemetryRecorder&) = delete;
  TelemetryRecorder& operator=(const TelemetryRecorder&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  std::size_t lane_count() const { return lanes_.size(); }

  /// Monotonic request-id source (never returns the same id twice).
  std::uint64_t next_request_id() {
    return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Record one completed span into `lane`'s histograms and flight ring,
  /// then run the anomaly checks.  Lock-free and allocation-free unless an
  /// anomaly actually dumps.  No-op while disabled.
  void record(std::size_t lane, const RequestSpan& span);

  // ---- aggregated views (safe while workers keep recording) -------------

  std::uint64_t requests_recorded() const;
  std::uint64_t violations_recorded() const;
  std::uint64_t anomalies() const;

  /// Fold every lane into a plain registry: histograms
  /// `svc.lat.<phase>_ns` (one per phase) and `svc.lat.e2e.<type>_ns`
  /// (end-to-end per request type, only types that occurred), counters
  /// `svc.telemetry.{requests,violations,anomalies,dumps}`.  With
  /// Config::lanes_per_shard set, also per-shard aggregates: counters
  /// `svc.shard.<i>.requests` / `.violations` and histogram
  /// `svc.shard.<i>.e2e_ns`.  Because lanes fold by exact bucket merge
  /// (Histogram::from_parts), the sharded fold equals a single-recorder
  /// fold of the union of spans — tested as a property in
  /// tests/service/telemetry_test.cpp.
  core::MetricsRegistry fold() const;

  /// Human-readable per-phase / per-type percentile table (p50/p90/p99/p999).
  std::string latency_table() const;

  /// The folded registry in Prometheus text format.
  std::string prometheus() const;

  /// All retained spans, oldest request id first.
  std::vector<RequestSpan> recent_spans() const;

  // ---- flight recorder ---------------------------------------------------

  /// Arm anomaly dumping: `dump_base` receives "<base>.<n>.trace.json"
  /// files (empty = in-memory only), `slow_threshold_ns` flags requests
  /// slower than the threshold (0 keeps the slow check off).
  void arm_flight(std::string dump_base, std::uint64_t slow_threshold_ns,
                  bool keep_last_dump = true);
  void disarm_flight();
  bool flight_armed() const { return armed_.load(std::memory_order_relaxed); }
  std::uint64_t slow_threshold_ns() const {
    return slow_threshold_ns_.load(std::memory_order_relaxed);
  }

  /// Dump the flight ring now (manual trigger).  Returns the dump JSON.
  std::string dump_flight(const std::string& reason);

  std::uint64_t dumps() const { return dumps_.load(std::memory_order_relaxed); }
  /// Last dump document / reason (empty until a dump happened with
  /// keep_last_dump set, or a manual dump ran).
  std::string last_dump() const;
  std::string last_dump_reason() const;

 private:
  struct Lane;

  std::string render_dump(const std::string& reason) const;
  void anomaly_dump(const char* reason);

  Config cfg_;
  std::atomic<bool> enabled_{true};
  std::atomic<bool> armed_{false};
  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<std::uint64_t> slow_threshold_ns_{0};
  std::atomic<std::uint64_t> anomalies_{0};
  std::atomic<std::uint64_t> dumps_{0};
  std::vector<std::unique_ptr<Lane>> lanes_;

  mutable std::mutex dump_mu_;  ///< serializes (rare) dumps and their config
  std::string dump_base_;
  bool keep_last_dump_ = false;
  std::string last_dump_;
  std::string last_dump_reason_;
};

}  // namespace stemcp::service
