// DesignSession: one independent design workspace inside the design
// service — a Library (which owns its propagation context, tracer and
// metrics registry) behind a per-session mutex.
//
// The propagation engine is single-threaded per context (ROADMAP: the STEM
// image was a single-designer environment); the service scales by running
// MANY engines, one per session, and serializing work within each session
// with its mutex.  Cross-session work proceeds fully in parallel.  When a
// session closes, its context destructor folds the session's lifetime
// counters and histograms into the process-global metrics (core/trace.h),
// which is atomic and safe to hit from many closing sessions at once.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "stem/library.h"

namespace stemcp::core {
class Variable;
}

namespace stemcp::service {

class DesignSession {
 public:
  /// `collect_metrics` enables the per-session MetricsRegistry (and
  /// `collect_trace` the structured tracer) from the first request on.
  explicit DesignSession(std::string name, bool collect_metrics = false,
                         bool collect_trace = false);

  DesignSession(const DesignSession&) = delete;
  DesignSession& operator=(const DesignSession&) = delete;

  const std::string& name() const { return name_; }

  /// The session's design database.  Callers must hold mutex() while
  /// touching it (the service's worker pool does so per request).
  env::Library& library() { return lib_; }
  std::mutex& mutex() { return mu_; }

  /// Requests executed against this session (guarded by mutex()).  When the
  /// session collects metrics, the count is mirrored into the "svc.requests"
  /// counter through a pre-resolved handle — resolved once per metrics
  /// generation, so the per-request path does no string lookup.
  std::uint64_t requests_served() const { return requests_; }
  void count_request() {
    ++requests_;
    auto& m = lib_.context().metrics();
    if (m.enabled()) {
      if (req_counter_ == nullptr || req_counter_gen_ != m.generation()) {
        req_counter_ = m.counter_handle("svc.requests");
        req_counter_gen_ = m.generation();
      }
      ++*req_counter_;
    }
  }

  /// Look up a variable of the design database by its identification path
  /// ("ADDER.delay(a->out)", "ACC.reg.param(width)", ...).  Nullptr when
  /// unknown.  Caller must hold mutex().
  core::Variable* find_variable(const std::string& path);

  /// Visit every addressable variable (class- and instance-side).
  void for_each_variable(const std::function<void(core::Variable&)>& fn);

 private:
  std::string name_;
  std::mutex mu_;
  env::Library lib_;
  std::uint64_t requests_ = 0;
  std::uint64_t* req_counter_ = nullptr;
  std::uint64_t req_counter_gen_ = 0;
};

}  // namespace stemcp::service
