// DesignSession: one independent design workspace inside the design
// service — a Library (which owns its propagation context, tracer and
// metrics registry) behind a per-session mutex.
//
// The propagation engine is single-threaded per context (ROADMAP: the STEM
// image was a single-designer environment); the service scales by running
// MANY engines, one per session, and serializing work within each session
// with its mutex.  Cross-session work proceeds fully in parallel.  When a
// session closes, its context destructor folds the session's lifetime
// counters and histograms into the process-global metrics (core/trace.h),
// which is atomic and safe to hit from many closing sessions at once.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "persist/journal.h"
#include "stem/library.h"

namespace stemcp::core {
class Variable;
}

namespace stemcp::service {

/// Where and how a session journals (docs/PERSISTENCE.md).  `base` names the
/// durable-state pair "<base>.ckpt" / "<base>.journal".
struct JournalConfig {
  std::string base;
  persist::FsyncPolicy policy = persist::FsyncPolicy::kEveryRecord;
  std::uint32_t interval_records = 32;
  // kGroupCommit knobs (ignored by the other policies).
  std::uint32_t group_batch_records = 64;
  std::uint32_t group_delay_us = 200;
  /// Roll the journal into sealed "<base>.journal.<n>" segments at this
  /// size (0 = single-file journal, no rollover).
  std::uint64_t segment_bytes = 0;
};

class DesignSession {
 public:
  /// `collect_metrics` enables the per-session MetricsRegistry (and
  /// `collect_trace` the structured tracer) from the first request on.
  explicit DesignSession(std::string name, bool collect_metrics = false,
                         bool collect_trace = false);

  DesignSession(const DesignSession&) = delete;
  DesignSession& operator=(const DesignSession&) = delete;

  const std::string& name() const { return name_; }

  /// The session's design database.  Callers must hold mutex() while
  /// touching it (the service's worker pool does so per request).
  env::Library& library() { return lib_; }
  std::mutex& mutex() { return mu_; }

  /// Requests executed against this session (guarded by mutex()).  When the
  /// session collects metrics, the count is mirrored into the "svc.requests"
  /// counter through a pre-resolved handle — resolved once per metrics
  /// generation, so the per-request path does no string lookup.
  std::uint64_t requests_served() const { return requests_; }
  void count_request() {
    ++requests_;
    auto& m = lib_.context().metrics();
    if (m.enabled()) {
      if (req_counter_ == nullptr || req_counter_gen_ != m.generation()) {
        req_counter_ = m.counter_handle("svc.requests");
        req_counter_gen_ = m.generation();
      }
      ++*req_counter_;
    }
  }

  /// Look up a variable of the design database by its identification path
  /// ("ADDER.delay(a->out)", "ACC.reg.param(width)", ...).  Nullptr when
  /// unknown.  Caller must hold mutex().
  core::Variable* find_variable(const std::string& path);

  /// Visit every addressable variable (class- and instance-side).
  void for_each_variable(const std::function<void(core::Variable&)>& fn);

  // -- durability (callers hold mutex(); see docs/PERSISTENCE.md) ----------

  /// The attached operation journal, or nullptr for an in-memory-only
  /// session.  The service appends one record per successful mutating
  /// request while this is set.
  persist::Journal* journal() { return journal_.get(); }
  const JournalConfig& journal_config() const { return journal_cfg_; }

  void attach_journal(std::unique_ptr<persist::Journal> j, JournalConfig cfg) {
    journal_ = std::move(j);
    journal_cfg_ = std::move(cfg);
  }
  /// Release the journal (its destructor flushes and closes the file).
  std::unique_ptr<persist::Journal> detach_journal() {
    return std::move(journal_);
  }

  /// Cumulative FD module-selection work (select / select-stats requests;
  /// docs/SOLVER.md).  Guarded by mutex() like the rest of the session.
  struct SelectionTally {
    std::uint64_t requests = 0;             ///< select + select-stats served
    std::uint64_t solutions = 0;            ///< assignments found
    std::uint64_t candidates_explored = 0;  ///< realization tests
    std::uint64_t subtrees_pruned = 0;      ///< generic subtrees cut
    std::uint64_t commits = 0;              ///< slots realized via commit
  };
  const SelectionTally& selection_tally() const { return selection_; }
  SelectionTally& selection_tally() { return selection_; }

  bool collects_metrics() const { return opt_metrics_; }
  bool collects_trace() const { return opt_trace_; }
  /// The open options as protocol text ("", "metrics", "metrics trace", ...)
  /// — recorded in checkpoint headers so recovery reopens identically.
  std::string open_options() const;

 private:
  std::string name_;
  std::mutex mu_;
  env::Library lib_;
  std::uint64_t requests_ = 0;
  std::uint64_t* req_counter_ = nullptr;
  std::uint64_t req_counter_gen_ = 0;
  bool opt_metrics_ = false;
  bool opt_trace_ = false;
  std::unique_ptr<persist::Journal> journal_;
  JournalConfig journal_cfg_;
  SelectionTally selection_;
};

}  // namespace stemcp::service
