#include "service/telemetry.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <algorithm>
#include <fstream>
#include <sstream>

#include "service/design_service.h"

namespace stemcp::service {

const char* to_string(Phase p) {
  switch (p) {
    case Phase::kQueue: return "queue";
    case Phase::kLock: return "lock";
    case Phase::kPropagate: return "propagate";
    case Phase::kJournal: return "journal";
    case Phase::kFsync: return "fsync";
    case Phase::kFlushWait: return "flush_wait";
    case Phase::kReply: return "reply";
    case Phase::kTotal: return "total";
  }
  return "?";
}

const char* span_type_name(std::uint8_t type) {
  if (type >= kSpanTypeCount) return "unknown";
  return to_string(static_cast<RequestType>(type));
}

// ---------------------------------------------------------------------------
// RequestSpan

void RequestSpan::set_session(std::string_view s) {
  const std::size_t n = std::min(s.size(), kSessionCapacity - 1);
  std::memcpy(session, s.data(), n);
  session[n] = '\0';
}

std::string_view RequestSpan::session_view() const {
  // Bounded scan: a torn flight-ring slot may lack the writer's NUL.
  return std::string_view(session, ::strnlen(session, kSessionCapacity));
}

std::uint64_t RequestSpan::phase_ns(Phase p) const {
  const auto seg = [](std::uint64_t a, std::uint64_t b) {
    return (a != 0 && b > a) ? b - a : 0;
  };
  switch (p) {
    case Phase::kQueue: return seg(t_enqueue, t_dequeue);
    case Phase::kLock: return seg(t_dequeue, t_lock);
    case Phase::kPropagate: return seg(t_lock, t_work_done);
    case Phase::kJournal: {
      // The journal segment minus its flush side: the fsync itself plus —
      // under group commit — any extra ticket-wait beyond it.  The three
      // journal-side phases (journal/fsync/flush_wait) therefore tile
      // t_work_done → t_journal_done exactly, keeping the phase partition
      // (sum of phases == total) intact under every policy.
      const std::uint64_t j = seg(t_work_done, t_journal_done);
      const std::uint64_t flush = std::max(fsync_ns, flush_wait_ns);
      return j > flush ? j - flush : 0;
    }
    case Phase::kFsync: return fsync_ns;
    case Phase::kFlushWait:
      return flush_wait_ns > fsync_ns ? flush_wait_ns - fsync_ns : 0;
    case Phase::kReply:
      return seg(t_journal_done != 0 ? t_journal_done : t_work_done, t_reply);
    case Phase::kTotal: return total_ns();
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Chrome trace-event rendering (the flight-dump format)

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out += c;
    }
  }
}

void append_x_event(std::string& out, bool& first, const char* name,
                    std::uint64_t ts_ns, std::uint64_t dur_ns,
                    const RequestSpan& span) {
  if (!first) out += ",\n";
  first = false;
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "{\"name\":\"%s\",\"cat\":\"request\",\"ph\":\"X\","
                "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u,"
                "\"args\":{\"id\":%" PRIu64 ",\"type\":\"%s\",\"shard\":%u,"
                "\"session\":\"",
                name, static_cast<double>(ts_ns) / 1000.0,
                static_cast<double>(dur_ns) / 1000.0,
                static_cast<unsigned>(span.lane), span.request_id,
                span_type_name(span.type), static_cast<unsigned>(span.shard));
  out += buf;
  append_escaped(out, span.session_view());
  std::snprintf(buf, sizeof buf, "\",\"ok\":%s,\"violation\":%s}}",
                span.ok ? "true" : "false",
                span.violation ? "true" : "false");
  out += buf;
}

}  // namespace

void append_span_trace_events(const RequestSpan& span, std::string& out,
                              bool& first) {
  // The enclosing request slice, then one slice per non-empty phase.
  append_x_event(out, first, "request", span.t_enqueue, span.total_ns(), span);
  const struct {
    Phase phase;
    std::uint64_t start;
  } rows[] = {
      {Phase::kQueue, span.t_enqueue},
      {Phase::kLock, span.t_dequeue},
      {Phase::kPropagate, span.t_lock},
      {Phase::kJournal, span.t_work_done},
      {Phase::kFsync, span.t_journal_done > span.fsync_ns
                          ? span.t_journal_done - span.fsync_ns
                          : span.t_journal_done},
      // The flush-wait slice leads into the fsync slice: together they
      // tile [t_journal_done - flush_wait_ns, t_journal_done].
      {Phase::kFlushWait, span.t_journal_done > span.flush_wait_ns
                              ? span.t_journal_done - span.flush_wait_ns
                              : span.t_journal_done},
      {Phase::kReply, span.t_journal_done != 0 ? span.t_journal_done
                                               : span.t_work_done},
  };
  for (const auto& row : rows) {
    const std::uint64_t dur = span.phase_ns(row.phase);
    if (dur == 0 || row.start == 0) continue;
    append_x_event(out, first, to_string(row.phase), row.start, dur, span);
  }
}

// ---------------------------------------------------------------------------
// TelemetryRecorder

struct TelemetryRecorder::Lane {
  explicit Lane(std::size_t capacity) : ring(capacity == 0 ? 1 : capacity) {}

  // Single-writer span ring (the owning worker); cross-thread readers are
  // flight dumps only, which tolerate a torn slot in exchange for a
  // lock-free record path.
  std::vector<RequestSpan> ring;
  std::atomic<std::uint64_t> write{0};

  core::ConcurrentHistogram phase[kPhaseCount];
  core::ConcurrentHistogram by_type[kSpanTypeCount];
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> violations{0};
};

TelemetryRecorder::TelemetryRecorder(std::size_t lanes, Config cfg)
    : cfg_(std::move(cfg)) {
  enabled_.store(cfg_.enabled, std::memory_order_relaxed);
  slow_threshold_ns_.store(cfg_.slow_threshold_ns, std::memory_order_relaxed);
  dump_base_ = cfg_.dump_base;
  keep_last_dump_ = cfg_.keep_last_dump;
  if (!cfg_.dump_base.empty() || cfg_.slow_threshold_ns != 0 ||
      cfg_.keep_last_dump) {
    armed_.store(true, std::memory_order_relaxed);
  }
  if (lanes == 0) lanes = 1;
  lanes_.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    lanes_.push_back(std::make_unique<Lane>(cfg_.flight_capacity));
  }
}

TelemetryRecorder::~TelemetryRecorder() = default;

void TelemetryRecorder::record(std::size_t lane_idx, const RequestSpan& span) {
  if (!enabled()) return;
  Lane& lane = *lanes_[lane_idx % lanes_.size()];

  const std::uint64_t w = lane.write.load(std::memory_order_relaxed);
  lane.ring[w % lane.ring.size()] = span;
  lane.write.store(w + 1, std::memory_order_release);

  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    const Phase phase = static_cast<Phase>(p);
    // Journal phases only exist for requests that actually appended; not
    // recording zeros keeps fsync percentiles meaningful for mixed traffic.
    if ((phase == Phase::kJournal || phase == Phase::kFsync ||
         phase == Phase::kFlushWait) &&
        span.t_journal_done == 0) {
      continue;
    }
    lane.phase[p].record(span.phase_ns(phase));
  }
  if (span.type < kSpanTypeCount) {
    lane.by_type[span.type].record(span.total_ns());
  }
  lane.requests.fetch_add(1, std::memory_order_relaxed);
  if (span.violation) lane.violations.fetch_add(1, std::memory_order_relaxed);

  if (!flight_armed()) return;
  const std::uint64_t slow = slow_threshold_ns();
  const char* reason = nullptr;
  if (span.journal_fault) {
    reason = "journal-dead";
  } else if (span.violation) {
    reason = "violation-wave";
  } else if (slow != 0 && span.total_ns() > slow) {
    reason = "slow-request";
  }
  if (reason == nullptr) return;
  anomalies_.fetch_add(1, std::memory_order_relaxed);
  if (dumps_.load(std::memory_order_relaxed) >= cfg_.max_dumps) return;
  anomaly_dump(reason);
}

std::uint64_t TelemetryRecorder::requests_recorded() const {
  std::uint64_t n = 0;
  for (const auto& lane : lanes_) {
    n += lane->requests.load(std::memory_order_relaxed);
  }
  return n;
}

std::uint64_t TelemetryRecorder::violations_recorded() const {
  std::uint64_t n = 0;
  for (const auto& lane : lanes_) {
    n += lane->violations.load(std::memory_order_relaxed);
  }
  return n;
}

std::uint64_t TelemetryRecorder::anomalies() const {
  return anomalies_.load(std::memory_order_relaxed);
}

core::MetricsRegistry TelemetryRecorder::fold() const {
  core::MetricsRegistry out;
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    core::Histogram h;
    for (const auto& lane : lanes_) h.merge(lane->phase[p].snapshot());
    if (h.count() == 0) continue;
    out.histogram(std::string("svc.lat.") +
                  to_string(static_cast<Phase>(p)) + "_ns") = h;
  }
  for (std::size_t t = 0; t < kSpanTypeCount; ++t) {
    core::Histogram h;
    for (const auto& lane : lanes_) h.merge(lane->by_type[t].snapshot());
    if (h.count() == 0) continue;
    out.histogram(std::string("svc.lat.e2e.") +
                  span_type_name(static_cast<std::uint8_t>(t)) + "_ns") = h;
  }
  // Per-shard rollups: lane i belongs to shard i / lanes_per_shard, so a
  // shard's view is just a contiguous slice of the same lane fold — no
  // extra recording on the hot path, and the union across shards equals
  // the global fold exactly (bucket merges are associative).
  if (cfg_.lanes_per_shard > 0) {
    const std::size_t lps = cfg_.lanes_per_shard;
    const std::size_t shards = (lanes_.size() + lps - 1) / lps;
    for (std::size_t s = 0; s < shards; ++s) {
      std::uint64_t requests = 0;
      std::uint64_t violations = 0;
      core::Histogram e2e;
      for (std::size_t l = s * lps; l < std::min((s + 1) * lps, lanes_.size());
           ++l) {
        requests += lanes_[l]->requests.load(std::memory_order_relaxed);
        violations += lanes_[l]->violations.load(std::memory_order_relaxed);
        e2e.merge(lanes_[l]->phase[static_cast<std::size_t>(Phase::kTotal)]
                      .snapshot());
      }
      const std::string prefix = "svc.shard." + std::to_string(s) + ".";
      out.add_counter(prefix + "requests", requests);
      out.add_counter(prefix + "violations", violations);
      if (e2e.count() != 0) out.histogram(prefix + "e2e_ns") = e2e;
    }
  }
  out.add_counter("svc.telemetry.requests", requests_recorded());
  out.add_counter("svc.telemetry.violations", violations_recorded());
  out.add_counter("svc.telemetry.anomalies", anomalies());
  out.add_counter("svc.telemetry.dumps", dumps());
  return out;
}

namespace {

void table_row(std::ostream& out, const std::string& name,
               const core::Histogram& h) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "  %-16s %10" PRIu64 " %12" PRIu64 " %12" PRIu64
                " %12" PRIu64 " %12" PRIu64 " %12" PRIu64 "\n",
                name.c_str(), h.count(), h.percentile(50.0),
                h.percentile(90.0), h.percentile(99.0), h.percentile(99.9),
                h.max());
  out << buf;
}

}  // namespace

std::string TelemetryRecorder::latency_table() const {
  const core::MetricsRegistry reg = fold();
  std::ostringstream out;
  out << "request latency (ns), " << requests_recorded()
      << " request(s) recorded across " << lanes_.size() << " lane(s)\n";
  char head[160];
  std::snprintf(head, sizeof head,
                "  %-16s %10s %12s %12s %12s %12s %12s\n", "phase", "count",
                "p50", "p90", "p99", "p999", "max");
  out << head;
  static const Phase kOrder[] = {Phase::kQueue,     Phase::kLock,
                                 Phase::kPropagate, Phase::kJournal,
                                 Phase::kFsync,     Phase::kFlushWait,
                                 Phase::kReply,     Phase::kTotal};
  for (const Phase p : kOrder) {
    const auto* h = reg.find_histogram(std::string("svc.lat.") +
                                       to_string(p) + "_ns");
    if (h != nullptr) table_row(out, to_string(p), *h);
  }
  bool typed_header = false;
  for (std::size_t t = 0; t < kSpanTypeCount; ++t) {
    const std::string name =
        span_type_name(static_cast<std::uint8_t>(t));
    const auto* h = reg.find_histogram("svc.lat.e2e." + name + "_ns");
    if (h == nullptr) continue;
    if (!typed_header) {
      out << "end-to-end by request type (ns)\n";
      typed_header = true;
    }
    table_row(out, name, *h);
  }
  if (cfg_.lanes_per_shard > 0 && lanes_.size() > cfg_.lanes_per_shard) {
    out << "per-shard end-to-end (ns)\n";
    const std::size_t shards =
        (lanes_.size() + cfg_.lanes_per_shard - 1) / cfg_.lanes_per_shard;
    for (std::size_t s = 0; s < shards; ++s) {
      const auto* h = reg.find_histogram("svc.shard." + std::to_string(s) +
                                         ".e2e_ns");
      if (h != nullptr) table_row(out, "shard " + std::to_string(s), *h);
    }
  }
  if (anomalies() > 0 || dumps() > 0) {
    out << "flight recorder: " << anomalies() << " anomal(ies), " << dumps()
        << " dump(s)\n";
  }
  return out.str();
}

std::string TelemetryRecorder::prometheus() const {
  return core::metrics_to_prometheus(fold());
}

std::vector<RequestSpan> TelemetryRecorder::recent_spans() const {
  std::vector<RequestSpan> out;
  for (const auto& lane : lanes_) {
    const std::uint64_t total = lane->write.load(std::memory_order_acquire);
    const std::uint64_t n =
        std::min<std::uint64_t>(total, lane->ring.size());
    for (std::uint64_t i = total - n; i < total; ++i) {
      out.push_back(lane->ring[i % lane->ring.size()]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const RequestSpan& a, const RequestSpan& b) {
              return a.request_id < b.request_id;
            });
  return out;
}

// ---------------------------------------------------------------------------
// Flight recorder

void TelemetryRecorder::arm_flight(std::string dump_base,
                                   std::uint64_t slow_threshold_ns,
                                   bool keep_last_dump) {
  {
    const std::lock_guard<std::mutex> lock(dump_mu_);
    dump_base_ = std::move(dump_base);
    keep_last_dump_ = keep_last_dump;
  }
  slow_threshold_ns_.store(slow_threshold_ns, std::memory_order_relaxed);
  armed_.store(true, std::memory_order_release);
}

void TelemetryRecorder::disarm_flight() {
  armed_.store(false, std::memory_order_release);
  slow_threshold_ns_.store(0, std::memory_order_relaxed);
}

std::string TelemetryRecorder::render_dump(const std::string& reason) const {
  std::string out;
  out += "{\"reason\":\"";
  append_escaped(out, reason);
  out += "\",\"traceEvents\":[\n";
  bool first = true;
  for (const RequestSpan& span : recent_spans()) {
    append_span_trace_events(span, out, first);
  }
  out += "\n],\"displayTimeUnit\":\"ns\"}\n";
  return out;
}

std::string TelemetryRecorder::dump_flight(const std::string& reason) {
  const std::lock_guard<std::mutex> lock(dump_mu_);
  const std::uint64_t n = dumps_.fetch_add(1, std::memory_order_relaxed);
  std::string doc = render_dump(reason);
  if (!dump_base_.empty()) {
    std::ofstream f(dump_base_ + "." + std::to_string(n) + ".trace.json",
                    std::ios::out | std::ios::trunc);
    f << doc;
  }
  last_dump_ = doc;
  last_dump_reason_ = reason;
  return doc;
}

void TelemetryRecorder::anomaly_dump(const char* reason) {
  const std::lock_guard<std::mutex> lock(dump_mu_);
  const std::uint64_t n = dumps_.fetch_add(1, std::memory_order_relaxed);
  const std::string doc = render_dump(reason);
  if (!dump_base_.empty()) {
    std::ofstream f(dump_base_ + "." + std::to_string(n) + ".trace.json",
                    std::ios::out | std::ios::trunc);
    f << doc;
  }
  if (keep_last_dump_) last_dump_ = doc;
  last_dump_reason_ = reason;
}

std::string TelemetryRecorder::last_dump() const {
  const std::lock_guard<std::mutex> lock(dump_mu_);
  return last_dump_;
}

std::string TelemetryRecorder::last_dump_reason() const {
  const std::lock_guard<std::mutex> lock(dump_mu_);
  return last_dump_reason_;
}

}  // namespace stemcp::service
