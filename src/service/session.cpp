#include "service/session.h"

#include "stem/cell.h"
#include "stem/net.h"

namespace stemcp::service {

DesignSession::DesignSession(std::string name, bool collect_metrics,
                             bool collect_trace)
    : name_(std::move(name)),
      lib_(name_),
      opt_metrics_(collect_metrics),
      opt_trace_(collect_trace) {
  if (collect_metrics) lib_.context().metrics().set_enabled(true);
  if (collect_trace) lib_.context().tracer().set_enabled(true);
}

std::string DesignSession::open_options() const {
  std::string opts;
  if (opt_metrics_) opts = "metrics";
  if (opt_trace_) opts += opts.empty() ? "trace" : " trace";
  return opts;
}

void DesignSession::for_each_variable(
    const std::function<void(core::Variable&)>& fn) {
  for (const auto& cell : lib_.cells()) {
    fn(cell->bounding_box());
    for (const auto& sig : cell->signals()) {
      fn(sig->bit_width());
      fn(sig->data_type());
      fn(sig->electrical_type());
    }
    for (const auto& [pname, pvar] : cell->parameters()) fn(*pvar);
    for (env::ClassDelayVar* d : cell->delay_variables()) {
      if (&d->owner() == cell.get()) fn(*d);
    }
    for (const auto& sub : cell->subcells()) {
      fn(sub->bounding_box());
      for (env::InstanceBitWidthVar* v : sub->bit_width_variables()) fn(*v);
      for (env::InstanceParamVar* v : sub->parameter_variables()) fn(*v);
      for (env::InstanceDelayVar* v : sub->delay_variables()) fn(*v);
    }
  }
}

core::Variable* DesignSession::find_variable(const std::string& path) {
  core::Variable* found = nullptr;
  for_each_variable([&](core::Variable& v) {
    if (found == nullptr && v.path() == path) found = &v;
  });
  return found;
}

}  // namespace stemcp::service
