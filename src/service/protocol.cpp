#include "service/protocol.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/trace.h"
#include "persist/checkpoint.h"

namespace stemcp::service {

namespace {

/// Byte offset where parsing stopped — appended to every parse error so
/// replay diagnostics (recovery reuses this parser) point at the offending
/// token, not just the line.
std::string at_byte(std::istringstream& in, const std::string& line) {
  const auto pos = in.tellg();
  const std::size_t off =
      pos < 0 ? line.size() : static_cast<std::size_t>(pos);
  return " (at byte " + std::to_string(off) + ")";
}

std::string unescape_newlines(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size() && s[i + 1] == 'n') {
      out.push_back('\n');
      ++i;
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

std::string rest_of(std::istringstream& in) {
  std::string rest;
  std::getline(in, rest);
  const auto first = rest.find_first_not_of(" \t");
  return first == std::string::npos ? std::string() : rest.substr(first);
}

bool parse_assignments(std::istringstream& in, const std::string& line,
                       Request* out, std::string* error) {
  std::string var;
  double value = 0.0;
  while (in >> var) {
    if (!(in >> value)) {
      in.clear();
      *error = "assignment '" + var + "' needs a numeric value" +
               at_byte(in, line);
      return false;
    }
    out->assignments.push_back({var, value});
  }
  if (out->assignments.empty()) {
    in.clear();
    *error = "expected one or more <variable> <value> pairs" + at_byte(in, line);
    return false;
  }
  return true;
}

/// Every verb the front end accepts, in usage() order — the unknown-command
/// error lists these so a typo comes back with the menu, not a dead end
/// (tests/service/protocol_test.cpp).
const char* known_verbs() {
  return "open, load, save, assign, batch-assign, edit, query, report, "
         "select, select-stats, journal, checkpoint, recover, close, "
         "sessions, stats, export-metrics, telemetry, flight, help";
}

const char* usage() {
  return "service commands: open <s> [metrics] [trace], "
         "load <s> file <path> | text <lines>, save <s> [file <path>], "
         "assign <s> <var> <value>..., batch-assign <s> <var> <value>..., "
         "edit <s> <cmd...>, query <s> [cells|vars [cell]|stats|<var>], "
         "report <s> [cell], select <s> <cell> [slot <subcell>]... "
         "[limit <n>] [commit], select-stats <s> <cell> [slot <subcell>]... "
         "[limit <n>], journal <s> <base> "
         "[every-record|interval|none|group-commit [records] [batch <n>] "
         "[delay-us <n>] [segment <bytes>]], "
         "checkpoint <s>, recover <s> <base>, close <s>, "
         "sessions, stats [--latency], export-metrics [path], "
         "telemetry on|off, flight arm <base> [slow-ns] | off | dump | "
         "status, help\n";
}

}  // namespace

bool ServiceFrontEnd::parse(const std::string& line, Request* out,
                            std::string* error) {
  *out = Request{};
  std::istringstream in(line);
  std::string verb;
  if (!(in >> verb)) {
    *error = "empty command (at byte 0)";
    return false;
  }
  if (!(in >> out->session)) {
    in.clear();
    *error = "'" + verb + "' needs a session name" + at_byte(in, line);
    return false;
  }

  if (verb == "open") {
    out->type = RequestType::kOpen;
    out->text = rest_of(in);
    return true;
  }
  if (verb == "load") {
    out->type = RequestType::kLoad;
    std::string mode;
    if (!(in >> mode) || (mode != "file" && mode != "text")) {
      in.clear();
      *error = "load needs 'file <path>' or 'text <lines>'" + at_byte(in, line);
      return false;
    }
    if (mode == "file") {
      std::string path;
      if (!(in >> path)) {
        in.clear();
        *error = "load file needs a path" + at_byte(in, line);
        return false;
      }
      std::ifstream f(path);
      if (!f.good()) {
        *error = "cannot read '" + path + "'";
        return false;
      }
      std::ostringstream text;
      text << f.rdbuf();
      out->text = text.str();
    } else {
      out->text = unescape_newlines(rest_of(in));
    }
    return true;
  }
  if (verb == "save") {
    out->type = RequestType::kSave;
    out->text = rest_of(in);  // optional "file <path>", handled after call
    return true;
  }
  if (verb == "assign" || verb == "batch-assign") {
    out->type = verb == "assign" ? RequestType::kAssign
                                 : RequestType::kBatchAssign;
    return parse_assignments(in, line, out, error);
  }
  if (verb == "edit") {
    out->type = RequestType::kEdit;
    out->text = rest_of(in);
    return true;
  }
  if (verb == "query") {
    out->type = RequestType::kQuery;
    out->text = rest_of(in);
    return true;
  }
  if (verb == "report") {
    out->type = RequestType::kReport;
    out->text = rest_of(in);
    return true;
  }
  if (verb == "journal") {
    out->type = RequestType::kJournal;
    out->text = rest_of(in);
    if (out->text.empty()) {
      *error = "journal needs a base path" + at_byte(in, line);
      return false;
    }
    return true;
  }
  if (verb == "checkpoint") {
    out->type = RequestType::kCheckpoint;
    return true;
  }
  if (verb == "recover") {
    out->type = RequestType::kRecover;
    out->text = rest_of(in);
    if (out->text.empty()) {
      *error = "recover needs a base path" + at_byte(in, line);
      return false;
    }
    return true;
  }
  if (verb == "select" || verb == "select-stats") {
    out->type = verb == "select" ? RequestType::kSelect
                                 : RequestType::kSelectStats;
    out->text = rest_of(in);
    if (out->text.empty()) {
      *error = verb + " needs a cell name" + at_byte(in, line);
      return false;
    }
    return true;
  }
  if (verb == "close") {
    out->type = RequestType::kClose;
    return true;
  }
  const std::size_t verb_at = line.find(verb);
  *error = "unknown service command '" + verb + "' (at byte " +
           std::to_string(verb_at == std::string::npos ? 0 : verb_at) +
           "); valid commands: " + known_verbs();
  return false;
}

namespace {

bool render_fail(std::string* error, const char* why) {
  if (error != nullptr) *error = why;
  return false;
}

/// One whitespace-free token (session names, variable paths, journal bases).
bool token_ok(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') return false;
  }
  return true;
}

/// Single-line free text (edit/query/report/... payloads).  rest_of() trims
/// leading blanks on the way back in, so a payload that starts with one
/// would not round-trip.
bool line_ok(const std::string& s) {
  if (s.find('\n') != std::string::npos) return false;
  if (!s.empty() && (s.front() == ' ' || s.front() == '\t')) return false;
  return true;
}

void append_double(std::string* out, double v) {
  char buf[40];
  const int n = std::snprintf(buf, sizeof buf, "%.17g", v);
  out->append(buf, static_cast<std::size_t>(n));
}

}  // namespace

bool ServiceFrontEnd::render(const Request& r, std::string* out,
                             std::string* error) {
  if (!token_ok(r.session)) {
    return render_fail(error, "session name must be one non-empty token");
  }
  out->append(to_string(r.type));
  out->push_back(' ');
  out->append(r.session);
  switch (r.type) {
    case RequestType::kOpen:
      if (!line_ok(r.text)) return render_fail(error, "open options must be one line");
      if (!r.text.empty()) {
        out->push_back(' ');
        out->append(r.text);
      }
      return true;
    case RequestType::kLoad:
      // Always the `text` form: "\n" is the only escape parse() undoes, so a
      // literal backslash in the library text cannot survive the round trip.
      if (r.text.find('\\') != std::string::npos) {
        return render_fail(error, "library text with a backslash cannot round-trip");
      }
      if (!r.text.empty() && (r.text.front() == ' ' || r.text.front() == '\t')) {
        return render_fail(error, "library text starting with a blank cannot round-trip");
      }
      out->append(" text ");
      for (const char c : r.text) {
        if (c == '\n') {
          out->append("\\n");
        } else {
          out->push_back(c);
        }
      }
      return true;
    case RequestType::kSave:
      // `save <s> file <path>` is front-end sugar resolved before call();
      // a typed kSave carries no payload.
      if (!r.text.empty()) return render_fail(error, "save carries no payload");
      return true;
    case RequestType::kAssign:
    case RequestType::kBatchAssign:
      if (r.assignments.empty()) {
        return render_fail(error, "assign needs at least one <var> <value> pair");
      }
      for (const Assignment& a : r.assignments) {
        if (!token_ok(a.variable)) {
          return render_fail(error, "variable path must be one non-empty token");
        }
        out->push_back(' ');
        out->append(a.variable);
        out->push_back(' ');
        append_double(out, a.value);
      }
      return true;
    case RequestType::kEdit:
    case RequestType::kQuery:
    case RequestType::kReport:
      if (!line_ok(r.text)) return render_fail(error, "payload must be one line");
      if (!r.text.empty()) {
        out->push_back(' ');
        out->append(r.text);
      }
      return true;
    case RequestType::kJournal:
    case RequestType::kRecover:
    case RequestType::kSelect:
    case RequestType::kSelectStats:
      if (!line_ok(r.text) || r.text.empty()) {
        return render_fail(error, "payload must be one non-empty line");
      }
      out->push_back(' ');
      out->append(r.text);
      return true;
    case RequestType::kCheckpoint:
    case RequestType::kClose:
      return true;
  }
  return render_fail(error, "unknown request type");
}

std::string ServiceFrontEnd::format(const Response& r) {
  if (!r.ok) return "error: " + r.error + "\n";
  std::ostringstream out;
  out << "ok";
  if (r.violation) {
    out << " VIOLATION";
    if (!r.violation_message.empty()) out << ": " << r.violation_message;
    out << " (restored " << r.variables_restored << " variable(s))";
  } else if (r.assignments_applied > 0) {
    out << " (applied " << r.assignments_applied << " assignment(s))";
  }
  out << '\n';
  if (!r.text.empty()) {
    out << r.text;
    if (r.text.back() != '\n') out << '\n';
  }
  return out.str();
}

std::string ServiceFrontEnd::execute(const std::string& line) {
  std::istringstream peek(line);
  std::string verb;
  peek >> verb;
  if (verb.empty() || verb == "help") return usage();
  if (verb == "sessions") {
    std::ostringstream out;
    for (const std::string& name : svc_->sessions().names()) {
      out << name << '\n';
    }
    out << svc_->sessions().size() << " session(s), "
        << svc_->requests_served() << " request(s) served\n";
    return out.str();
  }

  // Service-wide telemetry views (no session argument — these read the
  // worker lanes, not one session's registry).
  if (verb == "stats") {
    std::string opt;
    peek >> opt;
    if (opt == "--latency") return svc_->telemetry().latency_table();
    if (!opt.empty()) return "error: stats options are '--latency'\n";
    std::ostringstream out;
    out << svc_->requests_served() << " request(s) served across "
        << svc_->sessions().size() << " session(s), " << svc_->shard_count()
        << " shard(s) x " << svc_->sessions().workers_per_shard()
        << " worker(s); telemetry "
        << (svc_->telemetry().enabled() ? "on" : "off") << ", "
        << svc_->telemetry().requests_recorded() << " span(s), "
        << svc_->telemetry().violations_recorded() << " violation(s), "
        << svc_->telemetry().anomalies()
        << " anomal(ies) (try: stats --latency)\n";
    return out.str();
  }
  if (verb == "export-metrics") {
    std::string path;
    peek >> path;
    const std::string text =
        svc_->telemetry().prometheus() + core::global_metrics_prometheus();
    if (path.empty()) return text;
    std::string werror;
    if (!persist::atomic_write_file(path, text, &werror)) {
      return "error: " + werror + "\n";
    }
    return "ok\nmetrics written to " + path + "\n";
  }
  if (verb == "telemetry") {
    std::string mode;
    peek >> mode;
    if (mode != "on" && mode != "off") return "error: telemetry on|off\n";
    svc_->telemetry().set_enabled(mode == "on");
    return "telemetry " + mode + "\n";
  }
  if (verb == "flight") {
    TelemetryRecorder& t = svc_->telemetry();
    std::string sub;
    peek >> sub;
    if (sub == "arm") {
      std::string base;
      std::uint64_t slow_ns = 0;
      peek >> base >> slow_ns;
      if (base.empty()) {
        return "error: flight arm <dump-base> [slow-threshold-ns]\n";
      }
      t.arm_flight(base, slow_ns);
      std::ostringstream out;
      out << "flight recorder armed: dumps to " << base
          << ".<n>.trace.json on violation, journal fault";
      if (slow_ns > 0) out << ", or request > " << slow_ns << " ns";
      out << '\n';
      return out.str();
    }
    if (sub == "off") {
      t.disarm_flight();
      return "flight recorder disarmed\n";
    }
    if (sub == "dump") {
      t.dump_flight("manual");
      return "flight dump #" + std::to_string(t.dumps() - 1) + " (" +
             std::to_string(t.recent_spans().size()) + " span(s) retained)\n";
    }
    if (sub == "status") {
      std::ostringstream out;
      out << "flight recorder " << (t.flight_armed() ? "armed" : "disarmed")
          << ": slow threshold " << t.slow_threshold_ns() << " ns, "
          << t.anomalies() << " anomal(ies), " << t.dumps() << " dump(s)";
      if (!t.last_dump_reason().empty()) {
        out << ", last reason " << t.last_dump_reason();
      }
      out << '\n';
      return out.str();
    }
    return "error: flight arm <base> [slow-ns] | off | dump | status\n";
  }

  Request req;
  std::string error;
  if (!parse(line, &req, &error)) return "error: " + error + "\n";

  // `save <s> file <path>`: run the save, then write the text out here —
  // the service itself never touches the filesystem.
  std::string save_path;
  if (req.type == RequestType::kSave && !req.text.empty()) {
    std::istringstream opts(req.text);
    std::string kw;
    if (!(opts >> kw) || kw != "file" || !(opts >> save_path)) {
      return "error: save options are 'file <path>'\n";
    }
    req.text.clear();
  }

  Response resp = svc_->call(std::move(req));
  if (resp.ok && !save_path.empty()) {
    // Atomic save: tmp file + fsync + rename, so a crash mid-save can never
    // leave a truncated library file behind.
    std::string werror;
    if (!persist::atomic_write_file(save_path, resp.text, &werror)) {
      return "error: " + werror + "\n";
    }
    return "ok\nsaved to " + save_path + "\n";
  }
  return format(resp);
}

}  // namespace stemcp::service
